// Package expandergap's root benchmark suite regenerates the derived
// evaluation of EXPERIMENTS.md: one benchmark per experiment E1–E16 (one per
// theorem/lemma of the paper plus the preliminaries and construction
// comparisons), and micro-benchmarks for the substrates the framework is
// built from. Run with:
//
//	go test -bench=. -benchmem
//
// Each experiment benchmark also re-validates the experiment's shape checks
// and fails if the paper's qualitative claim stops holding.
package expandergap_test

import (
	"fmt"
	"math/rand"
	"runtime"
	"testing"

	"expandergap/internal/apps/maxis"
	"expandergap/internal/benchmarks"
	"expandergap/internal/conductance"
	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/experiments"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
	"expandergap/internal/primitives"
	"expandergap/internal/routing"
	"expandergap/internal/separator"
	"expandergap/internal/solvers"
)

func benchExperiment(b *testing.B, id string) {
	b.Helper()
	p := experiments.DefaultParams(experiments.Small)
	var o experiments.Outcome
	for i := 0; i < b.N; i++ {
		o = experiments.Named(id, p)
	}
	if !o.Passed() {
		b.Fatalf("%s shape checks failed: %v", id, o.FailedChecks())
	}
	b.ReportMetric(float64(len(o.Table.Rows)), "rows")
}

func BenchmarkE1DecompositionEdges(b *testing.B) { benchExperiment(b, "E1") }
func BenchmarkE2ClusterConductance(b *testing.B) { benchExperiment(b, "E2") }
func BenchmarkE2bDistributedDecomp(b *testing.B) { benchExperiment(b, "E2b") }
func BenchmarkE3HighDegreeVertex(b *testing.B)   { benchExperiment(b, "E3") }
func BenchmarkE4WalkRouting(b *testing.B)        { benchExperiment(b, "E4") }
func BenchmarkE5MaxIS(b *testing.B)              { benchExperiment(b, "E5") }
func BenchmarkE6PlanarMCM(b *testing.B)          { benchExperiment(b, "E6") }
func BenchmarkE7MWM(b *testing.B)                { benchExperiment(b, "E7") }
func BenchmarkE8CorrClust(b *testing.B)          { benchExperiment(b, "E8") }
func BenchmarkE9PropertyTesting(b *testing.B)    { benchExperiment(b, "E9") }
func BenchmarkE10LDD(b *testing.B)               { benchExperiment(b, "E10") }
func BenchmarkE11EdgeSeparator(b *testing.B)     { benchExperiment(b, "E11") }
func BenchmarkE12LocalCongestGap(b *testing.B)   { benchExperiment(b, "E12") }
func BenchmarkE13MixingTime(b *testing.B)        { benchExperiment(b, "E13") }
func BenchmarkE14HypercubeTight(b *testing.B)    { benchExperiment(b, "E14") }
func BenchmarkE15RoundScaling(b *testing.B)      { benchExperiment(b, "E15") }
func BenchmarkE16Decomposers(b *testing.B)       { benchExperiment(b, "E16") }

// --- parallel-executor benchmarks ---
//
// The Seq/Par pairs below run the same workload with Workers=0 (canonical
// sequential loop) and Workers=GOMAXPROCS (sharded executor). Outputs and
// metrics are bit-for-bit identical (see internal/congest equivalence
// tests); only wall-clock may differ. The pairs cover the two hot paths the
// experiment suite funnels through: the E15 framework pipeline at its
// largest Full-scale size (n=144) and E4-style whole-graph walk routing at
// the E4 Full-scale size (n=256).
//
// The Par variants embed the actual worker count in the sub-benchmark name
// (".../workers=4") so recorded numbers are attributable to a pool size, and
// skip outright on a single-CPU host: there a "parallel" pool of 1 measures
// dispatch overhead against the sequential loop while reporting itself as a
// parallel run, which is exactly the kind of uninterpretable number the
// BENCH_*.json host metadata exists to prevent.

// skipUnlessMultiCore skips speedup-flavored benchmarks on single-CPU hosts.
func skipUnlessMultiCore(b *testing.B) int {
	b.Helper()
	procs := runtime.GOMAXPROCS(0)
	if procs == 1 {
		b.Skip("GOMAXPROCS=1: a 1-worker pool measures dispatch overhead, not parallel speedup; see the scaling curves in BENCH_6.json for the overhead numbers")
	}
	return procs
}

func benchFrameworkGridWorkers(b *testing.B, side, workers int) {
	b.Helper()
	g := graph.Grid(side, side)
	for i := 0; i < b.N; i++ {
		sol, err := core.Run(g, core.Options{
			Eps: 0.3,
			Cfg: congest.Config{Seed: 2022, Workers: workers},
		}, func(cluster *graph.Graph, toOld []int) map[int]int64 {
			out := make(map[int]int64)
			for _, v := range toOld {
				out[v] = 1
			}
			return out
		})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Metrics.Rounds == 0 {
			b.Fatal("no rounds executed")
		}
	}
}

func BenchmarkE15RoundScalingLargestSeq(b *testing.B) { benchFrameworkGridWorkers(b, 12, 0) }
func BenchmarkE15RoundScalingLargestPar(b *testing.B) {
	procs := skipUnlessMultiCore(b)
	b.Run(fmt.Sprintf("workers=%d", procs), func(b *testing.B) {
		benchFrameworkGridWorkers(b, 12, procs)
	})
}

func benchWalkRoutingWorkers(b *testing.B, side, workers int) {
	b.Helper()
	g := graph.Grid(side, side)
	leader := make([]int, g.N())
	tokens := make([][]routing.Token, g.N())
	for v := range tokens {
		tokens[v] = []routing.Token{{A: int64(v)}}
	}
	plan := routing.Plan{
		Cluster:       primitives.Uniform(g.N()),
		Leader:        leader,
		ForwardRounds: 8*g.M()*g.Diameter() + 64,
		Strategy:      routing.RandomWalk,
	}
	for i := 0; i < b.N; i++ {
		res, _, err := routing.Exchange(g, congest.Config{Seed: int64(i), Workers: workers}, plan, tokens, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Undelivered > 0 {
			b.Fatalf("undelivered: %d", res.Undelivered)
		}
	}
}

func BenchmarkE4WalkRoutingLargestSeq(b *testing.B) { benchWalkRoutingWorkers(b, 16, 0) }
func BenchmarkE4WalkRoutingLargestPar(b *testing.B) {
	procs := skipUnlessMultiCore(b)
	b.Run(fmt.Sprintf("workers=%d", procs), func(b *testing.B) {
		benchWalkRoutingWorkers(b, 16, procs)
	})
}

// --- scaling curves ---
//
// The same worker sweeps cmd/benchjson records into BENCH_<pr>.json curves,
// runnable interactively: go test -bench 'Curve' -benchmem. The 1-worker
// anchor always runs (it is the denominator of every speedup and a parity
// measurement in its own right); multi-worker points skip on single-CPU
// hosts with an explicit message instead of posing as parallel numbers.

func benchCurve(b *testing.B, fn func(workers int) func(b *testing.B)) {
	b.Helper()
	for _, workers := range benchmarks.WorkerCounts() {
		workers := workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			if workers > 1 && runtime.GOMAXPROCS(0) == 1 {
				b.Skip("GOMAXPROCS=1: multi-worker points measure pool overhead, not speedup")
			}
			fn(workers)(b)
		})
	}
}

func BenchmarkSimulatorFloodRoundsCurve(b *testing.B) {
	benchCurve(b, benchmarks.SimulatorFloodRoundsCurve)
}
func BenchmarkWalkRoutingCurve(b *testing.B) { benchCurve(b, benchmarks.WalkRoutingCurve) }
func BenchmarkDecomposeCurve(b *testing.B)   { benchCurve(b, benchmarks.DecomposeCurve) }

// --- substrate micro-benchmarks ---
//
// The bodies live in internal/benchmarks so cmd/benchjson can execute the
// same code programmatically and record the perf trajectory in BENCH_<pr>.json.

func BenchmarkSimulatorFlood(b *testing.B)            { benchmarks.SimulatorFlood(b) }
func BenchmarkSimulatorFloodSteadyState(b *testing.B) { benchmarks.SimulatorFloodSteadyState(b) }
func BenchmarkExpanderDecompose(b *testing.B)         { benchmarks.ExpanderDecompose(b) }
func BenchmarkMPXClustering(b *testing.B)             { benchmarks.MPXClustering(b) }
func BenchmarkWalkRoutingGrid(b *testing.B)           { benchmarks.WalkRoutingGrid(b) }

func BenchmarkBlossomMatching(b *testing.B) {
	rng := rand.New(rand.NewSource(2))
	g := graph.RandomMaximalPlanar(150, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solvers.MaximumMatching(g)
	}
}

func BenchmarkExactMaxIS(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	g := graph.RandomMaximalPlanar(40, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		solvers.MaximumIndependentSet(g)
	}
}

func BenchmarkPlanarityTest(b *testing.B) {
	rng := rand.New(rand.NewSource(4))
	g := graph.RandomMaximalPlanar(200, rng)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if !minor.IsPlanar(g) {
			b.Fatal("triangulation misclassified")
		}
	}
}

func BenchmarkExactConductance(b *testing.B) {
	g := graph.Hypercube(4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		conductance.ExactConductance(g)
	}
}

func BenchmarkSpectralSeparator(b *testing.B) {
	g := graph.Grid(16, 16)
	rng := rand.New(rand.NewSource(5))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		separator.Spectral(g, rng)
	}
}

func BenchmarkFrameworkMaxISEndToEnd(b *testing.B) {
	g := graph.Grid(7, 7)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := maxis.Approximate(g, maxis.Options{Eps: 0.25, Cfg: congest.Config{Seed: int64(i)}})
		if err != nil {
			b.Fatal(err)
		}
		if len(res.Set) == 0 {
			b.Fatal("empty independent set")
		}
	}
}

func BenchmarkLubyMIS(b *testing.B) { benchmarks.LubyMIS(b) }
