// Command benchjson executes the substrate micro-benchmarks from
// internal/benchmarks programmatically and writes a machine-readable
// BENCH_<pr>.json capturing ns/op, B/op and allocs/op per benchmark, so the
// performance trajectory can be compared across PRs (benchstat-style) from
// CI artifacts.
//
// With -check it additionally acts as a regression gate: the fresh numbers
// are compared against a committed baseline document and the process exits
// non-zero if the steady-state round loop allocates, or if the flood
// benchmark regresses by more than -tolerance against the baseline.
//
// Usage:
//
//	benchjson [-pr 4] [-out BENCH_4.json] [-benchtime 100ms]
//	          [-check BENCH_2.json] [-tolerance 0.25]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"expandergap/internal/benchmarks"
)

// record is one benchmark's measurement.
type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the full BENCH_<pr>.json document.
type report struct {
	PR int `json:"pr"`
	// Baselines pins noteworthy pre-change numbers so later PRs (and this
	// one's acceptance criteria) can compare without re-running old code.
	Baselines  []record `json:"baselines,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

// find returns the named benchmark record, or nil.
func (r *report) find(name string) *record {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// findBaseline returns the named pinned baseline record, or nil.
func (r *report) findBaseline(name string) *record {
	for i := range r.Baselines {
		if r.Baselines[i].Name == name {
			return &r.Baselines[i]
		}
	}
	return nil
}

// check compares the fresh report against a committed baseline document and
// returns the list of regression-gate violations. The gate is deliberately
// narrow — two invariants the repo promises to hold across PRs:
//
//  1. the steady-state Step loop performs zero allocations per round,
//  2. BenchmarkSimulatorFlood's ns/op stays within (1+tolerance)× of the
//     baseline (CI runner noise is why the default tolerance is 25%),
//  3. BenchmarkDecomposeE4 allocates at most half the bytes of the pinned
//     pre-PR5 materializing implementation (the view-refactor criterion), and
//  4. BenchmarkDecomposeE4's allocs/op does not exceed the committed
//     baseline run — allocation counts are deterministic, so any growth
//     means a real regression, not runner noise.
func check(fresh, base *report, tolerance float64) []string {
	var violations []string
	if ss := fresh.find("BenchmarkSimulatorFloodSteadyState"); ss == nil {
		violations = append(violations, "BenchmarkSimulatorFloodSteadyState missing from fresh run")
	} else if ss.AllocsPerOp > 0 {
		violations = append(violations, fmt.Sprintf(
			"BenchmarkSimulatorFloodSteadyState allocates: %d allocs/op, want 0", ss.AllocsPerOp))
	}
	cur, ref := fresh.find("BenchmarkSimulatorFlood"), base.find("BenchmarkSimulatorFlood")
	switch {
	case cur == nil:
		violations = append(violations, "BenchmarkSimulatorFlood missing from fresh run")
	case ref == nil:
		violations = append(violations, "BenchmarkSimulatorFlood missing from baseline")
	case cur.NsPerOp > ref.NsPerOp*(1+tolerance):
		violations = append(violations, fmt.Sprintf(
			"BenchmarkSimulatorFlood regressed: %.0f ns/op vs baseline %.0f ns/op (limit %.0f, +%.0f%%)",
			cur.NsPerOp, ref.NsPerOp, ref.NsPerOp*(1+tolerance), tolerance*100))
	}
	dec := fresh.find("BenchmarkDecomposeE4")
	pre := base.findBaseline("BenchmarkDecomposeE4@pre-PR5")
	decRef := base.find("BenchmarkDecomposeE4")
	switch {
	case dec == nil:
		violations = append(violations, "BenchmarkDecomposeE4 missing from fresh run")
	case pre == nil:
		violations = append(violations, "BenchmarkDecomposeE4@pre-PR5 missing from baseline document")
	case dec.BytesPerOp > pre.BytesPerOp/2:
		violations = append(violations, fmt.Sprintf(
			"BenchmarkDecomposeE4 bytes/op %d exceeds half the pre-PR5 materializing baseline (%d/2 = %d)",
			dec.BytesPerOp, pre.BytesPerOp, pre.BytesPerOp/2))
	}
	if dec != nil && decRef != nil && dec.AllocsPerOp > decRef.AllocsPerOp {
		violations = append(violations, fmt.Sprintf(
			"BenchmarkDecomposeE4 allocs/op grew: %d vs committed baseline %d",
			dec.AllocsPerOp, decRef.AllocsPerOp))
	}
	return violations
}

func main() {
	pr := flag.Int("pr", 5, "PR number recorded in the report (names the default output file)")
	out := flag.String("out", "", "output file (default BENCH_<pr>.json)")
	benchtime := flag.String("benchtime", "100ms", "per-benchmark run budget (Go benchtime syntax)")
	checkPath := flag.String("check", "", "baseline BENCH_<pr>.json to regression-check against (empty disables)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression for the -check gate")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%d.json", *pr)
	}

	// testing.Benchmark honours the -test.benchtime flag; register the
	// testing flags explicitly since this is a plain binary, not a test.
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		PR: *pr,
		Baselines: []record{
			// BenchmarkSimulatorFlood on the pre-CSR simulator (seed commit
			// 818038f, measured 2026-08-06 on the CI container class): the
			// reference point for the PR 2 acceptance criterion.
			{Name: "BenchmarkSimulatorFlood@pre-PR2", Iterations: 0,
				NsPerOp: 3247143, BytesPerOp: 1541362, AllocsPerOp: 4097},
			// BenchmarkWalkRoutingGrid on the dense scheduler (commit
			// cb83db2, measured 2026-08-06 on the same container class): the
			// reference point for the PR 4 sparse-scheduling criterion.
			{Name: "BenchmarkWalkRoutingGrid@pre-PR4", Iterations: 0,
				NsPerOp: 35988029, BytesPerOp: 1512464, AllocsPerOp: 10350},
			// The materializing decomposition and InducedSubgraph on the
			// pre-CSR graph core (commit 861ee3f, measured 2026-08-06 on the
			// same container class): the reference points for the PR 5
			// zero-copy-view criterion (≥2× fewer bytes per decomposition).
			{Name: "BenchmarkDecomposeE4@pre-PR5", Iterations: 0,
				NsPerOp: 3535838, BytesPerOp: 319352, AllocsPerOp: 616},
			{Name: "BenchmarkDecomposeStress@pre-PR5", Iterations: 0,
				NsPerOp: 18377811, BytesPerOp: 1908857, AllocsPerOp: 8846},
			{Name: "BenchmarkInducedSubgraphCopy@pre-PR5", Iterations: 0,
				NsPerOp: 47613, BytesPerOp: 47624, AllocsPerOp: 165},
		},
	}
	for _, bm := range benchmarks.Named() {
		res := testing.Benchmark(bm.Fn)
		rec := record{
			Name:        bm.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
		fmt.Printf("%-40s %10d iters %14.0f ns/op %10d B/op %8d allocs/op\n",
			rec.Name, rec.Iterations, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *checkPath != "" {
		raw, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		if violations := check(&rep, &base, *tolerance); len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("regression check against %s passed\n", *checkPath)
	}
}
