// Command benchjson executes the substrate micro-benchmarks from
// internal/benchmarks programmatically and writes a machine-readable
// BENCH_<pr>.json capturing ns/op, B/op and allocs/op per benchmark, so the
// performance trajectory can be compared across PRs (benchstat-style) from
// CI artifacts.
//
// Usage:
//
//	benchjson [-out BENCH_2.json] [-benchtime 100ms]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"testing"

	"expandergap/internal/benchmarks"
)

// record is one benchmark's measurement.
type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// report is the full BENCH_<pr>.json document.
type report struct {
	PR int `json:"pr"`
	// Baselines pins noteworthy pre-change numbers so later PRs (and this
	// one's acceptance criteria) can compare without re-running old code.
	Baselines  []record `json:"baselines,omitempty"`
	Benchmarks []record `json:"benchmarks"`
}

func main() {
	out := flag.String("out", "BENCH_2.json", "output file")
	benchtime := flag.String("benchtime", "100ms", "per-benchmark run budget (Go benchtime syntax)")
	flag.Parse()

	// testing.Benchmark honours the -test.benchtime flag; register the
	// testing flags explicitly since this is a plain binary, not a test.
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		PR: 2,
		Baselines: []record{
			// BenchmarkSimulatorFlood on the pre-CSR simulator (seed commit
			// 818038f, measured 2026-08-06 on the CI container class): the
			// reference point for the PR 2 acceptance criterion.
			{Name: "BenchmarkSimulatorFlood@pre-PR2", Iterations: 0,
				NsPerOp: 3247143, BytesPerOp: 1541362, AllocsPerOp: 4097},
		},
	}
	for _, bm := range benchmarks.Named() {
		res := testing.Benchmark(bm.Fn)
		rec := record{
			Name:        bm.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
		fmt.Printf("%-40s %10d iters %14.0f ns/op %10d B/op %8d allocs/op\n",
			rec.Name, rec.Iterations, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
}
