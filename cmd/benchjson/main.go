// Command benchjson executes the substrate micro-benchmarks from
// internal/benchmarks programmatically and writes a machine-readable
// BENCH_<pr>.json capturing ns/op, B/op and allocs/op per benchmark — plus
// per-worker-count scaling curves and the host shape (NumCPU, GOMAXPROCS, go
// version) that makes the numbers interpretable across machines — so the
// performance trajectory can be compared across PRs (benchstat-style) from
// CI artifacts.
//
// With -check it additionally acts as a regression gate: the fresh numbers
// are compared against a committed baseline document and the process exits
// non-zero if the steady-state round loop allocates, if the flood benchmark
// regresses by more than -tolerance against the baseline, or — on multi-core
// hosts only — if the scaling curves fall short of the -minspeedup multi-core
// speedup. Baselines recorded on a different host shape either relax the
// timing tolerance (the default) or refuse the comparison (-hostmode refuse);
// allocation gates are deterministic and apply regardless.
//
// With -iosizes (comma-separated edge counts), the report additionally
// records the huge-graph I/O curves of internal/benchmarks.MeasureIO — load
// ns/edge, on-disk bytes/edge, and peak-heap bytes/edge for the text, binary,
// and mmap load paths. Under -check these curves are gated within-run (no
// baseline required, so the gates are host-independent): binary loading must
// be ≥ -iominratio× faster than text per edge, an mmap open must complete in
// under -iomaxopen regardless of edge count, the binary encoding must stay
// under 40 file bytes/edge, and a zero-copy mmap open must not allocate per
// edge.
//
// With -churnfracs (comma-separated churn fractions), the report additionally
// records the dynamic-graph maintenance curves of
// internal/benchmarks.MeasureChurn: incremental decomposition maintenance
// (expander.DecomposeIncremental) versus a full rebuild at each churn level,
// with cluster-reuse accounting and cut-fraction quality. Under -check these
// are gated within-run too: wherever under 10% of clusters broke, the
// incremental path must be ≥ -churnminspeedup× faster than the rebuild, and
// at churn ≤ 10% at least -churnminreuse of the clusters must be reused.
//
// Usage:
//
//	benchjson [-pr 10] [-out BENCH_10.json] [-benchtime 100ms]
//	          [-check BENCH_10.json] [-tolerance 0.25]
//	          [-minspeedup 1.5] [-hostmode relax|refuse]
//	          [-iosizes 1000000,10000000] [-iodir /tmp]
//	          [-iominratio 5] [-iomaxopen 10ms]
//	          [-churnfracs 0.01,0.05,0.10] [-churnseed 7]
//	          [-churnminspeedup 2] [-churnminreuse 0.5]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
	"testing"
	"time"

	"expandergap/internal/benchmarks"
)

// record is one benchmark's measurement.
type record struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// hostInfo pins the shape of the machine a report was recorded on. Scaling
// curves (and, to a lesser degree, ns/op numbers) are meaningless without
// it: a 2-worker point is a speedup measurement on a 4-core runner and an
// oversubscription measurement on a 1-core container.
type hostInfo struct {
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	GoVersion  string `json:"go_version"`
}

// sameShape reports whether two hosts have comparable timing behaviour.
func (h hostInfo) sameShape(o hostInfo) bool {
	return h.NumCPU == o.NumCPU && h.GOMAXPROCS == o.GOMAXPROCS
}

// curvePoint is one worker count's measurement within a scaling curve.
type curvePoint struct {
	Workers     int     `json:"workers"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// curve is one benchmark family swept across worker counts, points ascending
// by worker count with workers=1 as the speedup anchor.
type curve struct {
	Name   string       `json:"name"`
	Points []curvePoint `json:"points"`
}

// at returns the point measured at the given worker count, or nil.
func (c *curve) at(workers int) *curvePoint {
	for i := range c.Points {
		if c.Points[i].Workers == workers {
			return &c.Points[i]
		}
	}
	return nil
}

// speedup returns ns/op(1 worker) / ns/op(workers), or 0 when either point
// is missing.
func (c *curve) speedup(workers int) float64 {
	one, w := c.at(1), c.at(workers)
	if one == nil || w == nil || w.NsPerOp == 0 {
		return 0
	}
	return one.NsPerOp / w.NsPerOp
}

// report is the full BENCH_<pr>.json document.
type report struct {
	PR   int       `json:"pr"`
	Host *hostInfo `json:"host,omitempty"`
	// Baselines pins noteworthy pre-change numbers so later PRs (and this
	// one's acceptance criteria) can compare without re-running old code.
	Baselines  []record `json:"baselines,omitempty"`
	Benchmarks []record `json:"benchmarks"`
	// Curves holds the per-worker-count scaling sweeps (workers 1, 2, 4,
	// NumCPU) of the parallel round loop, walk routing, and the parallel
	// decomposer.
	Curves []curve `json:"curves,omitempty"`
	// IO holds the graph-loading curves (text vs binary vs mmap) across
	// edge counts, recorded when -iosizes is given.
	IO []benchmarks.IOCurve `json:"io,omitempty"`
	// Churn holds the incremental-vs-full decomposition maintenance curves
	// across churn fractions, recorded when -churnfracs is given.
	Churn []benchmarks.ChurnCurve `json:"churn,omitempty"`
}

// findIO returns the named I/O curve ("text", "binary", "mmap"), or nil.
func (r *report) findIO(format string) *benchmarks.IOCurve {
	for i := range r.IO {
		if r.IO[i].Format == format {
			return &r.IO[i]
		}
	}
	return nil
}

// find returns the named benchmark record, or nil.
func (r *report) find(name string) *record {
	for i := range r.Benchmarks {
		if r.Benchmarks[i].Name == name {
			return &r.Benchmarks[i]
		}
	}
	return nil
}

// findBaseline returns the named pinned baseline record, or nil.
func (r *report) findBaseline(name string) *record {
	for i := range r.Baselines {
		if r.Baselines[i].Name == name {
			return &r.Baselines[i]
		}
	}
	return nil
}

// findCurve returns the named scaling curve, or nil.
func (r *report) findCurve(name string) *curve {
	for i := range r.Curves {
		if r.Curves[i].Name == name {
			return &r.Curves[i]
		}
	}
	return nil
}

// check compares the fresh report against a committed baseline document and
// returns the list of regression-gate violations. The gate is deliberately
// narrow — invariants the repo promises to hold across PRs:
//
//  1. the steady-state Step loop performs zero allocations per round,
//  2. BenchmarkSimulatorFlood's ns/op stays within (1+tolerance)× of the
//     baseline (CI runner noise is why the default tolerance is 25%; the
//     tolerance is doubled, with a warning, when the baseline was recorded
//     on a different host shape),
//  3. BenchmarkDecomposeE4 allocates at most half the bytes of the pinned
//     pre-PR5 materializing implementation (the view-refactor criterion), and
//  4. BenchmarkDecomposeE4's allocs/op does not exceed the committed
//     baseline run — allocation counts are deterministic, so any growth
//     means a real regression, not runner noise.
//
// Allocation gates (1, 3, 4) are host-independent and always apply.
func check(fresh, base *report, tolerance float64) []string {
	var violations []string
	if ss := fresh.find("BenchmarkSimulatorFloodSteadyState"); ss == nil {
		violations = append(violations, "BenchmarkSimulatorFloodSteadyState missing from fresh run")
	} else if ss.AllocsPerOp > 0 {
		violations = append(violations, fmt.Sprintf(
			"BenchmarkSimulatorFloodSteadyState allocates: %d allocs/op, want 0", ss.AllocsPerOp))
	}
	cur, ref := fresh.find("BenchmarkSimulatorFlood"), base.find("BenchmarkSimulatorFlood")
	switch {
	case cur == nil:
		violations = append(violations, "BenchmarkSimulatorFlood missing from fresh run")
	case ref == nil:
		violations = append(violations, "BenchmarkSimulatorFlood missing from baseline")
	case cur.NsPerOp > ref.NsPerOp*(1+tolerance):
		violations = append(violations, fmt.Sprintf(
			"BenchmarkSimulatorFlood regressed: %.0f ns/op vs baseline %.0f ns/op (limit %.0f, +%.0f%%)",
			cur.NsPerOp, ref.NsPerOp, ref.NsPerOp*(1+tolerance), tolerance*100))
	}
	dec := fresh.find("BenchmarkDecomposeE4")
	pre := base.findBaseline("BenchmarkDecomposeE4@pre-PR5")
	decRef := base.find("BenchmarkDecomposeE4")
	switch {
	case dec == nil:
		violations = append(violations, "BenchmarkDecomposeE4 missing from fresh run")
	case pre == nil:
		violations = append(violations, "BenchmarkDecomposeE4@pre-PR5 missing from baseline document")
	case dec.BytesPerOp > pre.BytesPerOp/2:
		violations = append(violations, fmt.Sprintf(
			"BenchmarkDecomposeE4 bytes/op %d exceeds half the pre-PR5 materializing baseline (%d/2 = %d)",
			dec.BytesPerOp, pre.BytesPerOp, pre.BytesPerOp/2))
	}
	if dec != nil && decRef != nil && dec.AllocsPerOp > decRef.AllocsPerOp {
		violations = append(violations, fmt.Sprintf(
			"BenchmarkDecomposeE4 allocs/op grew: %d vs committed baseline %d",
			dec.AllocsPerOp, decRef.AllocsPerOp))
	}
	return violations
}

// checkSpeedup gates the scaling curves of the fresh run. The gate is
// GOMAXPROCS-aware and activates only on multi-core hosts — on a single-CPU
// runner every multi-worker point measures pool overhead, not parallelism,
// so the gate reports itself skipped instead of failing vacuously.
//
//   - NumCPU ≥ 4: the flood round loop and the parallel decomposer must show
//     at least minSpeedup speedup at 4 workers vs 1.
//   - NumCPU 2..3: a relaxed 1.15× gate at 2 workers (two-core runners leave
//     little headroom beyond barrier and GC overhead).
//
// Walk routing is recorded but not gated: its per-round active set is small
// by construction (sparse relays), so its curve is diagnostic only.
func checkSpeedup(fresh *report, minSpeedup float64) []string {
	if fresh.Host == nil || fresh.Host.NumCPU <= 1 {
		fmt.Println("speedup gate skipped: single-CPU host (curves measure pool overhead only)")
		return nil
	}
	atWorkers, required := 2, 1.15
	if fresh.Host.NumCPU >= 4 {
		atWorkers, required = 4, minSpeedup
	}
	var violations []string
	for _, name := range []string{"SimulatorFloodRounds", "Decompose"} {
		c := fresh.findCurve(name)
		if c == nil {
			violations = append(violations, fmt.Sprintf("curve %s missing from fresh run", name))
			continue
		}
		s := c.speedup(atWorkers)
		if s == 0 {
			violations = append(violations, fmt.Sprintf(
				"curve %s has no %d-worker point to gate", name, atWorkers))
			continue
		}
		if s < required {
			violations = append(violations, fmt.Sprintf(
				"curve %s speedup at %d workers is %.2fx, want >= %.2fx (%.0f ns/op -> %.0f ns/op)",
				name, atWorkers, s, required, c.at(1).NsPerOp, c.at(atWorkers).NsPerOp))
		} else {
			fmt.Printf("speedup gate: %s %.2fx at %d workers (>= %.2fx) ok\n", name, s, atWorkers, required)
		}
	}
	return violations
}

// checkChurn gates the churn curves. Like the I/O gate, every comparison is
// within the fresh run, so it needs no baseline and holds on any host:
//
//  1. at every point where under 10% of the previous clusters broke,
//     incremental maintenance must be at least minSpeedup× faster than the
//     full rebuild of the same compacted graph — the reason the incremental
//     path exists;
//  2. at churn fractions up to 10%, at least minReuse of the previous
//     clusters must be reused (their certificates re-verified rather than
//     recomputed);
//  3. reuse accounting must be internally consistent (reused + broken =
//     previous clusters).
func checkChurn(fresh *report, minSpeedup, minReuse float64) []string {
	if len(fresh.Churn) == 0 {
		return []string{"churn curves missing from fresh run"}
	}
	var violations []string
	for _, c := range fresh.Churn {
		for _, p := range c.Points {
			tag := fmt.Sprintf("churn %s f=%.2f", c.Instance, p.Fraction)
			if p.Reused+p.Broken != p.PrevClusters {
				violations = append(violations, fmt.Sprintf(
					"%s: inconsistent accounting: reused %d + broken %d != prev %d",
					tag, p.Reused, p.Broken, p.PrevClusters))
			}
			if p.BrokenFraction < 0.1 {
				if p.Speedup < minSpeedup {
					violations = append(violations, fmt.Sprintf(
						"%s: incremental only %.2fx faster than full rebuild (%.2fms vs %.2fms) with %.0f%% broken, want >= %.1fx",
						tag, p.Speedup, p.IncrementalNs/1e6, p.FullNs/1e6, p.BrokenFraction*100, minSpeedup))
				} else {
					fmt.Printf("churn gate: %s %.1fx faster incremental (>= %.1fx) ok\n", tag, p.Speedup, minSpeedup)
				}
			}
			if p.Fraction <= 0.10 && p.ReuseFraction < minReuse {
				violations = append(violations, fmt.Sprintf(
					"%s: reuse fraction %.2f below %.2f (reused %d of %d clusters)",
					tag, p.ReuseFraction, minReuse, p.Reused, p.PrevClusters))
			}
		}
	}
	return violations
}

// checkIO gates the I/O curves. All comparisons are within the fresh run, so
// the gate needs no baseline and holds on any host: the ratios and ceilings
// are properties of the load paths, not of the machine's absolute speed.
//
//  1. binary loading is at least minRatio× faster than text, per edge, at
//     every measured size — the whole point of shipping a binary format;
//  2. every mmap open completes within maxOpen, independent of edge count
//     (an open is header validation plus pointer arithmetic, never a scan);
//  3. the binary encoding stays under 40 file bytes per edge (the CSR
//     sections sum to ~33 B/edge for average degree 8);
//  4. when the mmap path really maps (zero_copy), opening allocates less
//     than one heap byte per edge — pointing into the page cache, not
//     copying it.
func checkIO(fresh *report, minRatio float64, maxOpen time.Duration) []string {
	var violations []string
	text, bin, mm := fresh.findIO("text"), fresh.findIO("binary"), fresh.findIO("mmap")
	if text == nil || bin == nil || mm == nil {
		return []string{"io curves incomplete: need text, binary, and mmap"}
	}
	for _, bp := range bin.Points {
		tp := text.At(bp.Edges)
		if tp == nil {
			violations = append(violations, fmt.Sprintf("io: no text point at %d edges", bp.Edges))
			continue
		}
		if ratio := tp.NsPerEdge / bp.NsPerEdge; ratio < minRatio {
			violations = append(violations, fmt.Sprintf(
				"io: binary load only %.2fx faster than text at %d edges (%.1f vs %.1f ns/edge), want >= %.1fx",
				ratio, bp.Edges, bp.NsPerEdge, tp.NsPerEdge, minRatio))
		} else {
			fmt.Printf("io gate: binary %.1fx faster than text at %d edges (>= %.1fx) ok\n", ratio, bp.Edges, minRatio)
		}
		if bp.FileBytesPerEdge > 40 {
			violations = append(violations, fmt.Sprintf(
				"io: binary encoding is %.1f file bytes/edge at %d edges, want <= 40",
				bp.FileBytesPerEdge, bp.Edges))
		}
	}
	for _, mp := range mm.Points {
		if mp.LoadNs > float64(maxOpen.Nanoseconds()) {
			violations = append(violations, fmt.Sprintf(
				"io: mmap open took %.2fms at %d edges, want < %v (opens must be edge-count independent)",
				mp.LoadNs/1e6, mp.Edges, maxOpen))
		} else {
			fmt.Printf("io gate: mmap open %.2fms at %d edges (< %v) ok\n", mp.LoadNs/1e6, mp.Edges, maxOpen)
		}
		if mm.ZeroCopy && mp.HeapBytesPerEdge >= 1 {
			violations = append(violations, fmt.Sprintf(
				"io: zero-copy mmap open allocated %.1f heap bytes/edge at %d edges, want < 1",
				mp.HeapBytesPerEdge, mp.Edges))
		}
	}
	return violations
}

func main() {
	pr := flag.Int("pr", 10, "PR number recorded in the report (names the default output file)")
	out := flag.String("out", "", "output file (default BENCH_<pr>.json)")
	benchtime := flag.String("benchtime", "100ms", "per-benchmark run budget (Go benchtime syntax)")
	checkPath := flag.String("check", "", "baseline BENCH_<pr>.json to regression-check against (empty disables)")
	tolerance := flag.Float64("tolerance", 0.25, "allowed fractional ns/op regression for the -check gate")
	minSpeedup := flag.Float64("minspeedup", 1.5, "required multi-core speedup at 4 workers (0 disables; active only when NumCPU > 1)")
	hostMode := flag.String("hostmode", "relax", "baseline host-shape mismatch policy: relax (double tolerance) or refuse")
	ioSizes := flag.String("iosizes", "", "comma-separated edge counts for the graph I/O curves (empty disables)")
	ioDir := flag.String("iodir", os.TempDir(), "scratch directory for the I/O curve graph files")
	ioMinRatio := flag.Float64("iominratio", 5, "required binary-vs-text per-edge load speedup for the -check io gate")
	ioMaxOpen := flag.Duration("iomaxopen", 10*time.Millisecond, "maximum mmap open latency for the -check io gate")
	churnFracs := flag.String("churnfracs", "", "comma-separated churn fractions for the incremental-maintenance curves (empty disables)")
	churnSeed := flag.Int64("churnseed", 7, "seed for the churn curve mutation streams")
	churnMinSpeedup := flag.Float64("churnminspeedup", 2, "required incremental-vs-full speedup when <10%% of clusters break, for the -check churn gate")
	churnMinReuse := flag.Float64("churnminreuse", 0.5, "required cluster reuse fraction at churn <= 10%%, for the -check churn gate")
	flag.Parse()
	if *out == "" {
		*out = fmt.Sprintf("BENCH_%d.json", *pr)
	}
	if *hostMode != "relax" && *hostMode != "refuse" {
		fmt.Fprintf(os.Stderr, "benchjson: -hostmode must be relax or refuse, got %q\n", *hostMode)
		os.Exit(2)
	}

	// testing.Benchmark honours the -test.benchtime flag; register the
	// testing flags explicitly since this is a plain binary, not a test.
	testing.Init()
	if err := flag.Lookup("test.benchtime").Value.Set(*benchtime); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}

	rep := report{
		PR: *pr,
		Host: &hostInfo{
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			GoVersion:  runtime.Version(),
		},
		Baselines: []record{
			// BenchmarkSimulatorFlood on the pre-CSR simulator (seed commit
			// 818038f, measured 2026-08-06 on the CI container class): the
			// reference point for the PR 2 acceptance criterion.
			{Name: "BenchmarkSimulatorFlood@pre-PR2", Iterations: 0,
				NsPerOp: 3247143, BytesPerOp: 1541362, AllocsPerOp: 4097},
			// BenchmarkWalkRoutingGrid on the dense scheduler (commit
			// cb83db2, measured 2026-08-06 on the same container class): the
			// reference point for the PR 4 sparse-scheduling criterion.
			{Name: "BenchmarkWalkRoutingGrid@pre-PR4", Iterations: 0,
				NsPerOp: 35988029, BytesPerOp: 1512464, AllocsPerOp: 10350},
			// The materializing decomposition and InducedSubgraph on the
			// pre-CSR graph core (commit 861ee3f, measured 2026-08-06 on the
			// same container class): the reference points for the PR 5
			// zero-copy-view criterion (≥2× fewer bytes per decomposition).
			{Name: "BenchmarkDecomposeE4@pre-PR5", Iterations: 0,
				NsPerOp: 3535838, BytesPerOp: 319352, AllocsPerOp: 616},
			{Name: "BenchmarkDecomposeStress@pre-PR5", Iterations: 0,
				NsPerOp: 18377811, BytesPerOp: 1908857, AllocsPerOp: 8846},
			{Name: "BenchmarkInducedSubgraphCopy@pre-PR5", Iterations: 0,
				NsPerOp: 47613, BytesPerOp: 47624, AllocsPerOp: 165},
		},
	}
	fmt.Printf("host: %d CPUs, GOMAXPROCS %d, %s\n",
		rep.Host.NumCPU, rep.Host.GOMAXPROCS, rep.Host.GoVersion)
	for _, bm := range benchmarks.Named() {
		res := testing.Benchmark(bm.Fn)
		rec := record{
			Name:        bm.Name,
			Iterations:  res.N,
			NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
			BytesPerOp:  res.AllocedBytesPerOp(),
			AllocsPerOp: res.AllocsPerOp(),
		}
		rep.Benchmarks = append(rep.Benchmarks, rec)
		fmt.Printf("%-40s %10d iters %14.0f ns/op %10d B/op %8d allocs/op\n",
			rec.Name, rec.Iterations, rec.NsPerOp, rec.BytesPerOp, rec.AllocsPerOp)
	}
	workerCounts := benchmarks.WorkerCounts()
	for _, spec := range benchmarks.Curves() {
		c := curve{Name: spec.Name}
		for _, workers := range workerCounts {
			res := testing.Benchmark(spec.Fn(workers))
			pt := curvePoint{
				Workers:     workers,
				Iterations:  res.N,
				NsPerOp:     float64(res.T.Nanoseconds()) / float64(res.N),
				BytesPerOp:  res.AllocedBytesPerOp(),
				AllocsPerOp: res.AllocsPerOp(),
			}
			c.Points = append(c.Points, pt)
			fmt.Printf("%-40s %10d iters %14.0f ns/op %10d B/op %8d allocs/op\n",
				fmt.Sprintf("curve:%s/workers=%d", spec.Name, workers),
				pt.Iterations, pt.NsPerOp, pt.BytesPerOp, pt.AllocsPerOp)
		}
		rep.Curves = append(rep.Curves, c)
	}
	if *ioSizes != "" {
		var sizes []int
		for _, part := range strings.Split(*ioSizes, ",") {
			v, perr := strconv.Atoi(strings.TrimSpace(part))
			if perr != nil || v <= 0 {
				fmt.Fprintf(os.Stderr, "benchjson: bad -iosizes entry %q\n", part)
				os.Exit(2)
			}
			sizes = append(sizes, v)
		}
		curves, ioErr := benchmarks.MeasureIO(sizes, *ioDir, os.Stdout)
		if ioErr != nil {
			fmt.Fprintf(os.Stderr, "benchjson: io curves: %v\n", ioErr)
			os.Exit(1)
		}
		rep.IO = curves
	}
	if *churnFracs != "" {
		var fracs []float64
		for _, part := range strings.Split(*churnFracs, ",") {
			v, perr := strconv.ParseFloat(strings.TrimSpace(part), 64)
			if perr != nil || v <= 0 || v >= 1 {
				fmt.Fprintf(os.Stderr, "benchjson: bad -churnfracs entry %q\n", part)
				os.Exit(2)
			}
			fracs = append(fracs, v)
		}
		curves, cErr := benchmarks.MeasureChurn(benchmarks.ChurnOptions{
			Fractions: fracs, Seed: *churnSeed, Log: os.Stdout,
		})
		if cErr != nil {
			fmt.Fprintf(os.Stderr, "benchjson: churn curves: %v\n", cErr)
			os.Exit(1)
		}
		rep.Churn = curves
	}

	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)

	if *checkPath != "" {
		raw, err := os.ReadFile(*checkPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: reading baseline: %v\n", err)
			os.Exit(1)
		}
		var base report
		if err := json.Unmarshal(raw, &base); err != nil {
			fmt.Fprintf(os.Stderr, "benchjson: parsing baseline %s: %v\n", *checkPath, err)
			os.Exit(1)
		}
		tol := *tolerance
		if base.Host == nil || !base.Host.sameShape(*rep.Host) {
			shape := "unrecorded"
			if base.Host != nil {
				shape = fmt.Sprintf("%d CPUs / GOMAXPROCS %d", base.Host.NumCPU, base.Host.GOMAXPROCS)
			}
			if *hostMode == "refuse" {
				fmt.Fprintf(os.Stderr,
					"benchjson: baseline %s host shape (%s) differs from this host (%d CPUs / GOMAXPROCS %d); refusing timing comparison (-hostmode refuse)\n",
					*checkPath, shape, rep.Host.NumCPU, rep.Host.GOMAXPROCS)
				os.Exit(1)
			}
			tol = 2 * *tolerance
			fmt.Fprintf(os.Stderr,
				"benchjson: WARNING: baseline %s host shape (%s) differs from this host (%d CPUs / GOMAXPROCS %d); relaxing ns/op tolerance to %.0f%%\n",
				*checkPath, shape, rep.Host.NumCPU, rep.Host.GOMAXPROCS, tol*100)
		}
		violations := check(&rep, &base, tol)
		if *minSpeedup > 0 {
			violations = append(violations, checkSpeedup(&rep, *minSpeedup)...)
		}
		if len(rep.IO) > 0 {
			violations = append(violations, checkIO(&rep, *ioMinRatio, *ioMaxOpen)...)
		}
		if len(rep.Churn) > 0 {
			violations = append(violations, checkChurn(&rep, *churnMinSpeedup, *churnMinReuse)...)
		}
		if len(violations) > 0 {
			for _, v := range violations {
				fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", v)
			}
			os.Exit(1)
		}
		fmt.Printf("regression check against %s passed\n", *checkPath)
	}
}
