// Command decompose generates (or reads) a graph, runs an (ε, φ) expander
// decomposition, and prints cluster statistics and contract verification.
//
// Usage:
//
//	decompose [-family grid|trigrid|torus|planar|outer|tree|hypercube|er]
//	          [-n 64] [-eps 0.3] [-seed 1] [-workers 1] [-distributed]
//	          [-in file] [-mmap]
//
// With -in, the graph is read from a file in either on-disk format (the text
// edge list or the binary CSR format, sniffed by magic). -mmap additionally
// memory-maps a binary file instead of copying it into the heap — the way to
// open multi-hundred-megabyte graphs instantly.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"expandergap/internal/congest"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

func main() {
	familyFlag := flag.String("family", "grid", "graph family to generate")
	nFlag := flag.Int("n", 64, "approximate vertex count")
	epsFlag := flag.Float64("eps", 0.3, "edge-removal budget ε")
	seedFlag := flag.Int64("seed", 1, "random seed")
	workersFlag := flag.Int("workers", 1, "decomposer goroutine pool size (>1 enables the parallel recursion)")
	distFlag := flag.Bool("distributed", false, "use the distributed (MPX+refine) decomposer")
	inFlag := flag.String("in", "", "read graph from a file (text edge list or binary CSR) instead of generating")
	mmapFlag := flag.Bool("mmap", false, "memory-map the -in file (binary CSR format only)")
	flag.Parse()

	g, err := buildGraph(*familyFlag, *nFlag, *seedFlag, *inFlag, *mmapFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "decompose: %v\n", err)
		os.Exit(2)
	}
	fmt.Printf("graph: %v (density %.3f, diameter %d)\n", g, g.EdgeDensity(), g.Diameter())

	var dec *expander.Decomposition
	if *distFlag {
		var metrics congest.Metrics
		dec, metrics, err = expander.DistributedDecompose(g, congest.Config{Seed: *seedFlag}, *epsFlag)
		if err == nil {
			fmt.Printf("distributed stage: %d rounds, %d messages, %d bits\n",
				metrics.Rounds, metrics.Messages, metrics.TotalBits(g.N()))
		}
	} else {
		dec, err = expander.Decompose(g, *epsFlag, expander.Options{Seed: *seedFlag, Workers: *workersFlag})
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "decompose: %v\n", err)
		os.Exit(1)
	}

	fmt.Printf("clusters: %d  removed edges: %d (%.4f of |E|, budget %.4f)  φ-target: %.5f\n",
		len(dec.Clusters), len(dec.Removed), dec.CutFraction(g), *epsFlag, dec.Phi)
	hist := map[int]int{}
	for _, c := range dec.Clusters {
		hist[bucket(len(c))]++
	}
	fmt.Println("cluster-size histogram (by power-of-two bucket):")
	for b := 1; b <= dec.LargestCluster(); b *= 2 {
		if hist[b] > 0 {
			fmt.Printf("  ~%4d vertices: %d clusters\n", b, hist[b])
		}
	}
	rng := rand.New(rand.NewSource(*seedFlag))
	fmt.Printf("stats: %v\n", dec.ComputeStats(g, rng))
	rep := dec.Verify(g, rng)
	fmt.Printf("verify: cutOK=%v conductanceOK=%v (min Φ=%.5f, exact=%v) connected=%v\n",
		rep.CutOK, rep.ConductanceOK, rep.MinConductance, rep.Exact, rep.Connected)
}

func bucket(size int) int {
	return 1 << int(math.Round(math.Log2(float64(size))))
}

func buildGraph(family string, n int, seed int64, in string, useMmap bool) (*graph.Graph, error) {
	if in != "" {
		if useMmap {
			// The mapping stays open for the process lifetime; the kernel
			// reclaims it at exit.
			mg, err := graph.OpenMapped(in)
			if err != nil {
				return nil, err
			}
			return mg.Graph, nil
		}
		return graph.LoadFile(in)
	}
	rng := rand.New(rand.NewSource(seed))
	side := int(math.Sqrt(float64(n)))
	if side < 3 {
		side = 3
	}
	switch family {
	case "grid":
		return graph.Grid(side, side), nil
	case "trigrid":
		return graph.TriangulatedGrid(side, side), nil
	case "torus":
		return graph.Torus(side, side), nil
	case "planar":
		return graph.RandomMaximalPlanar(n, rng), nil
	case "outer":
		return graph.RandomOuterplanar(n, rng), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	case "hypercube":
		d := int(math.Round(math.Log2(float64(n))))
		if d < 2 {
			d = 2
		}
		return graph.Hypercube(d), nil
	case "er":
		return graph.ErdosRenyi(n, 4/float64(n), rng), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
