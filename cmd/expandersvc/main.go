// Command expandersvc is the resident decomposition-as-a-service server:
// it loads a graph once (text edge list, binary CSR, or zero-copy mmap),
// computes its expander decomposition once, and serves approximate-matching
// / MIS / clustering / walk-routing queries over HTTP against that cached
// snapshot, with an admission-controlled run pool, request coalescing,
// per-(epoch, params) encoded-response caching under a byte-capped LRU,
// hot snapshot swap via POST /reload, and graceful shutdown. When the
// admission queue is full, new canonical work is rejected with
// 429 + Retry-After; cache hits and coalesced followers are never rejected.
//
// Usage:
//
//	expandersvc -graph er.bin [-mmap] [-addr :8080] [-eps 0.3] [-seed 1]
//	            [-decworkers 4] [-simworkers 0] [-batchwindow 2ms]
//	            [-runpool 0] [-queuedepth 0] [-cachebytes 268435456]
//	            [-pprof] [-shutdowntimeout 10s]
//
// Endpoints (full schemas in API.md):
//
//	GET  /healthz          liveness + current epoch
//	GET  /statz            snapshot, cache, pool, batching and per-family counters
//	POST /reload           build a new snapshot off to the side and swap it in
//	POST /query/matching   approximate maximum weight matching
//	POST /query/mis        approximate maximum independent set
//	POST /query/clustering low-diameter clustering
//	POST /query/walkroute  Lemma 2.4 random-walk routing to cluster leaders
//	GET  /debug/pprof/*    runtime profiles (only with -pprof)
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"syscall"
	"time"

	"expandergap/internal/serve"
)

func main() {
	graphFlag := flag.String("graph", "", "graph file to serve (text edge list or binary CSR; required)")
	mmapFlag := flag.Bool("mmap", false, "memory-map the graph file (binary CSR only; file must outlive the process)")
	addrFlag := flag.String("addr", ":8080", "listen address")
	epsFlag := flag.Float64("eps", 0.3, "decomposition edge-removal budget ε")
	seedFlag := flag.Int64("seed", 1, "decomposition seed")
	decWorkers := flag.Int("decworkers", 1, "parallel decomposer workers (>1 enables the parallel recursion)")
	simWorkers := flag.Int("simworkers", 0, "simulator executor workers per query (0 = sequential)")
	batchWindow := flag.Duration("batchwindow", 2*time.Millisecond, "how long a flight leader waits for coalescing followers")
	runPool := flag.Int("runpool", 0, "canonical-run pool workers (0 = min(GOMAXPROCS, NumCPU))")
	queueDepth := flag.Int("queuedepth", 0, "admission queue depth before 429s (0 = 4x pool workers)")
	cacheBytes := flag.Int64("cachebytes", 0, "result cache capacity in bytes before LRU eviction (0 = 256 MiB)")
	pprofFlag := flag.Bool("pprof", false, "expose /debug/pprof/* runtime profiling endpoints")
	shutdownTimeout := flag.Duration("shutdowntimeout", 10*time.Second, "graceful drain budget on SIGINT/SIGTERM")
	flag.Parse()
	if *graphFlag == "" {
		fmt.Fprintln(os.Stderr, "expandersvc: -graph is required")
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "expandersvc: ", log.LstdFlags)
	srv, err := serve.New(serve.Config{
		Spec: serve.Spec{
			Path: *graphFlag, Mmap: *mmapFlag,
			Eps: *epsFlag, Seed: *seedFlag, DecWorkers: *decWorkers,
		},
		SimWorkers:  *simWorkers,
		BatchWindow: *batchWindow,
		RunPool:     *runPool,
		QueueDepth:  *queueDepth,
		CacheBytes:  *cacheBytes,
		Log:         logger,
	})
	if err != nil {
		logger.Fatalf("startup: %v", err)
	}

	handler := srv.Handler()
	if *pprofFlag {
		mux := http.NewServeMux()
		mux.Handle("/", handler)
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		handler = mux
		logger.Printf("pprof endpoints enabled at /debug/pprof/")
	}

	httpSrv := &http.Server{
		Addr:              *addrFlag,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}
	done := make(chan error, 1)
	go func() { done <- httpSrv.ListenAndServe() }()
	logger.Printf("serving on %s (epoch %d)", *addrFlag, srv.Epoch())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-done:
		logger.Fatalf("listener: %v", err)
	case got := <-sig:
		logger.Printf("received %v, draining (budget %v)", got, *shutdownTimeout)
	}
	ctx, cancel := context.WithTimeout(context.Background(), *shutdownTimeout)
	defer cancel()
	if err := httpSrv.Shutdown(ctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		logger.Printf("shutdown: %v", err)
	}
	srv.Close()
	logger.Printf("bye")
}
