// Command experiments runs the derived evaluation suite E1–E12 (one
// experiment per theorem/lemma of the paper; see DESIGN.md §4) and prints
// the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-scale small|full] [-only E5[,E6,...]] [-seed N] [-reportdir DIR]
//
// -reportdir writes one machine-readable JSON report per experiment to
// DIR/<id>.json: the experiment's shape-check results plus the observer's
// phase tree (rounds, messages, words, bits, and message-size histograms
// attributed to each named phase of the run). Experiments that do not route
// an observer through their simulators report an empty phase tree.
//
// The process exits non-zero if any experiment's shape checks fail.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"expandergap/internal/congest"
	"expandergap/internal/experiments"
)

// report is the schema of one -reportdir file.
type report struct {
	ID     string          `json:"id"`
	Title  string          `json:"title"`
	Scale  string          `json:"scale"`
	Seed   int64           `json:"seed"`
	Checks []reportCheck   `json:"checks"`
	Phases *congest.Report `json:"phases"`
}

type reportCheck struct {
	Name string `json:"name"`
	OK   bool   `json:"ok"`
	Info string `json:"info,omitempty"`
}

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: small or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	seedFlag := flag.Int64("seed", 0, "override the experiment seed (0 = default)")
	listFlag := flag.Bool("list", false, "list experiment IDs and exit")
	reportDir := flag.String("reportdir", "", "write one JSON phase report per experiment to this directory")
	flag.Parse()

	if *listFlag {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}
	params := experiments.DefaultParams(scale)
	if *seedFlag != 0 {
		params.Seed = *seedFlag
	}

	ids := experiments.IDs()
	if *onlyFlag != "" {
		ids = strings.Split(*onlyFlag, ",")
	}

	if *reportDir != "" {
		if err := os.MkdirAll(*reportDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
			os.Exit(1)
		}
	}

	failed := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		runParams := params
		if *reportDir != "" {
			// A fresh observer per experiment keeps each report's phase
			// tree self-contained.
			runParams.Obs = congest.NewObserver()
		}
		o := experiments.Named(id, runParams)
		fmt.Println(o.Table)
		for _, c := range o.Checks {
			status := "PASS"
			if !c.OK {
				status = "FAIL"
				failed++
			}
			line := fmt.Sprintf("  [%s] %s", status, c.Name)
			if c.Info != "" {
				line += " — " + c.Info
			}
			fmt.Println(line)
		}
		fmt.Println()
		if *reportDir != "" {
			rep := report{ID: id, Title: o.Table.Title, Scale: *scaleFlag, Seed: runParams.Seed, Phases: runParams.Obs.Report()}
			for _, c := range o.Checks {
				rep.Checks = append(rep.Checks, reportCheck{Name: c.Name, OK: c.OK, Info: c.Info})
			}
			data, err := json.MarshalIndent(rep, "", "  ")
			if err == nil {
				err = os.WriteFile(filepath.Join(*reportDir, id+".json"), append(data, '\n'), 0o644)
			}
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: report %s: %v\n", id, err)
				os.Exit(1)
			}
		}
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d shape check(s) failed\n", failed)
		os.Exit(1)
	}
}
