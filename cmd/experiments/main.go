// Command experiments runs the derived evaluation suite E1–E12 (one
// experiment per theorem/lemma of the paper; see DESIGN.md §4) and prints
// the tables recorded in EXPERIMENTS.md.
//
// Usage:
//
//	experiments [-scale small|full] [-only E5[,E6,...]] [-seed N]
//
// The process exits non-zero if any experiment's shape checks fail.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"expandergap/internal/experiments"
)

func main() {
	scaleFlag := flag.String("scale", "full", "experiment scale: small or full")
	onlyFlag := flag.String("only", "", "comma-separated experiment IDs (default: all)")
	seedFlag := flag.Int64("seed", 0, "override the experiment seed (0 = default)")
	listFlag := flag.Bool("list", false, "list experiment IDs and exit")
	flag.Parse()

	if *listFlag {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	var scale experiments.Scale
	switch *scaleFlag {
	case "small":
		scale = experiments.Small
	case "full":
		scale = experiments.Full
	default:
		fmt.Fprintf(os.Stderr, "experiments: unknown scale %q (want small or full)\n", *scaleFlag)
		os.Exit(2)
	}
	params := experiments.DefaultParams(scale)
	if *seedFlag != 0 {
		params.Seed = *seedFlag
	}

	ids := experiments.IDs()
	if *onlyFlag != "" {
		ids = strings.Split(*onlyFlag, ",")
	}

	failed := 0
	for _, id := range ids {
		o := experiments.Named(strings.TrimSpace(id), params)
		fmt.Println(o.Table)
		for _, c := range o.Checks {
			status := "PASS"
			if !c.OK {
				status = "FAIL"
				failed++
			}
			line := fmt.Sprintf("  [%s] %s", status, c.Name)
			if c.Info != "" {
				line += " — " + c.Info
			}
			fmt.Println(line)
		}
		fmt.Println()
	}
	if failed > 0 {
		fmt.Fprintf(os.Stderr, "experiments: %d shape check(s) failed\n", failed)
		os.Exit(1)
	}
}
