// Command graphgen generates a graph from any of the repository's workload
// families and writes it as an edge list (the format cmd/decompose -in
// reads) or Graphviz DOT.
//
// Usage:
//
//	graphgen -family planar -n 100 -seed 7 -format edgelist > g.txt
//	graphgen -family torus -n 64 -format dot | dot -Tpng > g.png
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"

	"expandergap/internal/graph"
)

func main() {
	familyFlag := flag.String("family", "grid", "family: grid|trigrid|torus|doubletorus|planar|outer|tree|ktree|hypercube|er|cycle|complete")
	nFlag := flag.Int("n", 64, "approximate vertex count")
	seedFlag := flag.Int64("seed", 1, "random seed")
	formatFlag := flag.String("format", "edgelist", "output format: edgelist or dot")
	weightsFlag := flag.Int64("weights", 0, "attach uniform random weights in [1,W] (0 = unweighted)")
	signsFlag := flag.Float64("signs", -1, "attach random signs with P[+] = value (negative = unsigned)")
	flag.Parse()

	rng := rand.New(rand.NewSource(*seedFlag))
	g, err := build(*familyFlag, *nFlag, rng)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(2)
	}
	if *weightsFlag > 0 {
		g = graph.WithRandomWeights(g, *weightsFlag, rng)
	} else if *signsFlag >= 0 {
		g = graph.WithRandomSigns(g, *signsFlag, rng)
	}
	switch *formatFlag {
	case "edgelist":
		err = graph.WriteEdgeList(os.Stdout, g)
	case "dot":
		err = graph.WriteDOT(os.Stdout, g, nil)
	default:
		err = fmt.Errorf("unknown format %q", *formatFlag)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}
}

func build(family string, n int, rng *rand.Rand) (*graph.Graph, error) {
	side := int(math.Sqrt(float64(n)))
	if side < 3 {
		side = 3
	}
	switch family {
	case "grid":
		return graph.Grid(side, side), nil
	case "trigrid":
		return graph.TriangulatedGrid(side, side), nil
	case "torus":
		return graph.Torus(side, side), nil
	case "doubletorus":
		return graph.DoubleTorus(side), nil
	case "planar":
		return graph.RandomMaximalPlanar(n, rng), nil
	case "outer":
		return graph.RandomOuterplanar(n, rng), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	case "ktree":
		return graph.KTree(n, 3, rng), nil
	case "hypercube":
		d := int(math.Round(math.Log2(float64(n))))
		if d < 2 {
			d = 2
		}
		return graph.Hypercube(d), nil
	case "er":
		return graph.ErdosRenyi(n, 4/float64(n), rng), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
