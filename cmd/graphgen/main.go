// Command graphgen generates a graph from any of the repository's workload
// families and writes it as a text edge list (the format cmd/decompose -in
// reads), the binary CSR format of internal/graph (loadable with mmap), or
// Graphviz DOT.
//
// Usage:
//
//	graphgen -family planar -n 100 -seed 7 -format edgelist > g.txt
//	graphgen -family er -n 10000000 -deg 8 -stream -format bin -o g.bin
//	graphgen -family torus -n 64 -format dot | dot -Tpng > g.png
//
// -o writes atomically (temp file + rename), so a crash or a full disk never
// leaves a truncated graph behind at the target path. -stream switches the
// er, planar, and randplanar families to the streaming generators, which skip
// the Builder's pending-edge buffer and assemble CSR arrays in parallel
// (-workers); for er the streaming sampler draws from a different (equally
// distributed) random stream than the buffered one.
//
// -churn N additionally emits a deterministic mutation stream of N edge
// insert/delete ops for the generated graph (seeded by -churnseed,
// splitmix64-derived like the streaming generators) to -churnout, in the
// churn trace format of internal/graph — the same trace the serve smoke job
// replays against /mutate and the churn benchmarks measure, so every
// consumer shares one canonical op stream:
//
//	graphgen -family grid -n 4096 -o g.txt -churn 500 -churnseed 7 -churnout g.churn
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"math/rand"
	"os"
	"path/filepath"

	"expandergap/internal/graph"
)

func main() {
	familyFlag := flag.String("family", "grid", "family: grid|trigrid|torus|doubletorus|planar|randplanar|outer|tree|ktree|hypercube|er|cycle|complete")
	nFlag := flag.Int("n", 64, "approximate vertex count")
	seedFlag := flag.Int64("seed", 1, "random seed")
	formatFlag := flag.String("format", "edgelist", "output format: edgelist, bin, or dot")
	outFlag := flag.String("o", "", "output path (atomic write; default stdout)")
	streamFlag := flag.Bool("stream", false, "use the streaming generators for er/planar/randplanar")
	workersFlag := flag.Int("workers", 0, "parallel workers for streaming generation (0 = GOMAXPROCS)")
	degFlag := flag.Float64("deg", 4, "er family: target average degree (p = deg/n)")
	keepFlag := flag.Float64("keep", 0.6, "randplanar family: fraction of triangulation edges kept")
	weightsFlag := flag.Int64("weights", 0, "attach uniform random weights in [1,W] (0 = unweighted)")
	signsFlag := flag.Float64("signs", -1, "attach random signs with P[+] = value (negative = unsigned)")
	churnFlag := flag.Int("churn", 0, "also emit a deterministic mutation stream of this many edge ops")
	churnSeedFlag := flag.Int64("churnseed", 1, "seed for the churn stream")
	churnOutFlag := flag.String("churnout", "", "churn trace output path (atomic write; required with -churn)")
	flag.Parse()

	cfg := genConfig{
		n:       *nFlag,
		seed:    *seedFlag,
		stream:  *streamFlag,
		workers: *workersFlag,
		deg:     *degFlag,
		keep:    *keepFlag,
	}
	g, err := build(*familyFlag, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(2)
	}
	rng := rand.New(rand.NewSource(*seedFlag))
	if *weightsFlag > 0 {
		g = graph.WithRandomWeights(g, *weightsFlag, rng)
	} else if *signsFlag >= 0 {
		g = graph.WithRandomSigns(g, *signsFlag, rng)
	}

	write := func(w io.Writer) error {
		switch *formatFlag {
		case "edgelist":
			return graph.WriteEdgeList(w, g)
		case "bin":
			return graph.WriteBinary(w, g)
		case "dot":
			return graph.WriteDOT(w, g, nil)
		default:
			return fmt.Errorf("unknown format %q", *formatFlag)
		}
	}
	if err := emit(*outFlag, write); err != nil {
		fmt.Fprintf(os.Stderr, "graphgen: %v\n", err)
		os.Exit(1)
	}

	if *churnFlag > 0 {
		if *churnOutFlag == "" {
			fmt.Fprintln(os.Stderr, "graphgen: -churn requires -churnout (the graph already owns stdout)")
			os.Exit(2)
		}
		ops, err := graph.GenerateChurn(g, *churnFlag, *churnSeedFlag)
		if err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: churn: %v\n", err)
			os.Exit(1)
		}
		if err := emit(*churnOutFlag, func(w io.Writer) error {
			return graph.WriteChurn(w, ops)
		}); err != nil {
			fmt.Fprintf(os.Stderr, "graphgen: churn: %v\n", err)
			os.Exit(1)
		}
	}
}

// emit writes through fn to stdout, or atomically to path: the output lands
// in a same-directory temp file that is fsynced and renamed over the target
// only after every write has succeeded, and is removed on any failure.
func emit(path string, fn func(io.Writer) error) error {
	if path == "" {
		return fn(os.Stdout)
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	defer func() {
		if tmp != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if err := fn(tmp); err != nil {
		return err
	}
	if err := tmp.Sync(); err != nil {
		return err
	}
	// CreateTemp opens 0600; published graphs should be world-readable.
	if err := tmp.Chmod(0o644); err != nil {
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	name := tmp.Name()
	tmp = nil // success path: nothing left for the deferred cleanup
	if err := os.Rename(name, path); err != nil {
		os.Remove(name)
		return err
	}
	return nil
}

type genConfig struct {
	n       int
	seed    int64
	stream  bool
	workers int
	deg     float64
	keep    float64
}

func build(family string, cfg genConfig) (*graph.Graph, error) {
	n := cfg.n
	rng := rand.New(rand.NewSource(cfg.seed))
	side := int(math.Sqrt(float64(n)))
	if side < 3 {
		side = 3
	}
	p := cfg.deg / float64(n)
	switch family {
	case "grid":
		return graph.Grid(side, side), nil
	case "trigrid":
		return graph.TriangulatedGrid(side, side), nil
	case "torus":
		return graph.Torus(side, side), nil
	case "doubletorus":
		return graph.DoubleTorus(side), nil
	case "planar":
		if cfg.stream {
			return graph.RandomMaximalPlanarStream(n, rng, cfg.workers), nil
		}
		return graph.RandomMaximalPlanar(n, rng), nil
	case "randplanar":
		if cfg.stream {
			return graph.RandomPlanarStream(n, cfg.keep, rng, cfg.workers), nil
		}
		return graph.RandomPlanar(n, cfg.keep, rng), nil
	case "outer":
		return graph.RandomOuterplanar(n, rng), nil
	case "tree":
		return graph.RandomTree(n, rng), nil
	case "ktree":
		return graph.KTree(n, 3, rng), nil
	case "hypercube":
		d := int(math.Round(math.Log2(float64(n))))
		if d < 2 {
			d = 2
		}
		return graph.Hypercube(d), nil
	case "er":
		if cfg.stream {
			return graph.ErdosRenyiStream(n, p, cfg.seed, cfg.workers), nil
		}
		return graph.ErdosRenyi(n, p, rng), nil
	case "cycle":
		return graph.Cycle(n), nil
	case "complete":
		return graph.Complete(n), nil
	default:
		return nil, fmt.Errorf("unknown family %q", family)
	}
}
