// Command loadgen is the closed-loop load generator for expandersvc: N
// concurrent clients per point issue back-to-back queries against each
// family, recording QPS, p50/p99 latency, cache-hit latency, rejection
// rate, server-side queue wait and coalescing batch occupancy, plus an
// optional hot-reload-under-load exercise and a deliberate-overload probe.
// All load goroutines share one keep-alive http.Transport sized to the
// largest client count, so the sweep measures the server, not the dialer.
// The measurements land in the "serve" section of a BENCH_<pr>.json report
// (merged into an existing report with -merge, so the benchjson sections
// survive untouched).
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-families matching,mis]
//	        [-clients 1,16,128,1024] [-requests 25] [-seeds 8] [-eps 0.25]
//	        [-reloads 3] [-overload 64] [-overloadfor 10s]
//	        [-mutate g.churn] [-mutatebatch 64]
//	        [-out BENCH_10.json] [-merge] [-check] [-pr 10]
//	        [-cachep99x 25] [-cachep99floor 250ms] [-overloadp99 5s]
//
// With -mutate, loadgen additionally replays a churn trace (the format
// cmd/graphgen -churn emits) against POST /mutate in -mutatebatch-sized
// batches while query clients keep the serving path under load — the
// dynamic-graph leg of the serve smoke job.
//
// With -check, loadgen gates the run it just measured: every point must
// complete with zero non-429 failures, positive QPS and p50 <= p99; the
// cache-hit p99 at the largest client count must stay within -cachep99x
// times the reference (16-client) point, modulo the -cachep99floor
// absolute floor; the reload exercise (if run) must finish with zero
// reload failures, zero failed requests and zero epoch regressions; the
// mutate exercise (if run) must apply every batch, drop zero requests,
// never regress an epoch, and advance the epoch once per batch; and
// the overload probe (if run) must show actual rejections, all with valid
// Retry-After, zero non-429 failures, and cached-path p99 under
// -overloadp99. Exit status 1 on violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"expandergap/internal/benchmarks"
	"expandergap/internal/graph"
)

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFamilies(csv string) []string {
	var out []string
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// checkOpts carries the -check thresholds.
type checkOpts struct {
	reloads       int
	overload      int
	mutateBatches int
	cacheP99X     float64
	cacheP99Floor time.Duration
	overloadP99   time.Duration
}

// refPoint picks the scaling reference for the cache-hit p99 gate: the
// 16-client point if present, else the first multi-client point, else the
// first point.
func refPoint(points []benchmarks.ServePoint) benchmarks.ServePoint {
	for _, p := range points {
		if p.Clients == 16 {
			return p
		}
	}
	for _, p := range points {
		if p.Clients > 1 {
			return p
		}
	}
	return points[0]
}

// checkReport applies the within-run gates. Returns the violations found.
func checkReport(rep *benchmarks.ServeReport, opts checkOpts) []string {
	var bad []string
	for _, c := range rep.Curves {
		if len(c.Points) == 0 {
			bad = append(bad, fmt.Sprintf("%s: no points measured", c.Family))
			continue
		}
		for _, p := range c.Points {
			tag := fmt.Sprintf("%s clients=%d", c.Family, p.Clients)
			if p.Failed != 0 {
				bad = append(bad, fmt.Sprintf("%s: %d non-429 failures", tag, p.Failed))
			}
			if p.QPS <= 0 {
				bad = append(bad, fmt.Sprintf("%s: nonpositive QPS %.3f", tag, p.QPS))
			}
			if p.P50Ms > p.P99Ms {
				bad = append(bad, fmt.Sprintf("%s: p50 %.2fms exceeds p99 %.2fms", tag, p.P50Ms, p.P99Ms))
			}
		}
		// Cache-hit latency must not collapse with client count: the p99
		// over cache hits at the largest point stays within cacheP99X of
		// the reference point (absolute floor absorbs sub-ms noise).
		last := c.Points[len(c.Points)-1]
		ref := refPoint(c.Points)
		if last.Clients > ref.Clients && last.CacheHitP99Ms > 0 && ref.CacheHitP99Ms > 0 {
			limit := ref.CacheHitP99Ms * opts.cacheP99X
			if floor := float64(opts.cacheP99Floor.Milliseconds()); limit < floor {
				limit = floor
			}
			if last.CacheHitP99Ms > limit {
				bad = append(bad, fmt.Sprintf(
					"%s: cache-hit p99 %.2fms at %d clients exceeds %.2fms (%.0fx the %d-client point)",
					c.Family, last.CacheHitP99Ms, last.Clients, limit, opts.cacheP99X, ref.Clients))
			}
		}
	}
	if opts.reloads > 0 {
		r := rep.Reload
		if r == nil {
			bad = append(bad, "reload exercise requested but not recorded")
		} else {
			if r.ReloadFailures != 0 {
				bad = append(bad, fmt.Sprintf("reload: %d of %d reloads failed", r.ReloadFailures, r.Reloads))
			}
			if r.Failed != 0 {
				bad = append(bad, fmt.Sprintf("reload: %d of %d requests failed during swaps", r.Failed, r.Requests))
			}
			if r.EpochRegressions != 0 {
				bad = append(bad, fmt.Sprintf("reload: %d epoch regressions observed", r.EpochRegressions))
			}
			if r.LastEpoch < r.FirstEpoch+int64(r.Reloads-r.ReloadFailures) && r.Reloads > 0 {
				// Epochs observed by queries should advance with the swaps
				// (the last client can race the final swap by at most one).
				if r.LastEpoch < r.FirstEpoch+1 && r.Reloads-r.ReloadFailures >= 2 {
					bad = append(bad, fmt.Sprintf("reload: epochs stuck at %d despite %d swaps", r.LastEpoch, r.Reloads))
				}
			}
		}
	}
	if opts.mutateBatches > 0 {
		m := rep.Mutate
		if m == nil {
			bad = append(bad, "mutate exercise requested but not recorded")
		} else {
			if m.BatchFailures != 0 {
				bad = append(bad, fmt.Sprintf("mutate: %d of %d batches failed", m.BatchFailures, m.Batches))
			}
			if m.Failed != 0 {
				bad = append(bad, fmt.Sprintf("mutate: %d of %d requests failed during swaps", m.Failed, m.Requests))
			}
			if m.EpochRegressions != 0 {
				bad = append(bad, fmt.Sprintf("mutate: %d epoch regressions observed", m.EpochRegressions))
			}
			// Every applied batch bumps the epoch exactly once, so the final
			// observed epoch must cover first + successful batches (the last
			// client can race the final swap by at most one, but measureMutate
			// waits for the final epoch to be observed).
			if ok := m.Batches - m.BatchFailures; ok >= 2 && m.LastEpoch < m.FirstEpoch+1 {
				bad = append(bad, fmt.Sprintf("mutate: epochs stuck at %d despite %d applied batches", m.LastEpoch, ok))
			}
		}
	}
	if opts.overload > 0 {
		o := rep.Overload
		if o == nil {
			bad = append(bad, "overload probe requested but not recorded")
		} else {
			if o.Failed != 0 {
				bad = append(bad, fmt.Sprintf("overload: %d non-429 failures", o.Failed))
			}
			if o.Rejected == 0 {
				bad = append(bad, "overload: saturation produced zero rejections — probe did not overload the pool")
			} else if !o.RetryAfterValid {
				bad = append(bad, "overload: some 429s carried missing or inconsistent Retry-After")
			}
			if o.CacheHits == 0 {
				bad = append(bad, "overload: cached traffic recorded zero hits")
			}
			if capMs := float64(opts.overloadP99.Milliseconds()); o.CachedP99Ms > capMs {
				bad = append(bad, fmt.Sprintf("overload: cached-path p99 %.2fms exceeds %.0fms cap", o.CachedP99Ms, capMs))
			}
		}
	}
	return bad
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "expandersvc base URL")
	familiesFlag := flag.String("families", "matching,mis,clustering,walkroute", "comma-separated query families to sweep")
	clientsFlag := flag.String("clients", "1,16,128,1024", "comma-separated concurrent client counts")
	requests := flag.Int("requests", 25, "requests per client per point")
	seeds := flag.Int("seeds", 8, "seed pool size (mixes cache hits with fresh coalescable runs)")
	eps := flag.Float64("eps", 0.25, "query approximation parameter")
	reloads := flag.Int("reloads", 0, "hot /reload swaps to issue under sustained load (0 = skip)")
	overload := flag.Int("overload", 0, "clients for the deliberate-overload probe (0 = skip)")
	overloadFor := flag.Duration("overloadfor", 10*time.Second, "duration of the overload probe")
	mutateTrace := flag.String("mutate", "", "churn trace file to replay against /mutate under load (empty = skip)")
	mutateBatch := flag.Int("mutatebatch", 64, "ops per /mutate batch for the -mutate exercise")
	out := flag.String("out", "", "write (or with -merge, update) this BENCH json file")
	merge := flag.Bool("merge", false, "read -out first and only replace its \"serve\" section")
	check := flag.Bool("check", false, "gate the run: zero non-429 failures, flat cache-hit latency, clean reloads and overload")
	pr := flag.Int("pr", 10, "PR number stamped into a fresh (non-merge) report")
	cacheP99X := flag.Float64("cachep99x", 25, "-check: max cache-hit p99 growth factor from the 16-client point to the largest")
	cacheP99Floor := flag.Duration("cachep99floor", 250*time.Millisecond, "-check: absolute cache-hit p99 floor below which the growth gate never fires")
	overloadP99 := flag.Duration("overloadp99", 5*time.Second, "-check: cached-path p99 cap during the overload probe")
	flag.Parse()

	clients, err := parseInts(*clientsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -clients: %v\n", err)
		os.Exit(2)
	}

	var mutateOps []graph.Op
	if *mutateTrace != "" {
		f, err := os.Open(*mutateTrace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: -mutate: %v\n", err)
			os.Exit(2)
		}
		mutateOps, err = graph.ReadChurn(f)
		f.Close()
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: -mutate: %v\n", err)
			os.Exit(2)
		}
		if len(mutateOps) == 0 {
			fmt.Fprintf(os.Stderr, "loadgen: -mutate: trace %s has no ops\n", *mutateTrace)
			os.Exit(2)
		}
	}

	rep, err := benchmarks.MeasureServe(benchmarks.ServeOptions{
		BaseURL:           strings.TrimRight(*addr, "/"),
		Families:          parseFamilies(*familiesFlag),
		Clients:           clients,
		RequestsPerClient: *requests,
		SeedPool:          *seeds,
		Eps:               *eps,
		Reloads:           *reloads,
		OverloadClients:   *overload,
		OverloadDuration:  *overloadFor,
		MutateOps:         mutateOps,
		MutateBatch:       *mutateBatch,
		Log:               os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	if *out != "" {
		doc := map[string]any{"pr": *pr}
		if *merge {
			data, err := os.ReadFile(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: -merge: %v\n", err)
				os.Exit(1)
			}
			doc = map[string]any{}
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: -merge: parse %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
		doc["serve"] = rep
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: encode: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote serve section to %s\n", *out)
	}

	if *check {
		mutateBatches := 0
		if n := len(mutateOps); n > 0 {
			mutateBatches = (n + *mutateBatch - 1) / *mutateBatch
		}
		bad := checkReport(rep, checkOpts{
			reloads:       *reloads,
			overload:      *overload,
			mutateBatches: mutateBatches,
			cacheP99X:     *cacheP99X,
			cacheP99Floor: *cacheP99Floor,
			overloadP99:   *overloadP99,
		})
		if len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: %s\n", b)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: all checks passed")
	}
}
