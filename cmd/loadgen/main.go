// Command loadgen is the closed-loop load generator for expandersvc: N
// concurrent clients per point issue back-to-back queries against each
// family, recording QPS, p50/p99 latency, cache hit rate and coalescing
// batch occupancy, plus an optional hot-reload-under-load exercise. The
// measurements land in the "serve" section of a BENCH_<pr>.json report
// (merged into an existing report with -merge, so the benchjson sections
// survive untouched).
//
// Usage:
//
//	loadgen -addr http://127.0.0.1:8080 [-families matching,mis]
//	        [-clients 1,4,16] [-requests 25] [-seeds 8] [-eps 0.25]
//	        [-reloads 3] [-out BENCH_8.json] [-merge] [-check] [-pr 8]
//
// With -check, loadgen gates the run it just measured: every point must
// complete with zero failed requests, positive QPS and p50 <= p99, and the
// reload exercise (if run) must finish with zero reload failures, zero
// failed requests and zero epoch regressions. Exit status 1 on violation.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"expandergap/internal/benchmarks"
)

func parseInts(csv string) ([]int, error) {
	var out []int
	for _, f := range strings.Split(csv, ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			continue
		}
		v, err := strconv.Atoi(f)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad count %q", f)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseFamilies(csv string) []string {
	var out []string
	for _, f := range strings.Split(csv, ",") {
		if f = strings.TrimSpace(f); f != "" {
			out = append(out, f)
		}
	}
	return out
}

// checkReport applies the within-run gates. Returns the violations found.
func checkReport(rep *benchmarks.ServeReport, wantReloads int) []string {
	var bad []string
	for _, c := range rep.Curves {
		if len(c.Points) == 0 {
			bad = append(bad, fmt.Sprintf("%s: no points measured", c.Family))
		}
		for _, p := range c.Points {
			tag := fmt.Sprintf("%s clients=%d", c.Family, p.Clients)
			if p.Failed != 0 {
				bad = append(bad, fmt.Sprintf("%s: %d failed requests", tag, p.Failed))
			}
			if p.QPS <= 0 {
				bad = append(bad, fmt.Sprintf("%s: nonpositive QPS %.3f", tag, p.QPS))
			}
			if p.P50Ms > p.P99Ms {
				bad = append(bad, fmt.Sprintf("%s: p50 %.2fms exceeds p99 %.2fms", tag, p.P50Ms, p.P99Ms))
			}
		}
	}
	if wantReloads > 0 {
		r := rep.Reload
		if r == nil {
			bad = append(bad, "reload exercise requested but not recorded")
		} else {
			if r.ReloadFailures != 0 {
				bad = append(bad, fmt.Sprintf("reload: %d of %d reloads failed", r.ReloadFailures, r.Reloads))
			}
			if r.Failed != 0 {
				bad = append(bad, fmt.Sprintf("reload: %d of %d requests failed during swaps", r.Failed, r.Requests))
			}
			if r.EpochRegressions != 0 {
				bad = append(bad, fmt.Sprintf("reload: %d epoch regressions observed", r.EpochRegressions))
			}
			if r.LastEpoch < r.FirstEpoch+int64(r.Reloads-r.ReloadFailures) && r.Reloads > 0 {
				// Epochs observed by queries should advance with the swaps
				// (the last client can race the final swap by at most one).
				if r.LastEpoch < r.FirstEpoch+1 && r.Reloads-r.ReloadFailures >= 2 {
					bad = append(bad, fmt.Sprintf("reload: epochs stuck at %d despite %d swaps", r.LastEpoch, r.Reloads))
				}
			}
		}
	}
	return bad
}

func main() {
	addr := flag.String("addr", "http://127.0.0.1:8080", "expandersvc base URL")
	familiesFlag := flag.String("families", "matching,mis,clustering,walkroute", "comma-separated query families to sweep")
	clientsFlag := flag.String("clients", "1,4,16", "comma-separated concurrent client counts")
	requests := flag.Int("requests", 25, "requests per client per point")
	seeds := flag.Int("seeds", 8, "seed pool size (mixes cache hits with fresh coalescable runs)")
	eps := flag.Float64("eps", 0.25, "query approximation parameter")
	reloads := flag.Int("reloads", 0, "hot /reload swaps to issue under sustained load (0 = skip)")
	out := flag.String("out", "", "write (or with -merge, update) this BENCH json file")
	merge := flag.Bool("merge", false, "read -out first and only replace its \"serve\" section")
	check := flag.Bool("check", false, "gate the run: zero failures, sane latencies, clean reloads")
	pr := flag.Int("pr", 8, "PR number stamped into a fresh (non-merge) report")
	flag.Parse()

	clients, err := parseInts(*clientsFlag)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: -clients: %v\n", err)
		os.Exit(2)
	}

	rep, err := benchmarks.MeasureServe(benchmarks.ServeOptions{
		BaseURL:           strings.TrimRight(*addr, "/"),
		Families:          parseFamilies(*familiesFlag),
		Clients:           clients,
		RequestsPerClient: *requests,
		SeedPool:          *seeds,
		Eps:               *eps,
		Reloads:           *reloads,
		Log:               os.Stderr,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}

	if *out != "" {
		doc := map[string]any{"pr": *pr}
		if *merge {
			data, err := os.ReadFile(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: -merge: %v\n", err)
				os.Exit(1)
			}
			doc = map[string]any{}
			if err := json.Unmarshal(data, &doc); err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: -merge: parse %s: %v\n", *out, err)
				os.Exit(1)
			}
		}
		doc["serve"] = rep
		data, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: encode: %v\n", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "loadgen: wrote serve section to %s\n", *out)
	}

	if *check {
		if bad := checkReport(rep, *reloads); len(bad) > 0 {
			for _, b := range bad {
				fmt.Fprintf(os.Stderr, "loadgen: CHECK FAILED: %s\n", b)
			}
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "loadgen: all checks passed")
	}
}
