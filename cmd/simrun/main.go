// Command simrun executes one distributed algorithm on a generated network
// and prints its communication metrics and solution quality — a quick way to
// poke at any algorithm in the repository from the command line.
//
// Usage:
//
//	simrun -algo maxis|mcm|mwm|corrclust|ldd|proptest|luby|greedy|pivot|mpx
//	       [-family grid|trigrid|torus|planar|tree] [-n 64] [-eps 0.25] [-seed 1]
//	       [-in file] [-mmap]
//	       [-workers 4] [-cpuprofile cpu.prof] [-memprofile mem.prof]
//	       [-trace out.jsonl] [-report out.json] [-phases]
//
// With -in, the network graph is read from a file (text edge list or binary
// CSR, sniffed by magic) instead of being generated; -mmap memory-maps a
// binary file so even very large networks open instantly.
//
// -trace streams one JSONL event per simulated round (round, phase stack,
// vertices stepped — halted and sleeping vertices are excluded — messages,
// words, bits); -report writes the phase tree
// with per-phase totals and message-size histograms as JSON; -phases prints
// the same tree as a table on stdout.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"runtime/pprof"

	"expandergap/internal/apps/corrclust"
	"expandergap/internal/apps/ldd"
	"expandergap/internal/apps/matching"
	"expandergap/internal/apps/maxis"
	"expandergap/internal/apps/proptest"
	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
	"expandergap/internal/solvers"
)

func main() {
	algoFlag := flag.String("algo", "maxis", "algorithm to run")
	familyFlag := flag.String("family", "grid", "graph family")
	nFlag := flag.Int("n", 64, "approximate vertex count")
	epsFlag := flag.Float64("eps", 0.25, "approximation / decomposition parameter")
	seedFlag := flag.Int64("seed", 1, "random seed")
	inFlag := flag.String("in", "", "read the network from a file (text edge list or binary CSR) instead of generating")
	mmapFlag := flag.Bool("mmap", false, "memory-map the -in file (binary CSR format only)")
	detFlag := flag.Bool("deterministic", false, "use the deterministic (tree-routing) framework track")
	distFlag := flag.Bool("distributed", false, "use the distributed (MPX+refine) decomposer")
	faultFlag := flag.Float64("faults", 0, "message drop probability (failure-path exploration)")
	workersFlag := flag.Int("workers", 0, "parallel simulator workers (0 = sequential)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	traceFlag := flag.String("trace", "", "write a per-round JSONL trace to this file")
	reportFlag := flag.String("report", "", "write the phase-tree report JSON to this file")
	phasesFlag := flag.Bool("phases", false, "print the phase tree after the run")
	flag.Parse()

	if *cpuProfile != "" {
		f, ferr := os.Create(*cpuProfile)
		if ferr != nil {
			fmt.Fprintf(os.Stderr, "simrun: %v\n", ferr)
			os.Exit(1)
		}
		defer f.Close()
		if perr := pprof.StartCPUProfile(f); perr != nil {
			fmt.Fprintf(os.Stderr, "simrun: %v\n", perr)
			os.Exit(1)
		}
		defer pprof.StopCPUProfile()
	}
	if *memProfile != "" {
		defer func() {
			f, ferr := os.Create(*memProfile)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "simrun: %v\n", ferr)
				return
			}
			defer f.Close()
			runtime.GC()
			if perr := pprof.WriteHeapProfile(f); perr != nil {
				fmt.Fprintf(os.Stderr, "simrun: %v\n", perr)
			}
		}()
	}

	rng := rand.New(rand.NewSource(*seedFlag))
	g, gerr := loadOrBuild(*inFlag, *mmapFlag, *familyFlag, *nFlag, rng)
	if gerr != nil {
		fmt.Fprintf(os.Stderr, "simrun: %v\n", gerr)
		os.Exit(2)
	}
	cfg := congest.Config{Seed: *seedFlag, FaultRate: *faultFlag, Workers: *workersFlag}

	var obs *congest.Observer
	var traceFile *os.File
	var traceBuf *bufio.Writer
	if *traceFlag != "" || *reportFlag != "" || *phasesFlag {
		obs = congest.NewObserver()
		cfg.Obs = obs
		if *traceFlag != "" {
			f, ferr := os.Create(*traceFlag)
			if ferr != nil {
				fmt.Fprintf(os.Stderr, "simrun: %v\n", ferr)
				os.Exit(1)
			}
			traceFile = f
			traceBuf = bufio.NewWriterSize(f, 1<<20)
			obs.EnableTrace(traceBuf, 4096)
		}
	}
	coreOpts := core.Options{Deterministic: *detFlag}
	if *distFlag {
		coreOpts.Decomposer = core.DistributedDecomposer
	}
	fmt.Printf("graph: %v\n", g)

	var err error
	switch *algoFlag {
	case "maxis":
		var res *maxis.Result
		res, err = maxis.Approximate(g, maxis.Options{Eps: *epsFlag, Cfg: cfg, Core: coreOpts})
		if err == nil {
			ratio, exact := maxis.Ratio(g, res.Set)
			printMetrics(res.Solution.Metrics, g.N())
			fmt.Printf("independent set: %d vertices (ratio %.4f, exact-opt=%v, dropped %d)\n",
				len(res.Set), ratio, exact, res.Dropped)
		}
	case "mcm":
		var res *matching.Result
		res, err = matching.ApproximateMCM(g, matching.Options{Eps: *epsFlag, Cfg: cfg, Core: coreOpts})
		if err == nil {
			opt := solvers.MatchingSize(solvers.MaximumMatching(g))
			printMetrics(res.Solution.Metrics, g.N())
			fmt.Printf("matching: %d pairs (opt %d, ratio %.4f)\n",
				res.Size(), opt, float64(res.Size())/math.Max(float64(opt), 1))
		}
	case "mwm":
		wg := graph.WithRandomWeights(g, 100, rng)
		var res *matching.Result
		res, err = matching.ApproximateMWM(wg, matching.Options{Eps: *epsFlag, Cfg: cfg, Core: coreOpts})
		if err == nil {
			printMetrics(res.Solution.Metrics, wg.N())
			fmt.Printf("weighted matching: weight %d (%d pairs)\n", res.Weight(wg), res.Size())
		}
	case "corrclust":
		sg := graph.WithRandomSigns(g, 0.6, rng)
		var res *corrclust.Result
		res, err = corrclust.Approximate(sg, corrclust.Options{Eps: *epsFlag, Cfg: cfg, Core: coreOpts})
		if err == nil {
			printMetrics(res.Solution.Metrics, sg.N())
			fmt.Printf("correlation clustering: score %d (γ-bound %d, |E| %d)\n",
				res.Score, corrclust.GammaLowerBound(sg), sg.M())
		}
	case "ldd":
		var res *ldd.Result
		res, err = ldd.Decompose(g, ldd.Options{Eps: *epsFlag, Cfg: cfg, Core: coreOpts})
		if err == nil {
			printMetrics(res.Solution.Metrics, g.N())
			fmt.Printf("low-diameter decomposition: max diameter %d (D·ε = %.3f), cut %.4f\n",
				res.MaxDiameter, float64(res.MaxDiameter)**epsFlag, res.CutFraction)
		}
	case "proptest":
		var v *proptest.Verdict
		v, err = proptest.Test(g, minor.Planarity(), proptest.Options{Eps: *epsFlag, Cfg: cfg, Core: coreOpts})
		if err == nil {
			printMetrics(v.Solution.Metrics, g.N())
			fmt.Printf("planarity test: all-accept=%v (input planar: %v)\n",
				v.AllAccept, minor.IsPlanar(g))
		}
	case "luby":
		var set []int
		var m congest.Metrics
		set, m, err = maxis.LubyMIS(g, cfg)
		if err == nil {
			printMetrics(m, g.N())
			fmt.Printf("Luby MIS: %d vertices\n", len(set))
		}
	case "greedy":
		var res *matching.Result
		var m congest.Metrics
		res, m, err = matching.DistributedGreedy(g, cfg)
		if err == nil {
			printMetrics(m, g.N())
			fmt.Printf("greedy matching: %d pairs\n", res.Size())
		}
	case "pivot":
		sg := graph.WithRandomSigns(g, 0.6, rng)
		var labels []int
		var m congest.Metrics
		labels, m, err = corrclust.DistributedPivot(sg, cfg)
		if err == nil {
			printMetrics(m, sg.N())
			fmt.Printf("pivot clustering: score %d\n", solvers.CorrelationScore(sg, labels))
		}
	case "mpx":
		var res expander.MPXResult
		var m congest.Metrics
		res, m, err = expander.MPX(g, cfg, *epsFlag)
		if err == nil {
			printMetrics(m, g.N())
			clusters := res.Assignment.Clusters()
			fmt.Printf("MPX clustering: %d clusters\n", len(clusters))
		}
	default:
		fmt.Fprintf(os.Stderr, "simrun: unknown algorithm %q\n", *algoFlag)
		os.Exit(2)
	}
	// Flush observability outputs even when the run failed: a partial trace
	// is exactly what a failed run needs.
	if traceBuf != nil {
		if ferr := obs.Flush(); ferr != nil {
			fmt.Fprintf(os.Stderr, "simrun: trace: %v\n", ferr)
		}
		if ferr := traceBuf.Flush(); ferr != nil {
			fmt.Fprintf(os.Stderr, "simrun: trace: %v\n", ferr)
		}
		traceFile.Close()
	}
	if *reportFlag != "" {
		data, merr := obs.Report().MarshalIndentJSON()
		if merr == nil {
			merr = os.WriteFile(*reportFlag, append(data, '\n'), 0o644)
		}
		if merr != nil {
			fmt.Fprintf(os.Stderr, "simrun: report: %v\n", merr)
		}
	}
	if *phasesFlag {
		fmt.Print(obs.Report().String())
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "simrun: %v\n", err)
		os.Exit(1)
	}
}

func printMetrics(m congest.Metrics, n int) {
	fmt.Printf("rounds %d, messages %d, words %d, total bits %d, max msg words %d\n",
		m.Rounds, m.Messages, m.Words, m.TotalBits(n), m.MaxWordsPerMsg)
}

func loadOrBuild(in string, useMmap bool, family string, n int, rng *rand.Rand) (*graph.Graph, error) {
	if in == "" {
		return buildGraph(family, n, rng), nil
	}
	if useMmap {
		// Mapped for the process lifetime; the kernel reclaims it at exit.
		mg, err := graph.OpenMapped(in)
		if err != nil {
			return nil, err
		}
		return mg.Graph, nil
	}
	return graph.LoadFile(in)
}

func buildGraph(family string, n int, rng *rand.Rand) *graph.Graph {
	side := int(math.Sqrt(float64(n)))
	if side < 3 {
		side = 3
	}
	switch family {
	case "trigrid":
		return graph.TriangulatedGrid(side, side)
	case "torus":
		return graph.Torus(side, side)
	case "planar":
		return graph.RandomMaximalPlanar(n, rng)
	case "tree":
		return graph.RandomTree(n, rng)
	default:
		return graph.Grid(side, side)
	}
}
