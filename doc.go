// Package expandergap is a from-scratch Go reproduction of "Narrowing the
// LOCAL–CONGEST Gaps in Sparse Networks via Expander Decompositions"
// (Yi-Jun Chang and Hsin-Hao Su, PODC 2022).
//
// The paper shows that on H-minor-free networks, many combinatorial
// optimization problems — maximum weighted matching, maximum independent
// set, correlation clustering — admit (1±ε)-approximations in
// poly(log n, 1/ε) CONGEST rounds, alongside distributed property testing
// of minor-closed properties and optimal low-diameter decompositions. The
// engine is an (ε, φ) expander decomposition: each high-conductance cluster
// contains a high-degree vertex (via the paper's new O(√(Δn)) edge-separator
// theorem) to which the entire cluster topology can be routed by lazy random
// walks, solved sequentially, and the answers routed back.
//
// This repository implements the full stack on a faithful CONGEST/LOCAL
// message-passing simulator: see internal/congest for the model,
// internal/expander and internal/routing for the engine, internal/core for
// the Theorem 2.6 framework, internal/apps/... for the five applications
// with distributed baselines, and internal/experiments for the derived
// evaluation suite (E1–E16) recorded in EXPERIMENTS.md. DESIGN.md documents
// the architecture and every substitution made for components that are not
// reproducible at laptop scale.
package expandergap
