// Clustering: Theorems 1.3 and 1.5 together on a bounded-genus network — a
// correlation clustering of a signed torus with planted communities, and a
// low-diameter decomposition of the same topology, comparing the framework
// against the MPX baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"expandergap/internal/apps/corrclust"
	"expandergap/internal/apps/ldd"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func main() {
	rng := rand.New(rand.NewSource(3))
	cfg := congest.Config{Seed: 3}

	// A 8x8 torus (genus 1, hence H-minor-free for fixed H) with planted
	// 8-vertex communities and 5% label noise.
	base := graph.Torus(8, 8)
	signed, planted := graph.WithPlantedSigns(base, 8, 0.05, rng)
	fmt.Printf("network: %v (torus, planted 8-blocks, 5%% noise)\n\n", signed)

	// Theorem 1.3: correlation clustering.
	cc, err := corrclust.Approximate(signed, corrclust.Options{Eps: 0.25, Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	plantedScore := solvers.CorrelationScore(signed, planted)
	fmt.Printf("correlation clustering: score %d / %d edges (planted partition scores %d)\n",
		cc.Score, signed.M(), plantedScore)
	fmt.Printf("γ(G) ≥ |E|/2 bound: %d; framework clears (1-ε)·bound: %v\n",
		corrclust.GammaLowerBound(signed),
		float64(cc.Score) >= 0.75*float64(corrclust.GammaLowerBound(signed)))

	pivotLabels, _, err := corrclust.DistributedPivot(signed, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pivot baseline score: %d\n\n", solvers.CorrelationScore(signed, pivotLabels))

	// Theorem 1.5: low-diameter decomposition, D = O(1/ε).
	eps := 0.3
	fw, err := ldd.Decompose(base, ldd.Options{Eps: eps, Cfg: cfg})
	if err != nil {
		log.Fatal(err)
	}
	mpx, _, err := ldd.Baseline(base, eps, cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("low-diameter decomposition (ε=%.2f):\n", eps)
	fmt.Printf("  framework: max diameter %d (D·ε = %.2f), cut fraction %.3f\n",
		fw.MaxDiameter, float64(fw.MaxDiameter)*eps, fw.CutFraction)
	fmt.Printf("  MPX baseline: max diameter %d (D·ε = %.2f), cut fraction %.3f\n",
		mpx.MaxDiameter, float64(mpx.MaxDiameter)*eps, mpx.CutFraction)
	fmt.Println("\nThe framework meets the optimal D = O(1/ε); MPX pays an extra log n.")
}
