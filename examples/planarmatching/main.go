// Planar matching: the Theorem 3.2 pipeline on a random planar network with
// pendant stars — the exact workload §3.2's preprocessing exists for. Shows
// star elimination, the framework matching, and the comparison against the
// exact optimum and the distributed greedy baseline.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"expandergap/internal/apps/matching"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func main() {
	rng := rand.New(rand.NewSource(7))

	// A sparse planar core with pendant 4-stars attached: the stars make
	// OPT much smaller than n, which is what defeats the naive "solve per
	// cluster" argument and motivates the §3.2 elimination.
	base := graph.RandomPlanar(60, 0.7, rng)
	g := graph.AttachPendantStars(base, []int{0, 10, 20, 30, 40}, 4)
	fmt.Printf("network: %v (planar core %d vertices + 5 pendant 4-stars)\n\n", g, base.N())

	// Star elimination alone, to see what it removes.
	removed, elimMetrics, err := matching.EliminateStars(g, congest.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	count := 0
	for _, r := range removed {
		if r {
			count++
		}
	}
	fmt.Printf("star elimination: %d vertices removed in %d rounds\n", count, elimMetrics.Rounds)

	// The full MCM pipeline.
	res, err := matching.ApproximateMCM(g, matching.Options{
		Eps: 0.2,
		Cfg: congest.Config{Seed: 7},
	})
	if err != nil {
		log.Fatal(err)
	}
	opt := solvers.MatchingSize(solvers.MaximumMatching(g))
	fmt.Printf("framework matching: %d pairs (optimum %d, ratio %.3f)\n",
		res.Size(), opt, float64(res.Size())/float64(opt))

	// Baseline: distributed greedy (maximal) matching, the ½-approximation.
	greedy, greedyMetrics, err := matching.DistributedGreedy(g, congest.Config{Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy baseline:    %d pairs in %d rounds\n", greedy.Size(), greedyMetrics.Rounds)

	m := res.Solution.Metrics
	fmt.Printf("\nframework CONGEST cost: %d rounds, %d messages, max message %d words\n",
		m.Rounds, m.Messages, m.MaxWordsPerMsg)
}
