// Property testing: Theorem 1.4's distributed tester on three inputs — a
// planar network (must unanimously accept), a planar network plus planted K5
// clusters (must reject somewhere), and the forest property as a second
// minor-closed, union-closed property.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"expandergap/internal/apps/proptest"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
)

func main() {
	rng := rand.New(rand.NewSource(11))
	cfg := congest.Config{Seed: 11}

	run := func(name string, g *graph.Graph, p minor.Property) {
		v, err := proptest.Test(g, p, proptest.Options{Eps: 0.1, Cfg: cfg})
		if err != nil {
			log.Fatal(err)
		}
		rejecting := 0
		for _, a := range v.Accepts {
			if !a {
				rejecting++
			}
		}
		fmt.Printf("%-22s property=%-8s n=%-4d all-accept=%-5v rejecting=%d\n",
			name, p.Name, g.N(), v.AllAccept, rejecting)
	}

	planar := graph.RandomMaximalPlanar(80, rng)
	run("planar triangulation", planar, minor.Planarity())

	planted := proptest.PlantCliques(graph.Grid(6, 6), 5, 4)
	run("grid + 4 planted K5s", planted, minor.Planarity())

	tree := graph.RandomTree(60, rng)
	run("random tree", tree, minor.Forests())

	triangles := proptest.DisjointForbiddenCliques(3, 10)
	run("10 disjoint triangles", triangles, minor.Forests())

	fmt.Println("\nOne-sided error in action: inputs with the property are never")
	fmt.Println("rejected; ε-far inputs always produce at least one rejecting vertex.")
}
