// Quickstart: decompose a planar network into expander clusters and solve a
// (1-ε)-approximate maximum independent set on it through the CONGEST
// framework — the smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"log"

	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

func main() {
	// A 8x8 grid: planar, so every theorem in the paper applies.
	g := graph.Grid(8, 8)
	fmt.Printf("network: %v\n\n", g)

	// Step 1 — the decomposition by itself. ε bounds the removed edges;
	// every remaining cluster is a φ-expander.
	dec, err := expander.Decompose(g, 0.3, expander.Options{Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("expander decomposition: %d clusters, %d/%d edges removed, φ = %.4f\n",
		len(dec.Clusters), len(dec.Removed), g.M(), dec.Phi)

	// Step 2 — the full Theorem 1.2 pipeline: decompose, elect leaders,
	// gather topologies by random-walk routing, solve exactly per cluster,
	// route answers back, fix inter-cluster conflicts.
	res, err := maxis.Approximate(g, maxis.Options{
		Eps: 0.2,
		Cfg: congest.Config{Seed: 42},
	})
	if err != nil {
		log.Fatal(err)
	}
	ratio, exact := maxis.Ratio(g, res.Set)
	fmt.Printf("\n(1-ε)-approximate MaxIS: %d vertices (ratio %.3f, exact optimum: %v)\n",
		len(res.Set), ratio, exact)

	m := res.Solution.Metrics
	fmt.Printf("CONGEST cost: %d rounds, %d messages, %d total bits, max message %d words\n",
		m.Rounds, m.Messages, m.TotalBits(g.N()), m.MaxWordsPerMsg)
	fmt.Println("\nper-phase rounds:")
	for _, phase := range []string{"diameter-check", "elect-leaders", "orientation",
		"gather-solve-disseminate", "conflict-resolution"} {
		fmt.Printf("  %-26s %d\n", phase, res.Solution.Phases[phase])
	}
}
