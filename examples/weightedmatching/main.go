// Weighted matching: the Theorem 1.1 pipeline on a weighted planar network,
// comparing the framework against the exact weighted-blossom optimum, the
// distributed greedy baseline, and the greedy + length-3 augmentation
// baseline; also demonstrates the weighted maximum independent set of §3.1.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"expandergap/internal/apps/matching"
	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func main() {
	rng := rand.New(rand.NewSource(21))
	base := graph.RandomPlanar(70, 0.7, rng)
	g := graph.WithRandomWeights(base, 100, rng)
	fmt.Printf("network: %v with weights in [1,100]\n\n", g)

	// Exact optimum via the O(n³) weighted blossom algorithm.
	opt := solvers.MatchingWeight(g, solvers.ExactMWM(g))
	fmt.Printf("exact maximum weight matching (blossom): %d\n", opt)

	// Theorem 1.1 framework.
	fw, err := matching.ApproximateMWM(g, matching.Options{Eps: 0.2, Cfg: congest.Config{Seed: 21}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("framework MWM:  weight %d (ratio %.3f) in %d rounds\n",
		fw.Weight(g), float64(fw.Weight(g))/float64(opt), fw.Solution.Metrics.Rounds)

	// Baselines.
	grd, grdMetrics, err := matching.DistributedGreedy(g, congest.Config{Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy:         weight %d (ratio %.3f) in %d rounds\n",
		grd.Weight(g), float64(grd.Weight(g))/float64(opt), grdMetrics.Rounds)

	aug, augMetrics, err := matching.GreedyPlusAugment(g, congest.Config{Seed: 21}, 60)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("greedy+augment: weight %d (ratio %.3f) in %d rounds\n",
		aug.Weight(g), float64(aug.Weight(g))/float64(opt), augMetrics.Rounds)
	fmt.Printf("(augmentation chases cardinality, not weight: %d vs %d pairs)\n\n",
		aug.Size(), grd.Size())

	// Weighted MaxIS (§3.1 weighted extension): vertex weights ship to the
	// cluster leaders inside the framework's hello tokens.
	w := make([]int64, g.N())
	for i := range w {
		w[i] = 1 + rng.Int63n(50)
	}
	wis, err := maxis.ApproximateWeighted(g, w, maxis.Options{Eps: 0.25, Cfg: congest.Config{Seed: 22}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted MaxIS: %d vertices, total weight %d (dropped %d conflicts)\n",
		len(wis.Set), wis.Weight, wis.Dropped)
}
