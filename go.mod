module expandergap

go 1.22
