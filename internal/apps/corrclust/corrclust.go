package corrclust

import (
	"fmt"
	"math/rand"

	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// Options configures Approximate.
type Options struct {
	// Eps is the approximation parameter.
	Eps float64
	// Density is the edge-density bound (default 3).
	Density int
	// Cfg is the simulator configuration.
	Cfg congest.Config
	// Core forwards extra framework options.
	Core core.Options
}

// Result is a clustering with its score.
type Result struct {
	// Labels assigns each vertex a cluster label (globally unique across
	// framework clusters).
	Labels []int
	// Score is the agreement objective achieved.
	Score int64
	// Solution carries framework details.
	Solution *core.Solution
}

// Approximate computes a (1-ε)-approximate agreement-maximization
// correlation clustering of a signed H-minor-free network.
func Approximate(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("corrclust: eps must be in (0,1), got %v", opts.Eps)
	}
	if !g.Signed() && g.M() > 0 {
		return nil, fmt.Errorf("corrclust: graph must carry edge signs")
	}
	n := g.N()
	coreOpts := opts.Core
	coreOpts.Eps = opts.Eps / 2 // §3.3: ε' = ε/2
	coreOpts.Density = opts.Density
	coreOpts.Cfg = opts.Cfg

	sol, err := core.Run(g, coreOpts, func(cluster *graph.Graph, toOld []int) map[int]int64 {
		rng := rand.New(rand.NewSource(opts.Cfg.Seed + int64(toOld[0])))
		labels := solvers.BestCorrelationClustering(cluster, rng)
		leader := int64(toOld[0]) // any cluster-stable identifier
		out := make(map[int]int64, len(toOld))
		for v, lab := range labels {
			out[toOld[v]] = leader*int64(n) + int64(lab)
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Labels: make([]int, n), Solution: sol}
	for v := 0; v < n; v++ {
		res.Labels[v] = int(sol.Values[v])
		if sol.Undelivered[v] {
			// Lost answers fall back to singleton clusters (§2.3 failure
			// semantics); unique negative labels cannot collide.
			res.Labels[v] = -(v + 1)
		}
	}
	res.Score = solvers.CorrelationScore(g, res.Labels)
	return res, nil
}

// GammaLowerBound returns the §3.3 guarantee γ(G) ≥ |E|/2 for connected
// graphs: the better of all-singletons and one-cluster.
func GammaLowerBound(g *graph.Graph) int64 {
	s := solvers.SingletonScore(g)
	if oc := solvers.OneClusterScore(g); oc > s {
		return oc
	}
	return s
}

// DistributedPivot is the baseline: a message-passing version of the pivot
// clustering. Each phase, every unclustered vertex draws a random priority;
// local minima become pivots and claim their unclustered positive neighbors.
func DistributedPivot(g *graph.Graph, cfg congest.Config) ([]int, congest.Metrics, error) {
	type state struct {
		label    int
		priority int64
	}
	cfg.Obs.BeginPhase("pivot")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		s := &state{label: -1}
		signs := make([]int8, v.Degree())
		for p := 0; p < v.Degree(); p++ {
			if idx, ok := g.EdgeIndex(v.ID(), v.NeighborID(p)); ok {
				signs[p] = g.Sign(idx)
			}
		}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				switch round % 3 {
				case 1:
					if s.label != -1 {
						v.SetOutput(s.label)
						v.Halt()
						return
					}
					s.priority = int64(v.Rand().Intn(1 << 28))
					v.Broadcast(congest.Message{7, s.priority % (1 << 14), s.priority >> 14})
				case 2:
					if s.label != -1 {
						v.SleepUntil(round + 2)
						return
					}
					minP := true
					for _, in := range recv {
						if len(in.Msg) == 3 && in.Msg[0] == 7 {
							p := in.Msg[1] + in.Msg[2]<<14
							if p < s.priority || (p == s.priority && in.From < v.ID()) {
								minP = false
							}
						}
					}
					if minP {
						s.label = v.ID()
						v.Broadcast(congest.Message{8, int64(v.ID())})
					}
					// Idle until the next draw round (round+2) unless a
					// pivot claim arrives in the claim round and wakes us.
					v.SleepUntil(round + 2)
				case 0:
					if s.label != -1 {
						return
					}
					bestPivot := -1
					for _, in := range recv {
						if len(in.Msg) == 2 && in.Msg[0] == 8 && signs[in.Port] == 1 {
							if int(in.Msg[1]) > bestPivot {
								bestPivot = int(in.Msg[1])
							}
						}
					}
					if bestPivot != -1 {
						s.label = bestPivot
					}
				}
			},
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	labels := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		labels[v] = v
		if l, ok := res.Outputs[v].(int); ok && l >= 0 {
			labels[v] = l
		}
	}
	return labels, res.Metrics, nil
}
