package corrclust

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func TestApproximateMeetsGammaBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	families := map[string]*graph.Graph{
		"grid":   graph.WithRandomSigns(graph.Grid(6, 6), 0.6, rng),
		"planar": graph.WithRandomSigns(graph.RandomMaximalPlanar(40, rng), 0.5, rng),
		"torus":  graph.WithRandomSigns(graph.Torus(5, 5), 0.4, rng),
	}
	for name, g := range families {
		res, err := Approximate(g, Options{Eps: 0.3, Cfg: congest.Config{Seed: 2}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		gamma := GammaLowerBound(g)
		// The framework must beat (1-eps) times the γ(G) ≥ |E|/2 bound.
		if float64(res.Score) < 0.7*float64(gamma) {
			t.Errorf("%s: score %d below 0.7·γ-bound %d", name, res.Score, gamma)
		}
		if 2*res.Score < int64(g.M()) {
			t.Errorf("%s: score %d below |E|/2", name, res.Score)
		}
	}
}

func TestApproximateRecoversPlantedClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	// Grid with planted 8-blocks and no noise: positive components are the
	// blocks; optimal score is |E|.
	g, planted := graph.WithPlantedSigns(graph.Grid(4, 8), 8, 0, rng)
	res, err := Approximate(g, Options{Eps: 0.2, Cfg: congest.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	plantedScore := solvers.CorrelationScore(g, planted)
	if float64(res.Score) < 0.8*float64(plantedScore) {
		t.Errorf("score %d below 0.8·planted %d", res.Score, plantedScore)
	}
}

func TestApproximateValidation(t *testing.T) {
	if _, err := Approximate(graph.Path(3), Options{Eps: 0.5}); err == nil {
		t.Error("unsigned graph accepted")
	}
	rng := rand.New(rand.NewSource(4))
	g := graph.WithRandomSigns(graph.Path(3), 0.5, rng)
	if _, err := Approximate(g, Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestDistributedPivotValidAndScored(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.WithRandomSigns(graph.Grid(5, 5), 0.6, rng)
	labels, metrics, err := DistributedPivot(g, congest.Config{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(labels) != g.N() {
		t.Fatal("label count wrong")
	}
	if metrics.Rounds == 0 {
		t.Error("pivot should take rounds")
	}
	if s := solvers.CorrelationScore(g, labels); s < 0 {
		t.Errorf("score %d negative", s)
	}
}

func TestFrameworkBeatsPivotOnPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	g, _ := graph.WithPlantedSigns(graph.Grid(6, 6), 6, 0.05, rng)
	fw, err := Approximate(g, Options{Eps: 0.2, Cfg: congest.Config{Seed: 6}})
	if err != nil {
		t.Fatal(err)
	}
	pivotLabels, _, err := DistributedPivot(g, congest.Config{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	pivotScore := solvers.CorrelationScore(g, pivotLabels)
	if fw.Score < pivotScore {
		t.Errorf("framework %d worse than pivot baseline %d", fw.Score, pivotScore)
	}
}

func TestLabelsAreGloballyConsistent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := graph.WithRandomSigns(graph.TriangulatedGrid(4, 4), 0.5, rng)
	res, err := Approximate(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	// Vertices in different framework clusters must have different labels
	// (leader-scoped encoding guarantees it).
	dec := res.Solution.Decomposition
	for _, e := range g.Edges() {
		if dec.Assignment[e.U] != dec.Assignment[e.V] && res.Labels[e.U] == res.Labels[e.V] {
			t.Errorf("cross-cluster label collision on %v", e)
		}
	}
}
