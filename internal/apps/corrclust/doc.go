// Package corrclust implements Theorem 1.3 of the paper: a (1-ε)-approximate
// agreement-maximization correlation clustering of an H-minor-free signed
// network in the CONGEST model.
//
// Following §3.3, the framework runs with ε' = ε/2, each cluster leader
// computes an (optimal, for cluster sizes within the exact solver's reach)
// correlation clustering of its gathered signed topology, and the union of
// per-cluster clusterings is returned. Inter-cluster edges lose at most
// ε'·|E| ≤ ε·γ(G) agreement (γ(G) ≥ |E|/2 on connected graphs), giving the
// (1-ε) bound.
//
// Cluster labels are globally disambiguated by encoding them as
// leader·n + local label, which fits one CONGEST word.
//
// When a congest.Observer is attached, the Pivot baseline reports under
// the named phase "pivot", alongside the framework's own phases.
package corrclust
