// Package ldd implements Theorem 1.5 of the paper: an (ε, D) low-diameter
// decomposition with the optimal D = O(ε⁻¹) on H-minor-free networks in the
// CONGEST model.
//
// Per §3.5, the framework first runs the expander decomposition with
// ε̃ = ε/2; each cluster leader then refines its gathered cluster topology
// with a sequential low-diameter decomposition (KPR-style chopping with
// D̃ = O(ε̃⁻¹)) and disseminates refined labels. The total number of
// inter-cluster edges is at most ε|E|/2 + ε|E|/2 = ε|E| and every final
// cluster has diameter O(ε⁻¹).
//
// The distributed MPX exponential-shift clustering (internal/expander.MPX)
// is the baseline: it achieves D = O(log n / ε) — the inverse-polynomial
// dependence the paper improves on.
//
// When a congest.Observer is attached, Decompose reports the full
// framework phase tree (decompose, diameter-check, elect-leaders,
// orientation, gather-solve-disseminate) and Baseline reports under
// "mpx".
package ldd
