package ldd

import (
	"fmt"
	"math/rand"

	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// Options configures Decompose.
type Options struct {
	// Eps is the edge-cut budget ε.
	Eps float64
	// Density is the edge-density bound (default 3).
	Density int
	// Cfg is the simulator configuration.
	Cfg congest.Config
	// Core forwards extra framework options.
	Core core.Options
	// Levels is the KPR chopping depth used in the per-cluster refinement
	// (default 3, the planar setting).
	Levels int
}

// Result is a low-diameter decomposition of the network.
type Result struct {
	// Labels assigns each vertex a cluster label.
	Labels []int
	// CutEdges counts inter-cluster edges.
	CutEdges int
	// CutFraction is CutEdges/|E|.
	CutFraction float64
	// CutWeightFraction is the weight of inter-cluster edges over the total
	// edge weight — the guarantee of the weighted low-diameter
	// decomposition of Czygrinow–Hańćkowiak–Wawrzyniak that §1.1 discusses.
	// For unweighted graphs it equals CutFraction.
	CutWeightFraction float64
	// MaxDiameter is the largest induced-cluster diameter.
	MaxDiameter int
	// Solution carries framework details (nil for baselines).
	Solution *core.Solution
}

// Decompose computes the Theorem 1.5 low-diameter decomposition.
func Decompose(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("ldd: eps must be in (0,1), got %v", opts.Eps)
	}
	levels := opts.Levels
	if levels == 0 {
		levels = 3
	}
	n := g.N()
	coreOpts := opts.Core
	coreOpts.Eps = opts.Eps / 2
	coreOpts.Density = opts.Density
	coreOpts.Cfg = opts.Cfg
	sol, err := core.Run(g, coreOpts, func(cluster *graph.Graph, toOld []int) map[int]int64 {
		rng := rand.New(rand.NewSource(opts.Cfg.Seed + int64(toOld[0]) + 1))
		ref := solvers.LowDiameterDecomposition(cluster, opts.Eps/2, levels, rng)
		leader := int64(toOld[0])
		out := make(map[int]int64, len(toOld))
		for v, lab := range ref.Labels {
			out[toOld[v]] = leader*int64(n) + int64(lab)
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	res := &Result{Labels: make([]int, n), Solution: sol}
	for v := 0; v < n; v++ {
		res.Labels[v] = int(sol.Values[v])
		if sol.Undelivered[v] {
			// A vertex whose answer was lost falls back to a singleton
			// cluster (unique negative label), the §2.3 failure semantics.
			res.Labels[v] = -(v + 1)
		}
	}
	fill(g, res)
	return res, nil
}

// Baseline runs the MPX exponential-shift clustering with β = ε as the
// D = O(log n/ε) comparison point.
func Baseline(g *graph.Graph, eps float64, cfg congest.Config) (*Result, congest.Metrics, error) {
	mpx, metrics, err := expander.MPX(g, cfg, eps)
	if err != nil {
		return nil, metrics, err
	}
	res := &Result{Labels: make([]int, g.N())}
	copy(res.Labels, mpx.Assignment)
	fill(g, res)
	return res, metrics, nil
}

// fill computes cut statistics and the max cluster diameter.
func fill(g *graph.Graph, res *Result) {
	var cutWeight int64
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if res.Labels[e.U] != res.Labels[e.V] {
			res.CutEdges++
			cutWeight += g.Weight(i)
		}
	}
	if g.M() > 0 {
		res.CutFraction = float64(res.CutEdges) / float64(g.M())
		res.CutWeightFraction = float64(cutWeight) / float64(g.TotalWeight())
	}
	groups := make(map[int][]int)
	for v, l := range res.Labels {
		groups[l] = append(groups[l], v)
	}
	for _, members := range groups {
		sub := g.Induce(members)
		if d := sub.Diameter(); d > res.MaxDiameter {
			res.MaxDiameter = d
		}
	}
}
