package ldd

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

func TestDecomposeDiameterBound(t *testing.T) {
	g := graph.Grid(10, 10)
	for _, eps := range []float64{0.3, 0.5} {
		res, err := Decompose(g, Options{Eps: eps, Cfg: congest.Config{Seed: 1}})
		if err != nil {
			t.Fatal(err)
		}
		// Theorem 1.5: D = O(1/eps). Constant 16 is generous headroom for
		// the KPR constant at these sizes.
		bound := int(16.0 / eps)
		if res.MaxDiameter > bound {
			t.Errorf("eps=%v: max diameter %d exceeds %d", eps, res.MaxDiameter, bound)
		}
	}
}

func TestDecomposeCutBudget(t *testing.T) {
	g := graph.TriangulatedGrid(8, 8)
	eps := 0.4
	res, err := Decompose(g, Options{Eps: eps, Cfg: congest.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	// ε budget with modest slack for the randomized chopping.
	if res.CutFraction > 1.5*eps {
		t.Errorf("cut fraction %v far above eps %v", res.CutFraction, eps)
	}
}

func TestDecomposeClustersConnected(t *testing.T) {
	g := graph.Grid(8, 8)
	res, err := Decompose(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	groups := make(map[int][]int)
	for v, l := range res.Labels {
		groups[l] = append(groups[l], v)
	}
	for l, members := range groups {
		sub, _ := g.InducedSubgraph(members)
		if !sub.Connected() {
			t.Errorf("cluster %d disconnected", l)
		}
	}
}

func TestBaselineMPXDiameterWorse(t *testing.T) {
	// The baseline achieves D = O(log n/eps); on a large grid with small
	// eps, the framework's O(1/eps) diameter should not be larger than the
	// baseline's by more than a constant — and typically is smaller.
	g := graph.Grid(12, 12)
	eps := 0.3
	fw, err := Decompose(g, Options{Eps: eps, Cfg: congest.Config{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	base, metrics, err := Baseline(g, eps, congest.Config{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Rounds == 0 {
		t.Error("baseline should take rounds")
	}
	if fw.MaxDiameter > 2*base.MaxDiameter+8 {
		t.Errorf("framework diameter %d much worse than baseline %d",
			fw.MaxDiameter, base.MaxDiameter)
	}
}

func TestValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := Decompose(g, Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, _, err := Baseline(g, 0, congest.Config{}); err == nil {
		t.Error("baseline eps=0 accepted")
	}
}

func TestWeightedCutFraction(t *testing.T) {
	// The KPR chop cuts each edge with probability independent of its
	// weight, so the weighted cut fraction tracks the unweighted one. With
	// uniform weights they are identical; with random weights they stay
	// within a factor ~3 on a reasonably sized instance.
	rng := rand.New(rand.NewSource(11))
	base := graph.Grid(10, 10)
	wg := graph.WithRandomWeights(base, 50, rng)
	res, err := Decompose(wg, Options{Eps: 0.4, Cfg: congest.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if res.CutWeightFraction < 0 || res.CutWeightFraction > 1 {
		t.Fatalf("weight fraction out of range: %v", res.CutWeightFraction)
	}
	if res.CutFraction > 0 {
		ratio := res.CutWeightFraction / res.CutFraction
		if ratio > 3 || ratio < 1.0/3 {
			t.Errorf("weighted cut %.3f far from unweighted %.3f",
				res.CutWeightFraction, res.CutFraction)
		}
	}
	// Uniform weights: exactly equal.
	res2, err := Decompose(base, Options{Eps: 0.4, Cfg: congest.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.CutWeightFraction != res2.CutFraction {
		t.Errorf("unweighted graph: weight fraction %v != cut fraction %v",
			res2.CutWeightFraction, res2.CutFraction)
	}
}

func TestDiameterShrinksWithEps(t *testing.T) {
	g := graph.Grid(12, 12)
	diam := func(eps float64) int {
		res, err := Decompose(g, Options{Eps: eps, Cfg: congest.Config{Seed: 5}})
		if err != nil {
			t.Fatal(err)
		}
		return res.MaxDiameter
	}
	loose, tight := diam(0.8), diam(0.15)
	if loose > tight {
		t.Errorf("smaller eps should allow larger clusters: D(0.8)=%d D(0.15)=%d", loose, tight)
	}
}
