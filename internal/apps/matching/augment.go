package matching

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// ThreeAugment improves a maximal matching by repeatedly flipping length-3
// augmenting paths (free–matched–matched–free), the classic distributed
// route to a ⅔-approximate MCM that the paper's introduction contrasts with
// the framework approach. It runs as message passing:
//
//	phase round 1: every free vertex offers itself to one matched neighbor
//	               (random choice), and matched vertices forward the best
//	               received offer to their partner;
//	phase round 2: a matched edge (v,w) holding distinct offers u (at v) and
//	               x (at w) with u ≠ x flips: u–v and w–x become matched;
//	               both endpoints notify the winners;
//	phase round 3: winners update state; everyone reconsiders freeness.
//
// The phase budget is passed explicitly; each successful flip enlarges the
// matching by one, and random offer choice makes remaining length-3 paths
// flip with constant probability per phase, so O(Δ·log n) phases suffice in
// practice (tests assert the ⅔ quality on planar instances).
func ThreeAugment(g *graph.Graph, cfg congest.Config, start []int, phases int) (*Result, congest.Metrics, error) {
	if len(start) != g.N() {
		return nil, congest.Metrics{}, fmt.Errorf("matching: start matching covers %d of %d vertices", len(start), g.N())
	}
	if !solvers.IsMatching(g, start) {
		return nil, congest.Metrics{}, fmt.Errorf("matching: start is not a matching")
	}
	const (
		msgOffer  = 11 // free -> matched: (kind, offererID)
		msgRelay  = 12 // matched -> partner: (kind, offererID)
		msgAccept = 13 // matched -> free winner: (kind)
	)
	type state struct {
		mate      int
		offerTo   int // port the free vertex offered to this phase
		gotOffer  int // best offer (vertex ID) received this phase, -1 none
		offerPort int // port that offer came from
		relayed   int // partner's offer (vertex ID), -1 none
	}
	cfg.Obs.BeginPhase("augment")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		s := &state{mate: start[v.ID()], offerTo: -1, gotOffer: -1, relayed: -1}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				phase := (round-1)/3 + 1
				switch round % 3 {
				case 1:
					// First, consume accepts from the previous phase (they
					// were sent in its third round and arrive here): the
					// offerer marries the accepting matched vertex.
					for _, in := range recv {
						if len(in.Msg) == 1 && in.Msg[0] == msgAccept && in.Port == s.offerTo && s.mate == -1 {
							s.mate = v.NeighborID(in.Port)
						}
					}
					if phase > phases {
						v.SetOutput(s.mate)
						v.Halt()
						return
					}
					// Then free vertices offer to one random neighbor
					// (matched receivers use it, free receivers ignore it),
					// and matched vertices will relay their best offer to
					// their partner next round.
					s.offerTo, s.gotOffer, s.relayed = -1, -1, -1
					if s.mate == -1 && v.Degree() > 0 {
						p := v.Rand().Intn(v.Degree())
						s.offerTo = p
						v.Send(p, congest.Message{msgOffer, int64(v.ID())})
					}
				case 2:
					if s.mate != -1 {
						best := -1
						bestPort := -1
						for _, in := range recv {
							if len(in.Msg) == 2 && in.Msg[0] == msgOffer {
								if int(in.Msg[1]) > best {
									best = int(in.Msg[1])
									bestPort = in.Port
								}
							}
						}
						s.gotOffer, s.offerPort = best, bestPort
						if mp := v.PortOf(s.mate); mp >= 0 {
							v.Send(mp, congest.Message{msgRelay, int64(best)})
						}
					}
				case 0:
					if s.mate != -1 {
						for _, in := range recv {
							if len(in.Msg) == 2 && in.Msg[0] == msgRelay && in.From == s.mate {
								s.relayed = int(in.Msg[1])
							}
						}
						// Flip decision must be symmetric: both endpoints
						// see (own offer, partner offer). Flip iff both
						// offers exist and are distinct. The endpoint with
						// the larger ID takes its own offer; so does the
						// smaller — each marries its own offerer.
						if s.gotOffer != -1 && s.relayed != -1 && s.gotOffer != s.relayed {
							v.Send(s.offerPort, congest.Message{msgAccept})
							s.mate = s.gotOffer
						}
					}
				}
			},
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	out := &Result{Mate: make([]int, g.N())}
	for v := 0; v < g.N(); v++ {
		out.Mate[v] = -1
		if m, ok := res.Outputs[v].(int); ok {
			out.Mate[v] = m
		}
	}
	for v, m := range out.Mate {
		if m >= 0 && (m >= g.N() || out.Mate[m] != v) {
			out.Mate[v] = -1
		}
	}
	if !solvers.IsMatching(g, out.Mate) {
		return nil, res.Metrics, fmt.Errorf("matching: augmentation produced an inconsistent matching")
	}
	return out, res.Metrics, nil
}

// GreedyPlusAugment runs the distributed greedy matcher and then the
// length-3 augmentation pass — the full ⅔-approximation baseline pipeline.
func GreedyPlusAugment(g *graph.Graph, cfg congest.Config, phases int) (*Result, congest.Metrics, error) {
	greedy, m1, err := DistributedGreedy(g, cfg)
	if err != nil {
		return nil, m1, err
	}
	aug, m2, err := ThreeAugment(g, cfg, greedy.Mate, phases)
	if err != nil {
		return nil, m1, err
	}
	m1.Add(m2)
	return aug, m1, nil
}
