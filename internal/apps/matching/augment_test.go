package matching

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func TestThreeAugmentFlipsKnownPath(t *testing.T) {
	// P4 with the middle edge matched: one length-3 augmenting path. After
	// augmentation the matching must be perfect.
	g := graph.Path(4)
	start := []int{-1, 2, 1, -1}
	res, _, err := ThreeAugment(g, congest.Config{Seed: 1}, start, 30)
	if err != nil {
		t.Fatal(err)
	}
	if res.Size() != 2 {
		t.Errorf("after augmentation size = %d, want 2 (perfect)", res.Size())
	}
}

func TestThreeAugmentNeverShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 10; trial++ {
		g := graph.ErdosRenyi(16, 0.25, rng)
		greedy, _, err := DistributedGreedy(g, congest.Config{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		aug, _, err := ThreeAugment(g, congest.Config{Seed: int64(trial)}, greedy.Mate, 40)
		if err != nil {
			t.Fatal(err)
		}
		if aug.Size() < greedy.Size() {
			t.Errorf("trial %d: augmentation shrank matching %d -> %d",
				trial, greedy.Size(), aug.Size())
		}
		if !solvers.IsMatching(g, aug.Mate) {
			t.Fatal("invalid matching after augmentation")
		}
	}
}

func TestGreedyPlusAugmentTwoThirds(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomPlanar(30, 0.7, rng)
		res, metrics, err := GreedyPlusAugment(g, congest.Config{Seed: int64(trial + 10)}, 60)
		if err != nil {
			t.Fatal(err)
		}
		if metrics.Rounds == 0 {
			t.Error("no rounds recorded")
		}
		opt := solvers.MatchingSize(solvers.MaximumMatching(g))
		if 3*res.Size() < 2*opt {
			t.Errorf("trial %d: augmented matching %d below 2/3·OPT (%d)", trial, res.Size(), opt)
		}
	}
}

func TestThreeAugmentValidation(t *testing.T) {
	g := graph.Path(4)
	if _, _, err := ThreeAugment(g, congest.Config{}, []int{-1, -1}, 5); err == nil {
		t.Error("short start accepted")
	}
	if _, _, err := ThreeAugment(g, congest.Config{}, []int{1, 0, 3, 1}, 5); err == nil {
		t.Error("inconsistent start accepted")
	}
}

func TestAugmentImprovesBadGreedyOnPaths(t *testing.T) {
	// Long path: a maximal matching can be as small as ~n/3; augmentation
	// must push it toward the perfect n/2.
	g := graph.Path(30)
	res, _, err := GreedyPlusAugment(g, congest.Config{Seed: 5}, 80)
	if err != nil {
		t.Fatal(err)
	}
	opt := solvers.MatchingSize(solvers.MaximumMatching(g)) // 15
	if 3*res.Size() < 2*opt {
		t.Errorf("path augmentation %d below 2/3·%d", res.Size(), opt)
	}
}
