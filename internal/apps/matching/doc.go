// Package matching implements Theorem 3.2 (planar (1-ε)-approximate maximum
// cardinality matching) and the Theorem 1.1 maximum-weight-matching variant
// on H-minor-free networks.
//
// The MCM pipeline follows §3.2: first eliminate 2-stars and 3-double-stars
// with the token/bounce protocol of Czygrinow–Hańćkowiak–Szymańska (run here
// as genuine message passing), which preserves the maximum matching size
// while guaranteeing OPT = Ω(n) on the remaining planar graph (Lemma 3.1);
// then run the framework with per-cluster exact matching (Edmonds' blossom
// at the leader) and take the union. Cluster matchings never conflict, and
// the union loses at most the ε'·n inter-cluster OPT edges.
//
// For MWM, cluster leaders solve exact maximum weight matching (falling back
// to scaling for very large clusters). The paper's full weighted machinery
// (embedding the decomposition into Duan–Pettie's scaling algorithm) is
// substituted by this per-cluster-exact variant; see DESIGN.md. A
// propose-accept distributed greedy matcher provides the ½-approximation
// baseline.
//
// When a congest.Observer is attached, this package's stages appear as
// the named phases "star-elimination" (§3.2 preprocessing),
// "greedy-matching" (the propose-accept baseline), and "augment" (the
// 3-augmentation walk phases), alongside the framework's own phases.
package matching
