package matching

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// Options configures the framework matchers.
type Options struct {
	// Eps is the approximation parameter.
	Eps float64
	// Density is the edge-density bound (default 3).
	Density int
	// Cfg is the simulator configuration.
	Cfg congest.Config
	// Core forwards extra framework options.
	Core core.Options
}

// Result is a matching produced by a distributed algorithm.
type Result struct {
	// Mate[v] is v's partner or -1. Indices refer to the input graph.
	Mate []int
	// Eliminated flags vertices removed by star elimination (MCM only).
	Eliminated []bool
	// Solution carries framework details (nil for baselines).
	Solution *core.Solution
	// EliminationMetrics covers the star-elimination phase.
	EliminationMetrics congest.Metrics
}

// Size returns the number of matched pairs.
func (r *Result) Size() int { return solvers.MatchingSize(r.Mate) }

// Weight returns the matching weight in g.
func (r *Result) Weight(g *graph.Graph) int64 { return solvers.MatchingWeight(g, r.Mate) }

// EliminateStars runs the §3.2 preprocessing as message passing and returns
// the per-vertex removal flags. 2-star elimination: every degree-1 vertex
// sends a token to its neighbor, which keeps one and bounces the rest;
// bounced vertices are removed. 3-double-star elimination: every degree-2
// vertex sends its neighbor pair to the smaller neighbor, which keeps two
// per pair and bounces the rest.
func EliminateStars(g *graph.Graph, cfg congest.Config) ([]bool, congest.Metrics, error) {
	cfg.Obs.BeginPhase("star-elimination")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		removed := false
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) {
				// Round 1 payloads: degree-1 vertices announce (kind 1);
				// degree-2 vertices send (kind 2, other neighbor) to their
				// smaller neighbor.
				switch v.Degree() {
				case 1:
					v.Send(0, congest.Message{1})
				case 2:
					a, b := v.NeighborID(0), v.NeighborID(1)
					lo, other := 0, b
					if b < a {
						lo, other = 1, a
					}
					v.Send(lo, congest.Message{2, int64(other)})
				}
				// Round 1 is pure token aggregation: only vertices that
				// receive a token act (the message wakes them); everyone
				// else skips straight to the output round.
				v.SleepUntil(2)
			},
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				switch round {
				case 1:
					// Aggregate: keep one leaf token; keep two double-star
					// tokens per (self, other) pair; bounce the rest.
					leafKept := false
					pairKept := make(map[int]int)
					for _, in := range recv {
						switch {
						case len(in.Msg) == 1 && in.Msg[0] == 1:
							if leafKept {
								v.Send(in.Port, congest.Message{9}) // bounce
							} else {
								leafKept = true
							}
						case len(in.Msg) == 2 && in.Msg[0] == 2:
							other := int(in.Msg[1])
							if pairKept[other] >= 2 {
								v.Send(in.Port, congest.Message{9})
							} else {
								pairKept[other]++
							}
						}
					}
				case 2:
					for _, in := range recv {
						if len(in.Msg) == 1 && in.Msg[0] == 9 {
							removed = true
						}
					}
					v.SetOutput(removed)
					v.Halt()
				}
			},
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	removed := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		if r, ok := res.Outputs[v].(bool); ok {
			removed[v] = r
		}
	}
	return removed, res.Metrics, nil
}

// ApproximateMCM computes a (1-ε)-approximate maximum cardinality matching
// of a planar network per Theorem 3.2.
func ApproximateMCM(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("matching: eps must be in (0,1), got %v", opts.Eps)
	}
	removed, elimMetrics, err := EliminateStars(g, opts.Cfg)
	if err != nil {
		return nil, err
	}
	// Build Ḡ: the graph with eliminated vertices isolated (we keep vertex
	// IDs stable and simply drop their edges; isolated vertices become
	// singleton clusters and stay unmatched, which is what removal means).
	bld := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		if !removed[e.U] && !removed[e.V] {
			bld.AddEdge(e.U, e.V)
		}
	}
	gBar := bld.Graph()

	// Lemma 3.1 gives OPT(Ḡ) ≥ c·|V̄| with c about 1/10 for planar graphs;
	// §3.2 sets ε' = c·ε.
	const lemmaConstant = 0.1
	epsPrime := lemmaConstant * opts.Eps
	coreOpts := opts.Core
	coreOpts.Eps = epsPrime
	coreOpts.Density = densityOrDefault(opts.Density)
	coreOpts.Cfg = opts.Cfg

	sol, err := core.Run(gBar, coreOpts, matchSolver)
	if err != nil {
		return nil, err
	}
	return assembleResult(g, sol, removed, elimMetrics)
}

// ApproximateMWM computes an approximate maximum weight matching of an
// H-minor-free network (Theorem 1.1's statement; see the package comment
// for the substitution).
func ApproximateMWM(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("matching: eps must be in (0,1), got %v", opts.Eps)
	}
	coreOpts := opts.Core
	coreOpts.Eps = opts.Eps
	coreOpts.Density = densityOrDefault(opts.Density)
	coreOpts.Cfg = opts.Cfg
	sol, err := core.Run(g, coreOpts, matchSolver)
	if err != nil {
		return nil, err
	}
	return assembleResult(g, sol, make([]bool, g.N()), congest.Metrics{})
}

func densityOrDefault(d int) int {
	if d == 0 {
		return 3
	}
	return d
}

// matchSolver is the leader-local matching: exact weighted blossom (or
// branch and bound for tiny instances) on weighted graphs up to the blossom
// size limit, Edmonds' blossom for unweighted graphs, and the scaling
// approximation only beyond the exact solvers' reach. The answer word per
// vertex is the partner's network ID plus one, or 0 for unmatched (so the
// framework's zero default means "unmatched").
func matchSolver(cluster *graph.Graph, toOld []int) map[int]int64 {
	var mate []int
	switch {
	case cluster.Weighted() && cluster.N() <= solvers.WeightedBlossomLimit:
		mate = solvers.ExactMWM(cluster)
	case cluster.Weighted():
		mate = solvers.ScalingMWM(cluster, 0.05)
	default:
		mate = solvers.MaximumMatching(cluster)
	}
	out := make(map[int]int64, len(toOld))
	for v, m := range mate {
		if m == -1 {
			out[toOld[v]] = 0
		} else {
			out[toOld[v]] = int64(toOld[m]) + 1
		}
	}
	return out
}

func assembleResult(g *graph.Graph, sol *core.Solution, removed []bool, elim congest.Metrics) (*Result, error) {
	res := &Result{
		Mate:               make([]int, g.N()),
		Eliminated:         removed,
		Solution:           sol,
		EliminationMetrics: elim,
	}
	sol.Metrics.Add(elim)
	for v := range res.Mate {
		res.Mate[v] = int(sol.Values[v]) - 1
	}
	// Enforce symmetry defensively: drop any half-matched pair.
	for v := range res.Mate {
		m := res.Mate[v]
		if m >= 0 && (m >= g.N() || res.Mate[m] != v) {
			res.Mate[v] = -1
		}
	}
	if !solvers.IsMatching(g, res.Mate) {
		return nil, fmt.Errorf("matching: assembled mate slice is not a matching")
	}
	return res, nil
}

// DistributedGreedy is the ½-approximation baseline: repeated propose-accept
// phases as message passing. In each phase every unmatched vertex proposes
// to its heaviest live neighbor (each endpoint of an edge knows the edge's
// weight locally, per the model); mutual proposals marry; matched vertices
// announce and retire. Every phase either matches the heaviest live edge's
// endpoints or retires vertices, so the protocol terminates with a maximal
// matching whose weight is at least half the optimum.
func DistributedGreedy(g *graph.Graph, cfg congest.Config) (*Result, congest.Metrics, error) {
	type state struct {
		mate      int
		dead      map[int]bool // ports to neighbors known matched/retired
		proposeTo int
		bestPort  int
		weights   []int64 // per-port edge weights (local knowledge)
	}
	cfg.Obs.BeginPhase("greedy-matching")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		s := &state{mate: -1, dead: make(map[int]bool), proposeTo: -1}
		s.weights = make([]int64, v.Degree())
		for p := 0; p < v.Degree(); p++ {
			if idx, ok := g.EdgeIndex(v.ID(), v.NeighborID(p)); ok {
				s.weights[p] = g.Weight(idx)
			}
		}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				// Phase structure (3 rounds): propose, accept, confirm.
				// Each phase every live vertex is a proposer with
				// probability 1/2 (Israeli–Itai-style symmetry breaking):
				// proposers offer their heaviest live edge, acceptors take
				// their heaviest incoming proposal, so adjacent
				// proposer/acceptor pairs make progress in expectation.
				switch round % 3 {
				case 1:
					// Process retirement announcements from last phase.
					for _, in := range recv {
						if len(in.Msg) == 1 && in.Msg[0] == 5 {
							s.dead[in.Port] = true
						}
					}
					if s.mate != -1 {
						v.SetOutput(s.mate)
						v.Halt()
						return
					}
					// Heaviest (then largest-ID) live neighbor.
					best, bestID, bestW := -1, -1, int64(-1)
					for p := 0; p < v.Degree(); p++ {
						if s.dead[p] {
							continue
						}
						bw := s.weights[p]
						if bw > bestW || (bw == bestW && v.NeighborID(p) > bestID) {
							best, bestID, bestW = p, v.NeighborID(p), bw
						}
					}
					if best == -1 {
						v.SetOutput(-1)
						v.Halt()
						return
					}
					s.proposeTo = -1
					s.bestPort = best
					if v.Rand().Intn(2) == 0 {
						// Acceptor: idle until a proposal wakes it in the
						// accept round or the next propose round's draw.
						v.SleepUntil(round + 3)
						return
					}
					s.proposeTo = best
					v.Send(best, congest.Message{4})
					// Proposers ignore the accept round unless a neighbor's
					// proposal wakes them (a no-op); the confirm round needs
					// them only if an acceptance arrives, which wakes them.
					v.SleepUntil(round + 3)
				case 2:
					if s.proposeTo != -1 {
						// Woken by a neighbor's proposal: still just waiting
						// for the confirm round.
						v.SleepUntil(round + 2)
						return
					}
					// Accept only a proposal arriving on the locally
					// heaviest live edge (Preis-style): this preserves the
					// ½-approximation for weights, because a matched edge is
					// always locally heaviest for at least one endpoint.
					for _, in := range recv {
						if len(in.Msg) == 1 && in.Msg[0] == 4 && in.Port == s.bestPort {
							s.mate = v.NeighborID(in.Port)
							v.Send(in.Port, congest.Message{6})
							break
						}
					}
					if s.mate == -1 {
						// Nothing accepted: the confirm round is a no-op for
						// this vertex; sleep to the next propose round. A
						// vertex that accepted stays awake to broadcast its
						// retirement in the confirm round.
						v.SleepUntil(round + 2)
					}
				case 0:
					for _, in := range recv {
						if len(in.Msg) == 1 && in.Msg[0] == 6 && in.Port == s.proposeTo {
							s.mate = v.NeighborID(in.Port)
						}
					}
					if s.mate != -1 {
						v.Broadcast(congest.Message{5})
					}
				}
			},
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	out := &Result{Mate: make([]int, g.N())}
	for v := 0; v < g.N(); v++ {
		out.Mate[v] = -1
		if m, ok := res.Outputs[v].(int); ok {
			out.Mate[v] = m
		}
	}
	// Defensive symmetry enforcement.
	for v, m := range out.Mate {
		if m >= 0 && (m >= g.N() || out.Mate[m] != v) {
			out.Mate[v] = -1
		}
	}
	if !solvers.IsMatching(g, out.Mate) {
		return nil, res.Metrics, fmt.Errorf("matching: greedy produced an inconsistent matching")
	}
	return out, res.Metrics, nil
}
