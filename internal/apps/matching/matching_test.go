package matching

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func TestEliminateStarsTwoStar(t *testing.T) {
	// A 3-star: center 0 with leaves 1,2,3. Keep one leaf, remove two.
	g := graph.Star(3)
	removed, _, err := EliminateStars(g, congest.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for v := 1; v <= 3; v++ {
		if removed[v] {
			count++
		}
	}
	if count != 2 {
		t.Errorf("removed %d leaves, want 2", count)
	}
	if removed[0] {
		t.Error("center must stay")
	}
}

func TestEliminateStarsDoubleStar(t *testing.T) {
	// 4-double-star: x=0, y=1, plus 4 degree-2 vertices each adjacent to
	// both. Keep two, remove two.
	b := graph.NewBuilder(6)
	for v := 2; v < 6; v++ {
		b.AddEdge(0, v)
		b.AddEdge(1, v)
	}
	g := b.Graph()
	removed, _, err := EliminateStars(g, congest.Config{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for v := 2; v < 6; v++ {
		if removed[v] {
			count++
		}
	}
	if count != 2 {
		t.Errorf("removed %d double-star leaves, want 2", count)
	}
	if removed[0] || removed[1] {
		t.Error("hubs must stay")
	}
}

func TestEliminateStarsPreservesMatchingSize(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		base := graph.RandomPlanar(14, 0.7, rng)
		g := graph.AttachPendantStars(base, []int{0, 3, 7}, 4)
		removed, _, err := EliminateStars(g, congest.Config{Seed: int64(trial)})
		if err != nil {
			t.Fatal(err)
		}
		bld := graph.NewBuilder(g.N())
		for _, e := range g.Edges() {
			if !removed[e.U] && !removed[e.V] {
				bld.AddEdge(e.U, e.V)
			}
		}
		gBar := bld.Graph()
		before := solvers.MatchingSize(solvers.MaximumMatching(g))
		after := solvers.MatchingSize(solvers.MaximumMatching(gBar))
		if before != after {
			t.Errorf("trial %d: elimination changed MCM: %d -> %d", trial, before, after)
		}
	}
}

func TestApproximateMCMOnGrid(t *testing.T) {
	g := graph.Grid(6, 6)
	res, err := ApproximateMCM(g, Options{Eps: 0.3, Cfg: congest.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsMatching(g, res.Mate) {
		t.Fatal("not a matching")
	}
	opt := solvers.MatchingSize(solvers.MaximumMatching(g))
	got := res.Size()
	if float64(got) < 0.7*float64(opt) {
		t.Errorf("MCM size %d below (1-eps)·OPT = 0.7·%d", got, opt)
	}
}

func TestApproximateMCMWithPendantStars(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	base := graph.RandomPlanar(30, 0.7, rng)
	g := graph.AttachPendantStars(base, []int{0, 5, 10, 15}, 5)
	res, err := ApproximateMCM(g, Options{Eps: 0.25, Cfg: congest.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsMatching(g, res.Mate) {
		t.Fatal("not a matching")
	}
	opt := solvers.MatchingSize(solvers.MaximumMatching(g))
	if float64(res.Size()) < 0.75*float64(opt) {
		t.Errorf("size %d vs opt %d below 1-eps", res.Size(), opt)
	}
	// Some star leaves must have been eliminated.
	any := false
	for _, r := range res.Eliminated {
		any = any || r
	}
	if !any {
		t.Error("pendant stars should trigger eliminations")
	}
}

func TestApproximateMWMQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	base := graph.Grid(5, 5)
	g := graph.WithRandomWeights(base, 20, rng)
	res, err := ApproximateMWM(g, Options{Eps: 0.3, Cfg: congest.Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsMatching(g, res.Mate) {
		t.Fatal("not a matching")
	}
	// Reference: greedy gives >= OPT/2, so 2·greedy >= OPT >= framework.
	grd := solvers.MatchingWeight(g, solvers.GreedyMatching(g))
	got := res.Weight(g)
	if float64(got) < 0.7*float64(grd) {
		t.Errorf("MWM weight %d far below greedy reference %d", got, grd)
	}
}

func TestApproximateValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := ApproximateMCM(g, Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted by MCM")
	}
	if _, err := ApproximateMWM(g, Options{Eps: 1}); err == nil {
		t.Error("eps=1 accepted by MWM")
	}
}

func TestDistributedGreedyMaximal(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := graph.ErdosRenyi(20, 0.2, rng)
		res, _, err := DistributedGreedy(g, congest.Config{Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if !solvers.IsMatching(g, res.Mate) {
			t.Fatal("greedy not a matching")
		}
		for _, e := range g.Edges() {
			if res.Mate[e.U] == -1 && res.Mate[e.V] == -1 {
				t.Fatalf("trial %d: matching not maximal at %v", trial, e)
			}
		}
		opt := solvers.MatchingSize(solvers.MaximumMatching(g))
		if 2*res.Size() < opt {
			t.Errorf("maximal matching %d below OPT/2 (%d)", res.Size(), opt)
		}
	}
}

func TestDistributedGreedyWeightsPreferHeavy(t *testing.T) {
	// Path of 3 edges with middle weight dominating: greedy takes middle.
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 100)
	b.AddWeightedEdge(2, 3, 1)
	g := b.Graph()
	res, _, err := DistributedGreedy(g, congest.Config{Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	if res.Mate[1] != 2 || res.Mate[2] != 1 {
		t.Errorf("greedy should match the heavy edge; mate = %v", res.Mate)
	}
}

func TestMCMOnBoundedGenusViaUnitWeights(t *testing.T) {
	// Theorem 1.1 covers all H-minor-free graphs; with unit weights the MWM
	// pipeline is an MCM algorithm beyond planarity (torus, double torus).
	for _, g := range []*graph.Graph{graph.Torus(5, 5), graph.DoubleTorus(4)} {
		res, err := ApproximateMWM(g, Options{Eps: 0.25, Cfg: congest.Config{Seed: 3}})
		if err != nil {
			t.Fatal(err)
		}
		if !solvers.IsMatching(g, res.Mate) {
			t.Fatal("not a matching")
		}
		opt := solvers.MatchingSize(solvers.MaximumMatching(g))
		if float64(res.Size()) < 0.75*float64(opt) {
			t.Errorf("%v: MCM-via-MWM %d below 0.75·OPT %d", g, res.Size(), opt)
		}
	}
}

func TestFrameworkBeatsGreedyOnCardinality(t *testing.T) {
	// A path has a perfect-ish matching; greedy randomized matchings can be
	// smaller. The framework must reach (1-eps)·OPT.
	g := graph.Grid(4, 8)
	fw, err := ApproximateMCM(g, Options{Eps: 0.2, Cfg: congest.Config{Seed: 17}})
	if err != nil {
		t.Fatal(err)
	}
	opt := solvers.MatchingSize(solvers.MaximumMatching(g))
	if float64(fw.Size()) < 0.8*float64(opt) {
		t.Errorf("framework %d below 0.8·OPT (%d)", fw.Size(), opt)
	}
}
