// Package maxis implements Theorem 1.2 of the paper: a (1-ε)-approximate
// maximum independent set on H-minor-free networks in the CONGEST model.
//
// The algorithm is §3.1 verbatim: run the framework with parameter
// ε' = ε/(2d+1) (d the edge-density bound), let every cluster leader compute
// a maximum independent set of its gathered cluster topology, disseminate
// membership bits, and resolve conflicts on inter-cluster edges by dropping
// one endpoint (the set Z of the paper; |Z| ≤ ε'·n ≤ ε·α(G)).
//
// Luby's classic distributed maximal independent set is included as the
// (1/Δ)-approximation baseline the paper compares against.
//
// When a congest.Observer is attached, the framework stages appear as
// named phases; this package adds "conflict-resolution" (the §3.1 Z-set
// announcement round) and the Luby baseline reports under "luby".
package maxis
