package maxis

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// Result is the outcome of the framework MaxIS algorithm.
type Result struct {
	// Set is the independent set found.
	Set []int
	// InSet flags membership per vertex.
	InSet []bool
	// Dropped counts conflict resolutions (the paper's |Z|).
	Dropped int
	// Solution carries the framework run details and metrics.
	Solution *core.Solution
}

// Options configures Approximate.
type Options struct {
	// Eps is the approximation parameter.
	Eps float64
	// Density is the edge-density bound d (default 3, planar).
	Density int
	// Cfg is the simulator configuration.
	Cfg congest.Config
	// Core forwards extra framework options (ForwardRounds etc.).
	Core core.Options
}

// Approximate computes a (1-ε)-approximate maximum independent set of an
// H-minor-free network.
func Approximate(g *graph.Graph, opts Options) (*Result, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("maxis: eps must be in (0,1), got %v", opts.Eps)
	}
	d := opts.Density
	if d == 0 {
		d = 3
	}
	// §3.1: ε' = ε/(2d+1).
	epsPrime := opts.Eps / float64(2*d+1)
	coreOpts := opts.Core
	coreOpts.Eps = epsPrime
	coreOpts.Density = d
	coreOpts.Cfg = opts.Cfg

	sol, err := core.Run(g, coreOpts, func(cluster *graph.Graph, toOld []int) map[int]int64 {
		var set []int
		if cluster.N() <= solvers.MaxISExactLimit {
			set = solvers.MaximumIndependentSet(cluster)
		} else {
			set = solvers.GreedyIndependentSet(cluster)
		}
		out := make(map[int]int64, len(toOld))
		for _, v := range set {
			out[toOld[v]] = 1
		}
		return out
	})
	if err != nil {
		return nil, err
	}

	res := &Result{InSet: make([]bool, g.N()), Solution: sol}
	for v := 0; v < g.N(); v++ {
		res.InSet[v] = sol.Values[v] == 1
	}
	// Conflict resolution on inter-cluster edges: one message round where
	// members announce membership; on a conflicting edge the larger-ID
	// endpoint survives (deterministic local rule; this is the set Z).
	conflicts, m, err := resolveConflicts(g, opts.Cfg, res.InSet)
	if err != nil {
		return nil, err
	}
	sol.Metrics.Add(m)
	sol.Phases["conflict-resolution"] = m.Rounds
	res.Dropped = conflicts
	for v := 0; v < g.N(); v++ {
		if res.InSet[v] {
			res.Set = append(res.Set, v)
		}
	}
	return res, nil
}

// resolveConflicts runs one announcement round: every member broadcasts its
// membership; a member adjacent to a higher-ID member leaves the set.
// Returns the number of dropped vertices. Mutates inSet.
func resolveConflicts(g *graph.Graph, cfg congest.Config, inSet []bool) (int, congest.Metrics, error) {
	cfg.Obs.BeginPhase("conflict-resolution")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) {
				if inSet[v.ID()] {
					v.Broadcast(congest.Message{1})
				}
			},
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				if inSet[v.ID()] {
					drop := false
					for _, in := range recv {
						if len(in.Msg) == 1 && in.Msg[0] == 1 && in.From > v.ID() {
							drop = true
						}
					}
					v.SetOutput(drop)
				}
				v.Halt()
			},
		}
	})
	if err != nil {
		return 0, res.Metrics, err
	}
	dropped := 0
	for v := 0; v < g.N(); v++ {
		if d, ok := res.Outputs[v].(bool); ok && d {
			inSet[v] = false
			dropped++
		}
	}
	return dropped, res.Metrics, nil
}

// LubyMIS computes a maximal independent set with Luby's randomized
// algorithm as genuine message passing: in each phase every active vertex
// draws a random priority; local maxima join the MIS and deactivate their
// neighbors. A maximal independent set is the classic (1/Δ)-approximation
// baseline for MaxIS in CONGEST.
func LubyMIS(g *graph.Graph, cfg congest.Config) ([]int, congest.Metrics, error) {
	type state struct {
		active   bool
		inMIS    bool
		priority int64
	}
	cfg.Obs.BeginPhase("luby")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		s := &state{active: true}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				// Three-round phases:
				//   r%3==1: actives draw and broadcast priorities.
				//   r%3==2: local maxima join MIS, announce.
				//   r%3==0: neighbors of new MIS vertices deactivate,
				//           announce their own deactivation.
				switch round % 3 {
				case 1:
					if !s.active {
						v.Halt()
						v.SetOutput(s.inMIS)
						return
					}
					s.priority = int64(v.Rand().Intn(1 << 30))
					v.Broadcast(congest.Message{2, s.priority % (1 << 15), s.priority >> 15})
				case 2:
					if !s.active {
						v.SleepUntil(round + 2)
						return
					}
					win := true
					for _, in := range recv {
						if len(in.Msg) == 3 && in.Msg[0] == 2 {
							p := in.Msg[1] + in.Msg[2]<<15
							if p > s.priority || (p == s.priority && in.From > v.ID()) {
								win = false
							}
						}
					}
					if win {
						s.inMIS = true
						s.active = false
						v.Broadcast(congest.Message{3})
					}
					// Nothing to do until the next draw round (round+2,
					// where winners halt and survivors redraw) unless a
					// neighbor's MIS announcement arrives in the
					// deactivation round — the message wakes us for it.
					v.SleepUntil(round + 2)
				case 0:
					if s.active {
						for _, in := range recv {
							if len(in.Msg) == 1 && in.Msg[0] == 3 {
								s.active = false
							}
						}
					}
				}
			},
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	var set []int
	for v := 0; v < g.N(); v++ {
		if in, ok := res.Outputs[v].(bool); ok && in {
			set = append(set, v)
		}
	}
	return set, res.Metrics, nil
}

// Ratio returns |set| / |optimum| where the optimum is computed exactly for
// small graphs and lower-bounded by the greedy guarantee otherwise. The
// boolean reports whether the denominator was exact.
func Ratio(g *graph.Graph, set []int) (float64, bool) {
	if g.N() == 0 {
		return 1, true
	}
	if g.N() <= solvers.MaxISExactLimit {
		opt := solvers.MaximumIndependentSet(g)
		return float64(len(set)) / float64(len(opt)), true
	}
	lower := solvers.GreedyIndependentSet(g)
	return float64(len(set)) / float64(len(lower)), false
}
