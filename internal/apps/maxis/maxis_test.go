package maxis

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func TestApproximateOnGrid(t *testing.T) {
	g := graph.Grid(6, 6)
	res, err := Approximate(g, Options{Eps: 0.3, Cfg: congest.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsIndependentSet(g, res.Set) {
		t.Fatal("result not independent")
	}
	opt := len(solvers.MaximumIndependentSet(g))
	if float64(len(res.Set)) < 0.7*float64(opt) {
		t.Errorf("|IS| = %d below (1-eps)·OPT = 0.7·%d", len(res.Set), opt)
	}
}

func TestApproximateOnPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	families := map[string]*graph.Graph{
		"trigrid": graph.TriangulatedGrid(5, 5),
		"planar":  graph.RandomMaximalPlanar(40, rng),
		"outer":   graph.RandomOuterplanar(30, rng),
		"tree":    graph.RandomTree(40, rng),
	}
	for name, g := range families {
		res, err := Approximate(g, Options{Eps: 0.25, Cfg: congest.Config{Seed: 3}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !solvers.IsIndependentSet(g, res.Set) {
			t.Fatalf("%s: not independent", name)
		}
		opt := len(solvers.MaximumIndependentSet(g))
		if float64(len(res.Set)) < 0.75*float64(opt) {
			t.Errorf("%s: |IS| = %d vs OPT %d below 1-eps", name, len(res.Set), opt)
		}
	}
}

func TestApproximateConflictsResolved(t *testing.T) {
	// Clusters solve independently, so conflicts only appear on
	// inter-cluster edges; after resolution the set is independent and the
	// dropped count is bounded by the number of inter-cluster edges.
	g := graph.Torus(5, 5)
	res, err := Approximate(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsIndependentSet(g, res.Set) {
		t.Fatal("conflicts not resolved")
	}
	if res.Dropped > len(res.Solution.Decomposition.Removed) {
		t.Errorf("dropped %d exceeds inter-cluster edges %d",
			res.Dropped, len(res.Solution.Decomposition.Removed))
	}
}

func TestApproximateInvalidEps(t *testing.T) {
	g := graph.Path(4)
	for _, eps := range []float64{0, 1, -0.1} {
		if _, err := Approximate(g, Options{Eps: eps}); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
}

func TestLubyMISIsMaximalIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 5; trial++ {
		g := graph.ErdosRenyi(25, 0.2, rng)
		set, metrics, err := LubyMIS(g, congest.Config{Seed: int64(trial + 1)})
		if err != nil {
			t.Fatal(err)
		}
		if !solvers.IsIndependentSet(g, set) {
			t.Fatal("Luby result not independent")
		}
		in := make(map[int]bool)
		for _, v := range set {
			in[v] = true
		}
		// Maximality: every vertex is in the set or has a neighbor in it.
		for v := 0; v < g.N(); v++ {
			if in[v] {
				continue
			}
			dominated := false
			for _, u := range g.Neighbors(v) {
				if in[u] {
					dominated = true
				}
			}
			if !dominated {
				t.Fatalf("trial %d: vertex %d not dominated", trial, v)
			}
		}
		if metrics.Rounds == 0 {
			t.Error("Luby should take rounds")
		}
	}
}

func TestFrameworkBeatsLubyOnStars(t *testing.T) {
	// On a star forest MIS can pick all leaves; Luby might too (leaves are
	// local maxima often), so use a structure where maximality is weak:
	// K_{1,k} chains. The framework should never be worse.
	g := graph.Disjoint(graph.Star(8), graph.Star(8), graph.Star(8))
	fw, err := Approximate(g, Options{Eps: 0.2, Cfg: congest.Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	luby, _, err := LubyMIS(g, congest.Config{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if len(fw.Set) < len(luby) {
		t.Errorf("framework %d worse than Luby %d", len(fw.Set), len(luby))
	}
	// Framework on disjoint stars should be optimal: all leaves.
	if len(fw.Set) != 24 {
		t.Errorf("framework IS = %d, want 24 (all leaves)", len(fw.Set))
	}
}

func TestRatioHelper(t *testing.T) {
	g := graph.Cycle(6)
	r, exact := Ratio(g, []int{0, 2, 4})
	if !exact || r != 1 {
		t.Errorf("ratio = %v (exact=%v), want 1 exact", r, exact)
	}
	empty := graph.NewBuilder(0).Graph()
	if r, _ := Ratio(empty, nil); r != 1 {
		t.Errorf("empty ratio = %v", r)
	}
}

func TestGreedyGuaranteeTracksDegeneracy(t *testing.T) {
	// §3.1's size bound α(G) ≥ n/(2d+1) is stated via edge density d; the
	// greedy set realizes it with d replaced by the degeneracy, which our
	// families keep constant.
	rng := rand.New(rand.NewSource(13))
	for _, g := range []*graph.Graph{
		graph.RandomMaximalPlanar(100, rng),
		graph.KTree(100, 3, rng),
		graph.RandomOuterplanar(100, rng),
	} {
		d, _ := g.Degeneracy()
		set := solvers.GreedyIndependentSet(g)
		if len(set)*(2*d+1) < g.N() {
			t.Errorf("%v (degeneracy %d): greedy IS %d below n/(2d+1)", g, d, len(set))
		}
	}
}

func TestEpsSweepImprovesQuality(t *testing.T) {
	// Smaller eps must not give (much) worse quality; check monotone-ish
	// behavior on a fixed instance.
	g := graph.Grid(5, 7)
	opt := len(solvers.MaximumIndependentSet(g))
	size := func(eps float64) int {
		res, err := Approximate(g, Options{Eps: eps, Cfg: congest.Config{Seed: 11}})
		if err != nil {
			t.Fatal(err)
		}
		return len(res.Set)
	}
	tight, loose := size(0.1), size(0.6)
	if float64(tight) < 0.9*float64(opt) {
		t.Errorf("eps=0.1 quality %d/%d below 0.9", tight, opt)
	}
	if tight < loose-3 {
		t.Errorf("tight eps (%d) much worse than loose (%d)", tight, loose)
	}
}
