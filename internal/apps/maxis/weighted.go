package maxis

import (
	"fmt"

	"expandergap/internal/core"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// WeightedResult is the outcome of the weighted framework MaxIS.
type WeightedResult struct {
	// Set is the independent set found.
	Set []int
	// InSet flags membership per vertex.
	InSet []bool
	// Weight is the total vertex weight of the set.
	Weight int64
	// Dropped counts conflict resolutions.
	Dropped int
	// Solution carries the framework run details and metrics.
	Solution *core.Solution
}

// ApproximateWeighted computes a (1-ε)-approximate maximum-weight
// independent set of an H-minor-free network — the weighted extension of
// §3.1 the paper discusses alongside [10, 66]. Vertex weights travel to the
// cluster leaders inside the hello tokens; leaders solve the weighted
// problem exactly (greedy by weight-to-degree ratio above the exact solver's
// limit), and inter-cluster conflicts drop the lighter endpoint.
func ApproximateWeighted(g *graph.Graph, weights []int64, opts Options) (*WeightedResult, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("maxis: eps must be in (0,1), got %v", opts.Eps)
	}
	if len(weights) != g.N() {
		return nil, fmt.Errorf("maxis: %d weights for %d vertices", len(weights), g.N())
	}
	for v, w := range weights {
		if w < 0 {
			return nil, fmt.Errorf("maxis: negative weight %d on vertex %d", w, v)
		}
	}
	d := opts.Density
	if d == 0 {
		d = 3
	}
	epsPrime := opts.Eps / float64(2*d+1)
	coreOpts := opts.Core
	coreOpts.Eps = epsPrime
	coreOpts.Density = d
	coreOpts.Cfg = opts.Cfg
	coreOpts.VertexPayload = weights

	sol, err := core.RunWithPayload(g, coreOpts, func(cluster *graph.Graph, toOld []int, payload map[int]int64) map[int]int64 {
		w := make([]int64, cluster.N())
		for local, orig := range toOld {
			w[local] = payload[orig]
		}
		var set []int
		if cluster.N() <= solvers.WeightedMaxISLimit {
			set = solvers.MaximumWeightIndependentSet(cluster, w)
		} else {
			set = greedyWeighted(cluster, w)
		}
		out := make(map[int]int64, len(toOld))
		for _, v := range set {
			out[toOld[v]] = 1
		}
		return out
	})
	if err != nil {
		return nil, err
	}

	res := &WeightedResult{InSet: make([]bool, g.N()), Solution: sol}
	for v := 0; v < g.N(); v++ {
		res.InSet[v] = sol.Values[v] == 1
	}
	// Conflict resolution: on a conflicting inter-cluster edge, the lighter
	// endpoint (ties by smaller ID) leaves.
	dropped := 0
	for _, e := range g.Edges() {
		if res.InSet[e.U] && res.InSet[e.V] {
			drop := e.U
			if weights[e.U] > weights[e.V] || (weights[e.U] == weights[e.V] && e.U > e.V) {
				drop = e.V
			}
			if res.InSet[drop] {
				res.InSet[drop] = false
				dropped++
			}
		}
	}
	res.Dropped = dropped
	for v := 0; v < g.N(); v++ {
		if res.InSet[v] {
			res.Set = append(res.Set, v)
			res.Weight += weights[v]
		}
	}
	return res, nil
}

// greedyWeighted is the weight-to-degree-ratio greedy: repeatedly take the
// alive vertex maximizing w(v)/(deg(v)+1) and delete its closed
// neighborhood. It inherits the (1/(2d+1))-style guarantee on bounded-
// density graphs.
func greedyWeighted(g *graph.Graph, w []int64) []int {
	n := g.N()
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(v)
	}
	remaining := n
	var out []int
	for remaining > 0 {
		pick := -1
		var bestScore float64 = -1
		for v := 0; v < n; v++ {
			if !alive[v] {
				continue
			}
			score := float64(w[v]) / float64(deg[v]+1)
			if score > bestScore {
				pick, bestScore = v, score
			}
		}
		out = append(out, pick)
		kill := []int{pick}
		g.ForEachNeighbor(pick, func(u, _ int) {
			if alive[u] {
				kill = append(kill, u)
			}
		})
		for _, v := range kill {
			alive[v] = false
			remaining--
			g.ForEachNeighbor(v, func(u, _ int) {
				if alive[u] {
					deg[u]--
				}
			})
		}
	}
	return out
}
