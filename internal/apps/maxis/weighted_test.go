package maxis

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

func uniformWeights(n int, w int64) []int64 {
	ws := make([]int64, n)
	for i := range ws {
		ws[i] = w
	}
	return ws
}

func TestApproximateWeightedUniformMatchesCardinality(t *testing.T) {
	g := graph.Grid(6, 6)
	res, err := ApproximateWeighted(g, uniformWeights(g.N(), 1), Options{
		Eps: 0.25, Cfg: congest.Config{Seed: 1},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsIndependentSet(g, res.Set) {
		t.Fatal("weighted result not independent")
	}
	opt := len(solvers.MaximumIndependentSet(g))
	if float64(len(res.Set)) < 0.75*float64(opt) {
		t.Errorf("uniform-weight IS %d below 0.75·%d", len(res.Set), opt)
	}
	if res.Weight != int64(len(res.Set)) {
		t.Errorf("weight %d != size %d under unit weights", res.Weight, len(res.Set))
	}
}

func TestApproximateWeightedPrefersHeavyVertices(t *testing.T) {
	// Star: center weight 100, leaves weight 1 each. Optimal weighted IS is
	// the center alone when leaves sum below it.
	g := graph.Star(5)
	w := []int64{100, 1, 1, 1, 1, 1}
	res, err := ApproximateWeighted(g, w, Options{Eps: 0.2, Cfg: congest.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if res.Weight != 100 {
		t.Errorf("weighted IS weight = %d, want 100 (center)", res.Weight)
	}
}

func TestApproximateWeightedAgainstExact(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 5; trial++ {
		g := graph.RandomMaximalPlanar(30, rng)
		w := make([]int64, g.N())
		for i := range w {
			w[i] = 1 + rng.Int63n(50)
		}
		res, err := ApproximateWeighted(g, w, Options{Eps: 0.25, Cfg: congest.Config{Seed: int64(trial)}})
		if err != nil {
			t.Fatal(err)
		}
		if !solvers.IsIndependentSet(g, res.Set) {
			t.Fatal("not independent")
		}
		optSet := solvers.MaximumWeightIndependentSet(g, w)
		var optW int64
		for _, v := range optSet {
			optW += w[v]
		}
		if float64(res.Weight) < 0.7*float64(optW) {
			t.Errorf("trial %d: weight %d below 0.7·OPT %d", trial, res.Weight, optW)
		}
	}
}

func TestApproximateWeightedValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := ApproximateWeighted(g, uniformWeights(4, 1), Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := ApproximateWeighted(g, uniformWeights(3, 1), Options{Eps: 0.5}); err == nil {
		t.Error("short weights accepted")
	}
	if _, err := ApproximateWeighted(g, []int64{1, -2, 1, 1}, Options{Eps: 0.5}); err == nil {
		t.Error("negative weight accepted")
	}
}

func TestGreedyWeightedIsIndependent(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomMaximalPlanar(80, rng)
	w := make([]int64, g.N())
	for i := range w {
		w[i] = 1 + rng.Int63n(20)
	}
	set := greedyWeighted(g, w)
	if !solvers.IsIndependentSet(g, set) {
		t.Error("greedyWeighted produced a dependent set")
	}
	if len(set) == 0 {
		t.Error("empty greedy set")
	}
}
