// Package proptest implements Theorem 1.4 of the paper: distributed
// property testing, in the CONGEST model, of any minor-closed graph property
// that is closed under taking disjoint union (planarity being the flagship).
//
// The algorithm is §3.4 verbatim. Pick s, the smallest clique size not in
// the property, and run the framework assuming the network is K_s-minor-
// free. Each cluster leader checks its gathered cluster topology against the
// property and floods Accept/Reject. The failure analysis of §2.3 maps to
// outputs exactly as the paper prescribes:
//
//   - a cluster whose leader finds a property violation → all its vertices
//     Reject;
//   - a cluster failing the Lemma 2.3 degree condition (possible only when
//     the network is not K_s-minor-free) → Reject;
//   - any other failure (routing loss) → Accept, keeping one-sided error:
//     a graph with the property is never rejected.
//
// ε-farness in tests comes from certifiable constructions: a disjoint union
// of k copies of a forbidden clique needs at least one edge edit per copy to
// gain the property, so it is ε-far for ε ≤ k/|E|.
//
// Test runs entirely through the framework, so with a congest.Observer
// attached it reports the standard framework phase tree.
package proptest
