package proptest

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
)

// Options configures Test.
type Options struct {
	// Eps is the proximity parameter.
	Eps float64
	// Cfg is the simulator configuration.
	Cfg congest.Config
	// Core forwards extra framework options.
	Core core.Options
	// MaxCliqueProbe bounds the search for the forbidden clique size s
	// (default 8).
	MaxCliqueProbe int
}

// RejectReason explains why a cluster's vertices rejected.
type RejectReason int

const (
	// AcceptedCluster means the cluster found no problem.
	AcceptedCluster RejectReason = iota
	// PropertyViolation means the leader's gathered topology lacks the
	// property.
	PropertyViolation
	// DegreeCondition means the Lemma 2.3 check failed — only possible when
	// the network is not K_s-minor-free.
	DegreeCondition
)

// String implements fmt.Stringer.
func (r RejectReason) String() string {
	switch r {
	case AcceptedCluster:
		return "accept"
	case PropertyViolation:
		return "property-violation"
	case DegreeCondition:
		return "degree-condition"
	default:
		return fmt.Sprintf("RejectReason(%d)", int(r))
	}
}

// Verdict is the outcome of a distributed property test.
type Verdict struct {
	// Accepts[v] is vertex v's output.
	Accepts []bool
	// AllAccept is true when every vertex accepted.
	AllAccept bool
	// ClusterReasons records, per framework cluster ID, why that cluster
	// rejected (AcceptedCluster if it did not).
	ClusterReasons []RejectReason
	// Solution carries framework details.
	Solution *core.Solution
}

// RejectionsByReason tallies rejecting clusters per reason.
func (v *Verdict) RejectionsByReason() map[RejectReason]int {
	out := make(map[RejectReason]int)
	for _, r := range v.ClusterReasons {
		if r != AcceptedCluster {
			out[r]++
		}
	}
	return out
}

// Test runs the distributed property tester for p on g.
func Test(g *graph.Graph, p minor.Property, opts Options) (*Verdict, error) {
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("proptest: eps must be in (0,1), got %v", opts.Eps)
	}
	probe := opts.MaxCliqueProbe
	if probe == 0 {
		probe = 8
	}
	n := g.N()
	verdict := &Verdict{Accepts: make([]bool, n), AllAccept: true}
	s, ok := p.CliqueNumberBound(probe)
	if !ok {
		// The property contains all cliques, hence all graphs (it is
		// minor-closed): trivial tester, everyone accepts.
		for v := range verdict.Accepts {
			verdict.Accepts[v] = true
		}
		return verdict, nil
	}
	// The forbidden clique K_s fixes the density bound: K_s-minor-free
	// graphs have edge density O(s·√log s); the small s values here are
	// covered by s+2.
	density := s + 2

	coreOpts := opts.Core
	coreOpts.Eps = opts.Eps
	coreOpts.Density = density
	coreOpts.Cfg = opts.Cfg

	sol, err := core.Run(g, coreOpts, func(cluster *graph.Graph, toOld []int) map[int]int64 {
		holds := int64(0)
		if p.Holds(cluster) {
			holds = 1
		}
		out := make(map[int]int64, len(toOld))
		for _, v := range toOld {
			out[v] = holds
		}
		return out
	})
	if err != nil {
		return nil, err
	}
	verdict.Solution = sol
	verdict.ClusterReasons = make([]RejectReason, len(sol.Clusters))
	for cid, ci := range sol.Clusters {
		if len(ci.Members) > 1 && !ci.DegreeConditionOK {
			verdict.ClusterReasons[cid] = DegreeCondition
		}
	}
	for v := 0; v < n; v++ {
		accept := sol.Values[v] == 1
		cid := sol.Decomposition.Assignment[v]
		if !accept && !sol.Undelivered[v] && verdict.ClusterReasons[cid] == AcceptedCluster {
			verdict.ClusterReasons[cid] = PropertyViolation
		}
		// Routing loss → Accept (one-sided error), per §3.4.
		if sol.Undelivered[v] {
			accept = true
		}
		// Degree-condition failure → Reject.
		if verdict.ClusterReasons[cid] == DegreeCondition {
			accept = false
		}
		verdict.Accepts[v] = accept
		verdict.AllAccept = verdict.AllAccept && accept
	}
	return verdict, nil
}

// DisjointForbiddenCliques builds a graph that is certifiably eps-far from
// the property with forbidden clique K_s: k disjoint copies of K_s. Turning
// it into a member of the property requires editing at least one edge per
// copy (each copy contains the forbidden minor), so the graph is ε-far for
// every ε ≤ k / |E| = 1/binom(s,2).
func DisjointForbiddenCliques(s, k int) *graph.Graph {
	parts := make([]*graph.Graph, k)
	for i := range parts {
		parts[i] = graph.Complete(s)
	}
	return graph.Disjoint(parts...)
}

// PlantCliques returns base with k disjoint K_s clusters appended (disjoint
// union), preserving the base's structure while making the result non-
// planar in k certifiable places.
func PlantCliques(base *graph.Graph, s, k int) *graph.Graph {
	parts := []*graph.Graph{base}
	for i := 0; i < k; i++ {
		parts = append(parts, graph.Complete(s))
	}
	return graph.Disjoint(parts...)
}
