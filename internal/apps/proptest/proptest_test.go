package proptest

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
)

func TestPlanarInputsAllAccept(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	planars := map[string]*graph.Graph{
		"grid":    graph.Grid(6, 6),
		"trigrid": graph.TriangulatedGrid(5, 5),
		"tri":     graph.RandomMaximalPlanar(40, rng),
		"tree":    graph.RandomTree(30, rng),
		"union":   graph.Disjoint(graph.Grid(4, 4), graph.Cycle(7)),
	}
	for name, g := range planars {
		v, err := Test(g, minor.Planarity(), Options{Eps: 0.1, Cfg: congest.Config{Seed: 2}})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !v.AllAccept {
			t.Errorf("%s: planar input rejected (one-sided error violated)", name)
		}
	}
}

func TestFarInputsRejected(t *testing.T) {
	// Disjoint K5 copies are certifiably far from planar.
	g := DisjointForbiddenCliques(5, 6)
	v, err := Test(g, minor.Planarity(), Options{Eps: 0.05, Cfg: congest.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if v.AllAccept {
		t.Error("6 disjoint K5s accepted — some vertex must reject")
	}
	rejected := 0
	for _, a := range v.Accepts {
		if !a {
			rejected++
		}
	}
	if rejected == 0 {
		t.Error("no rejecting vertex")
	}
}

func TestPlantedCliquesRejected(t *testing.T) {
	base := graph.Grid(5, 5)
	g := PlantCliques(base, 5, 3)
	v, err := Test(g, minor.Planarity(), Options{Eps: 0.05, Cfg: congest.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if v.AllAccept {
		t.Error("grid with planted K5s accepted")
	}
	// The planar base vertices should all accept (their clusters are
	// planar).
	for vtx := 0; vtx < base.N(); vtx++ {
		if !v.Accepts[vtx] {
			t.Errorf("planar base vertex %d rejected", vtx)
		}
	}
}

func TestForestPropertyTester(t *testing.T) {
	p := minor.Forests()
	tree := graph.RandomTree(25, rand.New(rand.NewSource(7)))
	v, err := Test(tree, p, Options{Eps: 0.2, Cfg: congest.Config{Seed: 7}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.AllAccept {
		t.Error("forest rejected by forest tester")
	}
	// Disjoint triangles: every triangle needs an edge removed — far from a
	// forest.
	tri := DisjointForbiddenCliques(3, 8)
	v2, err := Test(tri, p, Options{Eps: 0.1, Cfg: congest.Config{Seed: 8}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.AllAccept {
		t.Error("disjoint triangles accepted by forest tester")
	}
}

func TestTrivialPropertyAlwaysAccepts(t *testing.T) {
	all := minor.Property{Name: "all", Check: func(*graph.Graph) bool { return true }}
	g := graph.Complete(8)
	v, err := Test(g, all, Options{Eps: 0.1, Cfg: congest.Config{Seed: 9}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.AllAccept {
		t.Error("trivial property must accept everything")
	}
}

func TestValidation(t *testing.T) {
	if _, err := Test(graph.Path(3), minor.Planarity(), Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
}

func TestVerdictReasonsPropertyViolation(t *testing.T) {
	g := PlantCliques(graph.Grid(4, 4), 5, 2)
	v, err := Test(g, minor.Planarity(), Options{Eps: 0.05, Cfg: congest.Config{Seed: 11}})
	if err != nil {
		t.Fatal(err)
	}
	tally := v.RejectionsByReason()
	if tally[PropertyViolation] == 0 {
		t.Errorf("expected property-violation rejections, got %v", tally)
	}
	if tally[DegreeCondition] != 0 {
		t.Errorf("unexpected degree-condition rejections on this instance: %v", tally)
	}
	// Stringer coverage.
	if PropertyViolation.String() != "property-violation" ||
		DegreeCondition.String() != "degree-condition" ||
		AcceptedCluster.String() != "accept" {
		t.Error("RejectReason strings wrong")
	}
}

func TestDisjointForbiddenCliquesShape(t *testing.T) {
	g := DisjointForbiddenCliques(5, 3)
	if g.N() != 15 || g.M() != 30 {
		t.Errorf("got n=%d m=%d, want 15, 30", g.N(), g.M())
	}
	if minor.IsPlanar(g) {
		t.Error("disjoint K5s must be non-planar")
	}
}
