package proptest

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
)

// Theorem 1.4 requires the property to be closed under disjoint union, and
// the paper proves (full version) that the requirement is necessary. This
// file demonstrates both directions empirically: union-closed properties
// beyond planarity test correctly, and a minor-closed but NOT union-closed
// property defeats the algorithm exactly as the theory predicts.

func TestOuterplanarPropertyTester(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	p := minor.Outerplanarity()
	good := graph.RandomOuterplanar(40, rng)
	v, err := Test(good, p, Options{Eps: 0.2, Cfg: congest.Config{Seed: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.AllAccept {
		t.Error("outerplanar input rejected")
	}
	// Disjoint K4s: each copy needs an edit — far from outerplanar.
	bad := DisjointForbiddenCliques(4, 8)
	v2, err := Test(bad, p, Options{Eps: 0.1, Cfg: congest.Config{Seed: 2}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.AllAccept {
		t.Error("disjoint K4s accepted by outerplanarity tester")
	}
}

func TestTreewidth2PropertyTester(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	p := minor.TreewidthAtMost2()
	good := graph.KTree(40, 2, rng)
	v, err := Test(good, p, Options{Eps: 0.2, Cfg: congest.Config{Seed: 3}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.AllAccept {
		t.Error("2-tree rejected by treewidth tester")
	}
	bad := DisjointForbiddenCliques(4, 8)
	v2, err := Test(bad, p, Options{Eps: 0.1, Cfg: congest.Config{Seed: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if v2.AllAccept {
		t.Error("disjoint K4s accepted by treewidth tester")
	}
}

// atMostEdges is minor-closed (removing edges/vertices and contracting never
// adds edges) but NOT closed under disjoint union. It defeats the framework
// tester: every cluster individually satisfies the bound, so all vertices
// accept an input that is globally far from the property — the paper's
// necessity observation for the union-closure requirement.
func atMostEdges(k int) minor.Property {
	return minor.Property{
		Name:  "at-most-k-edges",
		Check: func(g *graph.Graph) bool { return g.M() <= k },
	}
}

func TestUnionClosureIsNecessary(t *testing.T) {
	// 20 disjoint triangles: 60 edges total. The property "at most 10
	// edges" fails globally and needs 50 removals (5/6 of the edges), so
	// the graph is 0.5-far. Yet every framework cluster is a subset of one
	// triangle (3 edges each), so every leader accepts.
	g := DisjointForbiddenCliques(3, 20)
	p := atMostEdges(10)
	if p.Holds(g) {
		t.Fatal("global property should fail")
	}
	v, err := Test(g, p, Options{Eps: 0.5, Cfg: congest.Config{Seed: 5}})
	if err != nil {
		t.Fatal(err)
	}
	if !v.AllAccept {
		t.Error("expected the tester to be defeated (this documents why Thm 1.4 " +
			"requires union closure); it rejected instead")
	}
}
