// Package benchmarks hosts the substrate micro-benchmarks shared between the
// root `go test -bench` suite and cmd/benchjson, which executes them
// programmatically (testing.Benchmark) to record the ns/op, B/op and
// allocs/op trajectory across PRs in BENCH_<pr>.json.
package benchmarks

import (
	"math/rand"
	"runtime"
	"sort"
	"testing"

	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
	"expandergap/internal/routing"
)

// floodHandler builds the standard flood workload: vertex 0 seeds a wave
// that every vertex forwards once and then halts on.
func floodHandler(v *congest.Vertex) congest.Handler {
	seen := v.ID() == 0
	return congest.RunFuncs{
		InitFn: func(v *congest.Vertex) {
			if seen {
				v.Broadcast(congest.Message{1})
			}
		},
		RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			if !seen && len(recv) > 0 {
				seen = true
				v.Broadcast(congest.Message{1})
			}
			if seen {
				v.Halt()
			}
		},
	}
}

// SimulatorFlood measures a full flood execution on a 16x16 grid. The
// simulator is built once and re-used across iterations, so the timing
// covers handler construction plus the round loop — not graph/CSR setup.
func SimulatorFlood(b *testing.B) {
	g := graph.Grid(16, 16)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := sim.Run(floodHandler); err != nil {
			b.Fatal(err)
		}
	}
}

// SimulatorFloodSteadyState isolates the steady-state round loop: a
// non-terminating broadcast workload is started once, warmed up, and then
// each iteration executes exactly one synchronous round. This is the path
// the zero-allocation contract covers, and it must report 0 allocs/op.
func SimulatorFloodSteadyState(b *testing.B) {
	g := graph.Grid(16, 16)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	ex := sim.Start(func(v *congest.Vertex) congest.Handler {
		val := int64(v.ID())
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) { v.BroadcastWords(val) },
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				v.BroadcastWords(val)
			},
		}
	})
	defer ex.Close()
	for i := 0; i < 4; i++ {
		if _, err := ex.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// ExpanderDecompose measures the recursive sparse-cut decomposition on a
// 200-vertex random maximal planar graph.
func ExpanderDecompose(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomMaximalPlanar(200, rng)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expander.Decompose(g, 0.3, expander.Options{Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// DecomposeE4 measures the full recursive decomposition at the E4 experiment
// scale — the 16×16 grid at ε = 0.25, seed 2022 — which is the instance the
// PR 5 view-refactor allocation criterion is pinned on.
func DecomposeE4(b *testing.B) {
	g := graph.Grid(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expander.Decompose(g, 0.25, expander.Options{Seed: 2022}); err != nil {
			b.Fatal(err)
		}
	}
}

// DecomposeStress forces deep recursion with many cuts (ε = 0.999, φ = 0.15
// on the 16×16 grid), so the per-level subgraph cost dominates: the workload
// most sensitive to view construction versus materialization.
func DecomposeStress(b *testing.B) {
	g := graph.Grid(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := expander.Decompose(g, 0.999, expander.Options{Seed: 2022, Phi: 0.15}); err != nil {
			b.Fatal(err)
		}
	}
}

// planarHalf returns the 256-vertex random maximal planar graph used by the
// subgraph benchmarks together with its even-vertex half.
func planarHalf() (*graph.Graph, []int) {
	rng := rand.New(rand.NewSource(7))
	g := graph.RandomMaximalPlanar(256, rng)
	verts := make([]int, 0, g.N()/2)
	for v := 0; v < g.N(); v += 2 {
		verts = append(verts, v)
	}
	return g, verts
}

// InduceView measures zero-copy view construction over half the vertices of
// a 256-vertex maximal planar graph.
func InduceView(b *testing.B) {
	g, verts := planarHalf()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub := g.Induce(verts)
		if sub.N() != len(verts) {
			b.Fatal("wrong view size")
		}
	}
}

// InducedSubgraphCopy measures the materializing counterpart of InduceView:
// the same subset, copied out through a Builder.
func InducedSubgraphCopy(b *testing.B) {
	g, verts := planarHalf()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sub, _ := g.InducedSubgraph(verts)
		if sub.N() != len(verts) {
			b.Fatal("wrong subgraph size")
		}
	}
}

// MPXClustering measures the distributed exponential-shift clustering.
func MPXClustering(b *testing.B) {
	g := graph.Grid(16, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := expander.MPX(g, congest.Config{Seed: int64(i)}, 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// WalkRoutingGrid measures random-walk token routing on an 8x8 grid.
func WalkRoutingGrid(b *testing.B) {
	g := graph.Grid(8, 8)
	leader := make([]int, g.N())
	tokens := make([][]routing.Token, g.N())
	for v := range tokens {
		tokens[v] = []routing.Token{{A: int64(v)}}
	}
	plan := routing.Plan{
		Cluster:       primitives.Uniform(g.N()),
		Leader:        leader,
		ForwardRounds: 8*g.M()*g.Diameter() + 64,
		Strategy:      routing.RandomWalk,
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, _, err := routing.Exchange(g, congest.Config{Seed: int64(i)}, plan, tokens, nil)
		if err != nil {
			b.Fatal(err)
		}
		if res.Undelivered > 0 {
			b.Fatalf("undelivered: %d", res.Undelivered)
		}
	}
}

// LubyMIS measures the classic randomized MIS on a 12x12 grid.
func LubyMIS(b *testing.B) {
	g := graph.Grid(12, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := maxis.LubyMIS(g, congest.Config{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

// WorkerCounts returns the worker sweep of the scaling-curve benchmarks:
// {1, 2, 4, NumCPU}, deduplicated and ascending. The sweep always includes
// the 1-worker anchor every speedup is measured against; counts above
// NumCPU are still swept (they measure oversubscription and pool overhead),
// which is why BENCH_*.json curves carry host metadata — a point is only a
// speedup claim when workers ≤ NumCPU.
func WorkerCounts() []int {
	counts := []int{1, 2, 4, runtime.NumCPU()}
	sort.Ints(counts)
	out := counts[:1]
	for _, c := range counts[1:] {
		if c != out[len(out)-1] {
			out = append(out, c)
		}
	}
	return out
}

// SimulatorFloodRoundsCurve returns the steady-state round-loop benchmark at
// the given worker count: the non-terminating broadcast workload of
// SimulatorFloodSteadyState scaled up to a 48×48 grid, where every vertex
// steps and receives every round — the round loop with maximal exploitable
// parallelism and none of the sparse-frontier effects of a full flood run.
// Each iteration is exactly one synchronized round.
func SimulatorFloodRoundsCurve(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		g := graph.Grid(48, 48)
		sim := congest.NewSimulator(g, congest.Config{Seed: 1, Workers: workers})
		ex := sim.Start(func(v *congest.Vertex) congest.Handler {
			val := int64(v.ID())
			return congest.RunFuncs{
				InitFn: func(v *congest.Vertex) { v.BroadcastWords(val) },
				RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
					v.BroadcastWords(val)
				},
			}
		})
		defer ex.Close()
		for i := 0; i < 4; i++ {
			if _, err := ex.Step(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := ex.Step(); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// WalkRoutingCurve returns the WalkRoutingGrid workload at the given
// executor worker count.
func WalkRoutingCurve(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		g := graph.Grid(8, 8)
		leader := make([]int, g.N())
		tokens := make([][]routing.Token, g.N())
		for v := range tokens {
			tokens[v] = []routing.Token{{A: int64(v)}}
		}
		plan := routing.Plan{
			Cluster:       primitives.Uniform(g.N()),
			Leader:        leader,
			ForwardRounds: 8*g.M()*g.Diameter() + 64,
			Strategy:      routing.RandomWalk,
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, _, err := routing.Exchange(g, congest.Config{Seed: int64(i), Workers: workers}, plan, tokens, nil)
			if err != nil {
				b.Fatal(err)
			}
			if res.Undelivered > 0 {
				b.Fatalf("undelivered: %d", res.Undelivered)
			}
		}
	}
}

// DecomposeCurve returns the parallel-decomposer benchmark at the given
// worker count: a 300-vertex random maximal planar graph under the
// deep-recursion stress setting (ε = 0.999, φ = 0.15), which takes many cuts
// and therefore exposes the recursion's piece-level parallelism. workers = 1
// is the sequential ground-truth recursion.
func DecomposeCurve(workers int) func(b *testing.B) {
	return func(b *testing.B) {
		rng := rand.New(rand.NewSource(1))
		g := graph.RandomMaximalPlanar(300, rng)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := expander.Decompose(g, 0.999, expander.Options{Seed: 1, Phi: 0.15, Workers: workers}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// CurveSpec is one scaling-curve family: a name plus a constructor mapping a
// worker count to the benchmark body.
type CurveSpec struct {
	Name string
	Fn   func(workers int) func(b *testing.B)
}

// Curves lists the worker-sweep benchmark families cmd/benchjson records as
// per-worker-count scaling curves in BENCH_<pr>.json.
func Curves() []CurveSpec {
	return []CurveSpec{
		{"SimulatorFloodRounds", SimulatorFloodRoundsCurve},
		{"WalkRoutingGrid", WalkRoutingCurve},
		{"Decompose", DecomposeCurve},
	}
}

// Named lists every benchmark cmd/benchjson records, in output order.
func Named() []struct {
	Name string
	Fn   func(b *testing.B)
} {
	return []struct {
		Name string
		Fn   func(b *testing.B)
	}{
		{"BenchmarkSimulatorFlood", SimulatorFlood},
		{"BenchmarkSimulatorFloodSteadyState", SimulatorFloodSteadyState},
		{"BenchmarkExpanderDecompose", ExpanderDecompose},
		{"BenchmarkDecomposeE4", DecomposeE4},
		{"BenchmarkDecomposeStress", DecomposeStress},
		{"BenchmarkInduceView", InduceView},
		{"BenchmarkInducedSubgraphCopy", InducedSubgraphCopy},
		{"BenchmarkMPXClustering", MPXClustering},
		{"BenchmarkWalkRoutingGrid", WalkRoutingGrid},
		{"BenchmarkLubyMIS", LubyMIS},
	}
}
