package benchmarks

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

// This file measures the dynamic-graph story: how incremental decomposition
// maintenance (expander.DecomposeIncremental) compares against a full rebuild
// as churn grows, and how the serving layer behaves when /mutate batches land
// under sustained query load. The offline curves go into BENCH_<pr>.json's
// "churn" section via cmd/benchjson; the under-load exercise goes into the
// "serve" section via cmd/loadgen -mutate.

// ChurnPoint is one churn fraction's measurement on one instance.
type ChurnPoint struct {
	// Fraction is the churn size as a fraction of the base edge count.
	Fraction float64 `json:"fraction"`
	// Ops is the resulting mutation count (round(Fraction*m)).
	Ops int `json:"ops"`
	// PrevClusters..NewClusters mirror expander.IncrementalStats.
	PrevClusters int `json:"prev_clusters"`
	Touched      int `json:"touched"`
	Broken       int `json:"broken"`
	Reused       int `json:"reused"`
	NewClusters  int `json:"new_clusters"`
	// ReuseFraction is Reused/PrevClusters; BrokenFraction is
	// Broken/PrevClusters — the gate condition: when under 10% of clusters
	// break, incremental maintenance must beat the full rebuild.
	ReuseFraction  float64 `json:"reuse_fraction"`
	BrokenFraction float64 `json:"broken_fraction"`
	// IncrementalNs and FullNs are best-of-R wall times for maintaining the
	// decomposition incrementally vs rebuilding from scratch on the
	// compacted graph. Speedup is FullNs/IncrementalNs.
	IncrementalNs float64 `json:"incremental_ns"`
	FullNs        float64 `json:"full_ns"`
	Speedup       float64 `json:"speedup"`
	// IncCutFraction / FullCutFraction are |E^r|/|E| of the two results —
	// the ε-budget drift the staleness semantics allow. StaleCutFraction is
	// the no-maintenance floor: the previous decomposition projected onto
	// the mutated graph (expander.ProjectStale) without any recomputation.
	IncCutFraction   float64 `json:"inc_cut_fraction"`
	FullCutFraction  float64 `json:"full_cut_fraction"`
	StaleCutFraction float64 `json:"stale_cut_fraction"`
}

// ChurnCurve is one instance swept across churn fractions.
type ChurnCurve struct {
	Instance string       `json:"instance"`
	N        int          `json:"n"`
	M        int          `json:"m"`
	Eps      float64      `json:"eps"`
	Phi      float64      `json:"phi"`
	Points   []ChurnPoint `json:"points"`
}

// ChurnOptions configures MeasureChurn.
type ChurnOptions struct {
	// Fractions is the churn sweep (default {0.01, 0.05, 0.10}).
	Fractions []float64
	// Seed drives the churn streams (default 7; the decomposer seed is
	// fixed at 2022 to match the golden instances).
	Seed int64
	// Rounds is the best-of repetition count per timing (default 3).
	Rounds int
	// Log receives progress lines (nil = quiet).
	Log io.Writer
}

func (o ChurnOptions) withDefaults() ChurnOptions {
	if len(o.Fractions) == 0 {
		o.Fractions = []float64{0.01, 0.05, 0.10}
	}
	if o.Seed == 0 {
		o.Seed = 7
	}
	if o.Rounds == 0 {
		o.Rounds = 3
	}
	return o
}

// churnInstance is one benchmark graph plus its decomposition parameters.
type churnInstance struct {
	name string
	g    *graph.Graph
	eps  float64
	phi  float64
}

// churnInstances returns the measured instances: a 32×32 grid and a
// 400-vertex random planar graph, both under the deep-recursion setting
// (ε = 0.999) at φ = 0.2 where certificates are checkable and a 10% churn
// breaks well under 10% of clusters.
func churnInstances() []churnInstance {
	rng := rand.New(rand.NewSource(5))
	return []churnInstance{
		{"grid32x32", graph.Grid(32, 32), 0.999, 0.2},
		{"planar400", graph.RandomPlanar(400, 0.7, rng), 0.999, 0.2},
	}
}

// bestOf runs fn rounds times and returns the fastest wall time.
func bestOf(rounds int, fn func() error) (time.Duration, error) {
	best := time.Duration(1<<63 - 1)
	for i := 0; i < rounds; i++ {
		t0 := time.Now()
		if err := fn(); err != nil {
			return 0, err
		}
		if d := time.Since(t0); d < best {
			best = d
		}
	}
	return best, nil
}

// MeasureChurn sweeps the churn fractions over the benchmark instances,
// measuring incremental maintenance vs full rebuild (best-of-Rounds wall
// time), the cluster-reuse accounting, and the cut-fraction quality of the
// incremental, full, and stale (no-maintenance) decompositions.
func MeasureChurn(opts ChurnOptions) ([]ChurnCurve, error) {
	opts = opts.withDefaults()
	var curves []ChurnCurve
	for _, inst := range churnInstances() {
		decOpts := expander.Options{Seed: 2022, Phi: inst.phi}
		prev, err := expander.Decompose(inst.g, inst.eps, decOpts)
		if err != nil {
			return nil, fmt.Errorf("churn: decompose %s: %w", inst.name, err)
		}
		c := ChurnCurve{Instance: inst.name, N: inst.g.N(), M: inst.g.M(), Eps: inst.eps, Phi: inst.phi}
		for _, frac := range opts.Fractions {
			count := int(frac * float64(inst.g.M()))
			if count < 1 {
				count = 1
			}
			ops, err := graph.GenerateChurn(inst.g, count, opts.Seed)
			if err != nil {
				return nil, fmt.Errorf("churn: generate %s f=%.2f: %w", inst.name, frac, err)
			}
			buildOverlay := func() (*graph.Overlay, error) {
				ov := graph.NewOverlay(inst.g)
				if n, err := ov.ApplyAll(ops); err != nil {
					return nil, fmt.Errorf("churn: apply op %d: %w", n, err)
				}
				return ov, nil
			}
			ov, err := buildOverlay()
			if err != nil {
				return nil, err
			}

			var (
				incDec *expander.Decomposition
				incG   *graph.Graph
				stats  *expander.IncrementalStats
			)
			// The incremental timing includes overlay compaction — that is
			// the real cost a /mutate pays — but not overlay construction,
			// which the server amortizes across the batch's arrival.
			incTime, err := bestOf(opts.Rounds, func() error {
				incDec, incG, stats, err = expander.DecomposeIncremental(prev, ov, 0, decOpts)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("churn: incremental %s f=%.2f: %w", inst.name, frac, err)
			}
			var fullDec *expander.Decomposition
			fullTime, err := bestOf(opts.Rounds, func() error {
				fullDec, err = expander.Decompose(incG, inst.eps, decOpts)
				return err
			})
			if err != nil {
				return nil, fmt.Errorf("churn: full %s f=%.2f: %w", inst.name, frac, err)
			}

			pt := ChurnPoint{
				Fraction:         frac,
				Ops:              len(ops),
				PrevClusters:     stats.PrevClusters,
				Touched:          stats.Touched,
				Broken:           stats.Broken,
				Reused:           stats.Reused,
				NewClusters:      stats.NewClusters,
				ReuseFraction:    stats.ReuseFraction(),
				IncrementalNs:    float64(incTime.Nanoseconds()),
				FullNs:           float64(fullTime.Nanoseconds()),
				IncCutFraction:   incDec.CutFraction(incG),
				FullCutFraction:  fullDec.CutFraction(incG),
				StaleCutFraction: expander.ProjectStale(prev, incG).CutFraction(incG),
			}
			if stats.PrevClusters > 0 {
				pt.BrokenFraction = float64(stats.Broken) / float64(stats.PrevClusters)
			}
			if pt.IncrementalNs > 0 {
				pt.Speedup = pt.FullNs / pt.IncrementalNs
			}
			c.Points = append(c.Points, pt)
			if opts.Log != nil {
				fmt.Fprintf(opts.Log,
					"churn %-10s f=%.2f (%4d ops): reused %d/%d (%.2f), broken %.2f, inc %8.2fms vs full %8.2fms (%.1fx), cut inc/full/stale %.3f/%.3f/%.3f\n",
					inst.name, frac, pt.Ops, pt.Reused, pt.PrevClusters, pt.ReuseFraction,
					pt.BrokenFraction, pt.IncrementalNs/1e6, pt.FullNs/1e6, pt.Speedup,
					pt.IncCutFraction, pt.FullCutFraction, pt.StaleCutFraction)
			}
		}
		curves = append(curves, c)
	}
	return curves, nil
}

// MutateResult reports the mutate-under-load exercise: clients hammer
// queries while /mutate applies sequential churn batches. The dynamic
// serving contract is the reload contract plus incremental-maintenance
// accounting: zero failed requests and batches, monotone epochs, and the
// reuse statistics of each swap.
type MutateResult struct {
	Batches          int     `json:"batches"`
	BatchFailures    int     `json:"batch_failures"`
	OpsApplied       int     `json:"ops_applied"`
	Requests         int     `json:"requests"`
	Failed           int     `json:"failed"`
	Rejected         int     `json:"rejected"`
	EpochRegressions int     `json:"epoch_regressions"`
	FirstEpoch       int64   `json:"first_epoch"`
	LastEpoch        int64   `json:"last_epoch"`
	MeanBuildMs      float64 `json:"mean_build_ms"`
	MinReuseFraction float64 `json:"min_reuse_fraction"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// mutateWireOp is the /mutate wire op (mirrors serve.MutateOp without the
// import cycle; benchmarks must not depend on internal/serve).
type mutateWireOp struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
	W  int64  `json:"w,omitempty"`
}

// measureMutate replays ops against POST /mutate in sequential batches while
// `clients` query clients keep the serving path under load, then reports the
// combined contract. The query clients keep running until a response from
// the final mutated epoch has been observed (bounded by a deadline), so the
// load always spans every swap.
func measureMutate(httpClient *http.Client, baseURL string, clients int, ops []graph.Op, batch int, eps float64, logw io.Writer) *MutateResult {
	if batch <= 0 {
		batch = 64
	}
	res := &MutateResult{}
	var wg sync.WaitGroup
	var stop atomic.Bool
	var failed, rejected, requests, regressions atomic.Int64
	var firstEpoch, lastEpoch atomic.Int64
	families := []string{"matching", "mis", "clustering", "walkroute"}
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastSeen := int64(0)
			for i := 0; !stop.Load(); i++ {
				family := families[(c+i)%len(families)]
				seed := int64(1 + (c+i)%2)
				s := doQuery(httpClient, baseURL, family, eps, seed)
				requests.Add(1)
				if s.failed {
					failed.Add(1)
					continue
				}
				if s.rejected {
					rejected.Add(1)
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if s.envelope.Epoch < lastSeen {
					regressions.Add(1)
				}
				lastSeen = s.envelope.Epoch
				firstEpoch.CompareAndSwap(0, s.envelope.Epoch)
				for {
					le := lastEpoch.Load()
					if s.envelope.Epoch <= le || lastEpoch.CompareAndSwap(le, s.envelope.Epoch) {
						break
					}
				}
			}
		}(c)
	}

	var wantEpoch int64
	var buildMsSum float64
	res.MinReuseFraction = 1
	for i := 0; i < len(ops); i += batch {
		end := i + batch
		if end > len(ops) {
			end = len(ops)
		}
		res.Batches++
		req := struct {
			Ops []mutateWireOp `json:"ops"`
		}{}
		for _, op := range ops[i:end] {
			req.Ops = append(req.Ops, mutateWireOp{Op: op.Kind.String(), U: op.U, V: op.V, W: op.W})
		}
		body, _ := json.Marshal(req)
		time.Sleep(100 * time.Millisecond) // let query load establish between swaps
		resp, err := httpClient.Post(baseURL+"/mutate", "application/json", bytes.NewReader(body))
		if err != nil {
			res.BatchFailures++
			continue
		}
		var swapped struct {
			Epoch         int64   `json:"epoch"`
			Applied       int     `json:"applied"`
			BuildMs       float64 `json:"build_ms"`
			ReuseFraction float64 `json:"reuse_fraction"`
		}
		err = json.NewDecoder(resp.Body).Decode(&swapped)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || err != nil {
			res.BatchFailures++
			continue
		}
		res.OpsApplied += swapped.Applied
		buildMsSum += swapped.BuildMs
		if swapped.ReuseFraction < res.MinReuseFraction {
			res.MinReuseFraction = swapped.ReuseFraction
		}
		if swapped.Epoch > wantEpoch {
			wantEpoch = swapped.Epoch
		}
		if logw != nil {
			fmt.Fprintf(logw, "mutate batch %d/%d ok (epoch %d, %d ops, build %.2fms, reuse %.2f)\n",
				res.Batches, (len(ops)+batch-1)/batch, swapped.Epoch, swapped.Applied,
				swapped.BuildMs, swapped.ReuseFraction)
		}
	}
	if n := res.Batches - res.BatchFailures; n > 0 {
		res.MeanBuildMs = buildMsSum / float64(n)
	}
	deadline := time.Now().Add(3 * time.Minute)
	for wantEpoch > 0 && lastEpoch.Load() < wantEpoch && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	res.WallSeconds = time.Since(t0).Seconds()
	res.Requests = int(requests.Load())
	res.Failed = int(failed.Load())
	res.Rejected = int(rejected.Load())
	res.EpochRegressions = int(regressions.Load())
	res.FirstEpoch = firstEpoch.Load()
	res.LastEpoch = lastEpoch.Load()
	return res
}
