package benchmarks

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"expandergap/internal/graph"
)

// The I/O curves measure the huge-graph substrate along the three axes the
// format was designed for: load time per edge, on-disk bytes per edge, and
// peak heap consumed by loading. Unlike the ns/op micro-benchmarks these are
// one-shot measurements of multi-hundred-millisecond operations, so they use
// explicit min-of-k timing rather than testing.Benchmark, and they sample the
// heap high-water mark from a background goroutine while the load runs.

// IOPoint is one (format, size) measurement.
type IOPoint struct {
	Edges    int `json:"edges"`
	Vertices int `json:"vertices"`
	// FileBytes is the on-disk encoded size.
	FileBytes int64 `json:"file_bytes"`
	// LoadNs is the min-of-k wall time to open the file and obtain a usable
	// *Graph (for mmap: open + map + header validation, no page faults).
	LoadNs    float64 `json:"load_ns"`
	NsPerEdge float64 `json:"ns_per_edge"`
	// FileBytesPerEdge is the storage density of the encoding.
	FileBytesPerEdge float64 `json:"file_bytes_per_edge"`
	// PeakHeapBytes is the high-water live-heap growth observed while
	// loading (sampled every 200µs, after a pre-load GC).
	PeakHeapBytes    uint64  `json:"peak_heap_bytes"`
	HeapBytesPerEdge float64 `json:"heap_bytes_per_edge"`
}

// IOCurve is one load path swept across graph sizes.
type IOCurve struct {
	// Format is "text", "binary", or "mmap".
	Format string `json:"format"`
	// ZeroCopy is set on the mmap curve when OpenMapped really maps rather
	// than falling back to a copying read; the zero-heap gate only applies
	// then.
	ZeroCopy bool      `json:"zero_copy,omitempty"`
	Points   []IOPoint `json:"points"`
}

// At returns the point measured at the given edge count, or nil.
func (c *IOCurve) At(edges int) *IOPoint {
	for i := range c.Points {
		if c.Points[i].Edges == edges {
			return &c.Points[i]
		}
	}
	return nil
}

// heapWatcher samples the live heap from a goroutine and records the
// high-water mark. ReadMemStats stops the world for a few microseconds, so a
// 200µs sampling period observes every allocation phase of a multi-ms load
// while adding well under 5% overhead.
type heapWatcher struct {
	stop chan struct{}
	done chan struct{}
	peak uint64
}

func watchHeap() *heapWatcher {
	w := &heapWatcher{stop: make(chan struct{}), done: make(chan struct{})}
	go func() {
		defer close(w.done)
		var ms runtime.MemStats
		tick := time.NewTicker(200 * time.Microsecond)
		defer tick.Stop()
		for {
			select {
			case <-w.stop:
				return
			case <-tick.C:
				runtime.ReadMemStats(&ms)
				if ms.HeapAlloc > w.peak {
					w.peak = ms.HeapAlloc
				}
			}
		}
	}()
	return w
}

// Peak stops the watcher and returns the observed high-water mark.
func (w *heapWatcher) Peak() uint64 {
	close(w.stop)
	<-w.done
	return w.peak
}

// measureLoad times fn (min of iters runs) and samples the heap high-water
// mark of the first run. fn returns the loaded graph so the timing covers a
// fully usable result; the returned graphs are dropped between runs.
func measureLoad(iters int, fn func() (*graph.Graph, error)) (bestNs float64, peak uint64, err error) {
	for i := 0; i < iters; i++ {
		runtime.GC()
		var base runtime.MemStats
		runtime.ReadMemStats(&base)
		var w *heapWatcher
		if i == 0 {
			w = watchHeap()
		}
		start := time.Now()
		g, ferr := fn()
		elapsed := float64(time.Since(start).Nanoseconds())
		if i == 0 {
			// Fold in a post-load reading while the result is still live:
			// on a single-CPU host the sampler goroutine may never be
			// scheduled during the load, but the loaded graph itself — the
			// dominant term — is guaranteed visible here.
			var after runtime.MemStats
			runtime.ReadMemStats(&after)
			p := w.Peak()
			if after.HeapAlloc > p {
				p = after.HeapAlloc
			}
			if p > base.HeapAlloc {
				peak = p - base.HeapAlloc
			}
		}
		if ferr != nil {
			return 0, 0, ferr
		}
		runtime.KeepAlive(g)
		if bestNs == 0 || elapsed < bestNs {
			bestNs = elapsed
		}
	}
	return bestNs, peak, nil
}

// MeasureIO builds one Erdős–Rényi graph per target edge count (average
// degree 8, streamed, deterministic seed), encodes it in both on-disk
// formats under dir, and measures the three load paths. Scratch files are
// removed before returning. Progress lines go to log (nil for quiet).
func MeasureIO(edgeTargets []int, dir string, log io.Writer) ([]IOCurve, error) {
	if log == nil {
		log = io.Discard
	}
	text := IOCurve{Format: "text"}
	bin := IOCurve{Format: "binary"}
	mm := IOCurve{Format: "mmap", ZeroCopy: graph.MapIsZeroCopy()}

	for _, target := range edgeTargets {
		n := target / 4 // average degree 8 => m ≈ 4n
		if n < 16 {
			n = 16
		}
		g := graph.ErdosRenyiStream(n, 8/float64(n), 7, 0)
		m := g.M()
		fmt.Fprintf(log, "io: generated er graph n=%d m=%d (target %d edges)\n", g.N(), m, target)

		txtPath := filepath.Join(dir, fmt.Sprintf("io_%d.txt", target))
		binPath := filepath.Join(dir, fmt.Sprintf("io_%d.bin", target))
		if err := writeFileWith(txtPath, func(w io.Writer) error { return graph.WriteEdgeList(w, g) }); err != nil {
			return nil, err
		}
		if err := writeFileWith(binPath, func(w io.Writer) error { return graph.WriteBinary(w, g) }); err != nil {
			return nil, err
		}
		defer os.Remove(txtPath)
		defer os.Remove(binPath)
		txtSize, binSize := fileSize(txtPath), fileSize(binPath)
		g = nil // the generated graph must not count against load heap

		const iters = 3
		point := func(fileBytes int64, ns float64, peak uint64) IOPoint {
			return IOPoint{
				Edges:            m,
				Vertices:         n,
				FileBytes:        fileBytes,
				LoadNs:           ns,
				NsPerEdge:        ns / float64(m),
				FileBytesPerEdge: float64(fileBytes) / float64(m),
				PeakHeapBytes:    peak,
				HeapBytesPerEdge: float64(peak) / float64(m),
			}
		}

		ns, peak, err := measureLoad(iters, func() (*graph.Graph, error) {
			f, err := os.Open(txtPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return graph.ReadEdgeList(f)
		})
		if err != nil {
			return nil, fmt.Errorf("text load: %w", err)
		}
		text.Points = append(text.Points, point(txtSize, ns, peak))
		fmt.Fprintf(log, "io: text   m=%-10d %12.0f ns  %6.1f ns/edge  %5.1f fileB/edge  %6.1f heapB/edge\n",
			m, ns, ns/float64(m), float64(txtSize)/float64(m), float64(peak)/float64(m))

		ns, peak, err = measureLoad(iters, func() (*graph.Graph, error) {
			f, err := os.Open(binPath)
			if err != nil {
				return nil, err
			}
			defer f.Close()
			return graph.ReadBinary(f)
		})
		if err != nil {
			return nil, fmt.Errorf("binary load: %w", err)
		}
		bin.Points = append(bin.Points, point(binSize, ns, peak))
		fmt.Fprintf(log, "io: binary m=%-10d %12.0f ns  %6.1f ns/edge  %5.1f fileB/edge  %6.1f heapB/edge\n",
			m, ns, ns/float64(m), float64(binSize)/float64(m), float64(peak)/float64(m))

		ns, peak, err = measureLoad(iters, func() (*graph.Graph, error) {
			mg, err := graph.OpenMapped(binPath)
			if err != nil {
				return nil, err
			}
			// Probe a handful of entries so the result is demonstrably
			// usable; this faults O(1) pages, not the whole file.
			if mg.Graph.M() != m || mg.Graph.Degree(0) < 0 {
				mg.Close()
				return nil, fmt.Errorf("mapped graph mismatch")
			}
			return nil, mg.Close()
		})
		if err != nil {
			return nil, fmt.Errorf("mmap open: %w", err)
		}
		mm.Points = append(mm.Points, point(binSize, ns, peak))
		fmt.Fprintf(log, "io: mmap   m=%-10d %12.0f ns  %6.3f ns/edge  (open, zero_copy=%v)  %6.1f heapB/edge\n",
			m, ns, ns/float64(m), mm.ZeroCopy, float64(peak)/float64(m))
	}
	return []IOCurve{text, bin, mm}, nil
}

func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fileSize(path string) int64 {
	fi, err := os.Stat(path)
	if err != nil {
		return 0
	}
	return fi.Size()
}
