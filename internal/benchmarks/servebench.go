package benchmarks

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"expandergap/internal/graph"
)

// ServePoint is one closed-loop load measurement: a fixed number of
// concurrent clients each issuing requests back-to-back against one query
// family. Failed counts only non-429 failures; clean backpressure
// rejections land in Rejected.
type ServePoint struct {
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	Failed       int     `json:"failed"`
	Rejected     int     `json:"rejected"`
	WallSeconds  float64 `json:"wall_seconds"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// CacheHitP50Ms / CacheHitP99Ms are latency percentiles over the
	// cache-hit responses alone — the encoded-response fast path. These
	// are the curves that must stay flat as client count scales.
	CacheHitP50Ms float64 `json:"cache_hit_p50_ms"`
	CacheHitP99Ms float64 `json:"cache_hit_p99_ms"`
	RejectionRate float64 `json:"rejection_rate"`
	// QueueWaitMeanMs is the server-side mean admission-queue wait for
	// runs completed during this point (from /statz pool deltas).
	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms"`
	// BatchMean and BatchMax summarize the batch_size reported by
	// non-cached responses — the server-side coalescing occupancy this
	// client load achieved.
	BatchMean float64 `json:"batch_mean"`
	BatchMax  int64   `json:"batch_max"`
}

// ServeCurve is one family's load curve across client counts.
type ServeCurve struct {
	Family string       `json:"family"`
	Points []ServePoint `json:"points"`
}

// ReloadResult reports the hot-swap-under-load exercise: clients hammer
// queries while /reload swaps snapshots. The serving contract is zero
// failed (non-429) requests and monotone epochs; post-swap cold bursts may
// see clean 429s on shallow queues, reported separately.
type ReloadResult struct {
	Reloads          int     `json:"reloads"`
	ReloadFailures   int     `json:"reload_failures"`
	Requests         int     `json:"requests"`
	Failed           int     `json:"failed"`
	Rejected         int     `json:"rejected"`
	EpochRegressions int     `json:"epoch_regressions"`
	FirstEpoch       int64   `json:"first_epoch"`
	LastEpoch        int64   `json:"last_epoch"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// OverloadResult reports the deliberate-overload exercise: half the
// clients hammer one pre-warmed cached key while the other half flood the
// admission queue with distinct fresh keys. The contract under saturation:
// fresh work is rejected cleanly (429 + valid Retry-After, never a socket
// error or 5xx), and the cached traffic keeps its flat latency profile.
type OverloadResult struct {
	Clients         int     `json:"clients"`
	DurationSeconds float64 `json:"duration_seconds"`
	Requests        int     `json:"requests"`
	CacheHits       int     `json:"cache_hits"`
	ColdCompleted   int     `json:"cold_completed"`
	Rejected        int     `json:"rejected"`
	Failed          int     `json:"failed"`
	CachedP50Ms     float64 `json:"cached_p50_ms"`
	CachedP99Ms     float64 `json:"cached_p99_ms"`
	// RetryAfterValid is true iff every 429 carried an integer
	// Retry-After >= 1 consistent with its JSON body.
	RetryAfterValid bool `json:"retry_after_valid"`
}

// ServeReport is the full serving-benchmark document recorded into
// BENCH_<pr>.json's "serve" section.
type ServeReport struct {
	Curves   []ServeCurve    `json:"curves"`
	Reload   *ReloadResult   `json:"reload,omitempty"`
	Overload *OverloadResult `json:"overload,omitempty"`
	Mutate   *MutateResult   `json:"mutate,omitempty"`
}

// ServeOptions configures MeasureServe.
type ServeOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Families to sweep (default: matching, mis, clustering, walkroute).
	Families []string
	// Clients is the concurrency sweep (default {1, 16, 128, 1024}).
	Clients []int
	// RequestsPerClient is the closed-loop depth per client (default 25).
	RequestsPerClient int
	// SeedPool rotates request seeds through [1, SeedPool] so the sweep
	// mixes cache hits with genuinely coalescable fresh runs (default 8).
	SeedPool int
	// Eps is the query approximation parameter (default 0.25).
	Eps float64
	// Reloads, when positive, adds the hot-swap exercise: that many
	// POST /reload calls while Clients[last] clients keep querying.
	Reloads int
	// OverloadClients, when positive, adds the deliberate-overload point
	// with that many clients for OverloadDuration (default 10s).
	OverloadClients  int
	OverloadDuration time.Duration
	// MutateOps, when non-empty, adds the mutate-under-load exercise: the
	// ops are replayed against POST /mutate in MutateBatch-sized batches
	// (default 64) while query clients keep the serving path under load.
	MutateOps   []graph.Op
	MutateBatch int
	// Log receives progress lines (nil = quiet).
	Log io.Writer
}

func (o ServeOptions) withDefaults() ServeOptions {
	if len(o.Families) == 0 {
		o.Families = []string{"matching", "mis", "clustering", "walkroute"}
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{1, 16, 128, 1024}
	}
	if o.RequestsPerClient == 0 {
		o.RequestsPerClient = 25
	}
	if o.SeedPool == 0 {
		o.SeedPool = 8
	}
	if o.Eps == 0 {
		o.Eps = 0.25
	}
	if o.OverloadDuration == 0 {
		o.OverloadDuration = 10 * time.Second
	}
	return o
}

// newLoadClient builds the one HTTP client every worker goroutine shares.
// The default Transport caps idle connections at 2 per host, so a
// thousand-client closed loop on it churns through TCP handshakes and
// TIME_WAIT sockets and ends up benchmarking the dialer. Sizing the idle
// pool to the client count keeps every connection alive across the whole
// sweep.
func newLoadClient(maxClients int) *http.Client {
	if maxClients < 16 {
		maxClients = 16
	}
	tr := &http.Transport{
		Proxy: http.ProxyFromEnvironment,
		DialContext: (&net.Dialer{
			Timeout:   10 * time.Second,
			KeepAlive: 30 * time.Second,
		}).DialContext,
		ForceAttemptHTTP2:   false,
		MaxIdleConns:        maxClients + 64,
		MaxIdleConnsPerHost: maxClients + 64,
		IdleConnTimeout:     90 * time.Second,
	}
	return &http.Client{Transport: tr, Timeout: 5 * time.Minute}
}

// queryEnvelope is the subset of the server's response envelope the load
// generator reads back.
type queryEnvelope struct {
	Epoch     int64 `json:"epoch"`
	Cached    bool  `json:"cached"`
	BatchSize int64 `json:"batch_size"`
}

type sample struct {
	latency  time.Duration
	envelope queryEnvelope
	// failed is a non-429 failure: transport error, non-200/429 status,
	// or an unparseable body.
	failed bool
	// rejected is a clean 429 backpressure response; retryAfterOK records
	// whether its Retry-After header was a valid integer >= 1 matching
	// the body's retry_after_seconds.
	rejected     bool
	retryAfterOK bool
}

// doQuery issues one POST /query/<family> and parses the envelope.
func doQuery(client *http.Client, baseURL, family string, eps float64, seed int64) sample {
	body, _ := json.Marshal(map[string]any{"eps": eps, "seed": seed})
	t0 := time.Now()
	resp, err := client.Post(baseURL+"/query/"+family, "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{latency: time.Since(t0), failed: true}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	lat := time.Since(t0)
	if err != nil {
		return sample{latency: lat, failed: true}
	}
	if resp.StatusCode == http.StatusTooManyRequests {
		s := sample{latency: lat, rejected: true}
		ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
		if err == nil && ra >= 1 {
			var e struct {
				RetryAfterSeconds int `json:"retry_after_seconds"`
			}
			if json.Unmarshal(data, &e) == nil && e.RetryAfterSeconds == ra {
				s.retryAfterOK = true
			}
		}
		return s
	}
	if resp.StatusCode != http.StatusOK {
		return sample{latency: lat, failed: true}
	}
	var env queryEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return sample{latency: lat, failed: true}
	}
	return sample{latency: lat, envelope: env}
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

func sortedMs(lats []time.Duration) []time.Duration {
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	return lats
}

// poolSnapshot is the subset of /statz's pool object needed to compute
// per-point queue-wait deltas.
type poolSnapshot struct {
	Completed   int64   `json:"completed"`
	Rejected    int64   `json:"rejected"`
	QueueWaitMs float64 `json:"queue_wait_ms"`
}

func fetchPoolStatz(client *http.Client, baseURL string) (poolSnapshot, error) {
	var out struct {
		Pool poolSnapshot `json:"pool"`
	}
	resp, err := client.Get(baseURL + "/statz")
	if err != nil {
		return out.Pool, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return out.Pool, fmt.Errorf("/statz returned %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&out)
	return out.Pool, err
}

// runPoint drives one (family, clients) closed-loop point. seedBase gives
// every point its own seed range so each point mixes fresh (coalescable)
// canonical runs with cache hits instead of riding entirely on the cache
// the previous point warmed.
func runPoint(httpClient *http.Client, baseURL, family string, clients, perClient, seedPool int, seedBase int64, eps float64) ServePoint {
	poolBefore, poolBeforeErr := fetchPoolStatz(httpClient, baseURL)
	all := make([][]sample, clients)
	var wg sync.WaitGroup
	var reqID atomic.Int64
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			samples := make([]sample, 0, perClient)
			for i := 0; i < perClient; i++ {
				seed := seedBase + 1 + reqID.Add(1)%int64(seedPool)
				samples = append(samples, doQuery(httpClient, baseURL, family, eps, seed))
			}
			all[c] = samples
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)

	pt := ServePoint{Clients: clients, WallSeconds: wall.Seconds()}
	var lats, hitLats []time.Duration
	var hits, fresh int
	var batchSum int64
	for _, samples := range all {
		for _, s := range samples {
			pt.Requests++
			if s.failed {
				pt.Failed++
				continue
			}
			if s.rejected {
				pt.Rejected++
				continue
			}
			lats = append(lats, s.latency)
			if s.envelope.Cached {
				hits++
				hitLats = append(hitLats, s.latency)
			} else {
				fresh++
				batchSum += s.envelope.BatchSize
				if s.envelope.BatchSize > pt.BatchMax {
					pt.BatchMax = s.envelope.BatchSize
				}
			}
		}
	}
	lats = sortedMs(lats)
	pt.P50Ms = percentile(lats, 0.50)
	pt.P99Ms = percentile(lats, 0.99)
	hitLats = sortedMs(hitLats)
	pt.CacheHitP50Ms = percentile(hitLats, 0.50)
	pt.CacheHitP99Ms = percentile(hitLats, 0.99)
	ok := pt.Requests - pt.Failed - pt.Rejected
	if wall > 0 {
		pt.QPS = float64(ok) / wall.Seconds()
	}
	if ok > 0 {
		pt.CacheHitRate = float64(hits) / float64(ok)
	}
	if pt.Requests > 0 {
		pt.RejectionRate = float64(pt.Rejected) / float64(pt.Requests)
	}
	if fresh > 0 {
		pt.BatchMean = float64(batchSum) / float64(fresh)
	}
	if poolBeforeErr == nil {
		if poolAfter, err := fetchPoolStatz(httpClient, baseURL); err == nil {
			if runs := poolAfter.Completed - poolBefore.Completed; runs > 0 {
				pt.QueueWaitMeanMs = (poolAfter.QueueWaitMs - poolBefore.QueueWaitMs) / float64(runs)
			}
		}
	}
	return pt
}

// measureReload drives the hot-swap exercise: `clients` clients querying a
// rotating family/seed mix while the main goroutine issues `reloads`
// sequential POST /reload swaps. The clients are time-based — they keep
// querying until every swap has landed AND at least one post-swap response
// has been observed — so the load is guaranteed to span the swaps. Epochs
// observed by each client must never regress.
func measureReload(httpClient *http.Client, baseURL string, clients, seedPool, reloads int, eps float64, logw io.Writer) *ReloadResult {
	res := &ReloadResult{Reloads: reloads}
	var wg sync.WaitGroup
	var stop atomic.Bool
	var failed, rejected, requests, regressions atomic.Int64
	var firstEpoch, lastEpoch atomic.Int64
	families := []string{"matching", "mis", "clustering", "walkroute"}
	if seedPool > 2 {
		seedPool = 2 // every swap invalidates the cache; keep the fresh-run bill bounded
	}
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastSeen := int64(0)
			for i := 0; !stop.Load(); i++ {
				family := families[(c+i)%len(families)]
				seed := int64(1 + (c+i)%seedPool)
				s := doQuery(httpClient, baseURL, family, eps, seed)
				requests.Add(1)
				if s.failed {
					failed.Add(1)
					continue
				}
				if s.rejected {
					// Post-swap cold bursts can hit admission limits on
					// shallow queues; clean 429s are not swap failures.
					rejected.Add(1)
					time.Sleep(50 * time.Millisecond)
					continue
				}
				if s.envelope.Epoch < lastSeen {
					regressions.Add(1)
				}
				lastSeen = s.envelope.Epoch
				firstEpoch.CompareAndSwap(0, s.envelope.Epoch)
				for {
					le := lastEpoch.Load()
					if s.envelope.Epoch <= le || lastEpoch.CompareAndSwap(le, s.envelope.Epoch) {
						break
					}
				}
			}
		}(c)
	}
	var wantEpoch int64
	for r := 0; r < reloads; r++ {
		time.Sleep(100 * time.Millisecond) // let query load establish between swaps
		resp, err := httpClient.Post(baseURL+"/reload", "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			res.ReloadFailures++
			continue
		}
		var swapped struct {
			Epoch int64 `json:"epoch"`
		}
		err = json.NewDecoder(resp.Body).Decode(&swapped)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			res.ReloadFailures++
			continue
		}
		if err == nil && swapped.Epoch > wantEpoch {
			wantEpoch = swapped.Epoch
		}
		if logw != nil {
			fmt.Fprintf(logw, "reload %d/%d ok (epoch %d)\n", r+1, reloads, swapped.Epoch)
		}
	}
	// Keep the load running until a query has actually been answered from
	// the final snapshot (bounded: post-swap runs repopulate a cold cache).
	deadline := time.Now().Add(3 * time.Minute)
	for wantEpoch > 0 && lastEpoch.Load() < wantEpoch && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	res.WallSeconds = time.Since(t0).Seconds()
	res.Requests = int(requests.Load())
	res.Failed = int(failed.Load())
	res.Rejected = int(rejected.Load())
	res.EpochRegressions = int(regressions.Load())
	res.FirstEpoch = firstEpoch.Load()
	res.LastEpoch = lastEpoch.Load()
	return res
}

// measureOverload drives the deliberate-overload point. One key is warmed
// into the cache first; then half the clients hammer that cached key while
// the other half flood the admission queue with distinct fresh seeds, each
// a new canonical run the pool cannot absorb. Under saturation the cached
// traffic must stay on the fast path and the fresh flood must drain into
// clean 429s.
func measureOverload(httpClient *http.Client, baseURL string, clients int, d time.Duration, eps float64, logw io.Writer) (*OverloadResult, error) {
	const family = "mis"
	const warmSeed = 999_999
	// Warm the hammered key (first request is a real canonical run).
	for i := 0; i < 30; i++ {
		s := doQuery(httpClient, baseURL, family, eps, warmSeed)
		if s.failed {
			return nil, fmt.Errorf("overload warmup query failed")
		}
		if s.envelope.Cached {
			break
		}
		if s.rejected {
			time.Sleep(time.Second)
		}
	}

	res := &OverloadResult{Clients: clients}
	var wg sync.WaitGroup
	var stop atomic.Bool
	var requests, hits, cold, rejected, failed, badRetryAfter atomic.Int64
	var mu sync.Mutex
	var cachedLats []time.Duration
	var coldSeed atomic.Int64
	coldSeed.Store(1_000_000)
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		hammer := c%2 == 0
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				var s sample
				if hammer {
					s = doQuery(httpClient, baseURL, family, eps, warmSeed)
				} else {
					s = doQuery(httpClient, baseURL, family, eps, coldSeed.Add(1))
				}
				requests.Add(1)
				switch {
				case s.failed:
					failed.Add(1)
				case s.rejected:
					rejected.Add(1)
					if !s.retryAfterOK {
						badRetryAfter.Add(1)
					}
				case s.envelope.Cached:
					hits.Add(1)
					if hammer {
						mu.Lock()
						cachedLats = append(cachedLats, s.latency)
						mu.Unlock()
					}
				default:
					cold.Add(1)
				}
			}
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	res.DurationSeconds = time.Since(t0).Seconds()
	res.Requests = int(requests.Load())
	res.CacheHits = int(hits.Load())
	res.ColdCompleted = int(cold.Load())
	res.Rejected = int(rejected.Load())
	res.Failed = int(failed.Load())
	res.RetryAfterValid = res.Rejected > 0 && badRetryAfter.Load() == 0
	cachedLats = sortedMs(cachedLats)
	res.CachedP50Ms = percentile(cachedLats, 0.50)
	res.CachedP99Ms = percentile(cachedLats, 0.99)
	if logw != nil {
		fmt.Fprintf(logw,
			"overload clients=%d %.1fs: %d reqs, %d cache hits (p50 %.2fms p99 %.2fms), %d cold done, %d rejected (retry-after valid: %v), %d failed\n",
			res.Clients, res.DurationSeconds, res.Requests, res.CacheHits,
			res.CachedP50Ms, res.CachedP99Ms, res.ColdCompleted, res.Rejected, res.RetryAfterValid, res.Failed)
	}
	return res, nil
}

// MeasureServe drives the full closed-loop serving benchmark against a
// running expandersvc instance and returns the QPS / latency / batch-
// occupancy curves (plus the reload-under-load and deliberate-overload
// results when requested). All load goroutines share one keep-alive
// Transport sized to the largest client count.
func MeasureServe(opts ServeOptions) (*ServeReport, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("servebench: BaseURL is required")
	}
	maxClients := opts.OverloadClients
	for _, c := range opts.Clients {
		if c > maxClients {
			maxClients = c
		}
	}
	httpClient := newLoadClient(maxClients)
	defer httpClient.CloseIdleConnections()

	// Fail fast if the server is not there.
	probe := &http.Client{Timeout: 10 * time.Second}
	resp, err := probe.Get(opts.BaseURL + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("servebench: server not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("servebench: /healthz returned %s", resp.Status)
	}

	rep := &ServeReport{}
	pointIdx := int64(0)
	for _, family := range opts.Families {
		c := ServeCurve{Family: family}
		for _, clients := range opts.Clients {
			seedBase := pointIdx * int64(opts.SeedPool)
			pointIdx++
			pt := runPoint(httpClient, opts.BaseURL, family, clients, opts.RequestsPerClient, opts.SeedPool, seedBase, opts.Eps)
			c.Points = append(c.Points, pt)
			if opts.Log != nil {
				fmt.Fprintf(opts.Log,
					"%-10s clients=%-4d %6d reqs (%d failed, %d rejected) %8.1f qps  p50 %8.2fms  p99 %8.2fms  hit %4.0f%% (p99 %7.2fms)  qwait %6.2fms  batch mean %.2f max %d\n",
					family, clients, pt.Requests, pt.Failed, pt.Rejected, pt.QPS, pt.P50Ms, pt.P99Ms,
					pt.CacheHitRate*100, pt.CacheHitP99Ms, pt.QueueWaitMeanMs, pt.BatchMean, pt.BatchMax)
			}
		}
		rep.Curves = append(rep.Curves, c)
	}
	if opts.Reloads > 0 {
		clients := opts.Clients[len(opts.Clients)-1]
		if clients > 128 {
			clients = 128 // swap churn needs sustained load, not max fan-out
		}
		rep.Reload = measureReload(httpClient, opts.BaseURL, clients, opts.SeedPool,
			opts.Reloads, opts.Eps, opts.Log)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log,
				"reload under load: %d reloads (%d failed), %d requests (%d failed, %d rejected), epochs %d -> %d, %d regressions\n",
				rep.Reload.Reloads, rep.Reload.ReloadFailures, rep.Reload.Requests,
				rep.Reload.Failed, rep.Reload.Rejected, rep.Reload.FirstEpoch, rep.Reload.LastEpoch,
				rep.Reload.EpochRegressions)
		}
	}
	if opts.OverloadClients > 0 {
		ov, err := measureOverload(httpClient, opts.BaseURL, opts.OverloadClients,
			opts.OverloadDuration, opts.Eps, opts.Log)
		if err != nil {
			return nil, err
		}
		rep.Overload = ov
	}
	if len(opts.MutateOps) > 0 {
		clients := opts.Clients[len(opts.Clients)-1]
		if clients > 128 {
			clients = 128 // like the reload exercise: sustained load, not max fan-out
		}
		rep.Mutate = measureMutate(httpClient, opts.BaseURL, clients,
			opts.MutateOps, opts.MutateBatch, opts.Eps, opts.Log)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log,
				"mutate under load: %d batches (%d failed, %d ops), %d requests (%d failed, %d rejected), epochs %d -> %d, %d regressions, mean build %.2fms, min reuse %.2f\n",
				rep.Mutate.Batches, rep.Mutate.BatchFailures, rep.Mutate.OpsApplied,
				rep.Mutate.Requests, rep.Mutate.Failed, rep.Mutate.Rejected,
				rep.Mutate.FirstEpoch, rep.Mutate.LastEpoch, rep.Mutate.EpochRegressions,
				rep.Mutate.MeanBuildMs, rep.Mutate.MinReuseFraction)
		}
	}
	return rep, nil
}
