package benchmarks

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// ServePoint is one closed-loop load measurement: a fixed number of
// concurrent clients each issuing requests back-to-back against one query
// family.
type ServePoint struct {
	Clients      int     `json:"clients"`
	Requests     int     `json:"requests"`
	Failed       int     `json:"failed"`
	WallSeconds  float64 `json:"wall_seconds"`
	QPS          float64 `json:"qps"`
	P50Ms        float64 `json:"p50_ms"`
	P99Ms        float64 `json:"p99_ms"`
	CacheHitRate float64 `json:"cache_hit_rate"`
	// BatchMean and BatchMax summarize the batch_size reported by
	// non-cached responses — the server-side coalescing occupancy this
	// client load achieved.
	BatchMean float64 `json:"batch_mean"`
	BatchMax  int64   `json:"batch_max"`
}

// ServeCurve is one family's load curve across client counts.
type ServeCurve struct {
	Family string       `json:"family"`
	Points []ServePoint `json:"points"`
}

// ReloadResult reports the hot-swap-under-load exercise: clients hammer
// queries while /reload swaps snapshots. The serving contract is zero
// failed requests and monotone epochs.
type ReloadResult struct {
	Reloads          int     `json:"reloads"`
	ReloadFailures   int     `json:"reload_failures"`
	Requests         int     `json:"requests"`
	Failed           int     `json:"failed"`
	EpochRegressions int     `json:"epoch_regressions"`
	FirstEpoch       int64   `json:"first_epoch"`
	LastEpoch        int64   `json:"last_epoch"`
	WallSeconds      float64 `json:"wall_seconds"`
}

// ServeReport is the full serving-benchmark document recorded into
// BENCH_8.json's "serve" section.
type ServeReport struct {
	Curves []ServeCurve  `json:"curves"`
	Reload *ReloadResult `json:"reload,omitempty"`
}

// ServeOptions configures MeasureServe.
type ServeOptions struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Families to sweep (default: matching, mis, clustering, walkroute).
	Families []string
	// Clients is the concurrency sweep (default {1, 4, 16}).
	Clients []int
	// RequestsPerClient is the closed-loop depth per client (default 25).
	RequestsPerClient int
	// SeedPool rotates request seeds through [1, SeedPool] so the sweep
	// mixes cache hits with genuinely coalescable fresh runs (default 8).
	SeedPool int
	// Eps is the query approximation parameter (default 0.25).
	Eps float64
	// Reloads, when positive, adds the hot-swap exercise: that many
	// POST /reload calls while Clients[last] clients keep querying.
	Reloads int
	// Log receives progress lines (nil = quiet).
	Log io.Writer
}

func (o ServeOptions) withDefaults() ServeOptions {
	if len(o.Families) == 0 {
		o.Families = []string{"matching", "mis", "clustering", "walkroute"}
	}
	if len(o.Clients) == 0 {
		o.Clients = []int{1, 4, 16}
	}
	if o.RequestsPerClient == 0 {
		o.RequestsPerClient = 25
	}
	if o.SeedPool == 0 {
		o.SeedPool = 8
	}
	if o.Eps == 0 {
		o.Eps = 0.25
	}
	return o
}

// queryEnvelope is the subset of the server's response envelope the load
// generator reads back.
type queryEnvelope struct {
	Epoch     int64 `json:"epoch"`
	Cached    bool  `json:"cached"`
	BatchSize int64 `json:"batch_size"`
}

type sample struct {
	latency  time.Duration
	envelope queryEnvelope
	failed   bool
}

// doQuery issues one POST /query/<family> and parses the envelope.
func doQuery(client *http.Client, baseURL, family string, eps float64, seed int64) sample {
	body, _ := json.Marshal(map[string]any{"eps": eps, "seed": seed})
	t0 := time.Now()
	resp, err := client.Post(baseURL+"/query/"+family, "application/json", bytes.NewReader(body))
	if err != nil {
		return sample{latency: time.Since(t0), failed: true}
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	lat := time.Since(t0)
	if err != nil || resp.StatusCode != http.StatusOK {
		return sample{latency: lat, failed: true}
	}
	var env queryEnvelope
	if err := json.Unmarshal(data, &env); err != nil {
		return sample{latency: lat, failed: true}
	}
	return sample{latency: lat, envelope: env}
}

func percentile(sorted []time.Duration, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	idx := int(p * float64(len(sorted)-1))
	return float64(sorted[idx].Nanoseconds()) / 1e6
}

// runPoint drives one (family, clients) closed-loop point. seedBase gives
// every point its own seed range so each point mixes fresh (coalescable)
// canonical runs with cache hits instead of riding entirely on the cache
// the previous point warmed.
func runPoint(baseURL, family string, clients, perClient, seedPool int, seedBase int64, eps float64) ServePoint {
	httpClient := &http.Client{Timeout: 5 * time.Minute}
	all := make([][]sample, clients)
	var wg sync.WaitGroup
	var reqID atomic.Int64
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			samples := make([]sample, 0, perClient)
			for i := 0; i < perClient; i++ {
				seed := seedBase + 1 + reqID.Add(1)%int64(seedPool)
				samples = append(samples, doQuery(httpClient, baseURL, family, eps, seed))
			}
			all[c] = samples
		}(c)
	}
	wg.Wait()
	wall := time.Since(t0)

	pt := ServePoint{Clients: clients, WallSeconds: wall.Seconds()}
	var lats []time.Duration
	var hits, fresh int
	var batchSum int64
	for _, samples := range all {
		for _, s := range samples {
			pt.Requests++
			if s.failed {
				pt.Failed++
				continue
			}
			lats = append(lats, s.latency)
			if s.envelope.Cached {
				hits++
			} else {
				fresh++
				batchSum += s.envelope.BatchSize
				if s.envelope.BatchSize > pt.BatchMax {
					pt.BatchMax = s.envelope.BatchSize
				}
			}
		}
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	pt.P50Ms = percentile(lats, 0.50)
	pt.P99Ms = percentile(lats, 0.99)
	if wall > 0 {
		pt.QPS = float64(pt.Requests-pt.Failed) / wall.Seconds()
	}
	if ok := pt.Requests - pt.Failed; ok > 0 {
		pt.CacheHitRate = float64(hits) / float64(ok)
	}
	if fresh > 0 {
		pt.BatchMean = float64(batchSum) / float64(fresh)
	}
	return pt
}

// measureReload drives the hot-swap exercise: `clients` clients querying a
// rotating family/seed mix while the main goroutine issues `reloads`
// sequential POST /reload swaps. The clients are time-based — they keep
// querying until every swap has landed AND at least one post-swap response
// has been observed — so the load is guaranteed to span the swaps. Epochs
// observed by each client must never regress.
func measureReload(baseURL string, clients, seedPool, reloads int, eps float64, logw io.Writer) *ReloadResult {
	httpClient := &http.Client{Timeout: 5 * time.Minute}
	res := &ReloadResult{Reloads: reloads}
	var wg sync.WaitGroup
	var stop atomic.Bool
	var failed, requests, regressions atomic.Int64
	var firstEpoch, lastEpoch atomic.Int64
	families := []string{"matching", "mis", "clustering", "walkroute"}
	if seedPool > 2 {
		seedPool = 2 // every swap invalidates the cache; keep the fresh-run bill bounded
	}
	t0 := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastSeen := int64(0)
			for i := 0; !stop.Load(); i++ {
				family := families[(c+i)%len(families)]
				seed := int64(1 + (c+i)%seedPool)
				s := doQuery(httpClient, baseURL, family, eps, seed)
				requests.Add(1)
				if s.failed {
					failed.Add(1)
					continue
				}
				if s.envelope.Epoch < lastSeen {
					regressions.Add(1)
				}
				lastSeen = s.envelope.Epoch
				firstEpoch.CompareAndSwap(0, s.envelope.Epoch)
				for {
					le := lastEpoch.Load()
					if s.envelope.Epoch <= le || lastEpoch.CompareAndSwap(le, s.envelope.Epoch) {
						break
					}
				}
			}
		}(c)
	}
	var wantEpoch int64
	for r := 0; r < reloads; r++ {
		time.Sleep(100 * time.Millisecond) // let query load establish between swaps
		resp, err := httpClient.Post(baseURL+"/reload", "application/json", bytes.NewReader([]byte("{}")))
		if err != nil {
			res.ReloadFailures++
			continue
		}
		var swapped struct {
			Epoch int64 `json:"epoch"`
		}
		err = json.NewDecoder(resp.Body).Decode(&swapped)
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			res.ReloadFailures++
			continue
		}
		if err == nil && swapped.Epoch > wantEpoch {
			wantEpoch = swapped.Epoch
		}
		if logw != nil {
			fmt.Fprintf(logw, "reload %d/%d ok (epoch %d)\n", r+1, reloads, swapped.Epoch)
		}
	}
	// Keep the load running until a query has actually been answered from
	// the final snapshot (bounded: post-swap runs repopulate a cold cache).
	deadline := time.Now().Add(3 * time.Minute)
	for wantEpoch > 0 && lastEpoch.Load() < wantEpoch && time.Now().Before(deadline) {
		time.Sleep(50 * time.Millisecond)
	}
	stop.Store(true)
	wg.Wait()
	res.WallSeconds = time.Since(t0).Seconds()
	res.Requests = int(requests.Load())
	res.Failed = int(failed.Load())
	res.EpochRegressions = int(regressions.Load())
	res.FirstEpoch = firstEpoch.Load()
	res.LastEpoch = lastEpoch.Load()
	return res
}

// MeasureServe drives the full closed-loop serving benchmark against a
// running expandersvc instance and returns the QPS / latency / batch-
// occupancy curves (plus the reload-under-load result when requested).
func MeasureServe(opts ServeOptions) (*ServeReport, error) {
	opts = opts.withDefaults()
	if opts.BaseURL == "" {
		return nil, fmt.Errorf("servebench: BaseURL is required")
	}
	// Fail fast if the server is not there.
	probe := &http.Client{Timeout: 10 * time.Second}
	resp, err := probe.Get(opts.BaseURL + "/healthz")
	if err != nil {
		return nil, fmt.Errorf("servebench: server not reachable: %w", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("servebench: /healthz returned %s", resp.Status)
	}

	rep := &ServeReport{}
	pointIdx := int64(0)
	for _, family := range opts.Families {
		c := ServeCurve{Family: family}
		for _, clients := range opts.Clients {
			seedBase := pointIdx * int64(opts.SeedPool)
			pointIdx++
			pt := runPoint(opts.BaseURL, family, clients, opts.RequestsPerClient, opts.SeedPool, seedBase, opts.Eps)
			c.Points = append(c.Points, pt)
			if opts.Log != nil {
				fmt.Fprintf(opts.Log,
					"%-10s clients=%-3d %5d reqs (%d failed) %8.1f qps  p50 %7.2fms  p99 %7.2fms  hit %4.0f%%  batch mean %.2f max %d\n",
					family, clients, pt.Requests, pt.Failed, pt.QPS, pt.P50Ms, pt.P99Ms,
					pt.CacheHitRate*100, pt.BatchMean, pt.BatchMax)
			}
		}
		rep.Curves = append(rep.Curves, c)
	}
	if opts.Reloads > 0 {
		clients := opts.Clients[len(opts.Clients)-1]
		rep.Reload = measureReload(opts.BaseURL, clients, opts.SeedPool,
			opts.Reloads, opts.Eps, opts.Log)
		if opts.Log != nil {
			fmt.Fprintf(opts.Log,
				"reload under load: %d reloads (%d failed), %d requests (%d failed), epochs %d -> %d, %d regressions\n",
				rep.Reload.Reloads, rep.Reload.ReloadFailures, rep.Reload.Requests,
				rep.Reload.Failed, rep.Reload.FirstEpoch, rep.Reload.LastEpoch, rep.Reload.EpochRegressions)
		}
	}
	return rep, nil
}
