// Package conductance implements the spectral toolkit of Section 2 of the
// paper: cut conductance and sparsity, exact graph conductance for small
// graphs, Cheeger-style spectral bounds via power iteration on the lazy
// random walk, sweep cuts, exact lazy-walk distribution evolution, and
// mixing-time estimation.
//
// These quantities define the (ε, φ) expander decomposition contract
// (every cluster must satisfy Φ(G_i) ≥ φ) and drive the random-walk routing
// analysis of Lemma 2.4, so everything downstream depends on this package.
package conductance

import (
	"fmt"
	"math"
	"math/rand"
	"slices"

	"expandergap/internal/graph"
)

// CutSize returns |∂(S)|: the number of edges with exactly one endpoint in s.
func CutSize(g graph.G, s map[int]bool) int {
	return len(graph.CutEdgesOf(g, s))
}

// CutConductance returns Φ(S) = |∂(S)| / min(vol(S), vol(V\S)) as defined in
// Section 2 of the paper. By convention Φ(∅) = Φ(V) = 0. A cut with
// min-volume 0 (isolated vertices only on one side) has conductance +Inf
// unless it is also edgeless, in which case 0.
func CutConductance(g graph.G, s map[int]bool) float64 {
	inCount := 0
	volS := 0
	for v := 0; v < g.N(); v++ {
		if s[v] {
			inCount++
			volS += g.Degree(v)
		}
	}
	if inCount == 0 || inCount == g.N() {
		return 0
	}
	volRest := 2*g.M() - volS
	minVol := volS
	if volRest < minVol {
		minVol = volRest
	}
	cut := CutSize(g, s)
	if minVol == 0 {
		if cut == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return float64(cut) / float64(minVol)
}

// CutSparsity returns Ψ(S) = |∂(S)| / min(|S|, |V\S|), the vertex-count
// analogue of conductance used by the deterministic routing reduction
// (Lemma 2.5).
func CutSparsity(g graph.G, s map[int]bool) float64 {
	inCount := 0
	for v := 0; v < g.N(); v++ {
		if s[v] {
			inCount++
		}
	}
	if inCount == 0 || inCount == g.N() {
		return 0
	}
	minSide := inCount
	if rest := g.N() - inCount; rest < minSide {
		minSide = rest
	}
	return float64(CutSize(g, s)) / float64(minSide)
}

// MaxExactN is the largest graph size for which ExactConductance enumerates
// all cuts (2^(n-1) subsets).
const MaxExactN = 22

// ExactConductance returns Φ(G) = min over all non-trivial cuts of Φ(S),
// computed by exhaustive enumeration. It panics for graphs larger than
// MaxExactN vertices; callers should fall back to SpectralBounds. For a
// disconnected graph the result is 0 (any component is a cut with no
// crossing edges). An empty or single-vertex graph has conductance 0 by
// convention.
func ExactConductance(g graph.G) float64 {
	n := g.N()
	if n > MaxExactN {
		panic(fmt.Sprintf("conductance: ExactConductance limited to n <= %d, got %d", MaxExactN, n))
	}
	if n <= 1 {
		return 0
	}
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	totalVol := 2 * g.M()
	edges := graph.EdgesOf(g)
	best := math.Inf(1)
	// Fix vertex n-1 outside S to halve the enumeration.
	for mask := 1; mask < 1<<(n-1); mask++ {
		volS := 0
		for v := 0; v < n-1; v++ {
			if mask&(1<<v) != 0 {
				volS += deg[v]
			}
		}
		cut := 0
		for _, e := range edges {
			inU := e.U < n-1 && mask&(1<<e.U) != 0
			inV := e.V < n-1 && mask&(1<<e.V) != 0
			if inU != inV {
				cut++
			}
		}
		minVol := volS
		if rest := totalVol - volS; rest < minVol {
			minVol = rest
		}
		var phi float64
		switch {
		case minVol == 0 && cut == 0:
			phi = 0
		case minVol == 0:
			phi = math.Inf(1)
		default:
			phi = float64(cut) / float64(minVol)
		}
		if phi < best {
			best = phi
		}
	}
	if math.IsInf(best, 1) {
		return 0
	}
	return best
}

// flatAdj snapshots g's adjacency into CSR-style offset/neighbor arrays so
// iteration-heavy spectral loops run over flat slices instead of repeated
// interface calls (a per-vertex closure passed through an interface escapes
// to the heap on every call, which the power iteration would otherwise pay
// n times per iteration). Neighbor order — ascending, the G contract — is
// preserved, so float accumulation order is unchanged.
func flatAdj(g graph.G) (off, to []int32) {
	if c, ok := g.(interface{ AdjacencyCSR() (off, to []int32) }); ok {
		return c.AdjacencyCSR()
	}
	n := g.N()
	off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		off[v+1] = off[v] + int32(g.Degree(v))
	}
	to = make([]int32, off[n])
	pos := 0
	collect := func(u, _ int) {
		to[pos] = int32(u)
		pos++
	}
	for v := 0; v < n; v++ {
		g.ForEachNeighbor(v, collect)
	}
	return off, to
}

// LazyWalkStep advances one step of the uniform lazy random walk: the new
// distribution is p'(u) = p(u)/2 + Σ_{w∈N(u)} p(w)/(2 deg(w)). dst and src
// must have length g.N(); dst is overwritten. Vertices of degree 0 keep all
// their mass.
func LazyWalkStep(g graph.G, dst, src []float64) {
	for u := range dst {
		dst[u] = src[u] / 2
	}
	var share float64
	push := func(u, _ int) {
		dst[u] += share
	}
	for v := 0; v < g.N(); v++ {
		d := g.Degree(v)
		if d == 0 {
			dst[v] += src[v] / 2
			continue
		}
		share = src[v] / (2 * float64(d))
		g.ForEachNeighbor(v, push)
	}
}

// WalkDistribution returns the exact distribution of a lazy random walk
// started at src after the given number of steps.
func WalkDistribution(g graph.G, src, steps int) []float64 {
	p := make([]float64, g.N())
	q := make([]float64, g.N())
	p[src] = 1
	for i := 0; i < steps; i++ {
		LazyWalkStep(g, q, p)
		p, q = q, p
	}
	return p
}

// StationaryDistribution returns π(u) = deg(u)/vol(V) for a connected graph.
func StationaryDistribution(g graph.G) []float64 {
	pi := make([]float64, g.N())
	vol := float64(2 * g.M())
	if vol == 0 {
		for i := range pi {
			pi[i] = 1 / float64(g.N())
		}
		return pi
	}
	for v := 0; v < g.N(); v++ {
		pi[v] = float64(g.Degree(v)) / vol
	}
	return pi
}

// MixingTime returns the paper's τ_mix(G): the smallest t such that for all
// start vertices v and targets u, |p_t^v(u) − π(u)| ≤ π(u)/n. maxSteps caps
// the search; the boolean result is false if the bound was not reached.
// Exact (propagates full distributions), so intended for modest n.
func MixingTime(g graph.G, maxSteps int) (int, bool) {
	n := g.N()
	if n <= 1 {
		return 0, true
	}
	pi := StationaryDistribution(g)
	// Evolve all start distributions simultaneously: dist[v] is the walk
	// distribution started at v.
	dists := make([][]float64, n)
	scratch := make([]float64, n)
	for v := range dists {
		dists[v] = make([]float64, n)
		dists[v][v] = 1
	}
	check := func() bool {
		for v := 0; v < n; v++ {
			for u := 0; u < n; u++ {
				if math.Abs(dists[v][u]-pi[u]) > pi[u]/float64(n) {
					return false
				}
			}
		}
		return true
	}
	if check() {
		return 0, true
	}
	for t := 1; t <= maxSteps; t++ {
		for v := 0; v < n; v++ {
			LazyWalkStep(g, scratch, dists[v])
			copy(dists[v], scratch)
		}
		if check() {
			return t, true
		}
	}
	return maxSteps, false
}

// SpectralGap estimates 1 − λ2 of the lazy random walk transition matrix by
// power iteration with deflation against the stationary component, using the
// symmetric normalization D^{-1/2} W D^{1/2}. Returns the gap estimate.
// For a disconnected graph the gap is ~0.
func SpectralGap(g graph.G, iters int, rng *rand.Rand) float64 {
	n := g.N()
	if n <= 1 {
		return 1
	}
	// Top eigenvector of the symmetrized lazy walk is d^{1/2}.
	sqrtD := make([]float64, n)
	for v := 0; v < n; v++ {
		sqrtD[v] = math.Sqrt(float64(g.Degree(v)))
	}
	normalize := func(x []float64) {
		var s float64
		for _, xi := range x {
			s += xi * xi
		}
		s = math.Sqrt(s)
		if s == 0 {
			return
		}
		for i := range x {
			x[i] /= s
		}
	}
	deflate := func(x []float64) {
		var dot, dd float64
		for i := range x {
			dot += x[i] * sqrtD[i]
			dd += sqrtD[i] * sqrtD[i]
		}
		if dd == 0 {
			return
		}
		c := dot / dd
		for i := range x {
			x[i] -= c * sqrtD[i]
		}
	}
	// S = D^{-1/2} W D^{1/2} where W = I/2 + A D^{-1}/2 acting on column
	// distributions; symmetric form: S = I/2 + D^{-1/2} A D^{-1/2} / 2.
	off, to := flatAdj(g)
	apply := func(dst, src []float64) {
		for i := range dst {
			dst[i] = src[i] / 2
		}
		for v := 0; v < n; v++ {
			if off[v+1] == off[v] {
				dst[v] += src[v] / 2
				continue
			}
			for a := off[v]; a < off[v+1]; a++ {
				u := to[a]
				dst[u] += src[v] / (2 * sqrtD[u] * sqrtD[v])
			}
		}
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	deflate(x)
	normalize(x)
	lambda := 0.0
	for it := 0; it < iters; it++ {
		apply(y, x)
		deflate(y)
		// Rayleigh quotient estimate.
		var num, den float64
		for i := range y {
			num += y[i] * x[i]
			den += x[i] * x[i]
		}
		if den > 0 {
			lambda = num / den
		}
		copy(x, y)
		normalize(x)
	}
	return 1 - lambda
}

// SweepCut orders vertices by score and returns the prefix cut with the
// minimum conductance, as the set of vertices on the low-score side, along
// with its conductance. Both sides of the returned cut are non-empty.
// It returns nil for graphs with fewer than 2 vertices.
func SweepCut(g graph.G, score []float64) (map[int]bool, float64) {
	n := g.N()
	if n < 2 {
		return nil, 0
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	// The comparator is a strict total order (score, then vertex id), so the
	// sorted permutation is unique and independent of the sort algorithm;
	// slices.SortFunc just avoids sort.Slice's per-call reflection allocs.
	slices.SortFunc(order, func(a, b int) int {
		if score[a] != score[b] {
			if score[a] < score[b] {
				return -1
			}
			return 1
		}
		return a - b
	})
	inS := make([]bool, n)
	volS := 0
	cut := 0
	countCrossings := func(u, _ int) {
		if inS[u] {
			cut--
		} else {
			cut++
		}
	}
	totalVol := 2 * g.M()
	bestPhi := math.Inf(1)
	bestK := 0
	for k := 0; k < n-1; k++ {
		v := order[k]
		inS[v] = true
		volS += g.Degree(v)
		g.ForEachNeighbor(v, countCrossings)
		minVol := volS
		if rest := totalVol - volS; rest < minVol {
			minVol = rest
		}
		var phi float64
		switch {
		case minVol == 0 && cut == 0:
			phi = math.Inf(1) // useless cut; skip by treating as infinite
		case minVol == 0:
			phi = math.Inf(1)
		default:
			phi = float64(cut) / float64(minVol)
		}
		if phi < bestPhi {
			bestPhi = phi
			bestK = k + 1
		}
	}
	if math.IsInf(bestPhi, 1) {
		// No informative cut (e.g. edgeless graph): return the first vertex.
		bestPhi = 0
		bestK = 1
	}
	s := make(map[int]bool, bestK)
	for _, v := range order[:bestK] {
		s[v] = true
	}
	return s, bestPhi
}

// FiedlerScores returns an approximate second eigenvector of the symmetrized
// lazy walk (rescaled to act as per-vertex scores), suitable for SweepCut.
func FiedlerScores(g graph.G, iters int, rng *rand.Rand) []float64 {
	n := g.N()
	scores := make([]float64, n)
	if n <= 2 {
		for i := range scores {
			scores[i] = float64(i)
		}
		return scores
	}
	sqrtD := make([]float64, n)
	for v := 0; v < n; v++ {
		sqrtD[v] = math.Sqrt(float64(g.Degree(v)) + 1e-12)
	}
	x := make([]float64, n)
	y := make([]float64, n)
	for i := range x {
		x[i] = rng.Float64() - 0.5
	}
	deflate := func(v []float64) {
		var dot, dd float64
		for i := range v {
			dot += v[i] * sqrtD[i]
			dd += sqrtD[i] * sqrtD[i]
		}
		c := dot / dd
		for i := range v {
			v[i] -= c * sqrtD[i]
		}
	}
	normalize := func(v []float64) {
		var s float64
		for _, vi := range v {
			s += vi * vi
		}
		s = math.Sqrt(s)
		if s == 0 {
			return
		}
		for i := range v {
			v[i] /= s
		}
	}
	off, to := flatAdj(g)
	apply := func(dst, src []float64) {
		for i := range dst {
			dst[i] = src[i] / 2
		}
		for v := 0; v < n; v++ {
			if off[v+1] == off[v] {
				dst[v] += src[v] / 2
				continue
			}
			for a := off[v]; a < off[v+1]; a++ {
				u := to[a]
				dst[u] += src[v] / (2 * sqrtD[u] * sqrtD[v])
			}
		}
	}
	deflate(x)
	normalize(x)
	for it := 0; it < iters; it++ {
		apply(y, x)
		deflate(y)
		normalize(y)
		copy(x, y)
	}
	for v := 0; v < n; v++ {
		scores[v] = x[v] / sqrtD[v]
	}
	return scores
}

// Bounds holds a certified interval for the conductance of a graph.
type Bounds struct {
	Lower float64
	Upper float64
}

// EstimateBounds returns conductance bounds: the upper bound comes from the
// best spectral sweep cut found (a genuine cut, hence a true upper bound);
// the lower bound comes from Cheeger's inequality applied to the estimated
// spectral gap, Φ ≥ gap/2 for the lazy walk normalization.
func EstimateBounds(g graph.G, iters int, rng *rand.Rand) Bounds {
	if g.N() <= 1 || g.M() == 0 {
		return Bounds{}
	}
	gap := SpectralGap(g, iters, rng)
	scores := FiedlerScores(g, iters, rng)
	_, upper := SweepCut(g, scores)
	lower := gap / 2
	if lower < 0 {
		lower = 0
	}
	if lower > upper {
		lower = upper // numerical safety: keep interval consistent
	}
	return Bounds{Lower: lower, Upper: upper}
}

// Conductance returns the exact conductance when n ≤ MaxExactN and otherwise
// the sweep-cut upper bound (a true cut value). The boolean reports whether
// the value is exact.
func Conductance(g graph.G, rng *rand.Rand) (float64, bool) {
	if g.N() <= MaxExactN {
		return ExactConductance(g), true
	}
	b := EstimateBounds(g, 200, rng)
	return b.Upper, false
}
