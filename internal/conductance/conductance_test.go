package conductance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestCutConductanceKnown(t *testing.T) {
	// C4: cut of two adjacent vertices has |∂S| = 2, vol = 4 -> Φ = 1/2.
	g := graph.Cycle(4)
	s := map[int]bool{0: true, 1: true}
	if got := CutConductance(g, s); got != 0.5 {
		t.Errorf("C4 adjacent pair conductance = %v, want 0.5", got)
	}
	// Trivial cuts have conductance 0.
	if got := CutConductance(g, map[int]bool{}); got != 0 {
		t.Errorf("empty cut = %v, want 0", got)
	}
	all := map[int]bool{0: true, 1: true, 2: true, 3: true}
	if got := CutConductance(g, all); got != 0 {
		t.Errorf("full cut = %v, want 0", got)
	}
}

func TestCutSparsity(t *testing.T) {
	g := graph.Path(4)
	s := map[int]bool{0: true, 1: true}
	if got := CutSparsity(g, s); got != 0.5 {
		t.Errorf("path middle cut sparsity = %v, want 0.5", got)
	}
	if got := CutSparsity(g, map[int]bool{}); got != 0 {
		t.Errorf("empty cut sparsity = %v, want 0", got)
	}
}

func TestExactConductanceKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		// K4: every cut S with |S|=1: 3/3=1; |S|=2: 4/6=2/3. Min = 2/3.
		{"K4", graph.Complete(4), 2.0 / 3.0},
		// C6: antipodal cut 2/6 = 1/3; the minimum over all cuts.
		{"C6", graph.Cycle(6), 1.0 / 3.0},
		// Path P4: middle edge cut 1/min(3,3)... vol(P4)=6; cut {0,1}: 1/3.
		{"P4", graph.Path(4), 1.0 / 3.0},
		// Two triangles joined by a bridge: bridge cut 1/7.
		{"barbell", barbell(), 1.0 / 7.0},
		// Disconnected graph has conductance 0.
		{"disconnected", graph.Disjoint(graph.Cycle(3), graph.Cycle(3)), 0},
		// Star K_{1,3}: any single leaf: 1/1 = 1; pair of leaves 2/2=1; min=1.
		{"star", graph.Star(3), 1.0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := ExactConductance(tc.g)
			if math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Φ = %v, want %v", got, tc.want)
			}
		})
	}
}

func barbell() *graph.Graph {
	b := graph.NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 3)
	return b.Graph()
}

func TestExactConductancePanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for n > MaxExactN")
		}
	}()
	ExactConductance(graph.Path(MaxExactN + 1))
}

// Property: exact conductance is a lower bound for every explicit cut.
func TestQuickExactIsMinimum(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := graph.ErdosRenyi(n, 0.5, rng)
		phi := ExactConductance(g)
		for trial := 0; trial < 20; trial++ {
			s := make(map[int]bool)
			for v := 0; v < n; v++ {
				if rng.Intn(2) == 0 {
					s[v] = true
				}
			}
			if len(s) == 0 || len(s) == n {
				continue
			}
			if c := CutConductance(g, s); c < phi-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLazyWalkStepConservesMass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.ErdosRenyi(12, 0.3, rng)
	p := make([]float64, g.N())
	q := make([]float64, g.N())
	p[0] = 1
	for i := 0; i < 50; i++ {
		LazyWalkStep(g, q, p)
		p, q = q, p
		var sum float64
		for _, x := range p {
			sum += x
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("mass not conserved at step %d: %v", i, sum)
		}
	}
}

func TestWalkDistributionConvergesToStationary(t *testing.T) {
	g := graph.Complete(6)
	p := WalkDistribution(g, 0, 60)
	pi := StationaryDistribution(g)
	for v := range p {
		if math.Abs(p[v]-pi[v]) > 1e-6 {
			t.Errorf("p[%d] = %v, want ~%v", v, p[v], pi[v])
		}
	}
}

func TestStationaryDistributionSumsToOne(t *testing.T) {
	for _, g := range []*graph.Graph{graph.Star(5), graph.Grid(3, 3), graph.Path(1)} {
		pi := StationaryDistribution(g)
		var sum float64
		for _, x := range pi {
			sum += x
		}
		if math.Abs(sum-1) > 1e-12 {
			t.Errorf("stationary sums to %v on %v", sum, g)
		}
	}
}

func TestMixingTimeOrdering(t *testing.T) {
	// Cliques mix much faster than cycles of the same size.
	tK, okK := MixingTime(graph.Complete(8), 1000)
	tC, okC := MixingTime(graph.Cycle(8), 1000)
	if !okK || !okC {
		t.Fatalf("mixing time search did not converge: K8 ok=%v C8 ok=%v", okK, okC)
	}
	if tK >= tC {
		t.Errorf("K8 mixing (%d) should beat C8 mixing (%d)", tK, tC)
	}
	if tK < 1 {
		t.Errorf("K8 mixing = %d, expected >= 1", tK)
	}
	// Singleton mixes instantly.
	if tt, ok := MixingTime(graph.Path(1), 10); !ok || tt != 0 {
		t.Errorf("singleton mixing = %d (ok=%v), want 0", tt, ok)
	}
}

func TestMixingTimeCapReported(t *testing.T) {
	if _, ok := MixingTime(graph.Cycle(40), 3); ok {
		t.Error("cycle of 40 cannot mix in 3 steps")
	}
}

func TestSpectralGapSeparatesExpandersFromCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	gapK := SpectralGap(graph.Complete(16), 300, rng)
	gapC := SpectralGap(graph.Cycle(16), 300, rng)
	if gapK <= gapC {
		t.Errorf("K16 gap (%v) should exceed C16 gap (%v)", gapK, gapC)
	}
	gapDisc := SpectralGap(graph.Disjoint(graph.Cycle(4), graph.Cycle(4)), 300, rng)
	if gapDisc > 0.01 {
		t.Errorf("disconnected gap = %v, want ~0", gapDisc)
	}
}

func TestSweepCutFindsBottleneck(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := barbell()
	scores := FiedlerScores(g, 400, rng)
	s, phi := SweepCut(g, scores)
	if math.Abs(phi-1.0/7.0) > 1e-9 {
		t.Errorf("sweep conductance = %v, want 1/7", phi)
	}
	if len(s) != 3 {
		t.Errorf("sweep side size = %d, want 3", len(s))
	}
	// The cut must separate the two triangles.
	if s[0] != s[1] || s[1] != s[2] || s[0] == s[3] {
		t.Errorf("sweep cut does not split the barbell: %v", s)
	}
}

func TestSweepCutDegenerate(t *testing.T) {
	if s, _ := SweepCut(graph.Path(1), []float64{0}); s != nil {
		t.Error("sweep on singleton should be nil")
	}
	s, phi := SweepCut(graph.Path(2), []float64{0, 1})
	if len(s) != 1 || phi != 1 {
		t.Errorf("P2 sweep = %v phi=%v, want size-1 set with phi=1", s, phi)
	}
}

func TestEstimateBoundsBracketExact(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, g := range []*graph.Graph{
		graph.Cycle(12),
		graph.Complete(8),
		graph.Grid(4, 4),
		barbell(),
	} {
		exact := ExactConductance(g)
		b := EstimateBounds(g, 500, rng)
		if b.Upper < exact-1e-9 {
			t.Errorf("%v: upper bound %v below exact %v", g, b.Upper, exact)
		}
		if b.Lower > exact+1e-9 {
			t.Errorf("%v: Cheeger lower bound %v above exact %v", g, b.Lower, exact)
		}
	}
}

func TestConductanceDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	phi, exact := Conductance(graph.Cycle(8), rng)
	if !exact {
		t.Error("small graph should be exact")
	}
	if math.Abs(phi-0.25) > 1e-12 {
		t.Errorf("C8 conductance = %v, want 0.25", phi)
	}
	big := graph.Grid(8, 8)
	phiBig, exactBig := Conductance(big, rng)
	if exactBig {
		t.Error("64-vertex graph should use the estimate")
	}
	if phiBig <= 0 {
		t.Errorf("estimated conductance should be positive, got %v", phiBig)
	}
}

// Property: sweep cut conductance is always >= exact conductance (it is a
// genuine cut) on small random graphs.
func TestQuickSweepUpperBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := graph.ErdosRenyi(n, 0.5, rng)
		if g.M() == 0 {
			return true
		}
		exact := ExactConductance(g)
		scores := FiedlerScores(g, 200, rng)
		_, phi := SweepCut(g, scores)
		return phi >= exact-1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestHypercubeConductanceMatchesTheory(t *testing.T) {
	// The paper cites hypercubes as the tight example: Φ(Q_d) = 1/d
	// (dimension cut). Verify exactly for d = 3, 4.
	for _, d := range []int{3, 4} {
		g := graph.Hypercube(d)
		got := ExactConductance(g)
		want := 1.0 / float64(d)
		if math.Abs(got-want) > 1e-12 {
			t.Errorf("Φ(Q_%d) = %v, want %v", d, got, want)
		}
	}
}
