package conductance

import (
	"slices"

	"expandergap/internal/graph"
)

// approximatePageRankDense is the push algorithm over dense slices: p and r
// are indexed by vertex, inQueue tracks queue membership. Dense state keeps
// the decomposition's inner loop free of per-push map growth; the push order
// and float arithmetic are identical to the classic formulation.
func approximatePageRankDense(g graph.G, seed int, alpha, epsPush float64) []float64 {
	n := g.N()
	p := make([]float64, n)
	r := make([]float64, n)
	inQueue := make([]bool, n)
	r[seed] = 1
	// inQueue bounds the outstanding entries by n, so a head-index queue with
	// capacity n plus compaction never grows past its initial allocation —
	// the sliding-window `queue = queue[1:]` idiom would reallocate on every
	// capacity exhaustion even though the live window stays small.
	queue := make([]int, 1, n)
	queue[0] = seed
	head := 0
	inQueue[seed] = true
	enqueue := func(v int) {
		if len(queue) == cap(queue) && head > 0 {
			live := copy(queue, queue[head:])
			queue = queue[:live]
			head = 0
		}
		queue = append(queue, v)
	}
	var share float64
	push := func(v, _ int) {
		r[v] += share
		if r[v] >= epsPush*float64(g.Degree(v)) && !inQueue[v] {
			enqueue(v)
			inQueue[v] = true
		}
	}
	for head < len(queue) {
		u := queue[head]
		head++
		inQueue[u] = false
		deg := g.Degree(u)
		if deg == 0 {
			p[u] += r[u]
			r[u] = 0
			continue
		}
		ru := r[u]
		if ru < epsPush*float64(deg) {
			continue
		}
		p[u] += alpha * ru
		share = (1 - alpha) * ru / (2 * float64(deg))
		r[u] = (1 - alpha) * ru / 2
		if r[u] >= epsPush*float64(deg) && !inQueue[u] {
			enqueue(u)
			inQueue[u] = true
		}
		g.ForEachNeighbor(u, push)
	}
	return p
}

// ApproximatePageRank computes an ε-approximate personalized PageRank vector
// from the seed vertex with teleport probability alpha, using the classic
// push algorithm (Andersen–Chung–Lang): maintain (p, r) with p the current
// approximation and r the residual; repeatedly push at vertices whose
// residual exceeds epsPush·deg. The result satisfies
// p(v) ≤ ppr(v) ≤ p(v) + epsPush·deg(v) for all v; vertices the push never
// reached are absent from the returned map.
func ApproximatePageRank(g graph.G, seed int, alpha, epsPush float64) map[int]float64 {
	dense := approximatePageRankDense(g, seed, alpha, epsPush)
	p := make(map[int]float64)
	for v, pv := range dense {
		if pv != 0 {
			p[v] = pv
		}
	}
	return p
}

// Nibble runs the PageRank-Nibble local clustering: compute an approximate
// PPR vector from the seed, order touched vertices by p(v)/deg(v), and
// return the best sweep-cut prefix together with its conductance. It only
// ever touches O(1/(alpha·epsPush)) vertices, which is what makes it the
// local-clustering primitive behind nibble-style expander decompositions.
// Returns nil when no non-trivial cut exists among touched vertices.
func Nibble(g graph.G, seed int, alpha, epsPush float64) (map[int]bool, float64) {
	p := approximatePageRankDense(g, seed, alpha, epsPush)
	type scored struct {
		v     int
		score float64
	}
	var order []scored
	for v, pv := range p {
		d := g.Degree(v)
		if d == 0 || pv <= 0 {
			continue
		}
		order = append(order, scored{v: v, score: pv / float64(d)})
	}
	if len(order) == 0 {
		return nil, 0
	}
	// Strict total order (score desc, then vertex id): the permutation is
	// unique, so swapping in the reflection-free sort cannot change output.
	slices.SortFunc(order, func(a, b scored) int {
		if a.score != b.score {
			if a.score > b.score {
				return -1
			}
			return 1
		}
		return a.v - b.v
	})
	totalVol := 2 * g.M()
	inS := make([]bool, g.N())
	volS := 0
	cut := 0
	countCrossings := func(u, _ int) {
		if inS[u] {
			cut--
		} else {
			cut++
		}
	}
	best := -1
	bestPhi := 2.0
	for k, sc := range order {
		v := sc.v
		inS[v] = true
		volS += g.Degree(v)
		g.ForEachNeighbor(v, countCrossings)
		minVol := volS
		if rest := totalVol - volS; rest < minVol {
			minVol = rest
		}
		if minVol <= 0 {
			continue
		}
		phi := float64(cut) / float64(minVol)
		if phi < bestPhi {
			bestPhi = phi
			best = k
		}
	}
	if best < 0 {
		return nil, 0
	}
	s := make(map[int]bool, best+1)
	for _, sc := range order[:best+1] {
		s[sc.v] = true
	}
	return s, bestPhi
}
