package conductance

import (
	"math"
	"math/rand"
	"testing"

	"expandergap/internal/graph"
)

func TestApproximatePageRankMassBounds(t *testing.T) {
	g := graph.Grid(6, 6)
	p := ApproximatePageRank(g, 0, 0.15, 1e-5)
	var total float64
	for v, pv := range p {
		if pv < 0 {
			t.Fatalf("negative mass at %d", v)
		}
		total += pv
	}
	if total > 1+1e-9 {
		t.Errorf("approximate PPR mass %v exceeds 1", total)
	}
	if total < 0.5 {
		t.Errorf("approximate PPR mass %v too small for epsPush=1e-5", total)
	}
	// Seed should carry the largest mass.
	for v, pv := range p {
		if v != 0 && pv > p[0] {
			t.Errorf("vertex %d mass %v exceeds seed mass %v", v, pv, p[0])
		}
	}
}

func TestApproximatePageRankLocality(t *testing.T) {
	// With a coarse epsPush the push process must stay local: on a long
	// path, far vertices receive nothing.
	g := graph.Path(200)
	p := ApproximatePageRank(g, 0, 0.2, 1e-3)
	for v := 50; v < 200; v++ {
		if p[v] != 0 {
			t.Errorf("mass leaked to distant vertex %d", v)
		}
	}
}

func TestNibbleFindsBarbellCut(t *testing.T) {
	// Two K8s joined by one edge: nibbling from inside one clique should
	// find (nearly) the bridge cut.
	b := graph.NewBuilder(16)
	for i := 0; i < 8; i++ {
		for j := i + 1; j < 8; j++ {
			b.AddEdge(i, j)
			b.AddEdge(8+i, 8+j)
		}
	}
	b.AddEdge(7, 8)
	g := b.Graph()
	s, phi := Nibble(g, 0, 0.1, 1e-6)
	if s == nil {
		t.Fatal("nibble found nothing")
	}
	exact := ExactConductance(g)
	if phi > 5*exact {
		t.Errorf("nibble conductance %v far above optimum %v", phi, exact)
	}
	// The returned side should be (close to) one clique.
	inFirst := 0
	for v := range s {
		if v < 8 {
			inFirst++
		}
	}
	if inFirst != len(s) && inFirst != 0 {
		t.Errorf("nibble cut mixes the cliques: %v", s)
	}
}

func TestNibbleOnExpanderReturnsHighConductance(t *testing.T) {
	g := graph.Complete(12)
	_, phi := Nibble(g, 0, 0.2, 1e-5)
	// A clique has no sparse cut; whatever nibble returns must have high
	// conductance.
	if phi < 0.3 {
		t.Errorf("nibble claims a sparse cut (Φ=%v) in a clique", phi)
	}
}

func TestNibbleDegenerate(t *testing.T) {
	single := graph.Path(1)
	if s, _ := Nibble(single, 0, 0.2, 1e-3); s != nil && len(s) > 1 {
		t.Error("nibble on singleton misbehaved")
	}
	empty := graph.NewBuilder(3).Graph()
	s, _ := Nibble(empty, 1, 0.2, 1e-3)
	if len(s) > 1 {
		t.Errorf("nibble on edgeless graph returned %v", s)
	}
}

func TestNibbleQualityOnGridFamilies(t *testing.T) {
	// Nibble's sweep cut is a genuine cut: its conductance upper-bounds the
	// graph conductance.
	rng := rand.New(rand.NewSource(5))
	for _, n := range []int{16, 36} {
		side := int(math.Sqrt(float64(n)))
		g := graph.Grid(side, side)
		exact := ExactConductance(graph.Grid(3, 3)) // small reference only
		_ = exact
		seed := rng.Intn(g.N())
		s, phi := Nibble(g, seed, 0.1, 1e-6)
		if s == nil {
			t.Fatalf("n=%d: nibble empty", n)
		}
		if got := CutConductance(g, s); math.Abs(got-phi) > 1e-9 {
			t.Errorf("n=%d: reported Φ %v != recomputed %v", n, phi, got)
		}
	}
}
