package conductance

import (
	"fmt"
	"math"

	"expandergap/internal/graph"
)

// ExactSparsity returns Ψ(G) = min over non-trivial cuts of
// |∂S| / min(|S|, |V\S|), the vertex-count analogue of conductance used by
// the deterministic routing reduction (Lemma 2.5). Exhaustive; panics for
// n > MaxExactN. Disconnected graphs have sparsity 0.
func ExactSparsity(g *graph.Graph) float64 {
	n := g.N()
	if n > MaxExactN {
		panic(fmt.Sprintf("conductance: ExactSparsity limited to n <= %d, got %d", MaxExactN, n))
	}
	if n <= 1 {
		return 0
	}
	edges := g.Edges()
	best := math.Inf(1)
	for mask := 1; mask < 1<<(n-1); mask++ {
		size := 0
		for v := 0; v < n-1; v++ {
			if mask&(1<<v) != 0 {
				size++
			}
		}
		cut := 0
		for _, e := range edges {
			inU := e.U < n-1 && mask&(1<<e.U) != 0
			inV := e.V < n-1 && mask&(1<<e.V) != 0
			if inU != inV {
				cut++
			}
		}
		minSide := size
		if rest := n - size; rest < minSide {
			minSide = rest
		}
		if psi := float64(cut) / float64(minSide); psi < best {
			best = psi
		}
	}
	return best
}

// SparsityConductanceRelation checks the standard sandwich
// Φ(G) ≤ Ψ(G) ≤ Δ·Φ(G) used when moving between the two quantities in
// Lemma 2.5's preprocessing ([20, Lemma C.2]); it returns the two ratios
// Ψ/Φ (must be ≥ 1) and Ψ/(Δ·Φ) (must be ≤ 1) for a connected graph.
func SparsityConductanceRelation(g *graph.Graph) (lower, upper float64) {
	phi := ExactConductance(g)
	psi := ExactSparsity(g)
	if phi == 0 {
		return 0, 0
	}
	d := float64(g.MaxDegree())
	return psi / phi, psi / (d * phi)
}
