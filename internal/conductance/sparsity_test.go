package conductance

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestExactSparsityKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want float64
	}{
		{"P4", graph.Path(4), 0.5},         // middle cut 1 / min(2,2)
		{"C6", graph.Cycle(6), 2.0 / 3.0},  // antipodal 2/3
		{"K4", graph.Complete(4), 2.0},     // balanced 2|2 split: 4/2
		{"star", graph.Star(4), 1.0 / 1.0}, // one leaf: 1/1
		{"disconnected", graph.Disjoint(graph.Path(2), graph.Path(2)), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := ExactSparsity(tc.g); math.Abs(got-tc.want) > 1e-12 {
				t.Errorf("Ψ = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestExactSparsityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic above MaxExactN")
		}
	}()
	ExactSparsity(graph.Path(MaxExactN + 1))
}

// Property: Φ ≤ Ψ ≤ Δ·Φ on connected graphs ([20, Lemma C.2] direction used
// by Lemma 2.5).
func TestQuickSparsityConductanceSandwich(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := graph.ErdosRenyi(n, 0.6, rng)
		if !g.Connected() || g.M() == 0 {
			return true
		}
		lower, upper := SparsityConductanceRelation(g)
		return lower >= 1-1e-9 && upper <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSparsityRelationDegenerate(t *testing.T) {
	lower, upper := SparsityConductanceRelation(graph.Disjoint(graph.Path(2), graph.Path(2)))
	if lower != 0 || upper != 0 {
		t.Error("disconnected relation should be zero")
	}
}
