package congest

import (
	"reflect"
	"testing"

	"expandergap/internal/graph"
)

// TestSplitBoundsBalance checks the weighted chunk-boundary computation
// directly: boundaries are ascending, cover [0, k), depend only on the
// weight sequence, and place the heavy prefix of a skewed weight vector in
// its own chunk instead of splitting by index count.
func TestSplitBoundsBalance(t *testing.T) {
	e := &executor{workers: 4, bounds: make([]int, 5)}

	// Uniform weights degenerate to the even index split.
	e.splitBounds(4, 8, func(i int) int { return 1 })
	if got, want := append([]int(nil), e.bounds...), []int{0, 2, 4, 6, 8}; !reflect.DeepEqual(got, want) {
		t.Errorf("uniform bounds = %v, want %v", got, want)
	}

	// One index carrying ~all the weight: it must not share a chunk with
	// the long zero-weight tail.
	w := func(i int) int {
		if i == 0 {
			return 1000
		}
		return 0
	}
	e.splitBounds(4, 100, w)
	if e.bounds[1] != 1 {
		t.Errorf("heavy head: first boundary = %d, want 1 (bounds %v)", e.bounds[1], e.bounds)
	}
	if e.bounds[4] != 100 {
		t.Errorf("last boundary = %d, want 100", e.bounds[4])
	}
	for c := 1; c <= 4; c++ {
		if e.bounds[c] < e.bounds[c-1] {
			t.Fatalf("bounds not ascending: %v", e.bounds)
		}
	}

	// Determinism: same weights, same boundaries, every time.
	first := append([]int(nil), e.bounds...)
	for run := 0; run < 3; run++ {
		e.splitBounds(4, 100, w)
		if !reflect.DeepEqual(append([]int(nil), e.bounds...), first) {
			t.Fatalf("run %d: bounds changed: %v vs %v", run, e.bounds, first)
		}
	}

	// A nil weight keeps the legacy even split.
	e.splitBounds(4, 10, nil)
	if got, want := append([]int(nil), e.bounds...), []int{0, 3, 6, 9, 10}; !reflect.DeepEqual(got, want) {
		t.Errorf("nil-weight bounds = %v, want %v", got, want)
	}
}

// starWithTail builds the skew stress graph for the balanced executor: a hub
// adjacent to every other vertex, plus a path threaded through the leaves so
// the graph has both one massively hot vertex (degree n-1, receives a
// message from every leaf every round) and a long run of cheap ones.
func starWithTail(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for v := 1; v < n; v++ {
		b.AddEdge(0, v)
	}
	for v := 1; v < n-1; v++ {
		b.AddEdge(v, v+1)
	}
	return b.Graph()
}

// TestBalancedShardingSkewedEquivalence runs an aggregation workload on the
// star-with-tail graph — the worst case for equal-index chunks, since the
// hub's delivery and compute cost dwarf every leaf's — across the executor
// sweep and demands bit-identical outputs and metrics. The balanced
// boundaries must change scheduling only, never results.
func TestBalancedShardingSkewedEquivalence(t *testing.T) {
	g := starWithTail(257)
	run := func(workers int) ([]any, Metrics) {
		sim := NewSimulator(g, Config{Seed: 9, Workers: workers})
		res, err := sim.Run(func(v *Vertex) Handler {
			sum := int64(0)
			return RunFuncs{
				InitFn: func(v *Vertex) {
					if v.ID() != 0 {
						v.SendWords(0, int64(v.ID())) // port 0 of a leaf is the hub
					}
				},
				RoundFn: func(v *Vertex, round int, recv []Incoming) {
					for _, in := range recv {
						sum += in.Msg[0]
					}
					if round >= 6 {
						v.SetOutput(sum)
						v.Halt()
						return
					}
					if v.ID() != 0 {
						v.SendWords(0, sum+int64(round))
					} else {
						v.BroadcastWords(sum % 1000)
					}
				},
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Outputs, res.Metrics
	}
	baseOut, baseMetrics := run(0)
	for _, workers := range []int{1, 2, 4, 8} {
		out, m := run(workers)
		if !reflect.DeepEqual(out, baseOut) {
			t.Errorf("workers=%d: outputs diverge from sequential on skewed load", workers)
		}
		if m != baseMetrics {
			t.Errorf("workers=%d: metrics %+v, sequential %+v", workers, m, baseMetrics)
		}
	}
}

// TestBalancedShardingFaultedSkewEquivalence repeats the skewed-load sweep
// with fault injection and sleeping leaves, so the balanced chunk boundaries
// are exercised while the worklists churn (pendingCount is rebuilt every
// barrier) and the fault filter runs inside the weighted delivery phase.
func TestBalancedShardingFaultedSkewEquivalence(t *testing.T) {
	g := starWithTail(129)
	run := func(workers int) ([]any, Metrics) {
		sim := NewSimulator(g, Config{Seed: 31, FaultRate: 0.15, Workers: workers, MaxRounds: 128})
		res, err := sim.Run(func(v *Vertex) Handler {
			sum := int64(0)
			return RunFuncs{
				InitFn: func(v *Vertex) { v.BroadcastWords(int64(v.ID())) },
				RoundFn: func(v *Vertex, round int, recv []Incoming) {
					for _, in := range recv {
						sum += in.Msg[0]
					}
					switch {
					case round >= 10:
						v.SetOutput(sum)
						v.Halt()
					case v.ID()%3 == 1 && round == 2:
						v.SleepUntil(8) // drop out of the worklists for a stretch
					default:
						v.BroadcastWords(sum % 997)
					}
				},
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Outputs, res.Metrics
	}
	baseOut, baseMetrics := run(0)
	for _, workers := range []int{2, 4, 8} {
		out, m := run(workers)
		if !reflect.DeepEqual(out, baseOut) {
			t.Errorf("workers=%d: outputs diverge under faults on skewed load", workers)
		}
		if m != baseMetrics {
			t.Errorf("workers=%d: metrics %+v, sequential %+v", workers, m, baseMetrics)
		}
	}
}
