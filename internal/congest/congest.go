// Package congest implements a synchronous message-passing simulator for the
// LOCAL and CONGEST models of distributed computing, the execution substrate
// for every distributed algorithm in this repository.
//
// Model semantics follow the paper's Section 1: vertices host processors and
// operate in synchronized rounds; in each round every vertex may send one
// message to each of its neighbors, receives the messages its neighbors sent
// this round, and performs arbitrary local computation. In the LOCAL model
// messages are unbounded; in the CONGEST model each message is limited to
// O(log n) bits.
//
// Messages are tuples of integer words. In CONGEST mode a message may carry
// at most Config.MaxWords words and each word must satisfy |w| ≤ max(n², 2¹⁶)
// — i.e. a word is Θ(log n) bits — so a message is Θ(log n) bits total.
// Violations panic: an algorithm that breaks the model is a programming
// error, not a runtime condition.
//
// Execution is deterministic given Config.Seed: every vertex receives its own
// seeded PRNG stream, each inbox lists arrivals in ascending sender-ID order,
// and fault-injection coins are pure hashes of (seed, round, sender,
// receiver). Because handler randomness is per-vertex and inbox order is
// canonical, the execution order of vertices within a round cannot be
// observed by a (well-formed) handler — which is what makes the parallel
// executor below exact.
//
// Setting Config.Workers > 0 shards each round's delivery and compute phases
// across a pool of worker goroutines (vertices partitioned into contiguous
// ID ranges) with per-vertex metric shards merged at the round barrier. The
// parallel executor is bit-for-bit equivalent to the sequential path for a
// fixed seed. The one extra requirement it places on handlers: handlers of
// different vertices must not share mutable state (per-vertex state, as the
// model prescribes, is always safe; the test-only pattern of closing over a
// shared counter is not).
//
// A run ends when every vertex has halted and every queued message has been
// delivered: sends queued in a vertex's final round still cost (and are
// accounted as) one delivery round, per the documented Halt contract.
package congest

import (
	"errors"
	"fmt"
	"math/rand"

	"expandergap/internal/graph"
)

// Model selects the message-size regime.
type Model int

const (
	// CONGEST limits messages to Θ(log n) bits.
	CONGEST Model = iota + 1
	// LOCAL allows unbounded messages.
	LOCAL
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is a tuple of integer words exchanged along one edge in one round.
type Message []int64

// Clone returns a copy of m.
func (m Message) Clone() Message { return append(Message(nil), m...) }

// Config parameterizes a simulation run.
type Config struct {
	// Model is CONGEST or LOCAL. Zero value defaults to CONGEST.
	Model Model
	// MaxWords is the CONGEST per-message word budget. Zero defaults to 8.
	MaxWords int
	// MaxRounds aborts the run when exceeded. Zero defaults to 1 << 20.
	MaxRounds int
	// Seed drives all vertex PRNGs.
	Seed int64
	// FaultRate, when positive, drops each message independently with this
	// probability before delivery. The CONGEST model itself is fault-free;
	// this knob exists to exercise the paper's §2.3 failure-detection paths
	// (lost routing tokens must surface as detectable delivery failures,
	// never as wrong answers). Dropped messages still count in Metrics
	// (they were sent). Each drop coin is a pure hash of (Seed, round,
	// sender, receiver), so whether one message drops never depends on what
	// other messages exist — fault patterns are stable under refactors and
	// under the parallel executor.
	FaultRate float64
	// Workers selects the executor. 0 (the default) runs the canonical
	// sequential loop; k ≥ 1 shards each round's delivery and compute
	// phases across k worker goroutines. Results (outputs and metrics) are
	// bit-for-bit identical across all Workers values for a fixed Seed,
	// provided handlers keep their state per-vertex (see the package doc).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.Model == 0 {
		c.Model = CONGEST
	}
	if c.MaxWords == 0 {
		c.MaxWords = 8
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 20
	}
	return c
}

// Incoming is a message received from the neighbor on the given port.
type Incoming struct {
	// Port identifies the local port the message arrived on.
	Port int
	// From is the sender's vertex ID (KT1 knowledge: after one round every
	// vertex would know its neighbors' IDs anyway, so the simulator provides
	// them up front).
	From int
	// Msg is the received message.
	Msg Message
}

// Handler is the per-vertex algorithm. One Handler instance exists per
// vertex; it keeps the vertex's local state.
type Handler interface {
	// Init runs before the first round. The vertex may send messages (they
	// are delivered in round 1) but cannot receive anything yet.
	Init(v *Vertex)
	// Round runs once per synchronized round with the messages received
	// this round. Sends are delivered next round. round counts from 1.
	Round(v *Vertex, round int, recv []Incoming)
}

// vertexMetrics is a per-vertex metrics shard. Sends account here, with no
// shared-state contention; shards are drained into the run's Metrics at each
// round barrier, so the aggregate is exact at every barrier and identical
// whether rounds execute sequentially or in parallel.
type vertexMetrics struct {
	messages int64
	words    int64
	maxWords int
}

// Vertex is the per-vertex view of the network handed to handlers. Handlers
// may only use the exposed methods; the global graph is not reachable from
// it, preserving the locality of the model.
type Vertex struct {
	sim    *Simulator
	id     int
	ports  []int // neighbor IDs by port, ascending
	rports []int // rports[p] is the port on neighbor ports[p] leading back here
	outbox []Message
	halted bool
	rng    *rand.Rand
	output any
	local  vertexMetrics
}

// ID returns this vertex's identifier (0..n-1).
func (v *Vertex) ID() int { return v.id }

// N returns the number of vertices in the network (global knowledge of n is
// the standard assumption in both models).
func (v *Vertex) N() int { return v.sim.g.N() }

// Degree returns the number of ports.
func (v *Vertex) Degree() int { return len(v.ports) }

// NeighborID returns the vertex ID of the neighbor on the given port.
func (v *Vertex) NeighborID(port int) int { return v.ports[port] }

// PortOf returns the port leading to neighbor id, or -1 if id is not a
// neighbor.
func (v *Vertex) PortOf(id int) int {
	lo, hi := 0, len(v.ports)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.ports[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.ports) && v.ports[lo] == id {
		return lo
	}
	return -1
}

// Rand returns this vertex's private deterministic PRNG.
func (v *Vertex) Rand() *rand.Rand { return v.rng }

// Send queues msg for delivery to the neighbor on port in the next round.
// Sending twice to the same port in one round, sending on an invalid port,
// or exceeding the CONGEST budget panics.
func (v *Vertex) Send(port int, msg Message) {
	if port < 0 || port >= len(v.ports) {
		panic(fmt.Sprintf("congest: vertex %d send on invalid port %d (degree %d)", v.id, port, len(v.ports)))
	}
	if v.outbox[port] != nil {
		panic(fmt.Sprintf("congest: vertex %d sent twice on port %d in one round", v.id, port))
	}
	if len(msg) > v.local.maxWords {
		v.local.maxWords = len(msg)
	}
	v.sim.checkMessage(v.id, msg)
	if len(msg) == 0 {
		// Distinguish "send empty message" from "no send".
		msg = Message{}
	}
	v.outbox[port] = msg
	v.local.messages++
	v.local.words += int64(len(msg))
}

// Broadcast sends msg to every neighbor (ports that already have a queued
// message this round are skipped).
func (v *Vertex) Broadcast(msg Message) {
	for p := range v.ports {
		if v.outbox[p] == nil {
			v.Send(p, msg.Clone())
		}
	}
}

// Halt marks the vertex as finished. A halted vertex stops receiving Round
// calls; its queued sends are still delivered (the run executes delivery
// rounds until every outbox is empty). The simulation ends when all vertices
// have halted and all queued messages have been delivered.
func (v *Vertex) Halt() { v.halted = true }

// Halted reports whether the vertex halted.
func (v *Vertex) Halted() bool { return v.halted }

// SetOutput records the vertex's final output, retrievable from Result.
func (v *Vertex) SetOutput(out any) { v.output = out }

// Metrics aggregates communication costs of a run.
type Metrics struct {
	// Rounds is the number of synchronized rounds executed.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// Words is the total number of message words sent.
	Words int64
	// MaxWordsPerMsg is the largest single message observed (interesting in
	// LOCAL mode where it is unbounded).
	MaxWordsPerMsg int
}

// BitsPerWord returns the model-level size of one word for an n-vertex
// network: ⌈log₂(max(n,2))⌉ bits, i.e. Θ(log n).
func BitsPerWord(n int) int {
	if n < 2 {
		n = 2
	}
	bits := 0
	for v := 1; v < n; v *= 2 {
		bits++
	}
	if bits < 1 {
		bits = 1
	}
	return bits
}

// TotalBits returns the total bits sent during the run under the word-size
// accounting for an n-vertex network.
func (m Metrics) TotalBits(n int) int64 {
	return m.Words * int64(BitsPerWord(n))
}

// Add accumulates other into m (for multi-phase algorithms).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Messages += other.Messages
	m.Words += other.Words
	if other.MaxWordsPerMsg > m.MaxWordsPerMsg {
		m.MaxWordsPerMsg = other.MaxWordsPerMsg
	}
}

// Result is the outcome of a simulation run.
type Result struct {
	Metrics Metrics
	// Outputs holds each vertex's SetOutput value (nil if never set),
	// indexed by vertex ID.
	Outputs []any
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("congest: exceeded maximum rounds without termination")

// Simulator executes distributed algorithms on a fixed graph.
type Simulator struct {
	g       *graph.Graph
	cfg     Config
	metrics Metrics
	wordCap int64
}

// NewSimulator returns a Simulator for g under cfg.
func NewSimulator(g *graph.Graph, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	wordCap := int64(g.N()) * int64(g.N())
	if wordCap < 1<<16 {
		wordCap = 1 << 16
	}
	return &Simulator{g: g, cfg: cfg, wordCap: wordCap}
}

// Graph returns the underlying network graph (for harness code; handlers
// never see it).
func (s *Simulator) Graph() *graph.Graph { return s.g }

// Config returns the effective configuration.
func (s *Simulator) Config() Config { return s.cfg }

// checkMessage validates msg against the model. It must stay free of
// Simulator mutation: it runs concurrently from all workers.
func (s *Simulator) checkMessage(sender int, msg Message) {
	if s.cfg.Model == LOCAL {
		return
	}
	if len(msg) > s.cfg.MaxWords {
		panic(fmt.Sprintf("congest: vertex %d sent %d words, CONGEST budget is %d",
			sender, len(msg), s.cfg.MaxWords))
	}
	for _, w := range msg {
		if w > s.wordCap || w < -s.wordCap {
			panic(fmt.Sprintf("congest: vertex %d sent word %d exceeding magnitude cap %d",
				sender, w, s.wordCap))
		}
	}
}

// faultCoin returns a uniform [0,1) coin for the message delivered to
// receiver `to` from sender `from` in the given round, as a pure
// splitmix64-style hash of (seed, round, from, to). Each message's drop
// decision therefore depends only on its own coordinates — never on how many
// other messages exist or in which order delivery scans them.
func faultCoin(seed int64, round, from, to int) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, w := range [3]uint64{uint64(round), uint64(from), uint64(to)} {
		h += w + 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return float64(h>>11) / (1 << 53)
}

// allHalted reports whether every vertex has halted.
func allHalted(verts []*Vertex) bool {
	for _, v := range verts {
		if !v.halted {
			return false
		}
	}
	return true
}

// anyPending reports whether any vertex still has a queued outgoing message.
// Only consulted once allHalted is true, so the O(m) scan runs at most a
// couple of times per run.
func anyPending(verts []*Vertex) bool {
	for _, v := range verts {
		for _, m := range v.outbox {
			if m != nil {
				return true
			}
		}
	}
	return false
}

// mergeMetrics drains every vertex's metrics shard into the run aggregate.
// Called at round barriers only (never concurrently with handlers).
func (s *Simulator) mergeMetrics(verts []*Vertex) {
	for _, v := range verts {
		s.metrics.Messages += v.local.messages
		s.metrics.Words += v.local.words
		if v.local.maxWords > s.metrics.MaxWordsPerMsg {
			s.metrics.MaxWordsPerMsg = v.local.maxWords
		}
		v.local = vertexMetrics{}
	}
}

// deliver moves queued messages into the inboxes of receivers lo..hi-1 for
// the given round. The scan is receiver-centric: each receiver walks its own
// ports in ascending neighbor order and claims the matching outbox slot on
// the sender side, so (a) inbox order is canonically ascending by sender ID
// regardless of which worker delivers, and (b) no two workers ever touch the
// same outbox slot (each slot has exactly one receiver).
func (s *Simulator) deliver(round int, verts []*Vertex, inboxes [][]Incoming, lo, hi int) {
	for id := lo; id < hi; id++ {
		v := verts[id]
		inbox := inboxes[id][:0]
		for p, from := range v.ports {
			fv := verts[from]
			slot := v.rports[p]
			msg := fv.outbox[slot]
			if msg == nil {
				continue
			}
			fv.outbox[slot] = nil
			if s.cfg.FaultRate > 0 && faultCoin(s.cfg.Seed, round, from, id) < s.cfg.FaultRate {
				continue // dropped in transit (still counted as sent)
			}
			inbox = append(inbox, Incoming{Port: p, From: from, Msg: msg})
		}
		inboxes[id] = inbox
	}
}

// Run executes the algorithm produced by newHandler on every vertex until
// all halt (and all queued messages are delivered) or MaxRounds is exceeded.
// It returns the per-vertex outputs and aggregated metrics. Run may be
// called repeatedly; each call is an independent execution (metrics reset).
func (s *Simulator) Run(newHandler func(v *Vertex) Handler) (Result, error) {
	n := s.g.N()
	s.metrics = Metrics{}
	verts := make([]*Vertex, n)
	handlers := make([]Handler, n)
	for id := 0; id < n; id++ {
		nbrs := s.g.Neighbors(id)
		verts[id] = &Vertex{
			sim:    s,
			id:     id,
			ports:  nbrs,
			outbox: make([]Message, len(nbrs)),
			rng:    rand.New(rand.NewSource(s.cfg.Seed*1_000_003 + int64(id))),
		}
	}
	// Precompute reverse ports: rports[p] is where vertex ports[p] keeps its
	// outbox slot toward this vertex. Delivery claims slots through this
	// table instead of a per-message binary search.
	for id := 0; id < n; id++ {
		v := verts[id]
		v.rports = make([]int, len(v.ports))
		for p, u := range v.ports {
			v.rports[p] = verts[u].PortOf(id)
		}
	}
	for id := 0; id < n; id++ {
		handlers[id] = newHandler(verts[id])
	}

	exec := newExecutor(s.cfg.Workers, n)
	if exec != nil {
		defer exec.close()
	}
	// runPhase executes fn over the full vertex range, sharded across the
	// worker pool when one exists. fn(lo, hi) must only touch state owned by
	// vertices lo..hi-1 (plus the disjoint outbox slots deliver claims).
	runPhase := func(fn func(lo, hi int)) {
		if exec == nil {
			fn(0, n)
			return
		}
		exec.phase(fn)
	}

	// Init stays sequential: it runs once, and construction-time state is
	// where test harnesses legitimately share setup across vertices.
	for id := 0; id < n; id++ {
		handlers[id].Init(verts[id])
	}
	s.mergeMetrics(verts)

	inboxes := make([][]Incoming, n)
	for round := 1; ; round++ {
		if allHalted(verts) && !anyPending(verts) {
			break
		}
		if round > s.cfg.MaxRounds {
			return Result{Metrics: s.metrics}, fmt.Errorf("%w (limit %d)", ErrMaxRounds, s.cfg.MaxRounds)
		}
		r := round
		runPhase(func(lo, hi int) { s.deliver(r, verts, inboxes, lo, hi) })
		s.metrics.Rounds++
		runPhase(func(lo, hi int) {
			for id := lo; id < hi; id++ {
				if verts[id].halted {
					continue
				}
				handlers[id].Round(verts[id], r, inboxes[id])
			}
		})
		s.mergeMetrics(verts)
	}
	outs := make([]any, n)
	for id := 0; id < n; id++ {
		outs[id] = verts[id].output
	}
	return Result{Metrics: s.metrics, Outputs: outs}, nil
}

// RunFuncs is a convenience for algorithms expressible as closures.
type RunFuncs struct {
	InitFn  func(v *Vertex)
	RoundFn func(v *Vertex, round int, recv []Incoming)
}

// Init implements Handler.
func (r RunFuncs) Init(v *Vertex) {
	if r.InitFn != nil {
		r.InitFn(v)
	}
}

// Round implements Handler.
func (r RunFuncs) Round(v *Vertex, round int, recv []Incoming) {
	if r.RoundFn != nil {
		r.RoundFn(v, round, recv)
	}
}

var _ Handler = RunFuncs{}
