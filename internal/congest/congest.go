// Package congest implements a synchronous message-passing simulator for the
// LOCAL and CONGEST models of distributed computing, the execution substrate
// for every distributed algorithm in this repository.
//
// Model semantics follow the paper's Section 1: vertices host processors and
// operate in synchronized rounds; in each round every vertex may send one
// message to each of its neighbors, receives the messages its neighbors sent
// this round, and performs arbitrary local computation. In the LOCAL model
// messages are unbounded; in the CONGEST model each message is limited to
// O(log n) bits.
//
// Messages are tuples of integer words. In CONGEST mode a message may carry
// at most Config.MaxWords words and each word must satisfy |w| ≤ max(n², 2¹⁶)
// — i.e. a word is Θ(log n) bits — so a message is Θ(log n) bits total.
// Violations panic: an algorithm that breaks the model is a programming
// error, not a runtime condition.
//
// Execution is deterministic given Config.Seed: every vertex receives its own
// seeded PRNG stream, and vertices are always processed in ID order.
package congest

import (
	"errors"
	"fmt"
	"math/rand"

	"expandergap/internal/graph"
)

// Model selects the message-size regime.
type Model int

const (
	// CONGEST limits messages to Θ(log n) bits.
	CONGEST Model = iota + 1
	// LOCAL allows unbounded messages.
	LOCAL
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is a tuple of integer words exchanged along one edge in one round.
type Message []int64

// Clone returns a copy of m.
func (m Message) Clone() Message { return append(Message(nil), m...) }

// Config parameterizes a simulation run.
type Config struct {
	// Model is CONGEST or LOCAL. Zero value defaults to CONGEST.
	Model Model
	// MaxWords is the CONGEST per-message word budget. Zero defaults to 8.
	MaxWords int
	// MaxRounds aborts the run when exceeded. Zero defaults to 1 << 20.
	MaxRounds int
	// Seed drives all vertex PRNGs.
	Seed int64
	// FaultRate, when positive, drops each message independently with this
	// probability before delivery. The CONGEST model itself is fault-free;
	// this knob exists to exercise the paper's §2.3 failure-detection paths
	// (lost routing tokens must surface as detectable delivery failures,
	// never as wrong answers). Dropped messages still count in Metrics
	// (they were sent).
	FaultRate float64
}

func (c Config) withDefaults() Config {
	if c.Model == 0 {
		c.Model = CONGEST
	}
	if c.MaxWords == 0 {
		c.MaxWords = 8
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 20
	}
	return c
}

// Incoming is a message received from the neighbor on the given port.
type Incoming struct {
	// Port identifies the local port the message arrived on.
	Port int
	// From is the sender's vertex ID (KT1 knowledge: after one round every
	// vertex would know its neighbors' IDs anyway, so the simulator provides
	// them up front).
	From int
	// Msg is the received message.
	Msg Message
}

// Handler is the per-vertex algorithm. One Handler instance exists per
// vertex; it keeps the vertex's local state.
type Handler interface {
	// Init runs before the first round. The vertex may send messages (they
	// are delivered in round 1) but cannot receive anything yet.
	Init(v *Vertex)
	// Round runs once per synchronized round with the messages received
	// this round. Sends are delivered next round. round counts from 1.
	Round(v *Vertex, round int, recv []Incoming)
}

// Vertex is the per-vertex view of the network handed to handlers. Handlers
// may only use the exposed methods; the global graph is not reachable from
// it, preserving the locality of the model.
type Vertex struct {
	sim    *Simulator
	id     int
	ports  []int // neighbor IDs by port, ascending
	outbox []Message
	halted bool
	rng    *rand.Rand
	output any
}

// ID returns this vertex's identifier (0..n-1).
func (v *Vertex) ID() int { return v.id }

// N returns the number of vertices in the network (global knowledge of n is
// the standard assumption in both models).
func (v *Vertex) N() int { return v.sim.g.N() }

// Degree returns the number of ports.
func (v *Vertex) Degree() int { return len(v.ports) }

// NeighborID returns the vertex ID of the neighbor on the given port.
func (v *Vertex) NeighborID(port int) int { return v.ports[port] }

// PortOf returns the port leading to neighbor id, or -1 if id is not a
// neighbor.
func (v *Vertex) PortOf(id int) int {
	lo, hi := 0, len(v.ports)
	for lo < hi {
		mid := (lo + hi) / 2
		if v.ports[mid] < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.ports) && v.ports[lo] == id {
		return lo
	}
	return -1
}

// Rand returns this vertex's private deterministic PRNG.
func (v *Vertex) Rand() *rand.Rand { return v.rng }

// Send queues msg for delivery to the neighbor on port in the next round.
// Sending twice to the same port in one round, sending on an invalid port,
// or exceeding the CONGEST budget panics.
func (v *Vertex) Send(port int, msg Message) {
	if port < 0 || port >= len(v.ports) {
		panic(fmt.Sprintf("congest: vertex %d send on invalid port %d (degree %d)", v.id, port, len(v.ports)))
	}
	if v.outbox[port] != nil {
		panic(fmt.Sprintf("congest: vertex %d sent twice on port %d in one round", v.id, port))
	}
	v.sim.checkMessage(v.id, msg)
	if len(msg) == 0 {
		// Distinguish "send empty message" from "no send".
		msg = Message{}
	}
	v.outbox[port] = msg
	v.sim.metrics.Messages++
	v.sim.metrics.Words += int64(len(msg))
}

// Broadcast sends msg to every neighbor (ports that already have a queued
// message this round are skipped).
func (v *Vertex) Broadcast(msg Message) {
	for p := range v.ports {
		if v.outbox[p] == nil {
			v.Send(p, msg.Clone())
		}
	}
}

// Halt marks the vertex as finished. A halted vertex stops receiving Round
// calls; its queued sends are still delivered. The simulation ends when all
// vertices have halted.
func (v *Vertex) Halt() { v.halted = true }

// Halted reports whether the vertex halted.
func (v *Vertex) Halted() bool { return v.halted }

// SetOutput records the vertex's final output, retrievable from Result.
func (v *Vertex) SetOutput(out any) { v.output = out }

// Metrics aggregates communication costs of a run.
type Metrics struct {
	// Rounds is the number of synchronized rounds executed.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// Words is the total number of message words sent.
	Words int64
	// MaxWordsPerMsg is the largest single message observed (interesting in
	// LOCAL mode where it is unbounded).
	MaxWordsPerMsg int
}

// BitsPerWord returns the model-level size of one word for an n-vertex
// network: ⌈log₂(max(n,2))⌉ bits, i.e. Θ(log n).
func BitsPerWord(n int) int {
	bits := 1
	for v := 1; v < n; v *= 2 {
		bits++
	}
	if bits < 2 {
		bits = 2
	}
	return bits
}

// TotalBits returns the total bits sent during the run under the word-size
// accounting for an n-vertex network.
func (m Metrics) TotalBits(n int) int64 {
	return m.Words * int64(BitsPerWord(n))
}

// Add accumulates other into m (for multi-phase algorithms).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Messages += other.Messages
	m.Words += other.Words
	if other.MaxWordsPerMsg > m.MaxWordsPerMsg {
		m.MaxWordsPerMsg = other.MaxWordsPerMsg
	}
}

// Result is the outcome of a simulation run.
type Result struct {
	Metrics Metrics
	// Outputs holds each vertex's SetOutput value (nil if never set),
	// indexed by vertex ID.
	Outputs []any
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("congest: exceeded maximum rounds without termination")

// Simulator executes distributed algorithms on a fixed graph.
type Simulator struct {
	g        *graph.Graph
	cfg      Config
	metrics  Metrics
	wordCap  int64
	faultRng *rand.Rand
}

// NewSimulator returns a Simulator for g under cfg.
func NewSimulator(g *graph.Graph, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	cap := int64(g.N()) * int64(g.N())
	if cap < 1<<16 {
		cap = 1 << 16
	}
	s := &Simulator{g: g, cfg: cfg, wordCap: cap}
	if cfg.FaultRate > 0 {
		s.faultRng = rand.New(rand.NewSource(cfg.Seed*7_777_777 + 13))
	}
	return s
}

// Graph returns the underlying network graph (for harness code; handlers
// never see it).
func (s *Simulator) Graph() *graph.Graph { return s.g }

// Config returns the effective configuration.
func (s *Simulator) Config() Config { return s.cfg }

func (s *Simulator) checkMessage(sender int, msg Message) {
	if len(msg) > s.metrics.MaxWordsPerMsg {
		s.metrics.MaxWordsPerMsg = len(msg)
	}
	if s.cfg.Model == LOCAL {
		return
	}
	if len(msg) > s.cfg.MaxWords {
		panic(fmt.Sprintf("congest: vertex %d sent %d words, CONGEST budget is %d",
			sender, len(msg), s.cfg.MaxWords))
	}
	for _, w := range msg {
		if w > s.wordCap || w < -s.wordCap {
			panic(fmt.Sprintf("congest: vertex %d sent word %d exceeding magnitude cap %d",
				sender, w, s.wordCap))
		}
	}
}

// Run executes the algorithm produced by newHandler on every vertex until
// all halt or MaxRounds is exceeded. It returns the per-vertex outputs and
// aggregated metrics. Run may be called repeatedly; each call is an
// independent execution (metrics reset).
func (s *Simulator) Run(newHandler func(v *Vertex) Handler) (Result, error) {
	n := s.g.N()
	s.metrics = Metrics{}
	if s.cfg.FaultRate > 0 {
		s.faultRng = rand.New(rand.NewSource(s.cfg.Seed*7_777_777 + 13))
	}
	verts := make([]*Vertex, n)
	handlers := make([]Handler, n)
	for id := 0; id < n; id++ {
		nbrs := s.g.Neighbors(id)
		verts[id] = &Vertex{
			sim:    s,
			id:     id,
			ports:  nbrs,
			outbox: make([]Message, len(nbrs)),
			rng:    rand.New(rand.NewSource(s.cfg.Seed*1_000_003 + int64(id))),
		}
	}
	for id := 0; id < n; id++ {
		handlers[id] = newHandler(verts[id])
	}
	for id := 0; id < n; id++ {
		handlers[id].Init(verts[id])
	}
	inboxes := make([][]Incoming, n)
	allHalted := func() bool {
		for _, v := range verts {
			if !v.halted {
				return false
			}
		}
		return true
	}
	for round := 1; ; round++ {
		if allHalted() {
			break
		}
		if round > s.cfg.MaxRounds {
			return Result{Metrics: s.metrics}, fmt.Errorf("%w (limit %d)", ErrMaxRounds, s.cfg.MaxRounds)
		}
		// Deliver: move outboxes into inboxes.
		anyMsg := false
		for id := 0; id < n; id++ {
			inboxes[id] = inboxes[id][:0]
		}
		for id := 0; id < n; id++ {
			v := verts[id]
			for port, msg := range v.outbox {
				if msg == nil {
					continue
				}
				anyMsg = true
				if s.faultRng != nil && s.faultRng.Float64() < s.cfg.FaultRate {
					v.outbox[port] = nil // dropped in transit
					continue
				}
				to := v.ports[port]
				toV := verts[to]
				inboxes[to] = append(inboxes[to], Incoming{
					Port: toV.PortOf(id),
					From: id,
					Msg:  msg,
				})
				v.outbox[port] = nil
			}
		}
		_ = anyMsg
		s.metrics.Rounds++
		for id := 0; id < n; id++ {
			if verts[id].halted {
				continue
			}
			handlers[id].Round(verts[id], round, inboxes[id])
		}
	}
	outs := make([]any, n)
	for id := 0; id < n; id++ {
		outs[id] = verts[id].output
	}
	return Result{Metrics: s.metrics, Outputs: outs}, nil
}

// RunFuncs is a convenience for algorithms expressible as closures.
type RunFuncs struct {
	InitFn  func(v *Vertex)
	RoundFn func(v *Vertex, round int, recv []Incoming)
}

// Init implements Handler.
func (r RunFuncs) Init(v *Vertex) {
	if r.InitFn != nil {
		r.InitFn(v)
	}
}

// Round implements Handler.
func (r RunFuncs) Round(v *Vertex, round int, recv []Incoming) {
	if r.RoundFn != nil {
		r.RoundFn(v, round, recv)
	}
}

var _ Handler = RunFuncs{}
