package congest

import (
	"errors"
	"fmt"
	"math/rand"

	"expandergap/internal/graph"
)

// Model selects the message-size regime.
type Model int

const (
	// CONGEST limits messages to Θ(log n) bits.
	CONGEST Model = iota + 1
	// LOCAL allows unbounded messages.
	LOCAL
)

// String implements fmt.Stringer.
func (m Model) String() string {
	switch m {
	case CONGEST:
		return "CONGEST"
	case LOCAL:
		return "LOCAL"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Message is a tuple of integer words exchanged along one edge in one round.
type Message []int64

// Clone returns a copy of m.
func (m Message) Clone() Message { return append(Message(nil), m...) }

// Config parameterizes a simulation run.
type Config struct {
	// Model is CONGEST or LOCAL. Zero value defaults to CONGEST.
	Model Model
	// MaxWords is the CONGEST per-message word budget. Zero defaults to 8.
	MaxWords int
	// MaxRounds aborts the run when exceeded. Zero defaults to 1 << 20.
	MaxRounds int
	// Seed drives all vertex PRNGs.
	Seed int64
	// FaultRate, when positive, drops each message independently with this
	// probability before delivery. The CONGEST model itself is fault-free;
	// this knob exists to exercise the paper's §2.3 failure-detection paths
	// (lost routing tokens must surface as detectable delivery failures,
	// never as wrong answers). Dropped messages still count in Metrics
	// (they were sent). Each drop coin is a pure hash of (Seed, round,
	// sender, receiver), so whether one message drops never depends on what
	// other messages exist — fault patterns are stable under refactors and
	// under the parallel executor.
	FaultRate float64
	// Workers selects the executor. 0 (the default) runs the canonical
	// sequential loop; k ≥ 1 shards each round's delivery and compute
	// phases across k worker goroutines. Results (outputs and metrics) are
	// bit-for-bit identical across all Workers values for a fixed Seed,
	// provided handlers keep their state per-vertex (see the package doc).
	Workers int
	// Obs, when non-nil, receives phase-attributed per-round accounting
	// (and, if enabled on the Observer, a JSONL trace stream). The observer
	// is passive: it never affects message contents, PRNG streams, or
	// termination, so outputs and Metrics are identical with or without it.
	// Several simulators may share one Observer; a pipeline that chains
	// them accumulates a single coherent phase tree. See trace.go and
	// DESIGN.md §3.9.
	Obs *Observer
}

func (c Config) withDefaults() Config {
	if c.Model == 0 {
		c.Model = CONGEST
	}
	if c.MaxWords == 0 {
		c.MaxWords = 8
	}
	if c.MaxRounds == 0 {
		c.MaxRounds = 1 << 20
	}
	return c
}

// Incoming is a message received from the neighbor on the given port.
type Incoming struct {
	// Port identifies the local port the message arrived on.
	Port int
	// From is the sender's vertex ID (KT1 knowledge: after one round every
	// vertex would know its neighbors' IDs anyway, so the simulator provides
	// them up front).
	From int
	// Msg is the received message. It is valid only until the receiving
	// Round call returns; Clone it to retain it across rounds.
	Msg Message
}

// Handler is the per-vertex algorithm. One Handler instance exists per
// vertex; it keeps the vertex's local state.
type Handler interface {
	// Init runs before the first round. The vertex may send messages (they
	// are delivered in round 1) but cannot receive anything yet.
	Init(v *Vertex)
	// Round runs once per synchronized round with the messages received
	// this round. Sends are delivered next round. round counts from 1.
	Round(v *Vertex, round int, recv []Incoming)
}

// vertexMetrics is a per-vertex metrics shard. Sends and halts account here,
// with no shared-state contention; shards are drained into the run's Metrics
// and termination counters at each round barrier, so the aggregate is exact
// at every barrier and identical whether rounds execute sequentially or in
// parallel.
type vertexMetrics struct {
	messages int64
	words    int64
	maxWords int
	halts    int
	// hist counts this shard's sends by message-size bucket. Maintained
	// only when an Observer is attached (Send gates on sim.obs != nil).
	hist [histBuckets]int64
}

// msgArena is one half of a vertex's double-buffered message arena. Buffers
// handed out in round r (parity r&1) are reclaimed when the same parity
// comes around again in round r+2 — by which time every receiver's Round
// call of round r+1 has returned, so no live reference remains.
type msgArena struct {
	buf   []int64
	used  int
	round int // last round this arena served; -1 when fresh
}

// Vertex is the per-vertex view of the network handed to handlers. Handlers
// may only use the exposed methods; the global graph is not reachable from
// it, preserving the locality of the model.
//
// Vertices live in one contiguous value slice; their ports, reverse ports,
// and outbox slots are sub-slices of shared flat arrays (the CSR layout of
// DESIGN.md §3.8).
type Vertex struct {
	sim       *Simulator
	id        int
	ports     []int32   // neighbor IDs by port, ascending (view into flat array)
	rports    []int32   // rports[p] is the port on neighbor ports[p] leading back here
	outbox    []Message // view into the shared flat outbox array
	halted    bool
	asleep    bool // quiescent: skipped by the scheduler until woken
	wakeAt    int  // absolute round of the pending SleepUntil timer; 0 = none
	rng       *rand.Rand
	rngSeeded bool // lazily (re)seeded on first Rand() per execution
	output    any
	local     vertexMetrics
	arenas    [2]msgArena
}

// ID returns this vertex's identifier (0..n-1).
func (v *Vertex) ID() int { return v.id }

// N returns the number of vertices in the network (global knowledge of n is
// the standard assumption in both models).
func (v *Vertex) N() int { return v.sim.g.N() }

// Degree returns the number of ports.
func (v *Vertex) Degree() int { return len(v.ports) }

// NeighborID returns the vertex ID of the neighbor on the given port.
func (v *Vertex) NeighborID(port int) int { return int(v.ports[port]) }

// PortOf returns the port leading to neighbor id, or -1 if id is not a
// neighbor.
func (v *Vertex) PortOf(id int) int {
	lo, hi := 0, len(v.ports)
	for lo < hi {
		mid := (lo + hi) / 2
		if int(v.ports[mid]) < id {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(v.ports) && int(v.ports[lo]) == id {
		return lo
	}
	return -1
}

// Rand returns this vertex's private deterministic PRNG.
func (v *Vertex) Rand() *rand.Rand {
	if !v.rngSeeded {
		// Seeding the lagged-Fibonacci source is expensive (hundreds of
		// words of state), so both the allocation and the (re)seed are
		// deferred until a handler actually draws randomness; workloads
		// that never call Rand pay nothing. Seed resets the source to the
		// exact stream rand.NewSource would produce, so lazy seeding is
		// invisible to results.
		if v.rng == nil {
			v.rng = rand.New(rand.NewSource(v.sim.cfg.Seed*1_000_003 + int64(v.id)))
		} else {
			v.rng.Seed(v.sim.cfg.Seed*1_000_003 + int64(v.id))
		}
		v.rngSeeded = true
	}
	return v.rng
}

// MsgBuf returns a zeroed Message of the given word count backed by this
// vertex's recycling arena. The buffer may be filled and passed to Send /
// Broadcast like any Message; it is reclaimed two rounds later, strictly
// after every receiver's Round call that could observe it has returned
// (receivers Clone to retain). Steady-state use is allocation-free once the
// arena has grown to the vertex's peak per-round demand.
func (v *Vertex) MsgBuf(words int) Message {
	a := &v.arenas[v.sim.curRound&1]
	if a.round != v.sim.curRound {
		a.round = v.sim.curRound
		a.used = 0
	}
	if a.used+words > len(a.buf) {
		// Grow into a fresh buffer; Messages already handed out this round
		// keep the old backing array alive until their receivers finish.
		size := 2 * len(a.buf)
		if size < words {
			size = words
		}
		if size < 64 {
			size = 64
		}
		a.buf = make([]int64, size)
		a.used = 0
	}
	m := a.buf[a.used : a.used+words : a.used+words]
	a.used += words
	for i := range m {
		m[i] = 0
	}
	return Message(m)
}

// Send queues msg for delivery to the neighbor on port in the next round.
// Sending twice to the same port in one round, sending on an invalid port,
// or exceeding the CONGEST budget panics.
func (v *Vertex) Send(port int, msg Message) {
	if port < 0 || port >= len(v.ports) {
		panic(fmt.Sprintf("congest: vertex %d send on invalid port %d (degree %d)", v.id, port, len(v.ports)))
	}
	if v.outbox[port] != nil {
		panic(fmt.Sprintf("congest: vertex %d sent twice on port %d in one round", v.id, port))
	}
	if len(msg) > v.local.maxWords {
		v.local.maxWords = len(msg)
	}
	if v.sim.obs != nil {
		v.local.hist[histBucket(len(msg))]++
	}
	v.sim.checkMessage(v.id, msg)
	if len(msg) == 0 {
		// Distinguish "send empty message" from "no send".
		msg = Message{}
	}
	v.outbox[port] = msg
	v.local.messages++
	v.local.words += int64(len(msg))
}

// SendWords queues an arena-backed message with the given words on port: the
// allocation-free equivalent of Send(port, Message{words...}).
func (v *Vertex) SendWords(port int, words ...int64) {
	buf := v.MsgBuf(len(words))
	copy(buf, words)
	v.Send(port, buf)
}

// Broadcast sends msg to every neighbor (ports that already have a queued
// message this round are skipped). Each neighbor receives its own copy.
func (v *Vertex) Broadcast(msg Message) {
	for p := range v.ports {
		if v.outbox[p] == nil {
			v.Send(p, msg.Clone())
		}
	}
}

// BroadcastWords sends one arena-backed message with the given words to
// every neighbor whose port is free this round: the allocation-free
// equivalent of Broadcast(Message{words...}). All receivers observe the same
// backing buffer, which is safe under the arena contract (received messages
// are read-only and expire when Round returns).
func (v *Vertex) BroadcastWords(words ...int64) {
	buf := v.MsgBuf(len(words))
	copy(buf, words)
	for p := range v.ports {
		if v.outbox[p] == nil {
			v.Send(p, buf)
		}
	}
}

// Halt marks the vertex as finished. A halted vertex stops receiving Round
// calls; its queued sends are still delivered (the run executes delivery
// rounds until every outbox is empty). The simulation ends when all vertices
// have halted and all queued messages have been delivered.
func (v *Vertex) Halt() {
	if !v.halted {
		v.halted = true
		v.local.halts++
	}
}

// Halted reports whether the vertex halted.
func (v *Vertex) Halted() bool { return v.halted }

// Sleep declares quiescence: the vertex stops receiving Round calls until a
// message arrives on any of its ports, at which point it is re-woken
// automatically (in the round the message is delivered, with that message in
// recv). A message dropped by fault injection does not wake the vertex —
// wakes are decided after the fault filter, so sleeping never changes what a
// vertex observes. Sleeping is only legal when the handler would otherwise do
// nothing observable in the skipped rounds: no sends, no Rand() draws, no
// state changes (see DESIGN.md §3.10). Queued sends from the current round
// are still delivered. Sleep cancels a pending SleepUntil timer and is a
// no-op on a halted vertex. Unlike Halt, Sleep is reversible and does not
// count toward termination: a run in which every non-halted vertex sleeps
// forever with no pending messages or timers fails with ErrDeadlock rather
// than spinning to MaxRounds.
func (v *Vertex) Sleep() {
	if v.halted {
		return
	}
	v.asleep = true
	v.wakeAt = 0
}

// SleepUntil is Sleep with a self-wake timer: the vertex sleeps and is
// re-woken in the given absolute round (as passed to Round) even if no
// message arrives first; a message still wakes it early, canceling the
// timer. It is the tool for algorithms that count rounds while idle — a
// fixed-schedule phase can sleep through its idle stretch and wake exactly
// on its next scheduled round. A round at or before the next round is a
// no-op (the vertex simply stays awake), as is calling it on a halted
// vertex.
func (v *Vertex) SleepUntil(round int) {
	if v.halted || round <= v.sim.curRound+1 {
		return
	}
	v.asleep = true
	v.wakeAt = round
}

// Asleep reports whether the vertex is currently sleeping.
func (v *Vertex) Asleep() bool { return v.asleep }

// SetOutput records the vertex's final output, retrievable from Result.
func (v *Vertex) SetOutput(out any) { v.output = out }

// Metrics aggregates communication costs of a run.
type Metrics struct {
	// Rounds is the number of synchronized rounds executed.
	Rounds int
	// Messages is the total number of messages sent.
	Messages int64
	// Words is the total number of message words sent.
	Words int64
	// MaxWordsPerMsg is the largest single message observed (interesting in
	// LOCAL mode where it is unbounded).
	MaxWordsPerMsg int
}

// BitsPerWord returns the model-level size of one word for an n-vertex
// network: ⌈log₂(max(n,2))⌉ bits, i.e. Θ(log n).
func BitsPerWord(n int) int {
	if n < 2 {
		n = 2
	}
	bits := 0
	for v := 1; v < n; v *= 2 {
		bits++
	}
	if bits < 1 {
		bits = 1
	}
	return bits
}

// TotalBits returns the total bits sent during the run under the word-size
// accounting for an n-vertex network.
func (m Metrics) TotalBits(n int) int64 {
	return m.Words * int64(BitsPerWord(n))
}

// Add accumulates other into m (for multi-phase algorithms).
func (m *Metrics) Add(other Metrics) {
	m.Rounds += other.Rounds
	m.Messages += other.Messages
	m.Words += other.Words
	if other.MaxWordsPerMsg > m.MaxWordsPerMsg {
		m.MaxWordsPerMsg = other.MaxWordsPerMsg
	}
}

// Result is the outcome of a simulation run.
type Result struct {
	Metrics Metrics
	// Outputs holds each vertex's SetOutput value (nil if never set),
	// indexed by vertex ID.
	Outputs []any
}

// ErrMaxRounds is returned when a run exceeds Config.MaxRounds.
var ErrMaxRounds = errors.New("congest: exceeded maximum rounds without termination")

// ErrDeadlock is returned when no vertex can ever step again — every
// non-halted vertex is asleep with no messages in flight and no SleepUntil
// timer pending — yet the run has not terminated. This is always an
// algorithm bug (a Sleep with no possible wake); the sparse scheduler
// detects it in O(1) instead of spinning empty rounds to MaxRounds.
var ErrDeadlock = errors.New("congest: all non-halted vertices asleep with no pending messages or timers")

// Simulator executes distributed algorithms on a fixed graph.
//
// The CSR vertex layout and all per-run buffers are cached on the Simulator
// and reused, so repeated Run calls on one Simulator cost only the handler
// construction the caller performs. A Simulator supports one execution at a
// time; it is not safe for concurrent use.
type Simulator struct {
	g       *graph.Graph
	cfg     Config
	metrics Metrics
	wordCap int64

	// Observability (nil when Config.Obs is unset; see trace.go). roundHist
	// and roundMax collect the current round's message-size histogram and
	// largest message from the vertex shards at the barrier; recordRound
	// drains them. wordBits caches BitsPerWord(n) for bit attribution.
	obs       *Observer
	wordBits  int
	roundHist [histBuckets]int64
	roundMax  int

	// O(1) termination tracking (DESIGN.md §3.8): haltedCount is the number
	// of vertices that have halted, pendingMsgs the number of messages
	// queued by the most recent Init/compute phase. Both are maintained
	// from per-vertex shards merged at the round barrier, and are exact
	// there because delivery drains every outbox every round.
	haltedCount int
	pendingMsgs int64
	// curRound is the round whose compute (or Init, round 0) phase is
	// executing; read-only during phases, it selects the arena parity.
	curRound int

	// CSR layout, built once per Simulator and shared by all executions:
	// vertex v's ports/rports/outbox/inbox views are the flat-array ranges
	// [off[v], off[v+1]).
	off       []int32
	portsFlat []int32
	rportFlat []int32

	// Reusable per-run state.
	verts      []Vertex
	outboxFlat []Message
	inboxFlat  []Incoming
	inboxes    [][]Incoming
	handlers   []Handler
	active     bool

	// Sparse activation scheduler (sched.go, DESIGN.md §3.10). All worklists
	// are preallocated to capacity n by buildLayout and rebuilt at round
	// barriers, keeping the steady-state round loop allocation-free while
	// costing O(active + messages) per round instead of O(n + m).
	awake        []int32   // vertices eligible to step next round, ascending
	stepList     []int32   // vertices stepped this round, ascending
	deliverList  []int32   // vertices with queued incoming messages, ascending
	deliverStamp []int     // dedup stamp per vertex: delivery round it was listed for
	pendingCount []int32   // messages queued to each deliverList vertex: the delivery balance weight
	inboxRound   []int     // round whose messages inboxes[v] currently holds
	timers       timerHeap // pending SleepUntil wakes, lazily deleted
	timerStamp   []int     // latest wake round pushed per vertex, to dedup re-sleeps
}

// NewSimulator returns a Simulator for g under cfg.
func NewSimulator(g *graph.Graph, cfg Config) *Simulator {
	cfg = cfg.withDefaults()
	wordCap := int64(g.N()) * int64(g.N())
	if wordCap < 1<<16 {
		wordCap = 1 << 16
	}
	return &Simulator{g: g, cfg: cfg, wordCap: wordCap, obs: cfg.Obs, wordBits: BitsPerWord(g.N())}
}

// Graph returns the underlying network graph (for harness code; handlers
// never see it).
func (s *Simulator) Graph() *graph.Graph { return s.g }

// Config returns the effective configuration.
func (s *Simulator) Config() Config { return s.cfg }

// checkMessage validates msg against the model. It must stay free of
// Simulator mutation: it runs concurrently from all workers.
func (s *Simulator) checkMessage(sender int, msg Message) {
	if s.cfg.Model == LOCAL {
		return
	}
	if len(msg) > s.cfg.MaxWords {
		panic(fmt.Sprintf("congest: vertex %d sent %d words, CONGEST budget is %d",
			sender, len(msg), s.cfg.MaxWords))
	}
	for _, w := range msg {
		if w > s.wordCap || w < -s.wordCap {
			panic(fmt.Sprintf("congest: vertex %d sent word %d exceeding magnitude cap %d",
				sender, w, s.wordCap))
		}
	}
}

// faultCoin returns a uniform [0,1) coin for the message delivered to
// receiver `to` from sender `from` in the given round, as a pure
// splitmix64-style hash of (seed, round, from, to). Each message's drop
// decision therefore depends only on its own coordinates — never on how many
// other messages exist or in which order delivery scans them.
func faultCoin(seed int64, round, from, to int) float64 {
	h := uint64(seed) ^ 0x9e3779b97f4a7c15
	for _, w := range [3]uint64{uint64(round), uint64(from), uint64(to)} {
		h += w + 0x9e3779b97f4a7c15
		h ^= h >> 30
		h *= 0xbf58476d1ce4e5b9
		h ^= h >> 27
		h *= 0x94d049bb133111eb
		h ^= h >> 31
	}
	return float64(h>>11) / (1 << 53)
}

// buildLayout computes the CSR vertex layout (flat ports, reverse ports, and
// per-vertex offsets) once per Simulator. Reverse ports are derived with a
// counting pass instead of per-edge binary search: visiting vertices in
// ascending ID order, the position of id in neighbor u's (sorted) port list
// is exactly the number of u's neighbors already visited.
func (s *Simulator) buildLayout() {
	if s.off != nil {
		return
	}
	n := s.g.N()
	s.off = make([]int32, n+1)
	for v := 0; v < n; v++ {
		s.off[v+1] = s.off[v] + int32(s.g.Degree(v))
	}
	total := int(s.off[n])
	s.portsFlat = make([]int32, total)
	s.rportFlat = make([]int32, total)
	cursor := make([]int32, n)
	for v := 0; v < n; v++ {
		i := s.off[v]
		s.g.ForEachNeighbor(v, func(u, _ int) {
			s.portsFlat[i] = int32(u)
			s.rportFlat[i] = cursor[u]
			cursor[u]++
			i++
		})
	}
	s.outboxFlat = make([]Message, total)
	s.inboxFlat = make([]Incoming, total)
	s.verts = make([]Vertex, n)
	s.inboxes = make([][]Incoming, n)
	s.handlers = make([]Handler, n)
	s.awake = make([]int32, 0, n)
	s.stepList = make([]int32, 0, n)
	s.deliverList = make([]int32, 0, n)
	s.deliverStamp = make([]int, n)
	s.pendingCount = make([]int32, n)
	s.inboxRound = make([]int, n)
	s.timers = make(timerHeap, 0, n)
	s.timerStamp = make([]int, n)
	for v := 0; v < n; v++ {
		lo, hi := s.off[v], s.off[v+1]
		s.verts[v] = Vertex{
			sim:    s,
			id:     v,
			ports:  s.portsFlat[lo:hi:hi],
			rports: s.rportFlat[lo:hi:hi],
			outbox: s.outboxFlat[lo:hi:hi],
		}
		s.inboxes[v] = s.inboxFlat[lo:lo:hi]
	}
}

// mergeShards drains every vertex's metrics shard into the run aggregate and
// the termination counters — the dense O(n) merge, used only after the Init
// phase, where any vertex may have sent or halted. Round barriers use the
// sparse mergeStepped (sched.go) instead, which visits only the vertices
// that stepped. pendingMsgs is exact here because delivery drains every
// outbox every round, so the only queued messages are the ones sent since
// the previous barrier.
func (s *Simulator) mergeShards() {
	var phaseSends int64
	for i := range s.verts {
		v := &s.verts[i]
		s.metrics.Messages += v.local.messages
		s.metrics.Words += v.local.words
		phaseSends += v.local.messages
		s.haltedCount += v.local.halts
		if v.local.maxWords > s.metrics.MaxWordsPerMsg {
			s.metrics.MaxWordsPerMsg = v.local.maxWords
		}
		if s.obs != nil && v.local.messages != 0 {
			if v.local.maxWords > s.roundMax {
				s.roundMax = v.local.maxWords
			}
			for b, c := range v.local.hist {
				if c != 0 {
					s.roundHist[b] += c
				}
			}
		}
		v.local = vertexMetrics{}
	}
	s.pendingMsgs = phaseSends
}

// deliver moves queued messages into the inboxes of the deliverList
// receivers at positions lo..hi-1 for the given round. The scan is
// receiver-centric: each receiver walks its own ports in ascending neighbor
// order and claims the matching outbox slot on the sender side, so (a) inbox
// order is canonically ascending by sender ID regardless of which worker
// delivers, and (b) no two workers ever touch the same outbox slot (each
// slot has exactly one receiver, and each receiver appears once in the
// deduped deliverList). Every queued message is drained here — deliverList
// covers all receivers of the previous phase's sends by construction — which
// is what keeps pendingMsgs exact at barriers. inboxRound is stamped even
// when every message to a receiver is dropped by fault injection, so stale
// inbox contents from an earlier round can never be re-observed.
func (s *Simulator) deliver(round, lo, hi int) {
	for i := lo; i < hi; i++ {
		id := int(s.deliverList[i])
		v := &s.verts[id]
		inbox := s.inboxes[id][:0]
		for p, from := range v.ports {
			fv := &s.verts[from]
			slot := v.rports[p]
			msg := fv.outbox[slot]
			if msg == nil {
				continue
			}
			fv.outbox[slot] = nil
			if s.cfg.FaultRate > 0 && faultCoin(s.cfg.Seed, round, int(from), id) < s.cfg.FaultRate {
				continue // dropped in transit (still counted as sent)
			}
			inbox = append(inbox, Incoming{Port: p, From: int(from), Msg: msg})
		}
		s.inboxes[id] = inbox
		s.inboxRound[id] = round
	}
}

// Execution is one in-flight run of an algorithm on a Simulator, created by
// Start. Step advances it one synchronized round at a time; Finish collects
// the result. Run wraps the three for the common case. The Step path
// performs no heap allocations in the steady state, which is what the
// substrate benchmarks measure.
type Execution struct {
	s         *Simulator
	exec      *executor
	round     int
	done      bool
	closed    bool
	deliverFn func(lo, hi int)
	computeFn func(lo, hi int)
	// Balance weights for the parallel executor's chunk boundaries (see
	// parallel.go and DESIGN.md §3.12): delivery is weighted by the number
	// of messages queued to each receiver plus its degree (deliver walks
	// every port and appends every pending message), compute by vertex
	// degree (which bounds both the inbox walk and a handler's send
	// fan-out). Both read only barrier-built state, so boundaries are a
	// pure function of the worklist.
	deliverWt func(i int) int
	computeWt func(i int) int
	// obsPrev is the metrics snapshot at the previous round barrier; the
	// delta against it is what Step attributes to the observer's current
	// phase. Sends queued during Init are included in round 1's delta.
	obsPrev Metrics
}

// Start resets the Simulator's run state, constructs one handler per vertex
// via newHandler, executes the Init phase, and returns the Execution ready
// for its first Step. A Simulator supports one active execution at a time;
// Close (or Finish via Run) releases it.
func (s *Simulator) Start(newHandler func(v *Vertex) Handler) *Execution {
	if s.active {
		panic("congest: Start called while a previous execution is active")
	}
	s.active = true
	s.buildLayout()
	n := s.g.N()
	s.metrics = Metrics{}
	s.haltedCount = 0
	s.pendingMsgs = 0
	s.curRound = 0
	s.roundHist = [histBuckets]int64{}
	s.roundMax = 0
	for i := range s.verts {
		v := &s.verts[i]
		v.halted = false
		v.asleep = false
		v.wakeAt = 0
		v.output = nil
		v.local = vertexMetrics{}
		v.arenas[0].used, v.arenas[0].round = 0, -1
		v.arenas[1].used, v.arenas[1].round = 0, -1
		// Marking the rng stale is enough: Rand() reseeds on first use, so
		// repeated runs stay bit-identical to a fresh Simulator without
		// paying the O(n) reseed cost for workloads that never draw.
		v.rngSeeded = false
		for p := range v.outbox {
			v.outbox[p] = nil
		}
		lo := s.off[i]
		s.inboxes[i] = s.inboxFlat[lo:lo]
	}
	for id := 0; id < n; id++ {
		s.handlers[id] = newHandler(&s.verts[id])
	}

	e := &Execution{s: s, exec: newExecutor(s.cfg.Workers, n)}
	// The two phase closures are built once per execution so the round loop
	// itself allocates nothing. Both operate on worklist index ranges, not
	// vertex ID ranges: delivery walks deliverList, compute walks stepList.
	e.deliverFn = func(lo, hi int) { s.deliver(e.round, lo, hi) }
	e.computeFn = func(lo, hi int) {
		for i := lo; i < hi; i++ {
			id := int(s.stepList[i])
			v := &s.verts[id]
			if v.halted {
				continue
			}
			var recv []Incoming
			if s.inboxRound[id] == e.round {
				recv = s.inboxes[id]
			}
			s.handlers[id].Round(v, e.round, recv)
		}
	}
	e.deliverWt = func(i int) int {
		id := s.deliverList[i]
		return int(s.pendingCount[id]) + int(s.off[id+1]-s.off[id])
	}
	e.computeWt = func(i int) int {
		id := s.stepList[i]
		return int(s.off[id+1] - s.off[id])
	}

	// Init stays sequential: it runs once, and construction-time state is
	// where test harnesses legitimately share setup across vertices.
	for id := 0; id < n; id++ {
		s.handlers[id].Init(&s.verts[id])
	}
	s.mergeShards()
	s.resetSchedule()
	return e
}

// runPhase executes fn over the index range [0, k) of the current worklist,
// sharded across the worker pool when one exists, with chunk boundaries
// balanced by weight. fn(lo, hi) must only touch state owned by the vertices
// at worklist positions lo..hi-1 (plus the disjoint outbox slots deliver
// claims).
func (e *Execution) runPhase(fn func(lo, hi int), k int, weight func(i int) int) {
	if k == 0 {
		return
	}
	if e.exec == nil {
		fn(0, k)
		return
	}
	e.exec.phase(fn, k, weight)
}

// Step executes one synchronized round: delivery over the deliverList, the
// barrier assembly of the step list (awake vertices plus message and timer
// wakes), compute over the step list, and the barrier merge of metric
// shards. It reports done=true (without executing anything) once every
// vertex has halted and every queued message has been delivered — an O(1)
// check against the running counters — ErrDeadlock when no vertex can ever
// step again, and ErrMaxRounds when the round budget is exhausted.
func (e *Execution) Step() (done bool, err error) {
	s := e.s
	if s.haltedCount == s.g.N() && s.pendingMsgs == 0 {
		e.done = true
		return true, nil
	}
	if len(s.awake) == 0 && len(s.deliverList) == 0 && len(s.timers) == 0 {
		return false, fmt.Errorf("%w (%d of %d vertices halted)", ErrDeadlock, s.haltedCount, s.g.N())
	}
	round := e.round + 1
	if round > s.cfg.MaxRounds {
		return false, fmt.Errorf("%w (limit %d)", ErrMaxRounds, s.cfg.MaxRounds)
	}
	e.round = round
	s.curRound = round
	e.runPhase(e.deliverFn, len(s.deliverList), e.deliverWt)
	s.metrics.Rounds++
	s.assembleStepList(round)
	e.runPhase(e.computeFn, len(s.stepList), e.computeWt)
	s.mergeStepped(round)
	if s.obs != nil {
		m := s.metrics
		s.obs.recordRound(
			len(s.stepList),
			m.Messages-e.obsPrev.Messages,
			m.Words-e.obsPrev.Words,
			s.roundMax, s.wordBits, &s.roundHist)
		s.roundMax = 0
		e.obsPrev = m
	}
	return false, nil
}

// BeginPhase opens a named observer phase nested inside the current one;
// rounds executed by subsequent Step calls (on this or any other Execution
// sharing the Observer) are attributed to it. Call it between rounds, never
// from inside a Handler. A no-op when no Observer is configured.
func (e *Execution) BeginPhase(name string) { e.s.obs.BeginPhase(name) }

// EndPhase closes the innermost open observer phase. A no-op when no
// Observer is configured.
func (e *Execution) EndPhase() { e.s.obs.EndPhase() }

// Metrics returns the metrics accumulated so far (exact at every round
// barrier).
func (e *Execution) Metrics() Metrics { return e.s.metrics }

// Round returns the number of rounds executed so far.
func (e *Execution) Round() int { return e.round }

// Finish collects the per-vertex outputs and releases the execution (Close
// is implied). It may be called once, after Step reported done.
func (e *Execution) Finish() Result {
	n := e.s.g.N()
	outs := make([]any, n)
	for id := 0; id < n; id++ {
		outs[id] = e.s.verts[id].output
	}
	res := Result{Metrics: e.s.metrics, Outputs: outs}
	e.Close()
	return res
}

// Close releases the execution's worker pool and re-arms the Simulator for
// the next Start. It is idempotent and safe to defer alongside Finish.
func (e *Execution) Close() {
	if e.closed {
		return
	}
	e.closed = true
	if e.exec != nil {
		e.exec.close()
		e.exec = nil
	}
	e.s.active = false
}

// Run executes the algorithm produced by newHandler on every vertex until
// all halt (and all queued messages are delivered) or MaxRounds is exceeded.
// It returns the per-vertex outputs and aggregated metrics. Run may be
// called repeatedly; each call is an independent execution (metrics reset)
// that reuses the Simulator's cached layout and buffers.
func (s *Simulator) Run(newHandler func(v *Vertex) Handler) (Result, error) {
	e := s.Start(newHandler)
	defer e.Close()
	for {
		done, err := e.Step()
		if err != nil {
			return Result{Metrics: s.metrics}, err
		}
		if done {
			break
		}
	}
	return e.Finish(), nil
}

// RunFuncs is a convenience for algorithms expressible as closures.
type RunFuncs struct {
	InitFn  func(v *Vertex)
	RoundFn func(v *Vertex, round int, recv []Incoming)
}

// Init implements Handler.
func (r RunFuncs) Init(v *Vertex) {
	if r.InitFn != nil {
		r.InitFn(v)
	}
}

// Round implements Handler.
func (r RunFuncs) Round(v *Vertex, round int, recv []Incoming) {
	if r.RoundFn != nil {
		r.RoundFn(v, round, recv)
	}
}

var _ Handler = RunFuncs{}
