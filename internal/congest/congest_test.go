package congest

import (
	"errors"
	"testing"

	"expandergap/internal/graph"
)

// floodHandler floods a token from vertex 0 and records the round it was
// first seen — a distributed BFS-distance computation.
type floodHandler struct {
	seenAt int
}

func (h *floodHandler) Init(v *Vertex) {
	h.seenAt = -1
	if v.ID() == 0 {
		h.seenAt = 0
		v.Broadcast(Message{1})
	}
}

func (h *floodHandler) Round(v *Vertex, round int, recv []Incoming) {
	if h.seenAt == -1 {
		for range recv {
			h.seenAt = round
			v.Broadcast(Message{1})
			break
		}
	}
	if h.seenAt != -1 {
		v.SetOutput(h.seenAt)
		v.Halt()
	}
}

func TestFloodComputesBFSDistances(t *testing.T) {
	g := graph.Grid(4, 4)
	sim := NewSimulator(g, Config{Seed: 1})
	res, err := sim.Run(func(v *Vertex) Handler { return &floodHandler{} })
	if err != nil {
		t.Fatal(err)
	}
	dist, _ := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		got, ok := res.Outputs[v].(int)
		if !ok {
			t.Fatalf("vertex %d produced no output", v)
		}
		if got != dist[v] {
			t.Errorf("vertex %d: flood round %d, BFS distance %d", v, got, dist[v])
		}
	}
	if res.Metrics.Rounds < dist[15] {
		t.Errorf("rounds %d below eccentricity %d", res.Metrics.Rounds, dist[15])
	}
}

func TestVertexPortsSortedAndPortOf(t *testing.T) {
	g := graph.Star(4)
	sim := NewSimulator(g, Config{Seed: 1})
	_, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{InitFn: func(v *Vertex) {
			if v.ID() == 0 {
				if v.Degree() != 4 {
					t.Errorf("center degree = %d", v.Degree())
				}
				for p := 0; p < v.Degree(); p++ {
					if v.NeighborID(p) != p+1 {
						t.Errorf("port %d -> %d, want %d", p, v.NeighborID(p), p+1)
					}
					if v.PortOf(p+1) != p {
						t.Errorf("PortOf(%d) = %d, want %d", p+1, v.PortOf(p+1), p)
					}
				}
				if v.PortOf(0) != -1 || v.PortOf(99) != -1 {
					t.Error("PortOf non-neighbor should be -1")
				}
			}
			v.Halt()
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCongestRejectsOversizedMessage(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1, MaxWords: 4})
	defer func() {
		if recover() == nil {
			t.Error("oversized message should panic in CONGEST mode")
		}
	}()
	sim.Run(func(v *Vertex) Handler {
		return RunFuncs{InitFn: func(v *Vertex) {
			if v.ID() == 0 {
				v.Send(0, Message{1, 2, 3, 4, 5})
			}
			v.Halt()
		}}
	})
}

func TestCongestRejectsHugeWord(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("huge word should panic in CONGEST mode")
		}
	}()
	sim.Run(func(v *Vertex) Handler {
		return RunFuncs{InitFn: func(v *Vertex) {
			if v.ID() == 0 {
				v.Send(0, Message{1 << 40})
			}
			v.Halt()
		}}
	})
}

func TestLocalAllowsUnboundedMessages(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1, Model: LOCAL})
	big := make(Message, 10000)
	res, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{InitFn: func(v *Vertex) {
			if v.ID() == 0 {
				v.Send(0, big)
			}
			v.Halt()
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.MaxWordsPerMsg != 10000 {
		t.Errorf("MaxWordsPerMsg = %d, want 10000", res.Metrics.MaxWordsPerMsg)
	}
}

func TestDoubleSendPanics(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("double send should panic")
		}
	}()
	sim.Run(func(v *Vertex) Handler {
		return RunFuncs{InitFn: func(v *Vertex) {
			if v.ID() == 0 {
				v.Send(0, Message{1})
				v.Send(0, Message{2})
			}
			v.Halt()
		}}
	})
}

func TestInvalidPortPanics(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1})
	defer func() {
		if recover() == nil {
			t.Error("invalid port should panic")
		}
	}()
	sim.Run(func(v *Vertex) Handler {
		return RunFuncs{InitFn: func(v *Vertex) {
			v.Send(5, Message{1})
		}}
	})
}

func TestMaxRounds(t *testing.T) {
	g := graph.Path(3)
	sim := NewSimulator(g, Config{Seed: 1, MaxRounds: 5})
	_, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{RoundFn: func(v *Vertex, round int, recv []Incoming) {
			// Never halts.
		}}
	})
	if !errors.Is(err, ErrMaxRounds) {
		t.Errorf("err = %v, want ErrMaxRounds", err)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	g := graph.Grid(3, 3)
	run := func() []any {
		sim := NewSimulator(g, Config{Seed: 42})
		res, err := sim.Run(func(v *Vertex) Handler {
			return RunFuncs{
				InitFn: func(v *Vertex) {
					v.Broadcast(Message{int64(v.Rand().Intn(1000))})
				},
				RoundFn: func(v *Vertex, round int, recv []Incoming) {
					sum := int64(0)
					for _, in := range recv {
						sum += in.Msg[0]
					}
					v.SetOutput(sum)
					v.Halt()
				},
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterminism at vertex %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestSeedChangesRandomness(t *testing.T) {
	g := graph.Path(2)
	out := func(seed int64) int64 {
		sim := NewSimulator(g, Config{Seed: seed})
		res, err := sim.Run(func(v *Vertex) Handler {
			return RunFuncs{InitFn: func(v *Vertex) {
				v.SetOutput(v.Rand().Int63())
				v.Halt()
			}}
		})
		if err != nil {
			t.Fatal(err)
		}
		return res.Outputs[0].(int64)
	}
	if out(1) == out(2) {
		t.Error("different seeds should give different vertex randomness")
	}
}

func TestMetricsAccounting(t *testing.T) {
	g := graph.Path(3) // edges: 0-1, 1-2
	sim := NewSimulator(g, Config{Seed: 1})
	res, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{
			InitFn: func(v *Vertex) {
				v.Broadcast(Message{int64(v.ID()), 7})
			},
			RoundFn: func(v *Vertex, round int, recv []Incoming) {
				v.Halt()
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Vertex 0 sends 1 msg, vertex 1 sends 2, vertex 2 sends 1: 4 messages,
	// 8 words.
	if res.Metrics.Messages != 4 {
		t.Errorf("Messages = %d, want 4", res.Metrics.Messages)
	}
	if res.Metrics.Words != 8 {
		t.Errorf("Words = %d, want 8", res.Metrics.Words)
	}
	if res.Metrics.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1", res.Metrics.Rounds)
	}
	if bits := res.Metrics.TotalBits(3); bits != 8*int64(BitsPerWord(3)) {
		t.Errorf("TotalBits = %d", bits)
	}
}

func TestMetricsAdd(t *testing.T) {
	a := Metrics{Rounds: 2, Messages: 3, Words: 4, MaxWordsPerMsg: 2}
	b := Metrics{Rounds: 5, Messages: 7, Words: 11, MaxWordsPerMsg: 6}
	a.Add(b)
	if a.Rounds != 7 || a.Messages != 10 || a.Words != 15 || a.MaxWordsPerMsg != 6 {
		t.Errorf("Add result = %+v", a)
	}
}

func TestBitsPerWord(t *testing.T) {
	// The documented contract is ⌈log₂(max(n,2))⌉ exactly.
	cases := []struct{ n, want int }{
		{1, 1}, {2, 1}, {3, 2}, {4, 2}, {5, 3}, {1024, 10}, {1025, 11},
	}
	for _, tc := range cases {
		if got := BitsPerWord(tc.n); got != tc.want {
			t.Errorf("BitsPerWord(%d) = %d, want %d", tc.n, got, tc.want)
		}
	}
}

func TestEmptyMessageDelivered(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1})
	res, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{
			InitFn: func(v *Vertex) {
				if v.ID() == 0 {
					v.Send(0, Message{})
				}
			},
			RoundFn: func(v *Vertex, round int, recv []Incoming) {
				if v.ID() == 1 {
					v.SetOutput(len(recv))
				}
				v.Halt()
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Outputs[1].(int); got != 1 {
		t.Errorf("empty message not delivered: recv count = %d", got)
	}
}

func TestHaltedVertexStopsReceivingRounds(t *testing.T) {
	g := graph.Path(2)
	calls := make([]int, 2)
	sim := NewSimulator(g, Config{Seed: 1, MaxRounds: 100})
	_, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{RoundFn: func(v *Vertex, round int, recv []Incoming) {
			calls[v.ID()]++
			if v.ID() == 0 || round == 3 {
				v.Halt()
			}
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls[0] != 1 {
		t.Errorf("halted vertex got %d round calls, want 1", calls[0])
	}
	if calls[1] != 3 {
		t.Errorf("vertex 1 got %d round calls, want 3", calls[1])
	}
}

func TestModelString(t *testing.T) {
	if CONGEST.String() != "CONGEST" || LOCAL.String() != "LOCAL" {
		t.Error("Model.String wrong")
	}
	if Model(9).String() != "Model(9)" {
		t.Error("unknown model string wrong")
	}
}

func TestQuickGridFloodMatchesBFSSizes(t *testing.T) {
	// Run the flood on several graph families and verify termination and
	// message-count sanity: each vertex broadcasts exactly once.
	for _, g := range []*graph.Graph{
		graph.Cycle(10),
		graph.Complete(8),
		graph.BalancedBinaryTree(15),
	} {
		sim := NewSimulator(g, Config{Seed: 3})
		res, err := sim.Run(func(v *Vertex) Handler { return &floodHandler{} })
		if err != nil {
			t.Fatalf("%v: %v", g, err)
		}
		if res.Metrics.Messages != int64(2*g.M()) {
			t.Errorf("%v: messages = %d, want %d (one broadcast per vertex)",
				g, res.Metrics.Messages, 2*g.M())
		}
	}
}
