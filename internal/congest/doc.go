// Package congest implements a synchronous message-passing simulator for the
// LOCAL and CONGEST models of distributed computing, the execution substrate
// for every distributed algorithm in this repository.
//
// Model semantics follow the paper's Section 1: vertices host processors and
// operate in synchronized rounds; in each round every vertex may send one
// message to each of its neighbors, receives the messages its neighbors sent
// this round, and performs arbitrary local computation. In the LOCAL model
// messages are unbounded; in the CONGEST model each message is limited to
// O(log n) bits.
//
// Messages are tuples of integer words. In CONGEST mode a message may carry
// at most Config.MaxWords words and each word must satisfy |w| ≤ max(n², 2¹⁶)
// — i.e. a word is Θ(log n) bits — so a message is Θ(log n) bits total.
// Violations panic: an algorithm that breaks the model is a programming
// error, not a runtime condition.
//
// Execution is deterministic given Config.Seed: every vertex receives its own
// seeded PRNG stream, each inbox lists arrivals in ascending sender-ID order,
// and fault-injection coins are pure hashes of (seed, round, sender,
// receiver). Because handler randomness is per-vertex and inbox order is
// canonical, the execution order of vertices within a round cannot be
// observed by a (well-formed) handler — which is what makes the parallel
// executor below exact.
//
// Setting Config.Workers > 0 shards each round's delivery and compute phases
// across a pool of worker goroutines. Each phase's sparse worklist is split
// into contiguous chunks balanced by per-vertex work (queued message counts
// for delivery, degree for compute); the boundaries are a pure function of
// the worklist and weights, both rebuilt sequentially at round barriers, and
// per-vertex metric shards merge at the barrier. The parallel executor is
// bit-for-bit equivalent to the sequential path for a fixed seed. The one extra requirement it places on handlers: handlers of
// different vertices must not share mutable state (per-vertex state, as the
// model prescribes, is always safe; the test-only pattern of closing over a
// shared counter is not).
//
// A run ends when every vertex has halted and every queued message has been
// delivered: sends queued in a vertex's final round still cost (and are
// accounted as) one delivery round, per the documented Halt contract.
//
// # Execution lifecycle
//
// An algorithm is a Handler constructed once per vertex. The simplest entry
// point runs it to completion:
//
//	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
//	res, err := sim.Run(newHandler)
//
// Run is a thin wrapper over the three-stage Execution API, which harness
// code uses when it needs control between rounds (early stopping, phase
// annotation, interleaving with other work):
//
//	e := sim.Start(newHandler) // resets run state, runs every Init, delivers nothing yet
//	for {
//	    done, err := e.Step()  // one synchronized round: deliver, compute, barrier
//	    if err != nil { ... }  // ErrMaxRounds when Config.MaxRounds is exceeded
//	    if done { break }      // all vertices halted, all queued messages delivered
//	}
//	res := e.Finish()          // collects per-vertex outputs, releases the execution
//
// Start panics if a previous execution on the same Simulator is still
// active; Finish (or Close, which Finish implies and which is safe to defer
// alongside it) re-arms the Simulator for the next Start. Metrics and Round
// may be read between Steps and are exact at every round barrier. The warm
// Step loop performs zero heap allocations (see DESIGN.md §3.8); the
// substrate benchmarks enforce this.
//
// # Memory layout and message arenas
//
// The steady-state round loop is allocation-free (see DESIGN.md §3.8). The
// vertex table is stored CSR-style: one value slice of Vertex records whose
// ports, reverse ports, outbox slots, and inbox slots are contiguous
// sub-slices of four shared flat arrays, built once per Simulator and reused
// across Run calls. Handlers that need per-round message buffers should use
// Vertex.MsgBuf (or the SendWords/BroadcastWords conveniences), which
// recycles a per-vertex double-buffered arena instead of allocating.
//
// Arena lifetime contract: a Message received in a Round call is valid only
// until that Round call returns. Handlers that retain a message across
// rounds must Clone it. Messages built by MsgBuf in round r are reclaimed in
// round r+2, strictly after every receiver has finished reading them.
//
// # Quiescence and sparse scheduling
//
// A handler that can prove its vertex does nothing for a while — sends
// nothing, draws no randomness, changes no externally visible state — may
// declare quiescence (DESIGN.md §3.10):
//
//	v.Sleep()        // skip me until a message arrives
//	v.SleepUntil(r)  // skip me until round r, or until a message arrives
//
// The simulator then schedules each round over worklists of awake, woken,
// and message-receiving vertices, so a round costs O(stepped + messages)
// instead of O(n + m). Sleeping is an optimization hint with exact
// semantics: rounds are still counted, message delivery, ordering, fault
// coins, and PRNG streams are unchanged, and results are bit-identical to
// the dense schedule (the golden tests pin this). A message dropped by
// fault injection does not wake its receiver. Halt dominates sleep, and a
// vertex woken by a timer with no fresh delivery sees an empty recv slice —
// never its stale inbox. If every non-halted vertex sleeps with no pending
// message or timer, the run fails fast with ErrDeadlock.
//
// # Observability
//
// Attaching an Observer via Config.Obs turns the end-of-run Metrics
// aggregate into a per-phase, per-round account (DESIGN.md §3.9). Harness
// code brackets stages of an algorithm with Execution.BeginPhase /
// EndPhase (or Observer.BeginPhase directly, around whole Run calls); every
// executed round — with its messages, words, bits, and a message-size
// histogram — is attributed to the innermost open phase. Observer.Report
// serializes the resulting phase tree; Observer.EnableTrace streams one
// JSONL event per round through a fixed ring buffer.
//
// The observer is strictly passive (it cannot change outputs or Metrics),
// and its cost is budgeted: with an Observer attached but tracing disabled
// the warm Step loop still performs zero heap allocations per round, and
// with tracing enabled a steady-state round must stay under 2× its untraced
// cost — both enforced by tests in this package.
package congest
