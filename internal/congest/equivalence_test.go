package congest_test

import (
	"reflect"
	"testing"

	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
	"expandergap/internal/routing"
)

// workerSweep is the executor matrix of the equivalence suite: the canonical
// sequential path plus pools of 1 (exercises the dispatch machinery with no
// actual concurrency), 4, and 8 workers.
var workerSweep = []int{0, 1, 4, 8}

// TestParallelEquivalenceLubyMIS runs Luby MIS on a 32×32 grid under every
// executor configuration and demands byte-identical outputs and metrics.
// Luby is the canonical randomized per-vertex workload: any divergence in
// PRNG streams, inbox ordering, or metrics sharding shows up immediately.
func TestParallelEquivalenceLubyMIS(t *testing.T) {
	g := graph.Grid(32, 32)
	type outcome struct {
		set     []int
		metrics congest.Metrics
	}
	var base *outcome
	for _, workers := range workerSweep {
		set, m, err := maxis.LubyMIS(g, congest.Config{Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		got := &outcome{set: set, metrics: m}
		if base == nil {
			base = got
			if len(set) == 0 {
				t.Fatal("empty MIS")
			}
			continue
		}
		if !reflect.DeepEqual(got.set, base.set) {
			t.Errorf("workers=%d: MIS differs from sequential (%d vs %d vertices)",
				workers, len(got.set), len(base.set))
		}
		if got.metrics != base.metrics {
			t.Errorf("workers=%d: metrics %+v, sequential %+v", workers, got.metrics, base.metrics)
		}
	}
}

// TestParallelEquivalenceWalkRouting runs Lemma 2.4 walk routing on a 32×32
// grid (single cluster, leader 0) under every executor configuration and
// compares the full exchange result — responses, delivery accounting, leader
// load — plus the metrics.
func TestParallelEquivalenceWalkRouting(t *testing.T) {
	g := graph.Grid(32, 32)
	tokens := make([][]routing.Token, g.N())
	for v := range tokens {
		tokens[v] = []routing.Token{{A: int64(v), B: int64(v % 7)}}
	}
	plan := routing.Plan{
		Cluster:       primitives.Uniform(g.N()),
		Leader:        make([]int, g.N()), // all zero: leader is vertex 0
		ForwardRounds: 3000,
		Strategy:      routing.RandomWalk,
	}
	var baseRes *routing.ExchangeResult
	var baseMetrics congest.Metrics
	for _, workers := range workerSweep {
		res, m, err := routing.Exchange(g, congest.Config{Seed: 11, Workers: workers}, plan, tokens,
			func(leader int, tok routing.Token) (int64, int64) { return tok.A + 1, tok.B })
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if baseRes == nil {
			baseRes, baseMetrics = res, m
			if res.Delivered == 0 {
				t.Fatal("no tokens delivered in the baseline run")
			}
			continue
		}
		if !reflect.DeepEqual(res, baseRes) {
			t.Errorf("workers=%d: exchange result differs from sequential (delivered %d vs %d)",
				workers, res.Delivered, baseRes.Delivered)
		}
		if m != baseMetrics {
			t.Errorf("workers=%d: metrics %+v, sequential %+v", workers, m, baseMetrics)
		}
	}
}

// TestParallelEquivalenceUnderFaults drops messages with a fixed rate and
// checks the executor sweep still agrees bit-for-bit: fault coins are pure
// hashes of (seed, round, sender, receiver), so the drop pattern must be
// independent of delivery sharding.
func TestParallelEquivalenceUnderFaults(t *testing.T) {
	g := graph.Grid(16, 16)
	run := func(workers int) ([]any, congest.Metrics) {
		sim := congest.NewSimulator(g, congest.Config{Seed: 5, FaultRate: 0.2, Workers: workers, MaxRounds: 64})
		res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
			sum := int64(0)
			return congest.RunFuncs{
				InitFn: func(v *congest.Vertex) {
					v.Broadcast(congest.Message{int64(v.Rand().Intn(1000))})
				},
				RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
					for _, in := range recv {
						sum += in.Msg[0]
					}
					if round < 8 {
						v.Broadcast(congest.Message{sum % 1000})
						return
					}
					v.SetOutput(sum)
					v.Halt()
				},
			}
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return res.Outputs, res.Metrics
	}
	baseOut, baseMetrics := run(0)
	for _, workers := range workerSweep[1:] {
		out, m := run(workers)
		if !reflect.DeepEqual(out, baseOut) {
			t.Errorf("workers=%d: outputs diverge from sequential under faults", workers)
		}
		if m != baseMetrics {
			t.Errorf("workers=%d: metrics %+v, sequential %+v", workers, m, baseMetrics)
		}
	}
}

// TestParallelModelViolationPanics verifies the executor preserves the
// "model violations panic" contract across the worker boundary.
func TestParallelModelViolationPanics(t *testing.T) {
	g := graph.Path(4)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, MaxWords: 2, Workers: 4})
	defer func() {
		if recover() == nil {
			t.Error("oversized message should panic through the worker pool")
		}
	}()
	sim.Run(func(v *congest.Vertex) congest.Handler {
		return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			if v.ID() == 2 && round == 2 {
				v.Send(0, congest.Message{1, 2, 3})
			}
			if round > 2 {
				v.Halt()
			}
		}}
	})
}

// TestParallelWorkersExceedingVertices clamps gracefully: more workers than
// vertices must behave like the sequential path.
func TestParallelWorkersExceedingVertices(t *testing.T) {
	g := graph.Path(3)
	for _, workers := range []int{0, 16} {
		sim := congest.NewSimulator(g, congest.Config{Seed: 3, Workers: workers})
		res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
			return congest.RunFuncs{
				InitFn: func(v *congest.Vertex) { v.Broadcast(congest.Message{int64(v.ID())}) },
				RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
					sum := int64(0)
					for _, in := range recv {
						sum += in.Msg[0]
					}
					v.SetOutput(sum)
					v.Halt()
				},
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		if got := res.Outputs[1].(int64); got != 2 {
			t.Errorf("workers=%d: vertex 1 sum = %d, want 2", workers, got)
		}
	}
}
