package congest_test

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// A two-round distributed algorithm: every vertex learns the maximum ID in
// its 1-hop neighborhood.
func ExampleSimulator_Run() {
	g := graph.Star(3) // center 0, leaves 1..3
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		best := int64(v.ID())
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) {
				v.Broadcast(congest.Message{int64(v.ID())})
			},
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				for _, in := range recv {
					if in.Msg[0] > best {
						best = in.Msg[0]
					}
				}
				v.SetOutput(best)
				v.Halt()
			},
		}
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("center sees max:", res.Outputs[0])
	fmt.Println("rounds:", res.Metrics.Rounds, "messages:", res.Metrics.Messages)
	// Output:
	// center sees max: 3
	// rounds: 1 messages: 6
}
