package congest

import (
	"testing"

	"expandergap/internal/graph"
)

// pingHandler sends one message per round from even vertices to odd and
// counts deliveries.
func TestFaultRateDropsMessages(t *testing.T) {
	g := graph.CompleteBipartite(10, 10)
	count := func(rate float64) int64 {
		sim := NewSimulator(g, Config{Seed: 1, FaultRate: rate})
		delivered := int64(0)
		_, err := sim.Run(func(v *Vertex) Handler {
			return RunFuncs{
				InitFn: func(v *Vertex) {
					if v.ID() < 10 {
						v.Broadcast(Message{1})
					}
				},
				RoundFn: func(v *Vertex, round int, recv []Incoming) {
					delivered += int64(len(recv))
					v.Halt()
				},
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return delivered
	}
	full := count(0)
	if full != 100 {
		t.Fatalf("fault-free delivery = %d, want 100", full)
	}
	lossy := count(0.5)
	if lossy >= full || lossy == 0 {
		t.Errorf("lossy delivery = %d, want strictly between 0 and %d", lossy, full)
	}
	none := count(1.0)
	if none != 0 {
		t.Errorf("rate-1.0 delivery = %d, want 0", none)
	}
}

func TestFaultDeterministicGivenSeed(t *testing.T) {
	g := graph.Complete(8)
	run := func() int64 {
		sim := NewSimulator(g, Config{Seed: 9, FaultRate: 0.3})
		total := int64(0)
		_, err := sim.Run(func(v *Vertex) Handler {
			return RunFuncs{
				InitFn: func(v *Vertex) { v.Broadcast(Message{1}) },
				RoundFn: func(v *Vertex, round int, recv []Incoming) {
					total += int64(len(recv))
					v.Halt()
				},
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return total
	}
	if run() != run() {
		t.Error("fault injection nondeterministic across identical runs")
	}
}

// Regression: the drop coin for one message must depend only on
// (seed, round, sender, receiver) — never on what other messages exist.
// Previously drops consumed a shared PRNG in iteration order, so adding an
// unrelated sender perturbed which other messages dropped.
func TestFaultPatternStableUnderUnrelatedTraffic(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	const rounds = 40
	// deliveredAt reports in which rounds vertex 1 heard from vertex 0,
	// with vertex 2 chattering (or not) in the background.
	deliveredAt := func(chatter bool) []int {
		sim := NewSimulator(g, Config{Seed: 6, FaultRate: 0.5, MaxRounds: rounds + 2})
		var hits []int
		_, err := sim.Run(func(v *Vertex) Handler {
			return RunFuncs{
				InitFn: func(v *Vertex) {
					if v.ID() == 0 || (chatter && v.ID() == 2) {
						v.Broadcast(Message{int64(v.ID())})
					}
				},
				RoundFn: func(v *Vertex, round int, recv []Incoming) {
					if round > rounds {
						v.Halt()
						return
					}
					switch v.ID() {
					case 0:
						v.Broadcast(Message{0})
					case 1:
						for _, in := range recv {
							if in.From == 0 {
								hits = append(hits, round)
							}
						}
					case 2:
						if chatter {
							v.Broadcast(Message{2})
						}
					}
				},
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		return hits
	}
	quiet := deliveredAt(false)
	noisy := deliveredAt(true)
	if len(quiet) == 0 || len(quiet) == rounds {
		t.Fatalf("want a mixed drop pattern at rate 0.5, got %d/%d deliveries", len(quiet), rounds)
	}
	if len(quiet) != len(noisy) {
		t.Fatalf("0→1 drop pattern changed with unrelated traffic: %v vs %v", quiet, noisy)
	}
	for i := range quiet {
		if quiet[i] != noisy[i] {
			t.Fatalf("0→1 drop pattern changed with unrelated traffic: %v vs %v", quiet, noisy)
		}
	}
}

func TestFaultsStillCountAsSent(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 2, FaultRate: 1.0})
	res, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{
			InitFn: func(v *Vertex) {
				if v.ID() == 0 {
					v.Send(0, Message{1, 2})
				}
			},
			RoundFn: func(v *Vertex, round int, recv []Incoming) {
				if len(recv) != 0 {
					t.Error("message delivered despite rate 1.0")
				}
				v.Halt()
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Messages != 1 || res.Metrics.Words != 2 {
		t.Errorf("metrics = %+v, want the dropped message counted as sent", res.Metrics)
	}
}
