package congest_test

import (
	"testing"

	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// floodHandler is the pinned min-distance flood workload: vertex 0 broadcasts
// distance 0; every other vertex adopts 1 + min over received distances,
// rebroadcasts once, and halts.
func floodHandler(v *congest.Vertex) congest.Handler {
	seen := v.ID() == 0
	dist := 0
	return congest.RunFuncs{
		InitFn: func(v *congest.Vertex) {
			if seen {
				v.Broadcast(congest.Message{0})
			}
		},
		RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			if !seen && len(recv) > 0 {
				seen = true
				best := recv[0].Msg[0]
				for _, in := range recv[1:] {
					if in.Msg[0] < best {
						best = in.Msg[0]
					}
				}
				dist = int(best) + 1
				v.Broadcast(congest.Message{int64(dist)})
			}
			if seen {
				v.SetOutput(dist)
				v.Halt()
			}
		},
	}
}

// TestGoldenDeterminism pins the exact outputs and metrics of two fixed-seed
// workloads (grid flood and Luby MIS), for both the sequential and the
// parallel executor. The values were captured from the pre-CSR simulator, so
// this test proves the zero-allocation layout is behavior-preserving and
// that Workers is invisible to results.
func TestGoldenDeterminism(t *testing.T) {
	const (
		goldenFloodRounds  = 31
		goldenFloodMsgs    = 960
		goldenFloodWords   = 960
		goldenFloodDistSum = 3840

		goldenLubyRounds = 13
		goldenLubyMsgs   = 1981
		goldenLubyWords  = 5257
		goldenLubySize   = 92
		goldenLubyHash   = 4508672213933379464
	)
	for _, workers := range []int{0, 4} {
		g := graph.Grid(16, 16)
		sim := congest.NewSimulator(g, congest.Config{Seed: 1, Workers: workers})
		res, err := sim.Run(floodHandler)
		if err != nil {
			t.Fatalf("workers=%d flood: %v", workers, err)
		}
		m := res.Metrics
		if m.Rounds != goldenFloodRounds || m.Messages != goldenFloodMsgs ||
			m.Words != goldenFloodWords || m.MaxWordsPerMsg != 1 {
			t.Errorf("workers=%d flood metrics = %+v, want rounds=%d msgs=%d words=%d maxw=1",
				workers, m, goldenFloodRounds, goldenFloodMsgs, goldenFloodWords)
		}
		sum := 0
		for _, o := range res.Outputs {
			sum += o.(int)
		}
		if sum != goldenFloodDistSum {
			t.Errorf("workers=%d flood distance sum = %d, want %d", workers, sum, goldenFloodDistSum)
		}

		set, lm, err := maxis.LubyMIS(g, congest.Config{Seed: 7, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d luby: %v", workers, err)
		}
		if lm.Rounds != goldenLubyRounds || lm.Messages != goldenLubyMsgs ||
			lm.Words != goldenLubyWords || lm.MaxWordsPerMsg != 3 {
			t.Errorf("workers=%d luby metrics = %+v, want rounds=%d msgs=%d words=%d maxw=3",
				workers, lm, goldenLubyRounds, goldenLubyMsgs, goldenLubyWords)
		}
		h := 0
		for _, v := range set {
			h = h*31 + v
		}
		if len(set) != goldenLubySize || h != goldenLubyHash {
			t.Errorf("workers=%d luby |set|=%d hash=%d, want %d/%d",
				workers, len(set), h, goldenLubySize, goldenLubyHash)
		}
	}
}

// TestGoldenPhaseTreeDeterminism runs the golden workloads with an Observer
// attached and pins that (a) the metrics stay bit-identical to the
// observer-free golden values, and (b) the entire serialized phase tree —
// names, nesting, per-phase rounds/messages/words/bits and histograms — is
// byte-identical across the sequential and parallel executors. Phase
// attribution happens at the round barrier from merged shards, so nothing
// about it may depend on worker scheduling.
func TestGoldenPhaseTreeDeterminism(t *testing.T) {
	var reports [][]byte
	for _, workers := range []int{0, 4} {
		g := graph.Grid(16, 16)
		obs := congest.NewObserver()
		cfg := congest.Config{Seed: 1, Workers: workers, Obs: obs}

		obs.BeginPhase("flood")
		res, err := congest.NewSimulator(g, cfg).Run(floodHandler)
		obs.EndPhase()
		if err != nil {
			t.Fatalf("workers=%d flood: %v", workers, err)
		}
		m := res.Metrics
		if m.Rounds != 31 || m.Messages != 960 || m.Words != 960 || m.MaxWordsPerMsg != 1 {
			t.Errorf("workers=%d observed flood metrics %+v differ from golden", workers, m)
		}

		lubyCfg := congest.Config{Seed: 7, Workers: workers, Obs: obs}
		set, lm, err := maxis.LubyMIS(g, lubyCfg) // self-names the "luby" phase
		if err != nil {
			t.Fatalf("workers=%d luby: %v", workers, err)
		}
		if lm.Rounds != 13 || lm.Messages != 1981 || lm.Words != 5257 || len(set) != 92 {
			t.Errorf("workers=%d observed luby metrics %+v |set|=%d differ from golden", workers, lm, len(set))
		}

		rep := obs.Report()
		if len(rep.Phases) != 2 || rep.Phases[0].Name != "flood" || rep.Phases[1].Name != "luby" {
			t.Fatalf("workers=%d phase tree children = %+v, want [flood luby]", workers, rep.Phases)
		}
		if rep.Phases[0].Rounds != 31 || rep.Phases[1].Rounds != 13 {
			t.Errorf("workers=%d phase rounds = %d/%d, want 31/13",
				workers, rep.Phases[0].Rounds, rep.Phases[1].Rounds)
		}
		data, err := rep.MarshalIndentJSON()
		if err != nil {
			t.Fatal(err)
		}
		reports = append(reports, data)
	}
	if string(reports[0]) != string(reports[1]) {
		t.Errorf("phase tree differs between Workers=0 and Workers=4:\n--- seq ---\n%s\n--- par ---\n%s",
			reports[0], reports[1])
	}
}

// TestSteadyStateZeroAllocs asserts the sequential round loop is
// allocation-free once warm: a non-terminating broadcast workload stepped via
// the Execution API must not allocate per round.
func TestSteadyStateZeroAllocs(t *testing.T) {
	g := graph.Grid(16, 16)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	ex := sim.Start(func(v *congest.Vertex) congest.Handler {
		val := int64(v.ID())
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) { v.BroadcastWords(val) },
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				v.BroadcastWords(val)
			},
		}
	})
	defer ex.Close()
	// Warm up so arenas and inboxes reach their steady-state capacity.
	for i := 0; i < 4; i++ {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step allocates %.1f times per round, want 0", allocs)
	}
}
