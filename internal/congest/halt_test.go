package congest

import (
	"testing"

	"expandergap/internal/graph"
)

// Regression: Halt documents "queued sends are still delivered". Messages a
// vertex queues in the same Round call in which it halts must still reach
// their receivers (the receivers here stay un-halted one round longer so
// they can observe the delivery).
func TestFinalRoundSendsAreDelivered(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1})
	res, err := sim.Run(func(v *Vertex) Handler {
		got := 0
		return RunFuncs{
			RoundFn: func(v *Vertex, round int, recv []Incoming) {
				got += len(recv)
				if v.ID() == 0 {
					// Send and halt in the same round: the send must still
					// be delivered.
					v.Send(0, Message{42})
					v.SetOutput(got)
					v.Halt()
					return
				}
				// Vertex 1 waits until the message arrives.
				if got > 0 {
					v.SetOutput(got)
					v.Halt()
				}
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := res.Outputs[1].(int); got != 1 {
		t.Errorf("vertex 1 received %d messages, want 1 (final-round send dropped)", got)
	}
}

// Regression: when every vertex halts in Init with queued sends, those sends
// still count as one delivery round and must not be silently dropped. The
// delivery is observable through Metrics.Rounds (the delivery round ran) —
// receivers are already halted, so the messages are discarded on arrival,
// exactly as for any other halted receiver.
func TestInitHaltWithQueuedSendsStillRunsDeliveryRound(t *testing.T) {
	g := graph.Path(2)
	sim := NewSimulator(g, Config{Seed: 1})
	res, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{InitFn: func(v *Vertex) {
			v.Broadcast(Message{7})
			v.Halt()
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.Rounds != 1 {
		t.Errorf("Rounds = %d, want 1 (queued Init sends need a delivery round)", res.Metrics.Rounds)
	}
	if res.Metrics.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Metrics.Messages)
	}
}

// A vertex halting with queued sends while its neighbor keeps running must
// have those sends delivered in the next round, not dropped at the halt
// barrier.
func TestHaltedSenderFinalMessageReachesRunningReceiver(t *testing.T) {
	g := graph.Path(3) // 0-1-2
	sim := NewSimulator(g, Config{Seed: 1, MaxRounds: 10})
	res, err := sim.Run(func(v *Vertex) Handler {
		return RunFuncs{
			InitFn: func(v *Vertex) {
				if v.ID() != 1 {
					// Endpoints are done immediately; vertex 1 keeps going.
					v.Halt()
				}
			},
			RoundFn: func(v *Vertex, round int, recv []Incoming) {
				// Only vertex 1 still runs. In round 1 it sends to both
				// halted endpoints and halts itself — then waits for nothing.
				if round == 1 {
					v.Broadcast(Message{int64(v.ID())})
					v.SetOutput(round)
					v.Halt()
				}
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The broadcast was queued in round 1; delivering it needs round 2.
	if res.Metrics.Rounds != 2 {
		t.Errorf("Rounds = %d, want 2 (final-round broadcast needs a delivery round)", res.Metrics.Rounds)
	}
	if res.Metrics.Messages != 2 {
		t.Errorf("Messages = %d, want 2", res.Metrics.Messages)
	}
}
