package congest

import "sync"

// executor is the deterministic parallel phase runner behind Config.Workers.
//
// Each phase runs over an index range [0, k) of the caller's current
// worklist (the full vertex range before sparse scheduling; now the
// deliverList or stepList). The range is split into one contiguous chunk per
// worker; each phase dispatches every chunk to the long-lived worker pool
// and blocks until all chunks finish (the round barrier). Chunk boundaries
// depend only on (Workers, k), and both k and the worklist contents are
// themselves deterministic (rebuilt sequentially at barriers, sorted
// ascending), so any per-vertex computation that is order-independent across
// vertices (the simulator's delivery and compute phases are, by construction
// — per-vertex PRNGs, canonical inbox order, hash-derived fault coins)
// produces results identical to the sequential path.
//
// Handler panics (model violations are contracted to panic) are recovered on
// the worker, parked per-chunk, and re-raised on the caller's goroutine
// after the barrier — lowest chunk first, which (worklists being sorted)
// matches the vertex the sequential path would have panicked on.
type executor struct {
	workers int
	tasks   chan execTask
	wg      sync.WaitGroup
	panics  []any // one slot per chunk, rewritten each phase
}

type execTask struct {
	fn     func(lo, hi int)
	lo, hi int
	idx    int
}

// newExecutor returns a pool of the given size, or nil when the sequential
// path should be used (workers <= 0 or an empty graph). n caps the pool:
// more workers than vertices would never all be busy.
func newExecutor(workers, n int) *executor {
	if workers <= 0 || n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	e := &executor{
		workers: workers,
		tasks:   make(chan execTask, workers),
		panics:  make([]any, workers),
	}
	for i := 0; i < workers; i++ {
		go e.loop()
	}
	return e
}

func (e *executor) loop() {
	for t := range e.tasks {
		e.runTask(t)
	}
}

func (e *executor) runTask(t execTask) {
	defer e.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			e.panics[t.idx] = r // distinct slot per chunk: no lock needed
		}
	}()
	t.fn(t.lo, t.hi)
}

// phase runs fn over the index range [0, k) sharded across the pool and
// waits for the barrier. fn(lo, hi) must touch only state owned by the
// worklist entries at positions lo..hi-1. At most `workers` chunks are
// dispatched regardless of k, so the panic slots never need to grow.
func (e *executor) phase(fn func(lo, hi int), k int) {
	if k <= 0 {
		return
	}
	workers := e.workers
	if workers > k {
		workers = k
	}
	chunk := (k + workers - 1) / workers
	for i := range e.panics {
		e.panics[i] = nil
	}
	idx := 0
	for lo := 0; lo < k; lo += chunk {
		hi := lo + chunk
		if hi > k {
			hi = k
		}
		e.wg.Add(1)
		e.tasks <- execTask{fn: fn, lo: lo, hi: hi, idx: idx}
		idx++
	}
	e.wg.Wait()
	for _, p := range e.panics {
		if p != nil {
			panic(p)
		}
	}
}

// close shuts the pool down. The executor must not be used afterwards.
func (e *executor) close() { close(e.tasks) }
