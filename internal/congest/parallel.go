package congest

import "sync"

// executor is the deterministic parallel phase runner behind Config.Workers.
//
// Each phase runs over an index range [0, k) of the caller's current
// worklist (the full vertex range before sparse scheduling; now the
// deliverList or stepList). The range is split into one contiguous chunk per
// worker; each phase dispatches every chunk to the long-lived worker pool
// and blocks until all chunks finish (the round barrier).
//
// Chunk boundaries are work-balanced: the caller supplies a per-index weight
// (pending message counts for delivery, degrees for compute — see DESIGN.md
// §3.12) and boundaries are placed at the ideal weight quantiles of the
// prefix-sum. The sparse worklists of §3.10 make per-index cost very uneven
// (a hub vertex can carry orders of magnitude more messages than a leaf), so
// equal-index chunks leave most workers idle behind the heaviest one.
// Boundaries remain a pure function of (Workers, worklist, weights), and
// both the worklist contents and the weights are rebuilt sequentially at
// barriers, so any per-vertex computation that is order-independent across
// vertices (the simulator's delivery and compute phases are, by construction
// — per-vertex PRNGs, canonical inbox order, hash-derived fault coins)
// produces results identical to the sequential path.
//
// Handler panics (model violations are contracted to panic) are recovered on
// the worker, parked per-chunk, and re-raised on the caller's goroutine
// after the barrier — lowest chunk first, which (worklists being sorted)
// matches the vertex the sequential path would have panicked on.
type executor struct {
	workers int
	tasks   chan execTask
	wg      sync.WaitGroup
	panics  []any // one slot per chunk, rewritten each phase
	bounds  []int // workers+1 chunk boundaries, rewritten each phase
}

type execTask struct {
	fn     func(lo, hi int)
	lo, hi int
	idx    int
}

// newExecutor returns a pool of the given size, or nil when the sequential
// path should be used (workers <= 0 or an empty graph). n caps the pool:
// more workers than vertices would never all be busy.
func newExecutor(workers, n int) *executor {
	if workers <= 0 || n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	e := &executor{
		workers: workers,
		tasks:   make(chan execTask, workers),
		panics:  make([]any, workers),
		bounds:  make([]int, workers+1),
	}
	for i := 0; i < workers; i++ {
		go e.loop()
	}
	return e
}

func (e *executor) loop() {
	for t := range e.tasks {
		e.runTask(t)
	}
}

func (e *executor) runTask(t execTask) {
	defer e.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			e.panics[t.idx] = r // distinct slot per chunk: no lock needed
		}
	}()
	t.fn(t.lo, t.hi)
}

// splitBounds fills e.bounds[0..workers] with ascending chunk boundaries
// over [0, k): chunk c covers [bounds[c], bounds[c+1]). With a nil weight
// every chunk gets the same index count; otherwise boundary c is placed at
// the smallest prefix whose cumulative weight reaches c/workers of the
// total. Every index carries an implicit +1 on top of its weight, so
// zero-weight runs still spread across chunks and no chunk degenerates to
// the whole range. The result depends only on (workers, k, the weight
// sequence) — never on goroutine scheduling — which is what keeps parallel
// runs bit-identical and panic attribution stable.
func (e *executor) splitBounds(workers, k int, weight func(i int) int) {
	e.bounds[0] = 0
	if weight == nil {
		chunk := (k + workers - 1) / workers
		for c := 1; c < workers; c++ {
			b := c * chunk
			if b > k {
				b = k
			}
			e.bounds[c] = b
		}
		e.bounds[workers] = k
		return
	}
	total := 0
	for i := 0; i < k; i++ {
		total += weight(i) + 1
	}
	cum, c := 0, 1
	for i := 0; i < k && c < workers; i++ {
		cum += weight(i) + 1
		for c < workers && cum*workers >= c*total {
			e.bounds[c] = i + 1
			c++
		}
	}
	for ; c < workers; c++ {
		e.bounds[c] = k
	}
	e.bounds[workers] = k
}

// phase runs fn over the index range [0, k) sharded across the pool and
// waits for the barrier. fn(lo, hi) must touch only state owned by the
// worklist entries at positions lo..hi-1. weight(i) is the balance weight of
// worklist position i (nil falls back to equal index counts). At most
// `workers` chunks are dispatched regardless of k, so the panic slots never
// need to grow.
func (e *executor) phase(fn func(lo, hi int), k int, weight func(i int) int) {
	if k <= 0 {
		return
	}
	workers := e.workers
	if workers > k {
		workers = k
	}
	e.splitBounds(workers, k, weight)
	for i := range e.panics {
		e.panics[i] = nil
	}
	idx := 0
	for c := 0; c < workers; c++ {
		lo, hi := e.bounds[c], e.bounds[c+1]
		if lo >= hi {
			continue // a single heavy index can starve later quantiles
		}
		e.wg.Add(1)
		e.tasks <- execTask{fn: fn, lo: lo, hi: hi, idx: idx}
		idx++
	}
	e.wg.Wait()
	for _, p := range e.panics {
		if p != nil {
			panic(p)
		}
	}
}

// close shuts the pool down. The executor must not be used afterwards.
func (e *executor) close() { close(e.tasks) }
