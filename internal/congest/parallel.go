package congest

import "sync"

// executor is the deterministic parallel phase runner behind Config.Workers.
//
// The vertex range [0, n) is split into one contiguous chunk per worker;
// each phase dispatches every chunk to the long-lived worker pool and blocks
// until all chunks finish (the round barrier). Chunk boundaries depend only
// on (Workers, n), and each chunk is processed in ascending vertex order, so
// any per-vertex computation that is order-independent across vertices (the
// simulator's delivery and compute phases are, by construction — per-vertex
// PRNGs, canonical inbox order, hash-derived fault coins) produces results
// identical to the sequential path.
//
// Handler panics (model violations are contracted to panic) are recovered on
// the worker, parked per-chunk, and re-raised on the caller's goroutine
// after the barrier — lowest chunk first, which matches the vertex the
// sequential path would have panicked on.
type executor struct {
	workers int
	n       int
	chunk   int
	tasks   chan execTask
	wg      sync.WaitGroup
	panics  []any // one slot per chunk, rewritten each phase
}

type execTask struct {
	fn     func(lo, hi int)
	lo, hi int
	idx    int
}

// newExecutor returns a pool of the given size, or nil when the sequential
// path should be used (workers <= 0 or an empty graph).
func newExecutor(workers, n int) *executor {
	if workers <= 0 || n == 0 {
		return nil
	}
	if workers > n {
		workers = n
	}
	chunk := (n + workers - 1) / workers
	nchunks := (n + chunk - 1) / chunk
	e := &executor{
		workers: workers,
		n:       n,
		chunk:   chunk,
		tasks:   make(chan execTask, nchunks),
		panics:  make([]any, nchunks),
	}
	for i := 0; i < workers; i++ {
		go e.loop()
	}
	return e
}

func (e *executor) loop() {
	for t := range e.tasks {
		e.runTask(t)
	}
}

func (e *executor) runTask(t execTask) {
	defer e.wg.Done()
	defer func() {
		if r := recover(); r != nil {
			e.panics[t.idx] = r // distinct slot per chunk: no lock needed
		}
	}()
	t.fn(t.lo, t.hi)
}

// phase runs fn over [0, n) sharded across the pool and waits for the
// barrier. fn(lo, hi) must touch only state owned by vertices lo..hi-1.
func (e *executor) phase(fn func(lo, hi int)) {
	for i := range e.panics {
		e.panics[i] = nil
	}
	idx := 0
	for lo := 0; lo < e.n; lo += e.chunk {
		hi := lo + e.chunk
		if hi > e.n {
			hi = e.n
		}
		e.wg.Add(1)
		e.tasks <- execTask{fn: fn, lo: lo, hi: hi, idx: idx}
		idx++
	}
	e.wg.Wait()
	for _, p := range e.panics {
		if p != nil {
			panic(p)
		}
	}
}

// close shuts the pool down. The executor must not be used afterwards.
func (e *executor) close() { close(e.tasks) }
