package congest

import "slices"

// This file implements the sparse activation scheduler (DESIGN.md §3.10).
//
// The simulator tracks three worklists so each round costs O(active +
// messages) instead of O(n + m):
//
//   - awake:       vertices eligible to step next round (non-halted, not
//                  sleeping), ascending by ID.
//   - deliverList: vertices with at least one message queued to them by the
//                  previous compute phase (pre-fault-filter), ascending.
//   - stepList:    vertices actually stepped this round — the awake set plus
//                  vertices woken this round by a delivered message or an
//                  expired SleepUntil timer.
//
// All three are rebuilt at round barriers from per-vertex state, never
// concurrently with handlers, and all live in buffers preallocated to
// capacity n by buildLayout, so the steady-state round loop remains
// allocation-free. Sorting keeps the parallel executor's chunk boundaries —
// and therefore panic attribution and inbox contents — bit-identical to the
// sequential path.

// timerHeap is a binary min-heap of packed (wakeRound<<32 | vertexID)
// entries. Packing into one int64 makes the heap comparison order by round
// first, vertex ID second, with no interface boxing and no allocation beyond
// the backing array. Entries are lazily deleted: a vertex woken early by a
// message leaves its entry behind, and the pop in the entry's round discards
// it because the vertex no longer validates (not asleep, or wakeAt moved).
type timerHeap []int64

func packTimer(round, id int) int64 { return int64(round)<<32 | int64(id) }

func unpackTimer(t int64) (round, id int) { return int(t >> 32), int(t & 0xffffffff) }

func (h *timerHeap) push(t int64) {
	*h = append(*h, t)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

func (h *timerHeap) pop() int64 {
	s := *h
	top := s[0]
	last := len(s) - 1
	s[0] = s[last]
	*h = s[:last]
	i := 0
	for {
		l := 2*i + 1
		if l >= last {
			break
		}
		small := l
		if r := l + 1; r < last && s[r] < s[l] {
			small = r
		}
		if s[i] <= s[small] {
			break
		}
		s[i], s[small] = s[small], s[i]
		i = small
	}
	return top
}

// assembleStepList builds the set of vertices to step in the given round:
// every awake vertex, plus sleeping vertices woken by a message that survived
// the fault filter (the wake decision is made after delivery precisely so a
// dropped message cannot wake anyone), plus sleeping vertices whose
// SleepUntil timer expires this round. Runs sequentially at the barrier
// between the delivery and compute phases.
//
// The three sources are disjoint — awake vertices are not asleep, and a
// message wake clears asleep before the timer drain runs — so no dedup pass
// is needed; a single sort restores ascending ID order.
func (s *Simulator) assembleStepList(round int) {
	s.stepList = append(s.stepList[:0], s.awake...)
	for _, id := range s.deliverList {
		v := &s.verts[id]
		if v.asleep && !v.halted && len(s.inboxes[id]) > 0 {
			v.asleep, v.wakeAt = false, 0
			s.stepList = append(s.stepList, id)
		}
	}
	for len(s.timers) > 0 {
		due, _ := unpackTimer(s.timers[0])
		if due > round {
			break
		}
		_, id := unpackTimer(s.timers.pop())
		v := &s.verts[id]
		if v.asleep && !v.halted && v.wakeAt == due {
			v.asleep, v.wakeAt = false, 0
			s.stepList = append(s.stepList, int32(id))
		}
	}
	slices.Sort(s.stepList)
}

// mergeStepped is the sparse counterpart of mergeShards: it drains the
// metrics shards of the vertices that stepped this round (only they can have
// accumulated anything), rebuilds the awake list and the next round's
// deliverList, and arms SleepUntil timers. Every stepped vertex entered its
// Round call with asleep=false and wakeAt=0, so a vertex sleeping with a
// timer is pushed onto the heap exactly once per sleep.
//
// deliverList is derived by walking the outboxes of stepped vertices that
// sent at least one message; deliverStamp dedups receivers with the delivery
// round as the stamp (strictly increasing across barriers, reset by Start).
// pendingCount tallies the messages queued to each listed receiver alongside
// the dedup — it is the delivery-phase balance weight (parallel.go) and is
// only meaningful for vertices stamped with the current delivery round.
func (s *Simulator) mergeStepped(round int) {
	var phaseSends int64
	dr := round + 1
	s.deliverList = s.deliverList[:0]
	awake := s.awake[:0]
	for _, id := range s.stepList {
		v := &s.verts[id]
		s.metrics.Messages += v.local.messages
		s.metrics.Words += v.local.words
		phaseSends += v.local.messages
		s.haltedCount += v.local.halts
		if v.local.maxWords > s.metrics.MaxWordsPerMsg {
			s.metrics.MaxWordsPerMsg = v.local.maxWords
		}
		if s.obs != nil && v.local.messages != 0 {
			if v.local.maxWords > s.roundMax {
				s.roundMax = v.local.maxWords
			}
			for b, c := range v.local.hist {
				if c != 0 {
					s.roundHist[b] += c
				}
			}
		}
		if v.local.messages != 0 {
			for p, m := range v.outbox {
				if m == nil {
					continue
				}
				rcv := v.ports[p]
				if s.deliverStamp[rcv] != dr {
					s.deliverStamp[rcv] = dr
					s.pendingCount[rcv] = 1
					s.deliverList = append(s.deliverList, rcv)
				} else {
					s.pendingCount[rcv]++
				}
			}
		}
		v.local = vertexMetrics{}
		switch {
		case v.halted:
			// Dropped from all lists; queued sends still deliver next round.
		case v.asleep:
			s.armTimer(v, int(id))
		default:
			awake = append(awake, id)
		}
	}
	s.awake = awake
	s.pendingMsgs = phaseSends
	slices.Sort(s.deliverList)
}

// armTimer pushes a sleeping vertex's SleepUntil wake onto the heap, unless
// a live entry for the same (vertex, round) already exists. The dedup
// matters for workloads where a vertex is repeatedly message-woken and
// re-sleeps toward the same far-future round (the routing exchange's final
// output round, say): without it, every wake would stack one more stale
// entry that survives until that round. timerStamp records the latest round
// pushed per vertex; rounds never repeat within an execution, so the stamp
// never needs clearing on pop.
func (s *Simulator) armTimer(v *Vertex, id int) {
	if v.wakeAt > 0 && s.timerStamp[id] != v.wakeAt {
		s.timerStamp[id] = v.wakeAt
		s.timers.push(packTimer(v.wakeAt, id))
	}
}

// resetSchedule re-arms the scheduler for a fresh execution: clears all
// worklists and stamps (round numbers restart at 1 each run, so stale stamps
// from a previous execution must not alias) and rebuilds the initial awake
// set, delivery list, and timer heap from the post-Init vertex state.
func (s *Simulator) resetSchedule() {
	s.stepList = s.stepList[:0]
	s.deliverList = s.deliverList[:0]
	s.timers = s.timers[:0]
	awake := s.awake[:0]
	for id := range s.verts {
		s.deliverStamp[id] = 0
		s.inboxRound[id] = 0
		s.timerStamp[id] = 0
	}
	for id := range s.verts {
		v := &s.verts[id]
		for p, m := range v.outbox {
			if m == nil {
				continue
			}
			rcv := v.ports[p]
			if s.deliverStamp[rcv] != 1 {
				s.deliverStamp[rcv] = 1
				s.pendingCount[rcv] = 1
				s.deliverList = append(s.deliverList, rcv)
			} else {
				s.pendingCount[rcv]++
			}
		}
		switch {
		case v.halted:
		case v.asleep:
			s.armTimer(v, id)
		default:
			awake = append(awake, int32(id))
		}
	}
	s.awake = awake
	slices.Sort(s.deliverList)
}
