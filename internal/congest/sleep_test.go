package congest_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// TestSleepWakeOnMessage checks the core quiescence contract: a vertex that
// declared Sleep() is not stepped until a message actually reaches it, and
// the round it wakes in is exactly the delivery round of that message.
func TestSleepWakeOnMessage(t *testing.T) {
	g := graph.Path(2)
	var stepped []int
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	_, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		if v.ID() == 1 {
			return congest.RunFuncs{
				InitFn: func(v *congest.Vertex) { v.Sleep() },
				RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
					stepped = append(stepped, round)
					if len(recv) != 1 {
						t.Errorf("woken vertex got %d messages, want 1", len(recv))
					}
					v.Halt()
				},
			}
		}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				if round == 3 {
					v.Send(0, congest.Message{42})
					v.Halt()
				}
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// The message is sent in round 3, so it is delivered — and the sleeper
	// stepped — in round 4, and never before.
	if len(stepped) != 1 || stepped[0] != 4 {
		t.Errorf("sleeper stepped in rounds %v, want [4]", stepped)
	}
}

// TestDroppedMessageDoesNotWake pins the fault-interaction rule: the wake
// decision is made after the fault filter, so a message dropped in transit
// must not wake a sleeping receiver — even though the send is still charged
// to the metrics (faults drop delivery, never the cost).
func TestDroppedMessageDoesNotWake(t *testing.T) {
	g := graph.Path(2)
	sleeperSteps := 0
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, FaultRate: 1.0})
	ex := sim.Start(func(v *congest.Vertex) congest.Handler {
		if v.ID() == 1 {
			return congest.RunFuncs{
				InitFn: func(v *congest.Vertex) { v.Sleep() },
				RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
					sleeperSteps++
				},
			}
		}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				v.Send(0, congest.Message{int64(round)})
			},
		}
	})
	defer ex.Close()
	for i := 0; i < 10; i++ {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	}
	if sleeperSteps != 0 {
		t.Errorf("sleeper stepped %d times on dropped messages, want 0", sleeperSteps)
	}
	if m := ex.Metrics(); m.Messages != 10 {
		t.Errorf("dropped sends counted %d messages, want 10", m.Messages)
	}
}

// TestSleepUntilTimer checks the explicit timer path: SleepUntil(r) skips the
// vertex until exactly round r with no message involved, and the skipped
// rounds still execute and count.
func TestSleepUntilTimer(t *testing.T) {
	g := graph.Path(2)
	var stepped []int
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		if v.ID() == 1 {
			return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				v.Halt()
			}}
		}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				stepped = append(stepped, round)
				if round >= 5 {
					v.Halt()
					return
				}
				v.SleepUntil(5)
			},
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stepped) != 2 || stepped[0] != 1 || stepped[1] != 5 {
		t.Errorf("timer vertex stepped in rounds %v, want [1 5]", stepped)
	}
	// The intermediate rounds still happen — sleeping compresses work, not
	// the round count.
	if res.Metrics.Rounds != 5 {
		t.Errorf("rounds = %d, want 5", res.Metrics.Rounds)
	}
}

// TestSleepUntilPastRoundIsNoOp checks that SleepUntil with a target at or
// before the next round cannot stall the vertex: it keeps stepping normally.
func TestSleepUntilPastRoundIsNoOp(t *testing.T) {
	g := graph.Path(2)
	steps := 0
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	_, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			if v.ID() == 0 {
				steps++
				v.SleepUntil(round) // already past: must be ignored
				v.SleepUntil(round + 1)
			}
			if round == 3 {
				v.Halt()
			}
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 3 {
		t.Errorf("vertex stepped %d times, want 3 (SleepUntil past round must not stall)", steps)
	}
}

// TestSleepDeadlock checks that a run in which every non-halted vertex is
// asleep with no pending messages and no timers fails fast with ErrDeadlock
// instead of spinning empty rounds to MaxRounds.
func TestSleepDeadlock(t *testing.T) {
	g := graph.Path(3)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	_, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			if v.ID() == 2 {
				v.Halt()
				return
			}
			v.Sleep() // message-wake only, but nobody will ever send
		}}
	})
	if !errors.Is(err, congest.ErrDeadlock) {
		t.Fatalf("err = %v, want ErrDeadlock", err)
	}
}

// TestHaltDominatesSleep checks that Halt wins over any sleep state: a halted
// vertex never reappears on the step list even if messages arrive or a
// previously armed timer expires.
func TestHaltDominatesSleep(t *testing.T) {
	g := graph.Path(2)
	steps := 0
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	_, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		if v.ID() == 0 {
			return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				steps++
				v.SleepUntil(4) // arm a timer...
				v.Halt()        // ...then halt: the timer must be dead
			}}
		}
		return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			v.Send(0, congest.Message{1}) // messages to the halted vertex
			if round == 5 {
				v.Halt()
			}
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if steps != 1 {
		t.Errorf("halted vertex stepped %d times, want 1", steps)
	}
}

// TestStaleInboxNotReobserved checks the stale-inbox guard: a vertex that
// received messages, slept, and was later woken by a timer must see an empty
// recv slice — not the leftover inbox contents from the earlier round.
func TestStaleInboxNotReobserved(t *testing.T) {
	g := graph.Path(2)
	var recvLens []int
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	_, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		if v.ID() == 0 {
			return congest.RunFuncs{
				InitFn: func(v *congest.Vertex) { v.Send(0, congest.Message{7}) },
				RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
					v.Halt()
				},
			}
		}
		return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			recvLens = append(recvLens, len(recv))
			if round >= 4 {
				v.Halt()
				return
			}
			v.SleepUntil(4)
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: the Init message arrives. Round 4: timer wake, nothing new —
	// the round-1 inbox contents must not be re-delivered.
	if len(recvLens) != 2 || recvLens[0] != 1 || recvLens[1] != 0 {
		t.Errorf("recv lengths at steps = %v, want [1 0]", recvLens)
	}
}

// sleepyFlood is a randomized workload that exercises every wake path at
// once: vertices flood a token, each absorbing vertex draws a PRNG-dependent
// nap length before echoing, idle vertices use message-wake sleep, and the
// origin uses timers. Used to check worker-count invariance with sleeping.
func sleepyFlood(v *congest.Vertex) congest.Handler {
	seen := v.ID() == 0
	dist := 0
	echoed := false
	wake := 0
	return congest.RunFuncs{
		InitFn: func(v *congest.Vertex) {
			if seen {
				echoed = true
				v.Broadcast(congest.Message{0})
			} else {
				v.Sleep()
			}
		},
		RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			if !seen {
				if len(recv) == 0 {
					v.Sleep()
					return
				}
				seen = true
				best := recv[0].Msg[0]
				for _, in := range recv[1:] {
					if in.Msg[0] < best {
						best = in.Msg[0]
					}
				}
				dist = int(best) + 1
				// PRNG-dependent nap: the echo round depends on the vertex's
				// private stream, so any scheduling dependence in the PRNG
				// would break the cross-worker comparison below. A nap of one
				// round makes SleepUntil a no-op; the vertex simply steps
				// again and echoes when the wake round arrives.
				wake = round + v.Rand().Intn(3)
				if wake > round {
					v.SleepUntil(wake)
					return
				}
			}
			if !echoed {
				if wake > round {
					return
				}
				echoed = true
				v.Broadcast(congest.Message{int64(dist)})
			}
			v.SetOutput(dist*1000 + wake)
			v.Halt()
		},
	}
}

// TestSleepEquivalenceAcrossWorkers checks that sleeping is invisible to the
// execution semantics regardless of worker count: metrics, outputs, and PRNG
// draws are bit-identical across Workers ∈ {0, 1, 4, 8}.
func TestSleepEquivalenceAcrossWorkers(t *testing.T) {
	g := graph.Grid(12, 12)
	type snapshot struct {
		metrics congest.Metrics
		hash    int64
	}
	var base *snapshot
	for _, workers := range []int{0, 1, 4, 8} {
		sim := congest.NewSimulator(g, congest.Config{Seed: 17, Workers: workers})
		res, err := sim.Run(sleepyFlood)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		h := int64(0)
		for id := 0; id < g.N(); id++ {
			h = h*1000003 + int64(res.Outputs[id].(int))
		}
		snap := &snapshot{metrics: res.Metrics, hash: h}
		if base == nil {
			base = snap
			continue
		}
		if *snap != *base {
			t.Errorf("workers=%d diverged: %+v, want %+v", workers, *snap, *base)
		}
	}
}

// TestSteadyStateZeroAllocsWithSleep checks that the sparse scheduler keeps
// the steady-state round loop allocation-free under continuous sleep/wake
// churn: half the vertices ping-pong via message wakes, half via timers, so
// every worklist and the timer heap are rebuilt every round.
func TestSteadyStateZeroAllocsWithSleep(t *testing.T) {
	g := graph.Grid(16, 16)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1})
	ex := sim.Start(func(v *congest.Vertex) congest.Handler {
		val := int64(v.ID())
		timered := v.ID()%2 == 0
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) { v.BroadcastWords(val) },
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				v.BroadcastWords(val)
				if timered {
					v.SleepUntil(round + 2)
				} else {
					v.Sleep() // woken next round by a neighbor's broadcast
				}
			},
		}
	})
	defer ex.Close()
	for i := 0; i < 6; i++ {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("steady-state Step with sleep churn allocates %.1f times per round, want 0", allocs)
	}
}

// TestTraceActiveCountsStepped pins the trace schema semantics after the
// sparse-scheduler change: the per-round "active" field counts the vertices
// actually stepped that round, so sleeping vertices are excluded and a
// timer-gap round reports zero.
func TestTraceActiveCountsStepped(t *testing.T) {
	g := graph.Path(4)
	obs := congest.NewObserver()
	var buf bytes.Buffer
	obs.EnableTrace(&buf, 16)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, Obs: obs})
	_, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return congest.RunFuncs{RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			if v.ID() != 0 {
				v.Halt()
				return
			}
			if round >= 3 {
				v.Halt()
				return
			}
			v.SleepUntil(3)
		}}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}
	var actives []int
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var ev congest.TraceEvent
		if err := dec.Decode(&ev); err != nil {
			t.Fatal(err)
		}
		actives = append(actives, ev.Active)
	}
	// Round 1: all 4 step. Round 2: vertex 0 sleeps on a timer, the rest are
	// halted — nobody steps. Round 3: the timer fires, vertex 0 steps alone.
	want := []int{4, 0, 1}
	if len(actives) != len(want) {
		t.Fatalf("trace has %d rounds (active=%v), want %d", len(actives), actives, len(want))
	}
	for i := range want {
		if actives[i] != want[i] {
			t.Errorf("round %d active = %d, want %d", i+1, actives[i], want[i])
		}
	}
}
