package congest

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// This file implements the simulator's observability layer (DESIGN.md §3.9):
// an Observer that attributes per-round costs to a tree of named phases, an
// optional ring-buffered JSONL trace sink, and the Report serialization the
// cmd tools emit. The layer is strictly passive — it never influences
// message contents, PRNG streams, or termination, so attaching an Observer
// cannot change any algorithm's outputs or Metrics.

// histBuckets is the number of message-size histogram buckets: exact word
// counts 0..8 (the CONGEST regime; the default MaxWords is 8), then the
// coarse LOCAL-regime ranges 9-16, 17-64, 65-256, 257-1024, and >1024.
const histBuckets = 14

// histBucket maps a message word count to its histogram bucket.
func histBucket(words int) int {
	switch {
	case words <= 8:
		return words
	case words <= 16:
		return 9
	case words <= 64:
		return 10
	case words <= 256:
		return 11
	case words <= 1024:
		return 12
	default:
		return 13
	}
}

// histLabel names a histogram bucket for reports.
func histLabel(b int) string {
	if b <= 8 {
		return strconv.Itoa(b)
	}
	switch b {
	case 9:
		return "9-16"
	case 10:
		return "17-64"
	case 11:
		return "65-256"
	case 12:
		return "257-1024"
	default:
		return ">1024"
	}
}

// PhaseTotals aggregates the costs attributed to one phase while it was the
// innermost open phase ("self" costs; a phase's report additionally rolls up
// its children).
type PhaseTotals struct {
	// Rounds is the number of synchronized rounds executed.
	Rounds int
	// Messages and Words are the sends accounted during those rounds.
	Messages int64
	Words    int64
	// Bits is Words converted at the executing simulator's word size
	// (BitsPerWord of its network), summed exactly per round.
	Bits int64
	// MaxWordsPerMsg is the largest single message sent during the phase.
	MaxWordsPerMsg int
	// Hist counts sent messages by size bucket (see histBucket).
	Hist [histBuckets]int64
}

func (t *PhaseTotals) add(o *PhaseTotals) {
	t.Rounds += o.Rounds
	t.Messages += o.Messages
	t.Words += o.Words
	t.Bits += o.Bits
	if o.MaxWordsPerMsg > t.MaxWordsPerMsg {
		t.MaxWordsPerMsg = o.MaxWordsPerMsg
	}
	for b := range o.Hist {
		t.Hist[b] += o.Hist[b]
	}
}

// phaseNode is one node of the observer's phase tree. Re-opening a phase
// name under the same parent reuses the existing node, so loops (one routing
// exchange per experiment instance, say) accumulate into one node instead of
// growing the tree without bound.
type phaseNode struct {
	name     string
	path     string // "/"-joined ancestry, "" for the root
	parent   *phaseNode
	children []*phaseNode
	byName   map[string]*phaseNode
	self     PhaseTotals
}

func (n *phaseNode) child(name string) *phaseNode {
	if c, ok := n.byName[name]; ok {
		return c
	}
	c := &phaseNode{name: name, parent: n}
	if n.path == "" {
		c.path = name
	} else {
		c.path = n.path + "/" + name
	}
	if n.byName == nil {
		n.byName = make(map[string]*phaseNode)
	}
	n.byName[name] = c
	n.children = append(n.children, c)
	return c
}

// Observer collects phase-attributed round/message/word costs across one or
// more executions (attach it via Config.Obs; every Simulator built from that
// Config reports into it, so a pipeline that chains several simulators —
// decomposition, then routing, then a solver — accumulates one coherent
// tree).
//
// BeginPhase/EndPhase maintain a stack of named phases; every executed round
// is attributed to the innermost open phase (the root when none is open).
// Phase transitions must happen between rounds — from harness code driving
// Execution.Step, or around whole Simulator.Run calls — never from inside a
// Handler.
//
// A nil *Observer is valid everywhere: all methods are nil-receiver-safe
// no-ops, so library code can call cfg.Obs.BeginPhase(...) unconditionally.
// The simulator's steady-state round loop performs zero additional heap
// allocations when an Observer is attached, and none at all when it is nil
// (see TestSteadyStateZeroAllocs).
type Observer struct {
	root   *phaseNode
	cur    *phaseNode
	rounds int // global round counter across all executions
	sink   *traceSink
}

// NewObserver returns an empty Observer ready to attach to a Config.
func NewObserver() *Observer {
	root := &phaseNode{name: "total"}
	return &Observer{root: root, cur: root}
}

// BeginPhase opens a named phase nested inside the currently open phase.
// Re-opening a name under the same parent accumulates into the existing
// node. Safe on a nil Observer (no-op).
func (o *Observer) BeginPhase(name string) {
	if o == nil {
		return
	}
	o.cur = o.cur.child(name)
}

// EndPhase closes the innermost open phase. Calling it with no open phase is
// a no-op, as is calling it on a nil Observer.
func (o *Observer) EndPhase() {
	if o == nil || o.cur.parent == nil {
		return
	}
	o.cur = o.cur.parent
}

// Rounds returns the total number of rounds observed across all executions.
func (o *Observer) Rounds() int {
	if o == nil {
		return 0
	}
	return o.rounds
}

// EnableTrace starts emitting one JSONL trace event per executed round to w,
// buffered through a fixed ring of ringSize events (flushed when full and on
// Flush). ringSize <= 0 defaults to 4096. The caller owns w; call Flush
// before closing it. Safe on a nil Observer (no-op).
func (o *Observer) EnableTrace(w io.Writer, ringSize int) {
	if o == nil {
		return
	}
	if ringSize <= 0 {
		ringSize = 4096
	}
	o.sink = &traceSink{w: w, ring: make([]TraceEvent, ringSize)}
}

// Flush drains the trace ring to the trace writer and reports the first
// write error encountered, if any. Safe on a nil Observer.
func (o *Observer) Flush() error {
	if o == nil || o.sink == nil {
		return nil
	}
	o.sink.flush()
	return o.sink.err
}

// recordRound attributes one executed round to the innermost open phase and,
// when tracing is enabled, appends a trace event. active is the number of
// vertices stepped this round (the step-list length, not the non-halted
// count). hist is drained (merged and zeroed) so the caller can reuse it.
// Called by Execution.Step at the round barrier; never concurrently.
func (o *Observer) recordRound(active int, msgs, words int64, maxWords, wordBits int, hist *[histBuckets]int64) {
	o.rounds++
	bits := words * int64(wordBits)
	t := &o.cur.self
	t.Rounds++
	t.Messages += msgs
	t.Words += words
	t.Bits += bits
	if maxWords > t.MaxWordsPerMsg {
		t.MaxWordsPerMsg = maxWords
	}
	for b, c := range hist {
		if c != 0 {
			t.Hist[b] += c
			hist[b] = 0
		}
	}
	if o.sink != nil {
		o.sink.add(TraceEvent{
			Round:    o.rounds,
			Phase:    o.cur.path,
			Active:   active,
			Messages: msgs,
			Words:    words,
			Bits:     bits,
		})
	}
}

// TraceEvent is one per-round record of the JSONL trace stream. Round is the
// observer-global round index (monotone across chained executions); Phase is
// the "/"-joined phase stack at the time the round executed ("" when no
// phase was open); Active counts the vertices stepped during the round —
// halted vertices and sleeping vertices (§3.10 quiescence) are excluded, so
// a round that only waits out SleepUntil timers reports 0; Messages/Words/
// Bits are the costs accounted during the round.
type TraceEvent struct {
	Round    int    `json:"round"`
	Phase    string `json:"phase"`
	Active   int    `json:"active"`
	Messages int64  `json:"messages"`
	Words    int64  `json:"words"`
	Bits     int64  `json:"bits"`
}

// traceSink buffers trace events in a fixed ring and flushes them as JSONL
// when the ring fills. The encode buffer is reused across flushes, so the
// steady state allocates nothing beyond the writer's own cost.
type traceSink struct {
	w    io.Writer
	ring []TraceEvent
	n    int
	buf  []byte
	err  error
}

func (s *traceSink) add(ev TraceEvent) {
	s.ring[s.n] = ev
	s.n++
	if s.n == len(s.ring) {
		s.flush()
	}
}

func (s *traceSink) flush() {
	for i := 0; i < s.n; i++ {
		s.buf = appendTraceEvent(s.buf[:0], &s.ring[i])
		if _, err := s.w.Write(s.buf); err != nil && s.err == nil {
			s.err = err
		}
	}
	s.n = 0
}

// appendTraceEvent hand-encodes one event as a JSON line. Manual encoding
// (rather than encoding/json) keeps the flush path free of reflection and
// per-event allocations.
func appendTraceEvent(b []byte, ev *TraceEvent) []byte {
	b = append(b, `{"round":`...)
	b = strconv.AppendInt(b, int64(ev.Round), 10)
	b = append(b, `,"phase":`...)
	b = strconv.AppendQuote(b, ev.Phase)
	b = append(b, `,"active":`...)
	b = strconv.AppendInt(b, int64(ev.Active), 10)
	b = append(b, `,"messages":`...)
	b = strconv.AppendInt(b, ev.Messages, 10)
	b = append(b, `,"words":`...)
	b = strconv.AppendInt(b, ev.Words, 10)
	b = append(b, `,"bits":`...)
	b = strconv.AppendInt(b, ev.Bits, 10)
	b = append(b, '}', '\n')
	return b
}

// HistBin is one non-empty message-size histogram bucket of a Report.
type HistBin struct {
	// Words labels the bucket: an exact count ("0".."8") or a range
	// ("9-16", ..., ">1024").
	Words string `json:"words"`
	// Count is the number of messages in the bucket.
	Count int64 `json:"count"`
}

// Report is the serializable phase tree of an Observer: one node per phase,
// children in first-opened order. Rounds/Messages/Words/Bits/Hist roll up
// the node's own costs plus all descendants; SelfRounds is the node's own
// share (rounds executed while it was the innermost open phase), so
// Rounds - SelfRounds is what its children account for.
type Report struct {
	Name           string    `json:"name"`
	Rounds         int       `json:"rounds"`
	SelfRounds     int       `json:"self_rounds"`
	Messages       int64     `json:"messages"`
	Words          int64     `json:"words"`
	Bits           int64     `json:"bits"`
	MaxWordsPerMsg int       `json:"max_words_per_msg"`
	MsgSizeHist    []HistBin `json:"msg_size_hist,omitempty"`
	Phases         []*Report `json:"phases,omitempty"`
}

// Report snapshots the observer's phase tree. It may be called at any round
// barrier; the Observer keeps accumulating afterwards. Returns nil on a nil
// Observer.
func (o *Observer) Report() *Report {
	if o == nil {
		return nil
	}
	return buildReport(o.root)
}

func buildReport(n *phaseNode) *Report {
	cum := n.self
	r := &Report{Name: n.name, SelfRounds: n.self.Rounds}
	for _, c := range n.children {
		cr := buildReport(c)
		r.Phases = append(r.Phases, cr)
		cum.add(&PhaseTotals{
			Rounds:         cr.Rounds,
			Messages:       cr.Messages,
			Words:          cr.Words,
			Bits:           cr.Bits,
			MaxWordsPerMsg: cr.MaxWordsPerMsg,
			Hist:           histOf(cr.MsgSizeHist),
		})
	}
	r.Rounds = cum.Rounds
	r.Messages = cum.Messages
	r.Words = cum.Words
	r.Bits = cum.Bits
	r.MaxWordsPerMsg = cum.MaxWordsPerMsg
	for b, c := range cum.Hist {
		if c != 0 {
			r.MsgSizeHist = append(r.MsgSizeHist, HistBin{Words: histLabel(b), Count: c})
		}
	}
	return r
}

// histOf rebuilds the fixed bucket array from a report's sparse bins (exact
// because histLabel is injective over buckets).
func histOf(bins []HistBin) [histBuckets]int64 {
	var h [histBuckets]int64
	for _, bin := range bins {
		for b := 0; b < histBuckets; b++ {
			if histLabel(b) == bin.Words {
				h[b] += bin.Count
				break
			}
		}
	}
	return h
}

// MarshalIndentJSON renders the report as indented JSON (the format
// cmd/simrun -report and cmd/experiments -reportdir write).
func (r *Report) MarshalIndentJSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// String renders the phase tree as an indented text table for terminal
// output: one line per phase with rolled-up rounds, messages, words, and the
// phase's own share of rounds.
func (r *Report) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-40s %10s %12s %12s %6s\n", "phase", "rounds", "messages", "words", "maxw")
	r.writeTree(&sb, 0)
	return sb.String()
}

func (r *Report) writeTree(sb *strings.Builder, depth int) {
	label := strings.Repeat("  ", depth) + r.Name
	if len(r.Phases) > 0 && r.SelfRounds > 0 {
		label += fmt.Sprintf(" (self %d)", r.SelfRounds)
	}
	fmt.Fprintf(sb, "%-40s %10d %12d %12d %6d\n", label, r.Rounds, r.Messages, r.Words, r.MaxWordsPerMsg)
	for _, c := range r.Phases {
		c.writeTree(sb, depth+1)
	}
}
