package congest_test

import (
	"bytes"
	"encoding/json"
	"io"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// steadyHandler is the non-terminating broadcast workload shared by the
// allocation and overhead tests.
func steadyHandler(v *congest.Vertex) congest.Handler {
	val := int64(v.ID())
	return congest.RunFuncs{
		InitFn: func(v *congest.Vertex) { v.BroadcastWords(val) },
		RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
			v.BroadcastWords(val)
		},
	}
}

// TestObserverNilSafe proves every Observer method is a no-op on a nil
// receiver, which is what lets library code call cfg.Obs unconditionally.
func TestObserverNilSafe(t *testing.T) {
	var obs *congest.Observer
	obs.BeginPhase("a")
	obs.EndPhase()
	obs.EnableTrace(io.Discard, 16)
	if err := obs.Flush(); err != nil {
		t.Fatalf("nil Flush: %v", err)
	}
	if obs.Report() != nil {
		t.Fatal("nil Report should be nil")
	}
	if obs.Rounds() != 0 {
		t.Fatal("nil Rounds should be 0")
	}
}

// TestPhaseAttribution drives one execution through named phases and checks
// the report's structure: rounds land in the innermost open phase, closed
// phases stop accumulating, re-opened names merge into the existing node,
// and the root rolls everything up.
func TestPhaseAttribution(t *testing.T) {
	g := graph.Grid(8, 8)
	obs := congest.NewObserver()
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, Obs: obs})
	ex := sim.Start(steadyHandler)
	defer ex.Close()

	step := func(k int) {
		for i := 0; i < k; i++ {
			if _, err := ex.Step(); err != nil {
				t.Fatal(err)
			}
		}
	}
	ex.BeginPhase("alpha")
	step(3)
	ex.BeginPhase("inner")
	step(2)
	ex.EndPhase()
	ex.EndPhase()
	ex.BeginPhase("beta")
	step(4)
	ex.EndPhase()
	ex.BeginPhase("alpha") // re-open: must merge into the first alpha node
	step(1)
	ex.EndPhase()

	r := obs.Report()
	if r.Rounds != 10 || r.SelfRounds != 0 {
		t.Fatalf("root rounds = %d (self %d), want 10 (self 0)", r.Rounds, r.SelfRounds)
	}
	if len(r.Phases) != 2 {
		t.Fatalf("root has %d children, want 2 (alpha, beta)", len(r.Phases))
	}
	alpha, beta := r.Phases[0], r.Phases[1]
	if alpha.Name != "alpha" || alpha.Rounds != 6 || alpha.SelfRounds != 4 {
		t.Errorf("alpha = %s rounds=%d self=%d, want alpha/6/4", alpha.Name, alpha.Rounds, alpha.SelfRounds)
	}
	if len(alpha.Phases) != 1 || alpha.Phases[0].Name != "inner" || alpha.Phases[0].Rounds != 2 {
		t.Errorf("alpha children = %+v, want one inner node with 2 rounds", alpha.Phases)
	}
	if beta.Name != "beta" || beta.Rounds != 4 {
		t.Errorf("beta = %s rounds=%d, want beta/4", beta.Name, beta.Rounds)
	}
	// Every broadcast message is 1 word on this workload, so the root
	// histogram must put all messages in the "1" bucket.
	if len(r.MsgSizeHist) != 1 || r.MsgSizeHist[0].Words != "1" || r.MsgSizeHist[0].Count != r.Messages {
		t.Errorf("root histogram = %+v, want all %d messages in bucket \"1\"", r.MsgSizeHist, r.Messages)
	}
	if r.Bits != r.Words*int64(congest.BitsPerWord(g.N())) {
		t.Errorf("root bits = %d, want words %d × %d bits/word", r.Bits, r.Words, congest.BitsPerWord(g.N()))
	}
}

// TestTraceJSONL runs a terminating workload with a deliberately tiny ring
// (forcing mid-run flushes) and validates the emitted stream: every line is
// valid JSON, rounds are consecutive from 1, and the event totals reconcile
// with the run's Metrics.
func TestTraceJSONL(t *testing.T) {
	g := graph.Grid(8, 8)
	obs := congest.NewObserver()
	var buf bytes.Buffer
	obs.EnableTrace(&buf, 3)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, Obs: obs})
	res, err := sim.Run(floodHandler)
	if err != nil {
		t.Fatal(err)
	}
	if err := obs.Flush(); err != nil {
		t.Fatal(err)
	}

	lines := bytes.Split(bytes.TrimSuffix(buf.Bytes(), []byte("\n")), []byte("\n"))
	if len(lines) != res.Metrics.Rounds {
		t.Fatalf("trace has %d events, want one per round (%d)", len(lines), res.Metrics.Rounds)
	}
	var msgs, words, bits int64
	for i, line := range lines {
		var ev congest.TraceEvent
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("line %d is not valid JSON: %v\n%s", i+1, err, line)
		}
		if ev.Round != i+1 {
			t.Fatalf("line %d has round %d, want %d", i+1, ev.Round, i+1)
		}
		if ev.Active < 0 || ev.Active > g.N() {
			t.Fatalf("round %d active = %d out of range", ev.Round, ev.Active)
		}
		msgs += ev.Messages
		words += ev.Words
		bits += ev.Bits
	}
	if msgs != res.Metrics.Messages || words != res.Metrics.Words {
		t.Errorf("trace totals msgs=%d words=%d, metrics %d/%d",
			msgs, words, res.Metrics.Messages, res.Metrics.Words)
	}
	if bits != res.Metrics.TotalBits(g.N()) {
		t.Errorf("trace bits = %d, want %d", bits, res.Metrics.TotalBits(g.N()))
	}
	// The final event must report zero active vertices: the last round is
	// where the last vertex halts (final sends are delivered in it).
	var last congest.TraceEvent
	if err := json.Unmarshal(lines[len(lines)-1], &last); err != nil {
		t.Fatal(err)
	}
	if last.Active != 0 {
		t.Errorf("final event active = %d, want 0", last.Active)
	}
}

// TestReportJSONSchema checks the serialized report parses as generic JSON
// and exposes the documented fields.
func TestReportJSONSchema(t *testing.T) {
	g := graph.Grid(8, 8)
	obs := congest.NewObserver()
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, Obs: obs})
	obs.BeginPhase("flood")
	if _, err := sim.Run(floodHandler); err != nil {
		t.Fatal(err)
	}
	obs.EndPhase()
	data, err := obs.Report().MarshalIndentJSON()
	if err != nil {
		t.Fatal(err)
	}
	var generic map[string]any
	if err := json.Unmarshal(data, &generic); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	for _, field := range []string{"name", "rounds", "self_rounds", "messages", "words", "bits", "max_words_per_msg", "phases"} {
		if _, ok := generic[field]; !ok {
			t.Errorf("report JSON missing field %q", field)
		}
	}
	phases := generic["phases"].([]any)
	if len(phases) != 1 || phases[0].(map[string]any)["name"] != "flood" {
		t.Errorf("report phases = %v, want single flood child", phases)
	}
}

// TestObserverDoesNotChangeResults runs the golden Luby workload with an
// observer (and tracing) attached and checks the metrics and outputs are
// bit-identical to the pinned observer-free values — the layer is passive.
// Covered for both executors in TestGoldenPhaseTreeDeterminism; this test
// pins the sequential case against the golden constants directly.
func TestObserverDoesNotChangeResults(t *testing.T) {
	g := graph.Grid(16, 16)
	obs := congest.NewObserver()
	obs.EnableTrace(io.Discard, 64)
	res, err := congest.NewSimulator(g, congest.Config{Seed: 1, Obs: obs}).Run(floodHandler)
	if err != nil {
		t.Fatal(err)
	}
	m := res.Metrics
	if m.Rounds != 31 || m.Messages != 960 || m.Words != 960 || m.MaxWordsPerMsg != 1 {
		t.Errorf("observed flood metrics %+v differ from golden (31/960/960/1)", m)
	}
	if got := obs.Rounds(); got != m.Rounds {
		t.Errorf("observer counted %d rounds, metrics say %d", got, m.Rounds)
	}
}

// TestSteadyStateZeroAllocsObserved is the tracing-disabled overhead budget
// of DESIGN.md §3.9: with an Observer attached but no trace sink, the warm
// Step loop must still perform zero heap allocations per round.
func TestSteadyStateZeroAllocsObserved(t *testing.T) {
	g := graph.Grid(16, 16)
	obs := congest.NewObserver()
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, Obs: obs})
	obs.BeginPhase("steady")
	defer obs.EndPhase()
	ex := sim.Start(steadyHandler)
	defer ex.Close()
	for i := 0; i < 4; i++ {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Errorf("observed steady-state Step allocates %.1f times per round, want 0", allocs)
	}
}

// benchSteadySteps measures the warm Step loop's ns/op under the given
// config (MaxRounds is raised so the benchmark can run as many rounds as it
// needs).
func benchSteadySteps(b *testing.B, obs *congest.Observer) {
	g := graph.Grid(16, 16)
	sim := congest.NewSimulator(g, congest.Config{Seed: 1, MaxRounds: 1 << 30, Obs: obs})
	ex := sim.Start(steadyHandler)
	defer ex.Close()
	for i := 0; i < 4; i++ {
		if _, err := ex.Step(); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ex.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

// TestTracingOverheadBounded enforces the §3.9 enabled-tracing budget: a
// steady-state round with JSONL tracing active (writing to io.Discard) must
// cost less than 2× the untraced round. The 2× bound is deliberately loose —
// the point is to catch accidental per-round allocation or reflection
// creeping into the trace path, not to benchmark precisely.
func TestTracingOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("benchmark comparison skipped in -short mode")
	}
	base := testing.Benchmark(func(b *testing.B) { benchSteadySteps(b, nil) })
	traced := testing.Benchmark(func(b *testing.B) {
		obs := congest.NewObserver()
		obs.EnableTrace(io.Discard, 4096)
		benchSteadySteps(b, obs)
	})
	if base.NsPerOp() <= 0 {
		t.Skipf("degenerate base measurement: %v", base)
	}
	ratio := float64(traced.NsPerOp()) / float64(base.NsPerOp())
	t.Logf("steady-state Step: base %v/op, traced %v/op (ratio %.2f)", base.NsPerOp(), traced.NsPerOp(), ratio)
	if ratio >= 2.0 {
		t.Errorf("tracing overhead ratio %.2f, budget is < 2.0", ratio)
	}
}
