package core_test

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
)

func ExampleRun() {
	// Run the Theorem 2.6 pipeline with a toy solver: every vertex learns
	// its cluster's size. On a small expander-ish torus everything lands in
	// one cluster.
	g := graph.Torus(3, 3)
	sol, err := core.Run(g, core.Options{
		Eps: 0.5,
		Cfg: congest.Config{Seed: 1},
	}, func(cluster *graph.Graph, toOld []int) map[int]int64 {
		out := make(map[int]int64)
		for _, v := range toOld {
			out[v] = int64(cluster.N())
		}
		return out
	})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(sol.Decomposition.Clusters))
	fmt.Println("vertex 0 learned cluster size:", sol.Values[0])
	fmt.Println("message cap respected:", sol.Metrics.MaxWordsPerMsg <= 8)
	// Output:
	// clusters: 1
	// vertex 0 learned cluster size: 9
	// message cap respected: true
}
