package core

import (
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

// Failure-path tests: the §2.3 machinery must detect and contain bad
// clusterings, and the deterministic (Lemma 2.5) track must produce the same
// outputs as the randomized one.

func TestInjectedBadDiameterClusterResets(t *testing.T) {
	// One "cluster" spanning a long path: the diameter self-check must mark
	// it and reset its vertices to singletons.
	g := graph.Path(40)
	dec := expander.FromAssignment(g, make([]int, g.N()), 0.5, 0.3) // phi=0.3 -> tiny b
	sol, err := RunWithDecomposition(g, dec, Options{Cfg: congest.Config{Seed: 1}}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	marked := 0
	for _, m := range sol.DiameterMarked {
		if m {
			marked++
		}
	}
	if marked != g.N() {
		t.Errorf("marked %d vertices, want all %d (diameter far above 2b+1)", marked, g.N())
	}
	// After the reset every vertex is a singleton: values are all 1.
	for v, val := range sol.Values {
		if sol.Undelivered[v] {
			continue
		}
		if val != 1 {
			t.Errorf("vertex %d: cluster size %d after reset, want 1", v, val)
		}
	}
}

func TestInjectedGoodClusteringKept(t *testing.T) {
	// Two tight clusters on a 2x8 grid: diameter check must pass, solver
	// sees the injected clusters.
	g := graph.Grid(2, 8)
	assign := make([]int, g.N())
	for v := 0; v < g.N(); v++ {
		if v%8 >= 4 {
			assign[v] = 1
		}
	}
	dec := expander.FromAssignment(g, assign, 0.5, 0.05)
	sol, err := RunWithDecomposition(g, dec, Options{Cfg: congest.Config{Seed: 2}}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if sol.DiameterMarked[v] {
			t.Fatalf("vertex %d wrongly marked", v)
		}
		if sol.Undelivered[v] {
			t.Fatalf("vertex %d undelivered", v)
		}
		if sol.Values[v] != 8 {
			t.Errorf("vertex %d: cluster size %d, want 8", v, sol.Values[v])
		}
	}
}

func TestRunWithDecompositionValidation(t *testing.T) {
	g := graph.Path(4)
	if _, err := RunWithDecomposition(g, nil, Options{}, clusterSizeSolver); err == nil {
		t.Error("nil decomposition accepted")
	}
	bad := expander.FromAssignment(graph.Path(3), []int{0, 0, 0}, 0.5, 0.1)
	if _, err := RunWithDecomposition(g, bad, Options{}, clusterSizeSolver); err == nil {
		t.Error("mismatched decomposition accepted")
	}
}

func TestDeterministicTrackMatchesRandomized(t *testing.T) {
	g := graph.Grid(5, 5)
	rand1, err := Run(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 3}}, clusterEdgeSolver)
	if err != nil {
		t.Fatal(err)
	}
	det, err := Run(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 3}, Deterministic: true}, clusterEdgeSolver)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if det.Undelivered[v] {
			t.Fatalf("deterministic track lost vertex %d", v)
		}
		if rand1.Values[v] != det.Values[v] {
			t.Errorf("vertex %d: randomized %d vs deterministic %d",
				v, rand1.Values[v], det.Values[v])
		}
	}
	if det.Phases["bfs-forest"] == 0 {
		t.Error("deterministic track should build a BFS forest")
	}
}

func TestDeterministicTrackOnWeighted(t *testing.T) {
	b := graph.NewBuilder(6)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 2, 7)
	b.AddWeightedEdge(2, 3, 9)
	b.AddWeightedEdge(3, 4, 11)
	b.AddWeightedEdge(4, 5, 13)
	b.AddWeightedEdge(5, 0, 15)
	g := b.Graph()
	sol, err := Run(g, Options{Eps: 0.9, Cfg: congest.Config{Seed: 5}, Deterministic: true},
		func(cluster *graph.Graph, toOld []int) map[int]int64 {
			out := make(map[int]int64)
			for _, v := range toOld {
				out[v] = cluster.TotalWeight()
			}
			return out
		})
	if err != nil {
		t.Fatal(err)
	}
	for id, members := range sol.Decomposition.Clusters {
		sub, _ := g.InducedSubgraph(members)
		for _, v := range members {
			if sol.Values[v] != sub.TotalWeight() {
				t.Errorf("cluster %d vertex %d: %d != %d", id, v, sol.Values[v], sub.TotalWeight())
			}
		}
	}
}

func TestDegreeConditionFailsOnInjectedSparseCluster(t *testing.T) {
	// A long cycle declared as "one cluster with phi=0.5": the Lemma 2.3
	// condition deg(v*) >= phi²·|E_i| becomes 2 >= 0.25·40 = 10, which must
	// fail — this is how the property tester detects non-minor-free inputs.
	g := graph.Cycle(40)
	dec := expander.FromAssignment(g, make([]int, g.N()), 0.9, 0.5)
	sol, err := RunWithDecomposition(g, dec, Options{
		Cfg:               congest.Config{Seed: 7},
		SkipDiameterCheck: true,
	}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	failed := false
	for _, ci := range sol.Clusters {
		if len(ci.Members) > 1 && !ci.DegreeConditionOK {
			failed = true
		}
	}
	if !failed {
		t.Error("degree condition should fail on a cycle with inflated phi")
	}
}
