// Package core implements the paper's framework (Theorem 2.6): partition an
// H-minor-free network into high-conductance clusters via an expander
// decomposition, elect a maximum-degree leader v* in every cluster (§2.3),
// let v* gather the entire cluster topology over the cluster's edges via
// random-walk routing (Lemmas 2.3 and 2.4), have v* run an arbitrary
// sequential algorithm on G[V_i] locally, and route each vertex's O(log n)-
// bit share of the answer back by reversing the routing.
//
// All communication — the cluster-ID exchange, the §2.3 diameter self-check,
// leader election, the Lemma 2.3 degree-condition check, the Barenboim–Elkin
// orientation, and the topology/answer exchange — runs as real message
// passing on the CONGEST simulator and is accounted in Solution.Metrics.
// Only the clustering step itself uses the contract-equivalent decomposer
// from internal/expander (see DESIGN.md for the Chang–Saranurak
// substitution).
//
// The failure paths of §2.3 are implemented: clusters flagged by the
// diameter check reset to singletons; clusters failing the degree condition
// are reported (the property tester of §3.4 turns those into Reject); tokens
// that miss the routing budget surface as per-vertex delivery failures.
package core

import (
	"fmt"
	"math"
	"sort"

	"expandergap/internal/congest"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
	"expandergap/internal/routing"
)

// DecomposerKind selects the clustering stage.
type DecomposerKind int

const (
	// SequentialDecomposer uses expander.Decompose (contract-reliable).
	SequentialDecomposer DecomposerKind = iota + 1
	// DistributedDecomposer uses expander.DistributedDecompose (MPX stage
	// measured as message passing).
	DistributedDecomposer
)

// Options configures a framework run.
type Options struct {
	// Eps is the decomposition parameter ε of Theorem 2.6.
	Eps float64
	// Density is the edge-density bound t of the H-minor-free class (the
	// paper sets ε' = ε/t so that |E^r| ≤ ε·min{|V|, |E|}). Zero defaults
	// to 3 (planar density).
	Density int
	// Decomposer picks the clustering stage; zero = SequentialDecomposer.
	Decomposer DecomposerKind
	// Cfg is the simulator configuration for all message-passing phases.
	Cfg congest.Config
	// ForwardRounds overrides the routing budget (0 = automatic: the
	// theoretical WalkBudget for the decomposition's φ, capped at
	// 8·n + 256 which empirically suffices because real clusters have far
	// better conductance than the worst-case target).
	ForwardRounds int
	// SkipDiameterCheck disables the §2.3 self-check (it is cheap but
	// dominates rounds on large low-φ instances; experiments that measure
	// routing alone may skip it).
	SkipDiameterCheck bool
	// Deterministic routes topology and answers over BFS trees toward the
	// leaders (the Lemma 2.5 / Theorem 2.2 deterministic track) instead of
	// lazy random walks. Outputs are identical; only the routing schedule
	// and round counts differ.
	Deterministic bool
	// VertexPayload optionally ships one extra word per vertex to its
	// cluster leader inside the hello token (vertex weights for the
	// weighted MaxIS of §3.1, for example). Length must be g.N() when set;
	// each word must fit the CONGEST cap.
	VertexPayload []int64
	// Decomposition, when non-nil, is used as the clustering instead of
	// running a decomposer — the §2.3 checks and everything downstream
	// still execute as message passing against it. This is the resident-
	// server path (internal/serve): one cached decomposition amortized
	// across many queries. Length of Assignment must equal g.N().
	Decomposition *expander.Decomposition
}

func (o Options) withDefaults() Options {
	if o.Density == 0 {
		o.Density = 3
	}
	if o.Decomposer == 0 {
		o.Decomposer = SequentialDecomposer
	}
	return o
}

// LocalSolver is the sequential algorithm a cluster leader runs on its
// gathered topology. cluster is the induced subgraph of the leader's cluster
// with local vertex IDs; toOld maps local IDs to network IDs. The solver
// returns one int64 answer per network vertex of the cluster; missing
// entries default to 0.
//
// Answers must fit one CONGEST word (|answer| ≤ max(n², 2¹⁶)).
type LocalSolver func(cluster *graph.Graph, toOld []int) map[int]int64

// PayloadSolver is a LocalSolver that additionally receives the per-vertex
// payload words shipped via Options.VertexPayload (keyed by network vertex
// ID).
type PayloadSolver func(cluster *graph.Graph, toOld []int, payload map[int]int64) map[int]int64

// RunWithPayload is Run for solvers that need the per-vertex payload.
func RunWithPayload(g *graph.Graph, opts Options, solve PayloadSolver) (*Solution, error) {
	opts = opts.withDefaults()
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("core: eps must be in (0,1), got %v", opts.Eps)
	}
	if opts.VertexPayload != nil && len(opts.VertexPayload) != g.N() {
		return nil, fmt.Errorf("core: payload covers %d vertices, graph has %d", len(opts.VertexPayload), g.N())
	}
	if err := validateInjected(g, opts.Decomposition); err != nil {
		return nil, err
	}
	return run(g, opts, opts.Decomposition, nil, solve)
}

// validateInjected checks a caller-provided clustering against the graph.
func validateInjected(g *graph.Graph, dec *expander.Decomposition) error {
	if dec != nil && len(dec.Assignment) != g.N() {
		return fmt.Errorf("core: decomposition covers %d vertices, graph has %d", len(dec.Assignment), g.N())
	}
	return nil
}

// ClusterInfo describes one cluster of the partition as reconstructed at
// its leader.
type ClusterInfo struct {
	// Leader is the cluster leader v* (maximum cluster-degree, §2.3).
	Leader int
	// Members lists the cluster's vertices (ascending).
	Members []int
	// DegreeConditionOK reports the Lemma 2.3 check
	// deg(v*) ≥ φ²·|E_i| (with the constant 1, measured exactly).
	DegreeConditionOK bool
}

// Solution is the outcome of a framework run.
type Solution struct {
	// Values holds each vertex's answer word.
	Values []int64
	// Decomposition is the clustering used (after §2.3 failure resets).
	Decomposition *expander.Decomposition
	// Clusters describes each cluster, indexed by cluster ID.
	Clusters []ClusterInfo
	// Leader maps each vertex to its cluster leader.
	Leader []int
	// DiameterMarked flags vertices whose original cluster failed the §2.3
	// diameter self-check (they were reset to singletons).
	DiameterMarked []bool
	// Undelivered flags vertices whose answer never came back (routing
	// budget exhausted or message loss) — the §2.3 routing-failure signal.
	Undelivered []bool
	// TopologyLoss counts topology (edge) tokens whose round trip did not
	// complete. A positive count means some leader may have solved on an
	// incomplete cluster subgraph; per-vertex answers remain well-formed
	// but quality guarantees may degrade.
	TopologyLoss int
	// Metrics aggregates all message-passing phases.
	Metrics congest.Metrics
	// Phases records per-phase round counts for the experiment tables.
	Phases map[string]int
}

// MaxClusterSize returns the largest cluster size in the solution.
func (s *Solution) MaxClusterSize() int {
	max := 0
	for _, c := range s.Clusters {
		if len(c.Members) > max {
			max = len(c.Members)
		}
	}
	return max
}

// Run executes the full Theorem 2.6 pipeline on g and applies solve in every
// cluster.
func Run(g *graph.Graph, opts Options, solve LocalSolver) (*Solution, error) {
	opts = opts.withDefaults()
	if opts.Eps <= 0 || opts.Eps >= 1 {
		return nil, fmt.Errorf("core: eps must be in (0,1), got %v", opts.Eps)
	}
	if err := validateInjected(g, opts.Decomposition); err != nil {
		return nil, err
	}
	return run(g, opts, opts.Decomposition, solve, nil)
}

// RunWithDecomposition executes the pipeline with a caller-provided
// clustering instead of running the decomposer — the entry point for
// failure-injection tests (feeding the §2.3 checks a bad clustering) and for
// callers that reuse one decomposition across several solves. Application
// wrappers (internal/apps) reach the same path by setting
// Options.Decomposition, which they forward verbatim from their own
// Options.Core.
func RunWithDecomposition(g *graph.Graph, dec *expander.Decomposition, opts Options, solve LocalSolver) (*Solution, error) {
	opts = opts.withDefaults()
	if dec == nil {
		return nil, fmt.Errorf("core: nil decomposition")
	}
	if err := validateInjected(g, dec); err != nil {
		return nil, err
	}
	if opts.Eps <= 0 || opts.Eps >= 1 {
		opts.Eps = dec.Eps
		if opts.Eps <= 0 || opts.Eps >= 1 {
			opts.Eps = 0.5
		}
	}
	return run(g, opts, dec, solve, nil)
}

func run(g *graph.Graph, opts Options, injected *expander.Decomposition, solve LocalSolver, psolve PayloadSolver) (*Solution, error) {
	n := g.N()
	sol := &Solution{
		Values:         make([]int64, n),
		Leader:         make([]int, n),
		DiameterMarked: make([]bool, n),
		Undelivered:    make([]bool, n),
		Phases:         make(map[string]int),
	}
	if n == 0 {
		sol.Decomposition = expander.Singletons(g)
		return sol, nil
	}

	// Phase 1: clustering with ε' = ε/t (Theorem 2.6).
	epsPrime := opts.Eps / float64(opts.Density)
	dec := injected
	var err error
	if dec == nil {
		// Sub-phases (mpx, refine) are named by the decomposer itself; the
		// sequential decomposer is leader-local and contributes zero rounds.
		opts.Cfg.Obs.BeginPhase("decompose")
		switch opts.Decomposer {
		case SequentialDecomposer:
			dec, err = expander.Decompose(g, epsPrime, expander.Options{Seed: opts.Cfg.Seed})
		case DistributedDecomposer:
			var m congest.Metrics
			dec, m, err = expander.DistributedDecompose(g, opts.Cfg, epsPrime)
			sol.Metrics.Add(m)
			sol.Phases["decompose"] = m.Rounds
		default:
			err = fmt.Errorf("core: unknown decomposer %d", opts.Decomposer)
		}
		opts.Cfg.Obs.EndPhase()
		if err != nil {
			return nil, err
		}
	}

	phi := dec.Phi
	b := diameterBound(phi, n)

	// Phase 2: §2.3 diameter self-check; marked clusters reset to
	// singletons.
	if !opts.SkipDiameterCheck {
		marked, m, derr := primitives.DiameterCheck(g, opts.Cfg, dec.Assignment, b)
		if derr != nil {
			return nil, derr
		}
		sol.Metrics.Add(m)
		sol.Phases["diameter-check"] = m.Rounds
		copy(sol.DiameterMarked, marked)
		if anyTrue(marked) {
			assign := append(primitives.ClusterAssignment(nil), dec.Assignment...)
			nextID := maxInt(assign) + 1
			for v, mk := range marked {
				if mk {
					assign[v] = nextID
					nextID++
				}
			}
			dec = expander.FromAssignment(g, assign, dec.Eps, dec.Phi)
		}
	}
	sol.Decomposition = dec

	// Phase 3: leader election by (cluster-degree, ID).
	leaders, m, err := primitives.ElectLeaders(g, opts.Cfg, dec.Assignment, b)
	if err != nil {
		return nil, err
	}
	sol.Metrics.Add(m)
	sol.Phases["elect-leaders"] = m.Rounds
	copy(sol.Leader, leaders.Leader)

	// Phase 4: Barenboim–Elkin orientation so each vertex owns O(t) cluster
	// edges.
	phases := 2*intLog2(n) + 4
	orient, m, err := primitives.LowOutDegreeOrientation(g, opts.Cfg, dec.Assignment, opts.Density, phases)
	if err != nil {
		return nil, err
	}
	sol.Metrics.Add(m)
	sol.Phases["orientation"] = m.Rounds

	// Phase 5+6: topology gathering and answer dissemination in one
	// exchange (Lemma 2.4 forward, reversed-walk backward).
	budget := opts.ForwardRounds
	if budget == 0 {
		budget = forwardBudget(g, dec, phi, n)
	}
	sol.Phases["forward-budget"] = budget
	plan := routing.Plan{
		Cluster:       dec.Assignment,
		Leader:        leaders.Leader,
		ForwardRounds: budget,
		Strategy:      routing.RandomWalk,
	}
	if opts.Deterministic {
		// Lemma 2.5 track: build BFS trees toward the leaders and route
		// deterministically along them. The FIFO tree schedule delivers
		// every token within depth + backlog rounds, so the per-cluster
		// bound |V_i|·maxTokens + diameter is a safe budget.
		roots := make(map[int]int, len(dec.Clusters))
		for id, members := range dec.Clusters {
			roots[id] = leaders.Leader[members[0]]
		}
		bfs, m, berr := primitives.BFSForest(g, opts.Cfg, dec.Assignment, roots, b)
		if berr != nil {
			return nil, berr
		}
		sol.Metrics.Add(m)
		sol.Phases["bfs-forest"] = m.Rounds
		plan.Strategy = routing.TreeParent
		plan.Parent = bfs.Parent
		maxTokens := 4*opts.Density + 1
		treeBudget := 0
		for _, members := range dec.Clusters {
			if tb := len(members)*maxTokens + b + 8; tb > treeBudget {
				treeBudget = tb
			}
		}
		if opts.ForwardRounds == 0 {
			plan.ForwardRounds = treeBudget
			sol.Phases["forward-budget"] = treeBudget
		}
	}
	tokens := buildTopologyTokens(g, dec.Assignment, orient, opts.VertexPayload)
	solveCtx := &solveContext{
		g:            g,
		solve:        solve,
		psolve:       psolve,
		phi:          phi,
		leaderDegree: leaders.LeaderDegree,
		infoByLeader: make(map[int]*ClusterInfo),
	}
	opts.Cfg.Obs.BeginPhase("gather-solve-disseminate")
	ex, m, err := routing.ExchangeBatch(g, opts.Cfg, plan, tokens, solveCtx.respond)
	opts.Cfg.Obs.EndPhase()
	if err != nil {
		return nil, err
	}
	sol.Metrics.Add(m)
	sol.Phases["gather-solve-disseminate"] = m.Rounds

	// Collect per-vertex answers from the hello-token responses.
	for v := 0; v < n; v++ {
		got := false
		for _, resp := range ex.Responses[v] {
			if resp.Seq == 0 { // hello token carries the answer
				sol.Values[v] = resp.A
				got = true
			}
		}
		if !got {
			sol.Undelivered[v] = true
		}
		sol.TopologyLoss += len(tokens[v]) - len(ex.Responses[v])
		if !got {
			sol.TopologyLoss-- // the hello token was already counted above
		}
	}
	if sol.TopologyLoss < 0 {
		sol.TopologyLoss = 0
	}

	// Assemble cluster infos in cluster-ID order.
	sol.Clusters = make([]ClusterInfo, len(dec.Clusters))
	for id, members := range dec.Clusters {
		leader := leaders.Leader[members[0]]
		info := solveCtx.infoByLeader[leader]
		ci := ClusterInfo{Leader: leader, Members: members}
		if info != nil {
			ci.DegreeConditionOK = info.DegreeConditionOK
		}
		sol.Clusters[id] = ci
	}
	return sol, nil
}

// forwardBudget derives the routing budget: the theoretical Lemma 2.4 value
// WalkBudget(φ, n) capped by the concrete lazy-walk hitting-time bound —
// the expected hitting time of a simple random walk is at most 2·m·D, the
// lazy walk doubles it, and a ×4 slack plus log n retries covers congestion
// and the high-probability requirement. The cap matters because the
// worst-case φ target is far below the conductance of real clusters.
func forwardBudget(g *graph.Graph, dec *expander.Decomposition, phi float64, n int) int {
	hitting := 0
	for i := range dec.Clusters {
		if len(dec.Clusters[i]) <= 1 {
			continue
		}
		sub := dec.ClusterView(g, i)
		b := 8*sub.M()*maxOf(sub.Diameter(), 1) + 64
		if b > hitting {
			hitting = b
		}
	}
	if hitting == 0 {
		return 16
	}
	if theory := routing.WalkBudget(phi, n); theory < hitting {
		return theory
	}
	return hitting
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// diameterBound returns the §2.3 bound b = O(φ⁻¹ log n), capped at n (a
// connected cluster can never exceed diameter n-1).
func diameterBound(phi float64, n int) int {
	if phi <= 0 {
		return n
	}
	b := int(math.Ceil(2*math.Log(float64(n)+2)/phi)) + 1
	if b > n {
		b = n
	}
	if b < 2 {
		b = 2
	}
	return b
}

// buildTopologyTokens produces, for every vertex, one hello token (Seq 0,
// A = -1, B = the vertex payload word, defaulting to 0) plus one token per
// owned cluster edge (A = neighbor ID, B = edge weight, or sign encoded as
// ±weight for signed graphs).
func buildTopologyTokens(g *graph.Graph, cluster primitives.ClusterAssignment, orient primitives.Orientation, payload []int64) [][]routing.Token {
	n := g.N()
	tokens := make([][]routing.Token, n)
	for v := 0; v < n; v++ {
		var p int64
		if payload != nil {
			p = payload[v]
		}
		tokens[v] = append(tokens[v], routing.Token{A: -1, B: p})
	}
	for idx, owner := range orient.Owner {
		if owner < 0 {
			continue
		}
		e := g.EdgeAt(idx)
		if cluster[e.U] != cluster[e.V] {
			continue
		}
		payload := g.Weight(idx)
		if g.Signed() {
			payload = int64(g.Sign(idx)) * payload
		}
		tokens[owner] = append(tokens[owner], routing.Token{
			A: int64(e.Other(owner)),
			B: payload,
		})
	}
	return tokens
}

type solveContext struct {
	g            *graph.Graph
	solve        LocalSolver
	psolve       PayloadSolver
	phi          float64
	leaderDegree []int
	infoByLeader map[int]*ClusterInfo
}

// respond implements the leader-local computation: reconstruct G[V_i] from
// the absorbed tokens, check the Lemma 2.3 degree condition, run the solver,
// and answer every hello token with its origin's value.
func (sc *solveContext) respond(leader int, inbox []routing.Token) [][2]int64 {
	memberSet := map[int]bool{leader: true}
	type edge struct {
		u, v    int
		payload int64
	}
	var edges []edge
	helloPayload := make(map[int]int64)
	for _, tok := range inbox {
		memberSet[tok.Origin] = true
		if tok.A >= 0 {
			edges = append(edges, edge{u: tok.Origin, v: int(tok.A), payload: tok.B})
			memberSet[int(tok.A)] = true
		} else {
			helloPayload[tok.Origin] = tok.B
		}
	}
	members := make([]int, 0, len(memberSet))
	for v := range memberSet {
		members = append(members, v)
	}
	sort.Ints(members)
	toNew := make(map[int]int, len(members))
	for i, v := range members {
		toNew[v] = i
	}
	bld := graph.NewBuilder(len(members))
	for _, e := range edges {
		u, v := toNew[e.u], toNew[e.v]
		if u == v || bld.HasEdge(u, v) {
			continue
		}
		switch {
		case sc.g.Signed():
			sign := int8(1)
			if e.payload < 0 {
				sign = -1
			}
			bld.AddSignedEdge(u, v, sign)
		case sc.g.Weighted():
			bld.AddWeightedEdge(u, v, e.payload)
		default:
			bld.AddEdge(u, v)
		}
	}
	sub := bld.Graph()

	// Lemma 2.3 condition: deg(v*) ≥ φ²·|E_i|.
	degOK := float64(sc.leaderDegree[leader]) >= sc.phi*sc.phi*float64(sub.M())
	sc.infoByLeader[leader] = &ClusterInfo{Leader: leader, Members: members, DegreeConditionOK: degOK}

	var values map[int]int64
	if sc.psolve != nil {
		values = sc.psolve(sub, members, helloPayload)
	} else {
		values = sc.solve(sub, members)
	}
	out := make([][2]int64, len(inbox))
	for i, tok := range inbox {
		if tok.A == -1 {
			out[i] = [2]int64{values[tok.Origin], 1}
		} else {
			out[i] = [2]int64{0, 2} // plain ack for edge tokens
		}
	}
	return out
}

func anyTrue(bs []bool) bool {
	for _, b := range bs {
		if b {
			return true
		}
	}
	return false
}

func maxInt(a []int) int {
	m := 0
	for _, x := range a {
		if x > m {
			m = x
		}
	}
	return m
}

func intLog2(n int) int {
	l := 0
	for v := 1; v < n; v *= 2 {
		l++
	}
	return l
}
