package core

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// clusterSizeSolver assigns every vertex the size of its cluster — easy to
// verify globally.
func clusterSizeSolver(cluster *graph.Graph, toOld []int) map[int]int64 {
	out := make(map[int]int64, len(toOld))
	for _, v := range toOld {
		out[v] = int64(cluster.N())
	}
	return out
}

// clusterEdgeSolver assigns every vertex the edge count of its cluster.
func clusterEdgeSolver(cluster *graph.Graph, toOld []int) map[int]int64 {
	out := make(map[int]int64, len(toOld))
	for _, v := range toOld {
		out[v] = int64(cluster.M())
	}
	return out
}

func TestRunClusterSizes(t *testing.T) {
	g := graph.Grid(6, 6)
	sol, err := Run(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 1}}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if sol.Undelivered[v] {
			t.Fatalf("vertex %d: routing failed", v)
		}
		id := sol.Decomposition.Assignment[v]
		want := int64(len(sol.Decomposition.Clusters[id]))
		if sol.Values[v] != want {
			t.Errorf("vertex %d: value %d, want cluster size %d", v, sol.Values[v], want)
		}
	}
	if sol.Metrics.Rounds == 0 {
		t.Error("no rounds recorded")
	}
	for _, phase := range []string{"diameter-check", "elect-leaders", "orientation", "gather-solve-disseminate"} {
		if sol.Phases[phase] == 0 {
			t.Errorf("phase %q recorded no rounds", phase)
		}
	}
}

func TestRunTopologyReconstructionExact(t *testing.T) {
	// The edge-count solver proves the leader reconstructed the cluster
	// subgraph exactly: compare against the true induced subgraph.
	g := graph.TriangulatedGrid(5, 5)
	sol, err := Run(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 3}}, clusterEdgeSolver)
	if err != nil {
		t.Fatal(err)
	}
	for id, members := range sol.Decomposition.Clusters {
		sub, _ := g.InducedSubgraph(members)
		for _, v := range members {
			if sol.Undelivered[v] {
				t.Fatalf("vertex %d undelivered", v)
			}
			if sol.Values[v] != int64(sub.M()) {
				t.Errorf("cluster %d vertex %d: leader saw %d edges, truth %d",
					id, v, sol.Values[v], sub.M())
			}
		}
	}
}

func TestRunWeightedTopology(t *testing.T) {
	// Weighted edges survive gathering: solver returns total cluster weight.
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 10)
	b.AddWeightedEdge(1, 2, 20)
	b.AddWeightedEdge(2, 3, 30)
	b.AddWeightedEdge(3, 0, 40)
	g := b.Graph()
	sol, err := Run(g, Options{Eps: 0.9, Cfg: congest.Config{Seed: 5}},
		func(cluster *graph.Graph, toOld []int) map[int]int64 {
			out := make(map[int]int64)
			for _, v := range toOld {
				out[v] = cluster.TotalWeight()
			}
			return out
		})
	if err != nil {
		t.Fatal(err)
	}
	// With eps=0.9 the 4-cycle should stay one cluster of total weight 100.
	if len(sol.Decomposition.Clusters) == 1 {
		for v := 0; v < 4; v++ {
			if sol.Values[v] != 100 {
				t.Errorf("vertex %d: weight %d, want 100", v, sol.Values[v])
			}
		}
	} else {
		// Decomposer split it; each vertex still sees its own cluster's
		// weight consistently.
		for id, members := range sol.Decomposition.Clusters {
			sub, _ := g.InducedSubgraph(members)
			for _, v := range members {
				if sol.Values[v] != sub.TotalWeight() {
					t.Errorf("cluster %d: value %d, want %d", id, sol.Values[v], sub.TotalWeight())
				}
			}
		}
	}
}

func TestRunSignedTopology(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddSignedEdge(0, 1, 1)
	b.AddSignedEdge(1, 2, -1)
	b.AddSignedEdge(0, 2, -1)
	g := b.Graph()
	sol, err := Run(g, Options{Eps: 0.9, Cfg: congest.Config{Seed: 7}},
		func(cluster *graph.Graph, toOld []int) map[int]int64 {
			neg := int64(0)
			for i := 0; i < cluster.M(); i++ {
				if cluster.Sign(i) == -1 {
					neg++
				}
			}
			out := make(map[int]int64)
			for _, v := range toOld {
				out[v] = neg
			}
			return out
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Decomposition.Clusters) == 1 && sol.Values[0] != 2 {
		t.Errorf("negative edge count = %d, want 2", sol.Values[0])
	}
}

func TestRunDistributedDecomposer(t *testing.T) {
	g := graph.Grid(5, 5)
	sol, err := Run(g, Options{
		Eps:        0.5,
		Decomposer: DistributedDecomposer,
		Cfg:        congest.Config{Seed: 11},
	}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Phases["decompose"] == 0 {
		t.Error("distributed decomposer should record rounds")
	}
	for v := 0; v < g.N(); v++ {
		if sol.Undelivered[v] {
			t.Fatalf("vertex %d undelivered", v)
		}
	}
}

func TestRunDegreeConditionOnCliques(t *testing.T) {
	// Cliques are expanders with a huge max degree: the Lemma 2.3 check must
	// pass.
	g := graph.Complete(10)
	sol, err := Run(g, Options{Eps: 0.3, Cfg: congest.Config{Seed: 13}}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	for _, ci := range sol.Clusters {
		if len(ci.Members) > 1 && !ci.DegreeConditionOK {
			t.Errorf("clique cluster failed degree condition: %+v", ci)
		}
	}
}

func TestRunInvalidOptions(t *testing.T) {
	g := graph.Path(4)
	if _, err := Run(g, Options{Eps: 0}, clusterSizeSolver); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Run(g, Options{Eps: 0.5, Decomposer: DecomposerKind(99)}, clusterSizeSolver); err == nil {
		t.Error("unknown decomposer accepted")
	}
}

func TestRunEmptyGraph(t *testing.T) {
	g := graph.NewBuilder(0).Graph()
	sol, err := Run(g, Options{Eps: 0.5}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	if len(sol.Values) != 0 {
		t.Error("empty graph should yield empty solution")
	}
}

func TestRunSingletonVerticesGetSolved(t *testing.T) {
	// A graph with an isolated vertex: its own cluster, solver still runs.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 0)
	g := b.Graph() // vertices 3 and 4 isolated
	sol, err := Run(g, Options{Eps: 0.5, Cfg: congest.Config{Seed: 17}}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Values[3] != 1 || sol.Values[4] != 1 {
		t.Errorf("isolated vertices got %d,%d, want 1,1", sol.Values[3], sol.Values[4])
	}
}

func TestRunDeterminism(t *testing.T) {
	g := graph.Torus(4, 4)
	run := func() []int64 {
		sol, err := Run(g, Options{Eps: 0.4, Cfg: congest.Config{Seed: 19}}, clusterEdgeSolver)
		if err != nil {
			t.Fatal(err)
		}
		return sol.Values
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic at %d: %d vs %d", i, a[i], b[i])
		}
	}
}

func TestRunLeaderIsMaxDegreeMember(t *testing.T) {
	g := graph.RandomMaximalPlanar(40, rand.New(rand.NewSource(99)))
	sol, err := Run(g, Options{Eps: 0.3, Cfg: congest.Config{Seed: 23}}, clusterSizeSolver)
	if err != nil {
		t.Fatal(err)
	}
	for id, members := range sol.Decomposition.Clusters {
		leader := sol.Clusters[id].Leader
		inCluster := false
		for _, v := range members {
			if v == leader {
				inCluster = true
			}
		}
		if !inCluster {
			t.Errorf("cluster %d leader %d not a member", id, leader)
		}
		// Leader has max same-cluster degree.
		cdeg := func(v int) int {
			d := 0
			g.ForEachNeighbor(v, func(u, _ int) {
				if sol.Decomposition.Assignment[u] == id {
					d++
				}
			})
			return d
		}
		ld := cdeg(leader)
		for _, v := range members {
			if cdeg(v) > ld {
				t.Errorf("cluster %d: member %d has degree %d > leader's %d", id, v, cdeg(v), ld)
			}
		}
	}
}
