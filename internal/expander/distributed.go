package expander

import (
	"fmt"
	"math"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// mpxScale is the fixed-point denominator for exponential shifts: values are
// carried in milli-units so each message word stays well inside the CONGEST
// word-size cap.
const mpxScale = 1000

// MPXResult is the outcome of the Miller–Peng–Xu exponential-shift
// clustering.
type MPXResult struct {
	// Assignment maps each vertex to its cluster center's vertex ID.
	Assignment primitives.ClusterAssignment
	// Rounds is the propagation budget used.
	Rounds int
}

type mpxHandler struct {
	bestCenter int64
	bestMilli  int64 // value of the best offer in milli-units
	improved   bool
	budget     int
}

func (h *mpxHandler) Init(v *congest.Vertex) {
	// Draw δ_v ~ Exponential(β) truncated at the deterministic cap; the cap
	// and β arrive via closure-initialized fields (set before Init).
}

// mpxBroadcast floods the (center, int part, frac part) offer to all
// neighbors through the vertex's arena; values travel in milli-units.
func mpxBroadcast(v *congest.Vertex, center int, milli int64) {
	v.BroadcastWords(int64(center), milli/mpxScale, milli%mpxScale)
}

func mpxDecode(m congest.Message) (center int, milli int64) {
	return int(m[0]), m[1]*mpxScale + m[2]
}

func (h *mpxHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	for _, in := range recv {
		if len(in.Msg) != 3 {
			continue
		}
		center, milli := mpxDecode(in.Msg)
		// The offer costs one hop to reach us.
		milli -= mpxScale
		if milli < 0 {
			continue
		}
		if milli > h.bestMilli || (milli == h.bestMilli && int64(center) > h.bestCenter) {
			h.bestCenter = int64(center)
			h.bestMilli = milli
			h.improved = true
		}
	}
	if h.improved {
		h.improved = false
		mpxBroadcast(v, int(h.bestCenter), h.bestMilli)
	}
	if round >= h.budget {
		v.SetOutput(int(h.bestCenter))
		v.Halt()
	}
}

// MPX runs Miller–Peng–Xu exponential-shift clustering on the CONGEST
// simulator: every vertex draws δ_v ~ Exp(β) (truncated at 4·ln(n+1)/β) and
// joins the center c maximizing δ_c − dist(c, ·), breaking ties toward the
// larger center ID. Each edge is cut with probability O(β), and cluster
// radii are at most max δ = O(log n / β) — the classic low-diameter
// decomposition trade-off this package reuses as the distributed clustering
// stage.
func MPX(g *graph.Graph, cfg congest.Config, beta float64) (MPXResult, congest.Metrics, error) {
	if beta <= 0 || beta >= 1 {
		return MPXResult{}, congest.Metrics{}, fmt.Errorf("expander: beta must be in (0,1), got %v", beta)
	}
	n := g.N()
	if n == 0 {
		return MPXResult{}, congest.Metrics{}, nil
	}
	deltaCap := 4 * math.Log(float64(n)+1) / beta
	budget := int(math.Ceil(deltaCap)) + 2
	cfg.Obs.BeginPhase("mpx")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		// Exponential sample from the vertex's private PRNG.
		delta := v.Rand().ExpFloat64() / beta
		if delta > deltaCap {
			delta = deltaCap
		}
		h := &mpxHandler{
			bestCenter: int64(v.ID()),
			bestMilli:  int64(delta * mpxScale),
			budget:     budget,
		}
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) {
				mpxBroadcast(v, int(h.bestCenter), h.bestMilli)
			},
			RoundFn: h.Round,
		}
	})
	if err != nil {
		return MPXResult{}, res.Metrics, err
	}
	out := MPXResult{
		Assignment: make(primitives.ClusterAssignment, n),
		Rounds:     res.Metrics.Rounds,
	}
	for v := 0; v < n; v++ {
		out.Assignment[v] = res.Outputs[v].(int)
	}
	return out, res.Metrics, nil
}

// DistributedDecompose builds an (ε, φ) expander decomposition with a
// two-stage distributed pipeline, standing in for the Chang–Saranurak
// construction (Theorem 2.1):
//
//  1. MPX exponential-shift clustering with β = ε/4 runs as real message
//     passing and bounds the expected inter-cluster edges by O(β)·|E| while
//     keeping cluster diameters O(log n / β).
//  2. Each MPX cluster is refined into φ-expanders by the recursive
//     sparse-cut decomposer with budget ε/2, modeling the leader-local
//     computation the framework performs after gathering a low-diameter
//     cluster (the gathering cost itself is measured separately by the
//     framework's routing step; see internal/core).
//
// The returned metrics cover stage 1's communication. The final φ is
// PhiTarget(ε/2, |E|).
func DistributedDecompose(g *graph.Graph, cfg congest.Config, eps float64) (*Decomposition, congest.Metrics, error) {
	if eps <= 0 || eps >= 1 {
		return nil, congest.Metrics{}, fmt.Errorf("expander: eps must be in (0,1), got %v", eps)
	}
	mpx, metrics, err := MPX(g, cfg, eps/4)
	if err != nil {
		return nil, metrics, err
	}
	phi := PhiTarget(eps/2, g.M())
	final := &Decomposition{
		Assignment: make(primitives.ClusterAssignment, g.N()),
		Eps:        eps,
		Phi:        phi,
	}
	// Stage 2 is leader-local computation (zero communication rounds); the
	// phase still appears in reports so the two-stage structure is visible.
	cfg.Obs.BeginPhase("refine")
	defer cfg.Obs.EndPhase()
	for _, members := range mpx.Assignment.Clusters() {
		sub, toOld := g.InducedSubgraph(members)
		subDec, derr := Decompose(sub, eps/2, Options{Phi: phi, Seed: cfg.Seed})
		if derr != nil {
			return nil, metrics, derr
		}
		for _, cluster := range subDec.Clusters {
			orig := make([]int, len(cluster))
			for i, v := range cluster {
				orig[i] = toOld[v]
			}
			final.addCluster(orig)
		}
	}
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if final.Assignment[e.U] != final.Assignment[e.V] {
			final.Removed = append(final.Removed, i)
		}
	}
	return final, metrics, nil
}
