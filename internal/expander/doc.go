// Package expander implements (ε, φ) expander decompositions, the engine of
// the paper's framework (Theorems 2.1, 2.2 and 2.6).
//
// An (ε, φ) expander decomposition removes at most an ε fraction of the
// edges so that every remaining connected component has conductance at least
// φ. Three constructions are provided:
//
//   - Decompose: a recursive sparse-cut decomposition. It plays
//     the role of the Chang–Saranurak FOCS'20 construction, which this
//     repository substitutes (see DESIGN.md): the framework only consumes
//     the (ε, φ) contract, which this decomposer meets with
//     φ = ε/Θ(log m), matching the existential bound φ = Ω(ε/log n).
//     Options.Workers > 1 fans the recursion's independent pieces out to a
//     bounded goroutine pool with per-piece hashed seeds and a shared
//     removed-edge bitmap that is race-free by ownership; the sequential
//     Workers <= 1 path remains the pinned ground truth (DESIGN.md §3.12).
//
//   - DistributedDecompose: a genuine message-passing construction run on
//     the CONGEST simulator. It combines Miller–Peng–Xu exponential-shift
//     clustering (to bound inter-cluster edges) with leader-local expander
//     refinement of each low-diameter cluster, mirroring how the paper's
//     framework lets cluster leaders do heavy local computation.
//
//   - DistributedNibble: a message-passing PageRank-Nibble decomposer
//     (Andersen–Chung–Lang push process as real CONGEST communication)
//     that repeatedly carves sweep-cut clusters; it demonstrates the
//     nibble approach end-to-end alongside the MPX+refine pipeline.
//
// Decomposition.Verify checks the contract against the definitions of
// Section 2 using exact conductance for small clusters and certified
// spectral bounds otherwise.
//
// When a congest.Observer is attached to the Config, the distributed
// constructions report their stage structure as named phases:
// DistributedDecompose as "mpx" and "refine" (refinement is leader-local
// and contributes zero rounds), DistributedNibble as repeated
// "elect-leaders" / "push" / "sweep" carve iterations.
package expander
