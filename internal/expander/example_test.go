package expander_test

import (
	"fmt"
	"math/rand"

	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

func ExampleDecompose() {
	// Two cliques joined by one bridge: with φ above the bridge cut's
	// conductance, the decomposition must split exactly there.
	b := graph.NewBuilder(12)
	for i := 0; i < 6; i++ {
		for j := i + 1; j < 6; j++ {
			b.AddEdge(i, j)
			b.AddEdge(6+i, 6+j)
		}
	}
	b.AddEdge(5, 6)
	g := b.Graph()

	dec, err := expander.Decompose(g, 0.2, expander.Options{Seed: 1, Phi: 0.1})
	if err != nil {
		panic(err)
	}
	fmt.Println("clusters:", len(dec.Clusters))
	fmt.Println("removed edges:", len(dec.Removed))

	rep := dec.Verify(g, rand.New(rand.NewSource(1)))
	fmt.Println("contract holds:", rep.CutOK && rep.ConductanceOK && rep.Connected)
	// Output:
	// clusters: 2
	// removed edges: 1
	// contract holds: true
}
