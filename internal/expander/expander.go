package expander

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"expandergap/internal/conductance"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// Decomposition is the result of an (ε, φ) expander decomposition.
type Decomposition struct {
	// Assignment maps each vertex to its cluster ID (0..len(Clusters)-1).
	Assignment primitives.ClusterAssignment
	// Clusters lists the vertex sets, each sorted ascending.
	Clusters [][]int
	// Removed lists the indices of inter-cluster (removed) edges.
	Removed []int
	// Eps is the requested edge-removal budget.
	Eps float64
	// Phi is the conductance target each cluster was built to meet.
	Phi float64
}

// CutFraction returns |E^r| / |E| (0 for edgeless graphs).
func (d *Decomposition) CutFraction(g *graph.Graph) float64 {
	if g.M() == 0 {
		return 0
	}
	return float64(len(d.Removed)) / float64(g.M())
}

// ClusterGraph returns the induced subgraph of cluster i and the mapping
// from its local vertex IDs to graph vertex IDs. It materializes a full
// copy; read-only consumers should prefer ClusterView.
func (d *Decomposition) ClusterGraph(g *graph.Graph, i int) (*graph.Graph, []int) {
	return g.InducedSubgraph(d.Clusters[i])
}

// ClusterView returns the zero-copy view of cluster i. Cluster vertex lists
// are sorted ascending, so the view's local IDs coincide with ClusterGraph's.
func (d *Decomposition) ClusterView(g *graph.Graph, i int) *graph.View {
	return g.Induce(d.Clusters[i])
}

// LargestCluster returns the size of the largest cluster.
func (d *Decomposition) LargestCluster() int {
	max := 0
	for _, c := range d.Clusters {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// Report summarizes a verification pass.
type Report struct {
	// CutOK is true when |E^r| ≤ ε·|E|.
	CutOK bool
	// CutFraction is the measured |E^r|/|E|.
	CutFraction float64
	// MinConductance is the smallest certified cluster conductance lower
	// bound observed (exact for small clusters, Cheeger bound otherwise).
	MinConductance float64
	// ConductanceOK is true when every multi-vertex cluster's certified
	// conductance meets d.Phi.
	ConductanceOK bool
	// Exact is true when every cluster was checked exactly.
	Exact bool
	// Connected is true when every cluster induces a connected subgraph.
	Connected bool
}

// Verify checks the decomposition contract on g. rng drives the spectral
// estimation for clusters too large for exact conductance.
func (d *Decomposition) Verify(g *graph.Graph, rng *rand.Rand) Report {
	rep := Report{
		CutFraction:    d.CutFraction(g),
		MinConductance: math.Inf(1),
		ConductanceOK:  true,
		Exact:          true,
		Connected:      true,
	}
	rep.CutOK = float64(len(d.Removed)) <= d.Eps*float64(g.M())+1e-9
	for i := range d.Clusters {
		sub := d.ClusterView(g, i)
		if sub.N() <= 1 {
			continue
		}
		if !sub.Connected() {
			rep.Connected = false
			rep.ConductanceOK = false
			rep.MinConductance = 0
			continue
		}
		var phi float64
		if sub.N() <= conductance.MaxExactN {
			phi = conductance.ExactConductance(sub)
		} else {
			rep.Exact = false
			phi = conductance.EstimateBounds(sub, 300, rng).Lower
		}
		if phi < rep.MinConductance {
			rep.MinConductance = phi
		}
		if phi < d.Phi-1e-12 {
			rep.ConductanceOK = false
		}
	}
	if math.IsInf(rep.MinConductance, 1) {
		rep.MinConductance = 0
	}
	return rep
}

// PhiTarget returns the conductance target φ = ε / (4·log₂(m+2)) used by
// Decompose, the standard existential trade-off φ = Θ(ε / log n).
func PhiTarget(eps float64, m int) float64 {
	if m < 2 {
		m = 2
	}
	return eps / (4 * math.Log2(float64(m)+2))
}

// Options tunes Decompose.
type Options struct {
	// Phi overrides the conductance target (0 means PhiTarget(eps, m)).
	Phi float64
	// SpectralIters is the power-iteration budget per cut search (0 = 300).
	SpectralIters int
	// Seed drives the spectral estimation.
	Seed int64
	// Deterministic removes all randomness from the cut search (fixed
	// power-iteration start vector, fixed nibble seeds): the output is then
	// identical for every Seed — the Theorem 2.2 deterministic-construction
	// track at the sequential level.
	Deterministic bool
	// Workers bounds the decomposer's goroutine pool. 0 or 1 runs the
	// canonical sequential recursion (the pinned ground truth, whose RNG is
	// consumed in DFS order). Any k > 1 fans the recursion's independent
	// pieces out to at most k goroutines, with each piece's randomness
	// derived by hashing (Seed, piece vertex set) so the output is a pure
	// function of the inputs: bit-identical for every Workers > 1, and
	// identical to the sequential path whenever the cut decisions are
	// RNG-independent (always under Deterministic; pinned on the E4/E7
	// golden instances). See parallel.go and DESIGN.md §3.12.
	Workers int
}

func (o Options) withDefaults() Options {
	if o.SpectralIters == 0 {
		o.SpectralIters = 300
	}
	return o
}

// Decompose computes an (ε, φ) expander decomposition of g with
// φ = PhiTarget(eps, |E|) by recursive sparse cuts: any piece whose best
// found cut has conductance below φ is split and the cut edges are removed;
// pieces with no such cut become clusters.
//
// The removed-edge budget follows from the standard charging argument: every
// cut taken satisfies |∂S| < φ·vol(smaller side), and each edge's side can
// halve in volume at most log₂(2m) times, so the total removed is at most
// φ·2m·log₂(2m) ≤ ε·m for φ = ε/(4·log₂(m+2)).
func Decompose(g *graph.Graph, eps float64, opts Options) (*Decomposition, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("expander: eps must be in (0,1), got %v", eps)
	}
	opts = opts.withDefaults()
	phi := opts.Phi
	if phi == 0 {
		phi = PhiTarget(eps, g.M())
	}
	if opts.Workers > 1 {
		return decomposeParallel(g, eps, phi, opts), nil
	}
	rng := rand.New(rand.NewSource(opts.Seed + 1))

	d := &Decomposition{
		Assignment: make(primitives.ClusterAssignment, g.N()),
		Eps:        eps,
		Phi:        phi,
	}
	// Removed edges live in a bitmap indexed by base edge id: the
	// InduceFiltered predicate is then a single bounds-checked load per
	// candidate edge instead of a map probe at every recursion level, and
	// no per-cut map inserts allocate. The predicate escapes into every
	// view, so it is built once here rather than per recursion level.
	removed := make([]bool, g.M())
	dropEdge := func(ei int) bool { return removed[ei] }

	var recurse func(verts []int)
	recurse = func(verts []int) {
		if len(verts) == 0 {
			return
		}
		// Zero-copy view of the piece, minus the edges removed by earlier
		// cuts (the recursion operates on the graph minus removed edges).
		sub := g.InduceFiltered(verts, dropEdge)
		// Split disconnected pieces first: components are free clusters.
		comps := sub.Components()
		if len(comps) > 1 {
			for _, comp := range comps {
				orig := make([]int, len(comp))
				for i, v := range comp {
					orig[i] = sub.BaseVertex(v)
				}
				recurse(orig)
			}
			return
		}
		if len(verts) <= 2 || sub.M() == 0 {
			d.addCluster(verts)
			return
		}
		cut, cutPhi := bestSparseCut(sub, opts.SpectralIters, rng, opts.Deterministic)
		if cutPhi >= phi || cut == nil {
			d.addCluster(verts)
			return
		}
		// Remove the cut edges (in g's indexing) and recurse on both sides.
		var sideA, sideB []int
		for i := 0; i < sub.N(); i++ {
			v := sub.BaseVertex(i)
			if cut[i] {
				sideA = append(sideA, v)
			} else {
				sideB = append(sideB, v)
			}
		}
		for _, ei := range sub.CutEdges(cut) {
			removed[sub.BaseEdge(ei)] = true
		}
		recurse(sideA)
		recurse(sideB)
	}
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	recurse(all)

	d.Removed = removedList(removed)
	return d, nil
}

// removedList extracts the set bits of a removed-edge bitmap as the sorted
// edge-index slice the Decomposition contract requires (ascending for free,
// the bitmap being indexed by edge id).
func removedList(removed []bool) []int {
	count := 0
	for _, r := range removed {
		if r {
			count++
		}
	}
	out := make([]int, 0, count)
	for ei, r := range removed {
		if r {
			out = append(out, ei)
		}
	}
	return out
}

func (d *Decomposition) addCluster(verts []int) {
	id := len(d.Clusters)
	sorted := append([]int(nil), verts...)
	sort.Ints(sorted)
	d.Clusters = append(d.Clusters, sorted)
	for _, v := range sorted {
		d.Assignment[v] = id
	}
}

// bestSparseCut searches for the lowest-conductance cut of sub: exactly for
// small graphs, otherwise via spectral sweeps from a few random starts plus
// a BFS-order sweep. Returns the cut (as a local-vertex set) and its
// conductance.
func bestSparseCut(sub graph.G, iters int, rng *rand.Rand, deterministic bool) (map[int]bool, float64) {
	n := sub.N()
	if n < 2 {
		return nil, math.Inf(1)
	}
	if n <= 14 {
		return exactSparseCut(sub)
	}
	bestPhi := math.Inf(1)
	var best map[int]bool
	trials := 3
	if deterministic {
		// A fixed-seed PRNG makes the power iteration reproducible without
		// any caller-provided randomness.
		rng = rand.New(rand.NewSource(12345))
		trials = 1
	}
	for trial := 0; trial < trials; trial++ {
		scores := conductance.FiedlerScores(sub, iters, rng)
		s, phi := conductance.SweepCut(sub, scores)
		if phi < bestPhi {
			bestPhi, best = phi, s
		}
	}
	// BFS sweep from an arbitrary vertex as a combinatorial fallback.
	dist, _ := graph.BFSOf(sub, 0)
	scores := make([]float64, n)
	for v := range scores {
		if dist[v] < 0 {
			scores[v] = float64(n + 1)
		} else {
			scores[v] = float64(dist[v])
		}
	}
	if s, phi := conductance.SweepCut(sub, scores); phi < bestPhi {
		bestPhi, best = phi, s
	}
	// PageRank-Nibble local clustering (the Spielman–Teng style primitive
	// behind nibble decompositions); deterministic mode uses fixed seeds.
	epsPush := 1.0 / (20 * float64(sub.M()+1))
	seeds := []int{rng.Intn(n), rng.Intn(n)}
	if deterministic {
		seeds = []int{0, n / 2}
	}
	for _, seed := range seeds {
		s, phi := conductance.Nibble(sub, seed, 0.1, epsPush)
		if s != nil && len(s) > 0 && len(s) < n && phi < bestPhi {
			bestPhi, best = phi, s
		}
	}
	return best, bestPhi
}

// exactSparseCut enumerates all cuts of a small graph.
func exactSparseCut(sub graph.G) (map[int]bool, float64) {
	n := sub.N()
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		deg[v] = sub.Degree(v)
	}
	totalVol := 2 * sub.M()
	edges := graph.EdgesOf(sub)
	bestPhi := math.Inf(1)
	bestMask := 0
	for mask := 1; mask < 1<<(n-1); mask++ {
		volS := 0
		for v := 0; v < n-1; v++ {
			if mask&(1<<v) != 0 {
				volS += deg[v]
			}
		}
		cut := 0
		for _, e := range edges {
			inU := e.U < n-1 && mask&(1<<e.U) != 0
			inV := e.V < n-1 && mask&(1<<e.V) != 0
			if inU != inV {
				cut++
			}
		}
		minVol := volS
		if rest := totalVol - volS; rest < minVol {
			minVol = rest
		}
		if minVol == 0 {
			continue
		}
		phi := float64(cut) / float64(minVol)
		if phi < bestPhi {
			bestPhi = phi
			bestMask = mask
		}
	}
	if bestMask == 0 {
		return nil, math.Inf(1)
	}
	s := make(map[int]bool)
	for v := 0; v < n-1; v++ {
		if bestMask&(1<<v) != 0 {
			s[v] = true
		}
	}
	return s, bestPhi
}

// Singletons returns the trivial decomposition where every vertex is alone
// and every edge is removed. It satisfies any φ vacuously but only meets the
// ε budget for ε = 1; used as a baseline and as the §2.3 failure fallback.
func Singletons(g *graph.Graph) *Decomposition {
	d := &Decomposition{
		Assignment: primitives.Singletons(g.N()),
		Eps:        1,
		Phi:        0,
	}
	d.Clusters = make([][]int, g.N())
	for v := 0; v < g.N(); v++ {
		d.Clusters[v] = []int{v}
	}
	d.Removed = make([]int, g.M())
	for i := range d.Removed {
		d.Removed[i] = i
	}
	return d
}

// FromAssignment builds a Decomposition from an arbitrary cluster
// assignment: removed edges are exactly those crossing clusters. Cluster IDs
// are renumbered densely.
func FromAssignment(g *graph.Graph, assign primitives.ClusterAssignment, eps, phi float64) *Decomposition {
	remap := make(map[int]int)
	d := &Decomposition{
		Assignment: make(primitives.ClusterAssignment, g.N()),
		Eps:        eps,
		Phi:        phi,
	}
	for v := 0; v < g.N(); v++ {
		id, ok := remap[assign[v]]
		if !ok {
			id = len(d.Clusters)
			remap[assign[v]] = id
			d.Clusters = append(d.Clusters, nil)
		}
		d.Assignment[v] = id
		d.Clusters[id] = append(d.Clusters[id], v)
	}
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if d.Assignment[e.U] != d.Assignment[e.V] {
			d.Removed = append(d.Removed, i)
		}
	}
	return d
}
