package expander

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/conductance"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

func TestDecomposeContractOnPlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	families := map[string]*graph.Graph{
		"grid8":   graph.Grid(8, 8),
		"trigrid": graph.TriangulatedGrid(6, 6),
		"planar":  graph.RandomMaximalPlanar(80, rng),
		"torus":   graph.Torus(6, 6),
		"tree":    graph.RandomTree(64, rng),
	}
	for name, g := range families {
		for _, eps := range []float64{0.2, 0.4} {
			d, err := Decompose(g, eps, Options{Seed: 3})
			if err != nil {
				t.Fatalf("%s: %v", name, err)
			}
			rep := d.Verify(g, rng)
			if !rep.CutOK {
				t.Errorf("%s eps=%v: cut fraction %v exceeds eps", name, eps, rep.CutFraction)
			}
			if !rep.Connected {
				t.Errorf("%s eps=%v: disconnected cluster", name, eps)
			}
			if !rep.ConductanceOK && rep.Exact {
				t.Errorf("%s eps=%v: exact conductance %v below phi %v",
					name, eps, rep.MinConductance, d.Phi)
			}
		}
	}
}

func TestDecomposeCoversAllVertices(t *testing.T) {
	g := graph.Grid(5, 5)
	d, err := Decompose(g, 0.3, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	seen := make([]bool, g.N())
	for _, c := range d.Clusters {
		for _, v := range c {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Errorf("vertex %d unassigned", v)
		}
	}
	// Assignment agrees with Clusters.
	for id, c := range d.Clusters {
		for _, v := range c {
			if d.Assignment[v] != id {
				t.Errorf("assignment[%d] = %d, want %d", v, d.Assignment[v], id)
			}
		}
	}
}

func TestDecomposeRemovedEdgesAreExactlyCrossing(t *testing.T) {
	g := graph.Torus(5, 5)
	d, err := Decompose(g, 0.35, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	removedSet := make(map[int]bool)
	for _, ei := range d.Removed {
		removedSet[ei] = true
	}
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		crossing := d.Assignment[e.U] != d.Assignment[e.V]
		if crossing && !removedSet[i] {
			t.Errorf("crossing edge %v not in Removed", e)
		}
		if !crossing && removedSet[i] {
			t.Errorf("intra-cluster edge %v in Removed", e)
		}
	}
}

func TestDecomposeExpanderStaysWhole(t *testing.T) {
	// A clique is already an expander: no edges should be removed for any
	// reasonable eps, and there should be exactly one cluster.
	g := graph.Complete(12)
	d, err := Decompose(g, 0.2, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters) != 1 {
		t.Errorf("clique split into %d clusters", len(d.Clusters))
	}
	if len(d.Removed) != 0 {
		t.Errorf("clique lost %d edges", len(d.Removed))
	}
}

func TestDecomposeBarbellSplitsAtBridge(t *testing.T) {
	// Two K6 joined by one edge: the bridge is the sparse cut.
	a, b := graph.Complete(6), graph.Complete(6)
	bld := graph.NewBuilder(12)
	for _, e := range a.Edges() {
		bld.AddEdge(e.U, e.V)
	}
	for _, e := range b.Edges() {
		bld.AddEdge(e.U+6, e.V+6)
	}
	bld.AddEdge(5, 6)
	g := bld.Graph()
	// The bridge cut has Φ = 1/31 ≈ 0.032; force a φ above it so the
	// decomposer must split there.
	d, err := Decompose(g, 0.2, Options{Seed: 4, Phi: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Clusters) != 2 {
		t.Fatalf("barbell split into %d clusters, want 2", len(d.Clusters))
	}
	if len(d.Removed) != 1 {
		t.Fatalf("removed %d edges, want 1 (the bridge)", len(d.Removed))
	}
	if e := g.EdgeAt(d.Removed[0]); e != (graph.Edge{U: 5, V: 6}) {
		t.Errorf("removed %v, want the bridge {5,6}", e)
	}
}

func TestDecomposeInvalidEps(t *testing.T) {
	g := graph.Path(4)
	for _, eps := range []float64{0, -0.5, 1, 2} {
		if _, err := Decompose(g, eps, Options{}); err == nil {
			t.Errorf("eps=%v should error", eps)
		}
	}
}

func TestPhiTargetMonotone(t *testing.T) {
	if PhiTarget(0.2, 100) <= PhiTarget(0.1, 100) {
		t.Error("phi should grow with eps")
	}
	if PhiTarget(0.2, 10000) >= PhiTarget(0.2, 10) {
		t.Error("phi should shrink with m")
	}
}

func TestSingletonsDecomposition(t *testing.T) {
	g := graph.Cycle(5)
	d := Singletons(g)
	if len(d.Clusters) != 5 || len(d.Removed) != 5 {
		t.Errorf("singletons: %d clusters %d removed", len(d.Clusters), len(d.Removed))
	}
	rng := rand.New(rand.NewSource(1))
	rep := d.Verify(g, rng)
	if !rep.CutOK { // eps = 1 budget
		t.Error("singleton decomposition should meet eps=1")
	}
}

func TestFromAssignment(t *testing.T) {
	g := graph.Path(4)
	d := FromAssignment(g, []int{7, 7, 9, 9}, 0.5, 0.1)
	if len(d.Clusters) != 2 {
		t.Fatalf("clusters = %d, want 2", len(d.Clusters))
	}
	if len(d.Removed) != 1 {
		t.Fatalf("removed = %d, want 1", len(d.Removed))
	}
	if d.CutFraction(g) != 1.0/3.0 {
		t.Errorf("cut fraction = %v", d.CutFraction(g))
	}
	if d.LargestCluster() != 2 {
		t.Errorf("largest = %d", d.LargestCluster())
	}
}

func TestVerifyDetectsBadDecomposition(t *testing.T) {
	// A path split so a "cluster" is disconnected: {0,2} and {1,3}.
	g := graph.Path(4)
	d := FromAssignment(g, []int{0, 1, 0, 1}, 0.1, 0.01)
	rng := rand.New(rand.NewSource(1))
	rep := d.Verify(g, rng)
	if rep.Connected {
		t.Error("verification should flag disconnected clusters")
	}
	if rep.CutOK {
		t.Error("cut budget 0.1 with all 3 edges removed should fail")
	}
}

func TestClusterConductanceMeetsPhiExactly(t *testing.T) {
	// On a modest graph with exact per-cluster checks, every multi-vertex
	// cluster must certify Φ >= φ.
	g := graph.Grid(6, 6)
	d, err := Decompose(g, 0.3, Options{Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range d.Clusters {
		if len(c) < 2 || len(c) > conductance.MaxExactN {
			continue
		}
		sub, _ := d.ClusterGraph(g, i)
		if phi := conductance.ExactConductance(sub); phi < d.Phi {
			t.Errorf("cluster %d: Φ = %v < φ = %v", i, phi, d.Phi)
		}
	}
}

func TestMPXCoversAndBoundsDiameter(t *testing.T) {
	g := graph.Grid(10, 10)
	beta := 0.15
	res, metrics, err := MPX(g, congest.Config{Seed: 9}, beta)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Rounds == 0 {
		t.Error("MPX should use rounds")
	}
	maxRadius := 4*math.Log(float64(g.N())+1)/beta + 1
	for center, members := range res.Assignment.Clusters() {
		sub, toOld := g.InducedSubgraph(members)
		if !sub.Connected() {
			t.Errorf("MPX cluster of %d disconnected", center)
		}
		if d := float64(sub.Diameter()); d > 2*maxRadius {
			t.Errorf("cluster diameter %v exceeds radius bound %v", d, maxRadius)
		}
		// The center belongs to its own cluster.
		found := false
		for _, v := range toOld {
			if v == center {
				found = true
			}
		}
		if !found {
			t.Errorf("center %d not in its own cluster", center)
		}
	}
}

func TestMPXCutFractionScalesWithBeta(t *testing.T) {
	g := graph.Grid(16, 16)
	frac := func(beta float64) float64 {
		res, _, err := MPX(g, congest.Config{Seed: 17}, beta)
		if err != nil {
			t.Fatal(err)
		}
		cut := 0
		for i := 0; i < g.M(); i++ {
			e := g.EdgeAt(i)
			if res.Assignment[e.U] != res.Assignment[e.V] {
				cut++
			}
		}
		return float64(cut) / float64(g.M())
	}
	small, large := frac(0.05), frac(0.5)
	if small >= large {
		t.Errorf("cut fraction should grow with beta: %v vs %v", small, large)
	}
	if small > 0.3 {
		t.Errorf("beta=0.05 cut fraction %v unexpectedly high", small)
	}
}

func TestMPXInvalidBeta(t *testing.T) {
	g := graph.Path(4)
	for _, beta := range []float64{0, 1, -0.2} {
		if _, _, err := MPX(g, congest.Config{Seed: 1}, beta); err == nil {
			t.Errorf("beta=%v should error", beta)
		}
	}
}

func TestDistributedDecomposeContract(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	g := graph.Grid(9, 9)
	d, metrics, err := DistributedDecompose(g, congest.Config{Seed: 23}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Rounds == 0 {
		t.Error("distributed decomposition should spend rounds")
	}
	rep := d.Verify(g, rng)
	if !rep.Connected {
		t.Error("distributed decomposition produced disconnected cluster")
	}
	// The MPX stage is randomized: the ε bound holds in expectation. Allow
	// 2x headroom before failing the test.
	if rep.CutFraction > 2*0.4 {
		t.Errorf("cut fraction %v far above eps", rep.CutFraction)
	}
	if rep.Exact && !rep.ConductanceOK {
		t.Errorf("cluster conductance %v below phi %v", rep.MinConductance, d.Phi)
	}
}

func TestDistributedDecomposeInvalidEps(t *testing.T) {
	g := graph.Path(4)
	if _, _, err := DistributedDecompose(g, congest.Config{Seed: 1}, 0); err == nil {
		t.Error("eps=0 should error")
	}
}

// Property: for random planar-ish sparse graphs, the decomposition always
// partitions V, Removed is consistent, and the cut budget holds.
func TestQuickDecomposeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(40)
		g := graph.RandomPlanar(n, 0.6, rng)
		d, err := Decompose(g, 0.3, Options{Seed: seed})
		if err != nil {
			return false
		}
		count := 0
		for _, c := range d.Clusters {
			count += len(c)
		}
		if count != g.N() {
			return false
		}
		if float64(len(d.Removed)) > 0.3*float64(g.M())+1e-9 {
			return false
		}
		for _, ei := range d.Removed {
			e := g.EdgeAt(ei)
			if d.Assignment[e.U] == d.Assignment[e.V] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestDeterministicCutsSeedIndependent(t *testing.T) {
	g := graph.Grid(7, 7)
	shape := func(seed int64) string {
		d, err := Decompose(g, 0.999, Options{Seed: seed, Phi: 0.15, Deterministic: true})
		if err != nil {
			t.Fatal(err)
		}
		out := ""
		for _, c := range d.Clusters {
			out += "|"
			for _, v := range c {
				out += string(rune('a' + v%26))
			}
		}
		return out
	}
	if shape(1) != shape(99) {
		t.Error("deterministic decomposition differs across seeds")
	}
}

// The paper's hypercube remark: decompositions of the hypercube need
// φ = O(1/log n); verify our decomposer still meets its contract there.
func TestDecomposeHypercube(t *testing.T) {
	g := graph.Hypercube(6)
	rng := rand.New(rand.NewSource(31))
	d, err := Decompose(g, 0.3, Options{Seed: 31})
	if err != nil {
		t.Fatal(err)
	}
	rep := d.Verify(g, rng)
	if !rep.CutOK {
		t.Errorf("hypercube cut fraction %v exceeds 0.3", rep.CutFraction)
	}
	if !rep.Connected {
		t.Error("hypercube cluster disconnected")
	}
}
