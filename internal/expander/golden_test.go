package expander

import (
	"hash/fnv"
	"math/rand"
	"testing"

	"expandergap/internal/graph"
)

// decompositionFingerprint hashes the full observable output of Decompose —
// cluster count, per-vertex assignment, and the removed-edge list — with
// FNV-64a. The expected values below were captured from the pre-CSR
// materializing implementation, so these tests pin the view-based recursion
// to be bit-identical to it: same clusters, same IDs, same cut edges, same
// RNG draw order.
func decompositionFingerprint(d *Decomposition) uint64 {
	h := fnv.New64a()
	put := func(x int) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	put(len(d.Clusters))
	for _, id := range d.Assignment {
		put(id)
	}
	put(len(d.Removed))
	for _, e := range d.Removed {
		put(e)
	}
	return h.Sum64()
}

func TestDecomposeGolden(t *testing.T) {
	type goldenCase struct {
		name     string
		g        *graph.Graph
		eps      float64
		opts     Options
		clusters int
		removed  int
		fp       uint64
	}
	cases := []goldenCase{
		// E4-scale instances (suite.go DecompSizes includes 256 = 16×16 grid
		// and 144 = 12×12 triangulated grid, eps 0.25, seed 2022).
		{
			name: "grid16x16-eps0.25", g: graph.Grid(16, 16), eps: 0.25,
			opts:     Options{Seed: 2022},
			clusters: 1, removed: 0, fp: 0x5177aa8a268ecc24,
		},
		{
			name: "trigrid12x12-eps0.25", g: graph.TriangulatedGrid(12, 12), eps: 0.25,
			opts:     Options{Seed: 2022},
			clusters: 1, removed: 0, fp: 0xd2ab3d7ee20ed424,
		},
		// A stress setting that forces deep recursion and many cuts, so the
		// removed-edge bookkeeping and the cut search are both exercised.
		{
			name: "grid16x16-phiStress0.15", g: graph.Grid(16, 16), eps: 0.999,
			opts:     Options{Seed: 2022, Phi: 0.15},
			clusters: 16, removed: 98, fp: 0x304dc94e510051b7,
		},
		// Deterministic track (Theorem 2.2): seed-independent output.
		{
			name: "grid16x16-deterministic", g: graph.Grid(16, 16), eps: 0.25,
			opts:     Options{Seed: 99, Deterministic: true},
			clusters: 1, removed: 0, fp: 0x5177aa8a268ecc24,
		},
	}
	// E7-style weighted planar instance (n=36, W=10, eps 0.3).
	rng := rand.New(rand.NewSource(2022))
	base := graph.RandomPlanar(36, 0.7, rng)
	cases = append(cases, goldenCase{
		name: "e7planar36-w10-eps0.3", g: graph.WithRandomWeights(base, 10, rng), eps: 0.3,
		opts:     Options{Seed: 2022},
		clusters: 1, removed: 0, fp: 0x6bc5cb0cea2dee24,
	})

	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			d, err := Decompose(tc.g, tc.eps, tc.opts)
			if err != nil {
				t.Fatalf("Decompose: %v", err)
			}
			if len(d.Clusters) != tc.clusters {
				t.Errorf("clusters = %d, want %d", len(d.Clusters), tc.clusters)
			}
			if len(d.Removed) != tc.removed {
				t.Errorf("removed = %d, want %d", len(d.Removed), tc.removed)
			}
			if fp := decompositionFingerprint(d); fp != tc.fp {
				t.Errorf("fingerprint = %#x, want %#x (output drifted from the materializing implementation)", fp, tc.fp)
			}
		})
	}
}
