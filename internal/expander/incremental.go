package expander

import (
	"fmt"
	"math/rand"
	"sort"

	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// This file implements incremental decomposition maintenance under churn
// (DESIGN.md §3.16): instead of re-running the full recursive sparse-cut
// decomposition after every mutation batch, DecomposeIncremental re-certifies
// each existing cluster's conductance certificate against the deltas and
// recomputes only the clusters whose certificate broke. The certificate view
// comes from Chang–Saranurak 2020 ("Deterministic Distributed Expander
// Decomposition and Routing"): a cluster is valid iff its induced subgraph is
// connected with conductance ≥ φ, a property that is local to the cluster —
// so a delta that touches no intra-cluster edge cannot invalidate it, and a
// delta that does is settled by re-checking that one cluster.

// IncrementalStats reports what DecomposeIncremental reused and recomputed.
type IncrementalStats struct {
	// PrevClusters is the cluster count of the previous decomposition.
	PrevClusters int
	// Touched counts clusters with at least one intra-cluster delta, i.e.
	// those whose certificate had to be re-checked.
	Touched int
	// Broken counts touched clusters whose certificate failed (disconnected
	// or conductance below φ); their vertices were re-decomposed.
	Broken int
	// Reused is PrevClusters - Broken: clusters carried over intact.
	Reused int
	// NewClusters counts clusters produced by re-decomposing the broken
	// region and the new vertices.
	NewClusters int
	// NewVertices counts vertices added beyond the previous graph.
	NewVertices int
}

// ReuseFraction returns Reused / PrevClusters (1 for an empty previous
// decomposition).
func (s *IncrementalStats) ReuseFraction() float64 {
	if s.PrevClusters == 0 {
		return 1
	}
	return float64(s.Reused) / float64(s.PrevClusters)
}

// DecomposeIncremental maintains prev — a decomposition of ov's base graph —
// across the overlay's deltas. It compacts the overlay to a canonical graph,
// re-certifies every cluster with an intra-cluster insert or delete
// (connectivity plus the recursion's own no-sparse-cut-below-φ acceptance
// criterion; see clusterCertified), reuses every cluster whose certificate
// held, and re-runs the
// recursive sparse-cut decomposition only on the union of broken clusters
// and newly added vertices, using the piece-seeded parallel recursion from
// parallel.go (deterministic for any Workers setting). Deltas that only
// touch cross-cluster edges never trigger recomputation: a deleted crossing
// edge leaves the removed set, an inserted one joins it.
//
// The result keeps prev's φ target (unless opts.Phi overrides it) and
// carries eps (prev's when eps <= 0) as its budget label. Note the staleness
// semantics: reused certificates guarantee every cluster still meets φ, but
// the ε·m removed-edge budget is an amortized property of the from-scratch
// recursion — inserted crossing edges can push the cut fraction past ε until
// a full Decompose re-baselines it. Callers track that drift via
// CutFraction and the churn benchmarks gate it.
//
// Returned alongside the new decomposition are the compacted graph it is
// defined over and the reuse statistics.
func DecomposeIncremental(prev *Decomposition, ov *graph.Overlay, eps float64, opts Options) (*Decomposition, *graph.Graph, *IncrementalStats, error) {
	if prev == nil {
		return nil, nil, nil, fmt.Errorf("expander: incremental decomposition needs a previous decomposition")
	}
	baseN := ov.Base().N()
	if len(prev.Assignment) != baseN {
		return nil, nil, nil, fmt.Errorf("expander: previous decomposition covers %d vertices, overlay base has %d",
			len(prev.Assignment), baseN)
	}
	opts = opts.withDefaults()
	phi := prev.Phi
	if opts.Phi != 0 {
		phi = opts.Phi
	}
	if eps <= 0 {
		eps = prev.Eps
	}

	g, err := ov.Compact()
	if err != nil {
		return nil, nil, nil, fmt.Errorf("expander: compact overlay: %w", err)
	}

	stats := &IncrementalStats{
		PrevClusters: len(prev.Clusters),
		NewVertices:  g.N() - baseN,
	}

	// A cluster's certificate can only change through an intra-cluster edge
	// delta. Deleted vertices show up here too: tombstoning deletes their
	// incident edges, so their cluster is re-checked (and the now-isolated
	// vertex split off by the connectivity check).
	touched := make(map[int]bool)
	ov.ForEachDeleted(func(_ int, e graph.Edge) {
		if prev.Assignment[e.U] == prev.Assignment[e.V] {
			touched[prev.Assignment[e.U]] = true
		}
	})
	ov.ForEachInserted(func(e graph.Edge, _ int64, _ int8) {
		if e.U < baseN && e.V < baseN && prev.Assignment[e.U] == prev.Assignment[e.V] {
			touched[prev.Assignment[e.U]] = true
		}
	})
	stats.Touched = len(touched)

	// Re-certify the touched clusters on the compacted graph. The spectral
	// fallback is piece-seeded like the parallel recursion, so the verdict is
	// a pure function of (cluster, opts.Seed) — independent of check order.
	broken := make(map[int]bool)
	for cid := range touched {
		if !clusterCertified(g, prev.Clusters[cid], phi, opts) {
			broken[cid] = true
		}
	}
	stats.Broken = len(broken)
	stats.Reused = stats.PrevClusters - stats.Broken

	// The region to re-decompose: every vertex of a broken cluster plus the
	// vertices added since prev. Reused clusters keep their vertices, so the
	// recursion below never sees them — exactly the InduceFiltered-style
	// zero-copy isolation the full recursion uses for sibling pieces.
	var region []int
	for cid := range broken {
		region = append(region, prev.Clusters[cid]...)
	}
	for v := baseN; v < g.N(); v++ {
		region = append(region, v)
	}
	sort.Ints(region)

	next := &Decomposition{
		Assignment: make(primitives.ClusterAssignment, g.N()),
		Eps:        eps,
		Phi:        phi,
	}
	// Reused clusters first, in prev's order (renumbered densely), then the
	// clusters of the re-decomposed region in DFS discovery order.
	for cid, verts := range prev.Clusters {
		if !broken[cid] {
			next.addCluster(verts)
		}
	}
	if len(region) > 0 {
		workers := opts.Workers - 1
		if workers < 0 {
			workers = 0
		}
		p := &parDecomposer{
			g:       g,
			phi:     phi,
			opts:    opts,
			removed: make([]bool, g.M()),
			sem:     make(chan struct{}, workers),
		}
		p.drop = func(ei int) bool { return p.removed[ei] }
		newClusters := p.solve(region)
		stats.NewClusters = len(newClusters)
		for _, verts := range newClusters {
			next.addCluster(verts)
		}
	}
	// Removed edges are exactly the crossing edges of the new assignment —
	// one O(m) scan, identical to what FromAssignment pins.
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if next.Assignment[e.U] != next.Assignment[e.V] {
			next.Removed = append(next.Removed, i)
		}
	}
	return next, g, stats, nil
}

// clusterCertified re-checks one cluster's certificate on g: the induced
// subgraph must be connected and must admit no sparse cut below phi —
// exactly the acceptance criterion the decomposition recursion applies when
// it declares a piece a cluster (exact enumeration up to 14 vertices,
// spectral/BFS/nibble sweeps above), so a reused cluster has the same
// quality standard as a freshly built one. The cut search draws from a
// cluster-seeded PRNG, making the verdict a pure function of (cluster,
// opts.Seed). Single-vertex clusters are vacuously certified, matching
// Verify.
//
// Running the construction-side criterion rather than ExactConductance is
// deliberate: the exact check enumerates 2^(n-1) cuts and at the
// MaxExactN=22 ceiling costs more than re-decomposing the cluster would,
// which would defeat the incremental path; Verify remains the independent
// exact auditor.
func clusterCertified(g *graph.Graph, verts []int, phi float64, opts Options) bool {
	sub := g.Induce(verts)
	if sub.N() <= 1 {
		return true
	}
	if !sub.Connected() {
		return false
	}
	rng := rand.New(rand.NewSource(pieceSeed(opts.Seed, verts)))
	cut, cutPhi := bestSparseCut(sub, opts.SpectralIters, rng, opts.Deterministic)
	return cut == nil || cutPhi >= phi
}

// ProjectStale extends prev — a decomposition of a predecessor of g — onto g
// without any recomputation: vertices keep their cluster, vertices added
// since prev become singletons, and the removed set is recomputed as the
// crossing edges of g. The projection makes no conductance claim (clusters
// may be disconnected or below φ on the mutated graph); it exists so the
// churn scenarios can measure how approximation quality and round counts
// degrade when a service keeps answering from a stale decomposition instead
// of paying for maintenance.
func ProjectStale(prev *Decomposition, g *graph.Graph) *Decomposition {
	assign := make(primitives.ClusterAssignment, g.N())
	copy(assign, prev.Assignment)
	next := len(prev.Clusters)
	for v := len(prev.Assignment); v < g.N(); v++ {
		assign[v] = next
		next++
	}
	return FromAssignment(g, assign, prev.Eps, prev.Phi)
}
