package expander

import (
	"math/rand"
	"strconv"
	"strings"
	"testing"
	"time"

	"expandergap/internal/graph"
)

// churnedInstance builds base, decomposes it, generates a churn stream of
// round(frac*m) ops, and returns the applied overlay alongside the previous
// decomposition.
func churnedInstance(t *testing.T, base *graph.Graph, eps float64, opts Options, frac float64, churnSeed int64) (*Decomposition, *graph.Overlay) {
	t.Helper()
	prev, err := Decompose(base, eps, opts)
	if err != nil {
		t.Fatalf("full decompose: %v", err)
	}
	count := int(frac * float64(base.M()))
	ops, err := graph.GenerateChurn(base, count, churnSeed)
	if err != nil {
		t.Fatalf("generate churn: %v", err)
	}
	ov := graph.NewOverlay(base)
	if n, err := ov.ApplyAll(ops); err != nil {
		t.Fatalf("apply op %d: %v", n, err)
	}
	return prev, ov
}

func vertsKey(verts []int) string {
	var sb strings.Builder
	for _, v := range verts {
		sb.WriteString(strconv.Itoa(v))
		sb.WriteByte(',')
	}
	return sb.String()
}

// With no deltas every certificate holds trivially, so the incremental result
// must be the previous decomposition verbatim: full reuse, zero recomputation,
// identical fingerprint.
func TestIncrementalZeroChurnIdentity(t *testing.T) {
	base := graph.Grid(16, 16)
	opts := Options{Seed: 2022, Phi: 0.15}
	prev, err := Decompose(base, 0.999, opts)
	if err != nil {
		t.Fatalf("full decompose: %v", err)
	}
	ov := graph.NewOverlay(base)
	next, g, stats, err := DecomposeIncremental(prev, ov, 0, opts)
	if err != nil {
		t.Fatalf("incremental: %v", err)
	}
	if g.M() != base.M() || g.N() != base.N() {
		t.Fatalf("compacted graph n=%d m=%d, want n=%d m=%d", g.N(), g.M(), base.N(), base.M())
	}
	if stats.Touched != 0 || stats.Broken != 0 || stats.NewClusters != 0 {
		t.Errorf("zero churn stats = %+v, want nothing touched", *stats)
	}
	if stats.Reused != len(prev.Clusters) || stats.ReuseFraction() != 1 {
		t.Errorf("reused %d/%d (%.2f), want full reuse", stats.Reused, len(prev.Clusters), stats.ReuseFraction())
	}
	if got, want := decompositionFingerprint(next), decompositionFingerprint(prev); got != want {
		t.Errorf("fingerprint %#x != previous %#x", got, want)
	}
	if next.Eps != prev.Eps || next.Phi != prev.Phi {
		t.Errorf("labels (eps=%v phi=%v) != prev (eps=%v phi=%v)", next.Eps, next.Phi, prev.Eps, prev.Phi)
	}
}

// Under ~10% churn most certificates survive: the incremental result must
// reuse at least half the clusters, carry every reused cluster's vertex set
// over exactly (same order, densely renumbered), and still verify as a valid
// decomposition of the mutated graph.
func TestIncrementalChurnedReuseAndValidity(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	cases := []struct {
		name string
		base *graph.Graph
		eps  float64
		opts Options
	}{
		{"grid16x16", graph.Grid(16, 16), 0.999, Options{Seed: 2022, Phi: 0.15}},
		{"e7planar36", graph.WithRandomWeights(graph.RandomPlanar(36, 0.7, rng), 10, rng), 0.3, Options{Seed: 2022, Phi: 0.3}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			prev, ov := churnedInstance(t, tc.base, tc.eps, tc.opts, 0.10, 7)
			next, g, stats, err := DecomposeIncremental(prev, ov, 0, tc.opts)
			if err != nil {
				t.Fatalf("incremental: %v", err)
			}
			if stats.Reused+stats.NewClusters != len(next.Clusters) {
				t.Errorf("cluster accounting: reused %d + new %d != total %d",
					stats.Reused, stats.NewClusters, len(next.Clusters))
			}
			if f := stats.ReuseFraction(); f < 0.5 {
				t.Errorf("reuse fraction %.2f below 0.5 (stats %+v)", f, *stats)
			}
			// The first Reused clusters are prev's surviving clusters in prev's
			// order; each must match a previous cluster's vertex set exactly.
			prevSets := make(map[string]bool, len(prev.Clusters))
			for _, verts := range prev.Clusters {
				prevSets[vertsKey(verts)] = true
			}
			for i := 0; i < stats.Reused; i++ {
				if !prevSets[vertsKey(next.Clusters[i])] {
					t.Errorf("reused cluster %d (%v) is not a previous cluster", i, next.Clusters[i])
				}
			}
			rep := next.Verify(g, rand.New(rand.NewSource(1)))
			if !rep.Connected || !rep.ConductanceOK {
				t.Errorf("verify: connected=%v conductanceOK=%v minPhi=%v", rep.Connected, rep.ConductanceOK, rep.MinConductance)
			}
		})
	}
}

// Incremental maintenance on a lightly churned graph must beat a full
// rebuild. The unit-level bound is deliberately loose (the hard ratio gate
// lives in the churn benchmark check); best-of-3 to shrug off scheduler
// noise.
func TestIncrementalFasterThanFull(t *testing.T) {
	if testing.Short() {
		t.Skip("timing test")
	}
	base := graph.Grid(32, 32)
	opts := Options{Seed: 2022, Phi: 0.2}
	prev, ov := churnedInstance(t, base, 0.999, opts, 0.10, 7)
	g, err := ov.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	best := func(fn func()) time.Duration {
		b := time.Duration(1<<63 - 1)
		for i := 0; i < 3; i++ {
			start := time.Now()
			fn()
			if d := time.Since(start); d < b {
				b = d
			}
		}
		return b
	}
	inc := best(func() {
		if _, _, _, err := DecomposeIncremental(prev, ov, 0, opts); err != nil {
			t.Fatalf("incremental: %v", err)
		}
	})
	full := best(func() {
		if _, err := Decompose(g, 0.999, opts); err != nil {
			t.Fatalf("full: %v", err)
		}
	})
	// Probe data shows ~11x on this instance; require just >1x so the test
	// stays robust on loaded CI machines.
	if inc >= full {
		t.Errorf("incremental %v not faster than full rebuild %v", inc, full)
	}
}

// Decomposing the overlay's Compact() output must agree exactly with
// decomposing a from-scratch Builder graph over the same live edge set — the
// decomposition-level corollary of the overlay/materialized equivalence the
// graph package fuzzes.
func TestDecomposeCompactedMatchesRebuilt(t *testing.T) {
	base := graph.Grid(16, 16)
	ops, err := graph.GenerateChurn(base, 50, 11)
	if err != nil {
		t.Fatalf("generate churn: %v", err)
	}
	ov := graph.NewOverlay(base)
	if n, err := ov.ApplyAll(ops); err != nil {
		t.Fatalf("apply op %d: %v", n, err)
	}
	compacted, err := ov.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	b := graph.NewBuilder(ov.N())
	for i := 0; i < ov.M(); i++ {
		e := ov.EdgeAt(i)
		b.AddEdge(e.U, e.V)
	}
	rebuilt := b.Graph()
	opts := Options{Seed: 2022, Phi: 0.15}
	dc, err := Decompose(compacted, 0.999, opts)
	if err != nil {
		t.Fatalf("decompose compacted: %v", err)
	}
	dr, err := Decompose(rebuilt, 0.999, opts)
	if err != nil {
		t.Fatalf("decompose rebuilt: %v", err)
	}
	if got, want := decompositionFingerprint(dc), decompositionFingerprint(dr); got != want {
		t.Errorf("compacted fingerprint %#x != rebuilt %#x", got, want)
	}
}

// ProjectStale keeps the old assignment, turns added vertices into
// singletons, and re-derives the removed set on the new graph.
func TestProjectStale(t *testing.T) {
	base := graph.Grid(8, 8)
	opts := Options{Seed: 2022, Phi: 0.15}
	prev, err := Decompose(base, 0.999, opts)
	if err != nil {
		t.Fatalf("full decompose: %v", err)
	}
	ov := graph.NewOverlay(base)
	nv := ov.AddVertex()
	if err := ov.AddEdge(0, nv); err != nil {
		t.Fatalf("add edge: %v", err)
	}
	if err := ov.DeleteEdge(0, 1); err != nil {
		t.Fatalf("delete edge: %v", err)
	}
	g, err := ov.Compact()
	if err != nil {
		t.Fatalf("compact: %v", err)
	}
	stale := ProjectStale(prev, g)
	// FromAssignment renumbers clusters densely, so compare partitions, not
	// raw IDs: base vertices share a stale cluster iff they shared a prev one.
	for u := 0; u < base.N(); u++ {
		for v := u + 1; v < base.N(); v++ {
			same, wantSame := stale.Assignment[u] == stale.Assignment[v], prev.Assignment[u] == prev.Assignment[v]
			if same != wantSame {
				t.Fatalf("partition changed at {%d,%d}: same=%v, want %v", u, v, same, wantSame)
			}
		}
	}
	for v := 0; v < base.N(); v++ {
		if stale.Assignment[v] == stale.Assignment[nv] {
			t.Fatalf("new vertex shares cluster with base vertex %d, want fresh singleton", v)
		}
	}
	if len(stale.Clusters) != len(prev.Clusters)+1 {
		t.Errorf("cluster count %d, want %d", len(stale.Clusters), len(prev.Clusters)+1)
	}
	// Removed must be exactly the crossing edges of the projected assignment.
	for _, ei := range stale.Removed {
		e := g.EdgeAt(ei)
		if stale.Assignment[e.U] == stale.Assignment[e.V] {
			t.Errorf("removed edge %d {%d,%d} is intra-cluster", ei, e.U, e.V)
		}
	}
	want := 0
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if stale.Assignment[e.U] != stale.Assignment[e.V] {
			want++
		}
	}
	if len(stale.Removed) != want {
		t.Errorf("removed %d edges, want %d crossing edges", len(stale.Removed), want)
	}
}

func TestIncrementalErrors(t *testing.T) {
	base := graph.Grid(4, 4)
	ov := graph.NewOverlay(base)
	if _, _, _, err := DecomposeIncremental(nil, ov, 0.5, Options{}); err == nil {
		t.Error("nil previous decomposition accepted")
	}
	other, err := Decompose(graph.Grid(3, 3), 0.5, Options{Seed: 1})
	if err != nil {
		t.Fatalf("decompose: %v", err)
	}
	if _, _, _, err := DecomposeIncremental(other, ov, 0.5, Options{}); err == nil {
		t.Error("mismatched vertex count accepted")
	}
}
