package expander

import (
	"fmt"
	"math"
	"sort"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// This file implements a second distributed decomposer: a message-passing
// PageRank-Nibble. The Andersen–Chung–Lang push process is inherently
// distributed — residuals live on vertices and a push sends one word to each
// neighbor — so the carving loop below is real CONGEST communication:
//
//	repeat until every vertex is clustered:
//	  1. elect a seed in every uncarved component (max-degree leader);
//	  2. run R rounds of distributed PPR push from the seed, restricted to
//	     uncarved vertices (fixed-point residual shares, 2-word messages);
//	  3. vertices holding mass report (vertex, scaled p/deg) to the seed by
//	     flooding up a BFS tree (the touched set is local, so this is
//	     cheap); the seed computes the best sweep cut locally and floods
//	     back the carve decision;
//	  4. carved vertices retire; if the sweep found no cut of conductance
//	     below the threshold, the whole touched component retires as one
//	     cluster.
//
// Rounds are measured, not bounded by theory: this decomposer exists to
// demonstrate the nibble approach end-to-end in the model, alongside the
// MPX+refine decomposer used by the framework.

// pprScale is the fixed-point denominator for residual mass in messages.
const pprScale = 1 << 14

// DistributedNibble computes a clustering by repeated distributed
// PageRank-Nibble carving. The returned decomposition's Phi field records
// the sweep threshold used (eps/2); Verify reports measured quality.
func DistributedNibble(g *graph.Graph, cfg congest.Config, eps float64) (*Decomposition, congest.Metrics, error) {
	if eps <= 0 || eps >= 1 {
		return nil, congest.Metrics{}, fmt.Errorf("expander: eps must be in (0,1), got %v", eps)
	}
	n := g.N()
	var total congest.Metrics
	carved := make([]bool, n)
	assign := make(primitives.ClusterAssignment, n)
	for i := range assign {
		assign[i] = -1
	}
	nextCluster := 0
	threshold := eps / 2
	// Safety bound: every carve retires at least one vertex.
	for iter := 0; iter < n; iter++ {
		remaining := uncarved(carved)
		if len(remaining) == 0 {
			break
		}
		members, metrics, err := nibbleCarve(g, cfg, carved, threshold, int64(iter)+cfg.Seed)
		total.Add(metrics)
		if err != nil {
			return nil, total, err
		}
		if len(members) == 0 {
			// Defensive: never loop without progress.
			members = remaining[:1]
		}
		// Carving can return a disconnected vertex set when the push mass
		// skips vertices; split into connected parts so every cluster is
		// connected.
		for _, part := range connectedParts(g, members) {
			for _, v := range part {
				carved[v] = true
				assign[v] = nextCluster
			}
			nextCluster++
		}
	}
	dec := FromAssignment(g, assign, eps, threshold)
	dec.Phi = threshold
	return dec, total, nil
}

func uncarved(carved []bool) []int {
	var out []int
	for v, c := range carved {
		if !c {
			out = append(out, v)
		}
	}
	return out
}

// nibbleCarve elects one seed among uncarved vertices, pushes PPR mass from
// it, and returns the vertex set the seed decides to carve.
func nibbleCarve(g *graph.Graph, cfg congest.Config, carved []bool, threshold float64, seed int64) ([]int, congest.Metrics, error) {
	n := g.N()
	// Cluster assignment for the election: uncarved vertices share cluster
	// 0 per component... component structure handled by electing per
	// "uncarved" flag: carved vertices sit in singleton clusters and are
	// ignored.
	cluster := make(primitives.ClusterAssignment, n)
	for v := 0; v < n; v++ {
		if carved[v] {
			cluster[v] = v + 1 // unique, out of the way
		}
	}
	runCfg := cfg
	runCfg.Seed = seed
	leaders, m1, err := primitives.ElectLeaders(g, runCfg, cluster, n+2)
	if err != nil {
		return nil, m1, err
	}
	// The election runs per connected component of the uncarved subgraph
	// implicitly (messages only flow between same-cluster = both-uncarved
	// neighbors). Pick the seed of the component containing the smallest
	// uncarved vertex.
	seedVertex := -1
	for v := 0; v < n; v++ {
		if !carved[v] {
			seedVertex = leaders.Leader[v]
			break
		}
	}
	if seedVertex == -1 {
		return nil, m1, nil
	}

	// Distributed push for R rounds. alpha = 0.1 fixed; mass in fixed
	// point. Each vertex keeps (p, r); a round pushes every vertex whose
	// residual exceeds its push threshold.
	alpha := 0.1
	rounds := 6 * int(math.Ceil(math.Log(float64(n)+2)/alpha))
	type pushState struct {
		p, r   int64
		active bool
	}
	runCfg.Obs.BeginPhase("push")
	sim := congest.NewSimulator(g, runCfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		s := &pushState{active: !carved[v.ID()]}
		if v.ID() == seedVertex {
			s.r = pprScale
		}
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				for _, in := range recv {
					if len(in.Msg) == 2 && in.Msg[0] == 71 && s.active {
						s.r += in.Msg[1]
					}
				}
				if round >= rounds {
					v.SetOutput([2]int64{s.p, s.r})
					v.Halt()
					return
				}
				// Every idle return below sleeps until new mass arrives (a
				// message wakes the vertex) or the final output round fires
				// via the timer; the skipped rounds would have re-evaluated
				// the same state and done nothing.
				if !s.active {
					v.SleepUntil(rounds)
					return
				}
				deg := int64(0)
				for p := 0; p < v.Degree(); p++ {
					if !carved[v.NeighborID(p)] {
						deg++
					}
				}
				if deg == 0 {
					s.p += s.r
					s.r = 0
					v.SleepUntil(rounds)
					return
				}
				// Push when the residual is meaningful (≥ deg units of
				// fixed-point mass, i.e. each neighbor gets ≥ 1).
				if s.r < 2*deg {
					v.SleepUntil(rounds)
					return
				}
				s.p += int64(alpha * float64(s.r))
				keep := (s.r - int64(alpha*float64(s.r))) / 2
				share := keep / deg
				s.r = keep - share*deg + (s.r - int64(alpha*float64(s.r)) - keep) // remainder stays
				push := v.MsgBuf(2)
				push[0], push[1] = 71, share
				for p := 0; p < v.Degree(); p++ {
					if !carved[v.NeighborID(p)] {
						v.Send(p, push)
					}
				}
				if s.r < 2*deg {
					// Drained below the push threshold: quiesce like the
					// branch above until more mass flows in.
					v.SleepUntil(rounds)
				}
			},
		}
	})
	m1.Add(res.Metrics)
	runCfg.Obs.EndPhase()
	if err != nil {
		return nil, m1, err
	}

	// The sweep phase is leader-local (zero communication rounds); naming it
	// keeps the nibble's carve structure visible in phase reports.
	runCfg.Obs.BeginPhase("sweep")
	defer runCfg.Obs.EndPhase()

	// Harness-side sweep on the touched set (standing in for the BFS-tree
	// gather to the seed; the touched set and the decision are both local
	// to the seed's neighborhood, and the gather cost is already the
	// dominant measured cost in the framework's own routing phase).
	type scored struct {
		v     int
		score float64
	}
	var touched []scored
	for v := 0; v < n; v++ {
		if carved[v] || res.Outputs[v] == nil {
			continue
		}
		pr := res.Outputs[v].([2]int64)
		mass := pr[0] + pr[1]
		if mass <= 0 {
			continue
		}
		d := g.Degree(v)
		if d == 0 {
			d = 1
		}
		touched = append(touched, scored{v: v, score: float64(mass) / float64(d)})
	}
	if len(touched) == 0 {
		return []int{seedVertex}, m1, nil
	}
	sort.Slice(touched, func(i, j int) bool {
		if touched[i].score != touched[j].score {
			return touched[i].score > touched[j].score
		}
		return touched[i].v < touched[j].v
	})
	// Sweep within the uncarved subgraph.
	inS := make(map[int]bool)
	volS, cut := 0, 0
	totalVol := 0
	for v := 0; v < n; v++ {
		if carved[v] {
			continue
		}
		g.ForEachNeighbor(v, func(u, _ int) {
			if !carved[u] {
				totalVol++
			}
		})
	}
	bestK, bestPhi := -1, 2.0
	for k, sc := range touched {
		v := sc.v
		inS[v] = true
		g.ForEachNeighbor(v, func(u, _ int) {
			if carved[u] {
				return
			}
			volS++
			if inS[u] {
				cut--
			} else {
				cut++
			}
		})
		minVol := volS
		if rest := totalVol - volS; rest < minVol {
			minVol = rest
		}
		if minVol <= 0 {
			continue
		}
		phi := float64(cut) / float64(minVol)
		if phi < bestPhi {
			bestPhi, bestK = phi, k
		}
	}
	if bestK < 0 || bestPhi > threshold {
		// No sparse cut: the touched region is expander-like; carve the
		// whole uncarved component containing the seed.
		return componentOf(g, carved, seedVertex), m1, nil
	}
	members := make([]int, 0, bestK+1)
	for _, sc := range touched[:bestK+1] {
		members = append(members, sc.v)
	}
	return members, m1, nil
}

// componentOf returns the uncarved connected component containing root.
func componentOf(g *graph.Graph, carved []bool, root int) []int {
	seen := map[int]bool{root: true}
	queue := []int{root}
	var out []int
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		out = append(out, v)
		g.ForEachNeighbor(v, func(u, _ int) {
			if !carved[u] && !seen[u] {
				seen[u] = true
				queue = append(queue, u)
			}
		})
	}
	return out
}

// connectedParts splits members into connected components of the induced
// subgraph.
func connectedParts(g *graph.Graph, members []int) [][]int {
	in := make(map[int]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	seen := make(map[int]bool, len(members))
	var parts [][]int
	for _, root := range members {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue := []int{root}
		part := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.ForEachNeighbor(v, func(u, _ int) {
				if in[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
					part = append(part, u)
				}
			})
		}
		parts = append(parts, part)
	}
	return parts
}
