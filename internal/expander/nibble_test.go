package expander

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

func TestDistributedNibblePartitions(t *testing.T) {
	g := graph.Grid(7, 7)
	dec, metrics, err := DistributedNibble(g, congest.Config{Seed: 1}, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if metrics.Rounds == 0 {
		t.Error("nibble should spend rounds")
	}
	seen := make([]bool, g.N())
	for _, c := range dec.Clusters {
		for _, v := range c {
			if seen[v] {
				t.Fatalf("vertex %d in two clusters", v)
			}
			seen[v] = true
		}
	}
	for v, s := range seen {
		if !s {
			t.Errorf("vertex %d unassigned", v)
		}
	}
	rng := rand.New(rand.NewSource(1))
	rep := dec.Verify(g, rng)
	if !rep.Connected {
		t.Error("nibble produced a disconnected cluster")
	}
}

func TestDistributedNibbleBarbell(t *testing.T) {
	// Two K7s joined by one edge: nibble must separate them (or carve one
	// whole side), never cut through a clique.
	b := graph.NewBuilder(14)
	for i := 0; i < 7; i++ {
		for j := i + 1; j < 7; j++ {
			b.AddEdge(i, j)
			b.AddEdge(7+i, 7+j)
		}
	}
	b.AddEdge(6, 7)
	g := b.Graph()
	dec, _, err := DistributedNibble(g, congest.Config{Seed: 3}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	// Whatever the clustering, at most the bridge should be cut.
	if len(dec.Removed) > 1 {
		t.Errorf("nibble cut %d edges on a barbell, want <= 1", len(dec.Removed))
	}
}

func TestDistributedNibbleExpanderStaysWholeish(t *testing.T) {
	g := graph.Complete(10)
	dec, _, err := DistributedNibble(g, congest.Config{Seed: 5}, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Clusters) != 1 {
		t.Errorf("clique split into %d clusters by nibble", len(dec.Clusters))
	}
}

func TestDistributedNibbleInvalidEps(t *testing.T) {
	g := graph.Path(4)
	for _, eps := range []float64{0, 1} {
		if _, _, err := DistributedNibble(g, congest.Config{}, eps); err == nil {
			t.Errorf("eps=%v accepted", eps)
		}
	}
}

func TestDistributedNibbleDeterministic(t *testing.T) {
	g := graph.TriangulatedGrid(5, 5)
	run := func() int {
		dec, _, err := DistributedNibble(g, congest.Config{Seed: 9}, 0.4)
		if err != nil {
			t.Fatal(err)
		}
		return len(dec.Clusters)
	}
	if run() != run() {
		t.Error("nibble nondeterministic for fixed seed")
	}
}
