package expander

import (
	"math/rand"
	"sync"

	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// This file implements the parallel recursion behind Options.Workers > 1
// (DESIGN.md §3.12). The sequential Decompose recursion is embarrassingly
// parallel: after a cut, the two sides are vertex-disjoint pieces of g, and
// the components of a disconnected piece are likewise disjoint, so every
// recursive call operates on an independent InduceFiltered view. Three things
// make the fan-out deterministic and race-free:
//
//   - Per-piece randomness. The sequential path threads one *rand.Rand
//     through the recursion in DFS order, which any concurrent schedule
//     would scramble. Each parallel piece instead seeds a fresh PRNG by
//     hashing (opts.Seed, the piece's vertex set) with FNV-64a, making every
//     cut search a pure function of its piece — the output is bit-identical
//     for every Workers > 1 and independent of goroutine scheduling.
//
//   - Bitmap ownership. The removed-edge set is a []bool indexed by base
//     edge id. A recursion branch writes only the edges crossing its own
//     cuts — both endpoints inside its piece — and reads only edges with
//     both endpoints inside its piece. Sibling pieces have disjoint vertex
//     sets, hence disjoint edge sets, so no two goroutines ever touch the
//     same element and the bitmap needs no lock.
//
//   - DFS-ordered assembly. Each call returns its subtree's clusters in the
//     order the sequential DFS would have discovered them (side A before
//     side B, components in order); parents concatenate child results after
//     the join, so cluster IDs come out schedule-independent.
type parDecomposer struct {
	g       *graph.Graph
	phi     float64
	opts    Options
	removed []bool
	// drop is the InduceFiltered predicate over removed, built once: it
	// escapes into every view, so a per-piece literal would allocate on
	// every recursive call.
	drop func(ei int) bool
	// sem bounds the extra goroutines at Workers-1 (the calling goroutine is
	// the Workers-th). A full semaphore degrades to inline recursion instead
	// of blocking, so the pool can never deadlock on its own children.
	sem chan struct{}
}

// decomposeParallel is the Workers > 1 entry point dispatched by Decompose;
// eps has been validated and phi resolved by the caller.
func decomposeParallel(g *graph.Graph, eps, phi float64, opts Options) *Decomposition {
	d := &Decomposition{
		Assignment: make(primitives.ClusterAssignment, g.N()),
		Eps:        eps,
		Phi:        phi,
	}
	p := &parDecomposer{
		g:       g,
		phi:     phi,
		opts:    opts,
		removed: make([]bool, g.M()),
		sem:     make(chan struct{}, opts.Workers-1),
	}
	p.drop = func(ei int) bool { return p.removed[ei] }
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	for _, verts := range p.solve(all) {
		d.addCluster(verts)
	}
	d.Removed = removedList(p.removed)
	return d
}

// pieceSeed derives the PRNG seed of one recursion piece: FNV-64a over the
// run seed and the piece's vertex ids (ascending by construction — sides and
// components are emitted in ascending base order). Disjoint pieces thus draw
// independent streams, and the same piece draws the same stream under every
// schedule and worker count.
func pieceSeed(seed int64, verts []int) int64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(x uint64) {
		for i := 0; i < 8; i++ {
			h ^= (x >> (8 * i)) & 0xff
			h *= prime64
		}
	}
	mix(uint64(seed))
	for _, v := range verts {
		mix(uint64(v))
	}
	return int64(h)
}

// solve returns the clusters of the piece `verts` in sequential DFS order.
// It mirrors the recursion in Decompose exactly, except that the cut search
// draws from the piece-seeded PRNG and children may run concurrently.
func (p *parDecomposer) solve(verts []int) [][]int {
	if len(verts) == 0 {
		return nil
	}
	sub := p.g.InduceFiltered(verts, p.drop)
	comps := sub.Components()
	if len(comps) > 1 {
		children := make([][]int, len(comps))
		for i, comp := range comps {
			orig := make([]int, len(comp))
			for j, v := range comp {
				orig[j] = sub.BaseVertex(v)
			}
			children[i] = orig
		}
		return p.solveChildren(children)
	}
	if len(verts) <= 2 || sub.M() == 0 {
		return [][]int{verts}
	}
	rng := rand.New(rand.NewSource(pieceSeed(p.opts.Seed, verts)))
	cut, cutPhi := bestSparseCut(sub, p.opts.SpectralIters, rng, p.opts.Deterministic)
	if cutPhi >= p.phi || cut == nil {
		return [][]int{verts}
	}
	var sideA, sideB []int
	for i := 0; i < sub.N(); i++ {
		v := sub.BaseVertex(i)
		if cut[i] {
			sideA = append(sideA, v)
		} else {
			sideB = append(sideB, v)
		}
	}
	// The cut edges are marked before either side recurses: both sides (and
	// everything below them) must see this cut excluded from their views.
	// Concurrent siblings elsewhere in the tree never read these elements —
	// their pieces cannot contain an edge with an endpoint in this piece.
	for _, ei := range sub.CutEdges(cut) {
		p.removed[sub.BaseEdge(ei)] = true
	}
	return p.solveChildren([][]int{sideA, sideB})
}

// solveChildren recurses into the disjoint child pieces, fanning all but the
// last out to the pool when slots are free (inline otherwise — the semaphore
// never blocks), and concatenates the results in child order. Panics from
// offloaded children are re-raised on the caller after the join, lowest
// child first, matching where the sequential recursion would have panicked.
func (p *parDecomposer) solveChildren(children [][]int) [][]int {
	results := make([][][]int, len(children))
	panics := make([]any, len(children))
	var wg sync.WaitGroup
	for i := 0; i < len(children)-1; i++ {
		select {
		case p.sem <- struct{}{}:
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				defer func() { <-p.sem }()
				defer func() {
					if r := recover(); r != nil {
						panics[i] = r // distinct slot per child: no lock
					}
				}()
				results[i] = p.solve(children[i])
			}(i)
		default:
			results[i] = p.solve(children[i])
		}
	}
	results[len(children)-1] = p.solve(children[len(children)-1])
	wg.Wait()
	for _, r := range panics {
		if r != nil {
			panic(r)
		}
	}
	var out [][]int
	for _, r := range results {
		out = append(out, r...)
	}
	return out
}
