package expander

import (
	"math/rand"
	"testing"

	"expandergap/internal/graph"
)

// decomposerSweep is the Workers matrix of the parallel-decomposer suite:
// the sequential ground truth plus pools of 2, 4 and 8.
var decomposerSweep = []int{1, 2, 4, 8}

// TestDecomposeParallelGoldenEquivalence runs the E4/E7 golden instances
// under every decomposer worker count and demands the pinned sequential
// fingerprints. On these instances every cut decision is RNG-independent
// (no cut below the φ target exists, and SweepCut certifies the exact
// conductance of any candidate), so the per-piece seed derivation of the
// parallel path must not change a single output byte.
func TestDecomposeParallelGoldenEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(2022))
	base := graph.RandomPlanar(36, 0.7, rng)
	cases := []struct {
		name string
		g    *graph.Graph
		eps  float64
		opts Options
		fp   uint64
	}{
		{name: "grid16x16-eps0.25", g: graph.Grid(16, 16), eps: 0.25,
			opts: Options{Seed: 2022}, fp: 0x5177aa8a268ecc24},
		{name: "trigrid12x12-eps0.25", g: graph.TriangulatedGrid(12, 12), eps: 0.25,
			opts: Options{Seed: 2022}, fp: 0xd2ab3d7ee20ed424},
		{name: "e7planar36-w10-eps0.3", g: graph.WithRandomWeights(base, 10, rng), eps: 0.3,
			opts: Options{Seed: 2022}, fp: 0x6bc5cb0cea2dee24},
		{name: "grid16x16-deterministic", g: graph.Grid(16, 16), eps: 0.25,
			opts: Options{Seed: 99, Deterministic: true}, fp: 0x5177aa8a268ecc24},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			for _, workers := range decomposerSweep {
				opts := tc.opts
				opts.Workers = workers
				d, err := Decompose(tc.g, tc.eps, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				if fp := decompositionFingerprint(d); fp != tc.fp {
					t.Errorf("workers=%d: fingerprint = %#x, want %#x (parallel output drifted from the sequential ground truth)",
						workers, fp, tc.fp)
				}
			}
		})
	}
}

// TestDecomposeParallelDeterministicEquivalence pins the strongest claim the
// parallel path makes: under Options.Deterministic the cut search consumes
// no caller randomness at all, so parallel output must be bit-identical to
// sequential on any instance — including the stress setting whose deep
// recursion takes dozens of cuts.
func TestDecomposeParallelDeterministicEquivalence(t *testing.T) {
	g := graph.Grid(16, 16)
	opts := Options{Seed: 2022, Phi: 0.15, Deterministic: true}
	seq, err := Decompose(g, 0.999, opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Clusters) < 2 {
		t.Fatalf("stress instance should split (got %d clusters)", len(seq.Clusters))
	}
	want := decompositionFingerprint(seq)
	for _, workers := range decomposerSweep[1:] {
		o := opts
		o.Workers = workers
		d, err := Decompose(g, 0.999, o)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if fp := decompositionFingerprint(d); fp != want {
			t.Errorf("workers=%d: deterministic fingerprint = %#x, want sequential %#x", workers, fp, want)
		}
	}
}

// TestDecomposeParallelWorkerInvariance checks that the randomized parallel
// path is a pure function of (graph, eps, opts) — identical output for every
// Workers > 1 and every scheduling — on instances whose cut decisions DO
// depend on the RNG: the deep-recursion stress grid and a random maximal
// planar graph. It also verifies the (ε, φ) contract on the result.
func TestDecomposeParallelWorkerInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
		eps  float64
		opts Options
	}{
		{name: "grid16x16-phiStress0.15", g: graph.Grid(16, 16), eps: 0.999,
			opts: Options{Seed: 2022, Phi: 0.15}},
		{name: "planar200-eps0.3", g: graph.RandomMaximalPlanar(200, rng), eps: 0.3,
			opts: Options{Seed: 1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var want uint64
			for i, workers := range []int{2, 3, 4, 8} {
				opts := tc.opts
				opts.Workers = workers
				d, err := Decompose(tc.g, tc.eps, opts)
				if err != nil {
					t.Fatalf("workers=%d: %v", workers, err)
				}
				fp := decompositionFingerprint(d)
				if i == 0 {
					want = fp
					rep := d.Verify(tc.g, rand.New(rand.NewSource(7)))
					if !rep.CutOK || !rep.ConductanceOK || !rep.Connected {
						t.Errorf("workers=%d: contract violated: %+v", workers, rep)
					}
					continue
				}
				if fp != want {
					t.Errorf("workers=%d: fingerprint = %#x, want %#x (parallel output depends on worker count)",
						workers, fp, want)
				}
			}
		})
	}
}

// TestDecomposeParallelRepeatedRuns re-runs the same parallel decomposition
// several times at a fixed worker count: goroutine scheduling varies between
// runs, the output must not.
func TestDecomposeParallelRepeatedRuns(t *testing.T) {
	g := graph.Grid(16, 16)
	opts := Options{Seed: 2022, Phi: 0.15, Workers: 4}
	var want uint64
	for run := 0; run < 5; run++ {
		d, err := Decompose(g, 0.999, opts)
		if err != nil {
			t.Fatal(err)
		}
		fp := decompositionFingerprint(d)
		if run == 0 {
			want = fp
			continue
		}
		if fp != want {
			t.Fatalf("run %d: fingerprint = %#x, want %#x (parallel output is schedule-dependent)", run, fp, want)
		}
	}
}
