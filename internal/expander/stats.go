package expander

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"expandergap/internal/conductance"
	"expandergap/internal/graph"
)

// Stats summarizes a decomposition's structure for reporting.
type Stats struct {
	// Clusters is the cluster count.
	Clusters int
	// CutEdges is |E^r|.
	CutEdges int
	// CutFraction is |E^r| / |E|.
	CutFraction float64
	// Sizes holds cluster sizes in descending order.
	Sizes []int
	// MedianSize and LargestSize summarize the distribution.
	MedianSize, LargestSize int
	// Singletons counts 1-vertex clusters.
	Singletons int
	// MaxDiameter is the largest induced-cluster diameter.
	MaxDiameter int
	// MinConductance is the smallest certified per-cluster conductance
	// (exact for small clusters, Cheeger bound otherwise).
	MinConductance float64
}

// ComputeStats measures d against g.
func (d *Decomposition) ComputeStats(g *graph.Graph, rng *rand.Rand) Stats {
	st := Stats{
		Clusters:       len(d.Clusters),
		CutEdges:       len(d.Removed),
		CutFraction:    d.CutFraction(g),
		MinConductance: 2,
	}
	for i, c := range d.Clusters {
		st.Sizes = append(st.Sizes, len(c))
		if len(c) == 1 {
			st.Singletons++
			continue
		}
		sub := d.ClusterView(g, i)
		if dd := sub.Diameter(); dd > st.MaxDiameter {
			st.MaxDiameter = dd
		}
		var phi float64
		if sub.N() <= conductance.MaxExactN {
			phi = conductance.ExactConductance(sub)
		} else {
			phi = conductance.EstimateBounds(sub, 200, rng).Lower
		}
		if phi < st.MinConductance {
			st.MinConductance = phi
		}
	}
	sort.Sort(sort.Reverse(sort.IntSlice(st.Sizes)))
	if len(st.Sizes) > 0 {
		st.LargestSize = st.Sizes[0]
		st.MedianSize = st.Sizes[len(st.Sizes)/2]
	}
	if st.MinConductance > 1.5 {
		st.MinConductance = 0 // no multi-vertex clusters
	}
	return st
}

// String renders a one-line summary.
func (s Stats) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "clusters=%d cut=%d (%.3f) largest=%d median=%d singletons=%d maxDiam=%d minΦ=%.4f",
		s.Clusters, s.CutEdges, s.CutFraction, s.LargestSize, s.MedianSize,
		s.Singletons, s.MaxDiameter, s.MinConductance)
	return sb.String()
}
