package expander

import (
	"math/rand"
	"strings"
	"testing"

	"expandergap/internal/graph"
)

func TestComputeStats(t *testing.T) {
	g := graph.Grid(6, 6)
	d, err := Decompose(g, 0.999, Options{Seed: 1, Phi: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	st := d.ComputeStats(g, rng)
	if st.Clusters != len(d.Clusters) {
		t.Errorf("Clusters = %d, want %d", st.Clusters, len(d.Clusters))
	}
	if st.CutEdges != len(d.Removed) {
		t.Errorf("CutEdges = %d, want %d", st.CutEdges, len(d.Removed))
	}
	total := 0
	for _, s := range st.Sizes {
		total += s
	}
	if total != g.N() {
		t.Errorf("sizes sum to %d, want %d", total, g.N())
	}
	if st.LargestSize != st.Sizes[0] {
		t.Error("LargestSize inconsistent")
	}
	if st.MinConductance < d.Phi {
		t.Errorf("min conductance %v below target %v", st.MinConductance, d.Phi)
	}
	if !strings.Contains(st.String(), "clusters=") {
		t.Error("Stats.String malformed")
	}
}

func TestComputeStatsSingletons(t *testing.T) {
	g := graph.Path(3)
	d := Singletons(g)
	st := d.ComputeStats(g, rand.New(rand.NewSource(1)))
	if st.Singletons != 3 || st.MinConductance != 0 || st.MaxDiameter != 0 {
		t.Errorf("singleton stats wrong: %+v", st)
	}
}
