package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"expandergap/internal/apps/corrclust"
	"expandergap/internal/apps/matching"
	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// E5MaxIS measures Theorem 1.2: framework MaxIS quality across families and
// ε, against the exact optimum (small instances) and the Luby MIS baseline.
func E5MaxIS(sizes []int, epsList []float64, seed int64) Outcome {
	t := &Table{
		ID:      "E5",
		Title:   "(1-ε)-approximate MaxIS on minor-free graphs (Thm 1.2)",
		Columns: []string{"family", "n", "eps", "framework", "opt/bound", "ratio", "luby-ratio", "ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	frameworkBeatsLuby := 0
	comparisons := 0
	for _, fam := range planarFamilies()[:3] {
		for _, n := range sizes {
			g := fam.gen(n, rng)
			for _, eps := range epsList {
				res, err := maxis.Approximate(g, maxis.Options{Eps: eps, Cfg: congest.Config{Seed: seed}})
				if err != nil {
					panic(fmt.Sprintf("E5: %v", err))
				}
				ratio, exact := maxis.Ratio(g, res.Set)
				luby, _, err := maxis.LubyMIS(g, congest.Config{Seed: seed})
				if err != nil {
					panic(fmt.Sprintf("E5 luby: %v", err))
				}
				lubyRatio, _ := maxis.Ratio(g, luby)
				ok := !exact || ratio >= 1-eps-1e-9
				allOK = allOK && ok
				comparisons++
				if float64(len(res.Set)) >= float64(len(luby)) {
					frameworkBeatsLuby++
				}
				opt := "greedy-bound"
				if exact {
					opt = "exact"
				}
				t.AddRow(fam.name, g.N(), eps, len(res.Set), opt, ratio, lubyRatio, ok)
			}
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "ratio ≥ 1-ε wherever the optimum is exact", OK: allOK},
			{
				Name: "framework ≥ Luby baseline on most instances",
				OK:   2*frameworkBeatsLuby >= comparisons,
				Info: fmt.Sprintf("%d/%d", frameworkBeatsLuby, comparisons),
			},
		},
	}
}

// E6PlanarMCM measures Theorem 3.2: framework MCM with star elimination on
// planar graphs, against the exact blossom optimum and the distributed
// greedy baseline.
func E6PlanarMCM(sizes []int, eps float64, seed int64) Outcome {
	t := &Table{
		ID:      "E6",
		Title:   "(1-ε)-approximate MCM on planar graphs with star elimination (Thm 3.2)",
		Columns: []string{"instance", "n", "framework", "opt", "ratio", "greedy-ratio", "aug-ratio", "eliminated", "ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	for _, n := range sizes {
		base := graph.RandomPlanar(n, 0.7, rng)
		stars := graph.AttachPendantStars(base, []int{0, n / 4, n / 2}, 4)
		instances := []struct {
			name string
			g    *graph.Graph
		}{
			{"planar", base},
			{"planar+stars", stars},
		}
		for _, inst := range instances {
			res, err := matching.ApproximateMCM(inst.g, matching.Options{Eps: eps, Cfg: congest.Config{Seed: seed}})
			if err != nil {
				panic(fmt.Sprintf("E6: %v", err))
			}
			opt := solvers.MatchingSize(solvers.MaximumMatching(inst.g))
			ratio := 1.0
			if opt > 0 {
				ratio = float64(res.Size()) / float64(opt)
			}
			greedy, _, err := matching.DistributedGreedy(inst.g, congest.Config{Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("E6 greedy: %v", err))
			}
			greedyRatio := 1.0
			if opt > 0 {
				greedyRatio = float64(greedy.Size()) / float64(opt)
			}
			aug, _, err := matching.GreedyPlusAugment(inst.g, congest.Config{Seed: seed}, 60)
			if err != nil {
				panic(fmt.Sprintf("E6 augment: %v", err))
			}
			augRatio := 1.0
			if opt > 0 {
				augRatio = float64(aug.Size()) / float64(opt)
			}
			elim := 0
			for _, e := range res.Eliminated {
				if e {
					elim++
				}
			}
			ok := ratio >= 1-eps-1e-9 && ratio >= augRatio-1e-9
			allOK = allOK && ok
			t.AddRow(inst.name, inst.g.N(), res.Size(), opt, ratio, greedyRatio, augRatio, elim, ok)
		}
	}
	return Outcome{
		Table:  t,
		Checks: []Check{{Name: "MCM ratio ≥ 1-ε on every instance", OK: allOK}},
	}
}

// E7MWM measures Theorem 1.1's statement: framework MWM quality across
// maximum weights W, against the exact optimum where feasible and twice the
// greedy weight (a certified upper bound on OPT) otherwise.
func E7MWM(sizes []int, weights []int64, eps float64, seed int64) Outcome {
	t := &Table{
		ID:      "E7",
		Title:   "(1-ε)-approximate MWM on minor-free graphs (Thm 1.1)",
		Columns: []string{"n", "W", "framework-w", "bound", "ratio-lb", "greedy-ratio-lb", "ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	for _, n := range sizes {
		for _, w := range weights {
			base := graph.RandomPlanar(n, 0.7, rng)
			g := graph.WithRandomWeights(base, w, rng)
			res, err := matching.ApproximateMWM(g, matching.Options{Eps: eps, Cfg: congest.Config{Seed: seed}})
			if err != nil {
				panic(fmt.Sprintf("E7: %v", err))
			}
			got := res.Weight(g)
			// Upper bound on OPT: exact weighted blossom when the instance
			// fits, else 2× greedy.
			var bound int64
			boundKind := "2·greedy"
			switch {
			case g.N() <= solvers.WeightedBlossomLimit:
				bound = solvers.MatchingWeight(g, solvers.ExactMWM(g))
				boundKind = "exact"
			default:
				bound = 2 * solvers.MatchingWeight(g, solvers.GreedyMatching(g))
			}
			ratioLB := float64(got) / float64(bound)
			grd, _, err := matching.DistributedGreedy(g, congest.Config{Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("E7 greedy: %v", err))
			}
			greedyRatio := float64(grd.Weight(g)) / float64(bound)
			// Shape: within (1-ε) of the exact optimum; against the
			// 2·greedy upper bound, clearing (1-ε)/2 certifies
			// ≥ (1-ε)/2·OPT.
			threshold := (1 - eps) / 2
			if boundKind == "exact" {
				threshold = 1 - eps
			}
			ok := ratioLB >= threshold-1e-9
			allOK = allOK && ok
			t.AddRow(g.N(), w, got, boundKind, ratioLB, greedyRatio, ok)
		}
	}
	return Outcome{
		Table:  t,
		Checks: []Check{{Name: "MWM clears its certified threshold on every instance", OK: allOK}},
	}
}

// E8CorrClust measures Theorem 1.3: framework correlation clustering score
// against the γ(G) ≥ |E|/2 guarantee, the planted optimum, and the pivot
// baseline.
func E8CorrClust(sizes []int, eps float64, seed int64) Outcome {
	t := &Table{
		ID:      "E8",
		Title:   "(1-ε)-approximate correlation clustering (Thm 1.3)",
		Columns: []string{"instance", "n", "score", "gamma-bound", "planted", "pivot", "ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	beatsPivot := 0
	total := 0
	for _, n := range sizes {
		side := int(math.Sqrt(float64(n)))
		base := graph.TriangulatedGrid(side, side)
		planted, blocks := graph.WithPlantedSigns(base, maxInt(side, 2), 0.05, rng)
		random := graph.WithRandomSigns(base, 0.5, rng)
		instances := []struct {
			name    string
			g       *graph.Graph
			planted []int
		}{
			{"planted", planted, blocks},
			{"random", random, nil},
		}
		for _, inst := range instances {
			res, err := corrclust.Approximate(inst.g, corrclust.Options{Eps: eps, Cfg: congest.Config{Seed: seed}})
			if err != nil {
				panic(fmt.Sprintf("E8: %v", err))
			}
			gamma := corrclust.GammaLowerBound(inst.g)
			plantedScore := int64(-1)
			if inst.planted != nil {
				plantedScore = solvers.CorrelationScore(inst.g, inst.planted)
			}
			pivotLabels, _, err := corrclust.DistributedPivot(inst.g, congest.Config{Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("E8 pivot: %v", err))
			}
			pivotScore := solvers.CorrelationScore(inst.g, pivotLabels)
			ok := float64(res.Score) >= (1-eps)*float64(gamma)-1e-9
			if inst.planted != nil {
				ok = ok && float64(res.Score) >= (1-eps)*float64(plantedScore)
			}
			allOK = allOK && ok
			total++
			if res.Score >= pivotScore {
				beatsPivot++
			}
			t.AddRow(inst.name, inst.g.N(), res.Score, gamma, plantedScore, pivotScore, ok)
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "score ≥ (1-ε)·γ-bound (and ≥ (1-ε)·planted)", OK: allOK},
			{
				Name: "framework ≥ pivot baseline on most instances",
				OK:   2*beatsPivot >= total,
				Info: fmt.Sprintf("%d/%d", beatsPivot, total),
			},
		},
	}
}
