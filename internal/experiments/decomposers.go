package experiments

import (
	"fmt"
	"math/rand"

	"expandergap/internal/congest"
	"expandergap/internal/expander"
)

// E16DecomposerComparison runs all three decomposition constructions —
// the sequential recursive sparse cut (the framework's default), the
// distributed MPX+refine pipeline, and the distributed PageRank-Nibble —
// side by side on planar families, reporting cut fractions, cluster
// structure, and message-passing rounds where applicable.
func E16DecomposerComparison(sizes []int, eps float64, seed int64) Outcome {
	t := &Table{
		ID:      "E16",
		Title:   "decomposer comparison: sequential vs MPX+refine vs distributed nibble",
		Columns: []string{"family", "n", "decomposer", "cut-frac", "clusters", "connected", "rounds"},
	}
	rng := rand.New(rand.NewSource(seed))
	allConnected := true
	cutsBounded := true
	for _, fam := range planarFamilies()[:2] {
		for _, n := range sizes {
			g := fam.gen(n, rng)
			type result struct {
				name   string
				dec    *expander.Decomposition
				rounds int
			}
			var results []result

			seq, err := expander.Decompose(g, eps, expander.Options{Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("E16 seq: %v", err))
			}
			results = append(results, result{"sequential", seq, 0})

			mpx, m1, err := expander.DistributedDecompose(g, congest.Config{Seed: seed}, eps)
			if err != nil {
				panic(fmt.Sprintf("E16 mpx: %v", err))
			}
			results = append(results, result{"mpx+refine", mpx, m1.Rounds})

			nib, m2, err := expander.DistributedNibble(g, congest.Config{Seed: seed}, eps)
			if err != nil {
				panic(fmt.Sprintf("E16 nibble: %v", err))
			}
			results = append(results, result{"nibble", nib, m2.Rounds})

			for _, r := range results {
				rep := r.dec.Verify(g, rng)
				allConnected = allConnected && rep.Connected
				// Randomized constructions get 2× headroom on ε.
				limit := eps
				if r.name != "sequential" {
					limit = 2 * eps
				}
				cutsBounded = cutsBounded && rep.CutFraction <= limit+1e-9
				t.AddRow(fam.name, g.N(), r.name, rep.CutFraction,
					len(r.dec.Clusters), rep.Connected, r.rounds)
			}
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "every decomposer produces connected clusters", OK: allConnected},
			{Name: "cut fractions within budget (2× for randomized)", OK: cutsBounded},
		},
	}
}
