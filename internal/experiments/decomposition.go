package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"expandergap/internal/congest"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
	"expandergap/internal/routing"
	"expandergap/internal/separator"
)

// family is a named graph generator used across experiments.
type family struct {
	name string
	gen  func(n int, rng *rand.Rand) *graph.Graph
}

func planarFamilies() []family {
	return []family{
		{"grid", func(n int, _ *rand.Rand) *graph.Graph {
			side := int(math.Sqrt(float64(n)))
			return graph.Grid(side, side)
		}},
		{"trigrid", func(n int, _ *rand.Rand) *graph.Graph {
			side := int(math.Sqrt(float64(n)))
			return graph.TriangulatedGrid(side, side)
		}},
		{"maxplanar", graph.RandomMaximalPlanar},
		{"torus", func(n int, _ *rand.Rand) *graph.Graph {
			side := int(math.Sqrt(float64(n)))
			if side < 3 {
				side = 3
			}
			return graph.Torus(side, side)
		}},
	}
}

// E1Decomposition measures Theorem 2.1/2.6's edge budget: the decomposition
// removes at most ε·|E| edges (and the framework variant at most
// ε·min{|V|,|E|}).
func E1Decomposition(sizes []int, epsList []float64, seed int64) Outcome {
	t := &Table{
		ID:      "E1",
		Title:   "expander decomposition removes ≤ ε·|E| edges (Thm 2.1/2.6)",
		Columns: []string{"family", "n", "m", "eps", "cut-frac", "clusters", "largest", "ok"},
	}
	t.Columns = append(t.Columns, "mode")
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	stressOK := true
	stressSplits, stressTotal := 0, 0
	for _, fam := range planarFamilies() {
		for _, n := range sizes {
			g := fam.gen(n, rng)
			for _, eps := range epsList {
				d, err := expander.Decompose(g, eps, expander.Options{Seed: seed})
				if err != nil {
					panic(fmt.Sprintf("E1: %v", err))
				}
				frac := d.CutFraction(g)
				ok := frac <= eps+1e-9
				allOK = allOK && ok
				t.AddRow(fam.name, g.N(), g.M(), eps, frac, len(d.Clusters), d.LargestCluster(), ok, "worst-case-φ")
			}
			// Stress mode: force φ = 0.08 (above the conductance of large
			// planar pieces) so the decomposer genuinely splits. The
			// charging argument bounds the cut by 2·φ·log₂(2m)·|E|.
			const phiStress = 0.15
			d, err := expander.Decompose(g, 0.999, expander.Options{Seed: seed, Phi: phiStress})
			if err != nil {
				panic(fmt.Sprintf("E1 stress: %v", err))
			}
			frac := d.CutFraction(g)
			bound := 2 * phiStress * math.Log2(2*float64(g.M()))
			ok := frac <= bound
			stressOK = stressOK && ok
			if len(d.Clusters) > 1 {
				stressSplits++
			}
			stressTotal++
			t.AddRow(fam.name, g.N(), g.M(), fmt.Sprintf("φ=%.2f", phiStress), frac,
				len(d.Clusters), d.LargestCluster(), ok, "φ-stress")
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "cut ≤ eps·|E| on every instance", OK: allOK},
			{Name: "φ-stress: cut meets the charging bound 2·φ·log₂(2m)", OK: stressOK},
			{
				Name: "φ-stress: decomposer splits the sparse families",
				OK:   2*stressSplits >= stressTotal,
				Info: fmt.Sprintf("%d/%d split", stressSplits, stressTotal),
			},
		},
	}
}

// E2ClusterConductance verifies the φ side of the contract: every cluster's
// certified conductance is at least the decomposition's φ.
func E2ClusterConductance(sizes []int, eps float64, seed int64) Outcome {
	t := &Table{
		ID:      "E2",
		Title:   "every cluster has conductance ≥ φ (expander decomposition definition)",
		Columns: []string{"family", "n", "phi-target", "min-cluster-Φ", "exact", "ok"},
	}
	t.Columns = append(t.Columns, "mode")
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	exactSeen := false
	for _, fam := range planarFamilies() {
		for _, n := range sizes {
			g := fam.gen(n, rng)
			d, err := expander.Decompose(g, eps, expander.Options{Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("E2: %v", err))
			}
			rep := d.Verify(g, rng)
			ok := rep.ConductanceOK || !rep.Exact
			allOK = allOK && ok && rep.Connected
			t.AddRow(fam.name, g.N(), d.Phi, rep.MinConductance, rep.Exact, ok, "worst-case-φ")

			// Stress mode: φ = 0.08 splits the graph into small clusters,
			// which get exact conductance verification.
			ds, err := expander.Decompose(g, 0.999, expander.Options{Seed: seed, Phi: 0.15})
			if err != nil {
				panic(fmt.Sprintf("E2 stress: %v", err))
			}
			reps := ds.Verify(g, rng)
			exactSeen = exactSeen || reps.Exact
			oks := (reps.ConductanceOK || !reps.Exact) && reps.Connected
			allOK = allOK && oks
			t.AddRow(fam.name, g.N(), ds.Phi, reps.MinConductance, reps.Exact, oks, "φ-stress")
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{
				Name: "exactly-checked clusters meet φ; all clusters connected",
				OK:   allOK,
			},
			{
				Name: "stress mode produced exactly-verified clusters",
				OK:   exactSeen,
			},
		},
	}
}

// E3HighDegree measures Lemma 2.3: in every multi-vertex cluster of a
// minor-free graph, Δ_i ≥ c·φ²·|V_i| for a constant c — the witness
// Δ_i/(φ²·|V_i|) stays bounded away from zero.
func E3HighDegree(sizes []int, eps float64, seed int64) Outcome {
	t := &Table{
		ID:      "E3",
		Title:   "high-degree vertex exists in every cluster (Lemma 2.3)",
		Columns: []string{"family", "n", "phi", "min-witness", "ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	for _, fam := range planarFamilies() {
		for _, n := range sizes {
			g := fam.gen(n, rng)
			d, err := expander.Decompose(g, eps, expander.Options{Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("E3: %v", err))
			}
			minWitness := math.Inf(1)
			for i, c := range d.Clusters {
				if len(c) <= 1 {
					continue
				}
				sub := d.ClusterView(g, i)
				w := separator.HighDegreeWitness(sub, d.Phi)
				if w < minWitness {
					minWitness = w
				}
			}
			if math.IsInf(minWitness, 1) {
				minWitness = 0
			}
			// The lemma's constant: witness must be ≥ 1 (our φ targets are
			// far below real cluster conductances, so the slack is large).
			ok := minWitness >= 1 || minWitness == 0
			allOK = allOK && ok
			t.AddRow(fam.name, g.N(), d.Phi, minWitness, ok)
		}
	}
	return Outcome{
		Table:  t,
		Checks: []Check{{Name: "witness Δ_i/(φ²·|V_i|) ≥ 1 in every cluster", OK: allOK}},
	}
}

// E4WalkRouting measures Lemma 2.4: random-walk routing delivers one token
// per vertex to the cluster leader, with round cost and congestion reported.
func E4WalkRouting(sizes []int, eps float64, seed int64, workers int, obs *congest.Observer) Outcome {
	t := &Table{
		ID:      "E4",
		Title:   "lazy-random-walk routing to v* (Lemma 2.4)",
		Columns: []string{"family", "n", "clusters", "budget", "rounds", "delivered", "undelivered", "max-msg-words"},
	}
	rng := rand.New(rand.NewSource(seed))
	cfg := congest.Config{Seed: seed, Workers: workers, Obs: obs}
	allDelivered := true
	congestOK := true
	for _, fam := range planarFamilies()[:2] { // grid + trigrid keep runtime modest
		for _, n := range sizes {
			g := fam.gen(n, rng)
			d, err := expander.Decompose(g, eps, expander.Options{Seed: seed})
			if err != nil {
				panic(fmt.Sprintf("E4: %v", err))
			}
			b := 2 * g.N()
			leaders, _, err := primitives.ElectLeaders(g, cfg, d.Assignment, minInt(b, g.N()+2))
			if err != nil {
				panic(fmt.Sprintf("E4 leaders: %v", err))
			}
			budget := 0
			for i := range d.Clusters {
				sub := d.ClusterView(g, i)
				if hb := 8*sub.M()*maxInt(sub.Diameter(), 1) + 64; hb > budget {
					budget = hb
				}
			}
			tokens := make([][]routing.Token, g.N())
			for v := range tokens {
				tokens[v] = []routing.Token{{A: int64(v), B: 1}}
			}
			plan := routing.Plan{
				Cluster:       d.Assignment,
				Leader:        leaders.Leader,
				ForwardRounds: budget,
				Strategy:      routing.RandomWalk,
			}
			res, metrics, err := routing.Exchange(g, cfg, plan, tokens, nil)
			if err != nil {
				panic(fmt.Sprintf("E4 exchange: %v", err))
			}
			allDelivered = allDelivered && res.Undelivered == 0
			congestOK = congestOK && metrics.MaxWordsPerMsg <= 8
			t.AddRow(fam.name, g.N(), len(d.Clusters), budget, metrics.Rounds,
				res.Delivered, res.Undelivered, metrics.MaxWordsPerMsg)
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "all tokens delivered within the hitting-time budget", OK: allDelivered},
			{Name: "every message within the CONGEST word budget", OK: congestOK},
		},
	}
}

// E2Distributed compares the distributed (MPX + refine) decomposer against
// the sequential one — the Theorem 2.1 vs 2.2 trade-off surrogate.
func E2Distributed(sizes []int, eps float64, seed int64, obs *congest.Observer) Outcome {
	t := &Table{
		ID:      "E2b",
		Title:   "distributed decomposition (MPX stage as message passing)",
		Columns: []string{"family", "n", "eps", "cut-frac", "mpx-rounds", "connected"},
	}
	rng := rand.New(rand.NewSource(seed))
	allConnected := true
	cutReasonable := true
	for _, fam := range planarFamilies()[:2] {
		for _, n := range sizes {
			g := fam.gen(n, rng)
			d, metrics, err := expander.DistributedDecompose(g, congest.Config{Seed: seed, Obs: obs}, eps)
			if err != nil {
				panic(fmt.Sprintf("E2b: %v", err))
			}
			rep := d.Verify(g, rng)
			allConnected = allConnected && rep.Connected
			cutReasonable = cutReasonable && rep.CutFraction <= 2*eps
			t.AddRow(fam.name, g.N(), eps, rep.CutFraction, metrics.Rounds, rep.Connected)
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "clusters connected", OK: allConnected},
			{Name: "cut fraction within 2× ε (randomized stage)", OK: cutReasonable},
		},
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
