package experiments

import (
	"strings"
	"testing"
)

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		ID:      "EX",
		Title:   "demo",
		Columns: []string{"a", "bb"},
	}
	tab.AddRow(1, 2.34567)
	tab.AddRow("xyz", true)
	tab.Notes = append(tab.Notes, "hello")
	s := tab.String()
	for _, want := range []string{"EX — demo", "a", "bb", "2.346", "xyz", "note: hello"} {
		if !strings.Contains(s, want) {
			t.Errorf("table output missing %q:\n%s", want, s)
		}
	}
}

func TestOutcomeChecks(t *testing.T) {
	o := Outcome{Checks: []Check{{Name: "x", OK: true}, {Name: "y", OK: false, Info: "boom"}}}
	if o.Passed() {
		t.Error("outcome with failing check passed")
	}
	fc := o.FailedChecks()
	if len(fc) != 1 || !strings.Contains(fc[0], "y") {
		t.Errorf("FailedChecks = %v", fc)
	}
}

func TestNamedUnknown(t *testing.T) {
	o := Named("E99", DefaultParams(Small))
	if o.Passed() {
		t.Error("unknown experiment should fail")
	}
}

// The full small-scale suite must pass every shape check: this is the
// repository's end-to-end statement that the paper's qualitative claims
// reproduce.
func TestSuiteSmallScaleAllChecksPass(t *testing.T) {
	if testing.Short() {
		t.Skip("suite takes a few seconds")
	}
	p := DefaultParams(Small)
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			o := Named(id, p)
			if !o.Passed() {
				t.Errorf("%s failed checks: %v\n%s", id, o.FailedChecks(), o.Table)
			}
			if len(o.Table.Rows) == 0 {
				t.Errorf("%s produced no rows", id)
			}
		})
	}
}
