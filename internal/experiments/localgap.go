package experiments

import (
	"fmt"
	"math"
	"sort"

	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// LocalBruteForce is the LOCAL-model reference algorithm the paper's
// framework emulates under CONGEST constraints: build a BFS tree from vertex
// 0, convergecast the entire edge list to the root with unbounded messages,
// solve there, and broadcast per-vertex answers back down as (vertex, value)
// lists. It runs in O(diameter) rounds but its messages carry Θ(m) words —
// exactly the unbounded-message behavior that disqualifies the approach from
// CONGEST.
func LocalBruteForce(g *graph.Graph, cfg congest.Config, solve func(*graph.Graph) []int64) ([]int64, congest.Metrics, error) {
	cfg.Model = congest.LOCAL
	n := g.N()
	if n == 0 {
		return nil, congest.Metrics{}, nil
	}
	dist, parent := g.BFS(0)
	depth := 0
	for _, d := range dist {
		if d > depth {
			depth = d
		}
	}
	childCount := make([]int, n)
	for v := 1; v < n; v++ {
		if parent[v] >= 0 && parent[v] != v {
			childCount[parent[v]]++
		}
	}
	type state struct {
		pending int
		edges   []int64 // flattened (u, v) pairs from the subtree
		sentUp  bool
		value   int64
		hasVal  bool
	}
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		s := &state{pending: childCount[v.ID()]}
		// Own edges: report each edge once (lower endpoint owns it).
		g.ForEachNeighbor(v.ID(), func(u, _ int) {
			if v.ID() < u {
				s.edges = append(s.edges, int64(v.ID()), int64(u))
			}
		})
		return congest.RunFuncs{
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				for _, in := range recv {
					if len(in.Msg) == 0 {
						continue
					}
					switch in.Msg[0] {
					case 1: // upward edge list
						s.pending--
						s.edges = append(s.edges, in.Msg[1:]...)
					case 2: // downward (vertex, value) list
						for i := 1; i+1 < len(in.Msg); i += 2 {
							if int(in.Msg[i]) == v.ID() {
								s.value = in.Msg[i+1]
								s.hasVal = true
							}
						}
						// Forward the whole list to children.
						for p := 0; p < v.Degree(); p++ {
							u := v.NeighborID(p)
							if parent[u] == v.ID() && u != v.ID() {
								v.Send(p, append(congest.Message{2}, in.Msg[1:]...))
							}
						}
					}
				}
				if !s.sentUp && s.pending == 0 {
					s.sentUp = true
					if v.ID() == 0 {
						// Root: rebuild the graph, solve, start broadcast.
						sub := rebuildGraph(n, s.edges, g)
						values := solve(sub)
						payload := congest.Message{2}
						for u, val := range values {
							payload = append(payload, int64(u), val)
						}
						s.value = values[0]
						s.hasVal = true
						for p := 0; p < v.Degree(); p++ {
							u := v.NeighborID(p)
							if parent[u] == 0 && u != 0 {
								v.Send(p, payload.Clone())
							}
						}
					} else if parent[v.ID()] >= 0 {
						p := v.PortOf(parent[v.ID()])
						v.Send(p, append(congest.Message{1}, s.edges...))
					}
				}
				if s.hasVal {
					v.SetOutput(s.value)
					v.Halt()
				}
				if round > 4*(depth+2) && parent[v.ID()] == -1 {
					// Unreachable vertex (disconnected graph): no answer.
					v.SetOutput(int64(0))
					v.Halt()
				}
			},
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	out := make([]int64, n)
	for v := 0; v < n; v++ {
		if res.Outputs[v] != nil {
			out[v] = res.Outputs[v].(int64)
		}
	}
	return out, res.Metrics, nil
}

// rebuildGraph reconstructs the graph from flattened edge pairs, preserving
// weights/signs from the reference graph (the root has gathered the full
// topology, so this mirrors what a LOCAL-model root computes on).
func rebuildGraph(n int, flat []int64, ref *graph.Graph) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i+1 < len(flat); i += 2 {
		u, v := int(flat[i]), int(flat[i+1])
		if b.HasEdge(u, v) {
			continue
		}
		switch {
		case ref.Weighted():
			if idx, ok := ref.EdgeIndex(u, v); ok {
				b.AddWeightedEdge(u, v, ref.Weight(idx))
			}
		case ref.Signed():
			if idx, ok := ref.EdgeIndex(u, v); ok {
				b.AddSignedEdge(u, v, ref.Sign(idx))
			}
		default:
			b.AddEdge(u, v)
		}
	}
	return b.Graph()
}

// E12LocalCongestGap compares the LOCAL brute force against the CONGEST
// framework on MaxIS: solution quality must be comparable (both ≥ 1-ε of the
// optimum) while the LOCAL algorithm's messages blow up with n and the
// framework's stay at O(log n) bits.
func E12LocalCongestGap(sizes []int, eps float64, seed int64) Outcome {
	t := &Table{
		ID:    "E12",
		Title: "LOCAL vs CONGEST: same quality, O(log n)-bit messages (the paper's gap)",
		Columns: []string{"n", "local-IS", "congest-IS", "opt", "local-maxwords",
			"congest-maxwords", "local-rounds", "congest-rounds", "ok"},
	}
	allOK := true
	localWordsGrow := []int{}
	for _, n := range sizes {
		side := int(math.Sqrt(float64(n)))
		g := graph.Grid(side, side)
		localVals, localMetrics, err := LocalBruteForce(g, congest.Config{Seed: seed}, func(full *graph.Graph) []int64 {
			var set []int
			if full.N() <= solvers.MaxISExactLimit {
				set = solvers.MaximumIndependentSet(full)
			} else {
				set = solvers.GreedyIndependentSet(full)
			}
			vals := make([]int64, full.N())
			for _, v := range set {
				vals[v] = 1
			}
			return vals
		})
		if err != nil {
			panic(fmt.Sprintf("E12 local: %v", err))
		}
		localIS := 0
		for _, v := range localVals {
			if v == 1 {
				localIS++
			}
		}
		fw, err := maxis.Approximate(g, maxis.Options{Eps: eps, Cfg: congest.Config{Seed: seed}})
		if err != nil {
			panic(fmt.Sprintf("E12 congest: %v", err))
		}
		var opt int
		optExact := g.N() <= solvers.MaxISExactLimit
		if optExact {
			opt = len(solvers.MaximumIndependentSet(g))
		} else {
			opt = len(solvers.GreedyIndependentSet(g))
		}
		cm := fw.Solution.Metrics
		ok := cm.MaxWordsPerMsg <= 8 && localMetrics.MaxWordsPerMsg > 8
		if optExact {
			ok = ok && float64(len(fw.Set)) >= (1-eps)*float64(opt)
		}
		allOK = allOK && ok
		localWordsGrow = append(localWordsGrow, localMetrics.MaxWordsPerMsg)
		t.AddRow(g.N(), localIS, len(fw.Set), opt, localMetrics.MaxWordsPerMsg,
			cm.MaxWordsPerMsg, localMetrics.Rounds, cm.Rounds, ok)
	}
	grows := sort.IntsAreSorted(localWordsGrow) && len(localWordsGrow) > 1 &&
		localWordsGrow[len(localWordsGrow)-1] > localWordsGrow[0]
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "CONGEST stays within 8 words; LOCAL exceeds; quality ≥ 1-ε", OK: allOK},
			{Name: "LOCAL max message size grows with n", OK: grows,
				Info: fmt.Sprintf("%v", localWordsGrow)},
		},
	}
}
