package experiments

import (
	"fmt"
	"math"

	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
)

// E15RoundScaling measures how the framework's round count scales with n on
// grids — the empirical counterpart of Theorem 2.6's construction/routing
// time. This reproduction's gather step is bounded by the hitting-time cap
// Θ(m·D) = Θ(n^1.5) on grids (the poly-log regime needs the full
// Chang–Saranurak machinery; see EXPERIMENTS.md), so the shape check fits
// the growth exponent of total rounds and requires it to stay below 2.2 —
// well under a quadratic-blowup regression — and requires message sizes to
// stay constant (the CONGEST invariant).
func E15RoundScaling(sizes []int, eps float64, seed int64, workers int, obs *congest.Observer) Outcome {
	t := &Table{
		ID:      "E15",
		Title:   "framework round scaling on grids (Thm 2.6 time bounds, measured)",
		Columns: []string{"n", "rounds", "gather-rounds", "messages", "bits/edge/round", "max-words"},
	}
	type point struct {
		n      float64
		rounds float64
	}
	var pts []point
	maxWordsOK := true
	for _, n := range sizes {
		side := int(math.Sqrt(float64(n)))
		g := graph.Grid(side, side)
		sol, err := core.Run(g, core.Options{
			Eps: eps,
			Cfg: congest.Config{Seed: seed, Workers: workers, Obs: obs},
		}, func(cluster *graph.Graph, toOld []int) map[int]int64 {
			out := make(map[int]int64)
			for _, v := range toOld {
				out[v] = 1
			}
			return out
		})
		if err != nil {
			panic(fmt.Sprintf("E15: %v", err))
		}
		m := sol.Metrics
		bitsPerEdgeRound := float64(m.TotalBits(g.N())) / float64(g.M()) / float64(m.Rounds)
		maxWordsOK = maxWordsOK && m.MaxWordsPerMsg <= 8
		pts = append(pts, point{n: float64(g.N()), rounds: float64(m.Rounds)})
		t.AddRow(g.N(), m.Rounds, sol.Phases["gather-solve-disseminate"], m.Messages,
			bitsPerEdgeRound, m.MaxWordsPerMsg)
	}
	// Least-squares fit of log rounds = a + b·log n.
	var sx, sy, sxx, sxy float64
	for _, p := range pts {
		x, y := math.Log(p.n), math.Log(p.rounds)
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	k := float64(len(pts))
	exponent := (k*sxy - sx*sy) / (k*sxx - sx*sx)
	t.Notes = append(t.Notes, fmt.Sprintf("fitted growth exponent: rounds ~ n^%.2f", exponent))
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "round growth exponent ≤ 2.2 (hitting-time regime, not quadratic blowup)",
				OK: exponent <= 2.2, Info: fmt.Sprintf("%.2f", exponent)},
			{Name: "message sizes constant (≤ 8 words) at every n", OK: maxWordsOK},
		},
	}
}
