package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"expandergap/internal/conductance"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

// E13MixingTime measures the §2 preliminaries relation the routing analysis
// rests on: Θ(1/Φ) ≤ τ_mix ≤ Θ(log|V| / Φ²). Both inequalities are checked
// with explicit constants on families spanning good and bad expanders.
func E13MixingTime(seed int64) Outcome {
	t := &Table{
		ID:      "E13",
		Title:   "mixing time vs conductance: Θ(1/Φ) ≤ τ_mix ≤ Θ(log n/Φ²) (§2)",
		Columns: []string{"graph", "n", "Φ", "τ_mix", "τ·Φ", "τ·Φ²/ln n"},
	}
	rng := rand.New(rand.NewSource(seed))
	instances := []struct {
		name string
		g    *graph.Graph
	}{
		{"K8", graph.Complete(8)},
		{"K16", graph.Complete(16)},
		{"C12", graph.Cycle(12)},
		{"C20", graph.Cycle(20)},
		{"Q3", graph.Hypercube(3)},
		{"Q4", graph.Hypercube(4)},
		{"grid4x4", graph.Grid(4, 4)},
		{"barbell", barbellGraph(6)},
		{"planar20", graph.RandomMaximalPlanar(20, rng)},
	}
	lowerOK := true
	upperOK := true
	for _, inst := range instances {
		phi := conductance.ExactConductance(inst.g)
		tau, converged := conductance.MixingTime(inst.g, 100000)
		if !converged {
			panic(fmt.Sprintf("E13: %s did not mix", inst.name))
		}
		n := float64(inst.g.N())
		lower := float64(tau) * phi                     // must be ≥ some constant c₁
		upper := float64(tau) * phi * phi / math.Log(n) // must be ≤ some constant c₂
		// Constants: the standard proofs give c₁ ≥ ~1/4 and c₂ ≤ ~40 for
		// the τ_mix definition used in the paper (additive π(u)/n error).
		if lower < 0.25 {
			lowerOK = false
		}
		if upper > 40 {
			upperOK = false
		}
		t.AddRow(inst.name, inst.g.N(), phi, tau, lower, upper)
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "τ_mix ≥ c/Φ with c ≥ 1/4 on every instance", OK: lowerOK},
			{Name: "τ_mix ≤ C·log n/Φ² with C ≤ 40 on every instance", OK: upperOK},
		},
	}
}

func barbellGraph(k int) *graph.Graph {
	b := graph.NewBuilder(2 * k)
	for i := 0; i < k; i++ {
		for j := i + 1; j < k; j++ {
			b.AddEdge(i, j)
			b.AddEdge(k+i, k+j)
		}
	}
	b.AddEdge(k-1, k)
	return b.Graph()
}

// E14HypercubeTightness measures the paper's §2 tightness remark: after
// removing any constant fraction of a hypercube's edges, some remaining
// component has conductance O(1/log n) — so decomposing Q_d with a constant
// φ must shatter it (huge cut fraction), while planar graphs decompose
// cleanly at the same φ.
func E14HypercubeTightness(seed int64) Outcome {
	t := &Table{
		ID:      "E14",
		Title:   "hypercubes need φ = O(1/log n): constant-φ decomposition shatters Q_d (§2 remark)",
		Columns: []string{"graph", "n", "phi", "cut-frac", "clusters", "largest"},
	}
	const phiConst = 0.3
	shatter := []float64{}
	scaledWhole := true
	for _, d := range []int{4, 5, 6} {
		g := graph.Hypercube(d)
		// Constant φ: must shatter harder as d grows (Φ(Q_d) = 1/d).
		dec, err := expander.Decompose(g, 0.999, expander.Options{Seed: seed, Phi: phiConst})
		if err != nil {
			panic(fmt.Sprintf("E14: %v", err))
		}
		frac := dec.CutFraction(g)
		shatter = append(shatter, frac)
		t.AddRow(fmt.Sprintf("Q%d", d), g.N(), phiConst, frac, len(dec.Clusters), dec.LargestCluster())

		// Scaled φ = 0.9/d = Θ(1/log n): the whole hypercube qualifies as
		// one expander cluster — exactly the φ = Ω(ε/log n) trade-off the
		// paper calls tight.
		phiScaled := 0.9 / float64(d)
		decS, err := expander.Decompose(g, 0.999, expander.Options{Seed: seed, Phi: phiScaled})
		if err != nil {
			panic(fmt.Sprintf("E14 scaled: %v", err))
		}
		if len(decS.Clusters) != 1 || len(decS.Removed) != 0 {
			scaledWhole = false
		}
		t.AddRow(fmt.Sprintf("Q%d", d), g.N(), fmt.Sprintf("0.9/%d", d),
			decS.CutFraction(g), len(decS.Clusters), decS.LargestCluster())
	}
	grows := shatter[len(shatter)-1] > shatter[0]
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "constant φ: hypercube shattering grows with dimension", OK: grows,
				Info: fmt.Sprintf("%v", shatter)},
			{Name: "φ = Θ(1/log n): every hypercube survives as one cluster", OK: scaledWhole},
		},
	}
}
