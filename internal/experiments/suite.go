package experiments

import "expandergap/internal/congest"

// Scale selects experiment sizes: Small for tests, Full for the recorded
// EXPERIMENTS.md tables.
type Scale int

const (
	// Small keeps every experiment under a second or two.
	Small Scale = iota + 1
	// Full is the EXPERIMENTS.md configuration.
	Full
)

// Params bundles per-experiment size configuration.
type Params struct {
	DecompSizes []int
	AppSizes    []int
	GapSizes    []int
	EpsList     []float64
	Eps         float64
	Weights     []int64
	Seed        int64
	// Workers is passed to congest.Config for the simulator-heavy
	// experiments (E4 walk routing, E15 round scaling). 0 = sequential.
	// Results are identical for any value; only wall-clock changes.
	Workers int
	// Obs, when non-nil, receives the phase-attributed accounting of the
	// experiments that route it into their congest.Config (E2b, E4, E10,
	// E15). Like Workers, it never changes results.
	Obs *congest.Observer
}

// DefaultParams returns the parameters for a scale.
func DefaultParams(s Scale) Params {
	switch s {
	case Full:
		return Params{
			DecompSizes: []int{64, 144, 256},
			AppSizes:    []int{36, 64, 100},
			GapSizes:    []int{16, 36, 64, 144},
			EpsList:     []float64{0.1, 0.2, 0.4},
			Eps:         0.25,
			Weights:     []int64{10, 100, 1000},
			Seed:        2022,
		}
	default:
		return Params{
			DecompSizes: []int{36, 64},
			AppSizes:    []int{36, 49},
			GapSizes:    []int{16, 36},
			EpsList:     []float64{0.2, 0.4},
			Eps:         0.25,
			Weights:     []int64{10, 100},
			Seed:        2022,
		}
	}
}

// Named runs one experiment by ID with the given parameters. Unknown IDs
// return a zero Outcome with a failing check.
func Named(id string, p Params) Outcome {
	switch id {
	case "E1":
		return E1Decomposition(p.DecompSizes, p.EpsList, p.Seed)
	case "E2":
		return E2ClusterConductance(p.DecompSizes, p.Eps, p.Seed)
	case "E2b":
		return E2Distributed(p.DecompSizes, 0.4, p.Seed, p.Obs)
	case "E3":
		return E3HighDegree(p.DecompSizes, p.Eps, p.Seed)
	case "E4":
		return E4WalkRouting(p.DecompSizes, p.Eps, p.Seed, p.Workers, p.Obs)
	case "E5":
		return E5MaxIS(p.AppSizes, p.EpsList, p.Seed)
	case "E6":
		return E6PlanarMCM(p.AppSizes, p.Eps, p.Seed)
	case "E7":
		return E7MWM(p.AppSizes, p.Weights, 0.3, p.Seed)
	case "E8":
		return E8CorrClust(p.AppSizes, 0.3, p.Seed)
	case "E9":
		return E9PropertyTesting(p.AppSizes, 0.1, p.Seed)
	case "E10":
		return E10LDD(p.DecompSizes, p.EpsList, p.Seed, p.Obs)
	case "E11":
		return E11Separators(p.DecompSizes, p.Seed)
	case "E12":
		return E12LocalCongestGap(p.GapSizes, 0.2, p.Seed)
	case "E13":
		return E13MixingTime(p.Seed)
	case "E14":
		return E14HypercubeTightness(p.Seed)
	case "E15":
		return E15RoundScaling(p.GapSizes, 0.3, p.Seed, p.Workers, p.Obs)
	case "E16":
		return E16DecomposerComparison(p.AppSizes, 0.4, p.Seed)
	default:
		return Outcome{
			Table:  &Table{ID: id, Title: "unknown experiment"},
			Checks: []Check{{Name: "experiment exists", OK: false, Info: id}},
		}
	}
}

// IDs lists all experiment identifiers in order.
func IDs() []string {
	return []string{"E1", "E2", "E2b", "E3", "E4", "E5", "E6", "E7", "E8", "E9", "E10", "E11", "E12", "E13", "E14", "E15", "E16"}
}

// All runs the complete suite.
func All(p Params) []Outcome {
	out := make([]Outcome, 0, len(IDs()))
	for _, id := range IDs() {
		out = append(out, Named(id, p))
	}
	return out
}
