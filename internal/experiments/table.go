// Package experiments implements the derived evaluation suite E1–E12
// described in DESIGN.md and EXPERIMENTS.md: one measurable experiment per
// theorem/lemma of the paper. Each experiment returns a Table that
// cmd/experiments prints and the root benchmarks re-emit as testing.B
// metrics; EXPERIMENTS.md records reference output.
package experiments

import (
	"fmt"
	"strings"
)

// Table is a printable experiment result.
type Table struct {
	// ID is the experiment identifier (e.g. "E1").
	ID string
	// Title describes the paper claim being measured.
	Title string
	// Columns are the column headers.
	Columns []string
	// Rows hold formatted cells.
	Rows [][]string
	// Notes carries shape observations appended after the table.
	Notes []string
}

// AddRow appends a row, formatting each cell with %v (floats with 4
// significant digits).
func (t *Table) AddRow(cells ...any) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.4g", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.Rows = append(t.Rows, row)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteByte('\n')
	}
	writeRow(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(&sb, "note: %s\n", n)
	}
	return sb.String()
}

// Check is a named pass/fail assertion attached to an experiment, used by
// the harness to report whether the paper's qualitative "shape" holds.
type Check struct {
	Name string
	OK   bool
	Info string
}

// Outcome bundles an experiment's table and shape checks.
type Outcome struct {
	Table  *Table
	Checks []Check
}

// Passed reports whether all checks hold.
func (o Outcome) Passed() bool {
	for _, c := range o.Checks {
		if !c.OK {
			return false
		}
	}
	return true
}

// FailedChecks lists the names of failing checks.
func (o Outcome) FailedChecks() []string {
	var out []string
	for _, c := range o.Checks {
		if !c.OK {
			out = append(out, fmt.Sprintf("%s (%s)", c.Name, c.Info))
		}
	}
	return out
}
