package experiments

import (
	"fmt"
	"math"
	"math/rand"

	"expandergap/internal/apps/ldd"
	"expandergap/internal/apps/proptest"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
	"expandergap/internal/separator"
)

// E9PropertyTesting measures Theorem 1.4: one-sided-error distributed
// planarity testing — planar inputs always fully accept, certifiably far
// inputs produce at least one rejection.
func E9PropertyTesting(sizes []int, eps float64, seed int64) Outcome {
	t := &Table{
		ID:      "E9",
		Title:   "distributed property testing of planarity (Thm 1.4)",
		Columns: []string{"instance", "n", "planar", "all-accept", "rejecting", "ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	oneSided := true
	farCaught := true
	for _, n := range sizes {
		planarG := graph.RandomMaximalPlanar(n, rng)
		k := maxInt(n/20, 2)
		farG := proptest.PlantCliques(graph.Grid(4, maxInt(n/8, 4)), 5, k)
		instances := []struct {
			name   string
			g      *graph.Graph
			planar bool
		}{
			{"maxplanar", planarG, true},
			{"grid+K5s", farG, false},
		}
		for _, inst := range instances {
			v, err := proptest.Test(inst.g, minor.Planarity(), proptest.Options{Eps: eps, Cfg: congest.Config{Seed: seed}})
			if err != nil {
				panic(fmt.Sprintf("E9: %v", err))
			}
			rejecting := 0
			for _, a := range v.Accepts {
				if !a {
					rejecting++
				}
			}
			var ok bool
			if inst.planar {
				ok = v.AllAccept
				oneSided = oneSided && ok
			} else {
				ok = !v.AllAccept
				farCaught = farCaught && ok
			}
			t.AddRow(inst.name, inst.g.N(), inst.planar, v.AllAccept, rejecting, ok)
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "planar inputs: every vertex accepts (one-sided error)", OK: oneSided},
			{Name: "far inputs: at least one vertex rejects", OK: farCaught},
		},
	}
}

// E10LDD measures Theorem 1.5: the framework low-diameter decomposition has
// D·ε bounded by a constant while the MPX baseline's D·ε grows with log n.
func E10LDD(sizes []int, epsList []float64, seed int64, obs *congest.Observer) Outcome {
	t := &Table{
		ID:      "E10",
		Title:   "low-diameter decomposition with D = O(1/ε) (Thm 1.5)",
		Columns: []string{"n", "eps", "weights", "fw-D", "fw-D·eps", "fw-cut", "fw-wcut", "mpx-D", "mpx-D·eps", "ok"},
	}
	rng := rand.New(rand.NewSource(seed))
	allOK := true
	weightedOK := true
	for _, n := range sizes {
		side := int(math.Sqrt(float64(n)))
		base := graph.Grid(side, side)
		for _, eps := range epsList {
			for _, weighted := range []bool{false, true} {
				g := base
				label := "unit"
				if weighted {
					g = graph.WithRandomWeights(base, 50, rng)
					label = "[1,50]"
				}
				fw, err := ldd.Decompose(g, ldd.Options{Eps: eps, Cfg: congest.Config{Seed: seed, Obs: obs}})
				if err != nil {
					panic(fmt.Sprintf("E10: %v", err))
				}
				mpx, _, err := ldd.Baseline(g, eps, congest.Config{Seed: seed, Obs: obs})
				if err != nil {
					panic(fmt.Sprintf("E10 baseline: %v", err))
				}
				fwProduct := float64(fw.MaxDiameter) * eps
				mpxProduct := float64(mpx.MaxDiameter) * eps
				// Shape check: the framework's D·ε stays below a fixed
				// constant (16 covers the KPR constant at these sizes), and
				// the weighted cut tracks the unweighted one (random-offset
				// chopping is weight-oblivious).
				ok := fwProduct <= 16
				if weighted && fw.CutFraction > 0 {
					ratio := fw.CutWeightFraction / fw.CutFraction
					weightedOK = weightedOK && ratio < 3 && ratio > 1.0/3
				}
				allOK = allOK && ok
				t.AddRow(g.N(), eps, label, fw.MaxDiameter, fwProduct, fw.CutFraction,
					fw.CutWeightFraction, mpx.MaxDiameter, mpxProduct, ok)
			}
		}
	}
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: "framework D·ε bounded by a constant", OK: allOK},
			{Name: "weighted cut fraction tracks unweighted (weight-oblivious chop)", OK: weightedOK},
		},
	}
}

// E11Separators measures Theorem 1.6: balanced edge separators of size
// O(√(Δn)) on minor-free families, with cliques as the growing-ratio
// control.
func E11Separators(sizes []int, seed int64) Outcome {
	t := &Table{
		ID:      "E11",
		Title:   "edge separators of size O(√(Δn)) on minor-free graphs (Thm 1.6)",
		Columns: []string{"family", "n", "cut", "sqrt(Δn)", "quality", "balanced"},
	}
	rng := rand.New(rand.NewSource(seed))
	const bound = 3.0
	allOK := true
	for _, fam := range planarFamilies() {
		for _, n := range sizes {
			g := fam.gen(n, rng)
			sep := separator.Best(g, rng)
			q := sep.Quality(g)
			allOK = allOK && q <= bound && sep.Balanced(g.N())
			t.AddRow(fam.name, g.N(), sep.CutSize,
				math.Sqrt(float64(g.MaxDegree())*float64(g.N())), q, sep.Balanced(g.N()))
		}
	}
	// Clique control: quality must grow.
	qSmall := separator.Best(graph.Complete(12), rng).Quality(graph.Complete(12))
	qLarge := separator.Best(graph.Complete(36), rng).Quality(graph.Complete(36))
	t.AddRow("K12(control)", 12, "-", "-", qSmall, true)
	t.AddRow("K36(control)", 36, "-", "-", qLarge, true)
	return Outcome{
		Table: t,
		Checks: []Check{
			{Name: fmt.Sprintf("minor-free quality ≤ %v and balanced", bound), OK: allOK},
			{Name: "clique control quality grows with n", OK: qLarge > qSmall,
				Info: fmt.Sprintf("%.3g -> %.3g", qSmall, qLarge)},
		},
	}
}
