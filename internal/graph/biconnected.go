package graph

// BiconnectedComponents returns the biconnected components of g as slices of
// edge indices, computed with Hopcroft–Tarjan lowpoint DFS (iterative, so
// deep planar graphs do not overflow the stack). Bridges form their own
// single-edge components. Isolated vertices contribute no component.
//
// Planarity testing reduces to testing each biconnected component, which is
// why this lives in the graph package rather than internal/minor.
func (g *Graph) BiconnectedComponents() [][]int {
	n := g.n
	disc := make([]int, n)
	low := make([]int, n)
	for i := range disc {
		disc[i] = -1
	}
	var comps [][]int
	var edgeStack []int
	timer := 0

	type frame struct {
		v, parentEdge int
		childIdx      int
	}
	var stack []frame

	popComponent := func(untilEdge int) {
		var comp []int
		for len(edgeStack) > 0 {
			e := edgeStack[len(edgeStack)-1]
			edgeStack = edgeStack[:len(edgeStack)-1]
			comp = append(comp, e)
			if e == untilEdge {
				break
			}
		}
		if len(comp) > 0 {
			comps = append(comps, comp)
		}
	}

	for root := 0; root < n; root++ {
		if disc[root] != -1 {
			continue
		}
		disc[root] = timer
		low[root] = timer
		timer++
		stack = append(stack[:0], frame{v: root, parentEdge: -1})
		for len(stack) > 0 {
			f := &stack[len(stack)-1]
			v := f.v
			if f.childIdx < g.Degree(v) {
				u, idx := g.arc(v, f.childIdx)
				f.childIdx++
				if idx == f.parentEdge {
					continue
				}
				if disc[u] == -1 {
					edgeStack = append(edgeStack, idx)
					disc[u] = timer
					low[u] = timer
					timer++
					stack = append(stack, frame{v: u, parentEdge: idx})
				} else if disc[u] < disc[v] {
					// Back edge.
					edgeStack = append(edgeStack, idx)
					if disc[u] < low[v] {
						low[v] = disc[u]
					}
				}
			} else {
				stack = stack[:len(stack)-1]
				if len(stack) > 0 {
					p := &stack[len(stack)-1]
					if low[v] < low[p.v] {
						low[p.v] = low[v]
					}
					if low[v] >= disc[p.v] {
						// p.v is an articulation point (or root); pop the
						// component ending at the tree edge into v.
						popComponent(f.parentEdge)
					}
				}
			}
		}
	}
	return comps
}

// ArticulationPoints returns the cut vertices of g in ascending order.
func (g *Graph) ArticulationPoints() []int {
	comps := g.BiconnectedComponents()
	// A vertex is an articulation point iff it belongs to >= 2 biconnected
	// components.
	count := make(map[int]int)
	for _, comp := range comps {
		seen := make(map[int]bool)
		for _, ei := range comp {
			e := g.edges[ei]
			seen[e.U] = true
			seen[e.V] = true
		}
		for v := range seen {
			count[v]++
		}
	}
	var pts []int
	for v := 0; v < g.n; v++ {
		if count[v] >= 2 {
			pts = append(pts, v)
		}
	}
	return pts
}

// Bridges returns the indices of bridge edges (edges whose removal
// disconnects their component) in ascending order.
func (g *Graph) Bridges() []int {
	var bridges []int
	for _, comp := range g.BiconnectedComponents() {
		if len(comp) == 1 {
			bridges = append(bridges, comp[0])
		}
	}
	sortInts(bridges)
	return bridges
}
