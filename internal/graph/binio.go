package graph

import (
	"encoding/binary"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"os"
	"unsafe"
)

// Binary on-disk CSR format, version 1.
//
// The file stores the exact arrays a Graph holds in memory — adjOff, adjTo,
// adjIdx, edges, and the optional weight/sign annotations — little-endian,
// each section 8-byte aligned, behind a 64-byte header:
//
//	offset  size  field
//	0       8     magic "EXPGRCSR"
//	8       4     version (uint32, = 1)
//	12      4     flags   (uint32: bit 0 weighted, bit 1 signed)
//	16      8     n       (uint64 vertex count)
//	24      8     m       (uint64 edge count)
//	32      4     maxDeg  (uint32, cached build-time stat)
//	36      4     minDeg  (uint32)
//	40      8     maxW    (int64)
//	48      8     totalW  (int64)
//	56      4     crc32c  (Castagnoli, over header[0:56] + payload)
//	60      4     reserved (0)
//	64      ...   payload: adjOff (n+1)*4 · pad · adjTo 8m · adjIdx 8m ·
//	              edges m*16 (U,V as int64 pairs) · [weights m*8] · [signs m]
//
// ReadBinary verifies the checksum (one streaming pass, ~GB/s); OpenMapped
// skips it so that opening is O(1) in the edge count, and validates the
// header's structural invariants only — see the mmap aliasing contract in
// DESIGN.md §3.13.
const (
	binMagic      = "EXPGRCSR"
	binVersion    = 1
	binHeaderSize = 64

	binFlagWeighted = 1 << 0
	binFlagSigned   = 1 << 1
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// hostLE reports whether this machine is little-endian; the zero-copy
// encode/decode fast paths and mmap aliasing require it.
var hostLE = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// hostInt64 reports whether int is 64 bits wide, which the []Edge byte
// aliasing relies on (Edge is a pair of ints stored on disk as int64 pairs).
const hostInt64 = math.MaxInt == math.MaxInt64

// canAliasEdges reports whether []Edge memory layout matches the on-disk
// edge section byte-for-byte.
const edgeBytes = 16

func canAlias() bool { return hostLE && hostInt64 }

// MapIsZeroCopy reports whether OpenMapped actually memory-maps on this
// host (platform mmap support plus an aliasable memory layout), as opposed
// to transparently falling back to a full-copy read. Benchmarks use it to
// decide whether zero-copy expectations (O(1) open, no per-edge heap) apply.
func MapIsZeroCopy() bool { return mmapSupported && canAlias() }

// binLayout holds the byte offsets of every payload section for a given
// header shape. Offsets are absolute (from the start of the file).
type binLayout struct {
	n, m             int
	weighted, signed bool
	offAdjOff        int64
	offAdjTo         int64
	offAdjIdx        int64
	offEdges         int64
	offWeights       int64
	offSigns         int64
	total            int64
}

func pad8(x int64) int64 { return (x + 7) &^ 7 }

func layoutFor(n, m int, weighted, signed bool) binLayout {
	l := binLayout{n: n, m: m, weighted: weighted, signed: signed}
	cur := int64(binHeaderSize)
	l.offAdjOff = cur
	cur = pad8(cur + int64(n+1)*4)
	l.offAdjTo = cur
	cur += int64(m) * 8 // 2m half-edges * 4 bytes
	l.offAdjIdx = cur
	cur += int64(m) * 8
	l.offEdges = cur
	cur += int64(m) * edgeBytes
	if weighted {
		l.offWeights = cur
		cur += int64(m) * 8
	}
	if signed {
		l.offSigns = cur
		cur += int64(m)
	}
	l.total = cur
	return l
}

// binHeader is the decoded fixed-size header.
type binHeader struct {
	flags          uint32
	n, m           int
	maxDeg, minDeg int
	maxW, totalW   int64
	crc            uint32
}

func (h binHeader) weighted() bool { return h.flags&binFlagWeighted != 0 }
func (h binHeader) signed() bool   { return h.flags&binFlagSigned != 0 }

// encodeHeader renders the 64-byte header. The crc field is written as
// given; pass 0 while computing the checksum of bytes [0:56].
func encodeHeader(h binHeader) [binHeaderSize]byte {
	var b [binHeaderSize]byte
	copy(b[0:8], binMagic)
	binary.LittleEndian.PutUint32(b[8:12], binVersion)
	binary.LittleEndian.PutUint32(b[12:16], h.flags)
	binary.LittleEndian.PutUint64(b[16:24], uint64(h.n))
	binary.LittleEndian.PutUint64(b[24:32], uint64(h.m))
	binary.LittleEndian.PutUint32(b[32:36], uint32(h.maxDeg))
	binary.LittleEndian.PutUint32(b[36:40], uint32(h.minDeg))
	binary.LittleEndian.PutUint64(b[40:48], uint64(h.maxW))
	binary.LittleEndian.PutUint64(b[48:56], uint64(h.totalW))
	binary.LittleEndian.PutUint32(b[56:60], h.crc)
	return b
}

// decodeHeader parses and sanity-checks the 64-byte header.
func decodeHeader(b []byte) (binHeader, error) {
	var h binHeader
	if len(b) < binHeaderSize {
		return h, fmt.Errorf("graph: binary header truncated (%d bytes, want %d)", len(b), binHeaderSize)
	}
	if string(b[0:8]) != binMagic {
		return h, fmt.Errorf("graph: bad magic %q (not a binary CSR graph file)", b[0:8])
	}
	if v := binary.LittleEndian.Uint32(b[8:12]); v != binVersion {
		return h, fmt.Errorf("graph: unsupported binary format version %d (want %d)", v, binVersion)
	}
	h.flags = binary.LittleEndian.Uint32(b[12:16])
	if h.flags&^uint32(binFlagWeighted|binFlagSigned) != 0 {
		return h, fmt.Errorf("graph: unknown header flags %#x", h.flags)
	}
	n := binary.LittleEndian.Uint64(b[16:24])
	m := binary.LittleEndian.Uint64(b[24:32])
	if n > math.MaxInt32 {
		return h, fmt.Errorf("graph: vertex count %d outside the CSR int32 index range", n)
	}
	if m > math.MaxInt32/2 {
		return h, fmt.Errorf("graph: edge count %d outside the CSR int32 index range", m)
	}
	h.n, h.m = int(n), int(m)
	h.maxDeg = int(binary.LittleEndian.Uint32(b[32:36]))
	h.minDeg = int(binary.LittleEndian.Uint32(b[36:40]))
	h.maxW = int64(binary.LittleEndian.Uint64(b[40:48]))
	h.totalW = int64(binary.LittleEndian.Uint64(b[48:56]))
	h.crc = binary.LittleEndian.Uint32(b[56:60])
	if h.maxDeg > h.n || h.minDeg > h.n || h.maxDeg < h.minDeg {
		return h, fmt.Errorf("graph: corrupt header degree stats (max %d, min %d, n %d)", h.maxDeg, h.minDeg, h.n)
	}
	if reserved := binary.LittleEndian.Uint32(b[60:64]); reserved != 0 {
		return h, fmt.Errorf("graph: non-zero reserved header field %#x", reserved)
	}
	return h, nil
}

// int32sBytes returns the raw little-endian byte view of s on LE hosts, or
// nil when a portable encode/decode loop must be used instead.
func int32sBytes(s []int32) []byte {
	if !hostLE || len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*4)
}

func int64sBytes(s []int64) []byte {
	if !hostLE || len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*8)
}

func edgesBytes(s []Edge) []byte {
	if !canAlias() || len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s)*edgeBytes)
}

func int8sBytes(s []int8) []byte {
	if len(s) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&s[0])), len(s))
}

// binWriter couples the buffered output stream with an optional running
// checksum (nil crc skips it: the checksum pre-pass already covered the
// payload by the time the real write happens).
type binWriter struct {
	fw  *flushWriter
	crc hash.Hash32
	tmp []byte
}

func (bw *binWriter) raw(p []byte) error {
	if bw.crc != nil {
		bw.crc.Write(p)
	}
	_, err := bw.fw.Write(p)
	return err
}

func (bw *binWriter) int32s(s []int32) error {
	if b := int32sBytes(s); b != nil || len(s) == 0 {
		return bw.raw(b)
	}
	for _, v := range s { // big-endian fallback
		binary.LittleEndian.PutUint32(bw.tmp[:4], uint32(v))
		if err := bw.raw(bw.tmp[:4]); err != nil {
			return err
		}
	}
	return nil
}

func (bw *binWriter) int64s(s []int64) error {
	if b := int64sBytes(s); b != nil || len(s) == 0 {
		return bw.raw(b)
	}
	for _, v := range s {
		binary.LittleEndian.PutUint64(bw.tmp[:8], uint64(v))
		if err := bw.raw(bw.tmp[:8]); err != nil {
			return err
		}
	}
	return nil
}

func (bw *binWriter) edges(s []Edge) error {
	if b := edgesBytes(s); b != nil || len(s) == 0 {
		return bw.raw(b)
	}
	for _, e := range s {
		binary.LittleEndian.PutUint64(bw.tmp[:8], uint64(int64(e.U)))
		binary.LittleEndian.PutUint64(bw.tmp[8:16], uint64(int64(e.V)))
		if err := bw.raw(bw.tmp[:16]); err != nil {
			return err
		}
	}
	return nil
}

// WriteBinary writes g in the binary CSR format. The output is a pure
// function of the graph (deterministic), and ReadBinary/OpenMapped recover a
// Graph bit-identical to g — same arrays, same edge indices, same cached
// statistics.
func WriteBinary(w io.Writer, g *Graph) error {
	hdr := binHeader{
		n:      g.n,
		m:      len(g.edges),
		maxDeg: g.maxDeg,
		minDeg: g.minDeg,
		maxW:   g.maxW,
		totalW: g.totalW,
	}
	if g.weight != nil {
		hdr.flags |= binFlagWeighted
	}
	if g.sign != nil {
		hdr.flags |= binFlagSigned
	}
	lay := layoutFor(hdr.n, hdr.m, g.weight != nil, g.sign != nil)

	// The checksum covers header[0:56] and the payload, so it has to be
	// computed before the header can be emitted. Payload sections are
	// in-memory arrays, so the extra pass is pure CRC arithmetic.
	crc := crc32.New(castagnoli)
	head := encodeHeader(hdr)
	crc.Write(head[:56])
	sink := &binWriter{fw: &flushWriter{w: io.Discard, buf: make([]byte, 0, 1)}, crc: crc, tmp: make([]byte, 16)}
	if err := writeSections(sink, g, lay); err != nil {
		return err
	}
	hdr.crc = crc.Sum32()

	fw := newFlushWriter(w)
	head = encodeHeader(hdr)
	if _, err := fw.Write(head[:]); err != nil {
		return err
	}
	out := &binWriter{fw: fw, tmp: make([]byte, 16)}
	if err := writeSections(out, g, lay); err != nil {
		return err
	}
	return fw.Flush()
}

var zeroPad [8]byte

// writeSections emits the payload sections with their alignment padding.
func writeSections(bw *binWriter, g *Graph, lay binLayout) error {
	if err := bw.int32s(g.adjOff); err != nil {
		return err
	}
	if pad := lay.offAdjTo - (lay.offAdjOff + int64(len(g.adjOff))*4); pad > 0 {
		if err := bw.raw(zeroPad[:pad]); err != nil {
			return err
		}
	}
	if err := bw.int32s(g.adjTo); err != nil {
		return err
	}
	if err := bw.int32s(g.adjIdx); err != nil {
		return err
	}
	if err := bw.edges(g.edges); err != nil {
		return err
	}
	if g.weight != nil {
		if err := bw.int64s(g.weight); err != nil {
			return err
		}
	}
	if g.sign != nil {
		if err := bw.raw(int8sBytes(g.sign)); err != nil {
			return err
		}
	}
	return nil
}

// binReader couples the input stream with the running checksum.
type binReader struct {
	r   io.Reader
	crc hash.Hash32
	tmp []byte
}

func (br *binReader) raw(p []byte) error {
	if len(p) == 0 {
		return nil
	}
	if _, err := io.ReadFull(br.r, p); err != nil {
		return fmt.Errorf("graph: binary file truncated: %w", err)
	}
	br.crc.Write(p)
	return nil
}

// sectionChunk bounds how many elements a section reader allocates ahead of
// the bytes backing them: a corrupt header claiming billions of elements then
// fails at the first missing byte instead of exhausting memory up front.
// Sections larger than one chunk grow by capacity doubling, so honest large
// files still load with O(1) reallocations per doubling, amortized O(n).
const sectionChunk = 1 << 22

// readSection reads count elements via chunked allocation. fill decodes
// len(dst) elements from the stream into dst.
func readSection[T any](count int, fill func(dst []T) error) ([]T, error) {
	s := make([]T, 0, min(count, sectionChunk))
	for len(s) < count {
		k := min(count-len(s), sectionChunk)
		if cap(s)-len(s) < k {
			grown := make([]T, len(s), min(count, 2*cap(s)+k))
			copy(grown, s)
			s = grown
		}
		tail := s[len(s) : len(s)+k]
		if err := fill(tail); err != nil {
			return nil, err
		}
		s = s[:len(s)+k]
	}
	return s, nil
}

func (br *binReader) int32s(count int) ([]int32, error) {
	return readSection(count, func(dst []int32) error {
		if b := int32sBytes(dst); b != nil {
			return br.raw(b)
		}
		for i := range dst {
			if err := br.raw(br.tmp[:4]); err != nil {
				return err
			}
			dst[i] = int32(binary.LittleEndian.Uint32(br.tmp[:4]))
		}
		return nil
	})
}

func (br *binReader) int64s(count int) ([]int64, error) {
	return readSection(count, func(dst []int64) error {
		if b := int64sBytes(dst); b != nil {
			return br.raw(b)
		}
		for i := range dst {
			if err := br.raw(br.tmp[:8]); err != nil {
				return err
			}
			dst[i] = int64(binary.LittleEndian.Uint64(br.tmp[:8]))
		}
		return nil
	})
}

func (br *binReader) edgeSlice(count int) ([]Edge, error) {
	return readSection(count, func(dst []Edge) error {
		if b := edgesBytes(dst); b != nil {
			return br.raw(b)
		}
		for i := range dst {
			if err := br.raw(br.tmp[:16]); err != nil {
				return err
			}
			dst[i] = Edge{
				U: int(int64(binary.LittleEndian.Uint64(br.tmp[:8]))),
				V: int(int64(binary.LittleEndian.Uint64(br.tmp[8:16]))),
			}
		}
		return nil
	})
}

func (br *binReader) int8s(count int) ([]int8, error) {
	return readSection(count, func(dst []int8) error {
		return br.raw(int8sBytes(dst))
	})
}

// ReadBinary parses the binary CSR format, verifying the checksum. The
// arrays are read in bulk straight into their final allocations, so loading
// costs O(file size) with no per-edge parsing at all.
func ReadBinary(r io.Reader) (*Graph, error) {
	var head [binHeaderSize]byte
	if _, err := io.ReadFull(r, head[:]); err != nil {
		return nil, fmt.Errorf("graph: reading binary header: %w", err)
	}
	hdr, err := decodeHeader(head[:])
	if err != nil {
		return nil, err
	}
	lay := layoutFor(hdr.n, hdr.m, hdr.weighted(), hdr.signed())

	crc := crc32.New(castagnoli)
	crc.Write(head[:56])
	br := &binReader{r: r, crc: crc, tmp: make([]byte, 16)}

	g := &Graph{
		n:      hdr.n,
		maxDeg: hdr.maxDeg,
		minDeg: hdr.minDeg,
		maxW:   hdr.maxW,
		totalW: hdr.totalW,
	}
	if g.adjOff, err = br.int32s(hdr.n + 1); err != nil {
		return nil, err
	}
	if pad := lay.offAdjTo - (lay.offAdjOff + int64(hdr.n+1)*4); pad > 0 {
		var p [8]byte
		if err := br.raw(p[:pad]); err != nil {
			return nil, err
		}
	}
	if g.adjTo, err = br.int32s(2 * hdr.m); err != nil {
		return nil, err
	}
	if g.adjIdx, err = br.int32s(2 * hdr.m); err != nil {
		return nil, err
	}
	if g.edges, err = br.edgeSlice(hdr.m); err != nil {
		return nil, err
	}
	if hdr.weighted() {
		if g.weight, err = br.int64s(hdr.m); err != nil {
			return nil, err
		}
	}
	if hdr.signed() {
		if g.sign, err = br.int8s(hdr.m); err != nil {
			return nil, err
		}
	}
	if got := crc.Sum32(); got != hdr.crc {
		return nil, fmt.Errorf("graph: binary checksum mismatch (file %#x, computed %#x): corrupt or truncated file", hdr.crc, got)
	}
	if err := validateCSR(g); err != nil {
		return nil, err
	}
	return g, nil
}

// validateCSR performs the structural checks that keep a corrupt-but-
// checksum-valid file from producing out-of-bounds panics later: offsets
// monotone and spanning exactly 2m, neighbor and edge indices in range.
func validateCSR(g *Graph) error {
	m := len(g.edges)
	if g.adjOff[0] != 0 || int(g.adjOff[g.n]) != 2*m {
		return fmt.Errorf("graph: corrupt CSR offsets (start %d, end %d, want 0 and %d)", g.adjOff[0], g.adjOff[g.n], 2*m)
	}
	for v := 0; v < g.n; v++ {
		if g.adjOff[v] > g.adjOff[v+1] {
			return fmt.Errorf("graph: corrupt CSR offsets at vertex %d", v)
		}
	}
	for i, to := range g.adjTo {
		if int(to) >= g.n || to < 0 || int(g.adjIdx[i]) >= m || g.adjIdx[i] < 0 {
			return fmt.Errorf("graph: corrupt CSR adjacency at slot %d", i)
		}
	}
	for _, e := range g.edges {
		if e.U < 0 || e.V < 0 || e.U >= g.n || e.V >= g.n || e.U >= e.V {
			return fmt.Errorf("graph: corrupt edge list entry %v", e)
		}
	}
	return nil
}

// Mapped is a Graph whose arrays alias a memory-mapped file (or, on
// platforms without mmap support, a plain copy read from it). The Graph is
// valid until Close; Close unmaps the file, after which any access through
// the Graph would fault — call Clone first if an independent copy must
// outlive the mapping. The mapping is read-only and shared, so many
// processes can serve the same on-disk graph from one page-cache copy.
type Mapped struct {
	Graph *Graph
	data  []byte // nil when the graph was read by copy (fallback path)
}

// Close releases the mapping. The embedded Graph must not be used after.
func (m *Mapped) Close() error {
	data := m.data
	m.data = nil
	m.Graph = nil
	if data == nil {
		return nil
	}
	return unmap(data)
}

// mapGraph aliases the Graph arrays directly at the mapped region. Callers
// have verified the platform supports aliasing (little-endian, 64-bit int)
// and that the region is exactly the layout's total size.
func mapGraph(data []byte) (*Graph, error) {
	hdr, err := decodeHeader(data)
	if err != nil {
		return nil, err
	}
	lay := layoutFor(hdr.n, hdr.m, hdr.weighted(), hdr.signed())
	if int64(len(data)) != lay.total {
		return nil, fmt.Errorf("graph: binary file is %d bytes, header implies %d", len(data), lay.total)
	}
	g := &Graph{
		n:      hdr.n,
		maxDeg: hdr.maxDeg,
		minDeg: hdr.minDeg,
		maxW:   hdr.maxW,
		totalW: hdr.totalW,
	}
	g.adjOff = unsafe.Slice((*int32)(unsafe.Pointer(&data[lay.offAdjOff])), hdr.n+1)
	if hdr.m > 0 {
		g.adjTo = unsafe.Slice((*int32)(unsafe.Pointer(&data[lay.offAdjTo])), 2*hdr.m)
		g.adjIdx = unsafe.Slice((*int32)(unsafe.Pointer(&data[lay.offAdjIdx])), 2*hdr.m)
		g.edges = unsafe.Slice((*Edge)(unsafe.Pointer(&data[lay.offEdges])), hdr.m)
		if hdr.weighted() {
			g.weight = unsafe.Slice((*int64)(unsafe.Pointer(&data[lay.offWeights])), hdr.m)
		}
		if hdr.signed() {
			g.sign = unsafe.Slice((*int8)(unsafe.Pointer(&data[lay.offSigns])), hdr.m)
		}
	} else {
		g.edges = []Edge{}
		if hdr.weighted() {
			g.weight = []int64{}
		}
		if hdr.signed() {
			g.sign = []int8{}
		}
	}
	return g, nil
}

// readBinaryFallback backs OpenMapped on platforms (or byte orders) where
// aliasing is impossible: the whole file is read and decoded instead.
func readBinaryFallback(path string) (*Mapped, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	g, err := ReadBinary(f)
	if err != nil {
		return nil, err
	}
	return &Mapped{Graph: g}, nil
}

// LoadFile reads a graph from path in either supported format, sniffing the
// binary magic: binary CSR files go through ReadBinary, anything else
// through the text edge-list parser.
func LoadFile(path string) (*Graph, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var magic [8]byte
	n, err := io.ReadFull(f, magic[:])
	if err != nil && err != io.ErrUnexpectedEOF && err != io.EOF {
		return nil, err
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return nil, err
	}
	if n == 8 && string(magic[:]) == binMagic {
		return ReadBinary(f)
	}
	return ReadEdgeList(f)
}
