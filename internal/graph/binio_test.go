package graph

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
)

func binaryTestGraphs(t testing.TB) map[string]*Graph {
	t.Helper()
	rng := rand.New(rand.NewSource(23))
	return map[string]*Graph{
		"grid":     Grid(5, 8),
		"planar":   RandomMaximalPlanar(90, rng),
		"weighted": WithRandomWeights(TriangulatedGrid(7, 4), 200, rng),
		"signed":   WithRandomSigns(Hypercube(5), 0.3, rng),
		"empty":    NewBuilder(6).Graph(),
		"novertex": NewBuilder(0).Graph(),
		"single":   FromEdges(3, []Edge{{U: 0, V: 2}}),
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	for name, g := range binaryTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				t.Fatalf("WriteBinary: %v", err)
			}
			lay := layoutFor(g.N(), g.M(), g.Weighted(), g.Signed())
			if int64(buf.Len()) != lay.total {
				t.Fatalf("file is %d bytes, layout says %d", buf.Len(), lay.total)
			}
			got, err := ReadBinary(bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("ReadBinary: %v", err)
			}
			requireIdenticalGraphs(t, got, g)

			// The format is deterministic: writing again is byte-identical.
			var buf2 bytes.Buffer
			if err := WriteBinary(&buf2, got); err != nil {
				t.Fatalf("rewrite: %v", err)
			}
			if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
				t.Fatal("binary encoding is not deterministic")
			}

			// And it agrees with the text codec on graph content.
			var text, text2 bytes.Buffer
			if err := WriteEdgeList(&text, g); err != nil {
				t.Fatalf("WriteEdgeList: %v", err)
			}
			if err := WriteEdgeList(&text2, got); err != nil {
				t.Fatalf("WriteEdgeList(decoded): %v", err)
			}
			if !bytes.Equal(text.Bytes(), text2.Bytes()) {
				t.Fatal("text rendering differs after a binary round trip")
			}
		})
	}
}

func TestOpenMappedMatchesReadBinary(t *testing.T) {
	dir := t.TempDir()
	for name, g := range binaryTestGraphs(t) {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(dir, name+".bin")
			var buf bytes.Buffer
			if err := WriteBinary(&buf, g); err != nil {
				t.Fatalf("WriteBinary: %v", err)
			}
			if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
				t.Fatalf("write file: %v", err)
			}
			mg, err := OpenMapped(path)
			if err != nil {
				t.Fatalf("OpenMapped: %v", err)
			}
			requireIdenticalGraphs(t, mg.Graph, g)

			// Clone detaches from the mapping and survives Close.
			cp := mg.Graph.Clone()
			if err := mg.Close(); err != nil {
				t.Fatalf("Close: %v", err)
			}
			requireIdenticalGraphs(t, cp, g)
			// Close is idempotent.
			if err := mg.Close(); err != nil {
				t.Fatalf("second Close: %v", err)
			}
		})
	}
}

// TestOpenMappedIsZeroCopy checks the linux fast path aliases the file rather
// than copying it: opening must not allocate memory proportional to the edge
// section. (On fallback platforms the test is skipped.)
func TestOpenMappedIsZeroCopy(t *testing.T) {
	if !canAlias() {
		t.Skip("host cannot alias the on-disk layout")
	}
	g := Grid(200, 200) // ~80k edges, ~2.5 MB on disk
	path := filepath.Join(t.TempDir(), "grid.bin")
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		mg, err := OpenMapped(path)
		if err != nil {
			t.Fatal(err)
		}
		if mg.Graph.M() != g.M() {
			t.Fatal("wrong graph")
		}
		mg.Close()
	})
	// Open cost is a handful of descriptors and headers, never per-edge.
	if allocs > 64 {
		t.Fatalf("OpenMapped allocates %.0f objects; expected O(1)", allocs)
	}
}

func TestBinaryErrors(t *testing.T) {
	g := WithRandomWeights(Grid(4, 4), 9, rand.New(rand.NewSource(3)))
	var buf bytes.Buffer
	if err := WriteBinary(&buf, g); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	reread := func(b []byte) error {
		_, err := ReadBinary(bytes.NewReader(b))
		return err
	}
	mutate := func(idx int, b byte) []byte {
		c := append([]byte(nil), valid...)
		c[idx] ^= b
		return c
	}

	t.Run("bad-magic", func(t *testing.T) {
		if err := reread(mutate(0, 0xff)); err == nil {
			t.Fatal("expected magic error")
		}
	})
	t.Run("bad-version", func(t *testing.T) {
		if err := reread(mutate(8, 0x02)); err == nil {
			t.Fatal("expected version error")
		}
	})
	t.Run("truncated-header", func(t *testing.T) {
		if err := reread(valid[:binHeaderSize-8]); err == nil {
			t.Fatal("expected truncation error")
		}
	})
	t.Run("truncated-payload", func(t *testing.T) {
		if err := reread(valid[:len(valid)-8]); err == nil {
			t.Fatal("expected truncation error")
		}
	})
	t.Run("payload-bit-flip", func(t *testing.T) {
		if err := reread(mutate(len(valid)-1, 0x01)); err == nil {
			t.Fatal("expected checksum error")
		}
	})
	t.Run("header-stat-flip", func(t *testing.T) {
		// maxW lives in the checksummed header range [40,48).
		if err := reread(mutate(41, 0x10)); err == nil {
			t.Fatal("expected checksum error")
		}
	})
	t.Run("reserved-nonzero", func(t *testing.T) {
		if err := reread(mutate(60, 0x01)); err == nil {
			t.Fatal("expected reserved-field error")
		}
	})
	t.Run("crc-valid-but-corrupt-structure", func(t *testing.T) {
		// Corrupt an adjacency index, then forge a matching checksum: the
		// structural validator has to catch what the CRC no longer can.
		c := append([]byte(nil), valid...)
		lay := layoutFor(g.N(), g.M(), g.Weighted(), g.Signed())
		binary.LittleEndian.PutUint32(c[lay.offAdjTo:], uint32(g.N()+7))
		crc := crc32.New(castagnoli)
		crc.Write(c[0:56])
		crc.Write(c[binHeaderSize:])
		binary.LittleEndian.PutUint32(c[56:60], crc.Sum32())
		err := reread(c)
		if err == nil {
			t.Fatal("expected structural validation error")
		}
	})
	t.Run("openmapped-wrong-size", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "trunc.bin")
		if err := os.WriteFile(path, valid[:len(valid)-4], 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenMapped(path); err == nil {
			t.Fatal("expected size-mismatch error")
		}
	})
	t.Run("openmapped-tiny-file", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "tiny.bin")
		if err := os.WriteFile(path, []byte("EXPGR"), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := OpenMapped(path); err == nil {
			t.Fatal("expected header-size error")
		}
	})
}

func TestLoadFileSniffsFormat(t *testing.T) {
	g := WithRandomSigns(Torus(4, 6), 0.5, rand.New(rand.NewSource(9)))
	dir := t.TempDir()

	binPath := filepath.Join(dir, "g.bin")
	var bin bytes.Buffer
	if err := WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	txtPath := filepath.Join(dir, "g.txt")
	var txt bytes.Buffer
	if err := WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}

	fromBin, err := LoadFile(binPath)
	if err != nil {
		t.Fatalf("LoadFile(bin): %v", err)
	}
	fromTxt, err := LoadFile(txtPath)
	if err != nil {
		t.Fatalf("LoadFile(txt): %v", err)
	}
	requireIdenticalGraphs(t, fromBin, g)
	requireIdenticalGraphs(t, fromTxt, g)

	if _, err := LoadFile(filepath.Join(dir, "missing")); err == nil {
		t.Fatal("expected error for missing file")
	}
}

// FuzzBinaryRoundTrip drives both codecs from arbitrary bytes. Inputs that
// parse as a text edge list are pushed through text → binary → mmap → text
// and must come back byte-identical; arbitrary bytes fed to the binary reader
// (including corrupt headers and truncated files) must error cleanly, never
// panic.
func FuzzBinaryRoundTrip(f *testing.F) {
	seedGraphs := []*Graph{
		Grid(3, 4),
		WithRandomWeights(Path(6), 9, rand.New(rand.NewSource(1))),
		WithRandomSigns(Cycle(5), 0.5, rand.New(rand.NewSource(2))),
		NewBuilder(2).Graph(),
	}
	for _, g := range seedGraphs {
		var txt, bin bytes.Buffer
		if err := WriteEdgeList(&txt, g); err != nil {
			f.Fatal(err)
		}
		if err := WriteBinary(&bin, g); err != nil {
			f.Fatal(err)
		}
		f.Add(txt.Bytes())
		f.Add(bin.Bytes())
	}
	f.Add([]byte("EXPGRCSR garbage"))
	f.Add([]byte("3 2\n0 1\n1 2\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		// A tiny text input may legitimately declare an enormous vertex
		// count ("999999999 0\n") and cost gigabytes of adjOff; cap the
		// leading integer so the fuzzer probes parsing, not allocation.
		v := 0
		for _, c := range data {
			if c < '0' || c > '9' {
				break
			}
			if v = v*10 + int(c-'0'); v > 1<<20 {
				return
			}
		}

		// Arbitrary bytes through the binary reader: error or succeed, no
		// panics, and any accepted graph must re-encode deterministically.
		if g, err := ReadBinary(bytes.NewReader(data)); err == nil {
			var out bytes.Buffer
			if err := WriteBinary(&out, g); err != nil {
				t.Fatalf("re-encode of accepted binary input: %v", err)
			}
		}

		// Bytes that parse as the text format take the full pipeline:
		// text → binary → mmap → text, byte-identical at the end.
		g, err := ReadEdgeList(bytes.NewReader(data))
		if err != nil {
			return
		}
		var canonical bytes.Buffer
		if err := WriteEdgeList(&canonical, g); err != nil {
			t.Fatalf("canonical text render: %v", err)
		}
		var bin bytes.Buffer
		if err := WriteBinary(&bin, g); err != nil {
			t.Fatalf("WriteBinary: %v", err)
		}
		path := filepath.Join(t.TempDir(), "g.bin")
		if err := os.WriteFile(path, bin.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		mg, err := OpenMapped(path)
		if err != nil {
			t.Fatalf("OpenMapped of freshly written file: %v", err)
		}
		defer mg.Close()
		var final bytes.Buffer
		if err := WriteEdgeList(&final, mg.Graph); err != nil {
			t.Fatalf("text render of mapped graph: %v", err)
		}
		if !bytes.Equal(canonical.Bytes(), final.Bytes()) {
			t.Fatal("text → binary → mmap → text round trip is not byte-identical")
		}
	})
}
