package graph

import (
	"fmt"
	"io"
	"math"
	"strconv"
)

// Churn traces are the canonical on-disk form of a mutation stream: the
// format cmd/graphgen -churn emits, cmd/loadgen replays against /mutate, and
// the churn benchmarks consume, so every consumer measures the same ops.
//
// The format is line-oriented text:
//
//	churn <count>
//	+ <u> <v> [<weight>]   edge insert (weight > 0 makes it a weighted insert)
//	- <u> <v>              edge delete
//	+v                     vertex add
//	-v <u>                 vertex delete (isolate + tombstone)
//
// one op per line, exactly <count> op lines. Parsing validates every field
// and reports malformed input — non-numeric tokens, negative IDs, unknown
// verbs, wrong field counts — with its 1-based line number. Whether an op
// applies cleanly (the edge exists, the vertex is live) is a property of the
// graph it is applied to, so that is checked at Overlay.Apply time, not here.

// WriteChurn writes ops in the churn trace format.
func WriteChurn(w io.Writer, ops []Op) error {
	bw := newFlushWriter(w)
	buf := make([]byte, 0, 64)
	buf = append(buf, "churn "...)
	buf = strconv.AppendInt(buf, int64(len(ops)), 10)
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for i, op := range ops {
		buf = buf[:0]
		switch op.Kind {
		case OpAddEdge:
			buf = append(buf, "+ "...)
			buf = strconv.AppendInt(buf, int64(op.U), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(op.V), 10)
			if op.W != 0 {
				buf = append(buf, ' ')
				buf = strconv.AppendInt(buf, op.W, 10)
			}
		case OpDeleteEdge:
			buf = append(buf, "- "...)
			buf = strconv.AppendInt(buf, int64(op.U), 10)
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(op.V), 10)
		case OpAddVertex:
			buf = append(buf, "+v"...)
		case OpDeleteVertex:
			buf = append(buf, "-v "...)
			buf = strconv.AppendInt(buf, int64(op.U), 10)
		default:
			return fmt.Errorf("graph: op %d: unknown op kind %d", i, op.Kind)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadChurn parses a churn trace produced by WriteChurn, reporting malformed
// input with its 1-based line number.
func ReadChurn(r io.Reader) ([]Op, error) {
	p := newEdgeListParser(r)
	if _, err := p.peek(); err != nil {
		return nil, err
	}
	if p.atEOF() {
		return nil, fmt.Errorf("graph: empty churn input")
	}
	tok, err := p.parseWord()
	if err != nil {
		return nil, err
	}
	if tok != "churn" {
		return nil, fmt.Errorf("graph: line %d: expected %q header, got %q", p.line, "churn", tok)
	}
	cnt, err := p.parseInt("op count")
	if err != nil {
		return nil, err
	}
	if cnt < 0 || cnt > math.MaxInt32 {
		return nil, fmt.Errorf("graph: line %d: op count %d out of range", p.line, cnt)
	}
	if err := p.endLine(); err != nil {
		return nil, err
	}
	ops := make([]Op, 0, cnt)
	for i := int64(0); i < cnt; i++ {
		line := p.line
		if p.atEOF() {
			return nil, fmt.Errorf("graph: line %d: expected %d ops, input ended after %d", line, cnt, i)
		}
		verb, err := p.parseWord()
		if err != nil {
			return nil, err
		}
		var op Op
		switch verb {
		case "+", "-":
			if verb == "+" {
				op.Kind = OpAddEdge
			} else {
				op.Kind = OpDeleteEdge
			}
			u, err := p.parseInt("endpoint")
			if err != nil {
				return nil, err
			}
			v, err := p.parseInt("endpoint")
			if err != nil {
				return nil, err
			}
			if u < 0 || u > math.MaxInt32 || v < 0 || v > math.MaxInt32 {
				return nil, fmt.Errorf("graph: line %d: edge {%d,%d}: %w", line, u, v, ErrVertexRange)
			}
			op.U, op.V = int(u), int(v)
			if op.Kind == OpAddEdge {
				if err := p.skipSpaces(); err != nil {
					return nil, err
				}
				if c, err := p.peek(); err != nil {
					return nil, err
				} else if !p.atEOF() && c != '\n' {
					w, err := p.parseInt("weight")
					if err != nil {
						return nil, err
					}
					if w <= 0 {
						return nil, fmt.Errorf("graph: line %d: non-positive weight %d", line, w)
					}
					op.W = w
				}
			}
		case "+v":
			op.Kind = OpAddVertex
		case "-v":
			op.Kind = OpDeleteVertex
			u, err := p.parseInt("vertex")
			if err != nil {
				return nil, err
			}
			if u < 0 || u > math.MaxInt32 {
				return nil, fmt.Errorf("graph: line %d: vertex %d: %w", line, u, ErrVertexRange)
			}
			op.U = int(u)
		default:
			return nil, fmt.Errorf("graph: line %d: unknown op verb %q", line, verb)
		}
		if err := p.endLine(); err != nil {
			return nil, err
		}
		ops = append(ops, op)
	}
	return ops, nil
}

// GenerateChurn produces a deterministic stream of count edge mutations for
// base: a ~50/50 mix of inserts (fresh random non-edges, weighted/signed to
// match the base graph's annotations) and deletes (uniform over the edges
// live at that point in the stream). The stream is generated against a
// scratch overlay, so every op is guaranteed to apply cleanly when replayed
// in order on base — the property that lets benchmarks, the serve smoke job,
// and tests share one trace without failure-handling divergence. The
// sequence depends only on (base, count, seed), splitmix64-derived like the
// streaming generators.
func GenerateChurn(base G, count int, seed int64) ([]Op, error) {
	ov := NewOverlay(base)
	if ov.N() < 2 {
		return nil, fmt.Errorf("graph: churn needs at least 2 vertices, have %d", ov.N())
	}
	var maxW int64 = 1
	if ov.Weighted() {
		type mw interface{ MaxWeight() int64 }
		if g, ok := base.(mw); ok && g.MaxWeight() > 1 {
			maxW = g.MaxWeight()
		} else {
			maxW = 8
		}
	}
	state := uint64(seed)
	ops := make([]Op, 0, count)
	for len(ops) < count {
		del := splitmix64(&state)&1 == 0
		if del && ov.M() == 0 {
			del = false
		}
		if del {
			e := ov.EdgeAt(int(splitmix64(&state) % uint64(ov.M())))
			op := Op{Kind: OpDeleteEdge, U: e.U, V: e.V}
			if err := ov.Apply(op); err != nil {
				return nil, fmt.Errorf("graph: churn delete {%d,%d}: %w", e.U, e.V, err)
			}
			ops = append(ops, op)
			continue
		}
		// Rejection-sample a fresh non-edge; on a near-complete graph fall
		// back to a delete so generation always terminates.
		placed := false
		for tries := 0; tries < 64; tries++ {
			u := int(splitmix64(&state) % uint64(ov.N()))
			v := int(splitmix64(&state) % uint64(ov.N()))
			if u == v || ov.HasEdge(u, v) {
				continue
			}
			op := Op{Kind: OpAddEdge, U: u, V: v}
			if op.U > op.V {
				op.U, op.V = op.V, op.U
			}
			if ov.Weighted() {
				op.W = 1 + int64(splitmix64(&state)%uint64(maxW))
			}
			if err := ov.Apply(op); err != nil {
				return nil, fmt.Errorf("graph: churn insert {%d,%d}: %w", op.U, op.V, err)
			}
			ops = append(ops, op)
			placed = true
			break
		}
		if !placed {
			if ov.M() == 0 {
				return nil, fmt.Errorf("graph: churn generation stuck: no edges to delete and no free pairs to insert")
			}
			e := ov.EdgeAt(int(splitmix64(&state) % uint64(ov.M())))
			op := Op{Kind: OpDeleteEdge, U: e.U, V: e.V}
			if err := ov.Apply(op); err != nil {
				return nil, fmt.Errorf("graph: churn delete {%d,%d}: %w", e.U, e.V, err)
			}
			ops = append(ops, op)
		}
	}
	return ops, nil
}
