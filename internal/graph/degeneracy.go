package graph

// Degeneracy returns the degeneracy of g (the maximum, over the peeling
// order, of the minimum degree), together with a peeling order realizing
// it. Degeneracy bounds arboricity within a factor of 2, which connects to
// the paper's §1.1 discussion of MaxIS in arboricity-α graphs; H-minor-free
// graphs have O(1) degeneracy.
func (g *Graph) Degeneracy() (int, []int) {
	n := g.n
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	// Bucket queue over degrees.
	maxDeg := g.MaxDegree()
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	order := make([]int, 0, n)
	degeneracy := 0
	cur := 0
	for len(order) < n {
		if cur > maxDeg {
			break
		}
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue // stale entry
		}
		removed[v] = true
		order = append(order, v)
		if cur > degeneracy {
			degeneracy = cur
		}
		g.ForEachNeighbor(v, func(u, _ int) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		})
	}
	return degeneracy, order
}

// CoreNumbers returns the k-core number of every vertex (the largest k such
// that the vertex survives in the k-core).
func (g *Graph) CoreNumbers() []int {
	n := g.n
	core := make([]int, n)
	deg := make([]int, n)
	removed := make([]bool, n)
	for v := 0; v < n; v++ {
		deg[v] = g.Degree(v)
	}
	maxDeg := g.MaxDegree()
	buckets := make([][]int, maxDeg+1)
	for v := 0; v < n; v++ {
		buckets[deg[v]] = append(buckets[deg[v]], v)
	}
	processed := 0
	level := 0
	cur := 0
	for processed < n && cur <= maxDeg {
		if len(buckets[cur]) == 0 {
			cur++
			continue
		}
		v := buckets[cur][len(buckets[cur])-1]
		buckets[cur] = buckets[cur][:len(buckets[cur])-1]
		if removed[v] || deg[v] != cur {
			continue
		}
		if cur > level {
			level = cur
		}
		core[v] = level
		removed[v] = true
		processed++
		g.ForEachNeighbor(v, func(u, _ int) {
			if !removed[u] {
				deg[u]--
				buckets[deg[u]] = append(buckets[deg[u]], u)
				if deg[u] < cur {
					cur = deg[u]
				}
			}
		})
	}
	return core
}
