package graph

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestDegeneracyKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *Graph
		want int
	}{
		{"tree", RandomTree(30, rng), 1},
		{"cycle", Cycle(10), 2},
		{"K5", Complete(5), 4},
		{"grid", Grid(5, 5), 2},
		{"maximal-planar", RandomMaximalPlanar(30, rng), 3}, // planar: 3..5; triangulations hit >=3
		{"star", Star(7), 1},
		{"empty", NewBuilder(4).Graph(), 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, order := tc.g.Degeneracy()
			if tc.name == "maximal-planar" {
				if got < 3 || got > 5 {
					t.Errorf("degeneracy = %d, want in [3,5] (planar)", got)
				}
			} else if got != tc.want {
				t.Errorf("degeneracy = %d, want %d", got, tc.want)
			}
			if len(order) != tc.g.N() {
				t.Errorf("peeling order covers %d of %d", len(order), tc.g.N())
			}
		})
	}
}

// Property: degeneracy is at least m/n (average-degree bound) and at most
// the maximum degree; core numbers are consistent with it.
func TestQuickDegeneracyBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := ErdosRenyi(n, 0.3, rng)
		d, _ := g.Degeneracy()
		if d > g.MaxDegree() {
			return false
		}
		if g.N() > 0 && float64(d) < float64(g.M())/float64(g.N()) {
			return false
		}
		cores := g.CoreNumbers()
		maxCore := 0
		for _, c := range cores {
			if c > maxCore {
				maxCore = c
			}
		}
		return maxCore == d
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCoreNumbersTriangleWithTail(t *testing.T) {
	// A triangle with a pendant 2-path: triangle vertices have core 2, the
	// tail (degree sequence ending in a leaf) has core 1.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	g := b.Graph()
	cores := g.CoreNumbers()
	for _, v := range []int{0, 1, 2} {
		if cores[v] != 2 {
			t.Errorf("triangle vertex %d core = %d, want 2", v, cores[v])
		}
	}
	for _, v := range []int{3, 4} {
		if cores[v] != 1 {
			t.Errorf("tail vertex %d core = %d, want 1", v, cores[v])
		}
	}
}

func TestMinorFreeFamiliesLowDegeneracy(t *testing.T) {
	// The structural fact the framework relies on: H-minor-free families
	// have O(1) degeneracy regardless of size.
	rng := rand.New(rand.NewSource(2))
	for _, n := range []int{50, 150, 400} {
		if d, _ := RandomMaximalPlanar(n, rng).Degeneracy(); d > 5 {
			t.Errorf("planar degeneracy %d > 5 at n=%d", d, n)
		}
		if d, _ := RandomOuterplanar(n, rng).Degeneracy(); d > 2 {
			t.Errorf("outerplanar degeneracy %d > 2 at n=%d", d, n)
		}
		if d, _ := KTree(n, 3, rng).Degeneracy(); d != 3 {
			t.Errorf("3-tree degeneracy %d != 3 at n=%d", d, n)
		}
	}
}
