// Package graph provides the static undirected graph representation shared by
// every subsystem in this repository: the CONGEST simulator, the expander
// decomposition, the sequential solvers, and the experiment harness.
//
// # Representation
//
// Graphs are immutable once built and stored in compressed sparse row (CSR)
// form: three flat arrays (row offsets, neighbor IDs, undirected edge
// indices) hold every adjacency, with each row sorted by ascending neighbor
// ID. Construction goes through Builder, which deduplicates parallel edges,
// rejects self-loops, and assigns canonical (sorted) edge indices that are
// stable across insertion orders. Edge weights (for maximum weight matching)
// and edge signs (for correlation clustering) are optional per-edge
// annotations carried by parallel arrays indexed by edge index. Aggregate
// quantities that would otherwise need a scan — MaxDegree, MinDegree,
// MaxWeight, TotalWeight — are computed once at build time and served in
// O(1).
//
// # Views
//
// The recursive algorithms in this repository (expander decomposition, ball
// carving, cluster verification) repeatedly restrict a graph to a vertex
// subset. Materializing each restriction with InducedSubgraph costs a full
// Builder pass per recursion level. The View type avoids that: Induce and
// InduceFiltered build a zero-copy subgraph view that shares the backing
// graph's edge list, weights and signs, adding only a small local adjacency
// index. Both *Graph and *View satisfy the read-only G interface, and the
// package-level helpers (BFSOf, ComponentsOf, DiameterOf, ...) run on
// either. View.Materialize converts a view into the equivalent standalone
// *Graph — bit-identical to the InducedSubgraph result — when an independent
// copy is genuinely needed (for example to hand to a solver that outlives
// the base graph). See DESIGN.md §3.11 for the aliasing and ownership
// contract.
//
// # Input and output
//
// Graphs move between memory and disk through three load paths, all
// producing the same canonical CSR:
//
//   - Text edge lists (ReadEdgeList / WriteEdgeList): one "u v [w] [s]" pair
//     per line. The parser streams bytes directly into a StreamingBuilder —
//     no token-size limits, line-numbered errors, overflow checks — so
//     multi-gigabyte lists parse in two passes with no intermediate edge
//     buffer.
//   - Binary CSR (ReadBinary / WriteBinary): the in-memory arrays verbatim
//     behind a versioned, crc32c-checksummed 64-byte header. Round trips are
//     bit-identical, including the cached aggregate stats, and loads are a
//     few sequential reads.
//   - Memory mapping (OpenMapped): maps a binary file read-only and aliases
//     the CSR arrays in place on little-endian 64-bit hosts
//     (MapIsZeroCopy reports availability). Opening validates only the
//     header — O(1) in the edge count — and the heap stays empty; the
//     returned Mapped owns the mapping and Close unmaps it. Platforms or
//     hosts without the fast path degrade to a copying read behind the same
//     call.
//
// LoadFile sniffs the format by magic and dispatches. For generating large
// inputs, ErdosRenyiStream, RandomMaximalPlanarStream and RandomPlanarStream
// assemble CSR in parallel from per-row splitmix64 streams; the planar
// variants are byte-identical to their Builder counterparts for equal seeds.
// StreamingBuilder is the shared two-pass assembly they and the text parser
// build on. See DESIGN.md §3.13 for the on-disk layout and the aliasing
// rules.
//
// # Mutation
//
// The CSR arrays never change, but graphs can still evolve: Overlay layers
// edge and vertex inserts/deletes (Op, Apply, ApplyAll) over an immutable
// base while satisfying the full G interface — degrees, canonical-order
// neighbor iteration, edge indices, weights and signs all answer as if the
// mutated graph had been built from scratch, which FuzzOverlayEquivalence
// pins against a from-scratch Builder on random op sequences. Base edge
// indices stay stable under mutation (deletions tombstone, insertions index
// past the base), so per-edge state held by callers survives a batch.
// Vertex deletion isolates the ID rather than renumbering — vertex IDs stay
// dense, the invariant every downstream array relies on. Compact
// materializes the overlay through StreamingBuilder into a canonical
// *Graph, byte-identical through the binary codec; DeltaFraction and
// NeedsCompact (DefaultCompactThreshold) say when that is worth paying.
// Deterministic mutation streams come from GenerateChurn and round-trip
// through WriteChurn/ReadChurn in a line-oriented trace format with
// line-numbered parse errors. See DESIGN.md §3.16 for the delta layout and
// how the expander package consumes overlays incrementally.
package graph
