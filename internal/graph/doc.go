// Package graph provides the static undirected graph representation shared by
// every subsystem in this repository: the CONGEST simulator, the expander
// decomposition, the sequential solvers, and the experiment harness.
//
// # Representation
//
// Graphs are immutable once built and stored in compressed sparse row (CSR)
// form: three flat arrays (row offsets, neighbor IDs, undirected edge
// indices) hold every adjacency, with each row sorted by ascending neighbor
// ID. Construction goes through Builder, which deduplicates parallel edges,
// rejects self-loops, and assigns canonical (sorted) edge indices that are
// stable across insertion orders. Edge weights (for maximum weight matching)
// and edge signs (for correlation clustering) are optional per-edge
// annotations carried by parallel arrays indexed by edge index. Aggregate
// quantities that would otherwise need a scan — MaxDegree, MinDegree,
// MaxWeight, TotalWeight — are computed once at build time and served in
// O(1).
//
// # Views
//
// The recursive algorithms in this repository (expander decomposition, ball
// carving, cluster verification) repeatedly restrict a graph to a vertex
// subset. Materializing each restriction with InducedSubgraph costs a full
// Builder pass per recursion level. The View type avoids that: Induce and
// InduceFiltered build a zero-copy subgraph view that shares the backing
// graph's edge list, weights and signs, adding only a small local adjacency
// index. Both *Graph and *View satisfy the read-only G interface, and the
// package-level helpers (BFSOf, ComponentsOf, DiameterOf, ...) run on
// either. View.Materialize converts a view into the equivalent standalone
// *Graph — bit-identical to the InducedSubgraph result — when an independent
// copy is genuinely needed (for example to hand to a solver that outlives
// the base graph). See DESIGN.md §3.11 for the aliasing and ownership
// contract.
package graph
