package graph

import (
	"bufio"
	"fmt"
	"io"
)

// WriteDOT writes g in Graphviz DOT format. When clusterOf is non-nil it
// must map each vertex to a cluster ID; vertices are then grouped into DOT
// subgraph clusters and inter-cluster edges drawn dashed — handy for
// eyeballing expander decompositions and LDDs.
func WriteDOT(w io.Writer, g *Graph, clusterOf []int) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "graph G {")
	fmt.Fprintln(bw, "  node [shape=circle];")
	if clusterOf != nil {
		if len(clusterOf) != g.N() {
			return fmt.Errorf("graph: clusterOf covers %d vertices, graph has %d", len(clusterOf), g.N())
		}
		groups := make(map[int][]int)
		for v, c := range clusterOf {
			groups[c] = append(groups[c], v)
		}
		// Deterministic order: by smallest member.
		order := make([]int, 0, len(groups))
		for c := range groups {
			order = append(order, c)
		}
		for i := 1; i < len(order); i++ {
			for j := i; j > 0 && groups[order[j-1]][0] > groups[order[j]][0]; j-- {
				order[j-1], order[j] = order[j], order[j-1]
			}
		}
		for _, c := range order {
			fmt.Fprintf(bw, "  subgraph cluster_%d {\n", c)
			for _, v := range groups[c] {
				fmt.Fprintf(bw, "    %d;\n", v)
			}
			fmt.Fprintln(bw, "  }")
		}
	}
	for idx, e := range g.Edges() {
		attrs := ""
		if g.Weighted() {
			attrs = fmt.Sprintf(" [label=%d]", g.Weight(idx))
		}
		if g.Signed() && g.Sign(idx) == -1 {
			attrs = " [color=red]"
		}
		if clusterOf != nil && clusterOf[e.U] != clusterOf[e.V] {
			if attrs == "" {
				attrs = " [style=dashed]"
			} else {
				attrs = attrs[:len(attrs)-1] + ",style=dashed]"
			}
		}
		fmt.Fprintf(bw, "  %d -- %d%s;\n", e.U, e.V, attrs)
	}
	fmt.Fprintln(bw, "}")
	return bw.Flush()
}
