package graph

import (
	"math/rand"
	"strings"
	"testing"
)

func TestWriteDOTPlain(t *testing.T) {
	g := Path(3)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"graph G {", "0 -- 1;", "1 -- 2;", "}"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT missing %q:\n%s", want, out)
		}
	}
}

func TestWriteDOTClustersAndAttrs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := WithRandomWeights(Cycle(4), 9, rng)
	var sb strings.Builder
	if err := WriteDOT(&sb, g, []int{0, 0, 1, 1}); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "subgraph cluster_0") || !strings.Contains(out, "subgraph cluster_1") {
		t.Errorf("DOT missing clusters:\n%s", out)
	}
	if !strings.Contains(out, "style=dashed") {
		t.Errorf("inter-cluster edge not dashed:\n%s", out)
	}
	if !strings.Contains(out, "label=") {
		t.Errorf("weights not labeled:\n%s", out)
	}
}

func TestWriteDOTSignedAndErrors(t *testing.T) {
	b := NewBuilder(3)
	b.AddSignedEdge(0, 1, -1)
	b.AddSignedEdge(1, 2, 1)
	g := b.Graph()
	var sb strings.Builder
	if err := WriteDOT(&sb, g, nil); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "color=red") {
		t.Error("negative edge not colored")
	}
	if err := WriteDOT(&sb, g, []int{0}); err == nil {
		t.Error("short cluster slice accepted")
	}
}
