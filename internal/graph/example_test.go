package graph_test

import (
	"fmt"

	"expandergap/internal/graph"
)

func ExampleBuilder() {
	b := graph.NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 0)
	g := b.Graph()
	fmt.Println(g)
	fmt.Println("diameter:", g.Diameter())
	// Output:
	// Graph(n=4, m=4, Δ=2)
	// diameter: 2
}

func ExampleGrid() {
	g := graph.Grid(3, 4)
	fmt.Println("vertices:", g.N(), "edges:", g.M())
	fmt.Println("connected:", g.Connected())
	// Output:
	// vertices: 12 edges: 17
	// connected: true
}

func ExampleGraph_BiconnectedComponents() {
	// Two triangles sharing vertex 2.
	b := graph.NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(2, 4)
	g := b.Graph()
	fmt.Println("blocks:", len(g.BiconnectedComponents()))
	fmt.Println("articulation points:", g.ArticulationPoints())
	// Output:
	// blocks: 2
	// articulation points: [2]
}

func ExampleGraph_Degeneracy() {
	d, _ := graph.Complete(5).Degeneracy()
	fmt.Println("K5 degeneracy:", d)
	// Output:
	// K5 degeneracy: 4
}
