package graph

import (
	"fmt"
	"math/rand"
)

// This file contains the workload generators used throughout the experiment
// suite. All generators are deterministic given their *rand.Rand (callers
// seed explicitly), and every family is chosen to exercise a graph class the
// paper talks about: planar graphs (grids, triangulations, outerplanar),
// bounded-genus graphs (tori), bounded-treewidth graphs (k-trees), trees,
// and non-minor-free controls (cliques, hypercubes, expanders via G(n,p)).

// Path returns the path graph on n vertices.
func Path(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i+1 < n; i++ {
		b.AddEdge(i, i+1)
	}
	return b.Graph()
}

// Cycle returns the cycle graph on n >= 3 vertices.
func Cycle(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: cycle needs n >= 3, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	return b.Graph()
}

// Complete returns the complete graph K_n.
func Complete(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(i, j)
		}
	}
	return b.Graph()
}

// CompleteBipartite returns K_{a,b} with parts {0..a-1} and {a..a+b-1}.
func CompleteBipartite(a, b int) *Graph {
	bld := NewBuilder(a + b)
	for i := 0; i < a; i++ {
		for j := 0; j < b; j++ {
			bld.AddEdge(i, a+j)
		}
	}
	return bld.Graph()
}

// Star returns the star K_{1,k} with center 0.
func Star(k int) *Graph {
	b := NewBuilder(k + 1)
	for i := 1; i <= k; i++ {
		b.AddEdge(0, i)
	}
	return b.Graph()
}

// Grid returns the rows×cols grid graph (planar). Vertex (r, c) has ID
// r*cols + c.
func Grid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
		}
	}
	return b.Graph()
}

// Torus returns the rows×cols toroidal grid (genus 1, K5-minor-free for
// large enough grids is false in general, but it is bounded-genus and hence
// H-minor-free for a suitable fixed H). Requires rows, cols >= 3 to stay
// simple.
func Torus(rows, cols int) *Graph {
	if rows < 3 || cols < 3 {
		panic(fmt.Sprintf("graph: torus needs rows, cols >= 3, got %dx%d", rows, cols))
	}
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			b.AddEdge(id(r, c), id(r, (c+1)%cols))
			b.AddEdge(id(r, c), id((r+1)%rows, c))
		}
	}
	return b.Graph()
}

// TriangulatedGrid returns the rows×cols grid with one diagonal added in
// every unit square, a denser planar family than Grid.
func TriangulatedGrid(rows, cols int) *Graph {
	b := NewBuilder(rows * cols)
	id := func(r, c int) int { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				b.AddEdge(id(r, c), id(r, c+1))
			}
			if r+1 < rows {
				b.AddEdge(id(r, c), id(r+1, c))
			}
			if r+1 < rows && c+1 < cols {
				b.AddEdge(id(r, c), id(r+1, c+1))
			}
		}
	}
	return b.Graph()
}

// Wheel returns the wheel graph W_n: a cycle on n >= 3 rim vertices
// (IDs 1..n) plus a hub (ID 0) adjacent to every rim vertex. Planar, with a
// Θ(n)-degree hub — a stress case for degree-sensitive routines.
func Wheel(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: wheel needs n >= 3 rim vertices, got %d", n))
	}
	b := NewBuilder(n + 1)
	for i := 1; i <= n; i++ {
		b.AddEdge(0, i)
		next := i + 1
		if next > n {
			next = 1
		}
		b.AddEdge(i, next)
	}
	return b.Graph()
}

// Prism returns the prism over an n-cycle (the circular ladder CL_n): two
// concentric n-cycles joined by rungs. Planar and 3-regular.
func Prism(n int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: prism needs n >= 3, got %d", n))
	}
	b := NewBuilder(2 * n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
		b.AddEdge(n+i, n+(i+1)%n)
		b.AddEdge(i, n+i)
	}
	return b.Graph()
}

// Hypercube returns the d-dimensional hypercube on 2^d vertices. Hypercubes
// are the paper's canonical example (§2) of graphs whose expander
// decompositions need φ = O(1/log n); they are a control (not minor-free).
func Hypercube(d int) *Graph {
	n := 1 << d
	b := NewBuilder(n)
	for v := 0; v < n; v++ {
		for bit := 0; bit < d; bit++ {
			u := v ^ (1 << bit)
			if u > v {
				b.AddEdge(v, u)
			}
		}
	}
	return b.Graph()
}

// DoubleTorus returns a genus-2 surface graph: two side×side toroidal grids
// joined by two "handle" edges. Bounded-genus graphs are among the paper's
// headline minor-closed classes beyond planarity.
func DoubleTorus(side int) *Graph {
	a := Torus(side, side)
	n := 2 * a.N()
	b := NewBuilder(n)
	for _, e := range a.Edges() {
		b.AddEdge(e.U, e.V)
		b.AddEdge(e.U+a.N(), e.V+a.N())
	}
	b.AddEdge(0, a.N())
	b.AddEdge(side-1, a.N()+side-1)
	return b.Graph()
}

// RandomTree returns a uniform-attachment random tree on n vertices: vertex i
// attaches to a uniformly random earlier vertex.
func RandomTree(n int, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(i, rng.Intn(i))
	}
	return b.Graph()
}

// BalancedBinaryTree returns a complete binary tree on n vertices (vertex i
// has children 2i+1 and 2i+2 when in range).
func BalancedBinaryTree(n int) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		if l := 2*i + 1; l < n {
			b.AddEdge(i, l)
		}
		if r := 2*i + 2; r < n {
			b.AddEdge(i, r)
		}
	}
	return b.Graph()
}

// RandomMaximalPlanar returns a random maximal planar graph (triangulation)
// on n >= 3 vertices, built by repeatedly inserting a new vertex into a
// uniformly random face of the current triangulation and connecting it to
// the face's three corners. The result is planar by construction with
// exactly 3n-6 edges.
func RandomMaximalPlanar(n int, rng *rand.Rand) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: maximal planar needs n >= 3, got %d", n))
	}
	b := NewBuilder(n)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	// Faces of the triangulation, including the outer face {0,1,2}.
	faces := [][3]int{{0, 1, 2}, {0, 1, 2}}
	for v := 3; v < n; v++ {
		fi := rng.Intn(len(faces))
		f := faces[fi]
		b.AddEdge(v, f[0])
		b.AddEdge(v, f[1])
		b.AddEdge(v, f[2])
		// Replace face f with the three new faces.
		faces[fi] = [3]int{v, f[0], f[1]}
		faces = append(faces, [3]int{v, f[0], f[2]}, [3]int{v, f[1], f[2]})
	}
	return b.Graph()
}

// RandomPlanar returns a random planar graph on n vertices with approximately
// the given edge fraction of a maximal triangulation: it builds a random
// triangulation and keeps each edge independently with probability keep
// (clamped to [0, 1]), always keeping a spanning structure connected by
// re-adding deleted edges as needed.
func RandomPlanar(n int, keep float64, rng *rand.Rand) *Graph {
	if keep < 0 {
		keep = 0
	}
	if keep > 1 {
		keep = 1
	}
	tri := RandomMaximalPlanar(n, rng)
	b := NewBuilder(n)
	type cand struct{ e Edge }
	var dropped []cand
	for _, e := range tri.Edges() {
		if rng.Float64() < keep {
			b.AddEdge(e.U, e.V)
		} else {
			dropped = append(dropped, cand{e})
		}
	}
	// Reconnect using dropped edges (they are all planar-safe).
	uf := NewUnionFind(n)
	for _, e := range b.Graph().Edges() {
		uf.Union(e.U, e.V)
	}
	rng.Shuffle(len(dropped), func(i, j int) { dropped[i], dropped[j] = dropped[j], dropped[i] })
	for _, c := range dropped {
		if uf.Sets() == 1 {
			break
		}
		if uf.Union(c.e.U, c.e.V) {
			b.AddEdge(c.e.U, c.e.V)
		}
	}
	return b.Graph()
}

// RandomOuterplanar returns a random maximal outerplanar graph on n >= 3
// vertices: the cycle 0..n-1 plus a random triangulation of the polygon's
// interior (non-crossing chords).
func RandomOuterplanar(n int, rng *rand.Rand) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: outerplanar needs n >= 3, got %d", n))
	}
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(i, (i+1)%n)
	}
	// Triangulate polygon [lo..hi] with random non-crossing chords.
	var tri func(poly []int)
	tri = func(poly []int) {
		if len(poly) < 3 {
			return
		}
		if len(poly) == 3 {
			return
		}
		// Pick a random ear apex strictly between the fixed base edge
		// (poly[0], poly[last]).
		k := 1 + rng.Intn(len(poly)-2)
		if k != 1 {
			b.AddEdge(poly[0], poly[k])
		}
		if k != len(poly)-2 {
			b.AddEdge(poly[k], poly[len(poly)-1])
		}
		tri(poly[:k+1])
		tri(poly[k:])
	}
	poly := make([]int, n)
	for i := range poly {
		poly[i] = i
	}
	tri(poly)
	return b.Graph()
}

// KTree returns a random k-tree on n vertices (treewidth exactly k for
// n > k): start from K_{k+1} and repeatedly attach a new vertex to a random
// existing k-clique. Requires n >= k+1.
func KTree(n, k int, rng *rand.Rand) *Graph {
	if n < k+1 {
		panic(fmt.Sprintf("graph: k-tree needs n >= k+1, got n=%d k=%d", n, k))
	}
	b := NewBuilder(n)
	cliques := make([][]int, 0, n)
	base := make([]int, 0, k+1)
	for i := 0; i <= k; i++ {
		for j := i + 1; j <= k; j++ {
			b.AddEdge(i, j)
		}
		base = append(base, i)
	}
	// All k-subsets of the base clique are attachable k-cliques.
	for drop := 0; drop <= k; drop++ {
		c := make([]int, 0, k)
		for _, v := range base {
			if v != drop {
				c = append(c, v)
			}
		}
		cliques = append(cliques, c)
	}
	for v := k + 1; v < n; v++ {
		c := cliques[rng.Intn(len(cliques))]
		for _, u := range c {
			b.AddEdge(v, u)
		}
		// New k-cliques: v together with each (k-1)-subset of c.
		for drop := 0; drop < len(c); drop++ {
			nc := make([]int, 0, k)
			nc = append(nc, v)
			for i, u := range c {
				if i != drop {
					nc = append(nc, u)
				}
			}
			cliques = append(cliques, nc)
		}
	}
	return b.Graph()
}

// ErdosRenyi returns G(n, p). Not minor-free; used as a control and as an
// expander source for routing tests.
func ErdosRenyi(n int, p float64, rng *rand.Rand) *Graph {
	b := NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				b.AddEdge(i, j)
			}
		}
	}
	return b.Graph()
}

// Subdivide returns g with every edge subdivided k times (k new degree-2
// vertices per edge). Subdividing preserves planarity and topological-minor
// containment, so subdivided K5/K3,3 are the canonical non-planar tests.
func Subdivide(g *Graph, k int) *Graph {
	if k <= 0 {
		return g.Clone()
	}
	n := g.N() + g.M()*k
	b := NewBuilder(n)
	next := g.N()
	for _, e := range g.Edges() {
		prev := e.U
		for i := 0; i < k; i++ {
			b.AddEdge(prev, next)
			prev = next
			next++
		}
		b.AddEdge(prev, e.V)
	}
	return b.Graph()
}

// Disjoint returns the disjoint union of the given graphs. Vertices are
// renumbered consecutively in argument order. Weights and signs are
// preserved.
func Disjoint(gs ...*Graph) *Graph {
	total := 0
	for _, g := range gs {
		total += g.N()
	}
	b := NewBuilder(total)
	off := 0
	for _, g := range gs {
		for idx, e := range g.Edges() {
			switch {
			case g.Weighted():
				b.AddWeightedEdge(e.U+off, e.V+off, g.Weight(idx))
			case g.Signed():
				b.AddSignedEdge(e.U+off, e.V+off, g.Sign(idx))
			default:
				b.AddEdge(e.U+off, e.V+off)
			}
		}
		off += g.N()
	}
	return b.Graph()
}

// AttachPendantStars returns g with a (size)-star attached at each vertex in
// at. Stars are pendant trees, so planarity and minor-freeness are preserved.
// Used to exercise the 2-star elimination preprocessing of §3.2.
func AttachPendantStars(g *Graph, at []int, size int) *Graph {
	n := g.N() + len(at)*size
	b := NewBuilder(n)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	next := g.N()
	for _, v := range at {
		for i := 0; i < size; i++ {
			b.AddEdge(v, next)
			next++
		}
	}
	return b.Graph()
}

// WithRandomWeights returns a copy of g with integer edge weights drawn
// uniformly from [1, maxW].
func WithRandomWeights(g *Graph, maxW int64, rng *rand.Rand) *Graph {
	if maxW < 1 {
		panic(fmt.Sprintf("graph: maxW must be >= 1, got %d", maxW))
	}
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddWeightedEdge(e.U, e.V, 1+rng.Int63n(maxW))
	}
	return b.Graph()
}

// WithRandomSigns returns a copy of g where each edge is labeled + with
// probability pPlus and - otherwise.
func WithRandomSigns(g *Graph, pPlus float64, rng *rand.Rand) *Graph {
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		s := int8(-1)
		if rng.Float64() < pPlus {
			s = 1
		}
		b.AddSignedEdge(e.U, e.V, s)
	}
	return b.Graph()
}

// WithPlantedSigns returns a copy of g signed according to a planted
// partition: vertices are assigned to blocks of the given size (consecutive
// IDs); intra-block edges are labeled +, inter-block edges are labeled -,
// and then each label is flipped independently with probability noise. The
// planted clustering is returned as the block assignment.
func WithPlantedSigns(g *Graph, blockSize int, noise float64, rng *rand.Rand) (*Graph, []int) {
	if blockSize < 1 {
		panic(fmt.Sprintf("graph: blockSize must be >= 1, got %d", blockSize))
	}
	block := make([]int, g.N())
	for v := range block {
		block[v] = v / blockSize
	}
	b := NewBuilder(g.N())
	for _, e := range g.Edges() {
		s := int8(-1)
		if block[e.U] == block[e.V] {
			s = 1
		}
		if rng.Float64() < noise {
			s = -s
		}
		b.AddSignedEdge(e.U, e.V, s)
	}
	return b.Graph(), block
}
