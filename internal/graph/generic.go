package graph

// This file holds the traversal and aggregate helpers that run on any G —
// a materialized *Graph or a zero-copy *View — so the decomposition stack
// can recurse on views without materializing a subgraph per level. Outputs
// are deterministic and identical to the corresponding *Graph methods:
// neighbor iteration is ascending, components are ordered by smallest
// contained vertex, and ties break on vertex ID.

// BFSOf runs a breadth-first search from src and returns the distance slice
// (dist[v] == -1 for unreachable v) and the parent slice (parent[src] == src,
// parent[v] == -1 for unreachable v).
func BFSOf(g G, src int) (dist, parent []int) {
	n := g.N()
	dist = make([]int, n)
	parent = make([]int, n)
	for i := range dist {
		dist[i] = -1
		parent[i] = -1
	}
	dist[src] = 0
	parent[src] = src
	// Head-index queue sized for the worst case (every vertex is enqueued at
	// most once), so the append below never reallocates. The visitor closure
	// is hoisted out of the loop: recreating it per vertex would
	// heap-allocate on every interface call.
	queue := make([]int, 1, n)
	queue[0] = src
	head := 0
	cur := src
	visit := func(u, _ int) {
		if dist[u] == -1 {
			dist[u] = dist[cur] + 1
			parent[u] = cur
			queue = append(queue, u)
		}
	}
	for head < len(queue) {
		cur = queue[head]
		head++
		g.ForEachNeighbor(cur, visit)
	}
	return dist, parent
}

// EccentricityOf returns the maximum finite BFS distance from src within its
// connected component.
func EccentricityOf(g G, src int) int {
	dist, _ := BFSOf(g, src)
	ecc := 0
	for _, d := range dist {
		if d > ecc {
			ecc = d
		}
	}
	return ecc
}

// DiameterOf returns the exact diameter of g (the maximum eccentricity over
// all vertices), treating each connected component separately and returning
// the largest value. It runs a BFS per vertex, so it is intended for the
// modest graph sizes used in experiments. An empty graph has diameter 0.
func DiameterOf(g G) int {
	diam := 0
	for v := 0; v < g.N(); v++ {
		if ecc := EccentricityOf(g, v); ecc > diam {
			diam = ecc
		}
	}
	return diam
}

// ConnectedOf reports whether g is connected. The empty graph and singletons
// are connected.
func ConnectedOf(g G) bool {
	if g.N() <= 1 {
		return true
	}
	dist, _ := BFSOf(g, 0)
	for _, d := range dist {
		if d == -1 {
			return false
		}
	}
	return true
}

// ComponentsOf returns the connected components of g as slices of vertex IDs
// in ascending order, ordered by their smallest vertex.
func ComponentsOf(g G) [][]int {
	n := g.N()
	comp := make([]int, n)
	for i := range comp {
		comp[i] = -1
	}
	var comps [][]int
	// As in BFSOf: a head-index queue with worst-case capacity plus a
	// hoisted visitor, so component discovery allocates O(components), not
	// O(vertices).
	queue := make([]int, 0, n)
	head := 0
	id := 0
	visit := func(w, _ int) {
		if comp[w] == -1 {
			comp[w] = id
			queue = append(queue, w)
		}
	}
	for v := 0; v < n; v++ {
		if comp[v] != -1 {
			continue
		}
		id = len(comps)
		queue = append(queue[:0], v)
		head = 0
		comp[v] = id
		var members []int
		for head < len(queue) {
			u := queue[head]
			head++
			members = append(members, u)
			g.ForEachNeighbor(u, visit)
		}
		comps = append(comps, members)
	}
	for _, c := range comps {
		sortInts(c)
	}
	return comps
}

// EdgesOf returns a copy of g's edge list in canonical index order.
func EdgesOf(g G) []Edge {
	out := make([]Edge, g.M())
	for i := range out {
		out[i] = g.EdgeAt(i)
	}
	return out
}

// CutEdgesOf returns the indices of edges with exactly one endpoint in s, in
// ascending index order.
func CutEdgesOf(g G, s map[int]bool) []int {
	var out []int
	for idx, m := 0, g.M(); idx < m; idx++ {
		e := g.EdgeAt(idx)
		if s[e.U] != s[e.V] {
			out = append(out, idx)
		}
	}
	return out
}

// VolumeOf returns the sum of degrees of the vertices in s.
func VolumeOf(g G, s []int) int {
	vol := 0
	for _, v := range s {
		vol += g.Degree(v)
	}
	return vol
}

// MaxDegreeOf returns the maximum vertex degree of g, using the O(1) cached
// value when the implementation exposes one (*Graph and *View both do).
func MaxDegreeOf(g G) int {
	if m, ok := g.(interface{ MaxDegree() int }); ok {
		return m.MaxDegree()
	}
	max := 0
	for v := 0; v < g.N(); v++ {
		if d := g.Degree(v); d > max {
			max = d
		}
	}
	return max
}

// WeightedOf reports whether g carries edge weights, when the implementation
// exposes it (*Graph and *View both do; unknown implementations report
// false).
func WeightedOf(g G) bool {
	if w, ok := g.(interface{ Weighted() bool }); ok {
		return w.Weighted()
	}
	return false
}

// SignedOf reports whether g carries edge signs, with the same fallback as
// WeightedOf.
func SignedOf(g G) bool {
	if s, ok := g.(interface{ Signed() bool }); ok {
		return s.Signed()
	}
	return false
}
