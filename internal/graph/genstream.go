package graph

import (
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
)

// Streaming generators for huge inputs. The Builder path buffers every edge
// in a pending slice and sorts it (O(m) extra memory, O(m log m) time); the
// generators here emit edges already in canonical order — or as packed
// uint64 keys whose numeric order IS the canonical order — and assemble the
// CSR arrays directly, in parallel. Their outputs are bit-identical to what
// the equivalent Builder construction produces, so every consumer downstream
// (views, decompositions, the simulator) sees the same graph either way.

// splitmix64 advances *s and returns the next value of the splitmix64
// sequence. Each generator row gets its own arithmetic-progression start
// state, which is exactly the stream structure splitmix64 is designed for;
// per-row streams are what make the parallel generators produce identical
// output for every worker count.
func splitmix64(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// rowFloat64 returns a uniform float64 in the open interval (0, 1).
func rowFloat64(s *uint64) float64 {
	return (float64(splitmix64(s)>>11) + 0.5) * (1.0 / (1 << 53))
}

func normWorkers(workers int) int {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return workers
}

// erRow calls emit(j) for every sampled neighbor j > i of row i, using
// geometric skip sampling: instead of flipping a coin per candidate pair, it
// jumps straight to the next success, so a row costs O(degree) draws rather
// than O(n). invLog is 1/log(1-p). The sequence depends only on (seed, i),
// never on which worker runs the row or in which pass.
func erRow(i, n int, invLog float64, seed int64, emit func(j int)) {
	state := uint64(seed) + 0x9e3779b97f4a7c15*uint64(i+1)
	j := i
	for {
		gap := math.Floor(math.Log(rowFloat64(&state)) * invLog)
		if gap >= float64(n-j) { // also catches +Inf
			return
		}
		j += 1 + int(gap)
		if j >= n {
			return
		}
		emit(j)
	}
}

// ErdosRenyiStream samples G(n, p) directly into CSR form. Unlike ErdosRenyi
// it never materializes a pending edge buffer and costs O(m) draws instead of
// O(n^2): pass one counts each row's successes, pass two replays the same
// per-row random streams to place edges at their final offsets. Rows are
// distributed over workers (0 means GOMAXPROCS), and because every row owns
// an independent stream keyed by (seed, row), the result is a deterministic
// function of (n, p, seed) alone — any worker count builds the same graph.
//
// The sampler consumes a different random stream than ErdosRenyi's rand.Rand,
// so the two functions produce different (equally distributed) graphs.
func ErdosRenyiStream(n int, p float64, seed int64, workers int) *Graph {
	if n < 0 || n > math.MaxInt32 {
		panic(fmt.Sprintf("graph: n=%d outside the CSR int32 index range", n))
	}
	workers = normWorkers(workers)
	if p >= 1 {
		return Complete(n)
	}
	g := &Graph{n: n}
	g.adjOff = make([]int32, n+1)
	g.edges = []Edge{}
	if p <= 0 || n < 2 {
		return g
	}
	invLog := 1 / math.Log1p(-p)

	// Pass 1: count. rowCount[i] is owned by row i's worker; deg sees
	// scattered increments from lower rows, so it is updated atomically.
	rowCount := make([]int32, n)
	deg := make([]int32, n)
	parallelRows(n, workers, func(i int) {
		var k int32
		erRow(i, n, invLog, seed, func(j int) {
			k++
			atomic.AddInt32(&deg[j], 1)
		})
		rowCount[i] = k
		atomic.AddInt32(&deg[i], k)
	})

	var m int64
	rowStart := make([]int64, n+1)
	for i := 0; i < n; i++ {
		rowStart[i] = m
		m += int64(rowCount[i])
	}
	rowStart[n] = m
	if m > math.MaxInt32/2 {
		panic(fmt.Sprintf("graph: m=%d exceeds the CSR int32 index range", m))
	}
	for v := 0; v < n; v++ {
		g.adjOff[v+1] = g.adjOff[v] + deg[v]
	}

	g.edges = make([]Edge, m)
	g.adjTo = make([]int32, 2*m)
	g.adjIdx = make([]int32, 2*m)
	cursor := make([]int32, n)
	copy(cursor, g.adjOff[:n])

	// Pass 2: replay the identical streams and place every edge at its
	// final index. Slots within a row are claimed atomically, then pass 3
	// restores the canonical neighbor-sorted row order.
	parallelRows(n, workers, func(i int) {
		idx := rowStart[i]
		erRow(i, n, invLog, seed, func(j int) {
			placeHalfEdges(g, cursor, i, j, int32(idx))
			g.edges[idx] = Edge{U: i, V: j}
			idx++
		})
	})
	parallelRows(n, workers, func(v int) {
		lo, hi := g.adjOff[v], g.adjOff[v+1]
		sortRowAny(g.adjTo[lo:hi], g.adjIdx[lo:hi])
	})
	g.finishStats()
	return g
}

// placeHalfEdges claims one adjacency slot in row u and one in row v.
func placeHalfEdges(g *Graph, cursor []int32, u, v int, idx int32) {
	su := atomic.AddInt32(&cursor[u], 1) - 1
	sv := atomic.AddInt32(&cursor[v], 1) - 1
	g.adjTo[su], g.adjIdx[su] = int32(v), idx
	g.adjTo[sv], g.adjIdx[sv] = int32(u), idx
}

// parallelRows runs fn(i) for every i in [0, n), fanning blocks of rows out
// to the given number of workers. fn must be safe to call concurrently for
// distinct i.
func parallelRows(n, workers int, fn func(i int)) {
	const block = 1024
	if workers <= 1 || n <= block {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				lo := int(atomic.AddInt64(&next, block)) - block
				if lo >= n {
					return
				}
				hi := min(lo+block, n)
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// sortRowAny sorts an adjacency row by neighbor ID, keeping edge indices
// paired. Small rows use the shared insertion sort; large rows (hubs of
// triangulations, wheels) would be quadratic there, so they fall back to a
// comparison sort.
func sortRowAny(to, idx []int32) {
	if len(to) <= 32 {
		sortRow(to, idx)
		return
	}
	sort.Sort(&pairedRow{to: to, idx: idx})
}

type pairedRow struct{ to, idx []int32 }

func (p *pairedRow) Len() int           { return len(p.to) }
func (p *pairedRow) Less(i, j int) bool { return p.to[i] < p.to[j] }
func (p *pairedRow) Swap(i, j int) {
	p.to[i], p.to[j] = p.to[j], p.to[i]
	p.idx[i], p.idx[j] = p.idx[j], p.idx[i]
}

// packEdge encodes a canonical edge as a uint64 whose numeric order is the
// canonical (U, V) order.
func packEdge(u, v int) uint64 { return uint64(u)<<32 | uint64(v) }

// fromPackedEdges assembles a CSR graph from packed canonical edges (u<<32|v
// with u < v). The slice is sorted in place (in parallel), validated, and
// placed with the same parallel scheme as ErdosRenyiStream. The result is
// bit-identical to feeding the same edges through a Builder.
func fromPackedEdges(n int, packed []uint64, workers int) (*Graph, error) {
	if n < 0 || n > math.MaxInt32 {
		return nil, fmt.Errorf("graph: n=%d outside the CSR int32 index range", n)
	}
	if len(packed) > math.MaxInt32/2 {
		return nil, fmt.Errorf("graph: m=%d exceeds the CSR int32 index range", len(packed))
	}
	workers = normWorkers(workers)
	parallelSortUint64(packed, workers)

	g := &Graph{n: n}
	g.adjOff = make([]int32, n+1)
	g.edges = make([]Edge, len(packed))
	m := len(packed)
	if m > 0 {
		g.adjTo = make([]int32, 2*m)
		g.adjIdx = make([]int32, 2*m)
	}

	deg := make([]int32, n+1) // one slack slot so n=0 stays allocation-safe
	var firstErr atomic.Value
	parallelEdgeRanges(m, workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			u, v := int(packed[k]>>32), int(packed[k]&0xffffffff)
			if u >= v || v >= n {
				firstErr.CompareAndSwap(nil, fmt.Errorf("graph: invalid packed edge {%d,%d} for n=%d", u, v, n))
				return
			}
			if k > 0 && packed[k] == packed[k-1] {
				firstErr.CompareAndSwap(nil, fmt.Errorf("graph: duplicate edge {%d,%d}", u, v))
				return
			}
			atomic.AddInt32(&deg[u], 1)
			atomic.AddInt32(&deg[v], 1)
		}
	})
	if err, _ := firstErr.Load().(error); err != nil {
		return nil, err
	}
	for v := 0; v < n; v++ {
		g.adjOff[v+1] = g.adjOff[v] + deg[v]
	}
	cursor := make([]int32, n)
	copy(cursor, g.adjOff[:n])
	parallelEdgeRanges(m, workers, func(lo, hi int) {
		for k := lo; k < hi; k++ {
			u, v := int(packed[k]>>32), int(packed[k]&0xffffffff)
			placeHalfEdges(g, cursor, u, v, int32(k))
			g.edges[k] = Edge{U: u, V: v}
		}
	})
	parallelRows(n, workers, func(v int) {
		lo, hi := g.adjOff[v], g.adjOff[v+1]
		sortRowAny(g.adjTo[lo:hi], g.adjIdx[lo:hi])
	})
	g.finishStats()
	return g, nil
}

// parallelEdgeRanges splits [0, m) into contiguous per-worker ranges.
func parallelEdgeRanges(m, workers int, fn func(lo, hi int)) {
	if workers <= 1 || m < 1<<14 {
		fn(0, m)
		return
	}
	var wg sync.WaitGroup
	per := (m + workers - 1) / workers
	for lo := 0; lo < m; lo += per {
		hi := min(lo+per, m)
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// parallelSortUint64 sorts s ascending: per-worker chunks sorted
// concurrently, then pairwise merged.
func parallelSortUint64(s []uint64, workers int) {
	if workers <= 1 || len(s) < 1<<16 {
		sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
		return
	}
	per := (len(s) + workers - 1) / workers
	var chunks [][]uint64
	var wg sync.WaitGroup
	for lo := 0; lo < len(s); lo += per {
		hi := min(lo+per, len(s))
		c := s[lo:hi]
		chunks = append(chunks, c)
		wg.Add(1)
		go func(c []uint64) {
			defer wg.Done()
			sort.Slice(c, func(i, j int) bool { return c[i] < c[j] })
		}(c)
	}
	wg.Wait()
	buf := make([]uint64, len(s))
	for len(chunks) > 1 {
		var mwg sync.WaitGroup
		merged := make([][]uint64, 0, (len(chunks)+1)/2)
		pos := 0
		for i := 0; i < len(chunks); i += 2 {
			if i+1 == len(chunks) {
				dst := buf[pos : pos+len(chunks[i])]
				copy(dst, chunks[i])
				merged = append(merged, dst)
				pos += len(dst)
				continue
			}
			a, b := chunks[i], chunks[i+1]
			dst := buf[pos : pos+len(a)+len(b)]
			pos += len(dst)
			merged = append(merged, dst)
			mwg.Add(1)
			go func(a, b, dst []uint64) {
				defer mwg.Done()
				mergeUint64(a, b, dst)
			}(a, b, dst)
		}
		mwg.Wait()
		// Copy the merged level back into s so the next level (and the
		// final result) lives in the caller's slice.
		pos = 0
		for i := range merged {
			copy(s[pos:pos+len(merged[i])], merged[i])
			merged[i] = s[pos : pos+len(merged[i])]
			pos += len(merged[i])
		}
		chunks = merged
	}
}

func mergeUint64(a, b, dst []uint64) {
	i, j, k := 0, 0, 0
	for i < len(a) && j < len(b) {
		if a[i] <= b[j] {
			dst[k] = a[i]
			i++
		} else {
			dst[k] = b[j]
			j++
		}
		k++
	}
	copy(dst[k:], a[i:])
	copy(dst[k+len(a)-i:], b[j:])
}

// RandomMaximalPlanarStream is RandomMaximalPlanar without the Builder: it
// consumes rng in the exact same call sequence (one Intn per inserted
// vertex), so for equal seeds it returns the identical graph, but it
// accumulates packed edges and assembles the CSR arrays in parallel. Use it
// when n is large enough that the pending-buffer sort dominates.
func RandomMaximalPlanarStream(n int, rng *rand.Rand, workers int) *Graph {
	if n < 3 {
		panic(fmt.Sprintf("graph: maximal planar needs n >= 3, got %d", n))
	}
	packed := make([]uint64, 0, 3*n-6)
	packed = append(packed, packEdge(0, 1), packEdge(1, 2), packEdge(0, 2))
	faces := make([][3]int, 2, 2*n)
	faces[0] = [3]int{0, 1, 2}
	faces[1] = [3]int{0, 1, 2}
	for v := 3; v < n; v++ {
		fi := rng.Intn(len(faces))
		f := faces[fi]
		// v is larger than every existing vertex, so {f[k], v} is canonical.
		packed = append(packed, packEdge(f[0], v), packEdge(f[1], v), packEdge(f[2], v))
		faces[fi] = [3]int{v, f[0], f[1]}
		faces = append(faces, [3]int{v, f[0], f[2]}, [3]int{v, f[1], f[2]})
	}
	g, err := fromPackedEdges(n, packed, workers)
	if err != nil {
		panic(err) // unreachable: the construction emits distinct in-range edges
	}
	return g
}

// RandomPlanarStream is RandomPlanar on the streaming substrate: identical
// rng consumption (triangulation insertions, one Float64 per edge, one
// Shuffle, union-find repair in the same order), identical output for equal
// seeds, but no intermediate Builder graphs.
func RandomPlanarStream(n int, keep float64, rng *rand.Rand, workers int) *Graph {
	if keep < 0 {
		keep = 0
	}
	if keep > 1 {
		keep = 1
	}
	tri := RandomMaximalPlanarStream(n, rng, workers)
	kept := make([]uint64, 0, tri.M())
	var dropped []Edge
	for _, e := range tri.Edges() {
		if rng.Float64() < keep {
			kept = append(kept, packEdge(e.U, e.V))
		} else {
			dropped = append(dropped, e)
		}
	}
	// Reconnect with dropped edges. Kept edges are already canonical-order,
	// matching the Edges() iteration RandomPlanar unions over.
	uf := NewUnionFind(n)
	for _, p := range kept {
		uf.Union(int(p>>32), int(p&0xffffffff))
	}
	rng.Shuffle(len(dropped), func(i, j int) { dropped[i], dropped[j] = dropped[j], dropped[i] })
	for _, e := range dropped {
		if uf.Sets() == 1 {
			break
		}
		if uf.Union(e.U, e.V) {
			kept = append(kept, packEdge(e.U, e.V))
		}
	}
	g, err := fromPackedEdges(n, kept, workers)
	if err != nil {
		panic(err) // unreachable: kept edges are distinct and in range
	}
	return g
}
