package graph

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// TestFromPackedEdgesMatchesBuilder feeds identical edge sets through the
// packed-parallel assembler and the Builder and requires bit-identical CSR
// arrays, across worker counts.
func TestFromPackedEdgesMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	graphs := map[string]*Graph{
		"grid":   Grid(9, 7),
		"planar": RandomMaximalPlanar(150, rng),
		"wheel":  Wheel(200), // one hub row larger than the insertion-sort cutoff
		"er":     ErdosRenyi(80, 0.2, rng),
		"empty":  NewBuilder(4).Graph(),
		"none":   NewBuilder(0).Graph(),
	}
	for name, g := range graphs {
		for _, workers := range []int{1, 3, 8} {
			packed := make([]uint64, g.M())
			for i, e := range g.Edges() {
				packed[i] = packEdge(e.U, e.V)
			}
			// Scramble so the assembler proves its sort.
			rng.Shuffle(len(packed), func(i, j int) { packed[i], packed[j] = packed[j], packed[i] })
			got, err := fromPackedEdges(g.N(), packed, workers)
			if err != nil {
				t.Fatalf("%s/workers=%d: %v", name, workers, err)
			}
			requireIdenticalGraphs(t, got, g)
		}
	}
}

func TestFromPackedEdgesErrors(t *testing.T) {
	if _, err := fromPackedEdges(3, []uint64{packEdge(0, 1), packEdge(0, 1)}, 1); err == nil {
		t.Fatal("expected duplicate-edge error")
	}
	if _, err := fromPackedEdges(3, []uint64{packEdge(0, 5)}, 1); err == nil {
		t.Fatal("expected out-of-range error")
	}
	if _, err := fromPackedEdges(3, []uint64{packEdge(2, 1)}, 1); err == nil {
		t.Fatal("expected non-canonical error")
	}
}

// TestErdosRenyiStreamDeterministic: the sampled graph is a function of
// (n, p, seed) only — every worker count builds the identical object.
func TestErdosRenyiStreamDeterministic(t *testing.T) {
	base := ErdosRenyiStream(500, 0.02, 42, 1)
	for _, workers := range []int{2, 4, 7} {
		requireIdenticalGraphs(t, ErdosRenyiStream(500, 0.02, 42, workers), base)
	}
	other := ErdosRenyiStream(500, 0.02, 43, 2)
	if other.M() == base.M() {
		same := true
		for i := 0; i < base.M(); i++ {
			if base.EdgeAt(i) != other.EdgeAt(i) {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced the same graph")
		}
	}
}

// TestErdosRenyiStreamDistribution sanity-checks the skip sampler: the edge
// count lands near n(n-1)/2 * p, and edges are canonical and deduplicated.
func TestErdosRenyiStreamDistribution(t *testing.T) {
	n, p := 400, 0.05
	g := ErdosRenyiStream(n, p, 7, 4)
	mean := float64(n) * float64(n-1) / 2 * p
	sd := math.Sqrt(mean * (1 - p))
	if got := float64(g.M()); math.Abs(got-mean) > 6*sd {
		t.Fatalf("edge count %0.f implausibly far from mean %.0f (sd %.1f)", got, mean, sd)
	}
	edges := g.Edges()
	if !sort.SliceIsSorted(edges, func(i, j int) bool {
		if edges[i].U != edges[j].U {
			return edges[i].U < edges[j].U
		}
		return edges[i].V < edges[j].V
	}) {
		t.Fatal("edges not in canonical order")
	}
	for i := 1; i < len(edges); i++ {
		if edges[i] == edges[i-1] {
			t.Fatalf("duplicate edge %v", edges[i])
		}
	}
}

func TestErdosRenyiStreamEdgeCases(t *testing.T) {
	if g := ErdosRenyiStream(10, 0, 1, 2); g.M() != 0 || g.N() != 10 {
		t.Fatal("p=0 must give an empty graph")
	}
	if g := ErdosRenyiStream(6, 1, 1, 2); g.M() != 15 {
		t.Fatalf("p=1 must give K_6, got m=%d", g.M())
	}
	if g := ErdosRenyiStream(0, 0.5, 1, 2); g.N() != 0 || g.M() != 0 {
		t.Fatal("n=0 must give the empty graph")
	}
	requireIdenticalGraphs(t, ErdosRenyiStream(6, 1, 1, 2), Complete(6))
}

// TestRandomMaximalPlanarStreamMatches: same seed, same graph as the Builder
// implementation — the streaming path replays the identical rng sequence.
func TestRandomMaximalPlanarStreamMatches(t *testing.T) {
	for _, n := range []int{3, 4, 50, 700} {
		for _, workers := range []int{1, 4} {
			want := RandomMaximalPlanar(n, rand.New(rand.NewSource(99)))
			got := RandomMaximalPlanarStream(n, rand.New(rand.NewSource(99)), workers)
			requireIdenticalGraphs(t, got, want)
		}
	}
}

func TestRandomPlanarStreamMatches(t *testing.T) {
	for _, keep := range []float64{0, 0.3, 0.8, 1} {
		want := RandomPlanar(300, keep, rand.New(rand.NewSource(5)))
		got := RandomPlanarStream(300, keep, rand.New(rand.NewSource(5)), 3)
		requireIdenticalGraphs(t, got, want)
	}
}

func TestParallelSortUint64(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	for _, size := range []int{0, 1, 100, 1<<16 + 313} {
		s := make([]uint64, size)
		for i := range s {
			s[i] = rng.Uint64()
		}
		want := append([]uint64(nil), s...)
		sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
		for _, workers := range []int{1, 2, 5} {
			c := append([]uint64(nil), s...)
			parallelSortUint64(c, workers)
			for i := range c {
				if c[i] != want[i] {
					t.Fatalf("size=%d workers=%d: mismatch at %d", size, workers, i)
				}
			}
		}
	}
}
