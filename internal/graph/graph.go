package graph

import (
	"fmt"
	"math"
	"sort"
)

// Edge is an undirected edge with canonical orientation U < V.
type Edge struct {
	U, V int
}

// Canon returns e with endpoints swapped if necessary so that U < V.
func (e Edge) Canon() Edge {
	if e.U > e.V {
		return Edge{U: e.V, V: e.U}
	}
	return e
}

// Other returns the endpoint of e that is not v. It panics if v is not an
// endpoint of e.
func (e Edge) Other(v int) int {
	switch v {
	case e.U:
		return e.V
	case e.V:
		return e.U
	default:
		panic(fmt.Sprintf("graph: vertex %d is not an endpoint of edge %v", v, e))
	}
}

// Graph is an immutable simple undirected graph on vertices 0..n-1, stored in
// compressed sparse row (CSR) form: the half-edges of vertex v occupy the
// index range adjOff[v]..adjOff[v+1] of the flat adjTo/adjIdx arrays, sorted
// by ascending neighbor ID. adjIdx carries the undirected edge index shared
// by the two opposite half-edges, so per-edge annotations (weight, sign) are
// one array lookup away from any adjacency scan.
//
// The zero value is the empty graph with no vertices. Use a Builder to create
// non-trivial graphs.
type Graph struct {
	n      int
	adjOff []int32 // n+1 row offsets into adjTo/adjIdx
	adjTo  []int32 // neighbor IDs, ascending within each row
	adjIdx []int32 // undirected edge index per half-edge
	edges  []Edge
	weight []int64 // nil when the graph is unweighted
	sign   []int8  // nil when the graph is unsigned; otherwise +1 or -1 per edge
	maxDeg int     // cached max degree, computed once at build time
	minDeg int     // cached min degree, computed once at build time
	maxW   int64   // cached MaxWeight, computed once at build time
	totalW int64   // cached TotalWeight, computed once at build time
}

// N returns the number of vertices.
func (g *Graph) N() int { return g.n }

// M returns the number of undirected edges.
func (g *Graph) M() int { return len(g.edges) }

// Degree returns the degree of vertex v.
func (g *Graph) Degree(v int) int { return int(g.adjOff[v+1] - g.adjOff[v]) }

// MaxDegree returns the maximum vertex degree (0 for an empty graph). The
// value is computed once when the Builder finalizes the graph, so this is
// O(1).
func (g *Graph) MaxDegree() int { return g.maxDeg }

// MinDegree returns the minimum vertex degree, or 0 for an empty graph. Like
// MaxDegree, the value is cached at build time, so this is O(1).
func (g *Graph) MinDegree() int { return g.minDeg }

// arc returns the i-th half-edge of v as (neighbor, undirected edge index).
func (g *Graph) arc(v, i int) (to, idx int) {
	p := int(g.adjOff[v]) + i
	return int(g.adjTo[p]), int(g.adjIdx[p])
}

// AdjacencyCSR exposes the graph's compressed-sparse-row adjacency: off has
// N()+1 row offsets and to lists each vertex's neighbors ascending, so row v
// is to[off[v]:off[v+1]]. The slices alias the graph's internal arrays and
// MUST NOT be modified; they let iteration-heavy numeric loops (power
// iteration, walk evolution) run over flat arrays without copying or
// per-vertex interface calls.
func (g *Graph) AdjacencyCSR() (off, to []int32) { return g.adjOff, g.adjTo }

// Neighbors returns the neighbors of v in ascending order. The returned slice
// is owned by the caller. Hot paths should prefer ForEachNeighbor or
// NeighborAt, which do not allocate.
func (g *Graph) Neighbors(v int) []int {
	lo, hi := g.adjOff[v], g.adjOff[v+1]
	out := make([]int, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = int(g.adjTo[i])
	}
	return out
}

// NeighborAt returns the i-th neighbor of v (0 ≤ i < Degree(v)), in ascending
// neighbor order, without allocating. It is the cursor-style companion to
// ForEachNeighbor for traversals that need to pause and resume.
func (g *Graph) NeighborAt(v, i int) int {
	return int(g.adjTo[int(g.adjOff[v])+i])
}

// ForEachNeighbor calls fn for every neighbor u of v with the undirected edge
// index, in ascending neighbor order.
func (g *Graph) ForEachNeighbor(v int, fn func(u, edgeIdx int)) {
	for i := g.adjOff[v]; i < g.adjOff[v+1]; i++ {
		fn(int(g.adjTo[i]), int(g.adjIdx[i]))
	}
}

// Edges returns a copy of the edge list. Edge i has index i for Weight/Sign.
func (g *Graph) Edges() []Edge {
	out := make([]Edge, len(g.edges))
	copy(out, g.edges)
	return out
}

// EdgeAt returns the edge with index idx.
func (g *Graph) EdgeAt(idx int) Edge { return g.edges[idx] }

// HasEdge reports whether {u, v} is an edge of g.
func (g *Graph) HasEdge(u, v int) bool {
	_, ok := g.EdgeIndex(u, v)
	return ok
}

// EdgeIndex returns the index of edge {u, v} and whether it exists.
func (g *Graph) EdgeIndex(u, v int) (int, bool) {
	if u < 0 || u >= g.n || v < 0 || v >= g.n || u == v {
		return 0, false
	}
	// Binary search the (sorted) adjacency row of the lower-degree endpoint.
	if g.Degree(v) < g.Degree(u) {
		u, v = v, u
	}
	lo, hi := int(g.adjOff[u]), int(g.adjOff[u+1])
	end, target := hi, int32(v)
	for lo < hi {
		mid := (lo + hi) / 2
		if g.adjTo[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && g.adjTo[lo] == target {
		return int(g.adjIdx[lo]), true
	}
	return 0, false
}

// Weighted reports whether the graph carries edge weights.
func (g *Graph) Weighted() bool { return g.weight != nil }

// Weight returns the weight of edge idx. Unweighted graphs report weight 1
// for every edge so that cardinality problems are the W=1 special case of
// their weighted counterparts, exactly as in the paper.
func (g *Graph) Weight(idx int) int64 {
	if g.weight == nil {
		return 1
	}
	return g.weight[idx]
}

// MaxWeight returns the maximum edge weight W (1 for unweighted graphs with
// at least one edge, 0 for edgeless graphs). Cached at build time, so O(1).
func (g *Graph) MaxWeight() int64 { return g.maxW }

// Signed reports whether the graph carries correlation-clustering edge signs.
func (g *Graph) Signed() bool { return g.sign != nil }

// Sign returns the sign of edge idx: +1 or -1 for signed graphs, +1 otherwise.
func (g *Graph) Sign(idx int) int8 {
	if g.sign == nil {
		return 1
	}
	return g.sign[idx]
}

// TotalWeight returns the sum of all edge weights. Cached at build time, so
// O(1).
func (g *Graph) TotalWeight() int64 { return g.totalW }

// Volume returns the sum of degrees of the vertices in s.
func (g *Graph) Volume(s []int) int {
	vol := 0
	for _, v := range s {
		vol += g.Degree(v)
	}
	return vol
}

// EdgeDensity returns |E|/|V| (0 for an empty graph).
func (g *Graph) EdgeDensity() float64 {
	if g.n == 0 {
		return 0
	}
	return float64(len(g.edges)) / float64(g.n)
}

// Clone returns a deep copy of g.
func (g *Graph) Clone() *Graph {
	cp := &Graph{
		n:      g.n,
		maxDeg: g.maxDeg,
		minDeg: g.minDeg,
		maxW:   g.maxW,
		totalW: g.totalW,
	}
	cp.adjOff = append([]int32(nil), g.adjOff...)
	cp.adjTo = append([]int32(nil), g.adjTo...)
	cp.adjIdx = append([]int32(nil), g.adjIdx...)
	cp.edges = append([]Edge(nil), g.edges...)
	if g.weight != nil {
		cp.weight = append([]int64(nil), g.weight...)
	}
	if g.sign != nil {
		cp.sign = append([]int8(nil), g.sign...)
	}
	return cp
}

// String implements fmt.Stringer with a short structural summary.
func (g *Graph) String() string {
	return fmt.Sprintf("Graph(n=%d, m=%d, Δ=%d)", g.n, len(g.edges), g.MaxDegree())
}

// Builder incrementally assembles a Graph. The zero value is unusable; create
// builders with NewBuilder.
type Builder struct {
	n       int
	seen    map[Edge]int // canonical edge -> index into pending slices
	pending []Edge
	weight  []int64
	sign    []int8
	anyW    bool
	anyS    bool
}

// NewBuilder returns a Builder for a graph on n vertices. It panics if n < 0.
func NewBuilder(n int) *Builder {
	if n < 0 {
		panic(fmt.Sprintf("graph: negative vertex count %d", n))
	}
	return &Builder{n: n, seen: make(map[Edge]int)}
}

// N returns the number of vertices the builder was created with.
func (b *Builder) N() int { return b.n }

// M returns the number of distinct edges added so far.
func (b *Builder) M() int { return len(b.pending) }

// AddEdge adds the undirected edge {u, v} with weight 1 and sign +1.
// Duplicate edges are ignored. It panics on self-loops and out-of-range
// endpoints; input paths that cannot trust their edges should use TryAddEdge,
// which reports the same conditions as errors.
func (b *Builder) AddEdge(u, v int) { b.add(u, v, 1, 1, false, false) }

// AddWeightedEdge adds {u, v} with the given positive weight. If the edge was
// already present its weight is overwritten.
func (b *Builder) AddWeightedEdge(u, v int, w int64) {
	if w <= 0 {
		panic(fmt.Sprintf("graph: non-positive edge weight %d on {%d,%d}", w, u, v))
	}
	b.add(u, v, w, 1, true, false)
}

// AddSignedEdge adds {u, v} with the given sign (+1 or -1) for correlation
// clustering. If the edge was already present its sign is overwritten.
func (b *Builder) AddSignedEdge(u, v int, sign int8) {
	if sign != 1 && sign != -1 {
		panic(fmt.Sprintf("graph: invalid edge sign %d on {%d,%d}", sign, u, v))
	}
	b.add(u, v, 1, sign, false, true)
}

// TryAddEdge is AddEdge with error semantics: negative or out-of-range
// endpoints and self-loops return a wrapped ErrVertexRange/ErrSelfLoop
// instead of panicking deep in CSR assembly. Mutation streams and file
// parsers share this validation path with Overlay.
func (b *Builder) TryAddEdge(u, v int) error { return b.tryAdd(u, v, 1, 1, false, false) }

// TryAddWeightedEdge is AddWeightedEdge with error semantics.
func (b *Builder) TryAddWeightedEdge(u, v int, w int64) error {
	if w <= 0 {
		return fmt.Errorf("graph: non-positive edge weight %d on {%d,%d}", w, u, v)
	}
	return b.tryAdd(u, v, w, 1, true, false)
}

// TryAddSignedEdge is AddSignedEdge with error semantics.
func (b *Builder) TryAddSignedEdge(u, v int, sign int8) error {
	if sign != 1 && sign != -1 {
		return fmt.Errorf("graph: invalid edge sign %d on {%d,%d}", sign, u, v)
	}
	return b.tryAdd(u, v, 1, sign, false, true)
}

func (b *Builder) add(u, v int, w int64, s int8, isWeighted, isSigned bool) {
	if err := b.tryAdd(u, v, w, s, isWeighted, isSigned); err != nil {
		panic(err.Error())
	}
}

func (b *Builder) tryAdd(u, v int, w int64, s int8, isWeighted, isSigned bool) error {
	if u < 0 || u >= b.n || v < 0 || v >= b.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range for n=%d: %w", u, v, b.n, ErrVertexRange)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d: %w", u, ErrSelfLoop)
	}
	e := Edge{U: u, V: v}.Canon()
	if i, ok := b.seen[e]; ok {
		b.weight[i] = w
		b.sign[i] = s
	} else {
		b.seen[e] = len(b.pending)
		b.pending = append(b.pending, e)
		b.weight = append(b.weight, w)
		b.sign = append(b.sign, s)
	}
	b.anyW = b.anyW || isWeighted
	b.anyS = b.anyS || isSigned
	return nil
}

// HasEdge reports whether {u, v} has been added.
func (b *Builder) HasEdge(u, v int) bool {
	_, ok := b.seen[Edge{U: u, V: v}.Canon()]
	return ok
}

// Graph finalizes the builder into an immutable Graph. The builder remains
// usable (further edges may be added and Graph called again).
func (b *Builder) Graph() *Graph {
	if b.n > math.MaxInt32 || len(b.pending) > math.MaxInt32/2 {
		panic(fmt.Sprintf("graph: n=%d m=%d exceeds the CSR int32 index range", b.n, len(b.pending)))
	}
	g := &Graph{n: b.n}
	// Sort edges canonically so edge indices are deterministic regardless of
	// insertion order.
	order := make([]int, len(b.pending))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(i, j int) bool {
		a, c := b.pending[order[i]], b.pending[order[j]]
		if a.U != c.U {
			return a.U < c.U
		}
		return a.V < c.V
	})
	g.edges = make([]Edge, len(order))
	if b.anyW {
		g.weight = make([]int64, len(order))
	}
	if b.anyS {
		g.sign = make([]int8, len(order))
	}
	for newIdx, oldIdx := range order {
		g.edges[newIdx] = b.pending[oldIdx]
		if g.weight != nil {
			g.weight[newIdx] = b.weight[oldIdx]
		}
		if g.sign != nil {
			g.sign[newIdx] = b.sign[oldIdx]
		}
	}
	// CSR construction: count degrees into the offset array, prefix-sum, then
	// place both half-edges of every edge in canonical order. Because edges
	// are sorted by (U, V), every row comes out sorted by neighbor ID: row v
	// first receives its lower neighbors (from edges with U < v, in ascending
	// U order) and then its higher neighbors (from edges with U = v, in
	// ascending V order).
	g.adjOff = make([]int32, b.n+1)
	for _, e := range g.edges {
		g.adjOff[e.U+1]++
		g.adjOff[e.V+1]++
	}
	for v := 0; v < b.n; v++ {
		g.adjOff[v+1] += g.adjOff[v]
	}
	g.adjTo = make([]int32, 2*len(g.edges))
	g.adjIdx = make([]int32, 2*len(g.edges))
	cursor := make([]int32, b.n)
	copy(cursor, g.adjOff[:b.n])
	for idx, e := range g.edges {
		g.adjTo[cursor[e.U]] = int32(e.V)
		g.adjIdx[cursor[e.U]] = int32(idx)
		cursor[e.U]++
		g.adjTo[cursor[e.V]] = int32(e.U)
		g.adjIdx[cursor[e.V]] = int32(idx)
		cursor[e.V]++
	}
	g.finishStats()
	// Assert the sorted-row invariant in debug-ish fashion, repairing with a
	// paired insertion sort if it ever fails.
	for v := 0; v < b.n; v++ {
		lo, hi := int(g.adjOff[v]), int(g.adjOff[v+1])
		for i := lo + 1; i < hi; i++ {
			if g.adjTo[i-1] >= g.adjTo[i] {
				sortRow(g.adjTo[lo:hi], g.adjIdx[lo:hi])
				break
			}
		}
	}
	return g
}

// finishStats fills the cached aggregate fields (max/min degree, max/total
// weight) after the CSR arrays are in place.
func (g *Graph) finishStats() {
	if g.n > 0 {
		g.minDeg = g.Degree(0)
		for v := 0; v < g.n; v++ {
			d := g.Degree(v)
			if d > g.maxDeg {
				g.maxDeg = d
			}
			if d < g.minDeg {
				g.minDeg = d
			}
		}
	}
	if len(g.edges) > 0 {
		g.maxW = 1
		if g.weight != nil {
			g.maxW = g.weight[0]
			for _, w := range g.weight {
				if w > g.maxW {
					g.maxW = w
				}
				g.totalW += w
			}
		} else {
			g.totalW = int64(len(g.edges))
		}
	}
}

// sortRow sorts one adjacency row by neighbor ID, keeping the parallel edge
// indices aligned. Rows are produced sorted, so this is a cold repair path.
func sortRow(to, idx []int32) {
	for i := 1; i < len(to); i++ {
		for j := i; j > 0 && to[j-1] > to[j]; j-- {
			to[j-1], to[j] = to[j], to[j-1]
			idx[j-1], idx[j] = idx[j], idx[j-1]
		}
	}
}

// FromEdges builds an unweighted graph on n vertices from an edge list.
func FromEdges(n int, edges []Edge) *Graph {
	b := NewBuilder(n)
	for _, e := range edges {
		b.AddEdge(e.U, e.V)
	}
	return b.Graph()
}

// InducedSubgraph returns the subgraph of g induced by the vertex set verts,
// along with the mapping from new vertex IDs (0..len(verts)-1) back to the
// original IDs. Weights and signs are preserved. Duplicate vertices in verts
// panic.
//
// This materializes a full copy. When the subgraph is only read (degree
// scans, BFS, conductance sweeps), prefer the zero-copy Induce view.
func (g *Graph) InducedSubgraph(verts []int) (*Graph, []int) {
	toNew := make(map[int]int, len(verts))
	toOld := make([]int, len(verts))
	for i, v := range verts {
		if _, dup := toNew[v]; dup {
			panic(fmt.Sprintf("graph: duplicate vertex %d in induced subgraph", v))
		}
		if v < 0 || v >= g.n {
			panic(fmt.Sprintf("graph: vertex %d out of range for n=%d", v, g.n))
		}
		toNew[v] = i
		toOld[i] = v
	}
	b := NewBuilder(len(verts))
	for i, v := range toOld {
		g.ForEachNeighbor(v, func(to, idx int) {
			j, ok := toNew[to]
			if !ok || j <= i {
				return
			}
			switch {
			case g.weight != nil:
				b.AddWeightedEdge(i, j, g.weight[idx])
			case g.sign != nil:
				b.AddSignedEdge(i, j, g.sign[idx])
			default:
				b.AddEdge(i, j)
			}
		})
	}
	return b.Graph(), toOld
}

// SubgraphFromEdgeSet returns the graph on the same vertex set containing
// exactly the edges whose indices are in keep.
func (g *Graph) SubgraphFromEdgeSet(keep map[int]bool) *Graph {
	b := NewBuilder(g.n)
	for idx, e := range g.edges {
		if !keep[idx] {
			continue
		}
		switch {
		case g.weight != nil:
			b.AddWeightedEdge(e.U, e.V, g.weight[idx])
		case g.sign != nil:
			b.AddSignedEdge(e.U, e.V, g.sign[idx])
		default:
			b.AddEdge(e.U, e.V)
		}
	}
	return b.Graph()
}

// RemoveEdges returns the graph on the same vertex set with the edges whose
// indices appear in drop removed.
func (g *Graph) RemoveEdges(drop map[int]bool) *Graph {
	keep := make(map[int]bool, len(g.edges))
	for idx := range g.edges {
		if !drop[idx] {
			keep[idx] = true
		}
	}
	return g.SubgraphFromEdgeSet(keep)
}

// RemoveVertices returns the subgraph induced by all vertices not in drop,
// plus the old-ID mapping as in InducedSubgraph.
func (g *Graph) RemoveVertices(drop map[int]bool) (*Graph, []int) {
	keep := make([]int, 0, g.n)
	for v := 0; v < g.n; v++ {
		if !drop[v] {
			keep = append(keep, v)
		}
	}
	return g.InducedSubgraph(keep)
}

// CutEdges returns the indices of edges with exactly one endpoint in s.
func (g *Graph) CutEdges(s map[int]bool) []int {
	var out []int
	for idx, e := range g.edges {
		if s[e.U] != s[e.V] {
			out = append(out, idx)
		}
	}
	return out
}
