package graph

import (
	"errors"
	"io"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBuilderBasics(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge(0, 1)
	b.AddEdge(1, 0) // duplicate, reversed
	b.AddEdge(2, 3)
	b.AddEdge(1, 2)
	g := b.Graph()
	if g.N() != 4 {
		t.Fatalf("N = %d, want 4", g.N())
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (duplicate must be deduped)", g.M())
	}
	if !g.HasEdge(0, 1) || !g.HasEdge(1, 0) {
		t.Error("edge {0,1} missing")
	}
	if g.HasEdge(0, 3) {
		t.Error("edge {0,3} should not exist")
	}
	if d := g.Degree(1); d != 2 {
		t.Errorf("Degree(1) = %d, want 2", d)
	}
	if got := g.Neighbors(1); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("Neighbors(1) = %v, want [0 2]", got)
	}
}

func TestBuilderPanics(t *testing.T) {
	cases := []struct {
		name string
		fn   func()
	}{
		{"self-loop", func() { NewBuilder(3).AddEdge(1, 1) }},
		{"out-of-range", func() { NewBuilder(3).AddEdge(0, 3) }},
		{"negative-vertex", func() { NewBuilder(3).AddEdge(-1, 0) }},
		{"negative-n", func() { NewBuilder(-1) }},
		{"zero-weight", func() { NewBuilder(3).AddWeightedEdge(0, 1, 0) }},
		{"bad-sign", func() { NewBuilder(3).AddSignedEdge(0, 1, 2) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", tc.name)
				}
			}()
			tc.fn()
		})
	}
}

// TestBuilderTryAdd pins the non-panicking variants: invalid endpoints come
// back as wrapped sentinel errors, and valid edges still land in the graph.
func TestBuilderTryAdd(t *testing.T) {
	b := NewBuilder(3)
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"negative-vertex", b.TryAddEdge(-1, 0), ErrVertexRange},
		{"out-of-range", b.TryAddEdge(0, 3), ErrVertexRange},
		{"self-loop", b.TryAddEdge(1, 1), ErrSelfLoop},
		{"weighted-out-of-range", b.TryAddWeightedEdge(5, 0, 2), ErrVertexRange},
		{"signed-negative", b.TryAddSignedEdge(-2, 1, +1), ErrVertexRange},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.err == nil {
				t.Fatal("expected error")
			}
			if !errors.Is(tc.err, tc.want) {
				t.Fatalf("error %q does not wrap %v", tc.err, tc.want)
			}
		})
	}
	if err := b.TryAddEdge(0, 1); err != nil {
		t.Fatalf("valid TryAddEdge: %v", err)
	}
	if err := b.TryAddWeightedEdge(1, 2, 7); err != nil {
		t.Fatalf("valid TryAddWeightedEdge: %v", err)
	}
	g := b.Graph()
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2 (rejected edges must not be recorded)", g.M())
	}
	if idx, ok := g.EdgeIndex(1, 2); !ok || g.Weight(idx) != 7 {
		t.Fatal("weighted edge from TryAddWeightedEdge missing")
	}
}

func TestEdgeIndicesDeterministic(t *testing.T) {
	b1 := NewBuilder(4)
	b1.AddEdge(2, 3)
	b1.AddEdge(0, 1)
	b2 := NewBuilder(4)
	b2.AddEdge(0, 1)
	b2.AddEdge(3, 2)
	g1, g2 := b1.Graph(), b2.Graph()
	for i := 0; i < g1.M(); i++ {
		if g1.EdgeAt(i) != g2.EdgeAt(i) {
			t.Fatalf("edge order differs at %d: %v vs %v", i, g1.EdgeAt(i), g2.EdgeAt(i))
		}
	}
}

func TestWeightsAndSigns(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 7)
	b.AddWeightedEdge(1, 2, 3)
	g := b.Graph()
	if !g.Weighted() {
		t.Fatal("graph should be weighted")
	}
	idx, ok := g.EdgeIndex(0, 1)
	if !ok || g.Weight(idx) != 7 {
		t.Errorf("Weight({0,1}) = %d, want 7", g.Weight(idx))
	}
	if g.MaxWeight() != 7 {
		t.Errorf("MaxWeight = %d, want 7", g.MaxWeight())
	}
	if g.TotalWeight() != 10 {
		t.Errorf("TotalWeight = %d, want 10", g.TotalWeight())
	}

	bs := NewBuilder(3)
	bs.AddSignedEdge(0, 1, 1)
	bs.AddSignedEdge(1, 2, -1)
	gs := bs.Graph()
	if !gs.Signed() {
		t.Fatal("graph should be signed")
	}
	i1, _ := gs.EdgeIndex(1, 2)
	if gs.Sign(i1) != -1 {
		t.Errorf("Sign({1,2}) = %d, want -1", gs.Sign(i1))
	}
	// Unweighted graphs report weight 1.
	if gs.Weight(i1) != 1 {
		t.Errorf("unsigned weight = %d, want 1", gs.Weight(i1))
	}
}

func TestEdgeOther(t *testing.T) {
	e := Edge{U: 3, V: 7}
	if e.Other(3) != 7 || e.Other(7) != 3 {
		t.Error("Other returned wrong endpoint")
	}
	defer func() {
		if recover() == nil {
			t.Error("Other on non-endpoint should panic")
		}
	}()
	e.Other(5)
}

func TestInducedSubgraph(t *testing.T) {
	g := Grid(3, 3)
	sub, toOld := g.InducedSubgraph([]int{0, 1, 3, 4})
	if sub.N() != 4 {
		t.Fatalf("sub.N = %d, want 4", sub.N())
	}
	if sub.M() != 4 { // the 2x2 corner of a grid is a 4-cycle
		t.Fatalf("sub.M = %d, want 4", sub.M())
	}
	for newV, oldV := range toOld {
		if g.Degree(oldV) < sub.Degree(newV) {
			t.Errorf("induced degree grew for %d", oldV)
		}
	}
	// Weights survive induction.
	wg := WithRandomWeights(g, 50, rand.New(rand.NewSource(1)))
	wsub, toOld2 := wg.InducedSubgraph([]int{0, 1, 2})
	for i := 0; i < wsub.M(); i++ {
		e := wsub.EdgeAt(i)
		oi, ok := wg.EdgeIndex(toOld2[e.U], toOld2[e.V])
		if !ok {
			t.Fatalf("edge %v missing in parent", e)
		}
		if wsub.Weight(i) != wg.Weight(oi) {
			t.Errorf("weight mismatch on %v", e)
		}
	}
}

func TestSubgraphFromEdgeSetAndRemove(t *testing.T) {
	g := Cycle(5)
	keep := map[int]bool{0: true, 2: true}
	sub := g.SubgraphFromEdgeSet(keep)
	if sub.M() != 2 || sub.N() != 5 {
		t.Fatalf("sub = %v, want n=5 m=2", sub)
	}
	rem := g.RemoveEdges(keep)
	if rem.M() != 3 {
		t.Fatalf("rem.M = %d, want 3", rem.M())
	}
	sub2, _ := g.RemoveVertices(map[int]bool{0: true})
	if sub2.N() != 4 || sub2.M() != 3 {
		t.Fatalf("RemoveVertices got n=%d m=%d, want 4,3", sub2.N(), sub2.M())
	}
}

func TestCutEdges(t *testing.T) {
	g := Grid(2, 4)                                       // two rows of 4
	s := map[int]bool{0: true, 1: true, 4: true, 5: true} // left half
	cut := g.CutEdges(s)
	if len(cut) != 2 {
		t.Fatalf("cut size = %d, want 2", len(cut))
	}
}

func TestBFSAndDiameter(t *testing.T) {
	g := Path(5)
	dist, parent := g.BFS(0)
	for v := 0; v < 5; v++ {
		if dist[v] != v {
			t.Errorf("dist[%d] = %d, want %d", v, dist[v], v)
		}
	}
	if parent[0] != 0 || parent[4] != 3 {
		t.Errorf("parents wrong: %v", parent)
	}
	if d := g.Diameter(); d != 4 {
		t.Errorf("Diameter = %d, want 4", d)
	}
	if d := Cycle(6).Diameter(); d != 3 {
		t.Errorf("C6 diameter = %d, want 3", d)
	}
	if d := Grid(3, 3).Diameter(); d != 4 {
		t.Errorf("grid diameter = %d, want 4", d)
	}
}

func TestShortestPath(t *testing.T) {
	g := Grid(3, 3)
	p := g.ShortestPath(0, 8)
	if len(p) != 5 {
		t.Fatalf("path length %d, want 5 vertices", len(p))
	}
	if p[0] != 0 || p[len(p)-1] != 8 {
		t.Fatalf("endpoints wrong: %v", p)
	}
	for i := 0; i+1 < len(p); i++ {
		if !g.HasEdge(p[i], p[i+1]) {
			t.Fatalf("non-edge in path: %d-%d", p[i], p[i+1])
		}
	}
	two := Disjoint(Path(2), Path(2))
	if got := two.ShortestPath(0, 3); got != nil {
		t.Errorf("path across components should be nil, got %v", got)
	}
}

func TestComponents(t *testing.T) {
	g := Disjoint(Cycle(3), Path(2), Path(1))
	comps := g.Components()
	if len(comps) != 3 {
		t.Fatalf("got %d components, want 3", len(comps))
	}
	if len(comps[0]) != 3 || len(comps[1]) != 2 || len(comps[2]) != 1 {
		t.Errorf("component sizes wrong: %v", comps)
	}
	if g.Connected() {
		t.Error("disjoint union should not be connected")
	}
	ids := g.ComponentIDs()
	if ids[0] != ids[1] || ids[0] == ids[3] {
		t.Errorf("ComponentIDs wrong: %v", ids)
	}
}

func TestTreeAndCycleChecks(t *testing.T) {
	if !Path(7).IsTree() {
		t.Error("path should be a tree")
	}
	if Cycle(4).IsTree() {
		t.Error("cycle is not a tree")
	}
	if Path(7).HasCycle() {
		t.Error("path has no cycle")
	}
	if !Cycle(4).HasCycle() {
		t.Error("cycle has a cycle")
	}
	rng := rand.New(rand.NewSource(42))
	if !RandomTree(50, rng).IsTree() {
		t.Error("RandomTree should be a tree")
	}
}

func TestGenerators(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name     string
		g        *Graph
		n, m     int
		mustConn bool
	}{
		{"path", Path(6), 6, 5, true},
		{"cycle", Cycle(6), 6, 6, true},
		{"complete", Complete(5), 5, 10, true},
		{"bipartite", CompleteBipartite(3, 3), 6, 9, true},
		{"star", Star(4), 5, 4, true},
		{"grid", Grid(4, 5), 20, 31, true},
		{"torus", Torus(4, 5), 20, 40, true},
		{"trigrid", TriangulatedGrid(3, 3), 9, 16, true},
		{"hypercube", Hypercube(4), 16, 32, true},
		{"binary-tree", BalancedBinaryTree(10), 10, 9, true},
		{"maximal-planar", RandomMaximalPlanar(20, rng), 20, 3*20 - 6, true},
		{"outerplanar", RandomOuterplanar(12, rng), 12, 2*12 - 3, true},
		{"ktree", KTree(15, 3, rng), 15, 4*3/2 + (15-4)*3, true},
		{"wheel", Wheel(6), 7, 12, true},
		{"prism", Prism(5), 10, 15, true},
		{"doubletorus", DoubleTorus(4), 32, 66, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if tc.g.N() != tc.n {
				t.Errorf("N = %d, want %d", tc.g.N(), tc.n)
			}
			if tc.g.M() != tc.m {
				t.Errorf("M = %d, want %d", tc.g.M(), tc.m)
			}
			if tc.mustConn && !tc.g.Connected() {
				t.Error("generator output should be connected")
			}
		})
	}
}

func TestRandomPlanarConnectedAndSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, n := range []int{10, 50, 200} {
		g := RandomPlanar(n, 0.5, rng)
		if !g.Connected() {
			t.Errorf("RandomPlanar(%d) disconnected", n)
		}
		if g.M() > 3*n-6 {
			t.Errorf("RandomPlanar(%d) too many edges: %d", n, g.M())
		}
	}
}

func TestSubdivide(t *testing.T) {
	k5 := Complete(5)
	sub := Subdivide(k5, 2)
	if sub.N() != 5+10*2 {
		t.Errorf("N = %d, want %d", sub.N(), 25)
	}
	if sub.M() != 10*3 {
		t.Errorf("M = %d, want 30", sub.M())
	}
	if sub.MaxDegree() != 4 {
		t.Errorf("subdivided K5 max degree = %d, want 4", sub.MaxDegree())
	}
	if !sub.Connected() {
		t.Error("subdivision should stay connected")
	}
}

func TestAttachPendantStars(t *testing.T) {
	g := Cycle(4)
	h := AttachPendantStars(g, []int{0, 2}, 3)
	if h.N() != 4+6 || h.M() != 4+6 {
		t.Fatalf("got n=%d m=%d", h.N(), h.M())
	}
	if h.Degree(0) != 5 {
		t.Errorf("Degree(0) = %d, want 5", h.Degree(0))
	}
}

func TestUnionFind(t *testing.T) {
	uf := NewUnionFind(6)
	if uf.Sets() != 6 {
		t.Fatalf("Sets = %d, want 6", uf.Sets())
	}
	if !uf.Union(0, 1) || !uf.Union(1, 2) {
		t.Fatal("unions should succeed")
	}
	if uf.Union(0, 2) {
		t.Error("union of same set should return false")
	}
	if !uf.Same(0, 2) || uf.Same(0, 3) {
		t.Error("Same wrong")
	}
	if uf.Sets() != 4 {
		t.Errorf("Sets = %d, want 4", uf.Sets())
	}
	groups := uf.Groups()
	if len(groups) != 4 || len(groups[0]) != 3 {
		t.Errorf("Groups = %v", groups)
	}
}

func TestBiconnectedComponents(t *testing.T) {
	// Two triangles sharing vertex 2 (an articulation point).
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(2, 4)
	g := b.Graph()
	comps := g.BiconnectedComponents()
	if len(comps) != 2 {
		t.Fatalf("got %d biconnected components, want 2", len(comps))
	}
	for _, c := range comps {
		if len(c) != 3 {
			t.Errorf("component size %d, want 3", len(c))
		}
	}
	aps := g.ArticulationPoints()
	if len(aps) != 1 || aps[0] != 2 {
		t.Errorf("articulation points = %v, want [2]", aps)
	}
	if br := g.Bridges(); len(br) != 0 {
		t.Errorf("bridges = %v, want none", br)
	}
}

func TestBridges(t *testing.T) {
	g := Path(4)
	if br := g.Bridges(); len(br) != 3 {
		t.Errorf("path bridges = %v, want all 3 edges", br)
	}
	if br := Cycle(5).Bridges(); len(br) != 0 {
		t.Errorf("cycle bridges = %v, want none", br)
	}
	// Barbell: two triangles joined by a bridge.
	b := NewBuilder(6)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(3, 5)
	b.AddEdge(2, 3)
	g2 := b.Graph()
	br := g2.Bridges()
	if len(br) != 1 {
		t.Fatalf("barbell bridges = %v, want 1", br)
	}
	if e := g2.EdgeAt(br[0]); e != (Edge{U: 2, V: 3}) {
		t.Errorf("bridge edge = %v, want {2,3}", e)
	}
}

func TestVolumeAndDensity(t *testing.T) {
	g := Star(5)
	if v := g.Volume([]int{0}); v != 5 {
		t.Errorf("Volume(center) = %d, want 5", v)
	}
	if v := g.Volume([]int{1, 2}); v != 2 {
		t.Errorf("Volume(leaves) = %d, want 2", v)
	}
	if d := Complete(4).EdgeDensity(); d != 1.5 {
		t.Errorf("K4 density = %v, want 1.5", d)
	}
}

func TestCloneIndependence(t *testing.T) {
	g := Cycle(4)
	cp := g.Clone()
	if cp.N() != g.N() || cp.M() != g.M() {
		t.Fatal("clone differs in size")
	}
	if &cp.edges[0] == &g.edges[0] {
		t.Error("clone shares edge storage")
	}
}

func TestEdgeListRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for _, g := range []*Graph{
		Grid(3, 4),
		WithRandomWeights(Cycle(6), 100, rng),
		WithRandomSigns(Complete(5), 0.5, rng),
	} {
		var buf writerBuffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadEdgeList(&buf)
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		if got.N() != g.N() || got.M() != g.M() {
			t.Fatalf("round trip size mismatch: %v vs %v", got, g)
		}
		for i := 0; i < g.M(); i++ {
			if got.EdgeAt(i) != g.EdgeAt(i) || got.Weight(i) != g.Weight(i) || got.Sign(i) != g.Sign(i) {
				t.Fatalf("edge %d mismatch after round trip", i)
			}
		}
	}
}

// writerBuffer is a minimal io.ReadWriter to avoid importing bytes in tests.
// It is deliberately NOT an io.Seeker, so reads through it exercise the
// parser's buffered (non-seekable) path.
type writerBuffer struct {
	data []byte
	pos  int
}

func (b *writerBuffer) Write(p []byte) (int, error) {
	b.data = append(b.data, p...)
	return len(p), nil
}

func (b *writerBuffer) Read(p []byte) (int, error) {
	if b.pos >= len(b.data) {
		return 0, io.EOF
	}
	n := copy(p, b.data[b.pos:])
	b.pos += n
	return n, nil
}

func TestReadEdgeListErrors(t *testing.T) {
	bad := []string{
		"",
		"3\n",
		"3 1\n",
		"3 1 bogus\n0 1\n",
		"x 1\n",
		"3 1\n0 1 5\n",
	}
	for _, s := range bad {
		buf := &writerBuffer{data: []byte(s)}
		if _, err := ReadEdgeList(buf); err == nil {
			t.Errorf("input %q: expected error", s)
		}
	}
}

// Property: for random graphs, the sum of degrees equals twice the edge
// count, adjacency is symmetric, and EdgeIndex agrees with the edge list.
func TestQuickHandshakeAndSymmetry(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(30)
		g := ErdosRenyi(n, 0.3, rng)
		degSum := 0
		for v := 0; v < n; v++ {
			degSum += g.Degree(v)
		}
		if degSum != 2*g.M() {
			return false
		}
		for idx, e := range g.Edges() {
			gotIdx, ok := g.EdgeIndex(e.U, e.V)
			if !ok || gotIdx != idx {
				return false
			}
			if revIdx, ok := g.EdgeIndex(e.V, e.U); !ok || revIdx != idx {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: induced subgraph of a random vertex subset has exactly the edges
// with both endpoints inside.
func TestQuickInducedSubgraph(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(20)
		g := ErdosRenyi(n, 0.4, rng)
		var verts []int
		inSet := make(map[int]bool)
		for v := 0; v < n; v++ {
			if rng.Intn(2) == 0 {
				verts = append(verts, v)
				inSet[v] = true
			}
		}
		sub, toOld := g.InducedSubgraph(verts)
		want := 0
		for _, e := range g.Edges() {
			if inSet[e.U] && inSet[e.V] {
				want++
			}
		}
		if sub.M() != want {
			return false
		}
		for _, e := range sub.Edges() {
			if !g.HasEdge(toOld[e.U], toOld[e.V]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: disjoint union sizes add up and components never mix.
func TestQuickDisjointUnion(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := ErdosRenyi(2+rng.Intn(10), 0.5, rng)
		c := ErdosRenyi(2+rng.Intn(10), 0.5, rng)
		u := Disjoint(a, c)
		if u.N() != a.N()+c.N() || u.M() != a.M()+c.M() {
			return false
		}
		// No edge crosses the boundary.
		for _, e := range u.Edges() {
			if (e.U < a.N()) != (e.V < a.N()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestPlantedSigns(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g, block := WithPlantedSigns(Grid(4, 4), 4, 0, rng)
	if !g.Signed() {
		t.Fatal("planted graph should be signed")
	}
	for idx, e := range g.Edges() {
		want := int8(-1)
		if block[e.U] == block[e.V] {
			want = 1
		}
		if g.Sign(idx) != want {
			t.Fatalf("edge %v sign = %d, want %d", e, g.Sign(idx), want)
		}
	}
}

func TestMinMaxDegree(t *testing.T) {
	g := Star(4)
	if g.MaxDegree() != 4 || g.MinDegree() != 1 {
		t.Errorf("star degrees: max=%d min=%d", g.MaxDegree(), g.MinDegree())
	}
	empty := NewBuilder(0).Graph()
	if empty.MaxDegree() != 0 || empty.MinDegree() != 0 {
		t.Error("empty graph degrees should be 0")
	}
	if empty.EdgeDensity() != 0 {
		t.Error("empty graph density should be 0")
	}
	if !empty.Connected() {
		t.Error("empty graph is connected by convention")
	}
}
