package graph

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"strconv"
)

// WriteEdgeList writes g in a simple text format:
//
//	n m [weighted] [signed]
//	u v [weight] [sign]
//	...
//
// one edge per line in canonical index order. The hot loop appends digits
// into one reused buffer (strconv.AppendInt), so the cost is O(bytes
// written) with no per-line allocations.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := newFlushWriter(w)
	weighted, signed := g.Weighted(), g.Signed()
	buf := make([]byte, 0, 80)
	buf = strconv.AppendInt(buf, int64(g.N()), 10)
	buf = append(buf, ' ')
	buf = strconv.AppendInt(buf, int64(g.M()), 10)
	if weighted {
		buf = append(buf, " weighted"...)
	}
	if signed {
		buf = append(buf, " signed"...)
	}
	buf = append(buf, '\n')
	if _, err := bw.Write(buf); err != nil {
		return err
	}
	for idx := range g.edges {
		e := g.edges[idx]
		buf = buf[:0]
		buf = strconv.AppendInt(buf, int64(e.U), 10)
		buf = append(buf, ' ')
		buf = strconv.AppendInt(buf, int64(e.V), 10)
		if weighted {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, g.Weight(idx), 10)
		}
		if signed {
			buf = append(buf, ' ')
			buf = strconv.AppendInt(buf, int64(g.Sign(idx)), 10)
		}
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// flushWriter is a minimal buffered writer: like bufio.Writer but sized for
// bulk sequential emission and without the small-write bookkeeping.
type flushWriter struct {
	w   io.Writer
	buf []byte
}

func newFlushWriter(w io.Writer) *flushWriter {
	return &flushWriter{w: w, buf: make([]byte, 0, 1<<20)}
}

func (fw *flushWriter) Write(p []byte) (int, error) {
	if len(fw.buf)+len(p) > cap(fw.buf) {
		if err := fw.Flush(); err != nil {
			return 0, err
		}
		if len(p) > cap(fw.buf) {
			return fw.w.Write(p)
		}
	}
	fw.buf = append(fw.buf, p...)
	return len(p), nil
}

func (fw *flushWriter) Flush() error {
	if len(fw.buf) == 0 {
		return nil
	}
	_, err := fw.w.Write(fw.buf)
	fw.buf = fw.buf[:0]
	return err
}

// edgeListHeader is the parsed first line of the text format.
type edgeListHeader struct {
	n, m             int
	weighted, signed bool
}

// ReadEdgeList parses the format produced by WriteEdgeList.
//
// The parser streams the input twice — pass one counts degrees, pass two
// places edges straight into the CSR arrays via StreamingBuilder — so
// construction needs no pending edge buffer and no per-line allocations.
// When r is an io.ReadSeeker (any *os.File), the passes re-read the stream
// in place; otherwise the input is buffered in memory once. Input whose
// edges are not in canonical sorted order falls back to the Builder path
// (identical semantics, including later-duplicate-wins for weights/signs).
//
// Lines may be arbitrarily long (there is no fixed line cap), and malformed
// input — non-numeric fields, vertex IDs outside [0, n), values that
// overflow the CSR index range — is reported with its 1-based line number
// instead of producing garbage indices.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	rs, ok := r.(io.ReadSeeker)
	if ok {
		if start, err := rs.Seek(0, io.SeekCurrent); err == nil {
			return readEdgeListTwoPass(rs, start)
		}
		// Seek failed (e.g. a pipe pretending): fall through to buffering.
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return readEdgeListTwoPass(bytes.NewReader(data), 0)
}

// readEdgeListTwoPass drives the two parsing passes over a seekable stream
// starting at offset start.
func readEdgeListTwoPass(rs io.ReadSeeker, start int64) (*Graph, error) {
	// Pass 1: parse the header, validate every edge line, count degrees, and
	// detect whether the edges arrive in strictly increasing canonical order.
	p := newEdgeListParser(rs)
	hdr, err := p.header()
	if err != nil {
		return nil, err
	}
	sb, err := NewStreamingBuilder(hdr.n, hdr.m, hdr.weighted, hdr.signed)
	if err != nil {
		return nil, err
	}
	sorted := true
	lastU, lastV := -1, -1
	for i := 0; i < hdr.m; i++ {
		u, v, _, _, err := p.edge(hdr)
		if err != nil {
			return nil, err
		}
		if err := sb.Count(u, v); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", p.line, err)
		}
		if u > v {
			u, v = v, u
		}
		if u < lastU || (u == lastU && v <= lastV) {
			sorted = false
		}
		lastU, lastV = u, v
	}
	if _, err := rs.Seek(start, io.SeekStart); err != nil {
		return nil, err
	}
	// Pass 2: stream edges into their final CSR slots (sorted input), or
	// replay through a Builder (arbitrary-order input).
	p = newEdgeListParser(rs)
	if _, err := p.header(); err != nil {
		return nil, err
	}
	if !sorted {
		return readEdgeListUnsorted(p, hdr)
	}
	if err := sb.FinishCount(); err != nil {
		return nil, err
	}
	for i := 0; i < hdr.m; i++ {
		u, v, w, s, err := p.edge(hdr)
		if err != nil {
			return nil, err
		}
		if err := sb.Place(u, v, w, s); err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", p.line, err)
		}
	}
	g, err := sb.Graph()
	if err != nil {
		return nil, err
	}
	return g, nil
}

// readEdgeListUnsorted is the fallback second pass for input whose edges are
// not canonically sorted: a Builder replay with the historical semantics
// (duplicates allowed, the last occurrence wins for weights and signs).
func readEdgeListUnsorted(p *edgeListParser, hdr edgeListHeader) (*Graph, error) {
	b := NewBuilder(hdr.n)
	for i := 0; i < hdr.m; i++ {
		line := p.line
		u, v, w, s, err := p.edge(hdr)
		if err != nil {
			return nil, err
		}
		switch {
		case hdr.weighted:
			err = b.TryAddWeightedEdge(u, v, w)
		case hdr.signed:
			err = b.TryAddSignedEdge(u, v, s)
		default:
			err = b.TryAddEdge(u, v)
		}
		if err != nil {
			return nil, fmt.Errorf("graph: line %d: %w", line, err)
		}
	}
	return b.Graph(), nil
}

// edgeListParser tokenizes the text edge-list format directly from byte
// chunks: no Scanner, no line-length cap, no per-line allocations. It tracks
// the current 1-based line for error reporting.
type edgeListParser struct {
	r    io.Reader
	buf  []byte
	pos  int
	end  int
	eof  bool
	line int
}

func newEdgeListParser(r io.Reader) *edgeListParser {
	return &edgeListParser{r: r, buf: make([]byte, 1<<20), line: 1}
}

// fill refills the buffer, preserving unconsumed bytes. Returns false at EOF
// with no bytes left.
func (p *edgeListParser) fill() (bool, error) {
	if p.pos < p.end {
		copy(p.buf, p.buf[p.pos:p.end])
	}
	p.end -= p.pos
	p.pos = 0
	for !p.eof && p.end < len(p.buf) {
		n, err := p.r.Read(p.buf[p.end:])
		p.end += n
		if err == io.EOF {
			p.eof = true
			break
		}
		if err != nil {
			return false, err
		}
		if n > 0 {
			break
		}
	}
	return p.end > 0, nil
}

// peek returns the next byte without consuming it, or 0 at EOF.
func (p *edgeListParser) peek() (byte, error) {
	if p.pos == p.end {
		ok, err := p.fill()
		if err != nil {
			return 0, err
		}
		if !ok {
			return 0, nil
		}
	}
	return p.buf[p.pos], nil
}

// skipSpaces consumes spaces, tabs, and carriage returns.
func (p *edgeListParser) skipSpaces() error {
	for {
		c, err := p.peek()
		if err != nil {
			return err
		}
		if c != ' ' && c != '\t' && c != '\r' || (p.pos == p.end && p.eof) {
			return nil
		}
		p.pos++
	}
}

// atEOF reports whether the stream is exhausted.
func (p *edgeListParser) atEOF() bool { return p.pos == p.end && p.eof }

// parseInt reads one signed decimal token with explicit overflow checking.
func (p *edgeListParser) parseInt(what string) (int64, error) {
	if err := p.skipSpaces(); err != nil {
		return 0, err
	}
	neg := false
	c, err := p.peek()
	if err != nil {
		return 0, err
	}
	if !p.atEOF() && (c == '-' || c == '+') {
		neg = c == '-'
		p.pos++
	}
	var val int64
	digits := 0
	for {
		c, err := p.peek()
		if err != nil {
			return 0, err
		}
		if p.atEOF() || c < '0' || c > '9' {
			break
		}
		d := int64(c - '0')
		if val > (math.MaxInt64-d)/10 {
			return 0, fmt.Errorf("graph: line %d: %s overflows int64", p.line, what)
		}
		val = val*10 + d
		digits++
		p.pos++
	}
	if digits == 0 {
		if p.atEOF() {
			return 0, fmt.Errorf("graph: line %d: unexpected end of input parsing %s", p.line, what)
		}
		return 0, fmt.Errorf("graph: line %d: bad %s: expected a number, got %q", p.line, what, rune(c))
	}
	if neg {
		val = -val
	}
	return val, nil
}

// parseWord reads one non-space token.
func (p *edgeListParser) parseWord() (string, error) {
	if err := p.skipSpaces(); err != nil {
		return "", err
	}
	var w []byte
	for {
		c, err := p.peek()
		if err != nil {
			return "", err
		}
		if p.atEOF() || c == ' ' || c == '\t' || c == '\r' || c == '\n' {
			return string(w), nil
		}
		w = append(w, c)
		p.pos++
	}
}

// endLine consumes trailing whitespace and the line terminator. A non-space
// byte before the newline is a field-count error.
func (p *edgeListParser) endLine() error {
	if err := p.skipSpaces(); err != nil {
		return err
	}
	c, err := p.peek()
	if err != nil {
		return err
	}
	if p.atEOF() {
		return nil
	}
	if c != '\n' {
		return fmt.Errorf("graph: line %d: trailing garbage %q (too many fields)", p.line, rune(c))
	}
	p.pos++
	p.line++
	return nil
}

// header parses the "n m [weighted] [signed]" first line.
func (p *edgeListParser) header() (edgeListHeader, error) {
	var hdr edgeListHeader
	if _, err := p.peek(); err != nil {
		return hdr, err
	}
	if p.atEOF() {
		return hdr, fmt.Errorf("graph: empty edge-list input")
	}
	n, err := p.parseInt("vertex count")
	if err != nil {
		return hdr, err
	}
	m, err := p.parseInt("edge count")
	if err != nil {
		return hdr, err
	}
	if n < 0 || n > math.MaxInt32 {
		return hdr, fmt.Errorf("graph: line %d: vertex count %d outside the CSR int32 index range", p.line, n)
	}
	if m < 0 || m > math.MaxInt32/2 {
		return hdr, fmt.Errorf("graph: line %d: edge count %d outside the CSR int32 index range", p.line, m)
	}
	hdr.n, hdr.m = int(n), int(m)
	for {
		if err := p.skipSpaces(); err != nil {
			return hdr, err
		}
		c, err := p.peek()
		if err != nil {
			return hdr, err
		}
		if p.atEOF() {
			break
		}
		if c == '\n' {
			p.pos++
			p.line++
			break
		}
		tok, err := p.parseWord()
		if err != nil {
			return hdr, err
		}
		switch tok {
		case "weighted":
			hdr.weighted = true
		case "signed":
			hdr.signed = true
		default:
			return hdr, fmt.Errorf("graph: line %d: unknown header flag %q", p.line, tok)
		}
	}
	if hdr.weighted && hdr.signed {
		return hdr, fmt.Errorf("graph: line %d: weighted+signed graphs not supported in edge-list I/O", p.line)
	}
	return hdr, nil
}

// edge parses one edge line according to the header's shape and validates
// every field, reporting errors with the line number.
func (p *edgeListParser) edge(hdr edgeListHeader) (u, v int, w int64, s int8, err error) {
	line := p.line
	if p.atEOF() {
		return 0, 0, 0, 0, fmt.Errorf("graph: line %d: expected %d edges, input ended early", line, hdr.m)
	}
	ui, err := p.parseInt("endpoint")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	vi, err := p.parseInt("endpoint")
	if err != nil {
		return 0, 0, 0, 0, err
	}
	if ui < 0 || ui >= int64(hdr.n) || vi < 0 || vi >= int64(hdr.n) {
		return 0, 0, 0, 0, fmt.Errorf("graph: line %d: edge {%d,%d} out of range for n=%d: %w", line, ui, vi, hdr.n, ErrVertexRange)
	}
	if ui == vi {
		return 0, 0, 0, 0, fmt.Errorf("graph: line %d: self-loop on vertex %d", line, ui)
	}
	w, s = 1, 1
	if hdr.weighted {
		w, err = p.parseInt("weight")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if w <= 0 {
			return 0, 0, 0, 0, fmt.Errorf("graph: line %d: non-positive weight %d", line, w)
		}
	}
	if hdr.signed {
		sv, err := p.parseInt("sign")
		if err != nil {
			return 0, 0, 0, 0, err
		}
		if sv != 1 && sv != -1 {
			return 0, 0, 0, 0, fmt.Errorf("graph: line %d: bad sign %d", line, sv)
		}
		s = int8(sv)
	}
	if err := p.endLine(); err != nil {
		return 0, 0, 0, 0, err
	}
	return int(ui), int(vi), w, s, nil
}
