package graph

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteEdgeList writes g in a simple text format:
//
//	n m [weighted] [signed]
//	u v [weight] [sign]
//	...
//
// one edge per line in canonical index order.
func WriteEdgeList(w io.Writer, g *Graph) error {
	bw := bufio.NewWriter(w)
	header := fmt.Sprintf("%d %d", g.N(), g.M())
	if g.Weighted() {
		header += " weighted"
	}
	if g.Signed() {
		header += " signed"
	}
	if _, err := fmt.Fprintln(bw, header); err != nil {
		return err
	}
	for idx, e := range g.Edges() {
		line := fmt.Sprintf("%d %d", e.U, e.V)
		if g.Weighted() {
			line += " " + strconv.FormatInt(g.Weight(idx), 10)
		}
		if g.Signed() {
			line += " " + strconv.Itoa(int(g.Sign(idx)))
		}
		if _, err := fmt.Fprintln(bw, line); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadEdgeList parses the format produced by WriteEdgeList.
func ReadEdgeList(r io.Reader) (*Graph, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	if !sc.Scan() {
		if err := sc.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("graph: empty edge-list input")
	}
	head := strings.Fields(sc.Text())
	if len(head) < 2 {
		return nil, fmt.Errorf("graph: malformed header %q", sc.Text())
	}
	n, err := strconv.Atoi(head[0])
	if err != nil {
		return nil, fmt.Errorf("graph: bad vertex count %q: %w", head[0], err)
	}
	m, err := strconv.Atoi(head[1])
	if err != nil {
		return nil, fmt.Errorf("graph: bad edge count %q: %w", head[1], err)
	}
	weighted, signed := false, false
	for _, tok := range head[2:] {
		switch tok {
		case "weighted":
			weighted = true
		case "signed":
			signed = true
		default:
			return nil, fmt.Errorf("graph: unknown header flag %q", tok)
		}
	}
	b := NewBuilder(n)
	for i := 0; i < m; i++ {
		if !sc.Scan() {
			if err := sc.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("graph: expected %d edges, got %d", m, i)
		}
		fields := strings.Fields(sc.Text())
		want := 2
		if weighted {
			want++
		}
		if signed {
			want++
		}
		if len(fields) != want {
			return nil, fmt.Errorf("graph: edge line %d has %d fields, want %d", i, len(fields), want)
		}
		u, err := strconv.Atoi(fields[0])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q: %w", fields[0], err)
		}
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			return nil, fmt.Errorf("graph: bad endpoint %q: %w", fields[1], err)
		}
		next := 2
		switch {
		case weighted:
			w, err := strconv.ParseInt(fields[next], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("graph: bad weight %q: %w", fields[next], err)
			}
			b.AddWeightedEdge(u, v, w)
			next++
			if signed {
				return nil, fmt.Errorf("graph: weighted+signed graphs not supported in edge-list I/O")
			}
		case signed:
			s, err := strconv.Atoi(fields[next])
			if err != nil || (s != 1 && s != -1) {
				return nil, fmt.Errorf("graph: bad sign %q", fields[next])
			}
			b.AddSignedEdge(u, v, int8(s))
		default:
			b.AddEdge(u, v)
		}
	}
	return b.Graph(), nil
}
