package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// TestReadEdgeListSeekable exercises the two-pass streaming path (bytes.Reader
// is an io.ReadSeeker) on the canonical output of WriteEdgeList.
func TestReadEdgeListSeekable(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for _, g := range []*Graph{
		Grid(6, 5),
		WithRandomWeights(RandomMaximalPlanar(40, rng), 1000, rng),
		WithRandomSigns(Hypercube(4), 0.5, rng),
		NewBuilder(3).Graph(),
	} {
		var buf bytes.Buffer
		if err := WriteEdgeList(&buf, g); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadEdgeList(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read: %v", err)
		}
		requireIdenticalGraphs(t, got, g)
		// And the round trip is byte-identical.
		var buf2 bytes.Buffer
		if err := WriteEdgeList(&buf2, got); err != nil {
			t.Fatalf("rewrite: %v", err)
		}
		if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
			t.Fatal("text round trip is not byte-identical")
		}
	}
}

// TestReadEdgeListUnsortedFallback feeds edges in non-canonical order (which
// WriteEdgeList never produces) and checks the Builder fallback reproduces
// the historical semantics, including later-duplicate-wins.
func TestReadEdgeListUnsortedFallback(t *testing.T) {
	in := "4 4\n2 3\n0 1\n1 0\n0 2\n"
	g, err := ReadEdgeList(strings.NewReader(in))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.M() != 3 {
		t.Fatalf("M = %d, want 3 (duplicate 0-1 deduped)", g.M())
	}
	want := NewBuilder(4)
	want.AddEdge(2, 3)
	want.AddEdge(0, 1)
	want.AddEdge(0, 2)
	requireIdenticalGraphs(t, g, want.Graph())

	weighted := "3 3 weighted\n1 2 7\n0 1 5\n0 1 9\n"
	gw, err := ReadEdgeList(strings.NewReader(weighted))
	if err != nil {
		t.Fatalf("read weighted: %v", err)
	}
	if idx, ok := gw.EdgeIndex(0, 1); !ok || gw.Weight(idx) != 9 {
		t.Fatalf("duplicate weighted edge: want last-wins weight 9")
	}
}

// TestReadEdgeListLongLine verifies there is no line-length cap: a header
// line padded past the old 1 MiB Scanner limit still parses.
func TestReadEdgeListLongLine(t *testing.T) {
	var sb strings.Builder
	sb.WriteString("3 1")
	for i := 0; i < (1<<20)+4096; i++ {
		sb.WriteByte(' ')
	}
	sb.WriteString("weighted\n0 1 3\n")
	g, err := ReadEdgeList(strings.NewReader(sb.String()))
	if err != nil {
		t.Fatalf("read with >1MiB line: %v", err)
	}
	if !g.Weighted() || g.Weight(0) != 3 {
		t.Fatal("long header line parsed incorrectly")
	}
}

// TestReadEdgeListLineNumberedErrors checks that malformed input reports the
// offending 1-based line instead of silently producing garbage indices.
func TestReadEdgeListLineNumberedErrors(t *testing.T) {
	cases := []struct {
		name, in, want string
	}{
		{"id-out-of-range", "3 2\n0 1\n0 5\n", "line 3"},
		{"negative-id", "3 1\n-1 2\n", "line 2"},
		{"negative-id-second", "3 2\n0 1\n0 -2\n", "line 3"},
		{"negative-id-unsorted", "3 3\n1 2\n0 2\n-1 2\n", "line 4"},
		{"id-out-of-range-unsorted", "3 3\n1 2\n0 2\n0 7\n", "line 4"},
		{"huge-id-overflows", "3 1\n0 99999999999999999999999999\n", "line 2"},
		{"id-past-int32", "1000 1\n0 4294967296\n", "line 2"},
		{"n-past-int32", "4294967296 0\n", "line 1"},
		{"self-loop", "3 1\n2 2\n", "line 2"},
		{"bad-field", "3 1\n0 x\n", "line 2"},
		{"too-many-fields", "3 1\n0 1 5\n", "line 2"},
		{"missing-field", "3 1 weighted\n0 1\n", "line 2"},
		{"bad-sign", "3 1 signed\n0 1 2\n", "line 2"},
		{"negative-weight", "3 1 weighted\n0 1 -4\n", "line 2"},
		{"truncated", "3 2\n0 1\n", "line 3"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ReadEdgeList(strings.NewReader(tc.in))
			if err == nil {
				t.Fatalf("input %q: expected error", tc.in)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not name %s", err, tc.want)
			}
		})
	}
	// Out-of-range vertex IDs surface the ErrVertexRange sentinel through the
	// line-numbered wrapper, on both the streaming and Builder-fallback paths.
	for _, in := range []string{"3 1\n-1 2\n", "3 2\n0 1\n0 5\n", "3 3\n1 2\n0 2\n-1 2\n"} {
		if _, err := ReadEdgeList(strings.NewReader(in)); !errors.Is(err, ErrVertexRange) {
			t.Errorf("input %q: error %v does not wrap ErrVertexRange", in, err)
		}
	}
}

// TestReadEdgeListCRLF accepts Windows line endings.
func TestReadEdgeListCRLF(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\r\n0 1\r\n1 2\r\n"))
	if err != nil {
		t.Fatalf("read CRLF: %v", err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}

// TestReadEdgeListNoTrailingNewline parses input whose last line lacks \n.
func TestReadEdgeListNoTrailingNewline(t *testing.T) {
	g, err := ReadEdgeList(strings.NewReader("3 2\n0 1\n1 2"))
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if g.M() != 2 {
		t.Fatalf("M = %d, want 2", g.M())
	}
}
