//go:build linux

package graph

import (
	"fmt"
	"os"
	"syscall"
)

// OpenMapped memory-maps a binary CSR file read-only and aliases the Graph
// arrays directly at the mapped pages, so opening costs O(1) in the edge
// count: no bytes are copied or even touched until the graph is traversed,
// at which point the kernel pages them in on demand (and shares them across
// processes via the page cache). The checksum is deliberately not verified —
// that would force a full read and defeat the point; use ReadBinary when
// integrity matters more than open latency.
//
// On hosts where the on-disk layout cannot alias Go slices (big-endian or
// 32-bit int), OpenMapped transparently falls back to a full ReadBinary copy.
func OpenMapped(path string) (*Mapped, error) {
	if !canAlias() {
		return readBinaryFallback(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, err
	}
	size := fi.Size()
	if size < binHeaderSize {
		return nil, fmt.Errorf("graph: %s is %d bytes, smaller than the binary header", path, size)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, fmt.Errorf("graph: mmap %s: %w", path, err)
	}
	g, err := mapGraph(data)
	if err != nil {
		syscall.Munmap(data)
		return nil, err
	}
	return &Mapped{Graph: g, data: data}, nil
}

func unmap(data []byte) error { return syscall.Munmap(data) }

// mmapSupported reports at compile time that OpenMapped has a real mapping
// path on this platform (it may still fall back when canAlias() is false).
const mmapSupported = true
