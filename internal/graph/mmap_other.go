//go:build !linux

package graph

// OpenMapped on platforms without the mmap fast path reads the file by copy;
// the Mapped wrapper keeps the call site portable. See mmap_linux.go for the
// zero-copy contract this stands in for.
func OpenMapped(path string) (*Mapped, error) {
	return readBinaryFallback(path)
}

func unmap(data []byte) error { return nil }

const mmapSupported = false
