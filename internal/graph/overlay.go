package graph

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Mutation errors returned by Overlay operations. They are wrapped with the
// offending endpoints, so test with errors.Is.
var (
	// ErrEdgeExists is returned when adding an edge that is already present.
	ErrEdgeExists = errors.New("edge already present")
	// ErrEdgeMissing is returned when deleting an edge that is not present.
	ErrEdgeMissing = errors.New("no such edge")
	// ErrVertexRange is returned for endpoints outside [0, N()).
	ErrVertexRange = errors.New("vertex out of range")
	// ErrVertexDeleted is returned for operations on a tombstoned vertex.
	ErrVertexDeleted = errors.New("vertex deleted")
	// ErrSelfLoop is returned when adding an edge {v, v}.
	ErrSelfLoop = errors.New("self-loop")
)

// DefaultCompactThreshold is the delta fraction above which NeedsCompact
// recommends materializing the overlay back to canonical CSR: past roughly a
// quarter of the base edge count in deltas, the O(log) per-read overhead and
// the delta bookkeeping cost more than a rebuild.
const DefaultCompactThreshold = 0.25

// Overlay is a mutable delta layer over an immutable base graph (*Graph,
// *View, or an mmap-backed graph — anything satisfying G). It implements the
// full G interface itself, presenting exactly the graph that Compact would
// materialize: same vertex IDs, same canonical edge order, same edge indices,
// weights and signs. Algorithms written against G therefore behave
// identically on the overlay and on its compacted form; FuzzOverlayEquivalence
// pins that byte-for-byte.
//
// Deltas are stored as a tombstone bitmap over base edges plus sorted
// per-row insert lists, so reads merge two sorted streams:
//
//   - edge deletions tombstone the base edge (dead bitmap); deleting an
//     inserted edge removes it from the insert set;
//   - edge insertions land in a sorted key array (canonical u<<32|v) with
//     per-vertex sorted neighbor rows for O(row) adjacency merges;
//   - re-adding a tombstoned base edge resurrects it with the weight/sign of
//     the new operation (recorded as an override);
//   - vertex additions extend the dense ID space at the top;
//   - vertex deletions isolate: incident edges are deleted and the ID is
//     tombstoned (further operations on it fail), but the ID itself stays, so
//     vertex IDs remain dense 0..N()-1 and positional state keyed by vertex
//     (assignments, leader tables) survives churn without remapping.
//
// Global edge indices stay canonical under mutation: edge idx is the idx-th
// live edge in (U, V) order, computed from lazily maintained rank arrays
// (live-base-edges-before and inserts-before prefix counts). Degree is O(1),
// neighbor iteration is O(deg) amortized plus O(log inserts) per inserted
// neighbor, and EdgeAt/Weight/Sign are O(log m). That overhead is the price
// of mutability — hot read loops should Compact first, and NeedsCompact
// reports when the delta fraction makes that worthwhile.
//
// An Overlay is NOT safe for concurrent use: mutations and reads (which may
// rebuild the lazy rank arrays) must be externally serialized. The serving
// path never shares one — it builds an overlay off to the side, compacts,
// and hot-swaps the immutable result.
type Overlay struct {
	base  G
	baseN int
	baseM int
	n     int

	dead      []bool // tombstone per base edge
	deadCount int
	deadV     []bool // tombstone per vertex (deleted = isolated, ID retained)
	deadVN    int

	insKeys []uint64  // canonical u<<32|v keys of inserted edges, sorted
	insW    []int64   // weight per inserted edge (1 when unweighted)
	insS    []int8    // sign per inserted edge (+1 when unsigned)
	insRow  [][]int32 // per-vertex sorted inserted-neighbor lists (both directions)

	deg []int32 // maintained degree per vertex

	overW map[int32]int64 // weight overrides for resurrected base edges
	overS map[int32]int8  // sign overrides for resurrected base edges

	weighted bool
	signed   bool

	// Lazily rebuilt rank arrays (rankDirty set by every mutation).
	rankDirty     bool
	aliveBefore   []int32 // len baseM+1: live base edges with index < i
	insBeforeBase []int32 // len baseM+1: inserts with key < key(base edge i)
	insGlobal     []int32 // per insert: its global (canonical) edge index
}

// Compile-time interface check: an overlay is a full graph.G.
var _ G = (*Overlay)(nil)

// NewOverlay returns an empty delta layer over base. The base graph must not
// be mutated (none of the G implementations can be) and must outlive the
// overlay; the overlay aliases it and copies nothing but the degree array.
func NewOverlay(base G) *Overlay {
	n, m := base.N(), base.M()
	o := &Overlay{
		base:      base,
		baseN:     n,
		baseM:     m,
		n:         n,
		dead:      make([]bool, m),
		deadV:     make([]bool, n),
		deg:       make([]int32, n),
		insRow:    make([][]int32, n),
		rankDirty: true,
	}
	for v := 0; v < n; v++ {
		o.deg[v] = int32(base.Degree(v))
	}
	type annotated interface {
		Weighted() bool
		Signed() bool
	}
	if a, ok := base.(annotated); ok {
		o.weighted, o.signed = a.Weighted(), a.Signed()
	}
	return o
}

// edgeKey returns the canonical sort key of edge {u, v}.
func edgeKey(u, v int) uint64 {
	if u > v {
		u, v = v, u
	}
	return uint64(u)<<32 | uint64(v)
}

// Base returns the immutable graph the overlay layers over.
func (o *Overlay) Base() G { return o.base }

// N returns the current number of vertices (base plus added; deleted vertex
// IDs are retained as isolated tombstones, so IDs stay dense).
func (o *Overlay) N() int { return o.n }

// M returns the current number of live edges.
func (o *Overlay) M() int { return o.baseM - o.deadCount + len(o.insKeys) }

// Degree returns the live degree of vertex v in O(1).
func (o *Overlay) Degree(v int) int { return int(o.deg[v]) }

// Weighted reports whether the overlay carries edge weights (inherited from
// the base, or acquired by the first weighted insertion).
func (o *Overlay) Weighted() bool { return o.weighted }

// Signed reports whether the overlay carries edge signs.
func (o *Overlay) Signed() bool { return o.signed }

// Inserted returns the number of live inserted edges.
func (o *Overlay) Inserted() int { return len(o.insKeys) }

// Deleted returns the number of tombstoned base edges.
func (o *Overlay) Deleted() int { return o.deadCount }

// AddedVertices returns how many vertices were added beyond the base graph.
func (o *Overlay) AddedVertices() int { return o.n - o.baseN }

// DeletedVertices returns how many vertices are tombstoned.
func (o *Overlay) DeletedVertices() int { return o.deadVN }

// Deltas returns the total number of outstanding deltas: inserted edges,
// tombstoned base edges, and added vertices.
func (o *Overlay) Deltas() int { return len(o.insKeys) + o.deadCount + (o.n - o.baseN) }

// DeltaFraction returns Deltas relative to the base edge count (1 when the
// base is edgeless but deltas exist).
func (o *Overlay) DeltaFraction() float64 {
	d := o.Deltas()
	if o.baseM == 0 {
		if d > 0 {
			return 1
		}
		return 0
	}
	return float64(d) / float64(o.baseM)
}

// NeedsCompact reports whether the delta fraction has crossed threshold
// (DefaultCompactThreshold when threshold <= 0).
func (o *Overlay) NeedsCompact(threshold float64) bool {
	if threshold <= 0 {
		threshold = DefaultCompactThreshold
	}
	return o.DeltaFraction() >= threshold
}

// ensureRank rebuilds the lazy rank arrays after a mutation: one linear merge
// walk over base edges and insert keys fills aliveBefore (live base edges
// before each base index), insBeforeBase (inserts sorting before each base
// edge), and insGlobal (each insert's global edge index).
func (o *Overlay) ensureRank() {
	if !o.rankDirty {
		return
	}
	if o.aliveBefore == nil {
		o.aliveBefore = make([]int32, o.baseM+1)
		o.insBeforeBase = make([]int32, o.baseM+1)
	}
	if cap(o.insGlobal) < len(o.insKeys) {
		o.insGlobal = make([]int32, len(o.insKeys))
	}
	o.insGlobal = o.insGlobal[:len(o.insKeys)]
	live := int32(0)
	p := 0
	for bi := 0; bi < o.baseM; bi++ {
		e := o.base.EdgeAt(bi)
		k := edgeKey(e.U, e.V)
		for p < len(o.insKeys) && o.insKeys[p] < k {
			o.insGlobal[p] = int32(p) + live
			p++
		}
		o.aliveBefore[bi] = live
		o.insBeforeBase[bi] = int32(p)
		if !o.dead[bi] {
			live++
		}
	}
	for ; p < len(o.insKeys); p++ {
		o.insGlobal[p] = int32(p) + live
	}
	o.aliveBefore[o.baseM] = live
	o.insBeforeBase[o.baseM] = int32(len(o.insKeys))
	o.rankDirty = false
}

// findIns returns the position of key in insKeys, or -1.
func (o *Overlay) findIns(key uint64) int {
	p := sort.Search(len(o.insKeys), func(i int) bool { return o.insKeys[i] >= key })
	if p < len(o.insKeys) && o.insKeys[p] == key {
		return p
	}
	return -1
}

// baseEdgeIndex locates edge {u, v} in the base graph (live or tombstoned).
func (o *Overlay) baseEdgeIndex(u, v int) (int, bool) {
	if u >= o.baseN || v >= o.baseN {
		return 0, false
	}
	if g, ok := o.base.(*Graph); ok {
		return g.EdgeIndex(u, v)
	}
	k := edgeKey(u, v)
	bi := sort.Search(o.baseM, func(i int) bool {
		e := o.base.EdgeAt(i)
		return edgeKey(e.U, e.V) >= k
	})
	if bi < o.baseM {
		if e := o.base.EdgeAt(bi); edgeKey(e.U, e.V) == k {
			return bi, true
		}
	}
	return 0, false
}

// resolve maps a global edge index to either an insert position (isIns true)
// or a base edge index.
func (o *Overlay) resolve(idx int) (bi, p int, isIns bool) {
	o.ensureRank()
	p = sort.Search(len(o.insGlobal), func(i int) bool { return int(o.insGlobal[i]) >= idx })
	if p < len(o.insGlobal) && int(o.insGlobal[p]) == idx {
		return 0, p, true
	}
	// idx is the r-th live base edge, where r counts out the p inserts that
	// sort before it.
	r := idx - p
	bi = sort.Search(o.baseM, func(i int) bool { return int(o.aliveBefore[i+1]) > r })
	return bi, 0, false
}

// EdgeAt returns the edge with global index idx in canonical order.
func (o *Overlay) EdgeAt(idx int) Edge {
	bi, p, isIns := o.resolve(idx)
	if isIns {
		k := o.insKeys[p]
		return Edge{U: int(k >> 32), V: int(k & math.MaxUint32)}
	}
	return o.base.EdgeAt(bi)
}

// Weight returns the weight of global edge idx (1 for unweighted overlays).
func (o *Overlay) Weight(idx int) int64 {
	bi, p, isIns := o.resolve(idx)
	if isIns {
		return o.insW[p]
	}
	if w, ok := o.overW[int32(bi)]; ok {
		return w
	}
	return o.base.Weight(bi)
}

// Sign returns the sign of global edge idx (+1 for unsigned overlays).
func (o *Overlay) Sign(idx int) int8 {
	bi, p, isIns := o.resolve(idx)
	if isIns {
		return o.insS[p]
	}
	if s, ok := o.overS[int32(bi)]; ok {
		return s
	}
	return o.base.Sign(bi)
}

// ForEachNeighbor calls fn for every live neighbor u of v with the global
// edge index, in ascending neighbor order — the same contract as *Graph,
// produced by merging the base adjacency row (tombstones skipped) with the
// sorted insert row.
func (o *Overlay) ForEachNeighbor(v int, fn func(u, edgeIdx int)) {
	o.ensureRank()
	row := o.insRow[v]
	ri := 0
	emitIns := func(limit int32) {
		for ri < len(row) && row[ri] < limit {
			u := int(row[ri])
			p := o.findIns(edgeKey(v, u))
			fn(u, int(o.insGlobal[p]))
			ri++
		}
	}
	if v < o.baseN {
		o.base.ForEachNeighbor(v, func(u, bi int) {
			if o.dead[bi] {
				return
			}
			emitIns(int32(u))
			fn(u, int(o.aliveBefore[bi]+o.insBeforeBase[bi]))
		})
	}
	emitIns(int32(o.n))
}

// HasEdge reports whether {u, v} is a live edge of the overlay.
func (o *Overlay) HasEdge(u, v int) bool {
	if u < 0 || u >= o.n || v < 0 || v >= o.n || u == v {
		return false
	}
	if bi, ok := o.baseEdgeIndex(u, v); ok {
		return !o.dead[bi]
	}
	return o.findIns(edgeKey(u, v)) >= 0
}

// checkPair validates the endpoints of a mutation.
func (o *Overlay) checkPair(u, v int) error {
	if u < 0 || u >= o.n || v < 0 || v >= o.n {
		return fmt.Errorf("graph: edge {%d,%d} for n=%d: %w", u, v, o.n, ErrVertexRange)
	}
	if u == v {
		return fmt.Errorf("graph: edge {%d,%d}: %w", u, v, ErrSelfLoop)
	}
	if o.deadV[u] {
		return fmt.Errorf("graph: vertex %d: %w", u, ErrVertexDeleted)
	}
	if o.deadV[v] {
		return fmt.Errorf("graph: vertex %d: %w", v, ErrVertexDeleted)
	}
	return nil
}

// AddEdge inserts the undirected edge {u, v} with weight 1 and sign +1.
// Unlike Builder.AddEdge it never panics: out-of-range endpoints, self-loops,
// tombstoned vertices and duplicate edges all return wrapped sentinel errors,
// which is what lets mutation streams from untrusted input share one
// validation path.
func (o *Overlay) AddEdge(u, v int) error { return o.addEdge(u, v, 1, 1, false, false) }

// AddWeightedEdge inserts {u, v} with the given positive weight.
func (o *Overlay) AddWeightedEdge(u, v int, w int64) error {
	if w <= 0 {
		return fmt.Errorf("graph: non-positive edge weight %d on {%d,%d}", w, u, v)
	}
	return o.addEdge(u, v, w, 1, true, false)
}

// AddSignedEdge inserts {u, v} with the given sign (+1 or -1).
func (o *Overlay) AddSignedEdge(u, v int, s int8) error {
	if s != 1 && s != -1 {
		return fmt.Errorf("graph: invalid edge sign %d on {%d,%d}", s, u, v)
	}
	return o.addEdge(u, v, 1, s, false, true)
}

func (o *Overlay) addEdge(u, v int, w int64, s int8, isW, isS bool) error {
	if err := o.checkPair(u, v); err != nil {
		return err
	}
	if u > v {
		u, v = v, u
	}
	if bi, ok := o.baseEdgeIndex(u, v); ok {
		if !o.dead[bi] {
			return fmt.Errorf("graph: edge {%d,%d}: %w", u, v, ErrEdgeExists)
		}
		// Resurrect the tombstoned base edge with the weight/sign of this
		// operation, exactly as a fresh insert would carry them.
		o.dead[bi] = false
		o.deadCount--
		o.setOverride(bi, w, s)
		o.deg[u]++
		o.deg[v]++
		o.weighted = o.weighted || isW
		o.signed = o.signed || isS
		o.rankDirty = true
		return nil
	}
	if o.M() >= math.MaxInt32/2 {
		return fmt.Errorf("graph: edge {%d,%d}: m=%d exceeds the CSR int32 index range", u, v, o.M())
	}
	key := edgeKey(u, v)
	p := sort.Search(len(o.insKeys), func(i int) bool { return o.insKeys[i] >= key })
	if p < len(o.insKeys) && o.insKeys[p] == key {
		return fmt.Errorf("graph: edge {%d,%d}: %w", u, v, ErrEdgeExists)
	}
	o.insKeys = append(o.insKeys, 0)
	copy(o.insKeys[p+1:], o.insKeys[p:])
	o.insKeys[p] = key
	o.insW = append(o.insW, 0)
	copy(o.insW[p+1:], o.insW[p:])
	o.insW[p] = w
	o.insS = append(o.insS, 0)
	copy(o.insS[p+1:], o.insS[p:])
	o.insS[p] = s
	o.insRow[u] = insRowInsert(o.insRow[u], int32(v))
	o.insRow[v] = insRowInsert(o.insRow[v], int32(u))
	o.deg[u]++
	o.deg[v]++
	o.weighted = o.weighted || isW
	o.signed = o.signed || isS
	o.rankDirty = true
	return nil
}

// setOverride records (or clears) the weight/sign override of a resurrected
// base edge so it reads back with the values of the re-adding operation.
func (o *Overlay) setOverride(bi int, w int64, s int8) {
	if w != o.base.Weight(bi) {
		if o.overW == nil {
			o.overW = make(map[int32]int64)
		}
		o.overW[int32(bi)] = w
	} else {
		delete(o.overW, int32(bi))
	}
	if s != o.base.Sign(bi) {
		if o.overS == nil {
			o.overS = make(map[int32]int8)
		}
		o.overS[int32(bi)] = s
	} else {
		delete(o.overS, int32(bi))
	}
}

// DeleteEdge removes the edge {u, v}: base edges are tombstoned, inserted
// edges are removed from the insert set. Returns ErrEdgeMissing (wrapped) if
// the edge is not live.
func (o *Overlay) DeleteEdge(u, v int) error {
	if err := o.checkPair(u, v); err != nil {
		return err
	}
	if u > v {
		u, v = v, u
	}
	if bi, ok := o.baseEdgeIndex(u, v); ok {
		if o.dead[bi] {
			return fmt.Errorf("graph: edge {%d,%d}: %w", u, v, ErrEdgeMissing)
		}
		o.dead[bi] = true
		o.deadCount++
		delete(o.overW, int32(bi))
		delete(o.overS, int32(bi))
		o.deg[u]--
		o.deg[v]--
		o.rankDirty = true
		return nil
	}
	p := o.findIns(edgeKey(u, v))
	if p < 0 {
		return fmt.Errorf("graph: edge {%d,%d}: %w", u, v, ErrEdgeMissing)
	}
	o.insKeys = append(o.insKeys[:p], o.insKeys[p+1:]...)
	o.insW = append(o.insW[:p], o.insW[p+1:]...)
	o.insS = append(o.insS[:p], o.insS[p+1:]...)
	o.insRow[u] = insRowDelete(o.insRow[u], int32(v))
	o.insRow[v] = insRowDelete(o.insRow[v], int32(u))
	o.deg[u]--
	o.deg[v]--
	o.rankDirty = true
	return nil
}

// AddVertex appends a fresh isolated vertex and returns its ID. Vertex IDs
// are dense and never reused.
func (o *Overlay) AddVertex() int {
	if o.n >= math.MaxInt32 {
		panic(fmt.Sprintf("graph: n=%d exceeds the CSR int32 index range", o.n))
	}
	o.deg = append(o.deg, 0)
	o.insRow = append(o.insRow, nil)
	o.deadV = append(o.deadV, false)
	o.n++
	return o.n - 1
}

// DeleteVertex tombstones vertex v: every incident live edge is deleted and
// further operations naming v fail with ErrVertexDeleted. The ID itself is
// retained (as an isolated vertex, including after Compact) so vertex IDs
// stay dense and positional per-vertex state survives churn.
func (o *Overlay) DeleteVertex(v int) error {
	if v < 0 || v >= o.n {
		return fmt.Errorf("graph: vertex %d for n=%d: %w", v, o.n, ErrVertexRange)
	}
	if o.deadV[v] {
		return fmt.Errorf("graph: vertex %d: %w", v, ErrVertexDeleted)
	}
	var nbrs []int
	o.ForEachNeighbor(v, func(u, _ int) { nbrs = append(nbrs, u) })
	for _, u := range nbrs {
		if err := o.DeleteEdge(v, u); err != nil {
			return err
		}
	}
	o.deadV[v] = true
	o.deadVN++
	return nil
}

// insRowInsert inserts u into the sorted row, keeping it sorted.
func insRowInsert(row []int32, u int32) []int32 {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= u })
	row = append(row, 0)
	copy(row[i+1:], row[i:])
	row[i] = u
	return row
}

// insRowDelete removes u from the sorted row.
func insRowDelete(row []int32, u int32) []int32 {
	i := sort.Search(len(row), func(i int) bool { return row[i] >= u })
	if i < len(row) && row[i] == u {
		row = append(row[:i], row[i+1:]...)
	}
	return row
}

// ForEachDeleted calls fn for every tombstoned base edge with its base edge
// index, in ascending index order. Incremental decomposition uses this to
// find clusters whose certificate lost an edge.
func (o *Overlay) ForEachDeleted(fn func(baseIdx int, e Edge)) {
	for bi := 0; bi < o.baseM; bi++ {
		if o.dead[bi] {
			fn(bi, o.base.EdgeAt(bi))
		}
	}
}

// ForEachInserted calls fn for every inserted edge in canonical order.
func (o *Overlay) ForEachInserted(fn func(e Edge, w int64, s int8)) {
	for p, k := range o.insKeys {
		fn(Edge{U: int(k >> 32), V: int(k & math.MaxUint32)}, o.insW[p], o.insS[p])
	}
}

// forEachLive streams every live edge in canonical order with its resolved
// weight and sign — the merge that both Compact passes run.
func (o *Overlay) forEachLive(fn func(u, v int, w int64, s int8) error) error {
	p := 0
	emitIns := func(limit uint64) error {
		for p < len(o.insKeys) && o.insKeys[p] < limit {
			k := o.insKeys[p]
			if err := fn(int(k>>32), int(k&math.MaxUint32), o.insW[p], o.insS[p]); err != nil {
				return err
			}
			p++
		}
		return nil
	}
	for bi := 0; bi < o.baseM; bi++ {
		if o.dead[bi] {
			continue
		}
		e := o.base.EdgeAt(bi)
		if err := emitIns(edgeKey(e.U, e.V)); err != nil {
			return err
		}
		w, s := o.base.Weight(bi), o.base.Sign(bi)
		if ow, ok := o.overW[int32(bi)]; ok {
			w = ow
		}
		if os, ok := o.overS[int32(bi)]; ok {
			s = os
		}
		if err := fn(e.U, e.V, w, s); err != nil {
			return err
		}
	}
	return emitIns(math.MaxUint64)
}

// Compact materializes the overlay into a standalone canonical *Graph via
// the streaming builder: one counting and one placing merge over the live
// base edges and the insert set, both already in canonical order, so the
// result is bit-identical to rebuilding from scratch with Builder. The
// overlay remains usable (it still layers over the old base); callers that
// compacted because of NeedsCompact should start a fresh overlay over the
// returned graph.
func (o *Overlay) Compact() (*Graph, error) {
	sb, err := NewStreamingBuilder(o.n, o.M(), o.weighted, o.signed)
	if err != nil {
		return nil, err
	}
	if err := o.forEachLive(func(u, v int, _ int64, _ int8) error {
		return sb.Count(u, v)
	}); err != nil {
		return nil, err
	}
	if err := sb.FinishCount(); err != nil {
		return nil, err
	}
	if err := o.forEachLive(sb.Place); err != nil {
		return nil, err
	}
	return sb.Graph()
}

// String implements fmt.Stringer with a short structural summary.
func (o *Overlay) String() string {
	return fmt.Sprintf("Overlay(n=%d, m=%d, +%d/-%d over base m=%d)",
		o.n, o.M(), len(o.insKeys), o.deadCount, o.baseM)
}

// OpKind enumerates overlay mutation operations.
type OpKind uint8

// The mutation operation kinds, in the order the trace format names them.
const (
	// OpAddEdge inserts edge {U, V}; W > 0 makes it a weighted insert.
	OpAddEdge OpKind = iota
	// OpDeleteEdge removes edge {U, V}.
	OpDeleteEdge
	// OpAddVertex appends one fresh vertex (U, V unused).
	OpAddVertex
	// OpDeleteVertex tombstones vertex U (V unused).
	OpDeleteVertex
)

// String returns the trace-format verb of the op kind.
func (k OpKind) String() string {
	switch k {
	case OpAddEdge:
		return "+"
	case OpDeleteEdge:
		return "-"
	case OpAddVertex:
		return "+v"
	case OpDeleteVertex:
		return "-v"
	default:
		return fmt.Sprintf("OpKind(%d)", uint8(k))
	}
}

// Op is one graph mutation, the unit of churn traces and /mutate batches.
type Op struct {
	Kind OpKind
	U, V int
	W    int64 // edge weight for OpAddEdge; 0 means an unweighted insert
}

// Apply performs one operation on the overlay, returning a validation error
// (wrapping the sentinel errors above) without mutating anything on failure.
func (o *Overlay) Apply(op Op) error {
	switch op.Kind {
	case OpAddEdge:
		if op.W != 0 {
			return o.AddWeightedEdge(op.U, op.V, op.W)
		}
		return o.AddEdge(op.U, op.V)
	case OpDeleteEdge:
		return o.DeleteEdge(op.U, op.V)
	case OpAddVertex:
		o.AddVertex()
		return nil
	case OpDeleteVertex:
		return o.DeleteVertex(op.U)
	default:
		return fmt.Errorf("graph: unknown op kind %d", op.Kind)
	}
}

// ApplyAll applies ops in order, stopping at the first failure. It returns
// the number of operations applied and, on failure, an error identifying the
// offending op index. Previously applied operations are NOT rolled back;
// batch callers that need atomicity apply to a scratch overlay first.
func (o *Overlay) ApplyAll(ops []Op) (int, error) {
	for i, op := range ops {
		if err := o.Apply(op); err != nil {
			return i, fmt.Errorf("op %d (%s %d %d): %w", i, op.Kind, op.U, op.V, err)
		}
	}
	return len(ops), nil
}
