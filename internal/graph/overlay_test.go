package graph

import (
	"bytes"
	"errors"
	"math/rand"
	"strings"
	"testing"
)

// checkOverlayEquivalent asserts that a and b present byte-identical
// observables through the G interface: same N/M, same degrees, same
// neighbor/edge-index streams, same edges, weights and signs per index.
func checkOverlayEquivalent(t *testing.T, tag string, a, b G) {
	t.Helper()
	if a.N() != b.N() || a.M() != b.M() {
		t.Fatalf("%s: shape mismatch: (n=%d,m=%d) vs (n=%d,m=%d)", tag, a.N(), a.M(), b.N(), b.M())
	}
	for v := 0; v < a.N(); v++ {
		if a.Degree(v) != b.Degree(v) {
			t.Fatalf("%s: Degree(%d): %d vs %d", tag, v, a.Degree(v), b.Degree(v))
		}
		type arc struct{ u, idx int }
		var aa, bb []arc
		a.ForEachNeighbor(v, func(u, idx int) { aa = append(aa, arc{u, idx}) })
		b.ForEachNeighbor(v, func(u, idx int) { bb = append(bb, arc{u, idx}) })
		if len(aa) != len(bb) {
			t.Fatalf("%s: ForEachNeighbor(%d): %d arcs vs %d", tag, v, len(aa), len(bb))
		}
		for i := range aa {
			if aa[i] != bb[i] {
				t.Fatalf("%s: ForEachNeighbor(%d) arc %d: %+v vs %+v", tag, v, i, aa[i], bb[i])
			}
		}
	}
	for idx := 0; idx < a.M(); idx++ {
		if a.EdgeAt(idx) != b.EdgeAt(idx) {
			t.Fatalf("%s: EdgeAt(%d): %v vs %v", tag, idx, a.EdgeAt(idx), b.EdgeAt(idx))
		}
		if a.Weight(idx) != b.Weight(idx) {
			t.Fatalf("%s: Weight(%d): %d vs %d", tag, idx, a.Weight(idx), b.Weight(idx))
		}
		if a.Sign(idx) != b.Sign(idx) {
			t.Fatalf("%s: Sign(%d): %d vs %d", tag, idx, a.Sign(idx), b.Sign(idx))
		}
	}
}

func TestOverlayNoDeltasMatchesBase(t *testing.T) {
	for _, g := range []*Graph{
		Grid(4, 5),
		WithRandomWeights(Path(7), 9, rand.New(rand.NewSource(1))),
		WithRandomSigns(Cycle(6), 0.5, rand.New(rand.NewSource(2))),
		NewBuilder(3).Graph(),
	} {
		ov := NewOverlay(g)
		checkOverlayEquivalent(t, g.String(), ov, g)
		c, err := ov.Compact()
		if err != nil {
			t.Fatalf("Compact: %v", err)
		}
		checkOverlayEquivalent(t, g.String()+" compact", c, g)
	}
}

func TestOverlayBasicMutations(t *testing.T) {
	// Path 0-1-2-3 plus an isolated vertex 4.
	b := NewBuilder(5)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(2, 3)
	g := b.Graph()
	ov := NewOverlay(g)

	if err := ov.AddEdge(0, 3); err != nil {
		t.Fatalf("AddEdge(0,3): %v", err)
	}
	if err := ov.AddEdge(3, 4); err != nil {
		t.Fatalf("AddEdge(3,4): %v", err)
	}
	if err := ov.DeleteEdge(1, 2); err != nil {
		t.Fatalf("DeleteEdge(1,2): %v", err)
	}
	if ov.N() != 5 || ov.M() != 4 {
		t.Fatalf("shape after mutations: n=%d m=%d, want 5/4", ov.N(), ov.M())
	}
	if ov.Degree(1) != 1 || ov.Degree(3) != 3 {
		t.Fatalf("degrees: deg(1)=%d deg(3)=%d, want 1/3", ov.Degree(1), ov.Degree(3))
	}
	if ov.HasEdge(1, 2) || !ov.HasEdge(0, 3) {
		t.Fatal("HasEdge disagrees with mutations")
	}
	if ov.Inserted() != 2 || ov.Deleted() != 1 || ov.Deltas() != 3 {
		t.Fatalf("delta accounting: ins=%d del=%d total=%d", ov.Inserted(), ov.Deleted(), ov.Deltas())
	}

	// The overlay must match the graph built from scratch with the same edges.
	want := FromEdges(5, []Edge{{0, 1}, {0, 3}, {2, 3}, {3, 4}})
	checkOverlayEquivalent(t, "mutated", ov, want)
	c, err := ov.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	checkOverlayEquivalent(t, "compacted", c, want)

	// Error paths are sentinel-wrapped, and failed ops change nothing.
	cases := []struct {
		name string
		err  error
		want error
	}{
		{"dup base edge", ov.AddEdge(0, 1), ErrEdgeExists},
		{"dup inserted edge", ov.AddEdge(0, 3), ErrEdgeExists},
		{"missing delete", ov.DeleteEdge(1, 2), ErrEdgeMissing},
		{"never-present delete", ov.DeleteEdge(0, 4), ErrEdgeMissing},
		{"self-loop", ov.AddEdge(2, 2), ErrSelfLoop},
		{"negative endpoint", ov.AddEdge(-1, 2), ErrVertexRange},
		{"out-of-range endpoint", ov.AddEdge(0, 5), ErrVertexRange},
	}
	for _, c := range cases {
		if !errors.Is(c.err, c.want) {
			t.Errorf("%s: got %v, want %v", c.name, c.err, c.want)
		}
	}
	checkOverlayEquivalent(t, "after failed ops", ov, want)
}

func TestOverlayVertexOps(t *testing.T) {
	ov := NewOverlay(Path(3)) // 0-1-2
	v := ov.AddVertex()
	if v != 3 || ov.N() != 4 || ov.Degree(3) != 0 {
		t.Fatalf("AddVertex: id=%d n=%d deg=%d", v, ov.N(), ov.Degree(3))
	}
	if err := ov.AddEdge(2, 3); err != nil {
		t.Fatalf("AddEdge(2,3): %v", err)
	}
	if err := ov.DeleteVertex(1); err != nil {
		t.Fatalf("DeleteVertex(1): %v", err)
	}
	// Vertex 1 is isolated but its ID survives (dense IDs).
	if ov.N() != 4 || ov.M() != 1 || ov.Degree(1) != 0 {
		t.Fatalf("after DeleteVertex: n=%d m=%d deg(1)=%d", ov.N(), ov.M(), ov.Degree(1))
	}
	if err := ov.AddEdge(0, 1); !errors.Is(err, ErrVertexDeleted) {
		t.Fatalf("AddEdge to deleted vertex: got %v, want ErrVertexDeleted", err)
	}
	if err := ov.DeleteVertex(1); !errors.Is(err, ErrVertexDeleted) {
		t.Fatalf("double DeleteVertex: got %v, want ErrVertexDeleted", err)
	}
	want := FromEdges(4, []Edge{{2, 3}})
	checkOverlayEquivalent(t, "vertex ops", ov, want)
	c, err := ov.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	checkOverlayEquivalent(t, "vertex ops compacted", c, want)
}

func TestOverlayResurrectCarriesNewAnnotations(t *testing.T) {
	b := NewBuilder(3)
	b.AddWeightedEdge(0, 1, 5)
	b.AddWeightedEdge(1, 2, 7)
	g := b.Graph()
	ov := NewOverlay(g)
	if err := ov.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ov.AddWeightedEdge(0, 1, 11); err != nil {
		t.Fatal(err)
	}
	wb := NewBuilder(3)
	wb.AddWeightedEdge(0, 1, 11)
	wb.AddWeightedEdge(1, 2, 7)
	want := wb.Graph()
	checkOverlayEquivalent(t, "resurrected", ov, want)
	c, err := ov.Compact()
	if err != nil {
		t.Fatal(err)
	}
	checkOverlayEquivalent(t, "resurrected compacted", c, want)

	// Deleting again drops the override; a plain re-add reads weight 1.
	if err := ov.DeleteEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := ov.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if w := ov.Weight(0); w != 1 {
		t.Fatalf("plain resurrect weight: got %d, want 1", w)
	}
}

func TestOverlayDeltaFraction(t *testing.T) {
	ov := NewOverlay(Grid(4, 4)) // 24 edges
	if ov.NeedsCompact(0) {
		t.Fatal("fresh overlay should not need compaction")
	}
	for i := 0; i < 6; i++ {
		e := ov.Base().EdgeAt(i * 3)
		if err := ov.DeleteEdge(e.U, e.V); err != nil {
			t.Fatal(err)
		}
	}
	if f := ov.DeltaFraction(); f != 0.25 {
		t.Fatalf("DeltaFraction: got %v, want 0.25", f)
	}
	if !ov.NeedsCompact(0) {
		t.Fatal("overlay at the default threshold should need compaction")
	}
	if ov.NeedsCompact(0.5) {
		t.Fatal("overlay below an explicit 0.5 threshold should not need compaction")
	}
}

func TestGenerateChurnDeterministicAndAppliable(t *testing.T) {
	g := WithRandomWeights(Grid(8, 8), 10, rand.New(rand.NewSource(3)))
	ops, err := GenerateChurn(g, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	ops2, err := GenerateChurn(g, 50, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(ops) != 50 || len(ops2) != 50 {
		t.Fatalf("op counts: %d, %d", len(ops), len(ops2))
	}
	for i := range ops {
		if ops[i] != ops2[i] {
			t.Fatalf("op %d differs between identical runs: %+v vs %+v", i, ops[i], ops2[i])
		}
	}
	diff, err := GenerateChurn(g, 50, 43)
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := range ops {
		if ops[i] != diff[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	// The stream must replay cleanly, with weighted inserts in range.
	ov := NewOverlay(g)
	for i, op := range ops {
		if op.Kind == OpAddEdge && (op.W < 1 || op.W > g.MaxWeight()) {
			t.Fatalf("op %d: insert weight %d outside [1,%d]", i, op.W, g.MaxWeight())
		}
		if err := ov.Apply(op); err != nil {
			t.Fatalf("op %d (%+v): %v", i, op, err)
		}
	}
	if _, err := ov.Compact(); err != nil {
		t.Fatalf("Compact after churn: %v", err)
	}
}

func TestChurnTraceRoundTrip(t *testing.T) {
	ops := []Op{
		{Kind: OpAddEdge, U: 0, V: 5},
		{Kind: OpAddEdge, U: 2, V: 3, W: 17},
		{Kind: OpDeleteEdge, U: 1, V: 4},
		{Kind: OpAddVertex},
		{Kind: OpDeleteVertex, U: 2},
	}
	var buf bytes.Buffer
	if err := WriteChurn(&buf, ops); err != nil {
		t.Fatal(err)
	}
	got, err := ReadChurn(&buf)
	if err != nil {
		t.Fatalf("ReadChurn: %v\ntrace:\n%s", err, buf.String())
	}
	if len(got) != len(ops) {
		t.Fatalf("round trip: %d ops, want %d", len(got), len(ops))
	}
	for i := range ops {
		if got[i] != ops[i] {
			t.Fatalf("op %d: %+v, want %+v", i, got[i], ops[i])
		}
	}
}

func TestChurnTraceErrors(t *testing.T) {
	cases := []struct {
		name, input, wantSub string
	}{
		{"empty", "", "empty churn"},
		{"bad header", "chrun 2\n", `expected "churn"`},
		{"negative id", "churn 1\n+ -1 2\n", "line 2"},
		{"unknown verb", "churn 1\n* 1 2\n", "line 2"},
		{"truncated", "churn 3\n+ 0 1\n", "line 3"},
		{"bad weight", "churn 1\n+ 0 1 0\n", "line 2"},
		{"garbage fields", "churn 1\n- 0 1 2\n", "line 2"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := ReadChurn(strings.NewReader(c.input))
			if err == nil {
				t.Fatalf("ReadChurn(%q) succeeded", c.input)
			}
			if !strings.Contains(err.Error(), c.wantSub) {
				t.Fatalf("ReadChurn(%q) error %q does not mention %q", c.input, err, c.wantSub)
			}
		})
	}
}

// FuzzOverlayEquivalence drives a random op sequence over a random base graph
// and pins the tentpole contract: the overlay, its Compact() materialization,
// and a from-scratch Builder over the same live edge set are byte-identical
// under ForEachNeighbor/Degree/EdgeAt/Weight/Sign.
func FuzzOverlayEquivalence(f *testing.F) {
	f.Add(uint8(12), int64(1), int64(2), uint8(0), uint8(60))
	f.Add(uint8(20), int64(42), int64(7), uint8(1), uint8(120))
	f.Add(uint8(9), int64(7), int64(9), uint8(2), uint8(200))
	f.Add(uint8(2), int64(99), int64(3), uint8(0), uint8(30))
	f.Add(uint8(33), int64(5), int64(11), uint8(1), uint8(255))
	f.Fuzz(func(t *testing.T, nRaw uint8, edgeSeed, opSeed int64, mode uint8, opsRaw uint8) {
		n := int(nRaw%40) + 2
		base := buildFuzzGraph(n, edgeSeed, mode)
		ov := NewOverlay(base)

		// Mirror of the live state, updated alongside the overlay. Op choices
		// are driven by the overlay + rng only, so the mirror never influences
		// the stream.
		type ws struct {
			w int64
			s int8
		}
		live := make(map[Edge]ws, base.M())
		for i := 0; i < base.M(); i++ {
			live[base.EdgeAt(i)] = ws{base.Weight(i), base.Sign(i)}
		}
		curN := base.N()
		dead := make([]bool, base.N(), base.N()+64)

		rng := rand.New(rand.NewSource(opSeed))
		for i := 0; i < int(opsRaw); i++ {
			switch k := rng.Intn(12); {
			case k == 0: // add vertex
				id := ov.AddVertex()
				if id != curN {
					t.Fatalf("AddVertex: got id %d, want %d", id, curN)
				}
				curN++
				dead = append(dead, false)
			case k == 1: // delete a random vertex
				v := rng.Intn(curN)
				err := ov.DeleteVertex(v)
				if dead[v] {
					if !errors.Is(err, ErrVertexDeleted) {
						t.Fatalf("DeleteVertex(dead %d): %v", v, err)
					}
					continue
				}
				if err != nil {
					t.Fatalf("DeleteVertex(%d): %v", v, err)
				}
				dead[v] = true
				for e := range live {
					if e.U == v || e.V == v {
						delete(live, e)
					}
				}
			case k <= 6: // add a random edge
				u, v := rng.Intn(curN), rng.Intn(curN)
				var w int64
				if base.Weighted() {
					w = int64(rng.Intn(50) + 1)
				}
				wantErr := u == v || dead[u] || dead[v] || ov.HasEdge(u, v)
				var err error
				if w > 0 {
					err = ov.AddWeightedEdge(u, v, w)
				} else {
					err = ov.AddEdge(u, v)
				}
				if wantErr {
					if err == nil {
						t.Fatalf("AddEdge(%d,%d) should have failed", u, v)
					}
					continue
				}
				if err != nil {
					t.Fatalf("AddEdge(%d,%d): %v", u, v, err)
				}
				if w == 0 {
					w = 1
				}
				live[Edge{U: u, V: v}.Canon()] = ws{w, 1}
			default: // delete a random live edge
				if ov.M() == 0 {
					continue
				}
				e := ov.EdgeAt(rng.Intn(ov.M()))
				if err := ov.DeleteEdge(e.U, e.V); err != nil {
					t.Fatalf("DeleteEdge(%v): %v", e, err)
				}
				delete(live, e)
			}
		}
		if len(live) != ov.M() || curN != ov.N() {
			t.Fatalf("mirror diverged: (n=%d,m=%d) vs overlay (n=%d,m=%d)", curN, len(live), ov.N(), ov.M())
		}

		// Reference: the same live edge set built from scratch.
		b := NewBuilder(curN)
		for e, a := range live {
			switch {
			case base.Weighted():
				b.AddWeightedEdge(e.U, e.V, a.w)
			case base.Signed():
				b.AddSignedEdge(e.U, e.V, a.s)
			default:
				b.AddEdge(e.U, e.V)
			}
		}
		want := b.Graph()

		checkOverlayEquivalent(t, "overlay vs rebuilt", ov, want)
		compacted, err := ov.Compact()
		if err != nil {
			t.Fatalf("Compact: %v", err)
		}
		checkOverlayEquivalent(t, "compacted vs rebuilt", compacted, want)
	})
}
