package graph

import (
	"fmt"
	"math"
)

// StreamingBuilder assembles a Graph from an edge stream in two passes with
// O(1) work and zero allocations per edge: pass one counts degrees, pass two
// writes the CSR arrays directly at their final positions. Unlike Builder it
// keeps no pending edge buffer and no dedup map, so a 100M-edge graph costs
// exactly its CSR arrays plus the edge list — nothing transient.
//
// The price of the direct placement is an ordering contract: edges must be
// streamed in strictly increasing canonical order (U < V, sorted by (U, V),
// no duplicates), and both passes must stream the same edges in the same
// order. That is exactly the order WriteEdgeList and WriteBinary emit and
// the order the streaming generators produce, so every on-disk source
// satisfies it for free; arbitrary-order input belongs in Builder. The
// resulting Graph is bit-identical to the Builder result for the same edge
// set.
//
// Protocol:
//
//	sb, err := NewStreamingBuilder(n, m, weighted, signed)
//	for each edge { sb.Count(u, v) }     // pass 1
//	sb.FinishCount()
//	for each edge { sb.Place(u, v, w, s) } // pass 2, same order
//	g, err := sb.Graph()
//
// All methods return errors instead of panicking: streaming construction is
// an I/O path, and malformed input must surface as a diagnosable error, not
// a crash.
type StreamingBuilder struct {
	n, m             int
	weighted, signed bool
	phase            int // 0 counting, 1 placing, 2 finished
	counted, placed  int

	adjOff []int32 // during pass 1, adjOff[v+1] accumulates deg(v)
	adjTo  []int32
	adjIdx []int32
	edges  []Edge
	weight []int64
	sign   []int8
	cursor []int32
	lastU  int
	lastV  int
}

// NewStreamingBuilder returns a streaming builder for a graph on n vertices
// and exactly m edges. The weighted/signed flags declare up front which
// per-edge annotation arrays the graph carries (they cannot be discovered
// mid-stream without buffering).
func NewStreamingBuilder(n, m int, weighted, signed bool) (*StreamingBuilder, error) {
	if n < 0 {
		return nil, fmt.Errorf("graph: negative vertex count %d", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("graph: negative edge count %d", m)
	}
	if n > math.MaxInt32 || m > math.MaxInt32/2 {
		return nil, fmt.Errorf("graph: n=%d m=%d exceeds the CSR int32 index range", n, m)
	}
	return &StreamingBuilder{
		n:        n,
		m:        m,
		weighted: weighted,
		signed:   signed,
		adjOff:   make([]int32, n+1),
		lastU:    -1,
		lastV:    -1,
	}, nil
}

// checkEndpoints validates one edge's endpoints. Shared by both passes.
func (sb *StreamingBuilder) checkEndpoints(u, v int) error {
	if u < 0 || u >= sb.n || v < 0 || v >= sb.n {
		return fmt.Errorf("graph: edge {%d,%d} out of range for n=%d: %w", u, v, sb.n, ErrVertexRange)
	}
	if u == v {
		return fmt.Errorf("graph: self-loop on vertex %d", u)
	}
	return nil
}

// Count records one edge of pass 1. Endpoints may arrive in either order;
// ordering between edges is not checked here (degree counting commutes), it
// is enforced by Place in pass 2.
func (sb *StreamingBuilder) Count(u, v int) error {
	if sb.phase != 0 {
		return fmt.Errorf("graph: StreamingBuilder.Count called after FinishCount")
	}
	if err := sb.checkEndpoints(u, v); err != nil {
		return err
	}
	if sb.counted == sb.m {
		return fmt.Errorf("graph: counting pass saw more than the declared %d edges", sb.m)
	}
	sb.adjOff[u+1]++
	sb.adjOff[v+1]++
	sb.counted++
	return nil
}

// FinishCount ends pass 1: it prefix-sums the degree counts into row offsets
// and allocates the remaining CSR arrays at their exact final sizes.
func (sb *StreamingBuilder) FinishCount() error {
	if sb.phase != 0 {
		return fmt.Errorf("graph: StreamingBuilder.FinishCount called twice")
	}
	if sb.counted != sb.m {
		return fmt.Errorf("graph: counting pass saw %d edges, declared %d", sb.counted, sb.m)
	}
	for v := 0; v < sb.n; v++ {
		sb.adjOff[v+1] += sb.adjOff[v]
	}
	sb.adjTo = make([]int32, 2*sb.m)
	sb.adjIdx = make([]int32, 2*sb.m)
	sb.edges = make([]Edge, sb.m)
	if sb.weighted {
		sb.weight = make([]int64, sb.m)
	}
	if sb.signed {
		sb.sign = make([]int8, sb.m)
	}
	sb.cursor = make([]int32, sb.n)
	copy(sb.cursor, sb.adjOff[:sb.n])
	sb.phase = 1
	return nil
}

// Place writes one edge of pass 2 directly into the CSR arrays. Edges must
// arrive in strictly increasing canonical order; w is ignored unless the
// builder is weighted, s unless it is signed.
func (sb *StreamingBuilder) Place(u, v int, w int64, s int8) error {
	if sb.phase != 1 {
		return fmt.Errorf("graph: StreamingBuilder.Place called outside the placement pass")
	}
	if err := sb.checkEndpoints(u, v); err != nil {
		return err
	}
	if u > v {
		u, v = v, u
	}
	if u < sb.lastU || (u == sb.lastU && v <= sb.lastV) {
		return fmt.Errorf("graph: edge {%d,%d} out of order after {%d,%d} (streaming input must be strictly increasing canonical (u,v); use Builder for unsorted input)",
			u, v, sb.lastU, sb.lastV)
	}
	if sb.placed == sb.m {
		return fmt.Errorf("graph: placement pass saw more than the declared %d edges", sb.m)
	}
	idx := sb.placed
	sb.edges[idx] = Edge{U: u, V: v}
	if sb.weighted {
		if w <= 0 {
			return fmt.Errorf("graph: non-positive edge weight %d on {%d,%d}", w, u, v)
		}
		sb.weight[idx] = w
	}
	if sb.signed {
		if s != 1 && s != -1 {
			return fmt.Errorf("graph: invalid edge sign %d on {%d,%d}", s, u, v)
		}
		sb.sign[idx] = s
	}
	// A placement pass that streams different edges than the counting pass
	// would silently spill one row's entries into the next; the row-capacity
	// check turns that into a diagnosable error.
	if sb.cursor[u] >= sb.adjOff[u+1] || sb.cursor[v] >= sb.adjOff[v+1] {
		return fmt.Errorf("graph: edge {%d,%d} overflows a CSR row (placement pass does not match the counting pass)", u, v)
	}
	// Identical placement to Builder.Graph: because edges arrive in canonical
	// order, row v receives its lower neighbors first (ascending u), then its
	// higher neighbors (ascending v), so every row comes out sorted.
	sb.adjTo[sb.cursor[u]] = int32(v)
	sb.adjIdx[sb.cursor[u]] = int32(idx)
	sb.cursor[u]++
	sb.adjTo[sb.cursor[v]] = int32(u)
	sb.adjIdx[sb.cursor[v]] = int32(idx)
	sb.cursor[v]++
	sb.placed++
	sb.lastU, sb.lastV = u, v
	return nil
}

// Graph finalizes the builder. It may be called once, after exactly m edges
// have been placed; the builder is unusable afterwards.
func (sb *StreamingBuilder) Graph() (*Graph, error) {
	if sb.phase != 1 {
		return nil, fmt.Errorf("graph: StreamingBuilder.Graph called outside the placement pass")
	}
	if sb.placed != sb.m {
		return nil, fmt.Errorf("graph: placement pass saw %d edges, declared %d", sb.placed, sb.m)
	}
	g := &Graph{
		n:      sb.n,
		adjOff: sb.adjOff,
		adjTo:  sb.adjTo,
		adjIdx: sb.adjIdx,
		edges:  sb.edges,
		weight: sb.weight,
		sign:   sb.sign,
	}
	g.finishStats()
	sb.phase = 2
	return g, nil
}
