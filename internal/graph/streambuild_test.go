package graph

import (
	"math/rand"
	"strings"
	"testing"
)

// streamFromGraph replays g's canonical edge list through a StreamingBuilder.
func streamFromGraph(t *testing.T, g *Graph) *Graph {
	t.Helper()
	sb, err := NewStreamingBuilder(g.N(), g.M(), g.Weighted(), g.Signed())
	if err != nil {
		t.Fatalf("NewStreamingBuilder: %v", err)
	}
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if err := sb.Count(e.U, e.V); err != nil {
			t.Fatalf("Count(%v): %v", e, err)
		}
	}
	if err := sb.FinishCount(); err != nil {
		t.Fatalf("FinishCount: %v", err)
	}
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if err := sb.Place(e.U, e.V, g.Weight(i), g.Sign(i)); err != nil {
			t.Fatalf("Place(%v): %v", e, err)
		}
	}
	out, err := sb.Graph()
	if err != nil {
		t.Fatalf("Graph: %v", err)
	}
	return out
}

// requireIdenticalGraphs asserts two graphs agree on every stored array and
// cached statistic — the bit-identical contract between Builder and
// StreamingBuilder.
func requireIdenticalGraphs(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.N() != want.N() || got.M() != want.M() {
		t.Fatalf("size mismatch: got (n=%d,m=%d), want (n=%d,m=%d)", got.N(), got.M(), want.N(), want.M())
	}
	if got.Weighted() != want.Weighted() || got.Signed() != want.Signed() {
		t.Fatalf("weighted/signed flags differ")
	}
	if got.MaxDegree() != want.MaxDegree() || got.MinDegree() != want.MinDegree() {
		t.Fatalf("degree stats differ: got (%d,%d), want (%d,%d)",
			got.MaxDegree(), got.MinDegree(), want.MaxDegree(), want.MinDegree())
	}
	if got.MaxWeight() != want.MaxWeight() || got.TotalWeight() != want.TotalWeight() {
		t.Fatalf("weight stats differ")
	}
	for i := range want.adjOff {
		if got.adjOff[i] != want.adjOff[i] {
			t.Fatalf("adjOff[%d] = %d, want %d", i, got.adjOff[i], want.adjOff[i])
		}
	}
	for i := range want.adjTo {
		if got.adjTo[i] != want.adjTo[i] || got.adjIdx[i] != want.adjIdx[i] {
			t.Fatalf("adjacency slot %d differs: (%d,%d) vs (%d,%d)",
				i, got.adjTo[i], got.adjIdx[i], want.adjTo[i], want.adjIdx[i])
		}
	}
	for i := range want.edges {
		if got.edges[i] != want.edges[i] {
			t.Fatalf("edges[%d] = %v, want %v", i, got.edges[i], want.edges[i])
		}
		if got.Weight(i) != want.Weight(i) || got.Sign(i) != want.Sign(i) {
			t.Fatalf("edge %d annotation differs", i)
		}
	}
}

func TestStreamingBuilderMatchesBuilder(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	cases := map[string]*Graph{
		"grid":     Grid(7, 9),
		"planar":   RandomMaximalPlanar(120, rng),
		"weighted": WithRandomWeights(TriangulatedGrid(6, 6), 50, rng),
		"signed":   WithRandomSigns(Torus(5, 5), 0.4, rng),
		"er":       ErdosRenyi(60, 0.15, rng),
		"empty":    NewBuilder(5).Graph(),
		"edgeless": NewBuilder(0).Graph(),
		"single":   FromEdges(2, []Edge{{U: 0, V: 1}}),
	}
	for name, g := range cases {
		t.Run(name, func(t *testing.T) {
			requireIdenticalGraphs(t, streamFromGraph(t, g), g)
		})
	}
}

func TestStreamingBuilderErrors(t *testing.T) {
	mk := func() *StreamingBuilder {
		sb, err := NewStreamingBuilder(4, 2, false, false)
		if err != nil {
			t.Fatalf("NewStreamingBuilder: %v", err)
		}
		return sb
	}
	t.Run("negative-n", func(t *testing.T) {
		if _, err := NewStreamingBuilder(-1, 0, false, false); err == nil {
			t.Fatal("expected error")
		}
	})
	t.Run("count-out-of-range", func(t *testing.T) {
		sb := mk()
		if err := sb.Count(0, 4); err == nil {
			t.Fatal("expected range error")
		}
	})
	t.Run("count-self-loop", func(t *testing.T) {
		sb := mk()
		if err := sb.Count(2, 2); err == nil {
			t.Fatal("expected self-loop error")
		}
	})
	t.Run("count-overrun", func(t *testing.T) {
		sb := mk()
		for i := 0; i < 2; i++ {
			if err := sb.Count(0, i+1); err != nil {
				t.Fatal(err)
			}
		}
		if err := sb.Count(0, 3); err == nil {
			t.Fatal("expected overrun error")
		}
	})
	t.Run("finish-undercount", func(t *testing.T) {
		sb := mk()
		if err := sb.Count(0, 1); err != nil {
			t.Fatal(err)
		}
		if err := sb.FinishCount(); err == nil {
			t.Fatal("expected undercount error")
		}
	})
	t.Run("place-before-finish", func(t *testing.T) {
		sb := mk()
		if err := sb.Place(0, 1, 1, 1); err == nil {
			t.Fatal("expected phase error")
		}
	})
	t.Run("place-out-of-order", func(t *testing.T) {
		sb := mk()
		for _, e := range [][2]int{{1, 2}, {0, 1}} {
			sb.Count(e[0], e[1])
		}
		if err := sb.FinishCount(); err != nil {
			t.Fatal(err)
		}
		if err := sb.Place(1, 2, 1, 1); err != nil {
			t.Fatal(err)
		}
		err := sb.Place(0, 1, 1, 1)
		if err == nil || !strings.Contains(err.Error(), "out of order") {
			t.Fatalf("expected out-of-order error, got %v", err)
		}
	})
	t.Run("place-duplicate", func(t *testing.T) {
		sb := mk()
		sb.Count(0, 1)
		sb.Count(0, 1)
		if err := sb.FinishCount(); err != nil {
			t.Fatal(err)
		}
		if err := sb.Place(0, 1, 1, 1); err != nil {
			t.Fatal(err)
		}
		if err := sb.Place(1, 0, 1, 1); err == nil {
			t.Fatal("expected duplicate (non-increasing) error")
		}
	})
	t.Run("place-mismatched-passes", func(t *testing.T) {
		sb := mk()
		sb.Count(0, 1)
		sb.Count(0, 1)
		if err := sb.FinishCount(); err != nil {
			t.Fatal(err)
		}
		if err := sb.Place(0, 1, 1, 1); err != nil {
			t.Fatal(err)
		}
		// Edge {2,3} was never counted: row 2 has no capacity.
		err := sb.Place(2, 3, 1, 1)
		if err == nil || !strings.Contains(err.Error(), "overflow") {
			t.Fatalf("expected row-overflow error, got %v", err)
		}
	})
	t.Run("graph-underplaced", func(t *testing.T) {
		sb := mk()
		sb.Count(0, 1)
		sb.Count(2, 3)
		if err := sb.FinishCount(); err != nil {
			t.Fatal(err)
		}
		if err := sb.Place(0, 1, 1, 1); err != nil {
			t.Fatal(err)
		}
		if _, err := sb.Graph(); err == nil {
			t.Fatal("expected underplaced error")
		}
	})
	t.Run("bad-weight", func(t *testing.T) {
		sb, _ := NewStreamingBuilder(3, 1, true, false)
		sb.Count(0, 1)
		sb.FinishCount()
		if err := sb.Place(0, 1, 0, 1); err == nil {
			t.Fatal("expected non-positive weight error")
		}
	})
	t.Run("bad-sign", func(t *testing.T) {
		sb, _ := NewStreamingBuilder(3, 1, false, true)
		sb.Count(0, 1)
		sb.FinishCount()
		if err := sb.Place(0, 1, 1, 0); err == nil {
			t.Fatal("expected invalid sign error")
		}
	})
}
