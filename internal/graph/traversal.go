package graph

// BFS runs a breadth-first search from src and returns the distance slice
// (dist[v] == -1 for unreachable v) and the parent slice (parent[src] == src,
// parent[v] == -1 for unreachable v).
func (g *Graph) BFS(src int) (dist, parent []int) { return BFSOf(g, src) }

// Eccentricity returns the maximum finite BFS distance from src within its
// connected component.
func (g *Graph) Eccentricity(src int) int { return EccentricityOf(g, src) }

// Diameter returns the exact diameter of g (the maximum eccentricity over all
// vertices), treating each connected component separately and returning the
// largest value. It runs a BFS per vertex, so it is intended for the modest
// graph sizes used in experiments. An empty graph has diameter 0.
func (g *Graph) Diameter() int { return DiameterOf(g) }

// Connected reports whether g is connected. The empty graph and singletons
// are connected.
func (g *Graph) Connected() bool { return ConnectedOf(g) }

// Components returns the connected components of g as slices of vertex IDs
// in ascending order, ordered by their smallest vertex.
func (g *Graph) Components() [][]int { return ComponentsOf(g) }

// ComponentIDs returns, for each vertex, the ID of its connected component
// (components numbered by smallest contained vertex, in order).
func (g *Graph) ComponentIDs() []int {
	ids := make([]int, g.n)
	for i := range ids {
		ids[i] = -1
	}
	next := 0
	for v := 0; v < g.n; v++ {
		if ids[v] != -1 {
			continue
		}
		queue := []int{v}
		ids[v] = next
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			for i := g.adjOff[u]; i < g.adjOff[u+1]; i++ {
				w := int(g.adjTo[i])
				if ids[w] == -1 {
					ids[w] = next
					queue = append(queue, w)
				}
			}
		}
		next++
	}
	return ids
}

// IsTree reports whether g is connected and acyclic.
func (g *Graph) IsTree() bool {
	return g.Connected() && g.M() == g.n-1
}

// ShortestPath returns one shortest path between src and dst (inclusive), or
// nil if dst is unreachable from src.
func (g *Graph) ShortestPath(src, dst int) []int {
	dist, parent := g.BFS(src)
	if dist[dst] == -1 {
		return nil
	}
	path := []int{dst}
	for v := dst; v != src; v = parent[v] {
		path = append(path, parent[v])
	}
	// Reverse in place.
	for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
		path[i], path[j] = path[j], path[i]
	}
	return path
}

// DFSOrder returns vertices in preorder of an iterative DFS over all
// components, visiting roots and neighbors in ascending ID order.
func (g *Graph) DFSOrder() []int {
	visited := make([]bool, g.n)
	order := make([]int, 0, g.n)
	var stack []int
	for root := 0; root < g.n; root++ {
		if visited[root] {
			continue
		}
		stack = append(stack[:0], root)
		visited[root] = true
		for len(stack) > 0 {
			v := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			order = append(order, v)
			// Push neighbors in reverse so the smallest is processed first.
			for i := g.adjOff[v+1] - 1; i >= g.adjOff[v]; i-- {
				u := int(g.adjTo[i])
				if !visited[u] {
					visited[u] = true
					stack = append(stack, u)
				}
			}
		}
	}
	return order
}

// HasCycle reports whether g contains any cycle.
func (g *Graph) HasCycle() bool {
	ids := g.ComponentIDs()
	compVerts := make(map[int]int)
	compEdges := make(map[int]int)
	for v := 0; v < g.n; v++ {
		compVerts[ids[v]]++
	}
	for _, e := range g.edges {
		compEdges[ids[e.U]]++
	}
	for id, nv := range compVerts {
		if compEdges[id] >= nv {
			return true
		}
	}
	return false
}

func sortInts(a []int) {
	// Insertion sort: component slices are produced nearly sorted and this
	// avoids pulling in sort for a hot path; correctness over cleverness.
	for i := 1; i < len(a); i++ {
		for j := i; j > 0 && a[j-1] > a[j]; j-- {
			a[j-1], a[j] = a[j], a[j-1]
		}
	}
}
