package graph

// UnionFind is a disjoint-set forest with union by rank and path compression.
// It backs the Kruskal-style construction used by generators and the cluster
// merging steps of the decomposition algorithms.
type UnionFind struct {
	parent []int
	rank   []int
	sets   int
}

// NewUnionFind returns a UnionFind over n singleton sets.
func NewUnionFind(n int) *UnionFind {
	uf := &UnionFind{
		parent: make([]int, n),
		rank:   make([]int, n),
		sets:   n,
	}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

// Find returns the representative of x's set.
func (uf *UnionFind) Find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]] // path halving
		x = uf.parent[x]
	}
	return x
}

// Union merges the sets containing x and y and reports whether a merge
// happened (false if they were already in the same set).
func (uf *UnionFind) Union(x, y int) bool {
	rx, ry := uf.Find(x), uf.Find(y)
	if rx == ry {
		return false
	}
	if uf.rank[rx] < uf.rank[ry] {
		rx, ry = ry, rx
	}
	uf.parent[ry] = rx
	if uf.rank[rx] == uf.rank[ry] {
		uf.rank[rx]++
	}
	uf.sets--
	return true
}

// Same reports whether x and y are in the same set.
func (uf *UnionFind) Same(x, y int) bool { return uf.Find(x) == uf.Find(y) }

// Sets returns the current number of disjoint sets.
func (uf *UnionFind) Sets() int { return uf.sets }

// Groups returns the sets as sorted slices, ordered by smallest member.
func (uf *UnionFind) Groups() [][]int {
	byRoot := make(map[int][]int)
	for v := range uf.parent {
		r := uf.Find(v)
		byRoot[r] = append(byRoot[r], v)
	}
	groups := make([][]int, 0, len(byRoot))
	for v := range uf.parent {
		if uf.Find(v) == v {
			groups = append(groups, byRoot[v])
		}
	}
	// Each group is built in ascending vertex order already (v iterates
	// 0..n-1); order groups by smallest member.
	for i := 1; i < len(groups); i++ {
		for j := i; j > 0 && groups[j-1][0] > groups[j][0]; j-- {
			groups[j-1], groups[j] = groups[j], groups[j-1]
		}
	}
	return groups
}
