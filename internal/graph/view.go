package graph

import (
	"fmt"
	"sort"
)

// G is the read-only graph interface shared by *Graph and *View. Algorithms
// that only inspect a graph (degree scans, neighbor iteration, per-edge
// weights) should accept G so they run on zero-copy views as well as on
// materialized graphs.
//
// Implementations must present vertices 0..N()-1, edge indices 0..M()-1 in
// canonical (U, V)-ascending order, and neighbors in ascending ID order —
// the same contracts Builder establishes for *Graph. Deterministic callers
// (the decomposition recursion, sweep cuts) rely on that iteration order.
type G interface {
	// N returns the number of vertices.
	N() int
	// M returns the number of undirected edges.
	M() int
	// Degree returns the degree of vertex v.
	Degree(v int) int
	// ForEachNeighbor calls fn for every neighbor u of v with the undirected
	// edge index, in ascending neighbor order.
	ForEachNeighbor(v int, fn func(u, edgeIdx int))
	// EdgeAt returns the edge with index idx.
	EdgeAt(idx int) Edge
	// Weight returns the weight of edge idx (1 for unweighted graphs).
	Weight(idx int) int64
	// Sign returns the sign of edge idx (+1 for unsigned graphs).
	Sign(idx int) int8
}

// Compile-time interface checks.
var (
	_ G = (*Graph)(nil)
	_ G = (*View)(nil)
)

// View is a zero-copy subgraph of a base *Graph: a vertex subset plus an
// optional deleted-edge filter, presented with dense local vertex IDs
// 0..N()-1 (assigned in ascending base-ID order) and dense local edge
// indices 0..M()-1 (in canonical local order, which coincides with ascending
// base edge index). It satisfies the same iteration contracts as *Graph, so
// algorithms written against G behave identically on a view and on the
// materialized subgraph.
//
// A view shares the base graph's edge list, weights and signs; only a small
// local adjacency index (O(vertices + kept edges) of int32) is built at
// construction. Views are immutable, safe for concurrent readers, and must
// not outlive their base graph's usefulness: they alias it, so the base must
// not be garbage-collectable state the caller intends to drop while keeping
// the view. Use Materialize to sever the alias.
//
// Views always restrict a materialized *Graph; there is no view-of-a-view.
// Recursive algorithms should carry base vertex IDs (via BaseVertex) and
// re-derive each level's view from the root graph, which is exactly what the
// expander decomposition does.
type View struct {
	base   *Graph
	toOld  []int32 // local vertex -> base vertex, ascending
	voff   []int32 // N()+1 row offsets into vto/vidx
	vto    []int32 // local neighbor IDs, ascending within each row
	vidx   []int32 // local edge index per half-edge
	gedge  []int32 // local edge index -> base edge index, ascending
	maxDeg int
	minDeg int
}

// Induce returns the zero-copy view of g induced by the vertex set verts.
// Local vertex IDs are assigned in ascending base-ID order (verts need not
// be sorted); duplicate or out-of-range vertices panic, as with
// InducedSubgraph. Note that InducedSubgraph numbers local vertices in input
// order, so the two agree vertex-for-vertex exactly when verts is sorted
// ascending — which is how every decomposition-stack caller passes them.
func (g *Graph) Induce(verts []int) *View { return g.InduceFiltered(verts, nil) }

// InduceFiltered returns the view of g induced by verts, additionally
// excluding every edge whose (base) index dropEdge reports true for. The
// filter is evaluated once per candidate edge at construction time; later
// mutations of whatever backs dropEdge do not affect the view.
func (g *Graph) InduceFiltered(verts []int, dropEdge func(edgeIdx int) bool) *View {
	k := len(verts)
	toOld := make([]int32, k)
	for i, v := range verts {
		if v < 0 || v >= g.n {
			panic(fmt.Sprintf("graph: vertex %d out of range for n=%d", v, g.n))
		}
		toOld[i] = int32(v)
	}
	sort.Slice(toOld, func(i, j int) bool { return toOld[i] < toOld[j] })
	for i := 1; i < k; i++ {
		if toOld[i-1] == toOld[i] {
			panic(fmt.Sprintf("graph: duplicate vertex %d in induced view", toOld[i]))
		}
	}
	s := &View{base: g, toOld: toOld}
	// Pass 1: count kept edges, walking each member's upper neighbors.
	kept := 0
	for i := 0; i < k; i++ {
		v := toOld[i]
		for a := g.adjOff[v]; a < g.adjOff[v+1]; a++ {
			u := g.adjTo[a]
			if u <= v || localOf(toOld, u) < 0 {
				continue
			}
			if dropEdge != nil && dropEdge(int(g.adjIdx[a])) {
				continue
			}
			kept++
		}
	}
	// Pass 2: collect the kept base edge indices (canonical local order —
	// identical to ascending base index order, since toOld is monotone) and
	// accumulate local degrees into the offset array.
	s.gedge = make([]int32, 0, kept)
	s.voff = make([]int32, k+1)
	for i := 0; i < k; i++ {
		v := toOld[i]
		for a := g.adjOff[v]; a < g.adjOff[v+1]; a++ {
			u := g.adjTo[a]
			if u <= v {
				continue
			}
			j := localOf(toOld, u)
			if j < 0 {
				continue
			}
			if dropEdge != nil && dropEdge(int(g.adjIdx[a])) {
				continue
			}
			s.gedge = append(s.gedge, g.adjIdx[a])
			s.voff[i+1]++
			s.voff[j+1]++
		}
	}
	for i := 0; i < k; i++ {
		s.voff[i+1] += s.voff[i]
	}
	// Pass 3: place both half-edges of every kept edge. As in Builder, the
	// canonical edge order makes every row come out sorted by neighbor ID.
	s.vto = make([]int32, 2*kept)
	s.vidx = make([]int32, 2*kept)
	cursor := make([]int32, k)
	copy(cursor, s.voff[:k])
	for localIdx, gi := range s.gedge {
		e := g.edges[gi]
		li := localOf(toOld, int32(e.U))
		lj := localOf(toOld, int32(e.V))
		s.vto[cursor[li]] = int32(lj)
		s.vidx[cursor[li]] = int32(localIdx)
		cursor[li]++
		s.vto[cursor[lj]] = int32(li)
		s.vidx[cursor[lj]] = int32(localIdx)
		cursor[lj]++
	}
	if k > 0 {
		s.minDeg = s.Degree(0)
		for i := 0; i < k; i++ {
			d := s.Degree(i)
			if d > s.maxDeg {
				s.maxDeg = d
			}
			if d < s.minDeg {
				s.minDeg = d
			}
		}
	}
	return s
}

// localOf returns the position of base vertex u in the sorted toOld slice,
// or -1 if u is not in the view.
func localOf(toOld []int32, u int32) int {
	lo, hi := 0, len(toOld)
	for lo < hi {
		mid := (lo + hi) / 2
		if toOld[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(toOld) && toOld[lo] == u {
		return lo
	}
	return -1
}

// N returns the number of vertices in the view.
func (s *View) N() int { return len(s.toOld) }

// M returns the number of edges in the view.
func (s *View) M() int { return len(s.gedge) }

// Degree returns the degree of local vertex v within the view.
func (s *View) Degree(v int) int { return int(s.voff[v+1] - s.voff[v]) }

// MaxDegree returns the maximum view degree (0 for an empty view), cached at
// construction.
func (s *View) MaxDegree() int { return s.maxDeg }

// MinDegree returns the minimum view degree (0 for an empty view), cached at
// construction.
func (s *View) MinDegree() int { return s.minDeg }

// ForEachNeighbor calls fn for every view neighbor u of local vertex v with
// the local edge index, in ascending local-neighbor order.
func (s *View) ForEachNeighbor(v int, fn func(u, edgeIdx int)) {
	for i := s.voff[v]; i < s.voff[v+1]; i++ {
		fn(int(s.vto[i]), int(s.vidx[i]))
	}
}

// AdjacencyCSR exposes the view's local compressed-sparse-row adjacency with
// the same layout and aliasing rules as (*Graph).AdjacencyCSR: read-only,
// row v is to[off[v]:off[v+1]] in ascending local-neighbor order.
func (s *View) AdjacencyCSR() (off, to []int32) { return s.voff, s.vto }

// NeighborAt returns the i-th view neighbor of local vertex v without
// allocating.
func (s *View) NeighborAt(v, i int) int {
	return int(s.vto[int(s.voff[v])+i])
}

// Neighbors returns the view neighbors of local vertex v in ascending order.
// The returned slice is owned by the caller.
func (s *View) Neighbors(v int) []int {
	lo, hi := s.voff[v], s.voff[v+1]
	out := make([]int, hi-lo)
	for i := lo; i < hi; i++ {
		out[i-lo] = int(s.vto[i])
	}
	return out
}

// EdgeAt returns the edge with local index idx, in local vertex IDs.
func (s *View) EdgeAt(idx int) Edge {
	e := s.base.edges[s.gedge[idx]]
	return Edge{U: localOf(s.toOld, int32(e.U)), V: localOf(s.toOld, int32(e.V))}
}

// EdgeIndex returns the local index of edge {u, v} and whether it exists in
// the view (u, v are local vertex IDs).
func (s *View) EdgeIndex(u, v int) (int, bool) {
	if u < 0 || u >= s.N() || v < 0 || v >= s.N() || u == v {
		return 0, false
	}
	if s.Degree(v) < s.Degree(u) {
		u, v = v, u
	}
	lo, hi := int(s.voff[u]), int(s.voff[u+1])
	end, target := hi, int32(v)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.vto[mid] < target {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < end && s.vto[lo] == target {
		return int(s.vidx[lo]), true
	}
	return 0, false
}

// HasEdge reports whether the view contains the edge {u, v} (local IDs).
func (s *View) HasEdge(u, v int) bool {
	_, ok := s.EdgeIndex(u, v)
	return ok
}

// Weight returns the weight of local edge idx, read from the base graph.
func (s *View) Weight(idx int) int64 { return s.base.Weight(int(s.gedge[idx])) }

// Sign returns the sign of local edge idx, read from the base graph.
func (s *View) Sign(idx int) int8 { return s.base.Sign(int(s.gedge[idx])) }

// Weighted reports whether the view carries edge weights: true when the base
// graph is weighted and at least one edge survives, matching what
// materializing the view through a Builder would report.
func (s *View) Weighted() bool { return len(s.gedge) > 0 && s.base.Weighted() }

// Signed reports whether the view carries edge signs, with the same
// edge-survival rule as Weighted.
func (s *View) Signed() bool { return len(s.gedge) > 0 && s.base.Signed() }

// BaseVertex returns the base-graph ID of local vertex v.
func (s *View) BaseVertex(v int) int { return int(s.toOld[v]) }

// BaseVertices returns the local-to-base vertex mapping as a fresh slice —
// the same mapping InducedSubgraph returns alongside its copy.
func (s *View) BaseVertices() []int {
	out := make([]int, len(s.toOld))
	for i, v := range s.toOld {
		out[i] = int(v)
	}
	return out
}

// BaseEdge returns the base-graph edge index of local edge idx.
func (s *View) BaseEdge(idx int) int { return int(s.gedge[idx]) }

// Volume returns the sum of view degrees of the local vertices in vs.
func (s *View) Volume(vs []int) int {
	vol := 0
	for _, v := range vs {
		vol += s.Degree(v)
	}
	return vol
}

// CutEdges returns the local indices of view edges with exactly one endpoint
// in the local vertex set sel.
func (s *View) CutEdges(sel map[int]bool) []int { return CutEdgesOf(s, sel) }

// BFS runs a breadth-first search from local vertex src within the view.
func (s *View) BFS(src int) (dist, parent []int) { return BFSOf(s, src) }

// Eccentricity returns the maximum finite BFS distance from src within its
// view component.
func (s *View) Eccentricity(src int) int { return EccentricityOf(s, src) }

// Diameter returns the exact diameter of the view (per component, maximum).
func (s *View) Diameter() int { return DiameterOf(s) }

// Connected reports whether the view is connected.
func (s *View) Connected() bool { return ConnectedOf(s) }

// Components returns the connected components of the view in local IDs,
// each sorted ascending, ordered by smallest contained vertex.
func (s *View) Components() [][]int { return ComponentsOf(s) }

// Materialize builds the standalone *Graph equivalent to this view, plus the
// local-to-base vertex mapping — bit-identical (vertex IDs, edge indices,
// weights, signs) to what InducedSubgraph/RemoveEdges would have produced
// for the same subset and filter. Use it when the subgraph must outlive the
// base graph or be mutated into a new Builder lineage.
func (s *View) Materialize() (*Graph, []int) {
	b := NewBuilder(s.N())
	for _, gi := range s.gedge {
		e := s.base.edges[gi]
		u := localOf(s.toOld, int32(e.U))
		v := localOf(s.toOld, int32(e.V))
		switch {
		case s.base.weight != nil:
			b.AddWeightedEdge(u, v, s.base.weight[gi])
		case s.base.sign != nil:
			b.AddSignedEdge(u, v, s.base.sign[gi])
		default:
			b.AddEdge(u, v)
		}
	}
	return b.Graph(), s.BaseVertices()
}

// String implements fmt.Stringer with a short structural summary.
func (s *View) String() string {
	return fmt.Sprintf("View(n=%d, m=%d, base=%d)", s.N(), s.M(), s.base.N())
}
