package graph

import (
	"math/rand"
	"testing"
)

// requireSameGraph asserts that the view and the materialized graph agree on
// every observable: sizes, degrees, neighbor/edge-index rows, edge endpoints,
// weights, and signs.
func requireSameGraph(t *testing.T, s *View, want *Graph) {
	t.Helper()
	if s.N() != want.N() || s.M() != want.M() {
		t.Fatalf("size mismatch: view (n=%d, m=%d), graph (n=%d, m=%d)",
			s.N(), s.M(), want.N(), want.M())
	}
	if s.MaxDegree() != want.MaxDegree() {
		t.Fatalf("MaxDegree: view %d, graph %d", s.MaxDegree(), want.MaxDegree())
	}
	if s.MinDegree() != want.MinDegree() {
		t.Fatalf("MinDegree: view %d, graph %d", s.MinDegree(), want.MinDegree())
	}
	if s.Weighted() != want.Weighted() || s.Signed() != want.Signed() {
		t.Fatalf("weighted/signed flags differ")
	}
	for v := 0; v < want.N(); v++ {
		if s.Degree(v) != want.Degree(v) {
			t.Fatalf("Degree(%d): view %d, graph %d", v, s.Degree(v), want.Degree(v))
		}
		var vu, vi, gu, gi []int
		s.ForEachNeighbor(v, func(u, idx int) { vu = append(vu, u); vi = append(vi, idx) })
		want.ForEachNeighbor(v, func(u, idx int) { gu = append(gu, u); gi = append(gi, idx) })
		for k := range gu {
			if vu[k] != gu[k] || vi[k] != gi[k] {
				t.Fatalf("neighbor row %d position %d: view (%d, e%d), graph (%d, e%d)",
					v, k, vu[k], vi[k], gu[k], gi[k])
			}
			if got := s.NeighborAt(v, k); got != gu[k] {
				t.Fatalf("NeighborAt(%d, %d): view %d, graph %d", v, k, got, gu[k])
			}
		}
	}
	for idx := 0; idx < want.M(); idx++ {
		ve, ge := s.EdgeAt(idx), want.EdgeAt(idx)
		if ve != ge {
			t.Fatalf("EdgeAt(%d): view %v, graph %v", idx, ve, ge)
		}
		if s.Weight(idx) != want.Weight(idx) {
			t.Fatalf("Weight(%d): view %d, graph %d", idx, s.Weight(idx), want.Weight(idx))
		}
		if s.Sign(idx) != want.Sign(idx) {
			t.Fatalf("Sign(%d): view %d, graph %d", idx, s.Sign(idx), want.Sign(idx))
		}
		if got, ok := s.EdgeIndex(ge.U, ge.V); !ok || got != idx {
			t.Fatalf("EdgeIndex(%d, %d): view (%d, %v), want (%d, true)", ge.U, ge.V, got, ok, idx)
		}
	}
}

func evenVertices(n int) []int {
	var vs []int
	for v := 0; v < n; v += 2 {
		vs = append(vs, v)
	}
	return vs
}

func TestViewMatchesInducedSubgraph(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct {
		name string
		g    *Graph
	}{
		{"grid8x8", Grid(8, 8)},
		{"trigrid6x6", TriangulatedGrid(6, 6)},
		{"planar60", RandomMaximalPlanar(60, rng)},
		{"weighted", WithRandomWeights(Grid(6, 6), 50, rng)},
		{"signed", WithRandomSigns(Cycle(20), 0.5, rng)},
		{"star", Star(9)},
		{"empty", NewBuilder(5).Graph()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			verts := evenVertices(tc.g.N())
			view := tc.g.Induce(verts)
			want, toOld := tc.g.InducedSubgraph(verts)
			requireSameGraph(t, view, want)
			base := view.BaseVertices()
			for i := range toOld {
				if base[i] != toOld[i] {
					t.Fatalf("BaseVertices[%d] = %d, InducedSubgraph mapping %d", i, base[i], toOld[i])
				}
			}
			mat, matOld := view.Materialize()
			requireSameGraph(t, view, mat)
			for i := range toOld {
				if matOld[i] != toOld[i] {
					t.Fatalf("Materialize mapping[%d] = %d, want %d", i, matOld[i], toOld[i])
				}
			}
		})
	}
}

func TestViewAcceptsUnsortedVertices(t *testing.T) {
	g := Grid(5, 5)
	// Induce assigns local IDs in ascending base order regardless of input
	// order, so the reference subgraph is built from the sorted set.
	view := g.Induce([]int{12, 0, 7, 24, 3, 18})
	want, _ := g.InducedSubgraph([]int{0, 3, 7, 12, 18, 24})
	requireSameGraph(t, view, want)
}

func TestInduceFilteredMatchesRemoveEdges(t *testing.T) {
	g := TriangulatedGrid(7, 7)
	verts := evenVertices(g.N())
	sub, toOld := g.InducedSubgraph(verts)
	// Drop every third surviving edge, expressed in base indices for the view
	// and local indices for RemoveEdges.
	dropBase := make(map[int]bool)
	dropLocal := make(map[int]bool)
	for i := 0; i < sub.M(); i++ {
		if i%3 != 0 {
			continue
		}
		e := sub.EdgeAt(i)
		oi, ok := g.EdgeIndex(toOld[e.U], toOld[e.V])
		if !ok {
			t.Fatalf("edge %v missing from base graph", e)
		}
		dropBase[oi] = true
		dropLocal[i] = true
	}
	view := g.InduceFiltered(verts, func(ei int) bool { return dropBase[ei] })
	want := sub.RemoveEdges(dropLocal)
	requireSameGraph(t, view, want)
}

func TestViewTraversalsMatchMaterialized(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := RandomPlanar(80, 0.6, rng)
	verts := evenVertices(g.N())
	view := g.Induce(verts)
	want, _ := g.InducedSubgraph(verts)

	if got, w := view.Connected(), want.Connected(); got != w {
		t.Fatalf("Connected: view %v, graph %v", got, w)
	}
	if got, w := view.Diameter(), want.Diameter(); got != w {
		t.Fatalf("Diameter: view %d, graph %d", got, w)
	}
	vc, gc := view.Components(), want.Components()
	if len(vc) != len(gc) {
		t.Fatalf("Components: view %d, graph %d", len(vc), len(gc))
	}
	for i := range gc {
		if len(vc[i]) != len(gc[i]) {
			t.Fatalf("component %d: view size %d, graph size %d", i, len(vc[i]), len(gc[i]))
		}
		for j := range gc[i] {
			if vc[i][j] != gc[i][j] {
				t.Fatalf("component %d[%d]: view %d, graph %d", i, j, vc[i][j], gc[i][j])
			}
		}
	}
	for src := 0; src < want.N(); src++ {
		vd, vp := view.BFS(src)
		gd, gp := want.BFS(src)
		for v := range gd {
			if vd[v] != gd[v] || vp[v] != gp[v] {
				t.Fatalf("BFS(%d) at %d: view (%d, %d), graph (%d, %d)",
					src, v, vd[v], vp[v], gd[v], gp[v])
			}
		}
	}
}

func TestViewWholeGraph(t *testing.T) {
	g := Wheel(10)
	all := make([]int, g.N())
	for i := range all {
		all[i] = i
	}
	view := g.Induce(all)
	requireSameGraph(t, view, g)
	for i := 0; i < view.M(); i++ {
		if view.BaseEdge(i) != i {
			t.Fatalf("BaseEdge(%d) = %d on whole-graph view", i, view.BaseEdge(i))
		}
	}
}

func TestInducePanics(t *testing.T) {
	g := Path(4)
	for name, verts := range map[string][]int{
		"duplicate":  {0, 1, 1},
		"negative":   {-1, 2},
		"outOfRange": {0, 4},
	} {
		t.Run(name, func(t *testing.T) {
			defer func() {
				if recover() == nil {
					t.Fatalf("Induce(%v) did not panic", verts)
				}
			}()
			g.Induce(verts)
		})
	}
}

// buildFuzzGraph derives a deterministic graph from the fuzz inputs: n
// vertices and up to 3n candidate edges drawn from a seeded PRNG, optionally
// weighted or signed.
func buildFuzzGraph(n int, edgeSeed int64, mode uint8) *Graph {
	rng := rand.New(rand.NewSource(edgeSeed))
	b := NewBuilder(n)
	for i := 0; i < 3*n; i++ {
		u, v := rng.Intn(n), rng.Intn(n)
		if u == v {
			continue
		}
		switch mode % 3 {
		case 0:
			b.AddEdge(u, v)
		case 1:
			b.AddWeightedEdge(u, v, int64(rng.Intn(100)+1))
		default:
			if rng.Intn(2) == 0 {
				b.AddSignedEdge(u, v, 1)
			} else {
				b.AddSignedEdge(u, v, -1)
			}
		}
	}
	return b.Graph()
}

// FuzzViewEquivalence checks that a zero-copy view agrees with the
// materialized InducedSubgraph (+ RemoveEdges when a drop filter is active)
// on every observable, for arbitrary graphs, vertex subsets, and edge
// filters.
func FuzzViewEquivalence(f *testing.F) {
	f.Add(uint8(12), int64(1), uint64(0b101010101010), uint64(0), uint8(0))
	f.Add(uint8(20), int64(42), uint64(0xfffff), uint64(0x5555), uint8(1))
	f.Add(uint8(9), int64(7), uint64(0x1ff), uint64(0x3), uint8(2))
	f.Add(uint8(2), int64(99), uint64(0b11), uint64(0), uint8(0))
	f.Fuzz(func(t *testing.T, nRaw uint8, edgeSeed int64, subsetMask, dropMask uint64, mode uint8) {
		n := int(nRaw%62) + 2
		g := buildFuzzGraph(n, edgeSeed, mode)

		var verts []int
		for v := 0; v < n; v++ {
			if subsetMask&(1<<uint(v)) != 0 {
				verts = append(verts, v)
			}
		}
		if len(verts) == 0 {
			verts = []int{0}
		}

		sub, toOld := g.InducedSubgraph(verts)
		dropBase := make(map[int]bool)
		dropLocal := make(map[int]bool)
		for i := 0; i < sub.M(); i++ {
			if dropMask&(1<<uint(i%64)) == 0 {
				continue
			}
			e := sub.EdgeAt(i)
			oi, ok := g.EdgeIndex(toOld[e.U], toOld[e.V])
			if !ok {
				t.Fatalf("subgraph edge %v missing from base", e)
			}
			dropBase[oi] = true
			dropLocal[i] = true
		}
		view := g.InduceFiltered(verts, func(ei int) bool { return dropBase[ei] })
		want := sub
		if len(dropLocal) > 0 {
			want = sub.RemoveEdges(dropLocal)
		}
		requireSameGraph(t, view, want)

		mat, _ := view.Materialize()
		requireSameGraph(t, view, mat)
	})
}
