package integration

import (
	"bytes"
	"hash/fnv"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

// fingerprint hashes the full observable output of Decompose (cluster count,
// per-vertex assignment, removed-edge list) with FNV-64a — the same digest
// internal/expander's golden tests pin. Equal fingerprints mean the
// decompositions are identical cluster for cluster and edge for edge.
func fingerprint(d *expander.Decomposition) uint64 {
	h := fnv.New64a()
	put := func(x int) {
		var b [8]byte
		for i := 0; i < 8; i++ {
			b[i] = byte(x >> (8 * i))
		}
		h.Write(b[:])
	}
	put(len(d.Clusters))
	for _, id := range d.Assignment {
		put(id)
	}
	put(len(d.Removed))
	for _, e := range d.Removed {
		put(e)
	}
	return h.Sum64()
}

// loadAllWays writes g in both formats and loads it back through every path:
// text parse, binary read, and mmap. The caller receives one graph per path.
func loadAllWays(t *testing.T, g *graph.Graph) map[string]*graph.Graph {
	t.Helper()
	dir := t.TempDir()
	txtPath := filepath.Join(dir, "g.txt")
	binPath := filepath.Join(dir, "g.bin")
	var txt, bin bytes.Buffer
	if err := graph.WriteEdgeList(&txt, g); err != nil {
		t.Fatal(err)
	}
	if err := graph.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(txtPath, txt.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	fromText, err := graph.LoadFile(txtPath)
	if err != nil {
		t.Fatalf("text load: %v", err)
	}
	fromBin, err := graph.LoadFile(binPath)
	if err != nil {
		t.Fatalf("binary load: %v", err)
	}
	mapped, err := graph.OpenMapped(binPath)
	if err != nil {
		t.Fatalf("mmap: %v", err)
	}
	t.Cleanup(func() { mapped.Close() })
	return map[string]*graph.Graph{
		"text":   fromText,
		"binary": fromBin,
		"mmap":   mapped.Graph,
	}
}

// TestRoundTripDecompositionFingerprint drives the full substrate contract:
// a graph serialized to disk and loaded back through any path — text parse,
// binary read, or mmap aliasing — must be indistinguishable to the
// decomposition stack, producing bit-identical clusters.
func TestRoundTripDecompositionFingerprint(t *testing.T) {
	graphs := map[string]*graph.Graph{
		"er":     graph.ErdosRenyiStream(3000, 8.0/3000, 17, 0),
		"planar": graph.RandomMaximalPlanarStream(2000, rand.New(rand.NewSource(5)), 0),
	}
	for name, g := range graphs {
		t.Run(name, func(t *testing.T) {
			ref, err := expander.Decompose(g, 0.3, expander.Options{Seed: 9})
			if err != nil {
				t.Fatal(err)
			}
			want := fingerprint(ref)
			for path, loaded := range loadAllWays(t, g) {
				d, err := expander.Decompose(loaded, 0.3, expander.Options{Seed: 9})
				if err != nil {
					t.Fatalf("%s: %v", path, err)
				}
				if got := fingerprint(d); got != want {
					t.Errorf("%s-loaded graph decomposes differently: %#x vs %#x", path, got, want)
				}
			}
		})
	}
}

// TestMappedGraphSimulatorSteadyStateZeroAlloc runs the CONGEST simulator's
// steady-state round loop on an mmap-backed graph: the zero-allocation
// contract of the Step path must hold when every adjacency access goes
// through file-mapped memory.
func TestMappedGraphSimulatorSteadyStateZeroAlloc(t *testing.T) {
	g := graph.Grid(16, 16)
	dir := t.TempDir()
	binPath := filepath.Join(dir, "grid.bin")
	var bin bytes.Buffer
	if err := graph.WriteBinary(&bin, g); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(binPath, bin.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	mg, err := graph.OpenMapped(binPath)
	if err != nil {
		t.Fatal(err)
	}
	defer mg.Close()

	sim := congest.NewSimulator(mg.Graph, congest.Config{Seed: 1})
	ex := sim.Start(func(v *congest.Vertex) congest.Handler {
		val := int64(v.ID())
		return congest.RunFuncs{
			InitFn: func(v *congest.Vertex) { v.BroadcastWords(val) },
			RoundFn: func(v *congest.Vertex, round int, recv []congest.Incoming) {
				v.BroadcastWords(val)
			},
		}
	})
	defer ex.Close()
	for i := 0; i < 4; i++ {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	}
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := ex.Step(); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("steady-state Step on an mmap-backed graph allocates %.1f objects/round, want 0", allocs)
	}
}

// TestHugeGraphRoundTrip is the 10M-edge acceptance run: generation,
// both encodings, the three load paths, and decomposition fingerprints, at
// the scale the substrate was built for. It costs several GB of temp disk
// and minutes of CPU, so it only runs when EXPANDERGAP_HUGE=1 is set.
func TestHugeGraphRoundTrip(t *testing.T) {
	if os.Getenv("EXPANDERGAP_HUGE") == "" {
		t.Skip("set EXPANDERGAP_HUGE=1 to run the 10M-edge acceptance test")
	}
	g := graph.ErdosRenyiStream(2_500_000, 8.0/2_500_000, 7, 0)
	t.Logf("generated n=%d m=%d", g.N(), g.M())
	if g.M() < 9_000_000 {
		t.Fatalf("expected ~10M edges, got %d", g.M())
	}
	loaded := loadAllWays(t, g)
	for path, lg := range loaded {
		if lg.N() != g.N() || lg.M() != g.M() {
			t.Fatalf("%s: loaded n=%d m=%d, want n=%d m=%d", path, lg.N(), lg.M(), g.N(), g.M())
		}
	}
	// Decompose a deterministic induced patch of the graph through each load
	// path: full-graph decomposition at 10M edges is a multi-hour run, and
	// patch identity across load paths already requires every adjacency
	// array to agree bit for bit.
	verts := make([]int, 50_000)
	for i := range verts {
		verts[i] = i * 3
	}
	patch := func(gg *graph.Graph) *expander.Decomposition {
		sub, _ := gg.InducedSubgraph(verts)
		d, err := expander.Decompose(sub, 0.3, expander.Options{Seed: 9})
		if err != nil {
			t.Fatal(err)
		}
		return d
	}
	want := fingerprint(patch(g))
	for path, lg := range loaded {
		if got := fingerprint(patch(lg)); got != want {
			t.Errorf("%s: patch decomposition fingerprint %#x, want %#x", path, got, want)
		}
	}
}
