// Package integration holds cross-module end-to-end tests: every
// application run through every framework track (randomized/deterministic
// routing, sequential/distributed decomposer), consistency between tracks,
// and behaviour under injected message loss.
package integration

import (
	"math/rand"
	"testing"

	"expandergap/internal/apps/corrclust"
	"expandergap/internal/apps/matching"
	"expandergap/internal/apps/maxis"
	"expandergap/internal/apps/proptest"
	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
	"expandergap/internal/minor"
	"expandergap/internal/solvers"
)

func TestMaxISAllTracks(t *testing.T) {
	g := graph.Grid(6, 6)
	opt := len(solvers.MaximumIndependentSet(g))
	tracks := map[string]core.Options{
		"randomized":    {},
		"deterministic": {Deterministic: true},
		"distributed":   {Decomposer: core.DistributedDecomposer},
	}
	for name, coreOpts := range tracks {
		name, coreOpts := name, coreOpts
		t.Run(name, func(t *testing.T) {
			res, err := maxis.Approximate(g, maxis.Options{
				Eps:  0.25,
				Cfg:  congest.Config{Seed: 7},
				Core: coreOpts,
			})
			if err != nil {
				t.Fatal(err)
			}
			if !solvers.IsIndependentSet(g, res.Set) {
				t.Fatal("not independent")
			}
			if float64(len(res.Set)) < 0.75*float64(opt) {
				t.Errorf("size %d below 0.75·OPT %d", len(res.Set), opt)
			}
		})
	}
}

func TestMatchingDeterministicTrack(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.RandomPlanar(40, 0.7, rng)
	res, err := matching.ApproximateMCM(g, matching.Options{
		Eps:  0.25,
		Cfg:  congest.Config{Seed: 9},
		Core: core.Options{Deterministic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsMatching(g, res.Mate) {
		t.Fatal("not a matching")
	}
	opt := solvers.MatchingSize(solvers.MaximumMatching(g))
	if float64(res.Size()) < 0.75*float64(opt) {
		t.Errorf("deterministic MCM %d below 0.75·OPT %d", res.Size(), opt)
	}
}

func TestCorrClustDistributedDecomposer(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	g := graph.WithRandomSigns(graph.Grid(6, 6), 0.6, rng)
	res, err := corrclust.Approximate(g, corrclust.Options{
		Eps:  0.3,
		Cfg:  congest.Config{Seed: 11},
		Core: core.Options{Decomposer: core.DistributedDecomposer},
	})
	if err != nil {
		t.Fatal(err)
	}
	if 2*res.Score < int64(g.M()) {
		t.Errorf("score %d below |E|/2 guarantee", res.Score)
	}
}

func TestPropertyTestingDeterministicTrack(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	good := graph.RandomMaximalPlanar(50, rng)
	v, err := proptest.Test(good, minor.Planarity(), proptest.Options{
		Eps:  0.1,
		Cfg:  congest.Config{Seed: 13},
		Core: core.Options{Deterministic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !v.AllAccept {
		t.Error("planar input rejected on deterministic track")
	}
	bad := proptest.DisjointForbiddenCliques(5, 5)
	v2, err := proptest.Test(bad, minor.Planarity(), proptest.Options{
		Eps:  0.1,
		Cfg:  congest.Config{Seed: 13},
		Core: core.Options{Deterministic: true},
	})
	if err != nil {
		t.Fatal(err)
	}
	if v2.AllAccept {
		t.Error("far input accepted on deterministic track")
	}
}

// Message loss must degrade gracefully: answers are either correct or
// flagged undelivered; accepted MaxIS output stays independent.
func TestMaxISUnderMessageLoss(t *testing.T) {
	g := graph.Grid(6, 6)
	res, err := maxis.Approximate(g, maxis.Options{
		Eps: 0.25,
		Cfg: congest.Config{Seed: 17, FaultRate: 0.001},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsIndependentSet(g, res.Set) {
		t.Fatal("set not independent under faults")
	}
	// The failure indicator must cover any vertex that produced no answer.
	for v := 0; v < g.N(); v++ {
		if res.Solution.Undelivered[v] && res.InSet[v] {
			// An undelivered vertex defaults to "not in set": safe. Being
			// in the set while undelivered would be a consistency bug —
			// unless the conflict rounds put it there, which they cannot.
			t.Errorf("undelivered vertex %d ended in the set", v)
		}
	}
}

// One-sided error must survive message loss: a planar input is never
// rejected, because every failure path in §3.4 maps loss to Accept.
func TestPropertyTesterOneSidedUnderLoss(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomMaximalPlanar(40, rng)
	for _, rate := range []float64{0.001, 0.01} {
		v, err := proptest.Test(g, minor.Planarity(), proptest.Options{
			Eps: 0.1,
			Cfg: congest.Config{Seed: 19, FaultRate: rate},
		})
		if err != nil {
			t.Fatal(err)
		}
		if !v.AllAccept {
			t.Errorf("rate %v: planar input rejected under loss (one-sided error broken)", rate)
		}
	}
}

// The two routing tracks agree on the full pipeline output for a fixed
// decomposition (the answers are a function of the clusters, not the route).
func TestTracksAgreeOnClusterAnswers(t *testing.T) {
	g := graph.Torus(5, 5)
	solver := func(cluster *graph.Graph, toOld []int) map[int]int64 {
		out := make(map[int]int64)
		for _, v := range toOld {
			out[v] = int64(cluster.M())
		}
		return out
	}
	a, err := core.Run(g, core.Options{Eps: 0.4, Cfg: congest.Config{Seed: 21}}, solver)
	if err != nil {
		t.Fatal(err)
	}
	b, err := core.Run(g, core.Options{Eps: 0.4, Cfg: congest.Config{Seed: 21}, Deterministic: true}, solver)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if a.Values[v] != b.Values[v] {
			t.Errorf("vertex %d: randomized %d vs deterministic %d", v, a.Values[v], b.Values[v])
		}
	}
	// Deterministic routing is usually cheaper in rounds at these sizes
	// (tree depth + backlog vs random-walk hitting time); record, don't
	// assert, but both must be positive.
	if a.Metrics.Rounds == 0 || b.Metrics.Rounds == 0 {
		t.Error("rounds not recorded")
	}
}
