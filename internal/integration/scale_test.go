package integration

import (
	"testing"

	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/graph"
	"expandergap/internal/solvers"
)

// Larger-scale smoke test: a 1024-vertex grid through the deterministic
// track (tree routing keeps the round count manageable at this size). This
// is the largest end-to-end run in the suite; skipped with -short.
func TestLargeGridDeterministicTrack(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale smoke test")
	}
	g := graph.Grid(32, 32)
	res, err := maxis.Approximate(g, maxis.Options{
		Eps: 0.3,
		Cfg: congest.Config{Seed: 31},
		Core: core.Options{
			Deterministic:     true,
			SkipDiameterCheck: true,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !solvers.IsIndependentSet(g, res.Set) {
		t.Fatal("not independent at scale")
	}
	// A 32x32 grid's optimum is 512 (checkerboard); the greedy fallback at
	// the leader plus decomposition loss must stay above (1-eps)-ish.
	if len(res.Set) < 410 {
		t.Errorf("large-grid IS = %d, want >= 410 (opt 512)", len(res.Set))
	}
	if res.Solution.Metrics.MaxWordsPerMsg > 8 {
		t.Errorf("CONGEST cap exceeded: %d words", res.Solution.Metrics.MaxWordsPerMsg)
	}
	for v := 0; v < g.N(); v++ {
		if res.Solution.Undelivered[v] {
			t.Fatalf("vertex %d undelivered at scale", v)
		}
	}
}
