package minor

import (
	"fmt"
	"sort"
	"strings"

	"expandergap/internal/graph"
)

// HasMinor reports whether h is a minor of g, exactly.
//
// The search uses the characterization that h ≤ g iff some graph obtained
// from g by contracting a (possibly empty) set of edges contains a subgraph
// isomorphic to h. It therefore branches on edge contractions with a
// subgraph-isomorphism base case, memoizing visited labeled graphs.
// Exponential in the worst case; intended for the small graphs that cluster
// leaders handle locally (n ≲ 20 with small h such as K5 or K3,3).
func HasMinor(g, h *graph.Graph) bool {
	if h.N() == 0 || h.M() == 0 && h.N() <= g.N() {
		return h.N() <= g.N()
	}
	memo := make(map[string]bool)
	return hasMinor(adjFromGraph(g), adjMatrixFromGraph(h), h.N(), memo)
}

// adj is a compact mutable adjacency-set representation used during the
// contraction search. Vertices are identified by position; contracted
// vertices are removed by swap-with-last.
type adjSets []map[int]bool

func adjFromGraph(g *graph.Graph) adjSets {
	a := make(adjSets, g.N())
	for v := 0; v < g.N(); v++ {
		a[v] = make(map[int]bool)
	}
	for _, e := range g.Edges() {
		a[e.U][e.V] = true
		a[e.V][e.U] = true
	}
	return a
}

func adjMatrixFromGraph(h *graph.Graph) [][]bool {
	m := make([][]bool, h.N())
	for i := range m {
		m[i] = make([]bool, h.N())
	}
	for _, e := range h.Edges() {
		m[e.U][e.V] = true
		m[e.V][e.U] = true
	}
	return m
}

func (a adjSets) edgeCount() int {
	c := 0
	for _, s := range a {
		c += len(s)
	}
	return c / 2
}

func (a adjSets) key() string {
	var sb strings.Builder
	for v, s := range a {
		nbrs := make([]int, 0, len(s))
		for u := range s {
			if u > v {
				nbrs = append(nbrs, u)
			}
		}
		sort.Ints(nbrs)
		for _, u := range nbrs {
			fmt.Fprintf(&sb, "%d-%d;", v, u)
		}
	}
	return sb.String()
}

// contract merges v into u (u keeps its identity, v is removed by moving the
// last vertex into v's slot) and returns a fresh adjSets.
func (a adjSets) contract(u, v int) adjSets {
	n := len(a)
	b := make(adjSets, n-1)
	// Relabel: every vertex keeps its index except v, which disappears, and
	// n-1, which moves to v's slot (if v != n-1).
	relabel := func(x int) int {
		switch {
		case x == v:
			return u // merged into u
		case x == n-1 && v != n-1:
			return v
		default:
			return x
		}
	}
	_ = relabel
	idx := func(x int) int {
		if x == n-1 && v != n-1 {
			return v
		}
		return x
	}
	for x := 0; x < n; x++ {
		if x == v {
			continue
		}
		nx := idx(x)
		if b[nx] == nil {
			b[nx] = make(map[int]bool)
		}
		for y := range a[x] {
			var ny int
			if y == v {
				ny = idx(u)
			} else {
				ny = idx(y)
			}
			if ny == nx {
				continue // contracting removes the {u,v} self-loop
			}
			b[nx][ny] = true
		}
	}
	// Merge v's other neighbors into u.
	nu := idx(u)
	for y := range a[v] {
		if y == u {
			continue
		}
		ny := idx(y)
		if ny == nu {
			continue
		}
		b[nu][ny] = true
		b[ny][nu] = true
	}
	return b
}

func hasMinor(g adjSets, h [][]bool, hn int, memo map[string]bool) bool {
	if len(g) < hn {
		return false
	}
	hm := 0
	for i := range h {
		for j := i + 1; j < len(h); j++ {
			if h[i][j] {
				hm++
			}
		}
	}
	if g.edgeCount() < hm {
		return false
	}
	key := g.key()
	if res, ok := memo[key]; ok {
		return res
	}
	memo[key] = false // provisional; avoids revisits on this path
	if subgraphIso(g, h) {
		memo[key] = true
		return true
	}
	// Branch on contractions.
	n := len(g)
	for u := 0; u < n; u++ {
		for v := range g[u] {
			if v < u {
				continue
			}
			if hasMinor(g.contract(u, v), h, hn, memo) {
				memo[key] = true
				return true
			}
		}
	}
	return false
}

// subgraphIso reports whether the pattern h embeds into g as a subgraph
// (injective vertex map preserving h's edges). Plain backtracking with
// degree pruning.
func subgraphIso(g adjSets, h [][]bool) bool {
	hn := len(h)
	gn := len(g)
	if hn > gn {
		return false
	}
	hdeg := make([]int, hn)
	for i := range h {
		for j := range h[i] {
			if h[i][j] {
				hdeg[i]++
			}
		}
	}
	// Order pattern vertices by decreasing degree for early pruning.
	order := make([]int, hn)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return hdeg[order[a]] > hdeg[order[b]] })

	assign := make([]int, hn) // h vertex -> g vertex
	for i := range assign {
		assign[i] = -1
	}
	used := make([]bool, gn)

	var try func(step int) bool
	try = func(step int) bool {
		if step == hn {
			return true
		}
		hv := order[step]
		for gv := 0; gv < gn; gv++ {
			if used[gv] || len(g[gv]) < hdeg[hv] {
				continue
			}
			ok := true
			for prev := 0; prev < step; prev++ {
				hu := order[prev]
				if h[hv][hu] && !g[gv][assign[hu]] {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			assign[hv] = gv
			used[gv] = true
			if try(step + 1) {
				return true
			}
			assign[hv] = -1
			used[gv] = false
		}
		return false
	}
	return try(0)
}

// HasK5Minor reports whether g contains K5 as a minor. For graphs small
// enough it uses the exact search; by Wagner's theorem a planar graph never
// has one, so the planarity test provides a fast negative filter.
func HasK5Minor(g *graph.Graph) bool {
	if IsPlanar(g) {
		return false
	}
	return HasMinor(g, graph.Complete(5))
}

// HasK33Minor reports whether g contains K3,3 as a minor.
func HasK33Minor(g *graph.Graph) bool {
	if IsPlanar(g) {
		return false
	}
	return HasMinor(g, graph.CompleteBipartite(3, 3))
}

// Property is a minor-closed graph property described by its finite set of
// forbidden minors (the Robertson–Seymour characterization used throughout
// §3.4 of the paper). A graph has the property iff it contains none of the
// forbidden minors.
type Property struct {
	// Name is a human-readable label such as "planar".
	Name string
	// Forbidden is the finite list of forbidden minors.
	Forbidden []*graph.Graph
	// Check optionally overrides the generic minor search with an exact
	// specialized decision procedure (for example Demoucron for planarity).
	// When nil the generic HasMinor search is used.
	Check func(*graph.Graph) bool
}

// Holds reports whether g has the property.
func (p Property) Holds(g *graph.Graph) bool {
	if p.Check != nil {
		return p.Check(g)
	}
	for _, h := range p.Forbidden {
		if HasMinor(g, h) {
			return false
		}
	}
	return true
}

// CliqueNumberBound returns the smallest s such that K_s does not satisfy
// the property, following the H = K_s selection step of the paper's §3.4
// algorithm, probing s = 1, 2, ... up to max. The boolean is false if every
// probed clique satisfies the property (a trivial property per the paper).
func (p Property) CliqueNumberBound(max int) (int, bool) {
	for s := 1; s <= max; s++ {
		if !p.Holds(graph.Complete(s)) {
			return s, true
		}
	}
	return 0, false
}

// Planarity is the planar-graphs property with forbidden minors {K5, K3,3}
// and Demoucron's algorithm as the exact decision procedure.
func Planarity() Property {
	return Property{
		Name:      "planar",
		Forbidden: []*graph.Graph{graph.Complete(5), graph.CompleteBipartite(3, 3)},
		Check:     IsPlanar,
	}
}

// Forests is the acyclic-graphs property with forbidden minor {K3}.
func Forests() Property {
	return Property{
		Name:      "forest",
		Forbidden: []*graph.Graph{graph.Complete(3)},
		Check:     func(g *graph.Graph) bool { return !g.HasCycle() },
	}
}

// LinearForests is the property of disjoint unions of paths, with forbidden
// minors {K3, K_{1,3}}.
func LinearForests() Property {
	return Property{
		Name:      "linear-forest",
		Forbidden: []*graph.Graph{graph.Complete(3), graph.Star(3)},
		Check: func(g *graph.Graph) bool {
			return !g.HasCycle() && g.MaxDegree() <= 2
		},
	}
}
