package minor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestIsPlanarBasics(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"K1", graph.Complete(1), true},
		{"K4", graph.Complete(4), true},
		{"K5", graph.Complete(5), false},
		{"K6", graph.Complete(6), false},
		{"K33", graph.CompleteBipartite(3, 3), false},
		{"K23", graph.CompleteBipartite(2, 3), true},
		{"path", graph.Path(10), true},
		{"cycle", graph.Cycle(10), true},
		{"grid", graph.Grid(6, 6), true},
		{"trigrid", graph.TriangulatedGrid(5, 5), true},
		{"petersen-ish hypercube Q3", graph.Hypercube(3), true},
		{"Q4", graph.Hypercube(4), false},
		{"star", graph.Star(9), true},
		{"wheel", graph.Wheel(8), true},
		{"prism", graph.Prism(6), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsPlanar(tc.g); got != tc.want {
				t.Errorf("IsPlanar = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestIsPlanarSubdivisions(t *testing.T) {
	// Subdivisions preserve (non-)planarity.
	for k := 1; k <= 3; k++ {
		if IsPlanar(graph.Subdivide(graph.Complete(5), k)) {
			t.Errorf("subdivided K5 (k=%d) must be non-planar", k)
		}
		if IsPlanar(graph.Subdivide(graph.CompleteBipartite(3, 3), k)) {
			t.Errorf("subdivided K33 (k=%d) must be non-planar", k)
		}
		if !IsPlanar(graph.Subdivide(graph.Grid(4, 4), k)) {
			t.Errorf("subdivided grid (k=%d) must be planar", k)
		}
	}
}

func TestIsPlanarGeneratedTriangulations(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, n := range []int{5, 10, 25, 60} {
		g := graph.RandomMaximalPlanar(n, rng)
		if !IsPlanar(g) {
			t.Errorf("RandomMaximalPlanar(%d) reported non-planar", n)
		}
		if g.M() != 3*n-6 {
			t.Errorf("triangulation edge count %d != %d", g.M(), 3*n-6)
		}
	}
	for _, n := range []int{10, 40} {
		g := graph.RandomPlanar(n, 0.6, rng)
		if !IsPlanar(g) {
			t.Errorf("RandomPlanar(%d) reported non-planar", n)
		}
		if !IsPlanar(graph.RandomOuterplanar(n, rng)) {
			t.Errorf("RandomOuterplanar(%d) reported non-planar", n)
		}
	}
}

func TestIsPlanarNonplanarWithCutVertices(t *testing.T) {
	// K5 hanging off a path through a cut vertex: still non-planar.
	k5 := graph.Complete(5)
	b := graph.NewBuilder(8)
	for _, e := range k5.Edges() {
		b.AddEdge(e.U, e.V)
	}
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(6, 7)
	if IsPlanar(b.Graph()) {
		t.Error("K5 plus pendant path must be non-planar")
	}
	// Two planar blocks sharing a cut vertex: planar.
	two := graph.Disjoint(graph.Complete(4), graph.Complete(4))
	b2 := graph.NewBuilder(8)
	for _, e := range two.Edges() {
		b2.AddEdge(e.U, e.V)
	}
	b2.AddEdge(3, 4)
	if !IsPlanar(b2.Graph()) {
		t.Error("two K4 blocks joined by a bridge must be planar")
	}
}

func TestIsPlanarDisjointUnions(t *testing.T) {
	if !IsPlanar(graph.Disjoint(graph.Grid(3, 3), graph.Cycle(5))) {
		t.Error("disjoint union of planar graphs is planar")
	}
	if IsPlanar(graph.Disjoint(graph.Grid(3, 3), graph.Complete(5))) {
		t.Error("union containing K5 is non-planar")
	}
}

func TestHasMinorSmall(t *testing.T) {
	cases := []struct {
		name string
		g, h *graph.Graph
		want bool
	}{
		{"K4 in K5", graph.Complete(5), graph.Complete(4), true},
		{"K5 in K4", graph.Complete(4), graph.Complete(5), false},
		{"K3 in C5", graph.Cycle(5), graph.Complete(3), true}, // contract cycle edges
		{"K3 in tree", graph.Path(6), graph.Complete(3), false},
		{"K4 in grid", graph.Grid(3, 3), graph.Complete(4), true},
		{"K5 in grid", graph.Grid(3, 3), graph.Complete(5), false},
		{"K33 in Q3", graph.Hypercube(3), graph.CompleteBipartite(3, 3), false},
		{"K33 in K5", graph.Complete(5), graph.CompleteBipartite(3, 3), false},
		{"star in path", graph.Path(5), graph.Star(2), true},
		{"K13 in path", graph.Path(5), graph.Star(3), false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := HasMinor(tc.g, tc.h); got != tc.want {
				t.Errorf("HasMinor = %v, want %v", got, tc.want)
			}
		})
	}
}

func TestHasMinorSubdivision(t *testing.T) {
	// A subdivision of H always contains H as a minor.
	for _, h := range []*graph.Graph{graph.Complete(4), graph.CompleteBipartite(2, 3)} {
		sub := graph.Subdivide(h, 1)
		if !HasMinor(sub, h) {
			t.Errorf("subdivision must contain original as minor (h: %v)", h)
		}
	}
}

// Wagner's theorem cross-validation: on small random graphs, planarity
// (Demoucron) agrees with "no K5 minor and no K3,3 minor" (contract search).
func TestWagnerCrossValidation(t *testing.T) {
	k5 := graph.Complete(5)
	k33 := graph.CompleteBipartite(3, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(4)
		g := graph.ErdosRenyi(n, 0.5, rng)
		planar := IsPlanar(g)
		wagner := !HasMinor(g, k5) && !HasMinor(g, k33)
		return planar == wagner
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHasK5K33Minor(t *testing.T) {
	if HasK5Minor(graph.Grid(4, 4)) {
		t.Error("grid has no K5 minor")
	}
	if !HasK5Minor(graph.Complete(6)) {
		t.Error("K6 has a K5 minor")
	}
	if !HasK33Minor(graph.CompleteBipartite(3, 4)) {
		t.Error("K34 has a K33 minor")
	}
	if HasK33Minor(graph.RandomOuterplanar(10, rand.New(rand.NewSource(1)))) {
		t.Error("outerplanar graph has no K33 minor")
	}
}

func TestPropertyPlanarity(t *testing.T) {
	p := Planarity()
	if !p.Holds(graph.Grid(5, 5)) {
		t.Error("grid should satisfy planarity")
	}
	if p.Holds(graph.Complete(5)) {
		t.Error("K5 should not satisfy planarity")
	}
	s, ok := p.CliqueNumberBound(10)
	if !ok || s != 5 {
		t.Errorf("planarity clique bound = %d (ok=%v), want 5", s, ok)
	}
}

func TestPropertyForests(t *testing.T) {
	p := Forests()
	if !p.Holds(graph.Path(8)) || p.Holds(graph.Cycle(4)) {
		t.Error("forest property wrong")
	}
	s, ok := p.CliqueNumberBound(10)
	if !ok || s != 3 {
		t.Errorf("forest clique bound = %d, want 3", s)
	}
	// Generic minor path agrees with the specialized check.
	generic := Property{Forbidden: p.Forbidden}
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		g := graph.ErdosRenyi(6, 0.3, rng)
		if generic.Holds(g) != p.Holds(g) {
			t.Fatalf("generic vs specialized forest check disagree on %v", g)
		}
	}
}

func TestPropertyLinearForests(t *testing.T) {
	p := LinearForests()
	if !p.Holds(graph.Path(6)) {
		t.Error("path is a linear forest")
	}
	if p.Holds(graph.Star(3)) {
		t.Error("K_{1,3} is not a linear forest")
	}
	if p.Holds(graph.Cycle(4)) {
		t.Error("cycle is not a linear forest")
	}
	generic := Property{Forbidden: p.Forbidden}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 20; i++ {
		g := graph.ErdosRenyi(6, 0.25, rng)
		if generic.Holds(g) != p.Holds(g) {
			t.Fatalf("generic vs specialized linear-forest check disagree")
		}
	}
}

func TestCliqueBoundTrivialProperty(t *testing.T) {
	all := Property{Name: "everything", Check: func(*graph.Graph) bool { return true }}
	if _, ok := all.CliqueNumberBound(6); ok {
		t.Error("trivial property should report no forbidden clique")
	}
}

func TestPlanarityLargeSparse(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	g := graph.RandomMaximalPlanar(300, rng)
	if !IsPlanar(g) {
		t.Error("large triangulation misclassified")
	}
	// Adding any edge to a maximal planar graph breaks planarity.
	b := graph.NewBuilder(g.N())
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	added := false
	for u := 0; u < g.N() && !added; u++ {
		for v := u + 1; v < g.N() && !added; v++ {
			if !g.HasEdge(u, v) {
				b.AddEdge(u, v)
				added = true
			}
		}
	}
	if !added {
		t.Fatal("no non-edge found")
	}
	if IsPlanar(b.Graph()) {
		t.Error("triangulation plus an extra edge must be non-planar")
	}
}
