// Package minor implements planarity testing and exact H-minor containment
// for the graph families this repository studies.
//
// Planarity is the flagship minor-closed property in the paper (Theorem 1.4
// tests it distributedly; Theorem 3.2's matching algorithm is for planar
// networks). The tester here is Demoucron's classic face-embedding algorithm
// run per biconnected component, preceded by the Euler-formula edge-count
// rejection. It is O(n^2)-ish and exact, which is all the cluster-local
// checks in the framework need.
//
// The exact minor tester (HasMinor) is an exponential contract-and-check
// search with memoization, intended for the small cluster graphs the
// framework's leaders solve locally and for certifying generator families in
// tests. By Wagner's theorem, IsPlanar(g) is equivalent to g having neither a
// K5 nor a K3,3 minor, and the test suite cross-validates the two
// implementations against each other.
package minor

import (
	"expandergap/internal/graph"
)

// IsPlanar reports whether g is planar. It is exact.
func IsPlanar(g *graph.Graph) bool {
	n := g.N()
	if n <= 4 {
		return true
	}
	if g.M() > 3*n-6 {
		return false
	}
	// Planarity is preserved under 1-cuts: test each biconnected component.
	for _, compEdges := range g.BiconnectedComponents() {
		if len(compEdges) <= 2 {
			continue // a single edge or two edges cannot be non-planar
		}
		sub := componentGraph(g, compEdges)
		if !biconnectedPlanar(sub) {
			return false
		}
	}
	return true
}

// componentGraph builds the subgraph on the vertices touched by compEdges,
// relabeled to 0..k-1.
func componentGraph(g *graph.Graph, compEdges []int) *graph.Graph {
	verts := make(map[int]int)
	var order []int
	for _, ei := range compEdges {
		e := g.EdgeAt(ei)
		for _, v := range []int{e.U, e.V} {
			if _, ok := verts[v]; !ok {
				verts[v] = len(order)
				order = append(order, v)
			}
		}
	}
	b := graph.NewBuilder(len(order))
	for _, ei := range compEdges {
		e := g.EdgeAt(ei)
		b.AddEdge(verts[e.U], verts[e.V])
	}
	return b.Graph()
}

// face is a simple cycle of vertex IDs describing one face boundary of the
// partial embedding. Because the embedded subgraph stays biconnected
// throughout Demoucron's algorithm, boundaries are always simple cycles.
type face []int

func (f face) contains(v int) bool {
	for _, u := range f {
		if u == v {
			return true
		}
	}
	return false
}

// fragment is a bridge of G relative to the embedded subgraph: either a
// single unembedded edge between two embedded vertices, or a connected
// component of G minus the embedded vertices together with its attachment
// edges.
type fragment struct {
	attachments []int        // embedded vertices the fragment touches
	inner       map[int]bool // unembedded vertices of the fragment (nil for chords)
	chord       [2]int       // valid when inner is empty
}

// biconnectedPlanar runs Demoucron's algorithm on a biconnected graph with at
// least 3 edges.
func biconnectedPlanar(g *graph.Graph) bool {
	n := g.N()
	if n <= 4 {
		return true
	}
	if g.M() > 3*n-6 {
		return false
	}
	cyc := findCycle(g)
	if cyc == nil {
		return true // acyclic: trivially planar (should not occur: biconnected with >=3 edges)
	}

	embedded := make([]bool, n) // vertex embedded?
	embEdge := make(map[[2]int]bool)
	addEmb := func(u, v int) {
		if u > v {
			u, v = v, u
		}
		embEdge[[2]int{u, v}] = true
	}
	hasEmb := func(u, v int) bool {
		if u > v {
			u, v = v, u
		}
		return embEdge[[2]int{u, v}]
	}
	for i, v := range cyc {
		embedded[v] = true
		addEmb(v, cyc[(i+1)%len(cyc)])
	}
	faces := []face{append(face(nil), cyc...), append(face(nil), cyc...)}

	for {
		frags := computeFragments(g, embedded, hasEmb)
		if len(frags) == 0 {
			return true
		}
		// For each fragment, find admissible faces.
		bestIdx, bestFace := -1, -1
		for fi, fr := range frags {
			admissible := -1
			count := 0
			for i, f := range faces {
				ok := true
				for _, a := range fr.attachments {
					if !f.contains(a) {
						ok = false
						break
					}
				}
				if ok {
					count++
					admissible = i
				}
			}
			if count == 0 {
				return false
			}
			if count == 1 {
				bestIdx, bestFace = fi, admissible
				break
			}
			if bestIdx == -1 {
				bestIdx, bestFace = fi, admissible
			}
		}
		fr := frags[bestIdx]
		path := fragmentPath(g, fr, embedded)
		// Embed path into faces[bestFace], splitting it in two.
		f := faces[bestFace]
		a, b := path[0], path[len(path)-1]
		ai, bi := indexOf(f, a), indexOf(f, b)
		// Walk boundary a -> b forward and b -> a continuing forward.
		var arc1, arc2 face
		for i := ai; ; i = (i + 1) % len(f) {
			arc1 = append(arc1, f[i])
			if i == bi {
				break
			}
		}
		for i := bi; ; i = (i + 1) % len(f) {
			arc2 = append(arc2, f[i])
			if i == ai {
				break
			}
		}
		// New faces: arc1 + reverse(path interior), arc2 + path interior.
		interior := path[1 : len(path)-1]
		nf1 := append(face(nil), arc1...)
		for i := len(interior) - 1; i >= 0; i-- {
			nf1 = append(nf1, interior[i])
		}
		nf2 := append(face(nil), arc2...)
		nf2 = append(nf2, interior...)
		faces[bestFace] = nf1
		faces = append(faces, nf2)
		// Mark path embedded.
		for i := 0; i+1 < len(path); i++ {
			addEmb(path[i], path[i+1])
		}
		for _, v := range interior {
			embedded[v] = true
		}
	}
}

func indexOf(f face, v int) int {
	for i, u := range f {
		if u == v {
			return i
		}
	}
	return -1
}

// findCycle returns any simple cycle of g as a vertex list, or nil if acyclic.
func findCycle(g *graph.Graph) []int {
	n := g.N()
	parent := make([]int, n)
	state := make([]int, n) // 0 unseen, 1 active, 2 done
	for i := range parent {
		parent[i] = -1
	}
	for root := 0; root < n; root++ {
		if state[root] != 0 {
			continue
		}
		// Iterative DFS tracking the tree path.
		type fr struct{ v, next int }
		stack := []fr{{root, 0}}
		state[root] = 1
		for len(stack) > 0 {
			top := &stack[len(stack)-1]
			v := top.v
			if top.next < g.Degree(v) {
				u := g.NeighborAt(v, top.next)
				top.next++
				if u == parent[v] {
					continue
				}
				if state[u] == 1 {
					// Found a cycle: walk v back to u.
					cyc := []int{v}
					for x := v; x != u; x = parent[x] {
						cyc = append(cyc, parent[x])
					}
					return cyc
				}
				if state[u] == 0 {
					state[u] = 1
					parent[u] = v
					stack = append(stack, fr{u, 0})
				}
			} else {
				state[v] = 2
				stack = stack[:len(stack)-1]
			}
		}
	}
	return nil
}

// computeFragments finds all bridges of g relative to the embedded subgraph.
func computeFragments(g *graph.Graph, embedded []bool, hasEmb func(u, v int) bool) []fragment {
	n := g.N()
	var frags []fragment
	// Chord fragments: unembedded edges between embedded vertices.
	for _, e := range g.Edges() {
		if embedded[e.U] && embedded[e.V] && !hasEmb(e.U, e.V) {
			frags = append(frags, fragment{
				attachments: []int{e.U, e.V},
				chord:       [2]int{e.U, e.V},
			})
		}
	}
	// Component fragments: connected components of unembedded vertices.
	seen := make([]bool, n)
	for s := 0; s < n; s++ {
		if embedded[s] || seen[s] {
			continue
		}
		inner := map[int]bool{s: true}
		attachSet := map[int]bool{}
		queue := []int{s}
		seen[s] = true
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.ForEachNeighbor(v, func(u, _ int) {
				if embedded[u] {
					attachSet[u] = true
				} else if !seen[u] {
					seen[u] = true
					inner[u] = true
					queue = append(queue, u)
				}
			})
		}
		attachments := make([]int, 0, len(attachSet))
		for v := range attachSet {
			attachments = append(attachments, v)
		}
		frags = append(frags, fragment{attachments: attachments, inner: inner})
	}
	return frags
}

// fragmentPath returns a path through the fragment between two distinct
// attachment vertices, with all interior vertices unembedded.
func fragmentPath(g *graph.Graph, fr fragment, embedded []bool) []int {
	if len(fr.inner) == 0 {
		return []int{fr.chord[0], fr.chord[1]}
	}
	// BFS from attachment a through inner vertices to any other attachment.
	a := fr.attachments[0]
	target := make(map[int]bool)
	for _, t := range fr.attachments[1:] {
		target[t] = true
	}
	parent := map[int]int{a: a}
	queue := []int{a}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i, deg := 0, g.Degree(v); i < deg; i++ {
			u := g.NeighborAt(v, i)
			if _, ok := parent[u]; ok {
				continue
			}
			if v == a && !fr.inner[u] {
				// The first hop must enter the fragment interior; a direct
				// a-b edge either is already embedded or belongs to a chord
				// fragment of its own.
				continue
			}
			if fr.inner[u] {
				parent[u] = v
				queue = append(queue, u)
				continue
			}
			if target[u] {
				parent[u] = v
				path := []int{u}
				for x := u; x != a; x = parent[x] {
					path = append(path, parent[x])
				}
				reverse(path)
				return path
			}
		}
	}
	// Biconnected input guarantees >= 2 attachments reachable; reaching here
	// would mean the fragment has a single attachment, which cannot happen.
	panic("minor: fragment with unreachable second attachment (input not biconnected?)")
}

func reverse(a []int) {
	for i, j := 0, len(a)-1; i < j; i, j = i+1, j-1 {
		a[i], a[j] = a[j], a[i]
	}
}
