package minor

import (
	"expandergap/internal/graph"
)

// This file adds exact decision procedures for further minor-closed,
// union-closed properties beyond planarity — the generality Theorem 1.4
// claims. Each comes with its forbidden-minor characterization so tests can
// cross-validate the specialized recognizer against the generic HasMinor
// search.

// IsOuterplanar reports whether g is outerplanar, exactly, via the apex
// characterization: g is outerplanar iff g plus a universal apex vertex is
// planar (the apex forces every vertex onto the outer face).
func IsOuterplanar(g *graph.Graph) bool {
	n := g.N()
	if n <= 2 {
		return true
	}
	b := graph.NewBuilder(n + 1)
	for _, e := range g.Edges() {
		b.AddEdge(e.U, e.V)
	}
	for v := 0; v < n; v++ {
		b.AddEdge(n, v)
	}
	return IsPlanar(b.Graph())
}

// Outerplanarity is the outerplanar-graphs property with forbidden minors
// {K4, K2,3} and the apex-planarity check as the exact decision procedure.
func Outerplanarity() Property {
	return Property{
		Name:      "outerplanar",
		Forbidden: []*graph.Graph{graph.Complete(4), graph.CompleteBipartite(2, 3)},
		Check:     IsOuterplanar,
	}
}

// HasTreewidthAtMost2 reports whether g has treewidth at most 2
// (equivalently: g is K4-minor-free; equivalently: every biconnected
// component is series-parallel), exactly, via the classic reduction: a graph
// has treewidth ≤ 2 iff it can be reduced to the empty graph by repeatedly
// deleting vertices of degree ≤ 1 and bypassing vertices of degree 2
// (connecting their two neighbors).
func HasTreewidthAtMost2(g *graph.Graph) bool {
	n := g.N()
	// Mutable adjacency sets (parallel edges collapse, which is safe: a
	// bypass creating an existing edge only helps the reduction).
	adj := make([]map[int]bool, n)
	for v := 0; v < n; v++ {
		adj[v] = make(map[int]bool)
	}
	for _, e := range g.Edges() {
		adj[e.U][e.V] = true
		adj[e.V][e.U] = true
	}
	alive := make([]bool, n)
	remaining := n
	for v := range alive {
		alive[v] = true
	}
	queue := make([]int, 0, n)
	for v := 0; v < n; v++ {
		queue = append(queue, v)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		if !alive[v] || len(adj[v]) > 2 {
			continue
		}
		switch len(adj[v]) {
		case 0:
			alive[v] = false
			remaining--
		case 1:
			var u int
			for w := range adj[v] {
				u = w
			}
			delete(adj[u], v)
			alive[v] = false
			remaining--
			queue = append(queue, u)
		case 2:
			var nbrs []int
			for w := range adj[v] {
				nbrs = append(nbrs, w)
			}
			a, c := nbrs[0], nbrs[1]
			delete(adj[a], v)
			delete(adj[c], v)
			adj[a][c] = true
			adj[c][a] = true
			alive[v] = false
			remaining--
			queue = append(queue, a, c)
		}
	}
	return remaining == 0
}

// TreewidthAtMost2 is the series-parallel property with forbidden minor
// {K4} and the reduction-based recognizer.
func TreewidthAtMost2() Property {
	return Property{
		Name:      "treewidth<=2",
		Forbidden: []*graph.Graph{graph.Complete(4)},
		Check:     HasTreewidthAtMost2,
	}
}
