package minor

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestIsOuterplanarKnown(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"cycle", graph.Cycle(8), true},
		{"path", graph.Path(8), true},
		{"K3", graph.Complete(3), true},
		{"K4", graph.Complete(4), false},
		{"K23", graph.CompleteBipartite(2, 3), false},
		{"fan", graph.RandomOuterplanar(12, rng), true},
		{"grid3x3", graph.Grid(3, 3), false}, // contains K2,3 minor
		{"star", graph.Star(6), true},
		{"two-triangles", graph.Disjoint(graph.Cycle(3), graph.Cycle(3)), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := IsOuterplanar(tc.g); got != tc.want {
				t.Errorf("IsOuterplanar = %v, want %v", got, tc.want)
			}
		})
	}
}

// Cross-validate the apex recognizer against the forbidden minors {K4, K2,3}
// on small random graphs.
func TestQuickOuterplanarForbiddenMinors(t *testing.T) {
	k4 := graph.Complete(4)
	k23 := graph.CompleteBipartite(2, 3)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(4)
		g := graph.ErdosRenyi(n, 0.4, rng)
		byApex := IsOuterplanar(g)
		byMinors := !HasMinor(g, k4) && !HasMinor(g, k23)
		return byApex == byMinors
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestHasTreewidthAtMost2Known(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	cases := []struct {
		name string
		g    *graph.Graph
		want bool
	}{
		{"tree", graph.RandomTree(20, rng), true},
		{"cycle", graph.Cycle(10), true},
		{"K3", graph.Complete(3), true},
		{"K4", graph.Complete(4), false},
		{"outerplanar", graph.RandomOuterplanar(15, rng), true},
		{"2tree", graph.KTree(12, 2, rng), true},
		{"3tree", graph.KTree(12, 3, rng), false},
		{"grid4x4", graph.Grid(4, 4), false},
		{"K23", graph.CompleteBipartite(2, 3), true}, // series-parallel
		{"empty", graph.NewBuilder(5).Graph(), true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := HasTreewidthAtMost2(tc.g); got != tc.want {
				t.Errorf("HasTreewidthAtMost2 = %v, want %v", got, tc.want)
			}
		})
	}
}

// Cross-validate the reduction against the forbidden minor {K4}.
func TestQuickTreewidth2ForbiddenMinor(t *testing.T) {
	k4 := graph.Complete(4)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(5)
		g := graph.ErdosRenyi(n, 0.35, rng)
		return HasTreewidthAtMost2(g) == !HasMinor(g, k4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestPropertyHierarchy(t *testing.T) {
	// outerplanar ⊂ treewidth≤2 ⊂ planar on a sample of graphs.
	rng := rand.New(rand.NewSource(3))
	op := Outerplanarity()
	tw := TreewidthAtMost2()
	pl := Planarity()
	for i := 0; i < 20; i++ {
		g := graph.ErdosRenyi(7, 0.35, rng)
		if op.Holds(g) && !tw.Holds(g) {
			t.Errorf("outerplanar graph with treewidth > 2: %v", g)
		}
		if tw.Holds(g) && !pl.Holds(g) {
			t.Errorf("treewidth<=2 graph that is not planar: %v", g)
		}
	}
}

func TestNewPropertiesCliqueBounds(t *testing.T) {
	if s, ok := Outerplanarity().CliqueNumberBound(8); !ok || s != 4 {
		t.Errorf("outerplanar clique bound = %d, want 4", s)
	}
	if s, ok := TreewidthAtMost2().CliqueNumberBound(8); !ok || s != 4 {
		t.Errorf("treewidth<=2 clique bound = %d, want 4", s)
	}
}
