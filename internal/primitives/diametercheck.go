package primitives

import (
	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

type diamCheckHandler struct {
	clusterBase
	b       int
	maxSeen int64
	marked  bool
	// neighborVals holds same-cluster neighbors' b-ball maxima.
	phaseDone bool
}

// DiameterCheck implements the failure-detection subroutine of §2.3 of the
// paper. Given a bound b, every vertex computes the maximum ID within
// distance b inside its cluster, compares with its same-cluster neighbors,
// marks itself * on disagreement, and then propagates marks for 2b+1 rounds.
//
// Guarantee (as in the paper): if the cluster's diameter is at most b, no
// vertex is marked; if the diameter is at least 2b+1, every vertex is
// marked. Marked vertices know the clustering step failed and should reset
// to singleton clusters.
func DiameterCheck(g *graph.Graph, cfg congest.Config, cluster ClusterAssignment, b int) ([]bool, congest.Metrics, error) {
	if err := cluster.Validate(g); err != nil {
		return nil, congest.Metrics{}, err
	}
	cfg.Obs.BeginPhase("diameter-check")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return &diamCheckHandler{
			clusterBase: clusterBase{clusterID: cluster[v.ID()]},
			b:           b,
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	marked := make([]bool, g.N())
	for v := 0; v < g.N(); v++ {
		marked[v] = res.Outputs[v].(bool)
	}
	return marked, res.Metrics, nil
}

func (h *diamCheckHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	pr, ok := h.absorb(v, round, recv)
	if !ok {
		h.maxSeen = int64(v.ID())
		return
	}
	// Schedule:
	//   pr in [1, b]:        flood max-ID (send current max each round).
	//   pr == b+1:           send own b-ball max to neighbors.
	//   pr == b+2:           compare; mark on disagreement; start mark flood.
	//   pr in [b+3, 3b+3]:   flood marks (2b+1 rounds).
	//   pr == 3b+4:          output and halt.
	switch {
	case pr <= h.b:
		if pr > 1 {
			for _, in := range recv {
				if len(in.Msg) == 1 && in.Msg[0] > h.maxSeen {
					h.maxSeen = in.Msg[0]
				}
			}
		}
		h.sendSame(v, h.maxSeen)
	case pr == h.b+1:
		// Absorb the last flood round, then share the final value.
		for _, in := range recv {
			if len(in.Msg) == 1 && in.Msg[0] > h.maxSeen {
				h.maxSeen = in.Msg[0]
			}
		}
		h.sendSame(v, h.maxSeen)
	case pr == h.b+2:
		for _, in := range recv {
			if len(in.Msg) == 1 && in.Msg[0] != h.maxSeen {
				h.marked = true
			}
		}
		if h.marked {
			h.sendSame(v, 1)
		}
	case pr <= 3*h.b+3:
		for _, in := range recv {
			if len(in.Msg) == 1 && in.Msg[0] == 1 && !h.marked {
				h.marked = true
				h.sendSame(v, 1)
			}
		}
	default:
		for _, in := range recv {
			if len(in.Msg) == 1 && in.Msg[0] == 1 {
				h.marked = true
			}
		}
		v.SetOutput(h.marked)
		v.Halt()
	}
}
