package primitives

import (
	"testing"

	"expandergap/internal/graph"
)

func TestBFSForestInsufficientBudget(t *testing.T) {
	// Budget below the diameter: distant vertices stay unreached — the
	// caller-visible signature of an under-budgeted phase.
	g := graph.Path(10)
	bfs, _, err := BFSForest(g, defaultCfg(), Uniform(g.N()), map[int]int{0: 0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Dist[2] == -1 {
		t.Error("near vertex should be reached within budget 3")
	}
	if bfs.Dist[9] != -1 {
		t.Error("far vertex should be unreached with budget 3")
	}
}

func TestConvergecastInsufficientBudgetPartial(t *testing.T) {
	g := graph.Path(8)
	bfs, _, err := BFSForest(g, defaultCfg(), Uniform(g.N()), map[int]int{0: 0}, 16)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, g.N())
	for v := range values {
		values[v] = 1
	}
	// Budget 2 cannot drain an 8-deep path; the root sees a partial sum.
	sums, _, err := Convergecast(g, defaultCfg(), bfs, values, OpSum, 2)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] >= 8 {
		t.Errorf("partial convergecast reported full sum %d", sums[0])
	}
	// Ample budget gets the exact sum.
	sums, _, err = Convergecast(g, defaultCfg(), bfs, values, OpSum, 20)
	if err != nil {
		t.Fatal(err)
	}
	if sums[0] != 8 {
		t.Errorf("full convergecast sum = %d, want 8", sums[0])
	}
}

func TestFloodValueMultipleClustersSimultaneous(t *testing.T) {
	// 3 disjoint cycles, three clusters, three different values — one run.
	g := graph.Disjoint(graph.Cycle(4), graph.Cycle(4), graph.Cycle(4))
	cluster := make(ClusterAssignment, g.N())
	for v := range cluster {
		cluster[v] = v / 4
	}
	vals, _, err := FloodValue(g, defaultCfg(), cluster,
		map[int]int{0: 0, 1: 4, 2: 8},
		map[int]int64{0: 100, 1: 200, 2: 300}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		want := int64(100 * (v/4 + 1))
		if vals[v] == nil || *vals[v] != want {
			t.Errorf("vertex %d got %v, want %d", v, vals[v], want)
		}
	}
}

func TestOrientationSingleVertexAndEdgeless(t *testing.T) {
	g := graph.NewBuilder(3).Graph()
	orient, _, err := LowOutDegreeOrientation(g, defaultCfg(), Uniform(3), 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	if orient.MaxOutDegree() != 0 {
		t.Error("edgeless graph should have zero out-degrees")
	}
}

func TestOrientationPhaseBudgetTooSmall(t *testing.T) {
	// A clique with density bound 1: threshold 4 < degree 7, so nothing
	// peels until the budget runs out; edges stay unowned and the call
	// still returns cleanly.
	g := graph.Complete(8)
	orient, _, err := LowOutDegreeOrientation(g, defaultCfg(), Uniform(8), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	unowned := 0
	for _, o := range orient.Owner {
		if o == -1 {
			unowned++
		}
	}
	if unowned == 0 {
		t.Error("expected unowned edges with an impossible density bound")
	}
}

func TestDiameterCheckSingletons(t *testing.T) {
	g := graph.Path(6)
	marked, _, err := DiameterCheck(g, defaultCfg(), Singletons(6), 1)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range marked {
		if m {
			t.Errorf("singleton cluster %d marked", v)
		}
	}
}

func TestElectLeadersSingletonClusters(t *testing.T) {
	g := graph.Cycle(5)
	leaders, _, err := ElectLeaders(g, defaultCfg(), Singletons(5), 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 5; v++ {
		if leaders.Leader[v] != v {
			t.Errorf("singleton %d elected %d", v, leaders.Leader[v])
		}
		if leaders.LeaderDegree[v] != 0 {
			t.Errorf("singleton %d cluster-degree %d, want 0", v, leaders.LeaderDegree[v])
		}
	}
}
