package primitives

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// Orientation is the output of LowOutDegreeOrientation: for each edge, the
// vertex that owns (out-orients) it.
type Orientation struct {
	// Owner[idx] is the vertex that out-orients edge idx.
	Owner []int
	// OutDegree[v] is the number of edges v owns.
	OutDegree []int
	// Phases is the number of peeling phases used.
	Phases int
}

// MaxOutDegree returns the maximum out-degree of the orientation.
func (o Orientation) MaxOutDegree() int {
	max := 0
	for _, d := range o.OutDegree {
		if d > max {
			max = d
		}
	}
	return max
}

const (
	orientMsgPeel = iota + 1
)

type orientHandler struct {
	clusterBase
	density      int // edge-density upper bound d
	active       bool
	activePorts  map[int]bool // same-cluster ports still active
	ownedPorts   []int
	phaseLen     int // rounds per peeling phase (2: announce, settle)
	budgetPhases int
	phase        int
}

// LowOutDegreeOrientation computes the Barenboim–Elkin orientation inside
// every cluster: given an upper bound d on the edge density of each cluster
// subgraph, it orients intra-cluster edges so that every vertex has
// out-degree at most 4d, in O(log n) peeling phases. In each phase, every
// active vertex with at most 4d active same-cluster neighbors takes
// ownership of all its active incident edges and retires; since the average
// active degree is at most 2d, at least half the active vertices retire per
// phase.
//
// The paper (§2.2) uses this orientation so that each vertex only sends O(d)
// edge descriptions during topology gathering.
func LowOutDegreeOrientation(g *graph.Graph, cfg congest.Config, cluster ClusterAssignment, density int, budgetPhases int) (Orientation, congest.Metrics, error) {
	if err := cluster.Validate(g); err != nil {
		return Orientation{}, congest.Metrics{}, err
	}
	if density < 1 {
		return Orientation{}, congest.Metrics{}, fmt.Errorf("primitives: density bound must be >= 1, got %d", density)
	}
	cfg.Obs.BeginPhase("orientation")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return &orientHandler{
			clusterBase:  clusterBase{clusterID: cluster[v.ID()]},
			density:      density,
			active:       true,
			budgetPhases: budgetPhases,
		}
	})
	if err != nil {
		return Orientation{}, res.Metrics, err
	}
	orient := Orientation{
		Owner:     make([]int, g.M()),
		OutDegree: make([]int, g.N()),
	}
	for i := range orient.Owner {
		orient.Owner[i] = -1
	}
	maxPhases := 0
	for v := 0; v < g.N(); v++ {
		out := res.Outputs[v].(orientOutput)
		if out.phases > maxPhases {
			maxPhases = out.phases
		}
		for _, nbr := range out.ownedNeighbors {
			idx, ok := g.EdgeIndex(v, nbr)
			if !ok {
				return Orientation{}, res.Metrics, fmt.Errorf("primitives: vertex %d claims non-edge {%d,%d}", v, v, nbr)
			}
			// Both endpoints of an edge may peel in the same phase and claim
			// it; the smaller ID wins deterministically.
			if orient.Owner[idx] == -1 || v < orient.Owner[idx] {
				orient.Owner[idx] = v
			}
		}
	}
	for _, owner := range orient.Owner {
		if owner >= 0 {
			orient.OutDegree[owner]++
		}
	}
	orient.Phases = maxPhases
	return orient, res.Metrics, nil
}

type orientOutput struct {
	ownedNeighbors []int
	phases         int
}

func (h *orientHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	pr, ok := h.absorb(v, round, recv)
	if !ok {
		h.activePorts = make(map[int]bool)
		return
	}
	if pr == 1 {
		for _, p := range h.samePorts {
			h.activePorts[p] = true
		}
	}
	// Phase structure (2 rounds per phase):
	//   odd pr:  decide whether to peel; if so, claim active edges and
	//            announce retirement to active neighbors.
	//   even pr: process retirements received.
	if pr%2 == 1 {
		h.phase++
		if h.active && len(h.activePorts) <= 4*h.density {
			peel := v.MsgBuf(1)
			peel[0] = orientMsgPeel
			for p := range h.activePorts {
				h.ownedPorts = append(h.ownedPorts, p)
				v.Send(p, peel)
			}
			h.active = false
		}
	} else {
		for _, in := range recv {
			if len(in.Msg) == 1 && in.Msg[0] == orientMsgPeel {
				delete(h.activePorts, in.Port)
			}
		}
		done := h.phase >= h.budgetPhases || (!h.active && len(h.activePorts) == 0)
		if done {
			out := orientOutput{phases: h.phase}
			for _, p := range h.ownedPorts {
				out.ownedNeighbors = append(out.ownedNeighbors, v.NeighborID(p))
			}
			v.SetOutput(out)
			v.Halt()
		}
	}
}
