// Package primitives implements the standard CONGEST building blocks the
// framework composes: cluster-restricted BFS forests, leader election by
// maximum degree (§2.3 of the paper), broadcast and convergecast over BFS
// trees, the Barenboim–Elkin low-out-degree orientation used by the
// information-gathering step (§2.2), and the cluster-diameter self-check the
// paper uses to detect failed decompositions (§2.3).
//
// Every primitive is a genuine message-passing algorithm executed by the
// congest.Simulator. Primitives are cluster-aware: vertices carry a cluster
// ID and only communicate with same-cluster neighbors, so one run executes
// the primitive "in parallel for all clusters", exactly as the paper's
// framework does. A vertex learns its neighbors' cluster IDs in one initial
// exchange round, which is included in the reported metrics.
package primitives

import (
	"fmt"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// ClusterAssignment maps each vertex to its cluster ID. IDs are arbitrary
// non-negative integers; vertices with distinct IDs never exchange payload
// messages in cluster-aware primitives.
type ClusterAssignment []int

// Singletons returns the assignment where every vertex is its own cluster.
func Singletons(n int) ClusterAssignment {
	c := make(ClusterAssignment, n)
	for i := range c {
		c[i] = i
	}
	return c
}

// Uniform returns the assignment placing all n vertices in cluster 0.
func Uniform(n int) ClusterAssignment {
	return make(ClusterAssignment, n)
}

// Clusters groups vertex IDs by cluster.
func (c ClusterAssignment) Clusters() map[int][]int {
	m := make(map[int][]int)
	for v, id := range c {
		m[id] = append(m[id], v)
	}
	return m
}

// Validate checks the assignment covers exactly the vertices of g.
func (c ClusterAssignment) Validate(g *graph.Graph) error {
	if len(c) != g.N() {
		return fmt.Errorf("primitives: assignment covers %d vertices, graph has %d", len(c), g.N())
	}
	for v, id := range c {
		if id < 0 {
			return fmt.Errorf("primitives: vertex %d has negative cluster ID %d", v, id)
		}
	}
	return nil
}

// clusterBase handles the initial cluster-ID exchange shared by all
// cluster-aware primitives. Phase logic starts at phase round 1, which is
// simulator round 2.
type clusterBase struct {
	clusterID int
	samePorts []int // ports leading to same-cluster neighbors
	ready     bool
}

func (b *clusterBase) Init(v *congest.Vertex) {
	v.BroadcastWords(int64(b.clusterID))
}

// absorb processes the round-1 ID exchange; returns true once ready and the
// adjusted phase round (round-1).
func (b *clusterBase) absorb(v *congest.Vertex, round int, recv []congest.Incoming) (int, bool) {
	if round == 1 {
		for _, in := range recv {
			if in.Msg[0] == int64(b.clusterID) {
				b.samePorts = append(b.samePorts, in.Port)
			}
		}
		b.ready = true
		return 0, false
	}
	return round - 1, true
}

// sendSame sends one message carrying words to every same-cluster neighbor.
// All receivers share one arena-backed buffer (received messages are
// read-only and expire when the receiver's Round returns), so a flood step
// costs no allocations regardless of degree.
func (b *clusterBase) sendSame(v *congest.Vertex, words ...int64) {
	if len(b.samePorts) == 0 {
		return
	}
	buf := v.MsgBuf(len(words))
	copy(buf, words)
	for _, p := range b.samePorts {
		v.Send(p, buf)
	}
}

// BFSResult is the output of BFSForest.
type BFSResult struct {
	// Parent[v] is v's BFS parent (itself for roots, -1 if unreached).
	Parent []int
	// Dist[v] is the hop distance from the cluster root (-1 if unreached).
	Dist []int
	// Root[v] is the root vertex of v's tree (-1 if unreached).
	Root []int
}

type bfsHandler struct {
	clusterBase
	isRoot bool
	dist   int
	parent int
	root   int
	budget int
	sent   bool
}

func (h *bfsHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	pr, ok := h.absorb(v, round, recv)
	if !ok {
		if h.isRoot {
			h.dist = 0
			h.parent = v.ID()
			h.root = v.ID()
			// The root must be awake next round to launch the wave.
			return
		}
		// Nothing to do until the wave arrives (a message wakes us early)
		// or the mandatory output round pr==budget (simulator round
		// budget+1, driven by the timer).
		v.SleepUntil(h.budget + 1)
		return
	}
	if pr == 1 && h.isRoot && !h.sent {
		h.sent = true
		h.sendSame(v, int64(v.ID()), 0)
	} else if h.dist == -1 {
		for _, in := range recv {
			if len(in.Msg) < 2 {
				continue
			}
			h.dist = int(in.Msg[1]) + 1
			h.parent = in.From
			h.root = int(in.Msg[0])
			h.sent = true
			h.sendSame(v, in.Msg[0], int64(h.dist))
			break
		}
	}
	if pr >= h.budget {
		v.SetOutput([3]int{h.parent, h.dist, h.root})
		v.Halt()
		return
	}
	// Idle until a (possibly duplicate) wave message or the output round;
	// skipped rounds would have observed an empty recv and done nothing.
	v.SleepUntil(h.budget + 1)
}

// BFSForest builds a BFS tree inside every cluster from the given roots
// (map cluster ID -> root vertex). budget is the number of propagation
// rounds and must be at least the maximum cluster diameter for full
// coverage. Vertices in clusters without a root stay unreached.
func BFSForest(g *graph.Graph, cfg congest.Config, cluster ClusterAssignment, roots map[int]int, budget int) (BFSResult, congest.Metrics, error) {
	if err := cluster.Validate(g); err != nil {
		return BFSResult{}, congest.Metrics{}, err
	}
	cfg.Obs.BeginPhase("bfs-forest")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		h := &bfsHandler{
			clusterBase: clusterBase{clusterID: cluster[v.ID()]},
			dist:        -1,
			parent:      -1,
			root:        -1,
			budget:      budget,
		}
		h.isRoot = roots[cluster[v.ID()]] == v.ID()
		return h
	})
	if err != nil {
		return BFSResult{}, res.Metrics, err
	}
	out := BFSResult{
		Parent: make([]int, g.N()),
		Dist:   make([]int, g.N()),
		Root:   make([]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		tuple := res.Outputs[v].([3]int)
		out.Parent[v], out.Dist[v], out.Root[v] = tuple[0], tuple[1], tuple[2]
	}
	return out, res.Metrics, nil
}

type leaderHandler struct {
	clusterBase
	bestDeg int
	bestID  int
	budget  int
	changed bool
}

func (h *leaderHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	pr, ok := h.absorb(v, round, recv)
	if !ok {
		// Own degree within the cluster counts same-cluster neighbors; that
		// is known right after the exchange.
		return
	}
	if pr == 1 {
		h.bestDeg = len(h.samePorts)
		h.bestID = v.ID()
		h.changed = true
	}
	for _, in := range recv {
		if len(in.Msg) < 2 {
			continue
		}
		deg, id := int(in.Msg[0]), int(in.Msg[1])
		if deg > h.bestDeg || (deg == h.bestDeg && id > h.bestID) {
			h.bestDeg, h.bestID = deg, id
			h.changed = true
		}
	}
	if h.changed {
		h.changed = false
		h.sendSame(v, int64(h.bestDeg), int64(h.bestID))
	}
	if pr >= h.budget {
		v.SetOutput([2]int{h.bestID, h.bestDeg})
		v.Halt()
		return
	}
	if pr >= 1 {
		// Between improvements this vertex is silent: without an incoming
		// candidate, changed stays false and nothing is sent. Sleep until a
		// message (a new candidate) or the output round. The absorb round
		// (pr==0) must not sleep — every vertex announces itself at pr==1.
		v.SleepUntil(h.budget + 1)
	}
}

// LeaderResult is the output of ElectLeaders.
type LeaderResult struct {
	// Leader[v] is the elected leader of v's cluster: the vertex maximizing
	// (cluster-degree, ID), the paper's §2.3 selection rule for v*.
	Leader []int
	// LeaderDegree[v] is the cluster-degree of that leader.
	LeaderDegree []int
}

// ElectLeaders elects, in every cluster, the vertex with maximum
// same-cluster degree (ties broken by larger ID), by flooding (deg, ID)
// pairs for budget rounds. budget must be at least the maximum cluster
// diameter.
func ElectLeaders(g *graph.Graph, cfg congest.Config, cluster ClusterAssignment, budget int) (LeaderResult, congest.Metrics, error) {
	if err := cluster.Validate(g); err != nil {
		return LeaderResult{}, congest.Metrics{}, err
	}
	cfg.Obs.BeginPhase("elect-leaders")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return &leaderHandler{
			clusterBase: clusterBase{clusterID: cluster[v.ID()]},
			budget:      budget,
		}
	})
	if err != nil {
		return LeaderResult{}, res.Metrics, err
	}
	out := LeaderResult{
		Leader:       make([]int, g.N()),
		LeaderDegree: make([]int, g.N()),
	}
	for v := 0; v < g.N(); v++ {
		pair := res.Outputs[v].([2]int)
		out.Leader[v], out.LeaderDegree[v] = pair[0], pair[1]
	}
	return out, res.Metrics, nil
}

type floodValueHandler struct {
	clusterBase
	value  int64
	has    bool
	budget int
	queued bool
}

func (h *floodValueHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	pr, ok := h.absorb(v, round, recv)
	if !ok {
		if !h.has {
			// Non-sources idle until the flooded value arrives (message
			// wake) or the output round; sources stay awake to send at
			// pr==1.
			v.SleepUntil(h.budget + 1)
		}
		return
	}
	if pr == 1 && h.has {
		h.queued = true
		h.sendSame(v, h.value)
	}
	if !h.has {
		for _, in := range recv {
			if len(in.Msg) == 1 {
				h.has = true
				h.value = in.Msg[0]
				h.sendSame(v, h.value)
				break
			}
		}
	}
	if pr >= h.budget {
		if h.has {
			v.SetOutput(h.value)
		}
		v.Halt()
		return
	}
	v.SleepUntil(h.budget + 1)
}

// FloodValue floods a single word from each cluster's source vertex (map
// cluster ID -> source) to all cluster members. Values per cluster come from
// sources' local knowledge, passed here by the harness. Returns per-vertex
// received values (nil where nothing arrived).
func FloodValue(g *graph.Graph, cfg congest.Config, cluster ClusterAssignment, source map[int]int, value map[int]int64, budget int) ([]*int64, congest.Metrics, error) {
	if err := cluster.Validate(g); err != nil {
		return nil, congest.Metrics{}, err
	}
	cfg.Obs.BeginPhase("flood-value")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		h := &floodValueHandler{
			clusterBase: clusterBase{clusterID: cluster[v.ID()]},
			budget:      budget,
		}
		if src, okk := source[cluster[v.ID()]]; okk && src == v.ID() {
			h.has = true
			h.value = value[cluster[v.ID()]]
		}
		return h
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	out := make([]*int64, g.N())
	for v := 0; v < g.N(); v++ {
		if res.Outputs[v] != nil {
			val := res.Outputs[v].(int64)
			out[v] = &val
		}
	}
	return out, res.Metrics, nil
}

// AggregateOp selects the convergecast combining operation.
type AggregateOp int

const (
	// OpSum adds contributions.
	OpSum AggregateOp = iota + 1
	// OpMax keeps the maximum contribution.
	OpMax
	// OpMin keeps the minimum contribution.
	OpMin
)

func (op AggregateOp) combine(a, b int64) int64 {
	switch op {
	case OpSum:
		return a + b
	case OpMax:
		if b > a {
			return b
		}
		return a
	case OpMin:
		if b < a {
			return b
		}
		return a
	default:
		panic(fmt.Sprintf("primitives: unknown aggregate op %d", op))
	}
}

type convergecastHandler struct {
	parent    int // parent vertex ID, self for root, -1 unreached
	childWait int
	acc       int64
	isRoot    bool
	op        AggregateOp
	budget    int
	sentUp    bool
}

func (h *convergecastHandler) Init(v *congest.Vertex) {}

func (h *convergecastHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	for _, in := range recv {
		if len(in.Msg) == 1 {
			h.acc = h.op.combine(h.acc, in.Msg[0])
			h.childWait--
		}
	}
	if !h.sentUp && h.childWait == 0 && h.parent >= 0 && !h.isRoot {
		p := v.PortOf(h.parent)
		if p >= 0 {
			v.SendWords(p, h.acc)
		}
		h.sentUp = true
	}
	if round >= h.budget {
		if h.isRoot {
			v.SetOutput(h.acc)
		}
		v.Halt()
		return
	}
	// Everything this handler does is triggered by arriving child
	// contributions (leaves send theirs in round 1, before any sleep);
	// sleep until the next one or the final aggregation round.
	v.SleepUntil(h.budget)
}

// Convergecast aggregates one value per vertex up a previously built BFS
// forest and returns the per-cluster aggregate at each root. childCount and
// parents come from BFSForest output; budget must be at least the forest
// depth plus one.
func Convergecast(g *graph.Graph, cfg congest.Config, bfs BFSResult, values []int64, op AggregateOp, budget int) (map[int]int64, congest.Metrics, error) {
	n := g.N()
	childCount := make([]int, n)
	for v := 0; v < n; v++ {
		p := bfs.Parent[v]
		if p >= 0 && p != v {
			childCount[p]++
		}
	}
	cfg.Obs.BeginPhase("convergecast")
	defer cfg.Obs.EndPhase()
	sim := congest.NewSimulator(g, cfg)
	res, err := sim.Run(func(v *congest.Vertex) congest.Handler {
		return &convergecastHandler{
			parent:    bfs.Parent[v.ID()],
			childWait: childCount[v.ID()],
			acc:       values[v.ID()],
			isRoot:    bfs.Parent[v.ID()] == v.ID(),
			op:        op,
			budget:    budget,
		}
	})
	if err != nil {
		return nil, res.Metrics, err
	}
	out := make(map[int]int64)
	for v := 0; v < n; v++ {
		if res.Outputs[v] != nil {
			out[v] = res.Outputs[v].(int64)
		}
	}
	return out, res.Metrics, nil
}
