package primitives

import (
	"math/rand"
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

func defaultCfg() congest.Config { return congest.Config{Seed: 7} }

func TestClusterAssignmentHelpers(t *testing.T) {
	s := Singletons(4)
	if len(s.Clusters()) != 4 {
		t.Error("singletons should have 4 clusters")
	}
	u := Uniform(4)
	if len(u.Clusters()) != 1 {
		t.Error("uniform should have 1 cluster")
	}
	if err := u.Validate(graph.Path(4)); err != nil {
		t.Errorf("valid assignment rejected: %v", err)
	}
	if err := u.Validate(graph.Path(5)); err == nil {
		t.Error("wrong-size assignment accepted")
	}
	bad := ClusterAssignment{0, -1, 0, 0}
	if err := bad.Validate(graph.Path(4)); err == nil {
		t.Error("negative cluster ID accepted")
	}
}

func TestBFSForestWholeGraph(t *testing.T) {
	g := graph.Grid(4, 4)
	cluster := Uniform(g.N())
	bfs, metrics, err := BFSForest(g, defaultCfg(), cluster, map[int]int{0: 0}, g.N())
	if err != nil {
		t.Fatal(err)
	}
	wantDist, _ := g.BFS(0)
	for v := 0; v < g.N(); v++ {
		if bfs.Dist[v] != wantDist[v] {
			t.Errorf("dist[%d] = %d, want %d", v, bfs.Dist[v], wantDist[v])
		}
		if bfs.Root[v] != 0 {
			t.Errorf("root[%d] = %d, want 0", v, bfs.Root[v])
		}
		if v != 0 && bfs.Parent[v] >= 0 {
			if !g.HasEdge(v, bfs.Parent[v]) {
				t.Errorf("parent edge {%d,%d} missing", v, bfs.Parent[v])
			}
			if wantDist[bfs.Parent[v]] != wantDist[v]-1 {
				t.Errorf("parent of %d not one level up", v)
			}
		}
	}
	if metrics.Rounds == 0 {
		t.Error("metrics should record rounds")
	}
}

func TestBFSForestRespectsClusters(t *testing.T) {
	// Path 0-1-2-3-4-5 split into clusters {0,1,2} and {3,4,5}.
	g := graph.Path(6)
	cluster := ClusterAssignment{0, 0, 0, 1, 1, 1}
	bfs, _, err := BFSForest(g, defaultCfg(), cluster, map[int]int{0: 0, 1: 5}, 10)
	if err != nil {
		t.Fatal(err)
	}
	wants := []struct{ v, dist, root int }{
		{0, 0, 0}, {1, 1, 0}, {2, 2, 0},
		{3, 2, 5}, {4, 1, 5}, {5, 0, 5},
	}
	for _, w := range wants {
		if bfs.Dist[w.v] != w.dist || bfs.Root[w.v] != w.root {
			t.Errorf("vertex %d: dist=%d root=%d, want dist=%d root=%d",
				w.v, bfs.Dist[w.v], bfs.Root[w.v], w.dist, w.root)
		}
	}
}

func TestBFSForestUnrootedClusterUnreached(t *testing.T) {
	g := graph.Path(4)
	cluster := ClusterAssignment{0, 0, 1, 1}
	bfs, _, err := BFSForest(g, defaultCfg(), cluster, map[int]int{0: 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if bfs.Dist[2] != -1 || bfs.Dist[3] != -1 {
		t.Error("cluster without root should stay unreached")
	}
}

func TestElectLeadersPicksMaxDegree(t *testing.T) {
	g := graph.Star(5) // center 0 has degree 5
	leaders, _, err := ElectLeaders(g, defaultCfg(), Uniform(g.N()), g.N())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if leaders.Leader[v] != 0 {
			t.Errorf("vertex %d elected %d, want 0", v, leaders.Leader[v])
		}
		if leaders.LeaderDegree[v] != 5 {
			t.Errorf("leader degree = %d, want 5", leaders.LeaderDegree[v])
		}
	}
}

func TestElectLeadersTieBreaksByID(t *testing.T) {
	g := graph.Cycle(6) // all degree 2: leader should be max ID 5
	leaders, _, err := ElectLeaders(g, defaultCfg(), Uniform(g.N()), g.N())
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if leaders.Leader[v] != 5 {
			t.Errorf("vertex %d elected %d, want 5", v, leaders.Leader[v])
		}
	}
}

func TestElectLeadersPerCluster(t *testing.T) {
	// Two disjoint stars within one graph, separate clusters.
	g := graph.Disjoint(graph.Star(3), graph.Star(4))
	cluster := ClusterAssignment{0, 0, 0, 0, 1, 1, 1, 1, 1}
	leaders, _, err := ElectLeaders(g, defaultCfg(), cluster, g.N())
	if err != nil {
		t.Fatal(err)
	}
	if leaders.Leader[1] != 0 {
		t.Errorf("first star leader = %d, want 0", leaders.Leader[1])
	}
	if leaders.Leader[5] != 4 {
		t.Errorf("second star leader = %d, want 4", leaders.Leader[5])
	}
	// Cluster degree counts only same-cluster neighbors.
	if leaders.LeaderDegree[1] != 3 || leaders.LeaderDegree[5] != 4 {
		t.Errorf("leader degrees = %d,%d; want 3,4", leaders.LeaderDegree[1], leaders.LeaderDegree[5])
	}
}

func TestFloodValue(t *testing.T) {
	g := graph.Grid(3, 3)
	vals, _, err := FloodValue(g, defaultCfg(), Uniform(g.N()),
		map[int]int{0: 4}, map[int]int64{0: 99}, 6)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < g.N(); v++ {
		if vals[v] == nil || *vals[v] != 99 {
			t.Errorf("vertex %d did not receive flooded value", v)
		}
	}
}

func TestFloodValueStaysInCluster(t *testing.T) {
	g := graph.Path(4)
	cluster := ClusterAssignment{0, 0, 1, 1}
	vals, _, err := FloodValue(g, defaultCfg(), cluster,
		map[int]int{0: 0}, map[int]int64{0: 7}, 6)
	if err != nil {
		t.Fatal(err)
	}
	if vals[0] == nil || vals[1] == nil {
		t.Error("cluster 0 members should receive the value")
	}
	if vals[2] != nil || vals[3] != nil {
		t.Error("value leaked across cluster boundary")
	}
}

func TestConvergecastSum(t *testing.T) {
	g := graph.BalancedBinaryTree(7)
	cluster := Uniform(g.N())
	bfs, _, err := BFSForest(g, defaultCfg(), cluster, map[int]int{0: 0}, 8)
	if err != nil {
		t.Fatal(err)
	}
	values := make([]int64, g.N())
	var want int64
	for v := range values {
		values[v] = int64(v + 1)
		want += int64(v + 1)
	}
	sums, _, err := Convergecast(g, defaultCfg(), bfs, values, OpSum, 16)
	if err != nil {
		t.Fatal(err)
	}
	if got := sums[0]; got != want {
		t.Errorf("convergecast sum = %d, want %d", got, want)
	}
}

func TestConvergecastMaxMinPerCluster(t *testing.T) {
	g := graph.Path(6)
	cluster := ClusterAssignment{0, 0, 0, 1, 1, 1}
	bfs, _, err := BFSForest(g, defaultCfg(), cluster, map[int]int{0: 0, 1: 3}, 8)
	if err != nil {
		t.Fatal(err)
	}
	values := []int64{5, 2, 9, 1, 8, 3}
	maxes, _, err := Convergecast(g, defaultCfg(), bfs, values, OpMax, 16)
	if err != nil {
		t.Fatal(err)
	}
	if maxes[0] != 9 || maxes[3] != 8 {
		t.Errorf("maxes = %v, want root0:9 root3:8", maxes)
	}
	mins, _, err := Convergecast(g, defaultCfg(), bfs, values, OpMin, 16)
	if err != nil {
		t.Fatal(err)
	}
	if mins[0] != 2 || mins[3] != 1 {
		t.Errorf("mins = %v, want root0:2 root3:1", mins)
	}
}

func TestLowOutDegreeOrientationPlanar(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	g := graph.RandomMaximalPlanar(60, rng)
	// Planar density < 3.
	orient, _, err := LowOutDegreeOrientation(g, defaultCfg(), Uniform(g.N()), 3, 30)
	if err != nil {
		t.Fatal(err)
	}
	if got := orient.MaxOutDegree(); got > 12 {
		t.Errorf("max out-degree %d exceeds 4d = 12", got)
	}
	for idx, owner := range orient.Owner {
		if owner == -1 {
			t.Errorf("edge %d unowned", idx)
		}
	}
	// Sum of out-degrees equals number of edges.
	total := 0
	for _, d := range orient.OutDegree {
		total += d
	}
	if total != g.M() {
		t.Errorf("out-degrees sum to %d, want %d", total, g.M())
	}
}

func TestLowOutDegreeOrientationRespectsClusters(t *testing.T) {
	g := graph.Path(4)
	cluster := ClusterAssignment{0, 0, 1, 1}
	orient, _, err := LowOutDegreeOrientation(g, defaultCfg(), cluster, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	midIdx, _ := g.EdgeIndex(1, 2)
	if orient.Owner[midIdx] != -1 {
		t.Error("inter-cluster edge must stay unowned")
	}
	e01, _ := g.EdgeIndex(0, 1)
	e23, _ := g.EdgeIndex(2, 3)
	if orient.Owner[e01] == -1 || orient.Owner[e23] == -1 {
		t.Error("intra-cluster edges must be owned")
	}
}

func TestLowOutDegreeOrientationBadDensity(t *testing.T) {
	g := graph.Path(3)
	if _, _, err := LowOutDegreeOrientation(g, defaultCfg(), Uniform(3), 0, 5); err == nil {
		t.Error("density 0 should error")
	}
}

func TestDiameterCheckSmallDiameterUnmarked(t *testing.T) {
	g := graph.Complete(6) // diameter 1
	marked, _, err := DiameterCheck(g, defaultCfg(), Uniform(g.N()), 2)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range marked {
		if m {
			t.Errorf("vertex %d marked despite diameter <= b", v)
		}
	}
}

func TestDiameterCheckLargeDiameterAllMarked(t *testing.T) {
	g := graph.Path(20) // diameter 19 >= 2b+1 for b = 2
	marked, _, err := DiameterCheck(g, defaultCfg(), Uniform(g.N()), 2)
	if err != nil {
		t.Fatal(err)
	}
	for v, m := range marked {
		if !m {
			t.Errorf("vertex %d unmarked despite diameter >= 2b+1", v)
		}
	}
}

func TestDiameterCheckPerCluster(t *testing.T) {
	// One tight cluster (triangle) and one long path cluster.
	g := graph.Disjoint(graph.Complete(3), graph.Path(15))
	cluster := make(ClusterAssignment, g.N())
	for v := 3; v < g.N(); v++ {
		cluster[v] = 1
	}
	marked, _, err := DiameterCheck(g, defaultCfg(), cluster, 1)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 3; v++ {
		if marked[v] {
			t.Errorf("triangle vertex %d should be unmarked", v)
		}
	}
	for v := 3; v < g.N(); v++ {
		if !marked[v] {
			t.Errorf("path vertex %d should be marked", v)
		}
	}
}

func TestDiameterCheckBoundaryRespectsClusters(t *testing.T) {
	// Two adjacent clusters: marks must not leak across the cut.
	g := graph.Path(24)
	cluster := make(ClusterAssignment, g.N())
	for v := 4; v < g.N(); v++ {
		cluster[v] = 1 // long sub-path: will be marked for small b
	}
	marked, _, err := DiameterCheck(g, defaultCfg(), cluster, 3)
	if err != nil {
		t.Fatal(err)
	}
	for v := 0; v < 4; v++ {
		if marked[v] {
			t.Errorf("short cluster vertex %d wrongly marked", v)
		}
	}
	for v := 4; v < g.N(); v++ {
		if !marked[v] {
			t.Errorf("long cluster vertex %d should be marked", v)
		}
	}
}
