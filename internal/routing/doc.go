// Package routing implements the information-gathering machinery of Section
// 2.2 of the paper: routing O(log n)-bit tokens from every cluster vertex to
// the cluster leader v*, and routing per-token responses back.
//
// The forward direction follows Lemma 2.4 literally: each token performs a
// uniform lazy random walk restricted to its cluster until it hits the
// leader. Congestion is handled exactly as the model requires — at most one
// token crosses an edge per direction per round; blocked tokens wait, which
// is the O(log n) slowdown the lemma's Chernoff argument budgets for.
//
// The reverse direction implements the paper's "reversing the routing
// procedure" (§2.2 and §2.3): every vertex logs each (token, port, round)
// arrival during the forward phase, and responses retrace the walks
// backwards in reversed time order. Because at most one token crossed each
// (edge, direction, round) forward, the reverse schedule is collision-free.
//
// A deterministic tree strategy (tokens climb a BFS tree toward the leader,
// FIFO per edge) stands in for the paper's Lemma 2.5 deterministic routing;
// it has the same interface and failure semantics.
//
// Undelivered tokens (forward budget exhausted) simply produce no response;
// origins detect the failure locally, which is exactly the failure-detection
// behavior §2.3 builds on.
//
// An exchange has a fixed 2T+2-round schedule (T = Plan.ForwardRounds), and
// the package drives the simulator through the Execution Step API so the
// schedule maps onto observer phases when a congest.Observer is attached:
// round 1 is "setup" (the cluster-ID broadcast that discovers same-cluster
// ports), rounds 2..T+1 are "forward" (walk steps toward the leader), and
// the remaining rounds are "reverse" (leader responses retracing the walks).
package routing
