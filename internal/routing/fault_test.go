package routing

import (
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
)

// §2.3 failure semantics under genuine message loss: lost tokens or lost
// responses surface as missing responses at the origin (detectable), never
// as corrupted payloads or crashes.
func TestExchangeUnderFaultsFailsDetectably(t *testing.T) {
	g := graph.Grid(5, 5)
	plan := wholeGraphPlan(g, 0, 4000, RandomWalk)
	res, _, err := Exchange(g, congest.Config{Seed: 3, FaultRate: 0.02}, plan, oneTokenEach(g),
		func(leader int, tok Token) (int64, int64) { return tok.A + 1, tok.B })
	if err != nil {
		t.Fatal(err)
	}
	// Whatever was delivered must be intact.
	for v := 0; v < g.N(); v++ {
		for _, resp := range res.Responses[v] {
			if resp.A != int64(v*10+1) {
				t.Errorf("vertex %d: corrupted response %+v", v, resp)
			}
		}
	}
	// Accounting must be consistent: delivered (to leaders) is counted at
	// absorption; responses can be fewer (reverse path can drop too), so
	// undelivered = total - responses must be >= 0 and the totals add up.
	got := 0
	for v := range res.Responses {
		got += len(res.Responses[v])
	}
	if got+res.Undelivered != g.N() {
		t.Errorf("responses %d + undelivered %d != tokens %d", got, res.Undelivered, g.N())
	}
}

func TestExchangeHeavyFaultsLoseTokens(t *testing.T) {
	g := graph.Grid(5, 5)
	plan := wholeGraphPlan(g, 0, 500, RandomWalk)
	res, _, err := Exchange(g, congest.Config{Seed: 5, FaultRate: 0.3}, plan, oneTokenEach(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered == 0 {
		t.Error("30% message loss should lose some tokens")
	}
}
