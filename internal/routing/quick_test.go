package routing

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// Property: on random connected graphs with random single-cluster plans and
// ample budgets, every token round-trips with intact payloads, leader load
// equals vertex count, and the accounting identities hold.
func TestQuickExchangeInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(15)
		g := graph.RandomPlanar(n, 0.7, rng)
		leaderV := rng.Intn(n)
		plan := Plan{
			Cluster:       primitives.Uniform(n),
			Leader:        fill(n, leaderV),
			ForwardRounds: 8*g.M()*maxOf(g.Diameter(), 1) + 64,
			Strategy:      RandomWalk,
		}
		tokens := make([][]Token, n)
		for v := range tokens {
			k := 1 + rng.Intn(3)
			for j := 0; j < k; j++ {
				tokens[v] = append(tokens[v], Token{A: int64(v), B: int64(j)})
			}
		}
		res, metrics, err := Exchange(g, congest.Config{Seed: seed}, plan, tokens,
			func(leader int, tok Token) (int64, int64) { return tok.A * 2, tok.B + 5 })
		if err != nil || res.Undelivered != 0 {
			return false
		}
		if metrics.MaxWordsPerMsg > 8 {
			return false
		}
		totalResp := 0
		for v := range res.Responses {
			for _, r := range res.Responses[v] {
				if r.A != int64(v*2) || r.B != int64(r.Seq+5) {
					return false
				}
			}
			totalResp += len(res.Responses[v])
		}
		totalTokens := 0
		for _, ts := range tokens {
			totalTokens += len(ts)
		}
		return totalResp == totalTokens && res.LeaderLoad[leaderV] == totalTokens
	}
	// Pin the input generator: the walk budget 8mD+64 is a high-probability
	// bound, not a certainty, so a time-seeded generator makes this test
	// flaky roughly once per few hundred runs. Fixed seeds keep the property
	// meaningful and the suite reproducible (DESIGN.md §3.5).
	if err := quick.Check(f, &quick.Config{MaxCount: 25, Rand: rand.New(rand.NewSource(12))}); err != nil {
		t.Error(err)
	}
}

// Property: tree routing and walk routing deliver identical token multisets
// to the leader.
func TestQuickTreeWalkAgree(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(12)
		g := graph.RandomPlanar(n, 0.7, rng)
		dist, parent := g.BFS(0)
		for v := range dist {
			if dist[v] < 0 {
				return true // disconnected: skip
			}
		}
		tokens := make([][]Token, n)
		for v := range tokens {
			tokens[v] = []Token{{A: int64(v * 3)}}
		}
		collect := func(strategy Strategy, par []int) map[int]bool {
			plan := Plan{
				Cluster:       primitives.Uniform(n),
				Leader:        fill(n, 0),
				Parent:        par,
				ForwardRounds: 8*g.M()*maxOf(g.Diameter(), 1) + 64,
				Strategy:      strategy,
			}
			inbox, res, _, err := GatherOnly(g, congest.Config{Seed: seed}, plan, tokens)
			if err != nil || res.Undelivered != 0 {
				return nil
			}
			seen := make(map[int]bool)
			for _, tok := range inbox[0] {
				seen[int(tok.A)] = true
			}
			return seen
		}
		walk := collect(RandomWalk, nil)
		tree := collect(TreeParent, parent)
		if walk == nil || tree == nil {
			return false
		}
		if len(walk) != len(tree) {
			return false
		}
		for k := range walk {
			if !tree[k] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20, Rand: rand.New(rand.NewSource(34))}); err != nil {
		t.Error(err)
	}
}

func fill(n, v int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func maxOf(a, b int) int {
	if a > b {
		return a
	}
	return b
}
