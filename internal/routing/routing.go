package routing

import (
	"fmt"
	"math"
	"sync"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// Token is one O(log n)-bit routable unit: an origin, a per-origin sequence
// number, and two payload words.
type Token struct {
	Origin int
	Seq    int
	A, B   int64
}

// Strategy selects the forwarding rule.
type Strategy int

const (
	// RandomWalk is Lemma 2.4's lazy-random-walk routing.
	RandomWalk Strategy = iota + 1
	// TreeParent deterministically climbs a BFS tree toward the leader
	// (Lemma 2.5 stand-in).
	TreeParent
)

// Plan describes a routing instance.
type Plan struct {
	// Cluster assigns vertices to clusters; tokens never leave their
	// cluster.
	Cluster primitives.ClusterAssignment
	// Leader maps each vertex to its cluster leader's vertex ID.
	Leader []int
	// Parent maps each vertex to its BFS parent toward the leader
	// (required for TreeParent; ignored for RandomWalk).
	Parent []int
	// ForwardRounds is the forward-phase budget T. The full exchange takes
	// 2T+2 rounds.
	ForwardRounds int
	// Strategy selects the forwarding rule.
	Strategy Strategy
}

// WalkBudget returns a forward-round budget for Lemma 2.4 routing on a
// cluster with conductance at least phi inside an n-vertex network:
// Θ(φ⁻² · log² n) walk steps (the lemma's O(φ⁻² log n) segments of length
// τ_mix = O(φ⁻² log n) are capped here by the empirical constant 6, with the
// congestion slack folded in).
func WalkBudget(phi float64, n int) int {
	if phi <= 0 {
		phi = 1e-3
	}
	ln := math.Log(float64(n) + 2)
	b := int(math.Ceil(6 * ln * ln / (phi * phi)))
	if b < 16 {
		b = 16
	}
	return b
}

// ExchangeResult reports a completed routing exchange.
type ExchangeResult struct {
	// Responses[v] lists the response tokens origin v received, in seq
	// order. A token with no response was undelivered.
	Responses [][]Token
	// Delivered counts tokens absorbed by leaders.
	Delivered int
	// Undelivered counts tokens that missed the forward budget.
	Undelivered int
	// LeaderLoad counts absorbed tokens per leader vertex.
	LeaderLoad map[int]int
}

const (
	kindForward = int64(1)
	kindReverse = int64(2)
)

type visit struct {
	port  int
	round int
}

// visitEntry is one hop in a vertex's visit log: a token's arrival (port,
// phase round) plus the index of the same token's previous visit here. The
// log is append-only and shared by all tokens passing through the vertex;
// per token only a head index is kept, so recording a hop costs one slice
// append and one map store of an int32 — no per-token slice ever grows.
type visitEntry struct {
	port, round int32
	prev        int32 // index of the token's previous visit, -1 if none
}

type pendingSend struct {
	round int
	port  int
	tok   Token
}

type routeHandler struct {
	plan         *Plan
	isLeader     bool
	samePorts    []int
	queue        []Token // tokens currently held (forward phase)
	portStamp    []int   // portStamp[p] == pr marks port p used this round
	visitLog     []visitEntry
	visitHead    map[[2]int]int32 // latest visitLog index per token key
	absorbed     []Token          // leader only
	absorbLog    map[[2]int]visit // leader only
	reverse      []pendingSend
	responses    []Token
	respond      func(leader int, t Token) (int64, int64)
	respondBatch func(leader int, inbox []Token) [][2]int64
	total        int // 2T+2
}

func key(t Token) [2]int { return [2]int{t.Origin, t.Seq} }

func (h *routeHandler) Init(v *congest.Vertex) {
	v.BroadcastWords(int64(h.plan.Cluster[v.ID()]))
}

func (h *routeHandler) Round(v *congest.Vertex, round int, recv []congest.Incoming) {
	T := h.plan.ForwardRounds
	if round == 1 {
		for _, in := range recv {
			if len(in.Msg) == 1 && in.Msg[0] == int64(h.plan.Cluster[v.ID()]) {
				h.samePorts = append(h.samePorts, in.Port)
			}
		}
		h.maybeSleep(v, 0, T)
		return
	}
	pr := round - 1 // phase round: 1..T forward, T+1 respond, up to 2T+2
	// Absorb incoming.
	for _, in := range recv {
		if len(in.Msg) != 5 {
			continue
		}
		tok := Token{Origin: int(in.Msg[1]), Seq: int(in.Msg[2]), A: in.Msg[3], B: in.Msg[4]}
		switch in.Msg[0] {
		case kindForward:
			if h.isLeader {
				h.absorbed = append(h.absorbed, tok)
				h.absorbLog[key(tok)] = visit{port: in.Port, round: pr}
			} else {
				k := key(tok)
				prev, seen := h.visitHead[k]
				if !seen {
					prev = -1
				}
				h.visitHead[k] = int32(len(h.visitLog))
				h.visitLog = append(h.visitLog, visitEntry{port: int32(in.Port), round: int32(pr), prev: prev})
				h.queue = append(h.queue, tok)
			}
		case kindReverse:
			h.handleReverseArrival(v, tok)
		}
	}
	switch {
	case pr < T:
		h.forwardStep(v, pr)
	case pr == T:
		// Last forward round: no sends (they would arrive after the phase).
	case pr == T+1:
		h.leaderRespond(v)
	}
	// Emit due reverse sends.
	h.flushReverse(v, pr)
	if pr >= h.total {
		v.SetOutput(h.responses)
		v.Halt()
		return
	}
	h.maybeSleep(v, pr, T)
}

// maybeSleep puts the vertex to sleep until its next scheduled duty in the
// 2T+2 exchange, called at the end of every Round with the current phase
// round pr (sim round pr+1). The schedule is fully known locally: a vertex
// holding tokens keeps forwarding while forward rounds remain (and must stay
// awake — the lazy walk draws randomness every such round); a leader has the
// respond round T+1; queued reverse sends are due at exact phase rounds; and
// everyone has the final output round pr==total. A token arriving on any
// port wakes the vertex early, exactly when the dense scheduler would have
// had it act on the arrival — all skipped rounds are provable no-ops (empty
// queue means forwardStep returns before any PRNG draw, so streams are
// bit-identical).
func (h *routeHandler) maybeSleep(v *congest.Vertex, pr, T int) {
	if len(h.queue) > 0 && pr+1 < T && len(h.samePorts) > 0 {
		return // forwarding continues next round
	}
	next := h.total // the mandatory output round
	if h.isLeader && pr < T+1 {
		next = T + 1 // the respond round
	}
	for _, ps := range h.reverse {
		if ps.round > pr && ps.round < next {
			next = ps.round
		}
	}
	v.SleepUntil(next + 1)
}

func (h *routeHandler) forwardStep(v *congest.Vertex, pr int) {
	if len(h.queue) == 0 || len(h.samePorts) == 0 {
		return
	}
	// Compact waiting tokens in place: the write index never overtakes the
	// read index, so the queue backing array is reused round after round.
	stay := h.queue[:0]
	for _, tok := range h.queue {
		var port int
		switch h.plan.Strategy {
		case RandomWalk:
			// Lazy step: stay with probability 1/2.
			if v.Rand().Intn(2) == 0 {
				stay = append(stay, tok)
				continue
			}
			port = h.samePorts[v.Rand().Intn(len(h.samePorts))]
		case TreeParent:
			port = v.PortOf(h.plan.Parent[v.ID()])
			if port < 0 {
				stay = append(stay, tok)
				continue
			}
		default:
			panic(fmt.Sprintf("routing: unknown strategy %d", h.plan.Strategy))
		}
		if h.portStamp[port] == pr {
			// Edge busy this round: wait (counts as a lazy step).
			stay = append(stay, tok)
			continue
		}
		h.portStamp[port] = pr
		v.SendWords(port, kindForward, int64(tok.Origin), int64(tok.Seq), tok.A, tok.B)
	}
	h.queue = stay
}

func (h *routeHandler) leaderRespond(v *congest.Vertex) {
	if !h.isLeader {
		return
	}
	C := h.total
	var batch [][2]int64
	if h.respondBatch != nil {
		batch = h.respondBatch(v.ID(), h.absorbed)
		if len(batch) != len(h.absorbed) {
			panic(fmt.Sprintf("routing: batch responder returned %d responses for %d tokens",
				len(batch), len(h.absorbed)))
		}
	}
	for i, tok := range h.absorbed {
		ra, rb := tok.A, tok.B
		switch {
		case batch != nil:
			ra, rb = batch[i][0], batch[i][1]
		case h.respond != nil:
			ra, rb = h.respond(v.ID(), tok)
		}
		resp := Token{Origin: tok.Origin, Seq: tok.Seq, A: ra, B: rb}
		if tok.Origin == v.ID() {
			h.responses = append(h.responses, resp)
			continue
		}
		arr := h.absorbLog[key(tok)]
		h.reverse = append(h.reverse, pendingSend{round: C - arr.round, port: arr.port, tok: resp})
	}
}

func (h *routeHandler) handleReverseArrival(v *congest.Vertex, tok Token) {
	k := key(tok)
	head, seen := h.visitHead[k]
	if !seen || head < 0 {
		// No earlier visit: this vertex is the token's origin.
		h.responses = append(h.responses, tok)
		return
	}
	last := h.visitLog[head]
	h.visitHead[k] = last.prev
	h.reverse = append(h.reverse, pendingSend{round: h.total - int(last.round), port: int(last.port), tok: tok})
}

func (h *routeHandler) flushReverse(v *congest.Vertex, pr int) {
	if len(h.reverse) == 0 {
		return
	}
	keep := h.reverse[:0]
	for _, ps := range h.reverse {
		if ps.round == pr {
			v.SendWords(ps.port, kindReverse, int64(ps.tok.Origin), int64(ps.tok.Seq), ps.tok.A, ps.tok.B)
		} else {
			keep = append(keep, ps)
		}
	}
	h.reverse = keep
}

// Exchange routes each origin's tokens to its cluster leader and, if respond
// is non-nil, routes the leader's per-token responses back along the
// reversed walks. tokens[v] lists vertex v's outgoing tokens (Origin/Seq are
// set by Exchange).
func Exchange(g *graph.Graph, cfg congest.Config, plan Plan, tokens [][]Token, respond func(leader int, t Token) (int64, int64)) (*ExchangeResult, congest.Metrics, error) {
	return exchange(g, cfg, plan, tokens, respond, nil)
}

// ExchangeBatch is Exchange with a batch responder: after a leader has
// absorbed all delivered forward tokens, respondBatch is called once with
// the complete inbox and must return one (A, B) response per inbox token, in
// order. This models the leader performing an arbitrary local computation on
// everything it gathered before answering — the heart of the paper's
// framework (Theorem 2.6's routing step).
func ExchangeBatch(g *graph.Graph, cfg congest.Config, plan Plan, tokens [][]Token, respondBatch func(leader int, inbox []Token) [][2]int64) (*ExchangeResult, congest.Metrics, error) {
	return exchange(g, cfg, plan, tokens, nil, respondBatch)
}

func exchange(g *graph.Graph, cfg congest.Config, plan Plan, tokens [][]Token, respond func(leader int, t Token) (int64, int64), respondBatch func(leader int, inbox []Token) [][2]int64) (*ExchangeResult, congest.Metrics, error) {
	n := g.N()
	if err := plan.Cluster.Validate(g); err != nil {
		return nil, congest.Metrics{}, err
	}
	if len(plan.Leader) != n {
		return nil, congest.Metrics{}, fmt.Errorf("routing: leader slice has %d entries, want %d", len(plan.Leader), n)
	}
	if plan.Strategy == TreeParent && len(plan.Parent) != n {
		return nil, congest.Metrics{}, fmt.Errorf("routing: tree strategy needs parents")
	}
	if plan.ForwardRounds < 1 {
		return nil, congest.Metrics{}, fmt.Errorf("routing: forward budget must be >= 1, got %d", plan.ForwardRounds)
	}
	if plan.Strategy == 0 {
		plan.Strategy = RandomWalk
	}
	// Under the parallel executor leaders answer from worker goroutines;
	// serialize the caller's responder so it may keep shared state (core's
	// solve context, GatherOnly's inbox map) without its own locking.
	// Responder results depend only on the (leader, token) arguments and
	// per-leader data, so serialization order cannot affect outputs.
	if cfg.Workers > 0 {
		var mu sync.Mutex
		if respond != nil {
			inner := respond
			respond = func(leader int, t Token) (int64, int64) {
				mu.Lock()
				defer mu.Unlock()
				return inner(leader, t)
			}
		}
		if respondBatch != nil {
			inner := respondBatch
			respondBatch = func(leader int, inbox []Token) [][2]int64 {
				mu.Lock()
				defer mu.Unlock()
				return inner(leader, inbox)
			}
		}
	}
	const maxSeq = 900 // keeps the seq word well inside the CONGEST cap
	totalTokens := 0
	for v := range tokens {
		if len(tokens[v]) > maxSeq {
			return nil, congest.Metrics{}, fmt.Errorf("routing: vertex %d has %d tokens, cap is %d", v, len(tokens[v]), maxSeq)
		}
		totalTokens += len(tokens[v])
	}
	total := 2*plan.ForwardRounds + 2
	sim := congest.NewSimulator(g, cfg)
	e := sim.Start(func(v *congest.Vertex) congest.Handler {
		// All per-walk state is sized here, at setup: the port stamps, the
		// token queue (seeded with the vertex's own tokens), and the visit
		// log that records hop history for the reverse phase. The steady
		// per-round path then only appends within amortized-grown buffers.
		h := &routeHandler{
			plan:         &plan,
			isLeader:     plan.Leader[v.ID()] == v.ID(),
			portStamp:    make([]int, v.Degree()),
			respond:      respond,
			respondBatch: respondBatch,
			total:        total,
		}
		own := tokens[v.ID()]
		if h.isLeader {
			h.absorbLog = make(map[[2]int]visit, len(own))
			for i, tok := range own {
				tok.Origin = v.ID()
				tok.Seq = i
				// Leader's own tokens are absorbed locally before round 1.
				h.absorbed = append(h.absorbed, tok)
				h.absorbLog[key(tok)] = visit{port: -1, round: 0}
			}
		} else {
			h.visitHead = make(map[[2]int]int32, 2*len(own)+2)
			h.visitLog = make([]visitEntry, 0, 2*len(own)+2)
			h.queue = make([]Token, 0, len(own)+2)
			for i, tok := range own {
				tok.Origin = v.ID()
				tok.Seq = i
				h.queue = append(h.queue, tok)
			}
		}
		return h
	})
	defer e.Close()
	// The round loop is driven explicitly (rather than via sim.Run) so the
	// exchange's fixed schedule maps onto observer phases: round 1 is the
	// cluster-ID setup broadcast, rounds 2..T+1 are the forward walk steps
	// (Lemma 2.4), and everything after is the leader response plus the
	// reversed-walk delivery (§2.2–2.3).
	phase := ""
	setPhase := func(want string) {
		if want != phase {
			if phase != "" {
				e.EndPhase()
			}
			e.BeginPhase(want)
			phase = want
		}
	}
	var res congest.Result
	for {
		switch next := e.Round() + 1; {
		case next == 1:
			setPhase("setup")
		case next <= plan.ForwardRounds+1:
			setPhase("forward")
		default:
			setPhase("reverse")
		}
		done, err := e.Step()
		if err != nil {
			if phase != "" {
				e.EndPhase()
			}
			return nil, e.Metrics(), err
		}
		if done {
			break
		}
	}
	if phase != "" {
		e.EndPhase()
	}
	res = e.Finish()
	out := &ExchangeResult{
		Responses:  make([][]Token, n),
		LeaderLoad: make(map[int]int),
	}
	for v := 0; v < n; v++ {
		if res.Outputs[v] == nil {
			continue
		}
		resp := res.Outputs[v].([]Token)
		// Sort by seq for determinism.
		for i := 1; i < len(resp); i++ {
			for j := i; j > 0 && resp[j-1].Seq > resp[j].Seq; j-- {
				resp[j-1], resp[j] = resp[j], resp[j-1]
			}
		}
		out.Responses[v] = resp
		out.Delivered += len(resp)
	}
	out.Undelivered = totalTokens - out.Delivered
	for v := 0; v < n; v++ {
		if out.Responses[v] != nil {
			out.LeaderLoad[plan.Leader[v]] += len(out.Responses[v])
		}
	}
	return out, res.Metrics, nil
}

// GatherOnly routes tokens to leaders without responses and returns what
// each leader absorbed. It runs the same forward phase as Exchange; the
// reverse phase degenerates to echoing delivery confirmations, which is how
// origins learn their token arrived (the §2.3 delivery check).
func GatherOnly(g *graph.Graph, cfg congest.Config, plan Plan, tokens [][]Token) (map[int][]Token, *ExchangeResult, congest.Metrics, error) {
	inbox := make(map[int][]Token)
	res, metrics, err := Exchange(g, cfg, plan, tokens, func(leader int, t Token) (int64, int64) {
		inbox[leader] = append(inbox[leader], t)
		return t.A, t.B
	})
	if err != nil {
		return nil, nil, metrics, err
	}
	return inbox, res, metrics, nil
}
