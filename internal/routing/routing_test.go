package routing

import (
	"testing"

	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// wholeGraphPlan builds a single-cluster plan with the given leader.
func wholeGraphPlan(g *graph.Graph, leader int, budget int, strat Strategy) Plan {
	lead := make([]int, g.N())
	for v := range lead {
		lead[v] = leader
	}
	return Plan{
		Cluster:       primitives.Uniform(g.N()),
		Leader:        lead,
		ForwardRounds: budget,
		Strategy:      strat,
	}
}

func oneTokenEach(g *graph.Graph) [][]Token {
	tokens := make([][]Token, g.N())
	for v := range tokens {
		tokens[v] = []Token{{A: int64(v * 10), B: int64(v)}}
	}
	return tokens
}

func TestWalkExchangeDeliversAll(t *testing.T) {
	g := graph.Complete(8)
	plan := wholeGraphPlan(g, 3, WalkBudget(0.5, g.N()), RandomWalk)
	seen := make(map[int][2]int64)
	res, metrics, err := Exchange(g, congest.Config{Seed: 5}, plan, oneTokenEach(g),
		func(leader int, tok Token) (int64, int64) {
			seen[tok.Origin] = [2]int64{tok.A, tok.B}
			return tok.A + 1, tok.B + 1
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered != 0 {
		t.Fatalf("undelivered = %d, want 0", res.Undelivered)
	}
	if res.Delivered != g.N() {
		t.Fatalf("delivered = %d, want %d", res.Delivered, g.N())
	}
	for v := 0; v < g.N(); v++ {
		got, ok := seen[v]
		if !ok {
			t.Fatalf("leader never saw vertex %d's token", v)
		}
		if got[0] != int64(v*10) || got[1] != int64(v) {
			t.Errorf("payload corrupted for %d: %v", v, got)
		}
		resp := res.Responses[v]
		if len(resp) != 1 {
			t.Fatalf("vertex %d got %d responses, want 1", v, len(resp))
		}
		if resp[0].A != int64(v*10+1) || resp[0].B != int64(v+1) {
			t.Errorf("vertex %d response = %+v", v, resp[0])
		}
	}
	if metrics.Rounds != 2*plan.ForwardRounds+2+1 {
		t.Errorf("rounds = %d, want %d", metrics.Rounds, 2*plan.ForwardRounds+3)
	}
}

func TestWalkExchangeOnExpanderCluster(t *testing.T) {
	// A grid has moderate conductance; the budget formula must suffice.
	g := graph.Grid(6, 6)
	plan := wholeGraphPlan(g, 0, WalkBudget(0.15, g.N()), RandomWalk)
	res, _, err := Exchange(g, congest.Config{Seed: 7}, plan, oneTokenEach(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered != 0 {
		t.Errorf("undelivered = %d on 6x6 grid with generous budget", res.Undelivered)
	}
	// nil respond echoes payloads.
	for v := 0; v < g.N(); v++ {
		if len(res.Responses[v]) != 1 || res.Responses[v][0].A != int64(v*10) {
			t.Errorf("echo response wrong for %d: %v", v, res.Responses[v])
		}
	}
}

func TestWalkExchangeShortBudgetReportsUndelivered(t *testing.T) {
	g := graph.Path(30)
	plan := wholeGraphPlan(g, 0, 4, RandomWalk) // far too few rounds
	res, _, err := Exchange(g, congest.Config{Seed: 3}, plan, oneTokenEach(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered == 0 {
		t.Error("a 4-round budget cannot deliver across a 30-path")
	}
	// Undelivered origins got no response.
	nothing := 0
	for v := 0; v < g.N(); v++ {
		if len(res.Responses[v]) == 0 {
			nothing++
		}
	}
	if nothing != res.Undelivered {
		t.Errorf("responseless origins %d != undelivered %d", nothing, res.Undelivered)
	}
}

func TestTreeExchangeDeterministicDelivery(t *testing.T) {
	g := graph.BalancedBinaryTree(15)
	parent := make([]int, g.N())
	for v := 1; v < g.N(); v++ {
		parent[v] = (v - 1) / 2
	}
	parent[0] = 0
	plan := wholeGraphPlan(g, 0, 64, TreeParent)
	plan.Parent = parent
	res, _, err := Exchange(g, congest.Config{Seed: 1}, plan, oneTokenEach(g), nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered != 0 {
		t.Fatalf("tree routing undelivered = %d", res.Undelivered)
	}
	if res.LeaderLoad[0] != g.N() {
		t.Errorf("leader load = %d, want %d", res.LeaderLoad[0], g.N())
	}
}

func TestExchangeRespectsClusters(t *testing.T) {
	// Two clusters on a path; each token must reach its own leader only.
	g := graph.Path(8)
	cluster := primitives.ClusterAssignment{0, 0, 0, 0, 1, 1, 1, 1}
	leader := []int{0, 0, 0, 0, 7, 7, 7, 7}
	plan := Plan{
		Cluster:       cluster,
		Leader:        leader,
		ForwardRounds: 200,
		Strategy:      RandomWalk,
	}
	inbox, res, _, err := GatherOnly(g, congest.Config{Seed: 9}, plan, oneTokenEach(g))
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered != 0 {
		t.Fatalf("undelivered = %d", res.Undelivered)
	}
	for leaderID, toks := range inbox {
		for _, tok := range toks {
			if cluster[tok.Origin] != cluster[leaderID] {
				t.Errorf("token from %d leaked to leader %d", tok.Origin, leaderID)
			}
		}
	}
	if len(inbox[0]) != 4 || len(inbox[7]) != 4 {
		t.Errorf("leader inboxes: %d and %d, want 4 and 4", len(inbox[0]), len(inbox[7]))
	}
}

func TestExchangeMultipleTokensPerVertex(t *testing.T) {
	g := graph.Complete(6)
	tokens := make([][]Token, g.N())
	for v := range tokens {
		for j := 0; j < 5; j++ {
			tokens[v] = append(tokens[v], Token{A: int64(v), B: int64(j)})
		}
	}
	plan := wholeGraphPlan(g, 0, 400, RandomWalk)
	res, _, err := Exchange(g, congest.Config{Seed: 11}, plan, tokens,
		func(leader int, tok Token) (int64, int64) { return tok.B, tok.A })
	if err != nil {
		t.Fatal(err)
	}
	if res.Undelivered != 0 {
		t.Fatalf("undelivered = %d", res.Undelivered)
	}
	for v := 0; v < g.N(); v++ {
		if len(res.Responses[v]) != 5 {
			t.Fatalf("vertex %d: %d responses, want 5", v, len(res.Responses[v]))
		}
		for j, resp := range res.Responses[v] {
			if resp.Seq != j {
				t.Errorf("vertex %d responses out of order: %v", v, res.Responses[v])
				break
			}
			if resp.A != int64(j) || resp.B != int64(v) {
				t.Errorf("vertex %d token %d: swapped payload wrong: %+v", v, j, resp)
			}
		}
	}
}

func TestExchangeValidation(t *testing.T) {
	g := graph.Path(4)
	base := wholeGraphPlan(g, 0, 10, RandomWalk)

	short := base
	short.Leader = []int{0}
	if _, _, err := Exchange(g, congest.Config{}, short, make([][]Token, 4), nil); err == nil {
		t.Error("short leader slice accepted")
	}

	tree := base
	tree.Strategy = TreeParent
	if _, _, err := Exchange(g, congest.Config{}, tree, make([][]Token, 4), nil); err == nil {
		t.Error("tree strategy without parents accepted")
	}

	bad := base
	bad.ForwardRounds = 0
	if _, _, err := Exchange(g, congest.Config{}, bad, make([][]Token, 4), nil); err == nil {
		t.Error("zero budget accepted")
	}

	many := base
	tokens := make([][]Token, 4)
	tokens[0] = make([]Token, 1000)
	if _, _, err := Exchange(g, congest.Config{}, many, tokens, nil); err == nil {
		t.Error("token overflow accepted")
	}
}

func TestWalkBudgetScaling(t *testing.T) {
	if WalkBudget(0.1, 100) <= WalkBudget(0.5, 100) {
		t.Error("budget should grow as phi shrinks")
	}
	if WalkBudget(0.2, 10000) <= WalkBudget(0.2, 10) {
		t.Error("budget should grow with n")
	}
	if WalkBudget(0, 10) < 16 {
		t.Error("degenerate phi should still give a positive budget")
	}
}

func TestExchangeDeterminism(t *testing.T) {
	g := graph.Grid(4, 4)
	plan := wholeGraphPlan(g, 5, 300, RandomWalk)
	run := func() *ExchangeResult {
		res, _, err := Exchange(g, congest.Config{Seed: 77}, plan, oneTokenEach(g), nil)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.Delivered != b.Delivered || a.Undelivered != b.Undelivered {
		t.Fatal("nondeterministic delivery")
	}
	for v := range a.Responses {
		if len(a.Responses[v]) != len(b.Responses[v]) {
			t.Fatalf("nondeterministic responses at %d", v)
		}
	}
}

func TestLeaderOwnTokensDeliveredLocally(t *testing.T) {
	g := graph.Star(4)
	plan := wholeGraphPlan(g, 0, 100, RandomWalk)
	tokens := make([][]Token, g.N())
	tokens[0] = []Token{{A: 42, B: 43}} // only the leader has a token
	res, _, err := Exchange(g, congest.Config{Seed: 2}, plan, tokens,
		func(leader int, tok Token) (int64, int64) { return tok.A * 2, tok.B * 2 })
	if err != nil {
		t.Fatal(err)
	}
	if res.Delivered != 1 || res.Undelivered != 0 {
		t.Fatalf("delivered=%d undelivered=%d", res.Delivered, res.Undelivered)
	}
	if len(res.Responses[0]) != 1 || res.Responses[0][0].A != 84 {
		t.Errorf("leader self-response = %v", res.Responses[0])
	}
}
