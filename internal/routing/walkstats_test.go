package routing

import (
	"math"
	"testing"

	"expandergap/internal/conductance"
	"expandergap/internal/congest"
	"expandergap/internal/graph"
	"expandergap/internal/primitives"
)

// The statistical bridge between Lemma 2.4's analysis and the simulation:
// leaders with larger stationary mass π(v*) = deg(v*)/vol absorb tokens
// sooner. We measure first-delivery completion across two leader choices on
// a star-ish graph — the hub (huge π) must complete far faster than a leaf.
func TestHighDegreeLeaderAbsorbsFaster(t *testing.T) {
	g := graph.Wheel(24) // hub 0 has degree 24, rim vertices degree 3
	tokens := make([][]Token, g.N())
	for v := range tokens {
		tokens[v] = []Token{{A: int64(v)}}
	}
	// With a deliberately tight budget, the completion rate exposes the
	// absorption-speed difference between leaders.
	delivered := func(leader, budget int) int {
		plan := Plan{
			Cluster:       primitives.Uniform(g.N()),
			Leader:        fill(g.N(), leader),
			ForwardRounds: budget,
			Strategy:      RandomWalk,
		}
		res, _, err := Exchange(g, congest.Config{Seed: 5}, plan, tokens, nil)
		if err != nil {
			t.Fatal(err)
		}
		return res.Delivered
	}
	budget := 60
	hub := delivered(0, budget)
	leaf := delivered(5, budget)
	if hub <= leaf {
		t.Errorf("hub leader delivered %d, leaf leader %d — expected hub to dominate", hub, leaf)
	}
	// The paper's π(v*) intuition: hub stationary mass is deg/vol = 24/96.
	pi := conductance.StationaryDistribution(g)
	if pi[0] < 3*pi[5] {
		t.Errorf("test premise broken: π(hub)=%v vs π(rim)=%v", pi[0], pi[5])
	}
}

// Exact walk-distribution evolution vs the stationary distribution: after
// O(φ⁻² log n) steps the distribution is within the paper's τ_mix tolerance.
// This pins the simulator-level walk (used by routing) to the analytical
// object the lemma reasons about.
func TestWalkDistributionMatchesMixingDefinition(t *testing.T) {
	g := graph.Torus(4, 4)
	phi := conductance.ExactConductance(g)
	steps := int(math.Ceil(4 * math.Log(float64(g.N())) / (phi * phi)))
	p := conductance.WalkDistribution(g, 3, steps)
	pi := conductance.StationaryDistribution(g)
	for v := range p {
		if math.Abs(p[v]-pi[v]) > pi[v]/float64(g.N())+1e-9 {
			t.Errorf("vertex %d: |p-π| = %v above tolerance after %d steps",
				v, math.Abs(p[v]-pi[v]), steps)
		}
	}
}
