// Package separator computes balanced edge separators and verifies the
// paper's Theorem 1.6: every H-minor-free graph admits an edge separator
// (a cut {S, V\S} with min(|S|, |V\S|) ≥ |V|/3) of size O(√(Δ·n)).
//
// Two constructive heuristics are provided — a balanced spectral sweep and a
// BFS-order prefix cut — plus a brute-force exact optimum for small graphs.
// The experiment harness (E11) measures |∂S|/√(Δn) across planar and
// minor-free families and checks the ratio stays bounded, which is the
// empirically checkable content of Theorem 1.6. Lemma 2.3's consequence
// (every expander cluster of a minor-free graph contains a high-degree
// vertex) has its verifier here as well.
package separator

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"expandergap/internal/conductance"
	"expandergap/internal/graph"
)

// EdgeSeparator is a balanced cut of a graph.
type EdgeSeparator struct {
	// S is the smaller (or equal) side of the cut.
	S map[int]bool
	// CutSize is |∂(S)|.
	CutSize int
}

// Balanced reports whether the separator satisfies the Theorem 1.6 balance
// requirement min(|S|, |V\S|) ≥ |V|/3 for a graph on n vertices.
func (s EdgeSeparator) Balanced(n int) bool {
	small := len(s.S)
	if rest := n - small; rest < small {
		small = rest
	}
	return 3*small >= n
}

// Quality returns |∂S| / √(Δ·n), the Theorem 1.6 ratio. A family of graphs
// satisfies the theorem iff this ratio is bounded by a constant depending
// only on the excluded minor.
func (s EdgeSeparator) Quality(g graph.G) float64 {
	d := graph.MaxDegreeOf(g)
	if d == 0 || g.N() == 0 {
		return 0
	}
	return float64(s.CutSize) / math.Sqrt(float64(d)*float64(g.N()))
}

func balancedRange(n int) (lo, hi int) {
	lo = (n + 2) / 3 // ceil(n/3)
	hi = n - lo
	return lo, hi
}

// bestPrefixCut scans prefixes of order whose sizes land in the balanced
// range and returns the one with the fewest crossing edges.
func bestPrefixCut(g graph.G, order []int) EdgeSeparator {
	n := g.N()
	lo, hi := balancedRange(n)
	inS := make([]bool, n)
	cut := 0
	best := EdgeSeparator{CutSize: math.MaxInt}
	for k := 0; k < n; k++ {
		v := order[k]
		inS[v] = true
		g.ForEachNeighbor(v, func(u, _ int) {
			if inS[u] {
				cut--
			} else {
				cut++
			}
		})
		size := k + 1
		if size < lo || size > hi {
			continue
		}
		if cut < best.CutSize {
			s := make(map[int]bool, size)
			for _, w := range order[:size] {
				s[w] = true
			}
			best = EdgeSeparator{S: s, CutSize: cut}
		}
	}
	if best.S == nil {
		panic(fmt.Sprintf("separator: no balanced prefix exists for n=%d", n))
	}
	return best
}

// Spectral returns a balanced edge separator from a Fiedler-vector sweep
// restricted to balanced prefixes. Requires n ≥ 2.
func Spectral(g graph.G, rng *rand.Rand) EdgeSeparator {
	n := g.N()
	if n < 2 {
		panic(fmt.Sprintf("separator: need n >= 2, got %d", n))
	}
	scores := conductance.FiedlerScores(g, 300, rng)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		if scores[order[a]] != scores[order[b]] {
			return scores[order[a]] < scores[order[b]]
		}
		return order[a] < order[b]
	})
	return bestPrefixCut(g, order)
}

// BFSOrder returns a balanced edge separator from a BFS level-order prefix
// cut rooted at root. Deterministic.
func BFSOrder(g graph.G, root int) EdgeSeparator {
	n := g.N()
	if n < 2 {
		panic(fmt.Sprintf("separator: need n >= 2, got %d", n))
	}
	dist, _ := graph.BFSOf(g, root)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		da, db := dist[order[a]], dist[order[b]]
		// Unreachable vertices (-1) go last.
		ka, kb := da, db
		if ka == -1 {
			ka = math.MaxInt
		}
		if kb == -1 {
			kb = math.MaxInt
		}
		if ka != kb {
			return ka < kb
		}
		return order[a] < order[b]
	})
	return bestPrefixCut(g, order)
}

// Best returns the better (smaller cut) of the spectral separator and BFS
// separators from a few roots.
func Best(g graph.G, rng *rand.Rand) EdgeSeparator {
	best := Spectral(g, rng)
	roots := []int{0}
	if g.N() > 1 {
		roots = append(roots, g.N()-1, rng.Intn(g.N()))
	}
	for _, r := range roots {
		if s := BFSOrder(g, r); s.CutSize < best.CutSize {
			best = s
		}
	}
	return best
}

// MaxBruteForceN bounds the exhaustive separator search.
const MaxBruteForceN = 20

// BruteForce returns the minimum-size balanced edge separator by exhaustive
// enumeration. Panics for n > MaxBruteForceN or n < 2.
func BruteForce(g graph.G) EdgeSeparator {
	n := g.N()
	if n < 2 || n > MaxBruteForceN {
		panic(fmt.Sprintf("separator: BruteForce needs 2 <= n <= %d, got %d", MaxBruteForceN, n))
	}
	lo, hi := balancedRange(n)
	edges := graph.EdgesOf(g)
	best := EdgeSeparator{CutSize: math.MaxInt}
	for mask := 1; mask < 1<<(n-1); mask++ { // vertex n-1 fixed outside S
		size := 0
		for v := 0; v < n-1; v++ {
			if mask&(1<<v) != 0 {
				size++
			}
		}
		if size < lo || size > hi {
			continue
		}
		cut := 0
		for _, e := range edges {
			inU := e.U < n-1 && mask&(1<<e.U) != 0
			inV := e.V < n-1 && mask&(1<<e.V) != 0
			if inU != inV {
				cut++
			}
		}
		if cut < best.CutSize {
			s := make(map[int]bool, size)
			for v := 0; v < n-1; v++ {
				if mask&(1<<v) != 0 {
					s[v] = true
				}
			}
			best = EdgeSeparator{S: s, CutSize: cut}
		}
	}
	return best
}

// HighDegreeWitness verifies the consequence of Lemma 2.3 used by the
// framework: for a cluster with conductance at least phi in an H-minor-free
// graph, the maximum degree Δ_i must be at least c·φ²·|V_i| for a constant c
// depending only on H. It returns Δ_i / (φ²·|V_i|), the measured constant;
// Lemma 2.3 holds on a family iff this stays bounded away from 0.
func HighDegreeWitness(g graph.G, phi float64) float64 {
	if g.N() == 0 || phi <= 0 {
		return 0
	}
	return float64(graph.MaxDegreeOf(g)) / (phi * phi * float64(g.N()))
}

// LemmaProof mirrors the proof of Lemma 2.3: given a balanced edge separator
// of size |∂S| for a cluster with conductance φ, it derives the implied
// lower bound on Δ_i. Specifically φ ≤ Φ(S) ≤ |∂S| / (|V|/3) and
// |∂S| ≤ c√(Δ|V|) yield Δ ≥ (φ/(3c))²·|V|. The function returns the implied
// constant (φ·|V|/3 / |∂S|)² · Δ_measured-consistency ratio, packaged as the
// separator-side check used by tests.
func LemmaProof(g graph.G, sep EdgeSeparator, phi float64) (impliedMinDegree float64, ok bool) {
	if !sep.Balanced(g.N()) || g.N() == 0 {
		return 0, false
	}
	c := sep.Quality(g)
	if c == 0 {
		return 0, true
	}
	d := phi / (3 * c)
	return d * d * float64(g.N()), true
}
