package separator

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestBalancedRange(t *testing.T) {
	cases := []struct{ n, lo, hi int }{
		{3, 1, 2},
		{6, 2, 4},
		{7, 3, 4},
		{9, 3, 6},
		{10, 4, 6},
	}
	for _, tc := range cases {
		lo, hi := balancedRange(tc.n)
		if lo != tc.lo || hi != tc.hi {
			t.Errorf("balancedRange(%d) = (%d,%d), want (%d,%d)", tc.n, lo, hi, tc.lo, tc.hi)
		}
	}
}

func TestSpectralSeparatorGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	g := graph.Grid(8, 8)
	sep := Spectral(g, rng)
	if !sep.Balanced(g.N()) {
		t.Fatalf("spectral separator unbalanced: |S| = %d of %d", len(sep.S), g.N())
	}
	// An 8x8 grid has a balanced column cut of 8 edges; the spectral sweep
	// should find something close.
	if sep.CutSize > 12 {
		t.Errorf("spectral cut on 8x8 grid = %d, expected <= 12", sep.CutSize)
	}
}

func TestBFSOrderSeparator(t *testing.T) {
	g := graph.Path(9)
	sep := BFSOrder(g, 0)
	if !sep.Balanced(g.N()) {
		t.Fatalf("BFS separator unbalanced")
	}
	if sep.CutSize != 1 {
		t.Errorf("path separator cut = %d, want 1", sep.CutSize)
	}
}

func TestBFSOrderDisconnected(t *testing.T) {
	g := graph.Disjoint(graph.Path(5), graph.Path(4))
	sep := BFSOrder(g, 0)
	if !sep.Balanced(g.N()) {
		t.Fatal("separator must be balanced even for disconnected input")
	}
	if sep.CutSize > 1 {
		t.Errorf("disconnected separator cut = %d, want <= 1", sep.CutSize)
	}
}

func TestBestSeparatorMatchesBruteForceOnSmall(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for _, g := range []*graph.Graph{
		graph.Cycle(9),
		graph.Grid(3, 4),
		graph.Complete(7),
		graph.Star(8),
	} {
		opt := BruteForce(g)
		got := Best(g, rng)
		if !got.Balanced(g.N()) || !opt.Balanced(g.N()) {
			t.Fatalf("unbalanced separator on %v", g)
		}
		// Heuristics may be suboptimal but never by more than 2x on these
		// tiny structured instances.
		if got.CutSize > 2*opt.CutSize+1 {
			t.Errorf("%v: heuristic cut %d far from optimal %d", g, got.CutSize, opt.CutSize)
		}
		if opt.CutSize > got.CutSize {
			t.Errorf("%v: brute force (%d) worse than heuristic (%d)?!", g, opt.CutSize, got.CutSize)
		}
	}
}

func TestBruteForceKnownValues(t *testing.T) {
	// C6: balanced cut needs 2 edges.
	if got := BruteForce(graph.Cycle(6)).CutSize; got != 2 {
		t.Errorf("C6 separator = %d, want 2", got)
	}
	// K6: best balanced cut is 2|3 split: 2*4... every 3|3 split cuts 9,
	// 2|4 split cuts 8 and is balanced (min=2 >= 6/3=2).
	if got := BruteForce(graph.Complete(6)).CutSize; got != 8 {
		t.Errorf("K6 separator = %d, want 8", got)
	}
	// P2: single edge.
	if got := BruteForce(graph.Path(2)).CutSize; got != 1 {
		t.Errorf("P2 separator = %d, want 1", got)
	}
}

func TestBruteForcePanics(t *testing.T) {
	for _, n := range []int{1, MaxBruteForceN + 1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("BruteForce(%d-vertex) should panic", n)
				}
			}()
			BruteForce(graph.Path(n))
		}()
	}
}

// Theorem 1.6 empirical check: on planar families the separator quality
// |∂S|/√(Δn) stays below a fixed constant as n grows.
func TestTheorem16PlanarFamilies(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const bound = 3.0
	for _, n := range []int{16, 64, 144, 256} {
		side := int(math.Sqrt(float64(n)))
		families := map[string]*graph.Graph{
			"grid":    graph.Grid(side, side),
			"trigrid": graph.TriangulatedGrid(side, side),
			"planar":  graph.RandomMaximalPlanar(n, rng),
			"tree":    graph.RandomTree(n, rng),
		}
		for name, g := range families {
			sep := Best(g, rng)
			if !sep.Balanced(g.N()) {
				t.Fatalf("%s(n=%d): unbalanced", name, n)
			}
			if q := sep.Quality(g); q > bound {
				t.Errorf("%s(n=%d): quality %v exceeds bound %v (cut=%d)", name, n, q, bound, sep.CutSize)
			}
		}
	}
}

// Control: cliques do NOT satisfy the O(√(Δn)) bound with a small constant —
// the ratio grows with n. This confirms the measurement distinguishes
// minor-free from dense families.
func TestTheorem16CliqueControl(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	q12 := Best(graph.Complete(12), rng).Quality(graph.Complete(12))
	q24 := Best(graph.Complete(24), rng).Quality(graph.Complete(24))
	if q24 <= q12 {
		t.Errorf("clique separator quality should grow: q12=%v q24=%v", q12, q24)
	}
}

func TestQualityAndWitnessDegenerate(t *testing.T) {
	empty := graph.NewBuilder(0).Graph()
	sep := EdgeSeparator{S: map[int]bool{}}
	if q := sep.Quality(empty); q != 0 {
		t.Errorf("empty quality = %v, want 0", q)
	}
	if w := HighDegreeWitness(empty, 0.5); w != 0 {
		t.Errorf("empty witness = %v, want 0", w)
	}
	if w := HighDegreeWitness(graph.Cycle(4), 0); w != 0 {
		t.Errorf("phi=0 witness = %v, want 0", w)
	}
}

func TestHighDegreeWitness(t *testing.T) {
	// K8 with phi = 2/3 (conductance-ish): Δ = 7, witness = 7/((4/9)*8) ≈ 1.97.
	w := HighDegreeWitness(graph.Complete(8), 2.0/3.0)
	if math.Abs(w-7.0/((4.0/9.0)*8.0)) > 1e-12 {
		t.Errorf("witness = %v", w)
	}
}

func TestLemmaProof(t *testing.T) {
	g := graph.Complete(9)
	sep := BruteForce(g)
	implied, ok := LemmaProof(g, sep, 2.0/3.0)
	if !ok {
		t.Fatal("balanced separator rejected")
	}
	if implied <= 0 {
		t.Errorf("implied min degree = %v, want > 0", implied)
	}
	// Unbalanced separator is rejected.
	if _, ok := LemmaProof(g, EdgeSeparator{S: map[int]bool{0: true}}, 0.5); ok {
		t.Error("unbalanced separator should be rejected")
	}
}

// Property: heuristic separators are always balanced and their cut size
// matches a direct recount.
func TestQuickSeparatorConsistency(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 6 + rng.Intn(12)
		g := graph.ErdosRenyi(n, 0.4, rng)
		sep := Best(g, rng)
		if !sep.Balanced(n) {
			return false
		}
		recount := len(g.CutEdges(sep.S))
		return recount == sep.CutSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: brute force is never beaten by the heuristics.
func TestQuickBruteForceOptimal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 5 + rng.Intn(7)
		g := graph.ErdosRenyi(n, 0.5, rng)
		opt := BruteForce(g)
		heur := Best(g, rng)
		return opt.CutSize <= heur.CutSize
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
