package serve

import (
	"sync"
	"sync/atomic"
	"time"
)

// flight is one in-progress canonical run that concurrent requests with
// the same key join instead of re-running. The shared payload is the
// encoded result, so followers reuse the leader's one-time encoding.
type flight struct {
	done   chan struct{}
	res    *encResult
	err    error
	joined atomic.Int64 // batch occupancy: leader + followers
}

// batcher coalesces concurrent same-key requests into one run per key.
// The first arrival becomes the flight leader; it optionally waits for the
// batch window so closely-following requests can join, runs the canonical
// computation once, and publishes the result to every member. Because the
// run is keyed purely on (epoch, family, params), the batched result is
// bit-identical to what each member would have computed alone.
type batcher struct {
	mu      sync.Mutex
	flights map[string]*flight
	window  time.Duration
}

func newBatcher(window time.Duration) *batcher {
	return &batcher{flights: make(map[string]*flight), window: window}
}

// do runs (or joins) the flight for key. It returns the shared result, the
// final batch occupancy, and whether this caller led the flight. run must
// make the result visible to late arrivals (i.e. populate the cache)
// before do returns, because the flight is deregistered at that point.
func (b *batcher) do(key string, run func() (*encResult, error)) (res *encResult, occupancy int64, led bool, err error) {
	b.mu.Lock()
	if f, ok := b.flights[key]; ok {
		f.joined.Add(1)
		b.mu.Unlock()
		<-f.done
		return f.res, f.joined.Load(), false, f.err
	}
	f := &flight{done: make(chan struct{})}
	f.joined.Store(1)
	b.flights[key] = f
	b.mu.Unlock()

	if b.window > 0 {
		time.Sleep(b.window)
	}
	f.res, f.err = run()

	b.mu.Lock()
	delete(b.flights, key)
	b.mu.Unlock()
	close(f.done)
	return f.res, f.joined.Load(), true, f.err
}
