package serve

import (
	"container/list"
	"sync"
)

// defaultCacheBytes caps the result cache at 256 MiB unless configured.
const defaultCacheBytes = 256 << 20

// resultCache stores encoded canonical results keyed on (epoch, query key),
// bounded by a bytes-accounted LRU. Entries are never invalidated
// individually by time: a snapshot swap calls swapEpoch and every older
// epoch's entries die together (results are pure functions of (snapshot,
// params)), and within an epoch the LRU evicts the coldest entries once
// the accounted bytes — encoded JSON plus the Result's backing arrays —
// exceed the cap. Without the cap, one entry per distinct seed/params
// pair, each holding full per-vertex arrays, grows without bound.
type resultCache struct {
	mu       sync.Mutex
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	byEpoch  map[int64]map[string]*list.Element

	evictions int64
}

// cacheEntry is one (epoch, key) -> encoded result binding on the LRU list.
type cacheEntry struct {
	epoch int64
	key   string
	val   *encResult
	size  int64
}

func newResultCache(maxBytes int64) *resultCache {
	if maxBytes <= 0 {
		maxBytes = defaultCacheBytes
	}
	return &resultCache{
		maxBytes: maxBytes,
		ll:       list.New(),
		byEpoch:  make(map[int64]map[string]*list.Element),
	}
}

func (c *resultCache) get(epoch int64, key string) *encResult {
	c.mu.Lock()
	defer c.mu.Unlock()
	e := c.byEpoch[epoch][key]
	if e == nil {
		return nil
	}
	c.ll.MoveToFront(e)
	return e.Value.(*cacheEntry).val
}

func (c *resultCache) put(epoch int64, key string, v *encResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.byEpoch[epoch]
	if m == nil {
		m = make(map[string]*list.Element)
		c.byEpoch[epoch] = m
	}
	size := v.memBytes() + int64(len(key))
	if e, ok := m[key]; ok {
		// Possible when a flight for a key raced an eviction of the same
		// key's earlier entry; keep the newer value and fix the accounting.
		ent := e.Value.(*cacheEntry)
		c.curBytes += size - ent.size
		ent.val, ent.size = v, size
		c.ll.MoveToFront(e)
	} else {
		ent := &cacheEntry{epoch: epoch, key: key, val: v, size: size}
		m[key] = c.ll.PushFront(ent)
		c.curBytes += size
	}
	// Evict coldest-first down to the cap, but never the entry just
	// touched: a single oversized result still serves its own flight.
	for c.curBytes > c.maxBytes && c.ll.Len() > 1 {
		back := c.ll.Back()
		c.removeLocked(back)
		c.evictions++
	}
}

func (c *resultCache) removeLocked(e *list.Element) {
	ent := e.Value.(*cacheEntry)
	c.ll.Remove(e)
	c.curBytes -= ent.size
	if m := c.byEpoch[ent.epoch]; m != nil {
		delete(m, ent.key)
		if len(m) == 0 {
			delete(c.byEpoch, ent.epoch)
		}
	}
}

// swapEpoch drops every epoch except the one that just became current.
// In-flight runs against an older snapshot may still put() afterwards;
// their orphaned entries are swept by the next swap and count against the
// byte cap meanwhile — harmless, since no new request ever reads an old
// epoch.
func (c *resultCache) swapEpoch(current int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	var next *list.Element
	for e := c.ll.Front(); e != nil; e = next {
		next = e.Next()
		if e.Value.(*cacheEntry).epoch != current {
			c.removeLocked(e)
		}
	}
}

// cacheStatz is the /statz JSON shape of the cache counters.
type cacheStatz struct {
	Entries       int   `json:"entries"`
	Bytes         int64 `json:"bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
	Evictions     int64 `json:"evictions"`
}

func (c *resultCache) statz() cacheStatz {
	c.mu.Lock()
	defer c.mu.Unlock()
	return cacheStatz{
		Entries:       c.ll.Len(),
		Bytes:         c.curBytes,
		CapacityBytes: c.maxBytes,
		Evictions:     c.evictions,
	}
}

// size returns the number of cached results for the given epoch.
func (c *resultCache) size(epoch int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byEpoch[epoch])
}
