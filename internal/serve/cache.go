package serve

import "sync"

// resultCache stores canonical results keyed on (epoch, query key). Entries
// are never invalidated individually: a snapshot swap calls swapEpoch and
// every older epoch's entries die together, which is the whole invalidation
// story — results are pure functions of (snapshot, params).
type resultCache struct {
	mu      sync.Mutex
	byEpoch map[int64]map[string]*Result
}

func newResultCache() *resultCache {
	return &resultCache{byEpoch: make(map[int64]map[string]*Result)}
}

func (c *resultCache) get(epoch int64, key string) *Result {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.byEpoch[epoch][key]
}

func (c *resultCache) put(epoch int64, key string, r *Result) {
	c.mu.Lock()
	defer c.mu.Unlock()
	m := c.byEpoch[epoch]
	if m == nil {
		m = make(map[string]*Result)
		c.byEpoch[epoch] = m
	}
	m[key] = r
}

// swapEpoch drops every epoch except the one that just became current.
// In-flight runs against an older snapshot may still put() afterwards;
// their orphaned epoch map is recreated transiently and swept by the next
// swap — harmless, since no new request ever reads an old epoch.
func (c *resultCache) swapEpoch(current int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	for e := range c.byEpoch {
		if e != current {
			delete(c.byEpoch, e)
		}
	}
}

// size returns the number of cached results for the given epoch.
func (c *resultCache) size(epoch int64) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byEpoch[epoch])
}
