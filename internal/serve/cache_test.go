package serve

import (
	"fmt"
	"testing"
)

// fakeEnc builds an encResult whose accounted size is dominated by a
// payload of `bytes` encoded bytes.
func fakeEnc(bytes int) *encResult {
	return &encResult{res: &Result{}, full: make([]byte, bytes)}
}

func TestCacheLRUEviction(t *testing.T) {
	// Entry overhead is 256 + len(key); size payloads so ~3 entries fit.
	payload := 4096
	entrySize := int64(payload) + 256 + 2 // key "kN"
	c := newResultCache(3 * entrySize)

	for i := 0; i < 3; i++ {
		c.put(1, fmt.Sprintf("k%d", i), fakeEnc(payload))
	}
	st := c.statz()
	if st.Entries != 3 || st.Evictions != 0 {
		t.Fatalf("after 3 puts: %+v", st)
	}
	if st.Bytes != 3*entrySize {
		t.Fatalf("bytes accounted %d, want %d", st.Bytes, 3*entrySize)
	}

	// Touch k0 so k1 becomes coldest, then overflow.
	if c.get(1, "k0") == nil {
		t.Fatal("k0 missing before overflow")
	}
	c.put(1, "k3", fakeEnc(payload))
	if c.get(1, "k1") != nil {
		t.Fatal("k1 should have been evicted (coldest)")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if c.get(1, k) == nil {
			t.Fatalf("%s evicted, want k1 only", k)
		}
	}
	st = c.statz()
	if st.Entries != 3 || st.Evictions != 1 {
		t.Fatalf("after overflow: %+v", st)
	}
	if st.Bytes > c.maxBytes {
		t.Fatalf("bytes %d above cap %d after eviction", st.Bytes, c.maxBytes)
	}
}

func TestCacheOversizedEntrySurvivesItsOwnPut(t *testing.T) {
	c := newResultCache(1024)
	c.put(1, "big", fakeEnc(1<<20))
	if c.get(1, "big") == nil {
		t.Fatal("oversized entry evicted before it could serve its own flight")
	}
	// The next put pushes the oversized entry out.
	c.put(1, "small", fakeEnc(16))
	if c.get(1, "big") != nil {
		t.Fatal("oversized entry survived a later put")
	}
	if c.get(1, "small") == nil {
		t.Fatal("small entry missing")
	}
}

func TestCacheSwapEpoch(t *testing.T) {
	c := newResultCache(0) // default cap
	c.put(1, "a", fakeEnc(100))
	c.put(1, "b", fakeEnc(100))
	c.put(2, "a", fakeEnc(100))
	c.swapEpoch(2)
	if c.get(1, "a") != nil || c.get(1, "b") != nil {
		t.Fatal("old-epoch entries survived the swap")
	}
	if c.get(2, "a") == nil {
		t.Fatal("current-epoch entry dropped by the swap")
	}
	st := c.statz()
	if st.Entries != 1 {
		t.Fatalf("entries = %d after swap, want 1", st.Entries)
	}
	if st.Evictions != 0 {
		t.Fatalf("epoch death counted as eviction: %+v", st)
	}
	if c.size(2) != 1 || c.size(1) != 0 {
		t.Fatalf("size(2)=%d size(1)=%d", c.size(2), c.size(1))
	}
}

func TestCacheReplaceAccounting(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put(1, "k", fakeEnc(1000))
	before := c.statz().Bytes
	c.put(1, "k", fakeEnc(3000))
	after := c.statz().Bytes
	if after-before != 2000 {
		t.Fatalf("replacing a 1000B payload with 3000B changed accounting by %d, want 2000", after-before)
	}
	if st := c.statz(); st.Entries != 1 {
		t.Fatalf("replace duplicated the entry: %+v", st)
	}
}
