// Package serve implements the resident decomposition-as-a-service layer:
// a long-lived HTTP server that loads a network once, computes its expander
// decomposition once, and then amortizes that single cached decomposition
// across arbitrarily many concurrent queries instead of re-decomposing per
// request.
//
// # Snapshot lifecycle
//
// The unit of state is the immutable Snapshot: the graph (text, binary, or
// zero-copy mmap via the internal/graph load paths), its expander
// decomposition, the per-cluster leader table, and a monotonically
// increasing epoch. The server holds the current snapshot behind an
// atomic.Pointer; every request pins the snapshot it starts on with a
// reference count and keeps using it to completion, so a concurrent
// POST /reload — which builds the replacement snapshot entirely off to the
// side and then swaps the pointer — never tears an in-flight request. A
// retired snapshot is destroyed (and its mmap unmapped) only when the last
// request holding it finishes.
//
// # Query families, batching, caching
//
// Four query families are served, all running as real CONGEST message
// passing against the cached decomposition (core.Options.Decomposition):
// approximate matching, approximate maximum independent set, low-diameter
// clustering, and random-walk routing. Each family has one canonical run
// per (epoch, parameters) key. Concurrent requests for the same key
// coalesce into a single simulator run (a "flight"; an optional batch
// window holds the first arrival briefly so followers can join), and the
// finished result is cached keyed on (epoch, family, parameters) — cache
// entries die with their epoch at swap time, never by timeout. Because the
// batched run is the canonical run, a coalesced result is bit-identical to
// what each request would have computed sequentially; requests that only
// differ in their projection (the vertices/sources filter) share one run.
//
// Every result carries structured accounting from the congest.Observer
// span machinery: rounds, messages, words, and bits per phase of the run
// that produced it.
//
// # Admission control and the encoded-response cache
//
// Canonical runs are multi-phase CONGEST simulations — seconds to hours of
// CPU, not microseconds — so they are admitted like batch jobs, not HTTP
// handlers. A bounded run pool (default min(GOMAXPROCS, NumCPU) workers
// over a FIFO admission queue) executes every canonical run; only flight
// leaders submit to it. When the queue is full the request is rejected
// immediately with 429 + Retry-After (a structured JSON error carrying the
// same estimate), so distinct-key bursts throttle cleanly instead of
// oversubscribing the simulator. Cache hits and coalesced followers never
// touch the pool: saturation affects only genuinely new work.
//
// The cache stores the canonical result's *encoded* JSON bytes alongside
// the Result (encoded once by the flight leader, inside its pool slot, via
// a manual encoder pinned byte-identical to encoding/json). A cache hit or
// coalesced response is then a header write plus one pooled-buffer copy —
// no per-vertex re-encoding, zero allocations at steady state. The cache
// is bounded by bytes-accounted LRU eviction on top of the epoch-death
// invalidation rule.
//
// See DESIGN.md §3.14–3.15 for the architecture and API.md for the wire
// format.
package serve
