package serve

import (
	"encoding/json"
	"math"
	"strconv"
	"sync"
)

// This file is the hot-path response encoder. A canonical Result is
// dominated by per-vertex int arrays (mate/set/labels/delivered_to) and
// per-cluster stats; reflection-based json.Marshal re-walks all of them on
// every cache hit. Instead, the flight leader encodes the Result exactly
// once (full and projection-trimmed forms), the cache stores those bytes,
// and a response is the per-request envelope appended around the cached
// bytes in a pooled buffer — no per-vertex work, near-zero allocations.
//
// The encoders are pinned byte-identical to encoding/json by tests
// (TestEncodeMatchesStdlib*): same field order, same omitempty behaviour,
// same float and string formatting. Any schema change to Result,
// QueryResponse, ClusterStat, Accounting, PhaseAccount or VertexAnswer
// must be mirrored here and will be caught by those tests.

// encResult pairs a canonical *Result with its one-time JSON encodings:
// full (every field) and trimmed (per-vertex arrays and per_cluster
// dropped — what a projection response embeds). This is the unit the
// result cache stores and coalesced flights share.
type encResult struct {
	res     *Result
	full    []byte
	trimmed []byte
}

// newEncResult encodes r once. Called by the flight leader inside the run
// pool, so encoding CPU is admission-controlled along with the run itself.
func newEncResult(r *Result) *encResult {
	full := appendResult(make([]byte, 0, estimateResultLen(r)), r, false)
	trimmed := appendResult(make([]byte, 0, 512), r, true)
	return &encResult{res: r, full: full, trimmed: trimmed}
}

// memBytes estimates the resident footprint of the entry for the cache's
// bytes accounting: both encodings plus the backing arrays of the Result.
func (e *encResult) memBytes() int64 {
	r := e.res
	n := int64(len(e.full) + len(e.trimmed))
	n += int64(len(r.Mate)+len(r.Set)+len(r.Labels)+len(r.DeliveredTo)) * 8
	n += int64(len(r.PerCluster)) * 32
	n += int64(len(r.Accounting.Phases)) * 56
	return n + 256 // struct headers, map entry, list element
}

// estimateResultLen sizes the full-encoding buffer: ~8 digits+comma per
// array element plus fixed overhead, so encoding rarely regrows.
func estimateResultLen(r *Result) int {
	n := 9 * (len(r.Mate) + len(r.Set) + len(r.Labels) + len(r.DeliveredTo))
	n += 48 * len(r.PerCluster)
	n += 96 * len(r.Accounting.Phases)
	return n + 512
}

// respBuf is a pooled response-assembly buffer.
type respBuf struct{ b []byte }

var respPool = sync.Pool{New: func() any { return &respBuf{b: make([]byte, 0, 4096)} }}

func getRespBuf() *respBuf { return respPool.Get().(*respBuf) }

func putRespBuf(rb *respBuf) {
	if cap(rb.b) > 4<<20 {
		return // don't let one huge response pin a huge buffer forever
	}
	respPool.Put(rb)
}

// plainJSONString reports whether s encodes as `"` + s + `"` under
// encoding/json (printable ASCII, nothing escaped, no HTML escaping).
func plainJSONString(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if c < 0x20 || c > 0x7e || c == '"' || c == '\\' || c == '<' || c == '>' || c == '&' {
			return false
		}
	}
	return true
}

// appendJSONString appends the encoding/json encoding of s. The fast path
// covers every string this server actually emits (family and phase names);
// anything exotic round-trips through json.Marshal for exact parity.
func appendJSONString(b []byte, s string) []byte {
	if plainJSONString(s) {
		b = append(b, '"')
		b = append(b, s...)
		return append(b, '"')
	}
	enc, err := json.Marshal(s)
	if err != nil { // cannot happen for a string
		return append(b, `""`...)
	}
	return append(b, enc...)
}

// appendJSONFloat appends f exactly as encoding/json does: shortest
// round-trip form, 'f' format inside [1e-6, 1e21), 'e' outside with the
// exponent's leading zero stripped.
func appendJSONFloat(b []byte, f float64) []byte {
	if math.IsInf(f, 0) || math.IsNaN(f) {
		// encoding/json errors out here; our values are wall-clock derived
		// and finite, but never emit invalid JSON.
		return append(b, '0')
	}
	abs := math.Abs(f)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, f, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendIntsField appends `,"name":[v0,v1,...]`.
func appendIntsField(b []byte, name string, vs []int) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':', '[')
	for i, v := range vs {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendInt(b, int64(v), 10)
	}
	return append(b, ']')
}

// appendIntField appends `,"name":v`.
func appendIntField(b []byte, name string, v int64) []byte {
	b = append(b, ',', '"')
	b = append(b, name...)
	b = append(b, '"', ':')
	return strconv.AppendInt(b, v, 10)
}

// appendAccounting appends the Accounting struct (always present, no
// omitempty except phases).
func appendAccounting(b []byte, a *Accounting) []byte {
	b = append(b, `{"rounds":`...)
	b = strconv.AppendInt(b, int64(a.Rounds), 10)
	b = appendIntField(b, "messages", a.Messages)
	b = appendIntField(b, "words", a.Words)
	b = appendIntField(b, "bits", a.Bits)
	if len(a.Phases) > 0 {
		b = append(b, `,"phases":[`...)
		for i := range a.Phases {
			ph := &a.Phases[i]
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"name":`...)
			b = appendJSONString(b, ph.Name)
			b = appendIntField(b, "rounds", int64(ph.Rounds))
			b = appendIntField(b, "messages", ph.Messages)
			b = appendIntField(b, "words", ph.Words)
			b = appendIntField(b, "bits", ph.Bits)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	return append(b, '}')
}

// appendResult appends the JSON encoding of r, byte-identical to
// json.Marshal(r). With trimmed set, the per-vertex arrays and per_cluster
// are dropped exactly as the projection path's shallow copy would
// (arrays omitted via omitempty, per_cluster null) — without materializing
// that copy.
func appendResult(b []byte, r *Result, trimmed bool) []byte {
	b = append(b, `{"family":`...)
	b = appendJSONString(b, r.Family)
	b = appendIntField(b, "epoch", r.Epoch)
	b = appendIntField(b, "n", int64(r.N))
	b = appendIntField(b, "m", int64(r.M))
	b = appendIntField(b, "clusters", int64(r.Clusters))

	mate, set, labels, deliveredTo, perCluster := r.Mate, r.Set, r.Labels, r.DeliveredTo, r.PerCluster
	if trimmed {
		mate, set, labels, deliveredTo, perCluster = nil, nil, nil, nil, nil
	}
	if len(mate) > 0 {
		b = appendIntsField(b, "mate", mate)
	}
	if r.MatchingSize != 0 {
		b = appendIntField(b, "matching_size", int64(r.MatchingSize))
	}
	if r.Weight != 0 {
		b = appendIntField(b, "weight", r.Weight)
	}
	if len(set) > 0 {
		b = appendIntsField(b, "set", set)
	}
	if r.SetSize != 0 {
		b = appendIntField(b, "set_size", int64(r.SetSize))
	}
	if len(labels) > 0 {
		b = appendIntsField(b, "labels", labels)
	}
	if r.CutEdges != 0 {
		b = appendIntField(b, "cut_edges", int64(r.CutEdges))
	}
	if r.CutFraction != 0 {
		b = append(b, `,"cut_fraction":`...)
		b = appendJSONFloat(b, r.CutFraction)
	}
	if r.MaxDiameter != 0 {
		b = appendIntField(b, "max_diameter", int64(r.MaxDiameter))
	}
	if r.Delivered != 0 {
		b = appendIntField(b, "delivered", int64(r.Delivered))
	}
	if r.Undelivered != 0 {
		b = appendIntField(b, "undelivered", int64(r.Undelivered))
	}
	if len(deliveredTo) > 0 {
		b = appendIntsField(b, "delivered_to", deliveredTo)
	}
	b = append(b, `,"per_cluster":`...)
	if perCluster == nil {
		b = append(b, `null`...)
	} else {
		b = append(b, '[')
		for i := range perCluster {
			cs := &perCluster[i]
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"id":`...)
			b = strconv.AppendInt(b, int64(cs.ID), 10)
			b = appendIntField(b, "leader", int64(cs.Leader))
			b = appendIntField(b, "size", int64(cs.Size))
			b = appendIntField(b, "stat", int64(cs.Stat))
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"accounting":`...)
	b = appendAccounting(b, &r.Accounting)
	return append(b, '}')
}

// appendQueryResponse appends the full response body: the per-request
// envelope around the pre-encoded result bytes. This is the entire
// cache-hit encoding path — one buffer append per field plus one copy of
// the cached result bytes — and is gated allocation-free by
// TestResponseEncodingAllocs.
func appendQueryResponse(b []byte, family string, epoch int64, cached bool, batchSize int64, tookMs float64, selection []VertexAnswer, result []byte) []byte {
	b = append(b, `{"family":`...)
	b = appendJSONString(b, family)
	b = appendIntField(b, "epoch", epoch)
	b = append(b, `,"cached":`...)
	if cached {
		b = append(b, `true`...)
	} else {
		b = append(b, `false`...)
	}
	b = appendIntField(b, "batch_size", batchSize)
	b = append(b, `,"took_ms":`...)
	b = appendJSONFloat(b, tookMs)
	if len(selection) > 0 {
		b = append(b, `,"selection":[`...)
		for i := range selection {
			va := &selection[i]
			if i > 0 {
				b = append(b, ',')
			}
			b = append(b, `{"v":`...)
			b = strconv.AppendInt(b, int64(va.V), 10)
			b = appendIntField(b, "value", va.Value)
			b = append(b, '}')
		}
		b = append(b, ']')
	}
	b = append(b, `,"result":`...)
	b = append(b, result...)
	return append(b, '}')
}
