package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"testing"
)

// fullResult builds a Result exercising every field, including the awkward
// ones (zero omitempty fields, negative values, floats near the
// 'f'/'e'-format boundary, escaped strings in phase names).
func fullResult() *Result {
	return &Result{
		Family:       "matching",
		Epoch:        3,
		N:            24,
		M:            36,
		Clusters:     2,
		Mate:         []int{1, 0, -1, 4, 3, -1},
		MatchingSize: 2,
		Weight:       -17,
		Set:          []int{0, 3, 5},
		SetSize:      3,
		Labels:       []int{0, 0, 1, 1, 2, 2},
		CutEdges:     4,
		CutFraction:  0.0625,
		MaxDiameter:  7,
		Delivered:    5,
		Undelivered:  1,
		DeliveredTo:  []int{3, 3, -1, 0, 0, 0},
		PerCluster: []ClusterStat{
			{ID: 0, Leader: 3, Size: 3, Stat: 1},
			{ID: 1, Leader: 0, Size: 3, Stat: 0},
		},
		Accounting: Accounting{
			Rounds: 120, Messages: 4096, Words: 8192, Bits: 65536,
			Phases: []PhaseAccount{
				{Name: "walkroute", Rounds: 100, Messages: 4000, Words: 8000, Bits: 64000},
				{Name: `weird "<&>" name`, Rounds: 20, Messages: 96, Words: 192, Bits: 1536},
			},
		},
	}
}

func encodeCases() []*Result {
	return []*Result{
		fullResult(),
		{}, // everything zero: omitempty fields absent, per_cluster null
		{Family: "mis", PerCluster: []ClusterStat{}},      // empty non-nil slice -> []
		{Family: "clustering", CutFraction: 1e-7},         // 'e' format with exponent cleanup
		{Family: "clustering", CutFraction: 2.5e21},       // large 'e' format
		{Family: "clustering", CutFraction: 0.1},          // shortest round-trip 'f'
		{Family: "walkroute", DeliveredTo: []int{-1, -1}}, // negatives only
		{Family: "matching", Mate: []int{math.MaxInt32}, Weight: math.MinInt64},
	}
}

// TestEncodeMatchesStdlibResult pins appendResult byte-identical to
// json.Marshal for the full and trimmed encodings.
func TestEncodeMatchesStdlibResult(t *testing.T) {
	for i, r := range encodeCases() {
		want, err := json.Marshal(r)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := appendResult(nil, r, false)
		if !bytes.Equal(got, want) {
			t.Errorf("case %d full:\n got %s\nwant %s", i, got, want)
		}
		trimmed := *r
		trimmed.Mate, trimmed.Set, trimmed.Labels, trimmed.DeliveredTo = nil, nil, nil, nil
		trimmed.PerCluster = nil
		wantTrim, err := json.Marshal(&trimmed)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		gotTrim := appendResult(nil, r, true)
		if !bytes.Equal(gotTrim, wantTrim) {
			t.Errorf("case %d trimmed:\n got %s\nwant %s", i, gotTrim, wantTrim)
		}
	}
}

// TestEncodeMatchesStdlibEnvelope pins appendQueryResponse byte-identical
// to json.Marshal of the equivalent QueryResponse.
func TestEncodeMatchesStdlibEnvelope(t *testing.T) {
	r := fullResult()
	cases := []struct {
		cached    bool
		batch     int64
		tookMs    float64
		selection []VertexAnswer
	}{
		{false, 1, 0, nil},
		{true, 1, 0.123456, nil},
		{false, 7, 15032.25, nil},
		{true, 1, 4.5e-7, []VertexAnswer{{V: 0, Value: 1}, {V: 5, Value: -1}}},
	}
	for i, c := range cases {
		resp := &QueryResponse{
			Family: r.Family, Epoch: r.Epoch, Cached: c.cached,
			BatchSize: c.batch, TookMs: c.tookMs, Selection: c.selection, Result: r,
		}
		want, err := json.Marshal(resp)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		got := appendQueryResponse(nil, r.Family, r.Epoch, c.cached, c.batch, c.tookMs,
			c.selection, appendResult(nil, r, false))
		if !bytes.Equal(got, want) {
			t.Errorf("case %d:\n got %s\nwant %s", i, got, want)
		}
	}
}

// TestEncodeJSONFloat sweeps the float encoder against encoding/json over
// representative magnitudes (took_ms and cut_fraction are the only floats
// on the wire).
func TestEncodeJSONFloat(t *testing.T) {
	vals := []float64{
		0, 1, -1, 0.5, 1e-6, 9.999999e-7, 1e-7, -3.25e-9,
		1e20, 1e21, 2.5e21, -1e22, 123456.789, 0.1 + 0.2,
		math.SmallestNonzeroFloat64, math.MaxFloat64,
	}
	for _, v := range vals {
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		got := appendJSONFloat(nil, v)
		if !bytes.Equal(got, want) {
			t.Errorf("float %g: got %s, want %s", v, got, want)
		}
	}
}

// TestWireBytesMatchStdlib drives real queries over HTTP and asserts the
// raw response body is exactly json.Marshal(decoded envelope): the manual
// wire encoding is indistinguishable from the reflection-based one.
func TestWireBytesMatchStdlib(t *testing.T) {
	_, ts := newTestServer(t, writeTestGraph(t, 24), 0)
	bodies := []string{`{}`, `{"seed": 2}`, `{"vertices": [0, 3, 5]}`, `{}`} // last repeats: cache hit
	for _, family := range Families() {
		for _, body := range bodies {
			resp, err := http.Post(ts.URL+"/query/"+family, "application/json", bytes.NewReader([]byte(body)))
			if err != nil {
				t.Fatal(err)
			}
			raw := readAll(t, resp)
			if resp.StatusCode != http.StatusOK {
				t.Fatalf("%s %s: status %d: %s", family, body, resp.StatusCode, raw)
			}
			var qr QueryResponse
			if err := json.Unmarshal(raw, &qr); err != nil {
				t.Fatalf("%s %s: decode: %v", family, body, err)
			}
			want, err := json.Marshal(&qr)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, '\n')
			if !bytes.Equal(raw, want) {
				t.Fatalf("%s %s: wire bytes differ from stdlib encoding:\n got %s\nwant %s",
					family, body, raw, want)
			}
			if cl := resp.Header.Get("Content-Length"); cl != fmt.Sprint(len(raw)) {
				t.Fatalf("%s %s: Content-Length %q, body %d bytes", family, body, cl, len(raw))
			}
		}
	}
}

var encodeSink int

// TestResponseEncodingAllocs gates the cache-hit response path: appending
// the envelope around pre-encoded result bytes in a pooled buffer must not
// allocate at steady state.
func TestResponseEncodingAllocs(t *testing.T) {
	enc := newEncResult(fullResult())
	// Warm the pool and grow the buffer once.
	rb := getRespBuf()
	rb.b = appendQueryResponse(rb.b[:0], "matching", 3, true, 1, 0.123456, nil, enc.full)
	putRespBuf(rb)

	allocs := testing.AllocsPerRun(1000, func() {
		rb := getRespBuf()
		b := appendQueryResponse(rb.b[:0], "matching", 3, true, 1, 0.123456, nil, enc.full)
		b = append(b, '\n')
		encodeSink = len(b)
		rb.b = b
		putRespBuf(rb)
	})
	if allocs > 0 {
		t.Fatalf("cache-hit response encoding allocates %.1f/op, want 0", allocs)
	}
}

func readAll(t *testing.T, resp *http.Response) []byte {
	t.Helper()
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}
