package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"expandergap/internal/expander"
	"expandergap/internal/graph"
)

// POST /mutate applies a batch of graph mutations to the current snapshot and
// swaps in a successor, reusing the existing hot-swap machinery end to end:
// the successor is built entirely off to the side (an Overlay over the
// current immutable graph, compacted to a fresh CSR), the epoch advances,
// the result cache rolls to the new epoch, and the predecessor is retired —
// in-flight queries keep the snapshot they pinned, so a mutation never drops
// or torments a concurrent /query.
//
// The decomposition of the successor is maintained incrementally
// (expander.DecomposeIncremental): clusters untouched by the batch carry
// over, touched ones are re-certified, and only broken ones are
// re-decomposed. "full": true forces a from-scratch Decompose instead (the
// re-baselining escape hatch for ε-budget drift; see the staleness note on
// DecomposeIncremental).

// MutateOp is the wire form of one mutation, mirroring the churn trace
// verbs: "+" edge insert (optional positive weight), "-" edge delete, "+v"
// vertex add, "-v" vertex delete.
type MutateOp struct {
	Op string `json:"op"`
	U  int    `json:"u"`
	V  int    `json:"v"`
	W  int64  `json:"w,omitempty"`
}

// MutateRequest is the POST /mutate body.
type MutateRequest struct {
	Ops []MutateOp `json:"ops"`
	// Full forces a from-scratch decomposition of the mutated graph instead
	// of incremental maintenance.
	Full bool `json:"full,omitempty"`
}

// MutateResponse is the POST /mutate answer.
type MutateResponse struct {
	Epoch   int64 `json:"epoch"`
	N       int   `json:"n"`
	M       int   `json:"m"`
	Applied int   `json:"applied"`
	// Incremental reports whether the decomposition was maintained
	// incrementally (false when Full was requested).
	Incremental bool `json:"incremental"`
	Clusters    int  `json:"clusters"`
	// Reused/Broken/NewClusters describe the incremental maintenance work
	// (zero when Full).
	Reused        int     `json:"reused"`
	Broken        int     `json:"broken"`
	NewClusters   int     `json:"new_clusters"`
	ReuseFraction float64 `json:"reuse_fraction"`
	CutFraction   float64 `json:"cut_fraction"`
	BuildMs       float64 `json:"build_ms"`
	// MutationsTotal is the cumulative op count applied to the serving graph
	// since it was last loaded from its spec path (a /reload resets it).
	MutationsTotal int64 `json:"mutations_total"`
}

func (op MutateOp) toGraphOp() (graph.Op, error) {
	var g graph.Op
	switch op.Op {
	case "+":
		g.Kind = graph.OpAddEdge
	case "-":
		g.Kind = graph.OpDeleteEdge
	case "+v":
		g.Kind = graph.OpAddVertex
	case "-v":
		g.Kind = graph.OpDeleteVertex
	default:
		return g, fmt.Errorf("unknown op verb %q (want +, -, +v, -v)", op.Op)
	}
	g.U, g.V, g.W = op.U, op.V, op.W
	if g.Kind == graph.OpAddEdge && g.W < 0 {
		return g, fmt.Errorf("negative weight %d", g.W)
	}
	return g, nil
}

// Mutate applies ops to the current snapshot's graph and swaps in the
// successor. It shares reloadMu with Reload, so snapshot builds are
// serialized; queries are never blocked — they read cur lock-free and pin
// whichever snapshot they observe.
func (s *Server) Mutate(ops []graph.Op, full bool) (*Snapshot, *MutateResponse, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur, err := s.snapshot() // pinned: even a concurrent Close cannot unmap it mid-build
	if err != nil {
		return nil, nil, err
	}
	defer cur.release()

	t0 := time.Now()
	ov := graph.NewOverlay(cur.G)
	if n, err := ov.ApplyAll(ops); err != nil {
		s.mutateErrors.Add(1)
		return nil, nil, &mutateOpError{index: n, err: err}
	}

	var (
		g     *graph.Graph
		dec   *expander.Decomposition
		stats *expander.IncrementalStats
	)
	opts := expander.Options{Seed: cur.Spec.Seed, Workers: cur.Spec.DecWorkers}
	if full {
		g, err = ov.Compact()
		if err == nil {
			dec, err = expander.Decompose(g, cur.Spec.Eps, opts)
		}
	} else {
		dec, g, stats, err = expander.DecomposeIncremental(cur.Dec, ov, cur.Spec.Eps, opts)
	}
	if err != nil {
		s.mutateErrors.Add(1)
		return nil, nil, fmt.Errorf("rebuilding decomposition: %w", err)
	}
	buildDur := time.Since(t0)

	epoch := s.epoch.Load() + 1
	snap := &Snapshot{
		Epoch:         epoch,
		Spec:          cur.Spec,
		G:             g,
		Dec:           dec,
		Leader:        computeLeaders(g, dec),
		WalkBudget:    defaultWalkBudget(dec.Phi, g.N()),
		Mutations:     cur.Mutations + int64(len(ops)),
		LoadDuration:  0,
		BuildDuration: buildDur,
	}
	snap.refs.Store(1)

	s.epoch.Store(epoch)
	old := s.cur.Swap(snap)
	s.cache.swapEpoch(epoch)
	if old != nil {
		old.retire()
	}
	s.mutates.Add(1)
	s.mutatedOps.Add(int64(len(ops)))

	resp := &MutateResponse{
		Epoch:          epoch,
		N:              g.N(),
		M:              g.M(),
		Applied:        len(ops),
		Incremental:    !full,
		Clusters:       len(dec.Clusters),
		CutFraction:    dec.CutFraction(g),
		BuildMs:        float64(buildDur.Nanoseconds()) / 1e6,
		MutationsTotal: snap.Mutations,
	}
	if stats != nil {
		resp.Reused = stats.Reused
		resp.Broken = stats.Broken
		resp.NewClusters = stats.NewClusters
		resp.ReuseFraction = stats.ReuseFraction()
	}
	s.cfg.Log.Printf("serve: mutated to epoch %d: n=%d m=%d clusters=%d applied=%d reused=%d broken=%d (%v)",
		epoch, g.N(), g.M(), len(dec.Clusters), len(ops), resp.Reused, resp.Broken, buildDur)
	return snap, resp, nil
}

// mutateOpError marks a batch rejected because one op could not be applied;
// the handler maps it to 422 with the failing op's index.
type mutateOpError struct {
	index int
	err   error
}

func (e *mutateOpError) Error() string {
	return fmt.Sprintf("op %d: %v", e.index, e.err)
}

func (e *mutateOpError) Unwrap() error { return e.err }

func (s *Server) handleMutate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	var req MutateRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad mutate request: %v", err)
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "mutate request has no ops")
		return
	}
	ops := make([]graph.Op, len(req.Ops))
	for i, mo := range req.Ops {
		op, err := mo.toGraphOp()
		if err != nil {
			writeError(w, http.StatusUnprocessableEntity, "op %d: %v", i, err)
			return
		}
		ops[i] = op
	}
	_, resp, err := s.Mutate(ops, req.Full)
	if err != nil {
		var opErr *mutateOpError
		switch {
		case errors.As(err, &opErr):
			writeError(w, http.StatusUnprocessableEntity, "%v", err)
		case errors.Is(err, errShutdown):
			writeError(w, http.StatusServiceUnavailable, "%v", err)
		default:
			writeError(w, http.StatusInternalServerError, "mutate failed: %v", err)
		}
		return
	}
	writeJSON(w, http.StatusOK, resp)
}
