package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"testing"

	"expandergap/internal/graph"
)

func TestMutateBasic(t *testing.T) {
	path := writeTestGraph(t, 24)
	srv, ts := newTestServer(t, path, 0)

	// Seed the cache so we can prove the swap invalidated it.
	before, _ := postQuery(t, ts.URL, "mis", `{}`)
	if before.Epoch != 1 {
		t.Fatalf("initial epoch %d", before.Epoch)
	}

	out := postJSON(t, ts.URL+"/mutate",
		`{"ops": [{"op": "+v"}, {"op": "+", "u": 0, "v": 24}, {"op": "-", "u": 0, "v": 1}]}`,
		http.StatusOK)
	if out["epoch"].(float64) != 2 || out["n"].(float64) != 25 {
		t.Fatalf("mutate response %v", out)
	}
	if out["applied"].(float64) != 3 || out["incremental"] != true {
		t.Fatalf("mutate accounting %v", out)
	}
	if out["clusters"].(float64) < 1 || out["mutations_total"].(float64) != 3 {
		t.Fatalf("mutate response %v", out)
	}
	reused, broken := out["reused"].(float64), out["broken"].(float64)
	newc := out["new_clusters"].(float64)
	if reused+newc != out["clusters"].(float64) {
		t.Fatalf("cluster accounting: reused %v + new %v != clusters %v", reused, newc, out["clusters"])
	}
	if broken < 0 || out["reuse_fraction"].(float64) < 0 || out["reuse_fraction"].(float64) > 1 {
		t.Fatalf("mutate stats %v", out)
	}

	after, _ := postQuery(t, ts.URL, "mis", `{}`)
	if after.Cached {
		t.Fatal("query after mutate served a stale cached result")
	}
	if after.Epoch != 2 || after.Result.N != 25 {
		t.Fatalf("post-mutate result epoch=%d n=%d", after.Epoch, after.Result.N)
	}
	if srv.Epoch() != 2 {
		t.Fatalf("server epoch %d", srv.Epoch())
	}

	stats := getJSON(t, ts.URL+"/statz", http.StatusOK)
	if stats["mutates"].(float64) != 1 || stats["mutated_ops"].(float64) != 3 {
		t.Fatalf("statz mutate counters: %v %v", stats["mutates"], stats["mutated_ops"])
	}
	if stats["mutations"].(float64) != 3 {
		t.Fatalf("statz snapshot mutations: %v", stats["mutations"])
	}

	// A reload from the spec path resets the cumulative mutation count.
	postJSON(t, ts.URL+"/reload", ``, http.StatusOK)
	stats = getJSON(t, ts.URL+"/statz", http.StatusOK)
	if stats["mutations"].(float64) != 0 {
		t.Fatalf("mutations after reload: %v", stats["mutations"])
	}
}

func TestMutateFull(t *testing.T) {
	_, ts := newTestServer(t, writeTestGraph(t, 24), 0)
	out := postJSON(t, ts.URL+"/mutate",
		`{"ops": [{"op": "-", "u": 0, "v": 1}], "full": true}`, http.StatusOK)
	if out["incremental"] != false {
		t.Fatalf("full rebuild reported incremental: %v", out)
	}
	if out["reused"].(float64) != 0 || out["broken"].(float64) != 0 {
		t.Fatalf("full rebuild carries incremental stats: %v", out)
	}
	if out["epoch"].(float64) != 2 || out["clusters"].(float64) < 1 {
		t.Fatalf("full rebuild response %v", out)
	}
}

func TestMutateErrors(t *testing.T) {
	srv, ts := newTestServer(t, writeTestGraph(t, 24), 0)

	resp, err := http.Get(ts.URL + "/mutate")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /mutate: status %d, want 405", resp.StatusCode)
	}

	cases := []struct {
		body   string
		status int
		frag   string
	}{
		{`not json`, http.StatusBadRequest, "bad mutate request"},
		{`{"ops": [], "bogus": 1}`, http.StatusBadRequest, "bad mutate request"},
		{`{"ops": []}`, http.StatusBadRequest, "no ops"},
		{`{"ops": [{"op": "?", "u": 0, "v": 1}]}`, http.StatusUnprocessableEntity, "unknown op verb"},
		{`{"ops": [{"op": "+", "u": 0, "v": 99}]}`, http.StatusUnprocessableEntity, "op 0"},
		{`{"ops": [{"op": "-", "u": 0, "v": 1}, {"op": "-", "u": 0, "v": 1}]}`, http.StatusUnprocessableEntity, "op 1"},
		{`{"ops": [{"op": "+", "u": 3, "v": 3}]}`, http.StatusUnprocessableEntity, "op 0"},
	}
	for _, c := range cases {
		got := postJSON(t, ts.URL+"/mutate", c.body, c.status)
		if msg, _ := got["error"].(string); !bytes.Contains([]byte(msg), []byte(c.frag)) {
			t.Errorf("POST /mutate %q: error %q missing %q", c.body, msg, c.frag)
		}
	}
	if srv.Epoch() != 1 {
		t.Fatalf("failed mutations advanced the epoch to %d", srv.Epoch())
	}
	stats := getJSON(t, ts.URL+"/statz", http.StatusOK)
	// Only the batches that reached Apply count as mutate errors (the verb
	// and JSON rejections never touch the graph).
	if stats["mutate_errors"].(float64) != 3 {
		t.Fatalf("statz mutate_errors: %v", stats["mutate_errors"])
	}
}

// TestMutateChurnTrace replays a generated churn stream through the HTTP
// endpoint in batches — the serve-smoke shape. Every batch must apply
// cleanly because GenerateChurn builds ops against the same evolving state
// the server maintains.
func TestMutateChurnTrace(t *testing.T) {
	path := writeTestGraph(t, 24)
	srv, ts := newTestServer(t, path, 0)

	g, err := graph.LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := graph.GenerateChurn(g, 30, 7)
	if err != nil {
		t.Fatal(err)
	}
	const batch = 10
	for i := 0; i < len(ops); i += batch {
		end := i + batch
		if end > len(ops) {
			end = len(ops)
		}
		req := MutateRequest{}
		for _, op := range ops[i:end] {
			req.Ops = append(req.Ops, MutateOp{Op: op.Kind.String(), U: op.U, V: op.V, W: op.W})
		}
		body, _ := json.Marshal(req)
		out := postJSON(t, ts.URL+"/mutate", string(body), http.StatusOK)
		if out["applied"].(float64) != float64(end-i) {
			t.Fatalf("batch %d: applied %v, want %d", i/batch, out["applied"], end-i)
		}
	}
	if want := int64(1 + (len(ops)+batch-1)/batch); srv.Epoch() != want {
		t.Fatalf("final epoch %d, want %d", srv.Epoch(), want)
	}
	stats := getJSON(t, ts.URL+"/statz", http.StatusOK)
	if stats["mutations"].(float64) != float64(len(ops)) {
		t.Fatalf("cumulative mutations %v, want %d", stats["mutations"], len(ops))
	}
	// The mutated graph still serves queries.
	if qr, status := postQuery(t, ts.URL, "matching", `{}`); status != http.StatusOK || qr.Result.Clusters < 1 {
		t.Fatalf("query on churned graph: status %d", status)
	}
}

// TestMutateQueryTorture races queries against a stream of mutation batches
// and asserts the dynamic serving contract: zero failed requests, per-client
// monotone epochs, and no torn snapshots — every response's (epoch, n) pair
// matches what the mutation stream built for that epoch. Run with -race.
func TestMutateQueryTorture(t *testing.T) {
	srv, ts := newTestServer(t, writeTestGraph(t, 24), 0)

	// Each batch adds one vertex wired to vertex 0, so epoch e serves
	// exactly n = 24 + (e-1) vertices: the tearing detector.
	nFor := func(epoch int64) int { return 24 + int(epoch) - 1 }

	const clients = 8
	const perClient = 25
	var wg sync.WaitGroup
	var failures atomic.Int64
	errCh := make(chan error, clients)
	families := Families()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastEpoch := int64(0)
			for i := 0; i < perClient; i++ {
				family := families[(c+i)%len(families)]
				body := fmt.Sprintf(`{"seed": %d}`, 1+(c+i)%3)
				resp, err := http.Post(ts.URL+"/query/"+family, "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					failures.Add(1)
					continue
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				if qr.Epoch < lastEpoch {
					errCh <- fmt.Errorf("client %d: epoch regressed %d -> %d", c, lastEpoch, qr.Epoch)
					return
				}
				lastEpoch = qr.Epoch
				if want := nFor(qr.Epoch); qr.Result.N != want {
					errCh <- fmt.Errorf("client %d: torn snapshot: epoch %d served n=%d, want %d",
						c, qr.Epoch, qr.Result.N, want)
					return
				}
			}
		}(c)
	}

	const batches = 6
	for b := 0; b < batches; b++ {
		nv := 24 + b // the vertex this batch adds
		ops := []graph.Op{
			{Kind: graph.OpAddVertex},
			{Kind: graph.OpAddEdge, U: 0, V: nv},
		}
		snap, resp, err := srv.Mutate(ops, false)
		if err != nil {
			t.Fatalf("mutate %d: %v", b, err)
		}
		if snap.Epoch != int64(b+2) || resp.N != 24+b+1 {
			t.Fatalf("mutate %d: epoch %d n=%d", b, snap.Epoch, resp.N)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed during mutations, want 0", n)
	}
	if got := srv.Epoch(); got != 1+batches {
		t.Fatalf("final epoch %d, want %d", got, 1+batches)
	}
}
