package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"sync"
	"testing"
)

// overloadServer builds a server with a single-worker, depth-1 run pool
// whose canonical runs block on the returned gate: each token sent to the
// gate releases exactly one run. That lets the tests hold the pool
// deliberately, reliably full.
func overloadServer(t *testing.T) (*Server, *httptest.Server, chan struct{}) {
	t.Helper()
	gate := make(chan struct{})
	srv, err := New(Config{
		Spec:       Spec{Path: writeTestGraph(t, 24), Eps: 0.3, Seed: 1},
		RunPool:    1,
		QueueDepth: 1,
		blockRuns:  gate,
	})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts, gate
}

// release feeds n tokens to the gate, unblocking n canonical runs.
func release(gate chan struct{}, n int) {
	for i := 0; i < n; i++ {
		gate <- struct{}{}
	}
}

// post429 issues a query and asserts the full 429 contract: status,
// Retry-After header, structured JSON body.
func post429(t *testing.T, base, family string, seed int) {
	t.Helper()
	body := fmt.Sprintf(`{"seed": %d}`, seed)
	resp, err := http.Post(base+"/query/"+family, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After header %q, want integer >= 1", resp.Header.Get("Retry-After"))
	}
	var e struct {
		Error             string `json:"error"`
		RetryAfterSeconds int    `json:"retry_after_seconds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&e); err != nil {
		t.Fatalf("429 body: %v", err)
	}
	if e.Error == "" || e.RetryAfterSeconds != ra {
		t.Fatalf("429 body %+v inconsistent with Retry-After %d", e, ra)
	}
}

// statzRejected reads the pool rejection counter from /statz.
func statzRejected(t *testing.T, base string) int64 {
	t.Helper()
	resp, err := http.Get(base + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out struct {
		Pool poolStatz `json:"pool"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Pool.Rejected
}

// TestOverloadBackpressure saturates the admission queue and asserts the
// whole overload contract: clean 429s with Retry-After for new work,
// cached and coalesced requests unaffected, monotone rejection counters,
// and no goroutine pileup. Run with -race in CI.
func TestOverloadBackpressure(t *testing.T) {
	srv, ts, gate := overloadServer(t)

	// Warm one cache key (a token releases its run).
	go release(gate, 1)
	if qr, status := postQuery(t, ts.URL, "mis", `{"seed": 1}`); status != http.StatusOK || qr.Cached {
		t.Fatalf("warmup: status %d cached %v", status, qr.Cached)
	}
	if qr, _ := postQuery(t, ts.URL, "mis", `{"seed": 1}`); !qr.Cached {
		t.Fatal("warmup key not cached")
	}

	// Hold the pool full: one run executing (blocked on the gate), one
	// queued behind it.
	var blocked sync.WaitGroup
	blockedStatus := make([]int, 2)
	for i, seed := range []int{100, 101} {
		i, seed := i, seed
		blocked.Add(1)
		go func() {
			defer blocked.Done()
			_, status := postQuery(t, ts.URL, "mis", fmt.Sprintf(`{"seed": %d}`, seed))
			blockedStatus[i] = status
		}()
		want := int64(i) // after the first, queue holds i jobs
		waitFor(t, "pool occupancy", func() bool {
			return srv.pool.running.Load() == 1 && srv.pool.queued.Load() == want
		})
	}

	// New canonical work is rejected, immediately and cleanly.
	post429(t, ts.URL, "mis", 102)

	// A coalescing follower of the queued flight succeeds without a slot.
	blocked.Add(1)
	var followerStatus int
	var followerBatch int64
	go func() {
		defer blocked.Done()
		qr, status := postQuery(t, ts.URL, "mis", `{"seed": 101}`)
		followerStatus = status
		if qr != nil {
			followerBatch = qr.BatchSize
		}
	}()
	waitFor(t, "follower joined", func() bool {
		srv.batch.mu.Lock()
		defer srv.batch.mu.Unlock()
		for _, f := range srv.batch.flights {
			if f.joined.Load() >= 2 {
				return true
			}
		}
		return false
	})

	// Cache hits keep being served while the pool is full.
	for i := 0; i < 5; i++ {
		if qr, status := postQuery(t, ts.URL, "mis", `{"seed": 1}`); status != http.StatusOK || !qr.Cached {
			t.Fatalf("cache hit under overload: status %d, cached %v", status, qr != nil && qr.Cached)
		}
	}

	// A burst of distinct-key requests: all rejected, no goroutine growth.
	before := runtime.NumGoroutine()
	rejectedBefore := statzRejected(t, ts.URL)
	const burst = 50
	for i := 0; i < burst; i++ {
		post429(t, ts.URL, "matching", 200+i)
	}
	rejectedAfter := statzRejected(t, ts.URL)
	if rejectedAfter < rejectedBefore+burst {
		t.Fatalf("pool rejections %d -> %d, want monotone growth by >= %d",
			rejectedBefore, rejectedAfter, burst)
	}
	// Allow a little slack for idle HTTP conns; the point is that 50
	// rejected requests leave no goroutines behind.
	waitFor(t, "goroutines to settle", func() bool {
		return runtime.NumGoroutine() <= before+10
	})

	// Queue occupancy never grew past its bounds.
	if q, r := srv.pool.queued.Load(), srv.pool.running.Load(); q > 1 || r > 1 {
		t.Fatalf("pool overfilled: queued=%d running=%d", q, r)
	}

	// Drain: two tokens release the two held runs; everyone blocked
	// (leaders and follower) completes successfully.
	release(gate, 2)
	blocked.Wait()
	for i, status := range blockedStatus {
		if status != http.StatusOK {
			t.Fatalf("held request %d finished with status %d", i, status)
		}
	}
	if followerStatus != http.StatusOK || followerBatch < 2 {
		t.Fatalf("follower: status %d batch %d, want 200 with batch >= 2", followerStatus, followerBatch)
	}

	// Per-family rejection counters surfaced and consistent.
	stats := getJSON(t, ts.URL+"/statz", http.StatusOK)
	fams := stats["families"].(map[string]any)
	var famRejected float64
	for _, f := range fams {
		famRejected += f.(map[string]any)["rejected"].(float64)
	}
	if int64(famRejected) != rejectedAfter {
		t.Fatalf("family rejected sum %v != pool rejected %d", famRejected, rejectedAfter)
	}
}

// TestOverloadRecovery asserts the server serves fresh canonical runs
// normally again once the backlog drains.
func TestOverloadRecovery(t *testing.T) {
	srv, ts, gate := overloadServer(t)

	// Fill worker + queue.
	var blocked sync.WaitGroup
	for i, seed := range []int{300, 301} {
		seed := seed
		blocked.Add(1)
		go func() {
			defer blocked.Done()
			postQuery(t, ts.URL, "clustering", fmt.Sprintf(`{"seed": %d}`, seed))
		}()
		waitFor(t, "pool occupancy", func() bool {
			return srv.pool.running.Load() == 1 && srv.pool.queued.Load() == int64(i)
		})
	}
	post429(t, ts.URL, "clustering", 302)

	// Drain and verify the previously rejected key now runs fine.
	release(gate, 2)
	blocked.Wait()
	go release(gate, 1)
	qr, status := postQuery(t, ts.URL, "clustering", `{"seed": 302}`)
	if status != http.StatusOK || qr.Cached {
		t.Fatalf("post-drain run: status %d, cached %v", status, qr != nil && qr.Cached)
	}
	// And it is cached on the second hit.
	if qr, _ := postQuery(t, ts.URL, "clustering", `{"seed": 302}`); !qr.Cached {
		t.Fatal("post-drain result not cached")
	}
	if srv.pool.statz().Completed < 3 {
		t.Fatalf("pool completed %d runs, want >= 3", srv.pool.statz().Completed)
	}
}
